// Tracing: renders the pipeline structure of Figures 3 and 4 from a live
// run — three workers, one epoch of three concurrent pipelined searches,
// every message and hand-off printed with its simulated timestamp. This is
// the executable counterpart of the paper's pipeline illustrations.
//
// Run with: go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/cluster"
	"repro/internal/trace"

	ilp "repro"
)

func main() {
	ds, err := ilp.DatasetByName("trains", 1)
	if err != nil {
		log.Fatal(err)
	}

	col := trace.NewCollector()
	met, err := ilp.LearnParallel(ds, 3, 5, ilp.ParallelOptions{
		Seed:  1,
		Trace: col.Hook(),
	})
	if err != nil {
		log.Fatal(err)
	}
	events := col.Events()

	names := map[int]string{0: "master", 1: "worker1", 2: "worker2", 3: "worker3"}
	kinds := map[int]string{
		0: "load_examples", 1: "start_pipeline", 2: "stage_hand_off(⊥+rules)",
		3: "pipeline_rules→master", 4: "evaluate(bag)", 5: "eval_results",
		6: "mark_covered", 7: "adopt", 8: "adopted", 9: "stop",
	}

	fmt.Printf("p2-mdie on %s: p=3, W=5 — %d epoch(s), theory:\n%s\n",
		ds.Name, met.Epochs, ilp.TheoryString(met.Theory))
	fmt.Println("simulated cluster trace (messages only, virtual time order):")

	// Render sends in virtual-time order for a stable, readable story.
	var sends []cluster.Event
	for _, e := range events {
		if e.Type == cluster.EvSend {
			sends = append(sends, e)
		}
	}
	sort.SliceStable(sends, func(i, j int) bool {
		if sends[i].Clock != sends[j].Clock {
			return sends[i].Clock < sends[j].Clock
		}
		return sends[i].Seq < sends[j].Seq
	})
	for _, e := range sends {
		kind := kinds[e.Kind]
		if kind == "" {
			kind = fmt.Sprintf("kind%d", e.Kind)
		}
		fmt.Printf("  [%9.4f ms] %-8s → %-8s %-28s %5d B\n",
			float64(e.Clock)/1e6, names[e.Node], names[e.Peer], kind, e.Bytes)
	}
	fmt.Printf("\ntotals: %d messages, %.1f KB, simulated makespan %.3f ms\n",
		met.CommMessages, float64(met.CommBytes)/1e3, met.VirtualTime.Seconds()*1e3)

	an := trace.Analyze(events)
	fmt.Println("\nper-node activity:")
	an.RenderSummary(os.Stdout, names)
	fmt.Printf("\nworker load balance (min/max bytes out): %.2f\n", an.Balance([]int{1, 2, 3}))
	fmt.Println("\nsend-activity timeline (the pipeline of Figure 3):")
	fmt.Print(trace.Timeline(events, 4, 64))
}
