// Carcinogenesis: the paper's molecular-biology workload. Learns the
// structural-alert theory sequentially and with 4 pipeline workers,
// reporting speedup, epochs and communication — a miniature of the paper's
// Tables 2–5 on a single dataset.
//
// Run with: go run ./examples/carcinogenesis [-scale 0.5]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/datasets"

	ilp "repro"
)

func main() {
	scale := flag.Float64("scale", 0.5, "dataset scale (1.0 = the paper's 162+/136-)")
	flag.Parse()

	n := func(x int) int { return int(float64(x) * *scale) }
	ds := datasets.CarcinogenesisSized(n(162), n(136), 42)
	fmt.Println(ds)
	fmt.Println("hidden concept (generator ground truth):")
	fmt.Print(ilp.TheoryString(ds.TrueConcept))

	seq, err := ilp.LearnSequential(ds)
	if err != nil {
		log.Fatal(err)
	}
	seqVirtual := float64(seq.Inferences) * ilp.DefaultCostModel.NsPerInference / 1e9
	fmt.Printf("\nsequential: %d rules + %d adopted facts, %.2fs simulated single-CPU time\n",
		seq.RulesLearned, seq.GroundFactsAdopted, seqVirtual)
	fmt.Printf("training accuracy: %.1f%%\n", 100*ilp.Accuracy(ds, seq.Theory, ds.Pos, ds.Neg))

	par, err := ilp.LearnParallel(ds, 4, 10, ilp.ParallelOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\np2-mdie (p=4, W=10): %d rules + %d adopted facts in %d epochs\n",
		par.RulesLearned, par.GroundFactsAdopted, par.Epochs)
	fmt.Printf("simulated cluster time: %.2fs → speedup %.2f over sequential\n",
		par.VirtualTime.Seconds(), seqVirtual/par.VirtualTime.Seconds())
	fmt.Printf("communication: %.2f MB in %d messages\n", float64(par.CommBytes)/1e6, par.CommMessages)
	fmt.Printf("training accuracy: %.1f%%\n", 100*ilp.Accuracy(ds, par.Theory, ds.Pos, ds.Neg))

	fmt.Println("\nparallel theory (first rules):")
	theory := par.Theory
	if len(theory) > 6 {
		theory = theory[:6]
	}
	fmt.Print(ilp.TheoryString(theory))
}
