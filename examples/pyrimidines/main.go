// Pyrimidines: the paper's drug-design workload, evaluated with the full
// protocol of §5.2 — 5-fold cross-validation comparing sequential MDIE
// against p²-mdie, with the paired t-test at 98% confidence (the paper's
// Table 6 methodology on one dataset).
//
// Run with: go run ./examples/pyrimidines [-scale 0.15] [-workers 4] [-width 10]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/datasets"

	ilp "repro"
)

func main() {
	scale := flag.Float64("scale", 0.15, "dataset scale (1.0 = the paper's 848+/764-)")
	workers := flag.Int("workers", 4, "pipeline workers")
	width := flag.Int("width", 10, "pipeline width (0 = unlimited)")
	folds := flag.Int("folds", 5, "cross-validation folds")
	flag.Parse()

	n := func(x int) int { return int(float64(x) * *scale) }
	ds := datasets.PyrimidinesSized(n(848), n(764), 11)
	fmt.Println(ds)
	fmt.Printf("label noise: %.0f%% — predictive accuracy tops out well below 100%%, as in the paper\n\n", 100*ds.Noise)

	cv, err := ilp.CrossValidate(ds, *folds, *workers, *width, 11)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d-fold cross-validation:\n", cv.Folds)
	fmt.Printf("%-6s %12s %18s\n", "fold", "sequential", fmt.Sprintf("p2-mdie (p=%d)", *workers))
	for i := range cv.SeqAcc {
		fmt.Printf("%-6d %11.2f%% %13.2f%%\n", i+1, 100*cv.SeqAcc[i], 100*cv.ParAcc[i])
	}
	fmt.Printf("\nmean accuracy: sequential %.2f%%, parallel %.2f%%\n", 100*cv.MeanSeq(), 100*cv.MeanPar())
	fmt.Printf("paired t-test: %s\n", cv.TTest)
	if cv.TTest.Significant(0.98) {
		if cv.MeanPar() > cv.MeanSeq() {
			fmt.Println("=> significant at 98%: the parallel model is MORE accurate (the paper saw this on mesh)")
		} else {
			fmt.Println("=> significant at 98%: accuracy degraded — unexpected, see EXPERIMENTS.md")
		}
	} else {
		fmt.Println("=> no significant difference at 98% — learning quality is preserved (the paper's main claim)")
	}
}
