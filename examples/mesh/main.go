// Mesh: the paper's finite-element workload, used here to demonstrate the
// pipeline-width trade-off (the paper's central tuning knob): unlimited
// width moves an order of magnitude more data between stages than W = 10,
// and on the communication-heavy datasets the constrained pipeline is the
// faster one (paper §5.3, Tables 2–4).
//
// Run with: go run ./examples/mesh [-scale 0.2] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/datasets"

	ilp "repro"
)

func main() {
	scale := flag.Float64("scale", 0.2, "dataset scale (1.0 = the paper's 2840+/278-)")
	workers := flag.Int("workers", 4, "pipeline workers")
	flag.Parse()

	n := func(x int) int { return int(float64(x) * *scale) }
	ds := datasets.MeshSized(n(2840), n(278), 7)
	fmt.Println(ds)

	seq, err := ilp.LearnSequential(ds)
	if err != nil {
		log.Fatal(err)
	}
	seqVirtual := float64(seq.Inferences) * ilp.DefaultCostModel.NsPerInference / 1e9
	fmt.Printf("sequential baseline: %.2fs simulated single-CPU time\n\n", seqVirtual)

	fmt.Printf("%-10s %10s %10s %12s %10s\n", "width", "time (s)", "speedup", "comm (MB)", "epochs")
	for _, width := range []int{0, 50, 10, 1} {
		met, err := ilp.LearnParallel(ds, *workers, width, ilp.ParallelOptions{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d", width)
		if width == 0 {
			label = "nolimit"
		}
		fmt.Printf("%-10s %10.2f %10.2f %12.3f %10d\n",
			label,
			met.VirtualTime.Seconds(),
			seqVirtual/met.VirtualTime.Seconds(),
			float64(met.CommBytes)/1e6,
			met.Epochs)
	}
}
