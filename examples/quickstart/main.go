// Quickstart: learn Michalski's eastbound-trains concept with the public
// API — first sequentially, then with the pipelined data-parallel
// algorithm — and finally on a custom problem defined inline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ilp "repro"
)

func main() {
	// ------------------------------------------------------------------
	// 1. A bundled dataset: Michalski's trains.
	// ------------------------------------------------------------------
	trains, err := ilp.DatasetByName("trains", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(trains)

	seq, err := ilp.LearnSequential(trains)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsequential MDIE learned %d rule(s) in %d search(es):\n%s",
		seq.RulesLearned, seq.Searches, ilp.TheoryString(seq.Theory))
	fmt.Printf("training accuracy: %.0f%%\n", 100*ilp.Accuracy(trains, seq.Theory, trains.Pos, trains.Neg))

	// ------------------------------------------------------------------
	// 2. The same task on the pipelined data-parallel learner (p²-mdie)
	//    with 3 simulated cluster workers and pipeline width 5.
	// ------------------------------------------------------------------
	par, err := ilp.LearnParallel(trains, 3, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\np2-mdie (p=3, W=5) learned the theory in %d epoch(s), "+
		"moving %.1f KB over %d messages:\n%s",
		par.Epochs, float64(par.CommBytes)/1e3, par.CommMessages, ilp.TheoryString(par.Theory))

	// ------------------------------------------------------------------
	// 3. A custom problem: the classic "mother" relation.
	// ------------------------------------------------------------------
	family, err := ilp.Define("family",
		`
		parent(ann, bob). parent(ann, carol).
		parent(tom, bob). parent(tom, carol).
		parent(bob, dave). parent(carol, eve).
		female(ann). female(carol). female(eve).
		male(tom). male(bob). male(dave).
		`,
		`
		modeh(1, mother(+person, +person)).
		modeb(1, parent(+person, +person)).
		modeb(1, female(+person)).
		modeb(1, male(+person)).
		`,
		[]string{"mother(ann, bob)", "mother(ann, carol)", "mother(carol, eve)"},
		[]string{"mother(tom, bob)", "mother(bob, dave)", "mother(eve, ann)"},
	)
	if err != nil {
		log.Fatal(err)
	}
	family.Search.MinPos = 2
	family.Search.MinPrec = 0.99
	res, err := ilp.LearnSequential(family)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncustom problem %q learned:\n%s", family.Name, ilp.TheoryString(res.Theory))
}
