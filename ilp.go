// Package ilp is a from-scratch Go implementation of Inductive Logic
// Programming with pipelined data-parallel learning, reproducing
//
//	Fonseca, Silva, Santos Costa, Camacho:
//	"A pipelined data-parallel algorithm for ILP", IEEE CLUSTER 2005.
//
// The package offers three levels of use:
//
//   - Learning on the bundled datasets (the paper's carcinogenesis, mesh
//     and pyrimidines workloads, synthetically regenerated, plus the
//     Michalski trains toy task): see DatasetByName, LearnSequential,
//     LearnParallel and CrossValidate.
//
//   - Learning on your own relational data: describe background knowledge
//     and examples in Prolog-subset syntax and the language bias in
//     modeh/modeb declarations, then call Define followed by the learners.
//
//   - Reproducing the paper's evaluation: the cmd/ilpbench binary and the
//     benchmarks in bench_test.go regenerate every table of the paper's
//     Section 5 on a simulated Beowulf cluster.
//
// The heavy lifting lives in internal packages: internal/logic (terms,
// unification, θ-subsumption), internal/solve (bounded SLD resolution),
// internal/bottom (MDIE saturation), internal/search (bottom-clause-
// constrained rule search), internal/covering (the sequential baseline),
// internal/cluster (the simulated distributed-memory machine) and
// internal/core (the p²-mdie master/worker algorithm).
package ilp

import (
	"fmt"
	"time"

	"repro/internal/bottom"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/covering"
	"repro/internal/datasets"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/parcov"
	"repro/internal/search"
	"repro/internal/serve"
	"repro/internal/solve"
	"repro/internal/stats"
	"repro/internal/theory"
	"repro/internal/xval"
)

// Re-exported types: the public API surface is expressed in terms of these
// aliases so downstream code never imports internal packages.
type (
	// Dataset is a ready-to-learn task (background, examples, bias).
	Dataset = datasets.Dataset
	// Clause is a definite clause; learned theories are []Clause.
	Clause = logic.Clause
	// Term is a first-order term; examples are ground Terms.
	Term = logic.Term
	// SearchSettings configures the rule search (width, precision, limits).
	SearchSettings = search.Settings
	// BottomOptions configures saturation (variable depth, recall).
	BottomOptions = bottom.Options
	// Budget bounds individual proofs.
	Budget = solve.Budget
	// CostModel is the simulated cluster's hardware model.
	CostModel = cluster.CostModel
	// SequentialResult is returned by LearnSequential.
	SequentialResult = covering.Result
	// ParallelMetrics is returned by LearnParallel (theory + run metrics).
	ParallelMetrics = core.Metrics
	// ParallelCoverageMetrics is returned by LearnParallelCoverage.
	ParallelCoverageMetrics = parcov.Metrics
	// TTestResult is a paired t-test outcome.
	TTestResult = stats.TTestResult
)

// DefaultCostModel approximates the paper's 2005 Beowulf cluster.
var DefaultCostModel = cluster.DefaultCostModel

// DatasetByName returns a bundled dataset: "carcinogenesis", "mesh",
// "pyrimidines" (paper sizes, Table 1) or "trains".
func DatasetByName(name string, seed int64) (*Dataset, error) {
	return datasets.ByName(name, seed)
}

// LoadDataset parses a dataset from its textual interchange form (the
// format written by cmd/ilpgen and SaveDataset): mode declarations,
// background clauses, and pos/1 / neg/1 example wrappers.
func LoadDataset(name, src string) (*Dataset, error) {
	return datasets.ParseText(name, src)
}

// SaveDataset renders a dataset in the textual interchange form; the
// output parses back with LoadDataset.
func SaveDataset(ds *Dataset) string { return datasets.FormatText(ds) }

// PaperDatasets returns the paper's three evaluation datasets.
func PaperDatasets(seed int64) []*Dataset { return datasets.Paper(seed) }

// Define builds a custom learning task from Prolog-subset sources:
// background clauses, modeh/modeb declarations, and ground example atoms
// (one term per string). The returned Dataset carries sensible default
// search settings; adjust its fields before learning if needed.
func Define(name, background, modes string, pos, neg []string) (*Dataset, error) {
	kb := solve.NewKB()
	if err := kb.AddSource(background); err != nil {
		return nil, fmt.Errorf("ilp: background: %w", err)
	}
	ms, err := mode.ParseSet(modes)
	if err != nil {
		return nil, fmt.Errorf("ilp: modes: %w", err)
	}
	parseExamples := func(srcs []string, kind string) ([]Term, error) {
		out := make([]Term, 0, len(srcs))
		for _, s := range srcs {
			t, err := logic.ParseTerm(s)
			if err != nil {
				return nil, fmt.Errorf("ilp: %s example %q: %w", kind, s, err)
			}
			if !t.IsGround() || !t.IsCallable() {
				return nil, fmt.Errorf("ilp: %s example %q must be a ground atom", kind, s)
			}
			out = append(out, t)
		}
		return out, nil
	}
	posT, err := parseExamples(pos, "positive")
	if err != nil {
		return nil, err
	}
	negT, err := parseExamples(neg, "negative")
	if err != nil {
		return nil, err
	}
	if len(posT) == 0 {
		return nil, fmt.Errorf("ilp: at least one positive example is required")
	}
	return &Dataset{
		Name:   name,
		KB:     kb,
		Pos:    posT,
		Neg:    negT,
		Modes:  ms,
		Search: search.Settings{}.WithDefaults(),
	}, nil
}

// SequentialOptions tunes LearnSequential.
type SequentialOptions struct {
	// CoverParallelism shards coverage tests across this many goroutines
	// (<0 = all cores, ≤1 = serial). The learned theory is identical.
	CoverParallelism int
}

// LearnSequential runs the sequential MDIE covering algorithm (the paper's
// Figure 1 baseline) with the dataset's recommended settings.
func LearnSequential(ds *Dataset, opts ...SequentialOptions) (*SequentialResult, error) {
	var o SequentialOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	ex := search.NewExamples(ds.Pos, ds.Neg)
	return covering.Learn(ds.KB, ex, ds.Modes, covering.Config{
		Search:           ds.Search,
		Bottom:           ds.Bottom,
		Budget:           ds.Budget,
		CoverParallelism: o.CoverParallelism,
	})
}

// ParallelOptions tunes LearnParallel beyond workers and width.
type ParallelOptions struct {
	// Seed drives example partitioning (default 1).
	Seed int64
	// Cost overrides the simulated cluster model.
	Cost CostModel
	// Trace observes simulated cluster events.
	Trace func(cluster.Event)
	// Repartition re-balances uncovered positives across workers before
	// every epoch (the §4.1 alternative; costs communication).
	Repartition bool
	// Balance enables throughput-aware load rebalancing between epochs:
	// the master deals uncovered positives proportionally to each worker's
	// measured throughput instead of evenly (supersedes Repartition when
	// both are set). Metrics.Rebalances counts the barriers.
	Balance bool
	// CoverParallelism shards each worker's coverage tests across this
	// many goroutines (<0 = all cores, ≤1 = serial); real multicore
	// speedup inside the simulation, identical results.
	CoverParallelism int
	// Recover enables worker-failure recovery: a dead worker is excluded,
	// its examples are redistributed, and the run completes on the
	// survivors (Metrics.Recoveries/LostWorkers count the events).
	// Failure-free runs are identical with either setting.
	Recover bool
	// RecvTimeout bounds every blocking protocol receive; 0 = no deadline.
	RecvTimeout time.Duration
	// CheckpointDir makes the master durable: epoch-boundary snapshots are
	// written there atomically so a crashed master can resume
	// (Metrics.MasterRestarts counts resumes). Wire traffic is unchanged.
	CheckpointDir string
	// PublishDir streams serving snapshots: the master writes an immutable
	// internal/serve artifact (theory + background + examples) there at
	// every epoch boundary and after the final epoch, for cmd/ilpserve to
	// pick up with -watch. Wire traffic is unchanged.
	PublishDir string
	// WireCodec selects the payload encoding protocol messages travel in:
	// the zero value is the compact symbol-interned wire codec,
	// cluster.CodecGob the legacy gob framing (-wirecodec gob). Theories
	// are byte-identical across codecs; bytes and virtual transfer times
	// differ.
	WireCodec cluster.Codec
}

// LearnParallel runs p²-mdie (the paper's pipelined data-parallel
// algorithm) with the given worker count and pipeline width
// (width ≤ 0 = unlimited). The returned metrics include the learned
// theory, the simulated cluster makespan, communication volume and epochs.
func LearnParallel(ds *Dataset, workers, width int, opts ...ParallelOptions) (*ParallelMetrics, error) {
	var o ParallelOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	var publish func(int, []logic.Clause) error
	if o.PublishDir != "" {
		fp := core.Fingerprint(ds.KB, ds.Pos, ds.Neg)
		publish = serve.Publisher(o.PublishDir, ds.Name, fp, ds.KB, ds.Budget, ds.Pos, ds.Neg)
	}
	return core.Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, core.Config{
		Workers:              workers,
		Width:                width,
		Seed:                 o.Seed,
		Search:               ds.Search,
		Bottom:               ds.Bottom,
		Budget:               ds.Budget,
		Cost:                 o.Cost,
		Trace:                o.Trace,
		RepartitionEachEpoch: o.Repartition,
		Balance:              o.Balance,
		CoverParallelism:     o.CoverParallelism,
		Recover:              o.Recover,
		RecvTimeout:          o.RecvTimeout,
		CheckpointDir:        o.CheckpointDir,
		Publish:              publish,
		WireCodec:            o.WireCodec,
	})
}

// LearnParallelCoverage runs the related-work baseline (§6): a serial MDIE
// search whose coverage tests are distributed over the workers.
func LearnParallelCoverage(ds *Dataset, workers int, opts ...ParallelOptions) (*ParallelCoverageMetrics, error) {
	var o ParallelOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return parcov.Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, parcov.Config{
		Workers:   workers,
		Seed:      o.Seed,
		Search:    ds.Search,
		Bottom:    ds.Bottom,
		Budget:    ds.Budget,
		Cost:      o.Cost,
		WireCodec: o.WireCodec,
	})
}

// Accuracy scores a theory on labelled examples: the fraction of positives
// covered plus negatives not covered.
func Accuracy(ds *Dataset, theory []Clause, pos, neg []Term) float64 {
	return covering.Accuracy(ds.KB, theory, pos, neg, ds.Budget)
}

// Covers reports whether the theory entails the ground example atom under
// the dataset's background knowledge.
func Covers(ds *Dataset, theory []Clause, example Term) bool {
	m := solve.NewMachine(ds.KB, ds.Budget)
	return search.TheoryCovers(m, theory, example)
}

// CVResult summarises a sequential-vs-parallel cross-validation.
type CVResult struct {
	Folds  int
	SeqAcc []float64
	ParAcc []float64
	// TTest compares parallel and sequential per-fold accuracies (paired,
	// two-sided; the paper tests at 98% confidence).
	TTest TTestResult
}

// MeanSeq returns the mean sequential accuracy.
func (r *CVResult) MeanSeq() float64 { return stats.Mean(r.SeqAcc) }

// MeanPar returns the mean parallel accuracy.
func (r *CVResult) MeanPar() float64 { return stats.Mean(r.ParAcc) }

// CrossValidate runs k-fold cross-validation (the paper uses k = 5)
// comparing the sequential baseline against p²-mdie with the given worker
// count and width on each fold.
func CrossValidate(ds *Dataset, k, workers, width int, seed int64) (*CVResult, error) {
	folds, err := xval.KFold(ds.Pos, ds.Neg, k, seed)
	if err != nil {
		return nil, err
	}
	res := &CVResult{Folds: k}
	for fi, fold := range folds {
		ex := search.NewExamples(fold.TrainPos, fold.TrainNeg)
		seq, err := covering.Learn(ds.KB, ex, ds.Modes, covering.Config{
			Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
		})
		if err != nil {
			return nil, err
		}
		res.SeqAcc = append(res.SeqAcc, covering.Accuracy(ds.KB, seq.Theory, fold.TestPos, fold.TestNeg, ds.Budget))
		par, err := core.Learn(ds.KB, fold.TrainPos, fold.TrainNeg, ds.Modes, core.Config{
			Workers: workers, Width: width, Seed: seed + int64(fi),
			Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
		})
		if err != nil {
			return nil, err
		}
		res.ParAcc = append(res.ParAcc, covering.Accuracy(ds.KB, par.Theory, fold.TestPos, fold.TestNeg, ds.Budget))
	}
	if tt, err := stats.PairedTTest(res.ParAcc, res.SeqAcc); err == nil {
		res.TTest = tt
	}
	return res, nil
}

// MinimizeTheory removes redundant rules (θ-subsumption between rules) and
// redundant body literals (Plotkin reduction within rules), returning an
// equivalent, canonicalised theory. p²-mdie's epochs can accept
// overlapping rules from independently partitioned searches, so minimising
// the final theory is a common post-processing step.
func MinimizeTheory(rules []Clause) []Clause { return theory.Minimize(rules) }

// TheoryStats summarises a theory's shape (rule/fact counts, body sizes).
type TheoryStats = theory.Stats

// SummarizeTheory computes TheoryStats.
func SummarizeTheory(rules []Clause) TheoryStats { return theory.Summarize(rules) }

// Confusion is a binary confusion matrix with accuracy/precision/recall/F1.
type Confusion = theory.Confusion

// EvaluateTheory scores a theory on labelled examples, returning the full
// confusion matrix (Accuracy only reports the diagonal fraction).
func EvaluateTheory(ds *Dataset, rules []Clause, pos, neg []Term) Confusion {
	return theory.Evaluate(ds.KB, rules, pos, neg, ds.Budget)
}

// ParseTheory parses a theory from Prolog-subset source (one clause per
// '.'-terminated statement) — useful for evaluating hand-written theories.
func ParseTheory(src string) ([]Clause, error) {
	return logic.ParseProgram(src)
}

// TheoryString renders a theory one clause per line, with trailing periods.
func TheoryString(theory []Clause) string {
	out := ""
	for _, c := range theory {
		out += c.String() + ".\n"
	}
	return out
}
