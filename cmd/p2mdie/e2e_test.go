package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// The e2e tests exercise the built binary: a real master process and real
// worker processes talking over loopback TCP, asserting the learned
// theory is byte-identical to the simulated-cluster run — the acceptance
// bar for the multi-process deployment.

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "p2mdie-e2e")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "p2mdie")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

// syncBuffer is a bytes.Buffer safe for the two writers a workerProc has:
// the exec stderr copier and the stdout scanner goroutine (the suite runs
// under -race in CI).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) WriteString(x string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.WriteString(x)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// workerProc is one spawned -serve process.
type workerProc struct {
	cmd  *exec.Cmd
	addr string
	out  *syncBuffer
}

// startWorker launches a worker on an ephemeral port and scrapes its
// actual address from the "listening on" line.
func startWorker(t *testing.T, ctx context.Context, bin string, datasetArgs []string) *workerProc {
	t.Helper()
	args := append(append([]string{}, datasetArgs...), "-serve", "127.0.0.1:0", "-q")
	cmd := exec.CommandContext(ctx, bin, args...)
	buf := &syncBuffer{}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		t.Fatalf("worker produced no output; stderr: %s", buf.String())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		cmd.Process.Kill()
		t.Fatalf("worker first line %q has no address", line)
	}
	w := &workerProc{cmd: cmd, addr: strings.TrimSpace(line[i+len(marker):]), out: buf}
	go func() {
		for sc.Scan() {
			buf.WriteString(sc.Text() + "\n")
		}
		io.Copy(io.Discard, stdout)
	}()
	return w
}

func run(t *testing.T, ctx context.Context, bin string, args ...string) string {
	t.Helper()
	out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("p2mdie %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

// theorySection extracts the printed theory (the lines after "theory:").
func theorySection(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "theory:\n")
	if i < 0 {
		t.Fatalf("no theory section in output:\n%s", out)
	}
	return out[i+len("theory:\n"):]
}

var shapeRe = regexp.MustCompile(`(\d+) rules \((\d+) adopted facts\), (\d+) epochs`)

// TestLoopbackMatchesSimulated spawns 1 master + 2 workers as separate
// processes over loopback TCP on each paper dataset and requires the
// learned theory to be byte-identical to the simulated-cluster run's.
func TestLoopbackMatchesSimulated(t *testing.T) {
	bin := binary(t)
	for _, dataset := range []string{"pyrimidines", "mesh", "carcinogenesis"} {
		dataset := dataset
		t.Run(dataset, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			dsArgs := []string{"-dataset", dataset, "-scale", "0.05", "-seed", "1"}

			simOut := run(t, ctx, bin, append(append([]string{}, dsArgs...),
				"-workers", "2", "-width", "10", "-v", "-q")...)

			w1 := startWorker(t, ctx, bin, dsArgs)
			w2 := startWorker(t, ctx, bin, dsArgs)
			tcpOut := run(t, ctx, bin, append(append([]string{}, dsArgs...),
				"-master", "-workers", w1.addr+","+w2.addr, "-width", "10", "-v", "-q")...)
			if err := w1.cmd.Wait(); err != nil {
				t.Fatalf("worker 1: %v\n%s", err, w1.out.String())
			}
			if err := w2.cmd.Wait(); err != nil {
				t.Fatalf("worker 2: %v\n%s", err, w2.out.String())
			}

			simTheory := theorySection(t, simOut)
			tcpTheory := theorySection(t, tcpOut)
			if simTheory != tcpTheory {
				t.Fatalf("theories differ on %s:\n--- simulated ---\n%s--- tcp ---\n%s", dataset, simTheory, tcpTheory)
			}
			simShape := shapeRe.FindString(simOut)
			tcpShape := shapeRe.FindString(tcpOut)
			if simShape == "" || simShape != tcpShape {
				t.Fatalf("run shapes differ: sim %q vs tcp %q", simShape, tcpShape)
			}
		})
	}
}

// TestTrafficJSON checks the -traffic json dump on both transports: valid
// JSON, correct node count, and the same per-link accounting shape.
func TestTrafficJSON(t *testing.T) {
	bin := binary(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	dsArgs := []string{"-dataset", "trains", "-seed", "1"}

	extract := func(out string) trafficDump {
		i := strings.Index(out, "{")
		j := strings.LastIndex(out, "}")
		if i < 0 || j < i {
			t.Fatalf("no JSON object in output:\n%s", out)
		}
		var d trafficDump
		if err := json.Unmarshal([]byte(out[i:j+1]), &d); err != nil {
			t.Fatalf("traffic JSON: %v\n%s", err, out[i:j+1])
		}
		return d
	}

	simOut := run(t, ctx, bin, append(append([]string{}, dsArgs...),
		"-workers", "2", "-width", "5", "-traffic", "json", "-q")...)
	sim := extract(simOut)
	if sim.Transport != "sim" || sim.Nodes != 3 || sim.TotalMsgs <= 0 || len(sim.Links) == 0 {
		t.Fatalf("bad sim traffic dump: %+v", sim)
	}

	w1 := startWorker(t, ctx, bin, dsArgs)
	w2 := startWorker(t, ctx, bin, dsArgs)
	tcpOut := run(t, ctx, bin, append(append([]string{}, dsArgs...),
		"-master", "-workers", w1.addr+","+w2.addr, "-width", "5", "-traffic", "json", "-q")...)
	w1.cmd.Wait()
	w2.cmd.Wait()
	tcp := extract(tcpOut)
	if tcp.Transport != "tcp" || tcp.Nodes != 3 || tcp.TotalMsgs != sim.TotalMsgs {
		t.Fatalf("bad tcp traffic dump (sim msgs %d): %+v", sim.TotalMsgs, tcp)
	}
	// Worker-originated links are byte-identical across transports; the
	// master's rows differ only by the partition shipping in kindLoad.
	simBytes := map[string]int64{}
	for _, l := range sim.Links {
		simBytes[fmt.Sprintf("%d>%d", l.From, l.To)] = l.Bytes
	}
	for _, l := range tcp.Links {
		want, ok := simBytes[fmt.Sprintf("%d>%d", l.From, l.To)]
		if !ok {
			t.Errorf("tcp has link %d->%d the simulation lacks", l.From, l.To)
			continue
		}
		if l.From != 0 && l.Bytes != want {
			t.Errorf("link %d->%d bytes: tcp %d vs sim %d", l.From, l.To, l.Bytes, want)
		}
		if l.From == 0 && l.Bytes <= want {
			t.Errorf("link %d->%d bytes: tcp %d should exceed sim %d (partition shipping)", l.From, l.To, l.Bytes, want)
		}
	}
}

// TestFingerprintMismatchFailsFast starts a worker on a different dataset
// and requires the master to reject the join with a useful error.
func TestFingerprintMismatchFailsFast(t *testing.T) {
	bin := binary(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	w := startWorker(t, ctx, bin, []string{"-dataset", "mesh", "-scale", "0.05", "-seed", "1"})
	out, err := exec.CommandContext(ctx, bin,
		"-dataset", "trains", "-seed", "1",
		"-master", "-workers", w.addr, "-q").CombinedOutput()
	if err == nil {
		t.Fatalf("master accepted a worker loaded with a different dataset:\n%s", out)
	}
	if !strings.Contains(string(out), "fingerprint") {
		t.Fatalf("error does not mention the fingerprint:\n%s", out)
	}
	w.cmd.Wait() // worker exits (join rejected)
}
