// Command p2mdie learns a theory from one of the bundled datasets, either
// sequentially (the paper's Fig. 1 baseline), with the pipelined
// data-parallel p²-mdie algorithm on the simulated cluster, or — deployed
// as separate processes — over real TCP (the paper's Beowulf setting).
//
// Single-process examples:
//
//	p2mdie -dataset trains
//	p2mdie -dataset carcinogenesis -workers 8 -width 10
//	p2mdie -dataset pyrimidines -scale 0.25 -workers 4 -width 10 -v
//
// Multi-process deployment (every process must load the same dataset, i.e.
// be started with the same -dataset/-scale/-seed or -file flags; the join
// handshake rejects mismatches):
//
//	p2mdie -dataset pyrimidines -serve 127.0.0.1:7771            # worker 1
//	p2mdie -dataset pyrimidines -serve 127.0.0.1:7772            # worker 2
//	p2mdie -dataset pyrimidines -master \
//	       -workers 127.0.0.1:7771,127.0.0.1:7772 -width 10 -v   # master
//
// The master ships each worker its example partition and the search
// settings over the wire (kindLoad), so only the master's -width,
// -strategy and -nobatch matter; -seed is part of the dataset identity
// (it shapes the generated examples, and so the fingerprint) and must
// match on every process, with the master's copy also driving the
// partitioning; a worker's -coverpar stays local to that worker. With the
// same dataset and seed, the TCP run learns a theory byte-identical to
// the simulated run's.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/faultline"
	"repro/internal/netcluster"
	"repro/internal/search"
	"repro/internal/shape"
	srv "repro/internal/serve"

	ilp "repro"
)

// defaultCodec lets CI re-run whole test suites under the legacy codec
// (ILP_WIRECODEC=gob) without threading a flag through every spawn, the
// same pattern as solve's ILP_NOVM. An explicit -wirecodec still wins.
func defaultCodec() string {
	if v := os.Getenv("ILP_WIRECODEC"); v != "" {
		return v
	}
	return "wire"
}

func main() {
	var (
		dataset  = flag.String("dataset", "trains", "dataset: trains, carcinogenesis, mesh, pyrimidines")
		file     = flag.String("file", "", "load the dataset from a text file (ilpgen format) instead")
		scale    = flag.Float64("scale", 1.0, "scale factor for dataset example counts (paper sizes at 1.0)")
		seed     = flag.Int64("seed", 1, "generator / partition seed")
		workers  = flag.String("workers", "0", "p²-mdie workers: a count on the simulated cluster (0 = sequential baseline), or with -master a comma-separated worker address list")
		width    = flag.Int("width", 10, "pipeline width W (0 = unlimited, the paper's 'nolimit')")
		strategy = flag.String("strategy", "bfs", "search strategy: bfs (paper) or bestfirst")
		coverPar = flag.Int("coverpar", 0, "shard coverage tests across N goroutines per learner (-1 = all cores, 0/1 = serial); with workers the pool is per worker, so total concurrency is workers*N; in -serve mode this applies to the local worker only")
		noBatch  = flag.Bool("nobatch", false, "evaluate search candidates one Coverage call at a time instead of per-node batches (A/B baseline; results are identical)")
		noVM     = flag.Bool("novm", false, "resolve clauses with the tree-walking interpreter instead of the compiled bytecode VM (A/B baseline; results are identical)")
		serve    = flag.String("serve", "", "run as a TCP worker: listen on this address, join the master, receive a partition (use host:0 for an ephemeral port; the listen address and a final status line always print so orchestrators can scrape them)")
		masterMd = flag.Bool("master", false, "run as the TCP master over the workers listed in -workers")
		listen   = flag.String("listen", "", "with -master: also accept mid-run worker joins on this address (the actual address prints so orchestrators can scrape it); joiners attach with -join")
		joinAddr = flag.String("join", "", "attach to a RUNNING master's -listen address as a late worker: join the cluster mid-run, get welcomed into the ring and receive a share at the next rebalance (combine with -serve to pin this worker's own listen address, default 127.0.0.1:0)")
		balance  = flag.Bool("balance", false, "throughput-aware load rebalancing: between epochs the master redeals uncovered positives proportionally to each worker's measured throughput and per-example cost instead of keeping the static random partition (master flag; workers inherit it at load)")
		traffic  = flag.String("traffic", "", "after a parallel run, dump the per-link byte/message table: 'json' or 'text' (both transports use the same accounting)")
		recov    = flag.Bool("recover", false, "tolerate worker failures: exclude a dead worker, redistribute its partition over the survivors and re-issue the in-flight epoch instead of aborting (master flag; workers inherit it at load)")
		ckptDir  = flag.String("checkpoint", "", "master durability: write an atomic epoch-boundary snapshot of the master's state under this directory (keeping the last two); a crashed master restarts with -resume and learns a theory byte-identical to a failure-free run")
		resume   = flag.Bool("resume", false, "restart a crashed TCP master from its latest -checkpoint snapshot: re-bind the checkpointed listen address, wait for the workers to reconnect, roll the cluster back to the boundary and continue the run (requires -checkpoint; the dataset flags must match the crashed run's)")
		orphanTO = flag.Duration("orphantimeout", 0, "worker orphan regime on master death: instead of failing, workers hold their state and redial the master's address with exponential backoff for up to this long, resuming when a -resume'd master re-admits them (master flag; workers inherit it at load; 0 = master death kills workers)")
		crashAt  = flag.Int64("crashat", 0, "fault injection: kill this master process (exit 137, no cleanup — as if kill -9) when its N'th protocol op is reached; deterministic under a fixed dataset and seed (testing aid for -checkpoint/-resume)")
		flapAt   = flag.Int64("flapat", 0, "fault injection: drop all of this master's TCP links (a transient partition) when its N'th protocol op is reached; with -linkgrace the session layer replays the gap and the run completes with zero recoveries (testing aid for the link-resilience layer)")
		linkGr   = flag.Duration("linkgrace", 0, "TCP link-reconnect grace window (netcluster LinkGrace): a failed link gets this long to redial and replay before it escalates to a peer-down event; 0 = fail immediately (the pre-grace behaviour)")
		pubDir   = flag.String("publish", "", "learn-then-serve pipeline: write an immutable serving snapshot (theory + background + examples, internal/serve format) under this directory at every epoch boundary and after the final epoch, for ilpserve -watch to hot-swap in; with the sequential baseline the final theory publishes once (master flag; workers ignore it)")
		recvTO   = flag.Duration("recvtimeout", 0, "bound every blocking protocol receive (core.Config.RecvTimeout); 0 = no deadline, rely on the transport's failure detection")
		hbEvery  = flag.Duration("heartbeat", 0, "TCP per-link heartbeat period (netcluster HeartbeatEvery); 0 = default 500ms")
		joinTO   = flag.Duration("jointimeout", 0, "TCP join timeout: a worker's wait for the master's welcome and the master's dial retries (netcluster JoinTimeout); 0 = default 60s")
		wcodec   = flag.String("wirecodec", defaultCodec(), "protocol payload encoding: wire (compact symbol-interned binary, the default) or gob (the original encoding/gob framing, kept for A/B); the master's choice rules the cluster — TCP workers adopt it at join, and a build that does not speak it is refused (default also via ILP_WIRECODEC)")
		shapeFl  = flag.String("shape", "", "throttle every TCP link in userspace (tc/netem-style, no root needed): comma-separated lat=<duration>,bw=<rate>, e.g. lat=5ms,bw=100mbit; pass the same value to every process for symmetric links. The master's shape also becomes the cluster's virtual-clock cost model, so sim-clock predictions can be checked against measured wall time")
		verbose  = flag.Bool("v", false, "print the learned theory")
		quiet    = flag.Bool("q", false, "suppress everything except the metrics line")
	)
	flag.Parse()
	codec, err := cluster.ParseCodec(*wcodec)
	if err != nil {
		fail(err)
	}
	shp, err := shape.Parse(*shapeFl)
	if err != nil {
		fail(err)
	}

	var ds *ilp.Dataset
	if *file != "" {
		var src []byte
		if src, err = os.ReadFile(*file); err == nil {
			ds, err = ilp.LoadDataset(*file, string(src))
		}
	} else {
		ds, err = loadDataset(*dataset, *scale, *seed)
	}
	if err != nil {
		fail(err)
	}
	if st, serr := search.ParseStrategy(*strategy); serr != nil {
		fail(serr)
	} else {
		ds.Search.Strategy = st
	}
	ds.Search.NoBatchEval = *noBatch
	ds.Search.NoVM = *noVM
	if *traffic != "" && *traffic != "json" && *traffic != "text" {
		fail(fmt.Errorf("unknown -traffic mode %q (want json or text)", *traffic))
	}

	opts := runOptions{
		codec:         codec,
		shape:         shp,
		recover:       *recov,
		recvTimeout:   *recvTO,
		heartbeat:     *hbEvery,
		joinTimeout:   *joinTO,
		balance:       *balance,
		listen:        *listen,
		checkpointDir: *ckptDir,
		orphanTimeout: *orphanTO,
		crashAt:       *crashAt,
		flapAt:        *flapAt,
		linkGrace:     *linkGr,
		publishDir:    *pubDir,
	}

	if *resume {
		if *ckptDir == "" {
			fail(fmt.Errorf("-resume needs -checkpoint DIR (the crashed master's snapshot directory)"))
		}
		runResume(ds, *traffic, opts, *verbose, *quiet)
		return
	}
	if *joinAddr != "" {
		runJoin(ds, *joinAddr, *serve, *coverPar, opts, *quiet)
		return
	}
	if *serve != "" {
		runServe(ds, *serve, *coverPar, opts, *quiet)
		return
	}
	if *masterMd {
		runTCPMaster(ds, *workers, *width, *seed, *traffic, opts, *verbose, *quiet)
		return
	}

	workerCount, err := strconv.Atoi(*workers)
	if err != nil {
		fail(fmt.Errorf("-workers %q: need a worker count (or add -master for an address list)", *workers))
	}
	if !*quiet {
		fmt.Println(ds.String())
	}

	var theory []ilp.Clause
	if workerCount <= 0 {
		res, err := ilp.LearnSequential(ds, ilp.SequentialOptions{CoverParallelism: *coverPar})
		if err != nil {
			fail(err)
		}
		theory = res.Theory
		fmt.Printf("sequential: %d rules (%d adopted facts), %d searches, %d generated rules, %d inferences, %.2fs wall\n",
			res.RulesLearned, res.GroundFactsAdopted, res.Searches, res.GeneratedRules,
			res.Inferences, res.Duration.Seconds())
		// The sequential baseline has no epoch boundaries: publish the final
		// theory once so -publish works in every learning mode.
		if hook := publishHook(ds, opts.publishDir); hook != nil {
			if err := hook(1, theory); err != nil {
				fail(err)
			}
		}
	} else {
		met, err := ilp.LearnParallel(ds, workerCount, *width, ilp.ParallelOptions{
			Seed:             *seed,
			Cost:             shapeCostModel(shp),
			WireCodec:        codec,
			CoverParallelism: *coverPar,
			Recover:          opts.recover,
			RecvTimeout:      opts.recvTimeout,
			Balance:          opts.balance,
			CheckpointDir:    opts.checkpointDir,
			PublishDir:       opts.publishDir,
		})
		if err != nil {
			fail(err)
		}
		theory = met.Theory
		printParallelMetrics("sim", met, *width)
		dumpTraffic(*traffic, "sim", met.Traffic)
	}
	fmt.Printf("training accuracy: %.2f%%\n", 100*ilp.Accuracy(ds, theory, ds.Pos, ds.Neg))
	if *verbose {
		fmt.Println("theory:")
		fmt.Print(ilp.TheoryString(theory))
	}
}

// runOptions carries the fault-tolerance and timeout flags shared by the
// deployment modes (README "Timeouts and fault tolerance" documents the
// defaults).
type runOptions struct {
	codec         cluster.Codec
	shape         shape.Config
	recover       bool
	recvTimeout   time.Duration
	heartbeat     time.Duration
	joinTimeout   time.Duration
	balance       bool
	listen        string
	checkpointDir string
	orphanTimeout time.Duration
	crashAt       int64
	flapAt        int64
	linkGrace     time.Duration
	publishDir    string
}

// applyTransport stamps the codec and link-shaping options onto a
// netcluster config. With -shape set, every conn (dialed or accepted) is
// wrapped in the userspace throttle, and on the master the cost model's
// transfer terms are aligned to the shaped link — workers adopt the
// master's model at join — so the virtual clock predicts exactly what the
// throttle enforces. A term -shape leaves out is modelled as free (1 ns
// latency, ~unbounded bandwidth), matching the unthrottled loopback
// underneath, rather than falling back to the Beowulf defaults.
func applyTransport(ncfg netcluster.Config, opts runOptions) netcluster.Config {
	ncfg.Codec = opts.codec
	if opts.shape.Enabled() {
		ncfg.ShapeConn = opts.shape.Wrap
		ncfg.Model = shapeCostModel(opts.shape)
	}
	return ncfg
}

// shapeCostModel translates a link shape into the cluster cost model with
// the same transfer terms. Zero when unshaped, so callers fall back to
// their usual default (the paper's Beowulf model).
func shapeCostModel(c shape.Config) cluster.CostModel {
	if !c.Enabled() {
		return cluster.CostModel{}
	}
	m := cluster.CostModel{Latency: c.Latency, BandwidthBps: c.BandwidthBps}
	if m.Latency <= 0 {
		m.Latency = time.Nanosecond
	}
	if m.BandwidthBps <= 0 {
		m.BandwidthBps = 1e18
	}
	return m
}

// publishHook builds the core.Config.Publish hook for -publish, or nil when
// the flag is unset. The snapshot carries the full task, so a fresh ilpserve
// process can serve it with no other inputs.
func publishHook(ds *ilp.Dataset, dir string) func(int, []ilp.Clause) error {
	if dir == "" {
		return nil
	}
	fp := core.Fingerprint(ds.KB, ds.Pos, ds.Neg)
	return srv.Publisher(dir, ds.Name, fp, ds.KB, ds.Budget, ds.Pos, ds.Neg)
}

// crashExitCode is the -crashat exit status: 128+9, what a kill -9 would
// report, so orchestrators treat the injected crash as a hard kill.
const crashExitCode = 137

// masterTransport wraps the master's node in the faultline schedule when
// -crashat or -flapat is set; otherwise it is the node itself. A scheduled
// flap drops the node's real TCP links (OnFlap → DropLinks) so the blip is
// healed by the session layer's replay, not by faultline's own buffering.
func masterTransport(node *netcluster.Node, opts runOptions) cluster.Transport {
	if opts.crashAt <= 0 && opts.flapAt <= 0 {
		return node
	}
	plan := faultline.Plan{CrashAtOp: opts.crashAt}
	if opts.flapAt > 0 {
		plan.FlapAtOp = opts.flapAt
		plan.OnFlap = func() { node.DropLinks() }
	}
	return faultline.Wrap(node, plan)
}

// dieIfCrashed turns the faultline's scheduled crash into a process death:
// exit immediately, no link teardown, no checkpoint flush — the peers see
// exactly what a kill -9 leaves behind.
func dieIfCrashed(err error) {
	if errors.Is(err, faultline.ErrCrashed) {
		fmt.Fprintf(os.Stderr, "p2mdie: crashed by -crashat schedule\n")
		os.Exit(crashExitCode)
	}
}

// runServe is the TCP worker mode: listen, join, receive the partition via
// the protocol, serve the run, report, exit.
func runServe(ds *ilp.Dataset, addr string, coverPar int, opts runOptions, quiet bool) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("p2mdie: worker listening on %s\n", ln.Addr())
	node, err := netcluster.ServeOn(ln, applyTransport(netcluster.Config{
		Fingerprint:    core.Fingerprint(ds.KB, ds.Pos, ds.Neg),
		HeartbeatEvery: opts.heartbeat,
		JoinTimeout:    opts.joinTimeout,
		LinkGrace:      opts.linkGrace,
	}, opts))
	if err != nil {
		fail(err)
	}
	if !quiet {
		fmt.Printf("p2mdie: joined as node %d of %d\n", node.ID(), node.Size())
	}
	// The recovery regime arrives from the master in kindLoad; the
	// worker-side flags only shape this node's transport timeouts.
	err = core.RunWorker(node, ds.KB, ds.Modes, core.Config{
		CoverParallelism: coverPar,
		RecvTimeout:      opts.recvTimeout,
	})
	if err != nil {
		// Slam the links shut so peers see a failure, not an orderly exit.
		node.Abort()
		fail(err)
	}
	node.Close()
	fmt.Printf("p2mdie: worker %d done, %.2fs simulated\n", node.ID(), node.Clock().Seconds())
}

// runJoin attaches a late worker to a running master (its -listen address):
// transport-level join first, then the ordinary worker loop — the welcome,
// ring membership and example share all arrive over the protocol.
func runJoin(ds *ilp.Dataset, masterAddr, listenAddr string, coverPar int, opts runOptions, quiet bool) {
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	node, err := netcluster.Join(masterAddr, listenAddr, applyTransport(netcluster.Config{
		Fingerprint:    core.Fingerprint(ds.KB, ds.Pos, ds.Neg),
		HeartbeatEvery: opts.heartbeat,
		JoinTimeout:    opts.joinTimeout,
		LinkGrace:      opts.linkGrace,
	}, opts))
	if err != nil {
		fail(err)
	}
	fmt.Printf("p2mdie: joined running cluster as node %d of %d (serving on %s)\n", node.ID(), node.Size(), node.Addr())
	// Everything semantics-bearing (including the recovery and balance
	// regimes) arrives from the master in the protocol-level welcome.
	err = core.RunWorker(node, ds.KB, ds.Modes, core.Config{
		CoverParallelism: coverPar,
		RecvTimeout:      opts.recvTimeout,
	})
	if err != nil {
		node.Abort()
		fail(err)
	}
	node.Close()
	fmt.Printf("p2mdie: worker %d done, %.2fs simulated\n", node.ID(), node.Clock().Seconds())
}

// runTCPMaster drives a multi-process run over the given worker addresses.
func runTCPMaster(ds *ilp.Dataset, addrList string, width int, seed int64, trafficMode string, opts runOptions, verbose, quiet bool) {
	if _, err := strconv.Atoi(addrList); err == nil {
		fail(fmt.Errorf("-master needs -workers host:port,... (got the count %q)", addrList))
	}
	addrs := strings.Split(addrList, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
		if addrs[i] == "" {
			fail(fmt.Errorf("-master needs -workers host:port,... with no empty entries (got %q)", addrList))
		}
	}
	if !quiet {
		fmt.Println(ds.String())
	}
	ncfg := applyTransport(netcluster.Config{
		Fingerprint:    core.Fingerprint(ds.KB, ds.Pos, ds.Neg),
		HeartbeatEvery: opts.heartbeat,
		JoinTimeout:    opts.joinTimeout,
		LinkGrace:      opts.linkGrace,
	}, opts)
	var node *netcluster.Node
	var err error
	if opts.listen != "" {
		// Pre-bind the join listener so its address rides the welcome into
		// every worker's address book (and any -checkpoint snapshot): that
		// entry is where orphaned workers redial a -resume'd master.
		ln, lerr := net.Listen("tcp", opts.listen)
		if lerr != nil {
			fail(lerr)
		}
		node, err = netcluster.ConnectOn(ln, addrs, ncfg)
		if err != nil {
			fail(err)
		}
		// Always printed (even with -q) so orchestrators can scrape the
		// actual address when -listen used an ephemeral port.
		fmt.Printf("p2mdie: master accepting joins on %s\n", node.Addr())
	} else {
		if node, err = netcluster.Connect(addrs, ncfg); err != nil {
			fail(err)
		}
	}
	met, err := core.RunMaster(masterTransport(node, opts), ds.Pos, ds.Neg, core.Config{
		Workers:       len(addrs),
		Width:         width,
		Seed:          seed,
		Search:        ds.Search,
		Bottom:        ds.Bottom,
		Budget:        ds.Budget,
		Recover:       opts.recover,
		RecvTimeout:   opts.recvTimeout,
		Balance:       opts.balance,
		CheckpointDir: opts.checkpointDir,
		OrphanTimeout: opts.orphanTimeout,
		Fingerprint:   core.Fingerprint(ds.KB, ds.Pos, ds.Neg),
		Publish:       publishHook(ds, opts.publishDir),
	})
	if err != nil {
		dieIfCrashed(err)
		node.Abort()
		fail(err)
	}
	node.Close()
	printParallelMetrics("tcp", met, width)
	dumpTraffic(trafficMode, "tcp", met.Traffic)
	fmt.Printf("training accuracy: %.2f%%\n", 100*ilp.Accuracy(ds, met.Theory, ds.Pos, ds.Neg))
	if verbose {
		fmt.Println("theory:")
		fmt.Print(ilp.TheoryString(met.Theory))
	}
}

// runResume restarts a crashed TCP master from its latest checkpoint: the
// dataset is re-loaded first (rebuilding the interned symbol table the
// snapshot's terms reference), the snapshot's own address book supplies the
// listen address to re-bind and the workers to wait for, and the resume
// handshake rolls the cluster back to the boundary before continuing.
func runResume(ds *ilp.Dataset, trafficMode string, opts runOptions, verbose, quiet bool) {
	fp := core.Fingerprint(ds.KB, ds.Pos, ds.Neg)
	ck, err := core.LoadCheckpoint(opts.checkpointDir)
	if err != nil {
		fail(err)
	}
	if ck.Fingerprint() != fp {
		fail(fmt.Errorf("checkpoint fingerprint %x does not match the loaded dataset %x — start p2mdie -resume with the crashed run's exact dataset flags", ck.Fingerprint(), fp))
	}
	peers := ck.Peers()
	if len(peers) == 0 || peers[0] == "" {
		fail(fmt.Errorf("checkpoint carries no master listen address (the crashed master ran without -listen); cannot resume over TCP"))
	}
	if !quiet {
		fmt.Println(ds.String())
	}
	node, err := netcluster.Resume(peers[0], ck.Size(), peers, applyTransport(netcluster.Config{
		Fingerprint:    fp,
		HeartbeatEvery: opts.heartbeat,
		JoinTimeout:    opts.joinTimeout,
		LinkGrace:      opts.linkGrace,
	}, opts))
	if err != nil {
		fail(err)
	}
	// Always printed so orchestrators can scrape where the master came back.
	fmt.Printf("p2mdie: master resumed at epoch %d (%d epochs done), accepting rejoins on %s\n", ck.Epoch(), ck.Epochs(), node.Addr())
	met, err := core.ResumeMaster(masterTransport(node, opts), ck, core.Config{
		RecvTimeout:   opts.recvTimeout,
		CheckpointDir: opts.checkpointDir, // stay durable across further crashes
		Fingerprint:   fp,
		Publish:       publishHook(ds, opts.publishDir),
	})
	if err != nil {
		dieIfCrashed(err)
		node.Abort()
		fail(err)
	}
	node.Close()
	printParallelMetrics("tcp", met, met.Width)
	dumpTraffic(trafficMode, "tcp", met.Traffic)
	fmt.Printf("training accuracy: %.2f%%\n", 100*ilp.Accuracy(ds, met.Theory, ds.Pos, ds.Neg))
	if verbose {
		fmt.Println("theory:")
		fmt.Print(ilp.TheoryString(met.Theory))
	}
}

func printParallelMetrics(transport string, met *ilp.ParallelMetrics, width int) {
	line := fmt.Sprintf("p2-mdie[%s] p=%d w=%s: %d rules (%d adopted facts), %d epochs, %.2fs simulated (%.2fs wall), %.2f MB / %d msgs",
		transport, met.Workers, widthLabel(width), met.RulesLearned, met.GroundFactsAdopted, met.Epochs,
		met.VirtualTime.Seconds(), met.WallTime.Seconds(),
		float64(met.CommBytes)/1e6, met.CommMessages)
	if met.LostWorkers > 0 || met.Recoveries > 0 {
		line += fmt.Sprintf(", recoveries=%d lost=%d", met.Recoveries, met.LostWorkers)
	}
	if met.Rebalances > 0 || met.JoinedWorkers > 0 {
		line += fmt.Sprintf(", rebalances=%d joined=%d", met.Rebalances, met.JoinedWorkers)
	}
	if len(met.JoinShares) > 0 {
		line += fmt.Sprintf(", join shares=%v", met.JoinShares)
	}
	if met.MasterRestarts > 0 || met.OrphanReconnects > 0 {
		line += fmt.Sprintf(", restarts=%d orphanreconnects=%d", met.MasterRestarts, met.OrphanReconnects)
	}
	if met.LinkFlaps > 0 || met.ReplayedFrames > 0 || met.FencedFrames > 0 {
		line += fmt.Sprintf(", linkflaps=%d replayed=%d fenced=%d", met.LinkFlaps, met.ReplayedFrames, met.FencedFrames)
	}
	fmt.Println(line)
}

// trafficDump is the JSON shape of -traffic json.
type trafficDump struct {
	Transport  string         `json:"transport"`
	Nodes      int            `json:"nodes"`
	TotalBytes int64          `json:"total_bytes"`
	TotalMsgs  int64          `json:"total_msgs"`
	Links      []cluster.Link `json:"links"`
}

func dumpTraffic(mode, transport string, tr cluster.Traffic) {
	switch mode {
	case "json":
		out, err := json.MarshalIndent(trafficDump{
			Transport:  transport,
			Nodes:      tr.N,
			TotalBytes: tr.TotalBytes(),
			TotalMsgs:  tr.TotalMsgs(),
			Links:      tr.Links(),
		}, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(out))
	case "text":
		fmt.Print(tr.String())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "p2mdie:", err)
	os.Exit(1)
}

func widthLabel(w int) string {
	if w <= 0 {
		return "nolimit"
	}
	return fmt.Sprintf("%d", w)
}

func loadDataset(name string, scale float64, seed int64) (*ilp.Dataset, error) {
	if scale == 1.0 || name == "trains" {
		return ilp.DatasetByName(name, seed)
	}
	n := func(x int) int {
		v := int(float64(x) * scale)
		if v < 8 {
			v = 8
		}
		return v
	}
	switch name {
	case "carcinogenesis":
		return datasets.CarcinogenesisSized(n(162), n(136), seed), nil
	case "mesh":
		return datasets.MeshSized(n(2840), n(278), seed), nil
	case "pyrimidines":
		return datasets.PyrimidinesSized(n(848), n(764), seed), nil
	case "trains-gen":
		return datasets.TrainsSized(n(100), seed), nil
	case "trains-skew":
		return datasets.TrainsSkewed(n(200), seed, 0.25), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}
