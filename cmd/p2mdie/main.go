// Command p2mdie learns a theory from one of the bundled datasets, either
// sequentially (the paper's Fig. 1 baseline) or with the pipelined
// data-parallel p²-mdie algorithm on the simulated cluster.
//
// Examples:
//
//	p2mdie -dataset trains
//	p2mdie -dataset carcinogenesis -workers 8 -width 10
//	p2mdie -dataset pyrimidines -scale 0.25 -workers 4 -width 10 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/search"

	ilp "repro"
)

func main() {
	var (
		dataset  = flag.String("dataset", "trains", "dataset: trains, carcinogenesis, mesh, pyrimidines")
		file     = flag.String("file", "", "load the dataset from a text file (ilpgen format) instead")
		scale    = flag.Float64("scale", 1.0, "scale factor for dataset example counts (paper sizes at 1.0)")
		seed     = flag.Int64("seed", 1, "generator / partition seed")
		workers  = flag.Int("workers", 0, "p²-mdie worker count (0 = run the sequential baseline)")
		width    = flag.Int("width", 10, "pipeline width W (0 = unlimited, the paper's 'nolimit')")
		strategy = flag.String("strategy", "bfs", "search strategy: bfs (paper) or bestfirst")
		coverPar = flag.Int("coverpar", 0, "shard coverage tests across N goroutines per learner (-1 = all cores, 0/1 = serial); with -workers > 0 the pool is per worker, so total concurrency is workers*N")
		noBatch  = flag.Bool("nobatch", false, "evaluate search candidates one Coverage call at a time instead of per-node batches (A/B baseline; results are identical)")
		verbose  = flag.Bool("v", false, "print the learned theory")
		quiet    = flag.Bool("q", false, "suppress everything except the metrics line")
	)
	flag.Parse()

	var ds *ilp.Dataset
	var err error
	if *file != "" {
		var src []byte
		if src, err = os.ReadFile(*file); err == nil {
			ds, err = ilp.LoadDataset(*file, string(src))
		}
	} else {
		ds, err = loadDataset(*dataset, *scale, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2mdie:", err)
		os.Exit(1)
	}
	if st, serr := search.ParseStrategy(*strategy); serr != nil {
		fmt.Fprintln(os.Stderr, "p2mdie:", serr)
		os.Exit(1)
	} else {
		ds.Search.Strategy = st
	}
	ds.Search.NoBatchEval = *noBatch
	if !*quiet {
		fmt.Println(ds.String())
	}

	var theory []ilp.Clause
	if *workers <= 0 {
		res, err := ilp.LearnSequential(ds, ilp.SequentialOptions{CoverParallelism: *coverPar})
		if err != nil {
			fmt.Fprintln(os.Stderr, "p2mdie:", err)
			os.Exit(1)
		}
		theory = res.Theory
		fmt.Printf("sequential: %d rules (%d adopted facts), %d searches, %d generated rules, %d inferences, %.2fs wall\n",
			res.RulesLearned, res.GroundFactsAdopted, res.Searches, res.GeneratedRules,
			res.Inferences, res.Duration.Seconds())
	} else {
		met, err := ilp.LearnParallel(ds, *workers, *width, ilp.ParallelOptions{Seed: *seed, CoverParallelism: *coverPar})
		if err != nil {
			fmt.Fprintln(os.Stderr, "p2mdie:", err)
			os.Exit(1)
		}
		theory = met.Theory
		fmt.Printf("p2-mdie p=%d w=%s: %d rules (%d adopted facts), %d epochs, %.2fs simulated (%.2fs wall), %.2f MB / %d msgs\n",
			met.Workers, widthLabel(*width), met.RulesLearned, met.GroundFactsAdopted, met.Epochs,
			met.VirtualTime.Seconds(), met.WallTime.Seconds(),
			float64(met.CommBytes)/1e6, met.CommMessages)
	}
	fmt.Printf("training accuracy: %.2f%%\n", 100*ilp.Accuracy(ds, theory, ds.Pos, ds.Neg))
	if *verbose {
		fmt.Println("theory:")
		fmt.Print(ilp.TheoryString(theory))
	}
}

func widthLabel(w int) string {
	if w <= 0 {
		return "nolimit"
	}
	return fmt.Sprintf("%d", w)
}

func loadDataset(name string, scale float64, seed int64) (*ilp.Dataset, error) {
	if scale == 1.0 || name == "trains" {
		return ilp.DatasetByName(name, seed)
	}
	n := func(x int) int {
		v := int(float64(x) * scale)
		if v < 8 {
			v = 8
		}
		return v
	}
	switch name {
	case "carcinogenesis":
		return datasets.CarcinogenesisSized(n(162), n(136), seed), nil
	case "mesh":
		return datasets.MeshSized(n(2840), n(278), seed), nil
	case "pyrimidines":
		return datasets.PyrimidinesSized(n(848), n(764), seed), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}
