package main

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestCodecByteIdentity is the acceptance bar for the wire codec: on each
// paper dataset the learned theory must be byte-identical across
// -wirecodec wire and -wirecodec gob, on both transports. The codec may
// change every frame on the wire, but never the run.
func TestCodecByteIdentity(t *testing.T) {
	bin := binary(t)
	for _, dataset := range []string{"pyrimidines", "mesh", "carcinogenesis"} {
		dataset := dataset
		t.Run(dataset, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			dsArgs := []string{"-dataset", dataset, "-scale", "0.05", "-seed", "1"}
			simArgs := append(append([]string{}, dsArgs...), "-workers", "2", "-width", "10", "-v", "-q")

			simWire := run(t, ctx, bin, append(append([]string{}, simArgs...), "-wirecodec", "wire")...)
			simGob := run(t, ctx, bin, append(append([]string{}, simArgs...), "-wirecodec", "gob")...)
			if a, b := theorySection(t, simWire), theorySection(t, simGob); a != b {
				t.Fatalf("sim theories differ across codecs on %s:\n--- wire ---\n%s--- gob ---\n%s", dataset, a, b)
			}

			// TCP under the legacy codec: the master's -wirecodec gob is
			// negotiated to the workers at join, so only the master carries
			// the flag.
			w1 := startWorker(t, ctx, bin, dsArgs)
			w2 := startWorker(t, ctx, bin, dsArgs)
			tcpGob := run(t, ctx, bin, append(append([]string{}, dsArgs...),
				"-master", "-workers", w1.addr+","+w2.addr, "-width", "10",
				"-wirecodec", "gob", "-v", "-q")...)
			if err := w1.cmd.Wait(); err != nil {
				t.Fatalf("worker 1: %v\n%s", err, w1.out.String())
			}
			if err := w2.cmd.Wait(); err != nil {
				t.Fatalf("worker 2: %v\n%s", err, w2.out.String())
			}
			if a, b := theorySection(t, simWire), theorySection(t, tcpGob); a != b {
				t.Fatalf("gob TCP theory differs from wire sim on %s:\n--- sim/wire ---\n%s--- tcp/gob ---\n%s", dataset, a, b)
			}
			simShape := shapeRe.FindString(simWire)
			tcpShape := shapeRe.FindString(tcpGob)
			if simShape == "" || simShape != tcpShape {
				t.Fatalf("run shapes differ: sim/wire %q vs tcp/gob %q", simShape, tcpShape)
			}
		})
	}
}

// TestShapedLinkMatchesLoopback runs master + 2 workers through the
// userspace link shaper (every process wrapped, symmetric links) and
// requires the same theory as raw loopback: shaping stretches time, not
// semantics.
func TestShapedLinkMatchesLoopback(t *testing.T) {
	bin := binary(t)
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()
	dsArgs := []string{"-dataset", "trains", "-seed", "1"}
	shapeArg := []string{"-shape", "lat=1ms,bw=200mbit"}

	w1 := startWorker(t, ctx, bin, dsArgs)
	w2 := startWorker(t, ctx, bin, dsArgs)
	plainOut := run(t, ctx, bin, append(append([]string{}, dsArgs...),
		"-master", "-workers", w1.addr+","+w2.addr, "-width", "5", "-v", "-q")...)
	w1.cmd.Wait()
	w2.cmd.Wait()

	s1 := startWorker(t, ctx, bin, append(append([]string{}, dsArgs...), shapeArg...))
	s2 := startWorker(t, ctx, bin, append(append([]string{}, dsArgs...), shapeArg...))
	shapedOut := run(t, ctx, bin, append(append(append([]string{}, dsArgs...), shapeArg...),
		"-master", "-workers", s1.addr+","+s2.addr, "-width", "5", "-v", "-q")...)
	if err := s1.cmd.Wait(); err != nil {
		t.Fatalf("shaped worker 1: %v\n%s", err, s1.out.String())
	}
	if err := s2.cmd.Wait(); err != nil {
		t.Fatalf("shaped worker 2: %v\n%s", err, s2.out.String())
	}

	if a, b := theorySection(t, plainOut), theorySection(t, shapedOut); a != b {
		t.Fatalf("shaped link changed the theory:\n--- loopback ---\n%s--- shaped ---\n%s", a, b)
	}
	if a, b := shapeRe.FindString(plainOut), shapeRe.FindString(shapedOut); a == "" || a != b {
		t.Fatalf("run shapes differ: loopback %q vs shaped %q", a, b)
	}
}

// runErr runs the binary expecting a non-zero exit, returning combined
// output and the exec error.
func runErr(ctx context.Context, bin string, args ...string) (string, error) {
	out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
	return string(out), err
}

// TestWirecodecFlagRejectsJunk pins the CLI contract.
func TestWirecodecFlagRejectsJunk(t *testing.T) {
	bin := binary(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := runErr(ctx, bin, "-dataset", "trains", "-wirecodec", "json", "-q")
	if err == nil || !strings.Contains(out, "wire") || !strings.Contains(out, "gob") {
		t.Fatalf("bad -wirecodec accepted: err=%v out=%s", err, out)
	}
	out, err = runErr(ctx, bin, "-dataset", "trains", "-shape", "lat=fast", "-q")
	if err == nil || !strings.Contains(out, "shape") {
		t.Fatalf("bad -shape accepted: err=%v out=%s", err, out)
	}
}
