package main

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	ilp "repro"
)

// The chaos e2e: a real multi-process TCP deployment loses one of its
// three worker processes to kill -9 mid-epoch, and the -recover master
// must finish on the survivors with a theory that still covers (or
// adopted) every positive example — the acceptance bar of the
// fault-tolerant epoch engine.

// chaosWorker is a -serve process whose output is captured with
// synchronised access (the shared syncBuffer), so the test can watch for
// the join before killing.
type chaosWorker struct {
	cmd  *exec.Cmd
	addr string
	out  syncBuffer
}

func (w *chaosWorker) output() string { return w.out.String() }

// startChaosWorker launches a verbose worker on an ephemeral port and
// scrapes its actual address.
func startChaosWorker(t *testing.T, ctx context.Context, bin string, datasetArgs []string) *chaosWorker {
	t.Helper()
	args := append(append([]string{}, datasetArgs...), "-serve", "127.0.0.1:0")
	cmd := exec.CommandContext(ctx, bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout // interleave; we only grep for markers
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	w := &chaosWorker{cmd: cmd}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		t.Fatal("worker produced no output")
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		cmd.Process.Kill()
		t.Fatalf("worker first line %q has no address", line)
	}
	w.addr = strings.TrimSpace(line[i+len(marker):])
	go func() {
		for sc.Scan() {
			w.out.WriteString(sc.Text() + "\n")
		}
	}()
	return w
}

// waitForOutput polls the worker's captured output for a marker.
func (w *chaosWorker) waitForOutput(t *testing.T, marker string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if strings.Contains(w.output(), marker) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("worker never printed %q; output:\n%s", marker, w.output())
}

var recoveriesRe = regexp.MustCompile(`recoveries=(\d+) lost=(\d+)`)

// TestChaosKillWorkerMidEpoch kills one of three TCP worker processes with
// SIGKILL mid-run. The -recover master must complete, report ≥ 1 recovery
// and exactly one lost worker, and produce a theory under which every
// positive of the full dataset is covered or adopted.
func TestChaosKillWorkerMidEpoch(t *testing.T) {
	bin := binary(t)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	dsArgs := []string{"-dataset", "pyrimidines", "-scale", "0.3", "-seed", "1"}

	w1 := startChaosWorker(t, ctx, bin, dsArgs)
	w2 := startChaosWorker(t, ctx, bin, dsArgs)
	w3 := startChaosWorker(t, ctx, bin, dsArgs)

	masterArgs := append(append([]string{}, dsArgs...),
		"-master", "-workers", w1.addr+","+w2.addr+","+w3.addr,
		"-width", "10", "-recover", "-v", "-q")
	master := exec.CommandContext(ctx, bin, masterArgs...)
	out, err := master.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	master.Stderr = master.Stdout
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill once the victim is provably inside the protocol (joined, so the
	// master is running epochs against it), but long before the run ends.
	w2.waitForOutput(t, "joined as node", 60*time.Second)
	time.Sleep(700 * time.Millisecond)
	if err := w2.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	w2.cmd.Wait() // SIGKILL: error expected, reap it

	var buf strings.Builder
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		buf.WriteString(sc.Text() + "\n")
	}
	if err := master.Wait(); err != nil {
		t.Fatalf("master failed despite -recover: %v\n%s", err, buf.String())
	}
	stdout := buf.String()

	m := recoveriesRe.FindStringSubmatch(stdout)
	if m == nil {
		t.Fatalf("master reported no recoveries:\n%s", stdout)
	}
	recoveries, _ := strconv.Atoi(m[1])
	lost, _ := strconv.Atoi(m[2])
	if recoveries < 1 {
		t.Fatalf("recoveries = %d, want ≥ 1\n%s", recoveries, stdout)
	}
	if lost != 1 {
		t.Fatalf("lost = %d, want 1\n%s", lost, stdout)
	}

	// Valid theory: every positive of the full dataset covered or adopted
	// (adopted facts are part of the printed theory). Re-load the same
	// dataset in-process and check coverage of the positives only.
	theory, err := ilp.ParseTheory(theorySection(t, stdout))
	if err != nil {
		t.Fatalf("parsing learned theory: %v", err)
	}
	ds, err := loadDataset("pyrimidines", 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cov := ilp.Accuracy(ds, theory, ds.Pos, nil); cov != 1.0 {
		t.Fatalf("positive coverage after recovery = %.4f, want 1.0\n%s", cov, stdout)
	}

	// The survivors must exit cleanly once the master closes.
	if err := w1.cmd.Wait(); err != nil {
		t.Fatalf("survivor 1: %v\n%s", err, w1.output())
	}
	if err := w3.cmd.Wait(); err != nil {
		t.Fatalf("survivor 3: %v\n%s", err, w3.output())
	}
}

// TestTrafficJSONGolden pins the -traffic json output shape byte-for-byte
// on a deterministic simulated run. Regenerate with UPDATE_GOLDEN=1 after
// intentional wire or accounting changes.
func TestTrafficJSONGolden(t *testing.T) {
	bin := binary(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	// The codec is pinned so an ILP_WIRECODEC=gob suite re-run does not
	// diff gob frame sizes against the wire-codec golden.
	out := run(t, ctx, bin, "-dataset", "trains", "-seed", "1", "-wirecodec", "wire",
		"-workers", "2", "-width", "5", "-traffic", "json", "-q")
	i := strings.Index(out, "{")
	j := strings.LastIndex(out, "}")
	if i < 0 || j < i {
		t.Fatalf("no JSON object in output:\n%s", out)
	}
	got := out[i:j+1] + "\n"

	// The shape must parse back into the documented dump struct with every
	// field populated, independent of the golden bytes.
	var d trafficDump
	if err := json.Unmarshal([]byte(got), &d); err != nil {
		t.Fatalf("traffic JSON does not parse: %v", err)
	}
	if d.Transport != "sim" || d.Nodes != 3 || d.TotalMsgs <= 0 || d.TotalBytes <= 0 || len(d.Links) == 0 {
		t.Fatalf("traffic JSON shape wrong: %+v", d)
	}

	golden := filepath.Join("testdata", "traffic_sim_trains.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("-traffic json drifted from golden %s.\nGot:\n%s\nWant:\n%s\nIf intentional, regenerate with UPDATE_GOLDEN=1.", golden, got, want)
	}
}
