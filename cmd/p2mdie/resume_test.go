package main

import (
	"context"
	"errors"
	"fmt"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The crash-resume e2e: a real TCP master running with -checkpoint and
// -orphantimeout is killed by the -crashat faultline schedule (exit 137,
// the kill -9 status), its worker processes go into the orphan regime and
// redial, and a fresh `p2mdie -resume` process re-binds the checkpointed
// address, rolls the cluster back and finishes the run — with a theory
// byte-identical to a failure-free run's. This is the acceptance bar for
// master fault tolerance over the real transport.

// TestCrashResumeByteIdentity crashes the master at two different protocol
// ops (one inside the first epoch, one several epochs in) and requires the
// resumed run's theory to match the failure-free simulated run's exactly.
func TestCrashResumeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-resume e2e skipped in -short")
	}
	bin := binary(t)
	dsArgs := []string{"-dataset", "pyrimidines", "-scale", "0.05", "-seed", "1"}

	// Failure-free baseline (the simulated run learns the same theory as a
	// TCP run by TestLoopbackMatchesSimulated, so it anchors both).
	baseCtx, baseCancel := context.WithTimeout(context.Background(), 120*time.Second)
	want := theorySection(t, run(t, baseCtx, bin, append(append([]string{}, dsArgs...),
		"-workers", "2", "-width", "10", "-v", "-q")...))
	baseCancel()

	// The master sees ~80 protocol ops on this dataset at p=2: op 8 is
	// inside the first epoch (right after load), op 60 several epochs deep;
	// both are well before the final stop broadcast (a crash there is
	// unresumable — the workers have already exited).
	for _, crashAt := range []int64{8, 60} {
		crashAt := crashAt
		t.Run(fmt.Sprintf("crashat=%d", crashAt), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
			defer cancel()
			ckdir := t.TempDir()

			w1 := startWorker(t, ctx, bin, dsArgs)
			w2 := startWorker(t, ctx, bin, dsArgs)

			// The doomed master: durable, orphan-tolerant workers, scheduled
			// crash. It must die with the kill -9 exit status, not fail(1).
			crashArgs := append(append([]string{}, dsArgs...),
				"-master", "-workers", w1.addr+","+w2.addr, "-width", "10",
				"-listen", "127.0.0.1:0", "-checkpoint", ckdir,
				"-orphantimeout", "60s", "-crashat", strconv.FormatInt(crashAt, 10), "-q")
			out, err := exec.CommandContext(ctx, bin, crashArgs...).CombinedOutput()
			var ee *exec.ExitError
			if !errors.As(err, &ee) || ee.ExitCode() != crashExitCode {
				t.Fatalf("crash master: want exit %d, got err=%v\n%s", crashExitCode, err, out)
			}

			// The second process takes over from the checkpoint; the orphaned
			// workers redial the checkpointed -listen address and the run
			// completes end to end.
			resumeOut := run(t, ctx, bin, append(append([]string{}, dsArgs...),
				"-resume", "-checkpoint", ckdir, "-v", "-q")...)
			if err := w1.cmd.Wait(); err != nil {
				t.Fatalf("worker 1 after resume: %v\n%s", err, w1.out.String())
			}
			if err := w2.cmd.Wait(); err != nil {
				t.Fatalf("worker 2 after resume: %v\n%s", err, w2.out.String())
			}

			if got := theorySection(t, resumeOut); got != want {
				t.Fatalf("resumed theory differs from failure-free run:\n--- failure-free ---\n%s--- resumed ---\n%s", want, got)
			}
			if !strings.Contains(resumeOut, "restarts=1") {
				t.Fatalf("resumed metrics line does not report restarts=1:\n%s", resumeOut)
			}
		})
	}
}
