package main

import (
	"bufio"
	"context"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	ilp "repro"
)

// The elastic e2e: a real multi-process TCP deployment grows mid-run. The
// master starts with two workers and a join listener; a third worker
// process attaches itself with -join, must be welcomed into the ring,
// receive a non-empty share at the rebalance barrier, and the run's theory
// must pass the same validity bar as the kill -9 chaos e2e.

var (
	joinAddrRe   = regexp.MustCompile(`accepting joins on (\S+)`)
	joinedRe     = regexp.MustCompile(`rebalances=(\d+) joined=(\d+)`)
	joinSharesRe = regexp.MustCompile(`join shares=\[([0-9 ]+)\]`)
)

func TestElasticJoinMidRun(t *testing.T) {
	bin := binary(t)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	dsArgs := []string{"-dataset", "pyrimidines", "-scale", "0.15", "-seed", "1"}

	w1 := startChaosWorker(t, ctx, bin, dsArgs)
	w2 := startChaosWorker(t, ctx, bin, dsArgs)

	masterArgs := append(append([]string{}, dsArgs...),
		"-master", "-workers", w1.addr+","+w2.addr,
		"-listen", "127.0.0.1:0", "-balance", "-width", "10", "-v", "-q")
	master := exec.CommandContext(ctx, bin, masterArgs...)
	out, err := master.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	master.Stderr = master.Stdout
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}

	// Scrape the master's actual join address, then attach the third
	// worker while the run is warming up (13 epochs of runway at this
	// scale, so the between-epoch admission point is comfortably ahead).
	sc := bufio.NewScanner(out)
	joinAddr := ""
	var masterOut strings.Builder
	for sc.Scan() {
		line := sc.Text()
		masterOut.WriteString(line + "\n")
		if m := joinAddrRe.FindStringSubmatch(line); m != nil {
			joinAddr = m[1]
			break
		}
	}
	if joinAddr == "" {
		t.Fatalf("master never printed its join address:\n%s", masterOut.String())
	}

	joinerArgs := append(append([]string{}, dsArgs...), "-join", joinAddr, "-q")
	joinerOut, err := exec.CommandContext(ctx, bin, joinerArgs...).CombinedOutput()
	if err != nil {
		t.Fatalf("joiner failed: %v\n%s", err, joinerOut)
	}
	if !strings.Contains(string(joinerOut), "joined running cluster as node 3 of 4") {
		t.Fatalf("joiner did not report joining as node 3:\n%s", joinerOut)
	}
	if !strings.Contains(string(joinerOut), "worker 3 done") {
		t.Fatalf("joiner did not serve the run to completion:\n%s", joinerOut)
	}

	for sc.Scan() {
		masterOut.WriteString(sc.Text() + "\n")
	}
	if err := master.Wait(); err != nil {
		t.Fatalf("master failed: %v\n%s", err, masterOut.String())
	}
	stdout := masterOut.String()

	m := joinedRe.FindStringSubmatch(stdout)
	if m == nil {
		t.Fatalf("master reported no join/rebalance counters:\n%s", stdout)
	}
	rebalances, _ := strconv.Atoi(m[1])
	joined, _ := strconv.Atoi(m[2])
	if joined != 1 {
		t.Fatalf("joined = %d, want 1\n%s", joined, stdout)
	}
	if rebalances < 1 {
		t.Fatalf("rebalances = %d, want ≥ 1\n%s", rebalances, stdout)
	}
	sm := joinSharesRe.FindStringSubmatch(stdout)
	if sm == nil {
		t.Fatalf("master reported no join shares:\n%s", stdout)
	}
	share, _ := strconv.Atoi(strings.Fields(sm[1])[0])
	if share <= 0 {
		t.Fatalf("joiner's share is empty (%q)\n%s", sm[1], stdout)
	}

	// Theory validity: the same bar as the chaos e2e — every positive of
	// the full dataset covered (or adopted) under the learned theory.
	theory, err := ilp.ParseTheory(theorySection(t, stdout))
	if err != nil {
		t.Fatalf("parsing learned theory: %v\n%s", err, stdout)
	}
	ds, err := loadDataset("pyrimidines", 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cov := ilp.Accuracy(ds, theory, ds.Pos, nil); cov != 1.0 {
		t.Fatalf("positive coverage after elastic run = %.4f, want 1.0\n%s", cov, stdout)
	}

	// The original workers exit cleanly once the master closes.
	if err := w1.cmd.Wait(); err != nil {
		t.Fatalf("worker 1: %v\n%s", err, w1.output())
	}
	if err := w2.cmd.Wait(); err != nil {
		t.Fatalf("worker 2: %v\n%s", err, w2.output())
	}
}
