// Command ilpbench regenerates the paper's evaluation: Tables 1–6 of
// "A pipelined data-parallel algorithm for ILP" (CLUSTER 2005), plus two
// ablations (pipeline-width sweep; comparison against the related-work
// parallel-coverage-testing baseline).
//
// Examples:
//
//	ilpbench -all                       # every table at the default scale
//	ilpbench -table 2 -scale 1 -folds 5 # paper-sized speedup table
//	ilpbench -ablation width            # Ablation A
//	ilpbench -ablation parcov           # Ablation B
//	ilpbench -all -shape                # tables plus qualitative checks
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/harness"
)

func main() {
	var (
		table    = flag.Int("table", 0, "paper table to regenerate (1-6); 0 with -all for everything")
		all      = flag.Bool("all", false, "regenerate all tables")
		ablation = flag.String("ablation", "", "run an ablation instead: 'width' or 'parcov'")
		scale    = flag.Float64("scale", 0.25, "dataset scale factor (1.0 = paper sizes of Table 1)")
		folds    = flag.Int("folds", 5, "cross-validation folds (paper: 5)")
		seed     = flag.Int64("seed", 1, "master seed")
		procsArg = flag.String("procs", "2,4,8", "comma-separated processor counts")
		widthArg = flag.String("widths", "nolimit,10", "comma-separated pipeline widths ('nolimit' or integers)")
		only     = flag.String("dataset", "", "restrict to one dataset (carcinogenesis, mesh, pyrimidines)")
		shape    = flag.Bool("shape", false, "print the qualitative shape checks after the tables")
		chart    = flag.Bool("chart", false, "draw a text speedup-vs-processors chart after the tables")
		coverPar = flag.Int("coverpar", 0, "shard coverage tests across N goroutines per learner (-1 = all cores, 0/1 = serial); results are identical, wall-clock drops")
		noBatch  = flag.Bool("nobatch", false, "evaluate search candidates one Coverage call at a time instead of per-node batches (A/B baseline; results are identical)")
		noVM     = flag.Bool("novm", false, "resolve clauses with the tree-walking interpreter instead of the compiled bytecode VM (A/B baseline; results are identical)")
		wcodec   = flag.String("wirecodec", "wire", "protocol payload encoding for the simulated cluster: wire (compact symbol-interned frames) or gob (legacy stdlib frames); theories are identical, only the Table 4 byte columns change")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
		jsonOut  = flag.String("json", "", "also write the run's machine-readable per-dataset summary (fold means of the Table 2-6 quantities) to this file, or '-' for stdout")
		quiet    = flag.Bool("q", false, "suppress per-fold progress output")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		// Written on normal completion only; an early fail() exits without a
		// heap snapshot.
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	procs, err := parseInts(*procsArg)
	if err != nil {
		fail(err)
	}
	codec, err := cluster.ParseCodec(*wcodec)
	if err != nil {
		fail(err)
	}
	widths, err := parseWidths(*widthArg)
	if err != nil {
		fail(err)
	}

	dss := datasets.PaperScaled(*scale, *seed)
	if *noBatch || *noVM {
		// Applied at the dataset level so the ablations inherit it too.
		for _, ds := range dss {
			ds.Search.NoBatchEval = ds.Search.NoBatchEval || *noBatch
			ds.Search.NoVM = ds.Search.NoVM || *noVM
		}
	}
	if *only != "" {
		var filtered []*datasets.Dataset
		for _, ds := range dss {
			if ds.Name == *only {
				filtered = append(filtered, ds)
			}
		}
		if len(filtered) == 0 {
			fail(fmt.Errorf("unknown dataset %q", *only))
		}
		dss = filtered
	}

	switch *ablation {
	case "":
	case "width":
		runWidthAblation(dss, *folds, *seed, *quiet)
		return
	case "parcov":
		runParcovAblation(dss, *folds, *seed, *quiet)
		return
	case "repartition":
		runRepartitionAblation(dss, *folds, *seed, *quiet)
		return
	case "noise":
		runNoiseAblation(*scale, *folds, *seed, *noBatch, *quiet)
		return
	case "balance":
		runBalanceAblation(*scale, *folds, *seed, *quiet)
		return
	default:
		fail(fmt.Errorf("unknown ablation %q (have width, parcov, repartition, noise, balance)", *ablation))
	}

	if !*all && (*table < 1 || *table > 6) {
		fail(fmt.Errorf("pick -table 1..6, -all, or -ablation"))
	}

	cfg := harness.Config{
		Datasets:         dss,
		Procs:            procs,
		Widths:           widths,
		Folds:            *folds,
		Seed:             *seed,
		CoverParallelism: *coverPar,
		NoBatchEval:      *noBatch,
		WireCodec:        codec,
	}
	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	fmt.Fprintf(os.Stderr, "ilpbench: scale %.2f, %d folds, procs %v, widths %v\n", *scale, *folds, procs, widths)
	res, err := harness.Run(cfg, progress)
	if err != nil {
		fail(err)
	}
	if *all {
		res.RenderAll(os.Stdout)
	} else if err := res.RenderTable(*table, os.Stdout); err != nil {
		fail(err)
	}
	if *jsonOut != "" {
		out, err := res.MarshalSummary(*scale)
		if err != nil {
			fail(err)
		}
		out = append(out, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
			fail(err)
		}
	}
	if *chart {
		fmt.Println()
		res.RenderSpeedupChart(os.Stdout)
	}
	if *shape {
		fmt.Println()
		fmt.Println("Shape checks (paper's qualitative findings):")
		for _, c := range res.ShapeChecks() {
			fmt.Println("  " + c)
		}
	}
}

func runWidthAblation(dss []*datasets.Dataset, folds int, seed int64, quiet bool) {
	progress := os.Stderr
	if quiet {
		progress = nil
	}
	for _, ds := range dss {
		ab, err := harness.RunWidthAblation(ds, 8, nil, folds, seed, harness.DefaultCost(), progress)
		if err != nil {
			fail(err)
		}
		ab.Render(os.Stdout)
		fmt.Println()
	}
}

func runRepartitionAblation(dss []*datasets.Dataset, folds int, seed int64, quiet bool) {
	progress := os.Stderr
	if quiet {
		progress = nil
	}
	for _, ds := range dss {
		ab, err := harness.RunRepartitionAblation(ds, 8, folds, seed, harness.DefaultCost(), progress)
		if err != nil {
			fail(err)
		}
		ab.Render(os.Stdout)
		fmt.Println()
	}
}

func runNoiseAblation(scale float64, folds int, seed int64, noBatch, quiet bool) {
	progress := os.Stderr
	if quiet {
		progress = nil
	}
	n := func(x int) int {
		v := int(float64(x) * scale)
		if v < 8 {
			v = 8
		}
		return v
	}
	ab, err := harness.RunNoiseAblation(n(848), n(764), 4, folds, nil, seed, noBatch, progress)
	if err != nil {
		fail(err)
	}
	ab.Render(os.Stdout)
}

func runBalanceAblation(scale float64, folds int, seed int64, quiet bool) {
	progress := os.Stderr
	if quiet {
		progress = nil
	}
	n := int(200 * scale)
	if n < 32 {
		n = 32
	}
	ab, err := harness.RunBalanceAblation(n, 4, folds, 0.25, seed, harness.DefaultCost(), progress)
	if err != nil {
		fail(err)
	}
	ab.Render(os.Stdout)
}

func runParcovAblation(dss []*datasets.Dataset, folds int, seed int64, quiet bool) {
	progress := os.Stderr
	if quiet {
		progress = nil
	}
	for _, ds := range dss {
		ab, err := harness.RunParcovAblation(ds, nil, folds, seed, harness.DefaultCost(), progress)
		if err != nil {
			fail(err)
		}
		ab.Render(os.Stdout)
		fmt.Println()
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}

func parseWidths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		switch {
		case part == "":
		case part == "nolimit" || part == "0":
			out = append(out, harness.WidthUnlimited)
		default:
			v, err := strconv.Atoi(part)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad width %q", part)
			}
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty widths %q", s)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ilpbench:", err)
	os.Exit(1)
}
