// Command ilpserve serves classification queries over a learned theory
// snapshot (the learn-then-serve pipeline: `p2mdie -publish DIR` writes
// snapshots, ilpserve serves them).
//
// Serve one pinned snapshot file:
//
//	ilpserve -snapshot runs/trains/snap-0000000000000003.isnap -addr :8080
//
// Follow a live (or finished) learning run, hot-swapping to every new
// snapshot the master publishes:
//
//	p2mdie -dataset trains -workers 4 -publish runs/trains &
//	ilpserve -watch runs/trains -addr :8080
//
// Query it:
//
//	curl -s localhost:8080/classify -d '{"example": "eastbound(east1)"}'
//	curl -s localhost:8080/snapshots
//	curl -s localhost:8080/activate -d '{"snapshot": "v2"}'
//
// The first stdout line is always "ilpserve: listening on <addr>" so
// orchestrators can scrape the actual address when -addr uses port 0.
//
// With -bench the process instead drives sustained load against its own
// endpoint (cycling through the snapshot's training examples) and prints a
// QPS/latency summary, then exits — the measurement published in PERF.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		snapshot = flag.String("snapshot", "", "serve this one snapshot file (pinned; no watching)")
		watch    = flag.String("watch", "", "watch this publish directory and hot-swap to each new snapshot (starts serving 503s until the first snapshot appears)")
		addr     = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (use host:0 for an ephemeral port)")
		machines = flag.Int("machines", 0, "solver machines per snapshot — the max classify requests answered concurrently (0 = GOMAXPROCS)")
		poll     = flag.Duration("poll", 200*time.Millisecond, "with -watch: directory poll interval")
		bench    = flag.Duration("bench", 0, "instead of serving forever, load-test the endpoint for this long, print QPS and latency percentiles, and exit")
		clients  = flag.Int("clients", 4, "with -bench: concurrent load-generator connections")
		noProof  = flag.Bool("noproof", false, "with -bench: request coverage bits only, no proof traces")
		quiet    = flag.Bool("q", false, "suppress per-swap log lines")
	)
	flag.Parse()
	if (*snapshot == "") == (*watch == "") {
		fail(errors.New("need exactly one of -snapshot FILE or -watch DIR"))
	}

	reg := serve.NewRegistry(*machines)
	var pinned *serve.Artifact
	if *snapshot != "" {
		f := serve.SnapshotFile{Path: *snapshot, Seq: serve.SeqFromPath(*snapshot)}
		if f.Seq == 0 {
			f.Seq = 1 // a renamed file still gets a valid version id
		}
		a, err := reg.LoadFile(f)
		if err != nil {
			fail(err)
		}
		if _, err := reg.Activate(a.ID); err != nil {
			fail(err)
		}
		pinned = a
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// Always the first stdout line, so orchestrators can scrape the port.
	fmt.Printf("ilpserve: listening on %s\n", ln.Addr())
	if pinned != nil && !*quiet {
		logSwap(pinned)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *watch != "" {
		go func() {
			onSwap := logSwap
			if *quiet {
				onSwap = nil
			}
			if err := reg.Watch(ctx, *watch, *poll, onSwap); err != nil && !errors.Is(err, context.Canceled) {
				fail(err)
			}
		}()
	}

	httpSrv := &http.Server{Handler: serve.NewServer(reg)}
	if *bench > 0 {
		go httpSrv.Serve(ln)
		runBench(reg, "http://"+ln.Addr().String(), *clients, *bench, !*noProof)
		return
	}
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
}

// logSwap announces an activation: which version serves, from which epoch,
// with how many rules.
func logSwap(a *serve.Artifact) {
	fmt.Printf("ilpserve: serving %s — %s epoch %d, %d rules, fingerprint %016x\n",
		a.ID, a.Snap.Name, a.Snap.Epoch, len(a.Rules), a.Snap.Fingerprint)
}

// runBench waits for an active snapshot (a -watch run may still be waiting
// on its first publish), then drives the load generator against the
// in-process endpoint using the snapshot's own training examples.
func runBench(reg *serve.Registry, baseURL string, clients int, d time.Duration, withProof bool) {
	var active *serve.Artifact
	for deadline := time.Now().Add(30 * time.Second); ; {
		if active = reg.Active(); active != nil {
			break
		}
		if time.Now().After(deadline) {
			fail(errors.New("bench: no snapshot became active within 30s"))
		}
		time.Sleep(20 * time.Millisecond)
	}
	snap := active.Snap
	examples := make([]string, 0, len(snap.Pos)+len(snap.Neg))
	for _, e := range snap.Pos {
		examples = append(examples, e.String())
	}
	for _, e := range snap.Neg {
		examples = append(examples, e.String())
	}
	res, err := serve.Bench(baseURL, examples, clients, d, withProof)
	if err != nil {
		fail(err)
	}
	fmt.Printf("ilpserve bench [%s %s, %d rules, %d machines, proof=%v]: %s\n",
		snap.Name, active.ID, len(active.Rules), active.Pool().Size(), withProof, res)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ilpserve:", err)
	os.Exit(1)
}
