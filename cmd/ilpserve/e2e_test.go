package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The e2e test exercises the full learn-then-serve pipeline as separate
// processes: a real p2mdie run publishes snapshots, a real ilpserve process
// watches the directory, serves classifications with proof traces over
// HTTP, and hot-swaps when a second run publishes a newer snapshot.

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binaries builds p2mdie and ilpserve once, returning their paths.
func binaries(t *testing.T) (p2mdie, ilpserve string) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ilpserve-e2e")
		if err != nil {
			buildErr = err
			return
		}
		buildDir = dir
		for pkg, bin := range map[string]string{".": "ilpserve", "../p2mdie": "p2mdie"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(dir, bin), pkg).CombinedOutput()
			if err != nil {
				buildErr = fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(buildDir, "p2mdie"), filepath.Join(buildDir, "ilpserve")
}

// learn runs one p2mdie learning process to completion, publishing into dir.
func learn(t *testing.T, ctx context.Context, bin, dir string, extra ...string) {
	t.Helper()
	args := append([]string{"-dataset", "trains", "-publish", dir, "-q"}, extra...)
	out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("p2mdie %v: %v\n%s", args, err, out)
	}
}

// startServer launches ilpserve and scrapes its address from the first
// "listening on" stdout line.
func startServer(t *testing.T, ctx context.Context, bin string, args ...string) (baseURL string) {
	t.Helper()
	cmd := exec.CommandContext(ctx, bin, args...)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("ilpserve produced no output; stderr: %s", errBuf.String())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("ilpserve first line %q has no address", line)
	}
	go io.Copy(io.Discard, stdout)
	return "http://" + strings.TrimSpace(line[i+len(marker):])
}

// classifyResult mirrors the wire shape the test cares about.
type classifyResult struct {
	Snapshot string `json:"snapshot"`
	Dataset  string `json:"dataset"`
	Results  []struct {
		Example string `json:"example"`
		Covered bool   `json:"covered"`
		Rules   []struct {
			Rule    string `json:"rule"`
			Covered bool   `json:"covered"`
		} `json:"rules"`
		Proof json.RawMessage `json:"proof"`
	} `json:"results"`
}

func classify(t *testing.T, baseURL, example string) (*classifyResult, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"example": example})
	resp, err := http.Post(baseURL+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var cr classifyResult
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	return &cr, resp.StatusCode
}

// waitForSnapshot polls /classify until the active snapshot is id (the
// watcher needs a poll cycle to pick a publish up).
func waitForSnapshot(t *testing.T, baseURL, example, id string) *classifyResult {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		cr, code := classify(t, baseURL, example)
		if code == http.StatusOK && cr.Snapshot == id {
			return cr
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never served snapshot %s (last: %+v, status %d)", id, cr, code)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestLearnThenServeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	p2mdie, ilpserve := binaries(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	pub := t.TempDir()

	// Learn on the simulated cluster, publishing every epoch boundary.
	learn(t, ctx, p2mdie, pub, "-workers", "2", "-width", "4")

	// Serve the publish directory.
	baseURL := startServer(t, ctx, ilpserve, "-watch", pub, "-addr", "127.0.0.1:0", "-poll", "20ms")
	cr := waitForSnapshot(t, baseURL, "eastbound(east1)", "v1")
	if cr.Dataset != "trains" {
		t.Fatalf("served dataset %q, want trains", cr.Dataset)
	}
	res := cr.Results[0]
	if !res.Covered || len(res.Rules) == 0 {
		t.Fatalf("positive example not covered: %+v", res)
	}
	if len(res.Proof) == 0 || !strings.Contains(string(res.Proof), `"kind"`) {
		t.Fatalf("no proof trace in response: %s", res.Proof)
	}
	if cr, _ := classify(t, baseURL, "eastbound(west8)"); cr.Results[0].Covered {
		t.Fatalf("negative example covered: %+v", cr.Results[0])
	}

	// A second learning run publishes v2 into the same directory; the
	// watcher must hot-swap to it without a restart.
	learn(t, ctx, p2mdie, pub)
	waitForSnapshot(t, baseURL, "eastbound(east1)", "v2")

	// The registry still lists both versions, and a manual /activate pins
	// the old one.
	resp, err := http.Get(baseURL + "/snapshots")
	if err != nil {
		t.Fatal(err)
	}
	var snaps struct {
		Active    string `json:"active"`
		Snapshots []struct {
			ID string `json:"id"`
		} `json:"snapshots"`
	}
	err = json.NewDecoder(resp.Body).Decode(&snaps)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snaps.Active != "v2" || len(snaps.Snapshots) != 2 {
		t.Fatalf("snapshots: active=%s n=%d, want v2/2", snaps.Active, len(snaps.Snapshots))
	}
	body, _ := json.Marshal(map[string]string{"snapshot": "v1"})
	aresp, err := http.Post(baseURL+"/activate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, aresp.Body)
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("activate v1: status %d", aresp.StatusCode)
	}
	if cr, _ := classify(t, baseURL, "eastbound(east1)"); cr.Snapshot != "v1" {
		t.Fatalf("after activate, served %s, want v1", cr.Snapshot)
	}
}

// TestBenchModeE2E pins the -bench flag: the process load-tests itself and
// prints a one-line summary.
func TestBenchModeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	p2mdie, ilpserve := binaries(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	pub := t.TempDir()
	learn(t, ctx, p2mdie, pub)
	out, err := exec.CommandContext(ctx, ilpserve,
		"-snapshot", filepath.Join(pub, "snap-0000000000000001.isnap"),
		"-addr", "127.0.0.1:0", "-bench", "200ms", "-clients", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("bench run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "qps=") || strings.Contains(string(out), "errors=0 ") == false {
		t.Fatalf("bench output missing qps/errors: %s", out)
	}
}
