package harness

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/datasets"
)

// tinyConfig keeps the integration sweep fast: small scaled datasets,
// 3 folds, p ∈ {2, 4}.
func tinyConfig() Config {
	ds := datasets.PaperScaled(0.08, 17)
	for _, d := range ds {
		d.Search.NodesLimit = 150
	}
	return Config{
		Datasets: ds[:1], // carcinogenesis only for speed
		Procs:    []int{2, 4},
		Widths:   []int{WidthUnlimited, 5},
		Folds:    3,
		Seed:     5,
	}
}

// The sweep is deterministic, so the integration tests share one run.
var (
	sharedOnce sync.Once
	sharedRes  *Results
	sharedErr  error
)

func sharedRun(t *testing.T) *Results {
	t.Helper()
	sharedOnce.Do(func() { sharedRes, sharedErr = Run(tinyConfig(), nil) })
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedRes
}

func TestRunProducesAllCells(t *testing.T) {
	res := sharedRun(t)
	cfg := res.Cfg
	for _, ds := range cfg.Datasets {
		if got := len(res.SeqTime[ds.Name]); got != cfg.Folds {
			t.Fatalf("%s: %d sequential times, want %d", ds.Name, got, cfg.Folds)
		}
		for _, w := range cfg.Widths {
			for _, p := range cfg.Procs {
				k := Key{ds.Name, w, p}
				if got := len(res.Time[k]); got != cfg.Folds {
					t.Fatalf("cell %+v: %d times, want %d", k, got, cfg.Folds)
				}
				if got := len(res.Acc[k]); got != cfg.Folds {
					t.Fatalf("cell %+v: %d accuracies", k, got)
				}
				for _, v := range res.Time[k] {
					if v <= 0 {
						t.Fatalf("cell %+v: nonpositive time %v", k, v)
					}
				}
			}
		}
	}
}

func TestRenderTables(t *testing.T) {
	res := sharedRun(t)
	var buf bytes.Buffer
	res.RenderAll(&buf)
	out := buf.String()
	for _, want := range []string{
		"Table 1. Datasets Characterization",
		"Table 2. Average speedup",
		"Table 3. Average execution time",
		"Table 4. Average communication",
		"Table 5. Average number of epochs",
		"Table 6. Average predictive accuracy",
		"carcinogenesis",
		"nolimit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q\n%s", want, out)
		}
	}
	// Table dispatch.
	for n := 1; n <= 6; n++ {
		var one bytes.Buffer
		if err := res.RenderTable(n, &one); err != nil {
			t.Errorf("RenderTable(%d): %v", n, err)
		}
		if one.Len() == 0 {
			t.Errorf("RenderTable(%d) produced nothing", n)
		}
	}
	if err := res.RenderTable(7, &buf); err == nil {
		t.Error("RenderTable(7) should fail")
	}
}

func TestShapeChecks(t *testing.T) {
	res := sharedRun(t)
	checks := res.ShapeChecks()
	if len(checks) == 0 {
		t.Fatal("no shape checks produced")
	}
	failures := 0
	for _, c := range checks {
		t.Log(c)
		if strings.HasPrefix(c, "FAIL") {
			failures++
		}
	}
	// At tiny scale some shape noise is tolerable, but the majority of the
	// paper's qualitative findings must hold.
	if failures*2 > len(checks) {
		t.Fatalf("%d/%d shape checks failed", failures, len(checks))
	}
}

func TestWidthAblation(t *testing.T) {
	ds := datasets.PyrimidinesSized(36, 30, 3)
	ds.Search.NodesLimit = 60
	ds.Search.MaxClauseLen = 2
	ab, err := RunWidthAblation(ds, 2, []int{1, WidthUnlimited}, 2, 3, DefaultCost(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ab.Render(&buf)
	if !strings.Contains(buf.String(), "Ablation A") {
		t.Fatalf("render: %s", buf.String())
	}
	if len(ab.Time[1]) != 2 || len(ab.Time[WidthUnlimited]) != 2 {
		t.Fatalf("missing folds: %+v", ab.Time)
	}
}

func TestParcovAblation(t *testing.T) {
	ds := datasets.PyrimidinesSized(40, 36, 3)
	ds.Search.NodesLimit = 60
	ds.Search.MaxClauseLen = 2
	ab, err := RunParcovAblation(ds, []int{2}, 2, 3, DefaultCost(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Ablation B") || !strings.Contains(out, "parcov") {
		t.Fatalf("render: %s", out)
	}
	// The defining contrast: parcov sends far more messages than p²-mdie.
	if ab.PCMsgs[2][0] <= ab.P2Msgs[2][0] {
		t.Fatalf("parcov messages (%v) should exceed p2 messages (%v)", ab.PCMsgs[2][0], ab.P2Msgs[2][0])
	}
}

func TestProgressOutput(t *testing.T) {
	cfg := tinyConfig()
	cfg.Folds = 2
	cfg.Procs = []int{2}
	cfg.Widths = []int{5}
	var buf bytes.Buffer
	if _, err := Run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sequential") {
		t.Fatalf("no progress lines: %q", buf.String())
	}
}
