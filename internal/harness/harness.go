// Package harness runs the paper's full evaluation protocol (§5.2) and
// renders Tables 1–6 in the paper's layout: 5-fold cross-validation per
// dataset, a sequential MDIE baseline per fold, and p²-mdie runs over the
// processor counts {2, 4, 8} × pipeline widths {nolimit, 10}, measured on
// the simulated cluster (virtual makespan, real message bytes, epochs) and
// on held-out accuracy with a paired t-test at 98% confidence.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/covering"
	"repro/internal/datasets"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/xval"
)

// WidthUnlimited labels the paper's "nolimit" pipeline width.
const WidthUnlimited = 0

// DefaultCost returns the simulated Beowulf cost model.
func DefaultCost() cluster.CostModel { return cluster.DefaultCostModel }

// Config selects the sweep.
type Config struct {
	// Datasets are the tasks to evaluate.
	Datasets []*datasets.Dataset
	// Procs are the worker counts (paper: 2, 4, 8).
	Procs []int
	// Widths are the pipeline widths (paper: nolimit = 0 and 10).
	Widths []int
	// Folds is the cross-validation fold count (paper: 5).
	Folds int
	// Seed drives fold splits and partitioning.
	Seed int64
	// Cost is the simulated cluster model.
	Cost cluster.CostModel
	// CoverParallelism shards every learner's coverage tests across this
	// many goroutines (<0 = GOMAXPROCS, ≤1 = serial). Results are
	// identical; only wall-clock changes.
	CoverParallelism int
	// NoBatchEval disables whole-frontier batched candidate evaluation in
	// every learner (see search.Settings.NoBatchEval); results are
	// identical, only per-node synchronisation cost changes. Kept for A/B
	// measurement of the batch path.
	NoBatchEval bool
	// WireCodec selects the protocol payload encoding (zero value = the
	// compact wire codec, cluster.CodecGob = the legacy stdlib frames).
	// Theories are byte-identical either way; only Comm/Links change.
	WireCodec cluster.Codec
}

// WithDefaults fills the paper's protocol values.
func (c Config) WithDefaults() Config {
	if len(c.Procs) == 0 {
		c.Procs = []int{2, 4, 8}
	}
	if len(c.Widths) == 0 {
		c.Widths = []int{WidthUnlimited, 10}
	}
	if c.Folds <= 0 {
		c.Folds = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Key addresses one parallel configuration cell.
type Key struct {
	Dataset string
	Width   int
	Procs   int
}

// Results holds per-fold measurements for every cell.
type Results struct {
	Cfg Config

	// Sequential baseline per dataset, per fold.
	SeqTime map[string][]float64 // virtual seconds
	SeqAcc  map[string][]float64 // accuracy in [0,1]

	// Parallel cells, per fold.
	Time   map[Key][]float64 // virtual seconds
	Comm   map[Key][]float64 // MBytes
	Epochs map[Key][]float64
	Acc    map[Key][]float64
	Wall   map[Key][]float64 // real seconds (simulation cost; not a paper table)
	// Rebal and Joined track the elastic-scheduling counters
	// (core.Metrics.Rebalances / JoinedWorkers): zero throughout a
	// conventional sweep, non-zero when a configuration opts into
	// balancing or mid-run joins.
	Rebal  map[Key][]float64
	Joined map[Key][]float64
	// Restarts and Orphans track the fault-tolerance counters
	// (core.Metrics.MasterRestarts / OrphanReconnects): zero throughout a
	// failure-free sweep, non-zero when a run survived a master
	// crash-restart.
	Restarts map[Key][]float64
	Orphans  map[Key][]float64
	// Flaps, Replayed and Fenced track the link-resilience counters
	// (core.Metrics.LinkFlaps / ReplayedFrames / FencedFrames): zero on
	// the simulated transport and on a flap-free TCP sweep, non-zero when
	// a run absorbed transient link failures or fenced a stale master.
	Flaps    map[Key][]float64
	Replayed map[Key][]float64
	Fenced   map[Key][]float64

	// Links keeps the first fold's per-link traffic table per cell — the
	// drill-down behind Table 4's averages. The same accounting backs a
	// TCP deployment's tables (core.Metrics.Traffic), so these numbers are
	// directly comparable to a real cluster run's.
	Links map[Key]cluster.Traffic
}

func newResults(cfg Config) *Results {
	return &Results{
		Cfg:      cfg,
		SeqTime:  map[string][]float64{},
		SeqAcc:   map[string][]float64{},
		Time:     map[Key][]float64{},
		Comm:     map[Key][]float64{},
		Epochs:   map[Key][]float64{},
		Acc:      map[Key][]float64{},
		Wall:     map[Key][]float64{},
		Rebal:    map[Key][]float64{},
		Joined:   map[Key][]float64{},
		Restarts: map[Key][]float64{},
		Orphans:  map[Key][]float64{},
		Flaps:    map[Key][]float64{},
		Replayed: map[Key][]float64{},
		Fenced:   map[Key][]float64{},
		Links:    map[Key]cluster.Traffic{},
	}
}

// Run executes the sweep, reporting progress to progress when non-nil.
func Run(cfg Config, progress io.Writer) (*Results, error) {
	cfg = cfg.WithDefaults()
	res := newResults(cfg)
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format, args...)
		}
	}
	for _, ds := range cfg.Datasets {
		folds, err := xval.KFold(ds.Pos, ds.Neg, cfg.Folds, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", ds.Name, err)
		}
		searchCfg := ds.Search
		searchCfg.NoBatchEval = searchCfg.NoBatchEval || cfg.NoBatchEval
		for fi, fold := range folds {
			foldSeed := cfg.Seed + int64(100*fi+7)
			// Sequential baseline (Fig. 1). Virtual time for one CPU is
			// total work × the cost model's per-inference cost.
			ex := search.NewExamples(fold.TrainPos, fold.TrainNeg)
			seq, err := covering.Learn(ds.KB, ex, ds.Modes, covering.Config{
				Search: searchCfg, Bottom: ds.Bottom, Budget: ds.Budget,
				CoverParallelism: cfg.CoverParallelism,
			})
			if err != nil {
				return nil, fmt.Errorf("harness: %s fold %d sequential: %w", ds.Name, fi, err)
			}
			model := cfg.Cost
			seqSecs := float64(seq.Inferences) * modelNsPerInference(model) / 1e9
			res.SeqTime[ds.Name] = append(res.SeqTime[ds.Name], seqSecs)
			seqAcc := covering.Accuracy(ds.KB, seq.Theory, fold.TestPos, fold.TestNeg, ds.Budget)
			res.SeqAcc[ds.Name] = append(res.SeqAcc[ds.Name], seqAcc)
			logf("%s fold %d: sequential %.2fs (virtual), accuracy %.2f%%\n", ds.Name, fi+1, seqSecs, 100*seqAcc)

			for _, w := range cfg.Widths {
				for _, p := range cfg.Procs {
					met, err := core.Learn(ds.KB, fold.TrainPos, fold.TrainNeg, ds.Modes, core.Config{
						Workers: p,
						Width:   w,
						Seed:    foldSeed,
						Search:  searchCfg,
						Bottom:  ds.Bottom,
						Budget:  ds.Budget,
						Cost:    cfg.Cost,

						WireCodec:        cfg.WireCodec,
						CoverParallelism: cfg.CoverParallelism,
					})
					if err != nil {
						return nil, fmt.Errorf("harness: %s fold %d p=%d w=%d: %w", ds.Name, fi, p, w, err)
					}
					key := Key{Dataset: ds.Name, Width: w, Procs: p}
					if _, seen := res.Links[key]; !seen {
						res.Links[key] = met.Traffic
					}
					parSecs := met.VirtualTime.Seconds()
					res.Time[key] = append(res.Time[key], parSecs)
					res.Comm[key] = append(res.Comm[key], float64(met.CommBytes)/1e6)
					res.Epochs[key] = append(res.Epochs[key], float64(met.Epochs))
					acc := covering.Accuracy(ds.KB, met.Theory, fold.TestPos, fold.TestNeg, ds.Budget)
					res.Acc[key] = append(res.Acc[key], acc)
					res.Wall[key] = append(res.Wall[key], met.WallTime.Seconds())
					res.Rebal[key] = append(res.Rebal[key], float64(met.Rebalances))
					res.Joined[key] = append(res.Joined[key], float64(met.JoinedWorkers))
					res.Restarts[key] = append(res.Restarts[key], float64(met.MasterRestarts))
					res.Orphans[key] = append(res.Orphans[key], float64(met.OrphanReconnects))
					res.Flaps[key] = append(res.Flaps[key], float64(met.LinkFlaps))
					res.Replayed[key] = append(res.Replayed[key], float64(met.ReplayedFrames))
					res.Fenced[key] = append(res.Fenced[key], float64(met.FencedFrames))
					recovered := ""
					if met.Recoveries > 0 || met.LostWorkers > 0 {
						recovered = fmt.Sprintf(", recoveries=%d lost=%d", met.Recoveries, met.LostWorkers)
					}
					logf("%s fold %d: p=%d w=%s %.2fs, speedup %.2f, %d epochs, %.1f MB, accuracy %.2f%%%s\n",
						ds.Name, fi+1, p, widthLabel(w), parSecs, seqSecs/parSecs, met.Epochs,
						float64(met.CommBytes)/1e6, 100*acc, recovered)
				}
			}
		}
	}
	return res, nil
}

func modelNsPerInference(m cluster.CostModel) float64 {
	if m.NsPerInference > 0 {
		return m.NsPerInference
	}
	return cluster.DefaultCostModel.NsPerInference
}

func widthLabel(w int) string {
	if w == WidthUnlimited {
		return "nolimit"
	}
	return fmt.Sprintf("%d", w)
}

// datasetOrder returns dataset names in run order.
func (r *Results) datasetOrder() []string {
	var names []string
	for _, ds := range r.Cfg.Datasets {
		names = append(names, ds.Name)
	}
	return names
}

// RenderTable1 prints the dataset characterisation.
func (r *Results) RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1. Datasets Characterization")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\t|E+|\t|E-|")
	for _, ds := range r.Cfg.Datasets {
		name, p, n := ds.Characterize()
		fmt.Fprintf(tw, "%s\t%d\t%d\n", name, p, n)
	}
	tw.Flush()
}

// renderCellTable prints one paper-style table with a row per
// (dataset, width) and a column per processor count.
func (r *Results) renderCellTable(w io.Writer, title string, includeSeq bool,
	cell func(Key) string, seqCell func(string) string) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "Dataset\tWidth"
	if includeSeq {
		header += "\t1"
	}
	for _, p := range r.Cfg.Procs {
		header += fmt.Sprintf("\t%d", p)
	}
	fmt.Fprintln(tw, header)
	for _, name := range r.datasetOrder() {
		for wi, width := range r.Cfg.Widths {
			row := ""
			if wi == 0 {
				row = name
			}
			row += "\t" + widthLabel(width)
			if includeSeq {
				if wi == 0 {
					row += "\t" + seqCell(name)
				} else {
					row += "\t-"
				}
			}
			for _, p := range r.Cfg.Procs {
				row += "\t" + cell(Key{Dataset: name, Width: width, Procs: p})
			}
			fmt.Fprintln(tw, row)
		}
	}
	tw.Flush()
}

// RenderTable2 prints average speedups.
func (r *Results) RenderTable2(w io.Writer) {
	r.renderCellTable(w,
		fmt.Sprintf("Table 2. Average speedup observed for %s processors (pipeline width nolimit and 10)", procList(r.Cfg.Procs)),
		false,
		func(k Key) string {
			sp := r.foldSpeedups(k)
			return fmt.Sprintf("%.2f", stats.Mean(sp))
		}, nil)
}

// foldSpeedups returns per-fold speedups for a cell.
func (r *Results) foldSpeedups(k Key) []float64 {
	seq := r.SeqTime[k.Dataset]
	par := r.Time[k]
	out := make([]float64, 0, len(par))
	for i := range par {
		if i < len(seq) {
			out = append(out, stats.Speedup(seq[i], par[i]))
		}
	}
	return out
}

// RenderTable3 prints average execution times in seconds (column 1 is the
// sequential baseline).
func (r *Results) RenderTable3(w io.Writer) {
	r.renderCellTable(w,
		fmt.Sprintf("Table 3. Average execution time (in seconds, simulated cluster) for %s processors", procList(r.Cfg.Procs)),
		true,
		func(k Key) string { return fmt.Sprintf("%.0f", stats.Mean(r.Time[k])) },
		func(name string) string { return fmt.Sprintf("%.0f", stats.Mean(r.SeqTime[name])) })
}

// RenderTable4 prints average communication volume in MBytes.
func (r *Results) RenderTable4(w io.Writer) {
	r.renderCellTable(w,
		fmt.Sprintf("Table 4. Average communication exchanged (in MBytes) for %s processors", procList(r.Cfg.Procs)),
		false,
		func(k Key) string { return fmt.Sprintf("%.2f", stats.Mean(r.Comm[k])) }, nil)
}

// RenderLinkTraffic prints the per-link byte/message breakdown behind
// Table 4 for one (dataset, width, procs) cell, first fold. Node 0 is the
// master; 1..p are the pipeline workers, so the worker→worker rows are the
// kindStage hand-offs the width limit bounds.
func (r *Results) RenderLinkTraffic(w io.Writer, k Key) {
	tr, ok := r.Links[k]
	if !ok {
		fmt.Fprintf(w, "no traffic recorded for %s w=%s p=%d\n", k.Dataset, widthLabel(k.Width), k.Procs)
		return
	}
	fmt.Fprintf(w, "Per-link traffic, %s w=%s p=%d (fold 1; node 0 = master)\n",
		k.Dataset, widthLabel(k.Width), k.Procs)
	fmt.Fprint(w, tr.String())
}

// RenderTable5 prints average epoch counts.
func (r *Results) RenderTable5(w io.Writer) {
	r.renderCellTable(w,
		fmt.Sprintf("Table 5. Average number of epochs for %s processors", procList(r.Cfg.Procs)),
		false,
		func(k Key) string { return fmt.Sprintf("%.0f", stats.Mean(r.Epochs[k])) }, nil)
}

// RenderTable6 prints average predictive accuracy with standard deviations;
// cells marked '*' differ significantly (98% paired t-test) from the
// sequential run — in the paper's results such cells were improvements.
func (r *Results) RenderTable6(w io.Writer) {
	r.renderCellTable(w,
		fmt.Sprintf("Table 6. Average predictive accuracy (stddev) for %s processors; '*' = significant at 98%%", procList(r.Cfg.Procs)),
		true,
		func(k Key) string {
			accs := r.Acc[k]
			mark := ""
			if res, err := stats.PairedTTest(accs, r.SeqAcc[k.Dataset]); err == nil && res.Significant(0.98) {
				mark = "*"
			}
			return fmt.Sprintf("%s%.2f (%.2f)", mark, 100*stats.Mean(accs), 100*stats.StdDev(accs))
		},
		func(name string) string {
			return fmt.Sprintf("%.2f (%.2f)", 100*stats.Mean(r.SeqAcc[name]), 100*stats.StdDev(r.SeqAcc[name]))
		})
}

// RenderAll prints every table separated by blank lines.
func (r *Results) RenderAll(w io.Writer) {
	r.RenderTable1(w)
	fmt.Fprintln(w)
	r.RenderTable2(w)
	fmt.Fprintln(w)
	r.RenderTable3(w)
	fmt.Fprintln(w)
	r.RenderTable4(w)
	fmt.Fprintln(w)
	// Table 4 drill-down: per-link traffic of each dataset's largest
	// configuration.
	if len(r.Cfg.Procs) > 0 && len(r.Cfg.Widths) > 0 {
		wmax := r.Cfg.Widths[len(r.Cfg.Widths)-1]
		pmax := r.Cfg.Procs[len(r.Cfg.Procs)-1]
		for _, name := range r.datasetOrder() {
			r.RenderLinkTraffic(w, Key{Dataset: name, Width: wmax, Procs: pmax})
			fmt.Fprintln(w)
		}
	}
	r.RenderTable5(w)
	fmt.Fprintln(w)
	r.RenderTable6(w)
}

// RenderTable dispatches on the paper's table number (1–6).
func (r *Results) RenderTable(n int, w io.Writer) error {
	switch n {
	case 1:
		r.RenderTable1(w)
	case 2:
		r.RenderTable2(w)
	case 3:
		r.RenderTable3(w)
	case 4:
		r.RenderTable4(w)
	case 5:
		r.RenderTable5(w)
	case 6:
		r.RenderTable6(w)
	default:
		return fmt.Errorf("harness: no table %d (paper has tables 1-6)", n)
	}
	return nil
}

// ShapeChecks verifies the qualitative findings the paper reports; the
// returned list contains one line per check, prefixed PASS/FAIL. Used by
// EXPERIMENTS.md generation and the integration tests.
func (r *Results) ShapeChecks() []string {
	var out []string
	check := func(ok bool, format string, args ...any) {
		prefix := "PASS"
		if !ok {
			prefix = "FAIL"
		}
		out = append(out, fmt.Sprintf("%s: %s", prefix, fmt.Sprintf(format, args...)))
	}
	maxP := 0
	for _, p := range r.Cfg.Procs {
		if p > maxP {
			maxP = p
		}
	}
	for _, name := range r.datasetOrder() {
		for _, width := range r.Cfg.Widths {
			// Speedup grows with processors.
			sp := make([]float64, 0, len(r.Cfg.Procs))
			for _, p := range r.Cfg.Procs {
				sp = append(sp, stats.Mean(r.foldSpeedups(Key{name, width, p})))
			}
			sorted := sort.Float64sAreSorted(sp)
			check(sorted, "%s w=%s: speedup nondecreasing in p: %v", name, widthLabel(width), fmtFloats(sp))
			// Epochs shrink (or hold) as processors grow.
			eps := make([]float64, 0, len(r.Cfg.Procs))
			for _, p := range r.Cfg.Procs {
				eps = append(eps, stats.Mean(r.Epochs[Key{name, width, p}]))
			}
			nonInc := true
			for i := 1; i < len(eps); i++ {
				if eps[i] > eps[i-1]+0.5 {
					nonInc = false
				}
			}
			check(nonInc, "%s w=%s: epochs nonincreasing in p: %v", name, widthLabel(width), fmtFloats(eps))
		}
		// Width limit cuts communication at the largest p.
		if len(r.Cfg.Widths) >= 2 {
			unl := stats.Mean(r.Comm[Key{name, r.Cfg.Widths[0], maxP}])
			lim := stats.Mean(r.Comm[Key{name, r.Cfg.Widths[1], maxP}])
			check(lim <= unl, "%s: width-limited communication (%.2f MB) ≤ unlimited (%.2f MB) at p=%d", name, lim, unl, maxP)
		}
		// Accuracy is preserved: no significant degradation.
		degraded := false
		for _, width := range r.Cfg.Widths {
			for _, p := range r.Cfg.Procs {
				key := Key{name, width, p}
				res, err := stats.PairedTTest(r.Acc[key], r.SeqAcc[name])
				if err == nil && res.Significant(0.98) && stats.Mean(r.Acc[key]) < stats.Mean(r.SeqAcc[name]) {
					degraded = true
				}
			}
		}
		check(!degraded, "%s: no significant accuracy degradation in any cell", name)
	}
	return out
}

func fmtFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.2f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func procList(ps []int) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return strings.Join(parts, ", ")
}
