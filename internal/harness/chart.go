package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// This file renders text charts of the headline results — the "figure"
// counterpart to the paper's tables. RenderSpeedupChart draws speedup
// versus processor count per dataset and width, with the ideal linear
// speedup marked for reference.

// RenderSpeedupChart draws one chart per dataset: x-axis processors,
// y-axis speedup, one curve per width ('o' = nolimit, '*' = limited),
// '+' marking ideal linear speedup.
func (r *Results) RenderSpeedupChart(w io.Writer) {
	const (
		height = 12
		colW   = 10
	)
	for _, name := range r.datasetOrder() {
		// Gather series and the y range.
		maxY := 0.0
		series := map[int][]float64{}
		for _, width := range r.Cfg.Widths {
			var ys []float64
			for _, p := range r.Cfg.Procs {
				v := stats.Mean(r.foldSpeedups(Key{name, width, p}))
				ys = append(ys, v)
				if v > maxY {
					maxY = v
				}
			}
			series[width] = ys
		}
		for _, p := range r.Cfg.Procs {
			if float64(p) > maxY {
				maxY = float64(p)
			}
		}
		if maxY <= 0 {
			maxY = 1
		}

		fmt.Fprintf(w, "Speedup vs processors — %s ('+' ideal linear", name)
		marks := []byte{'o', '*', 'x', '@'}
		for wi, width := range r.Cfg.Widths {
			fmt.Fprintf(w, ", %q width %s", marks[wi%len(marks)], widthLabel(width))
		}
		fmt.Fprintln(w, ")")

		grid := make([][]byte, height)
		for i := range grid {
			grid[i] = []byte(strings.Repeat(" ", colW*len(r.Cfg.Procs)+4))
		}
		rowOf := func(v float64) int {
			row := height - 1 - int(v/maxY*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			return row
		}
		for pi, p := range r.Cfg.Procs {
			col := 4 + pi*colW + colW/2
			grid[rowOf(float64(p))][col] = '+'
			for wi, width := range r.Cfg.Widths {
				v := series[width][pi]
				row := rowOf(v)
				c := col + 1 + wi
				if grid[row][c] == ' ' || grid[row][c] == '+' {
					grid[row][c] = marks[wi%len(marks)]
				}
			}
		}
		for i, row := range grid {
			label := "    "
			if i == 0 {
				label = fmt.Sprintf("%4.0f", maxY)
			}
			if i == height-1 {
				label = "   0"
			}
			fmt.Fprintf(w, "%s |%s\n", label, string(row))
		}
		axis := "     +" + strings.Repeat("-", colW*len(r.Cfg.Procs))
		fmt.Fprintln(w, axis)
		lbl := "      "
		for _, p := range r.Cfg.Procs {
			lbl += fmt.Sprintf("%-*s", colW, fmt.Sprintf("p=%d", p))
		}
		fmt.Fprintln(w, lbl)
		fmt.Fprintln(w)
	}
}
