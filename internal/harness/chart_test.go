package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderSpeedupChart(t *testing.T) {
	res := sharedRun(t)
	var buf bytes.Buffer
	res.RenderSpeedupChart(&buf)
	out := buf.String()
	if !strings.Contains(out, "Speedup vs processors") {
		t.Fatalf("chart header missing:\n%s", out)
	}
	// One ideal-linear mark per processor column.
	if got := strings.Count(out, "+"); got < len(res.Cfg.Procs) {
		t.Fatalf("ideal marks: %d\n%s", got, out)
	}
	// Both width series plotted.
	if !strings.Contains(out, "o") || !strings.Contains(out, "*") {
		t.Fatalf("series marks missing:\n%s", out)
	}
	// Axis labels.
	for _, p := range res.Cfg.Procs {
		if !strings.Contains(out, "p="+itoa(p)) {
			t.Fatalf("missing x label p=%d:\n%s", p, out)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestNoiseAblation(t *testing.T) {
	ab, err := RunNoiseAblation(36, 30, 2, 2, []float64{0, 0.25}, 3, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Ablation D") {
		t.Fatalf("render: %s", out)
	}
	// Noise-free accuracy should dominate noisy accuracy for both learners.
	if avg(ab.SeqAcc[0]) < avg(ab.SeqAcc[0.25]) {
		t.Fatalf("sequential: noise-free (%v) worse than noisy (%v)", ab.SeqAcc[0], ab.SeqAcc[0.25])
	}
	if len(ab.ParAcc[0]) != 2 || len(ab.ParAcc[0.25]) != 2 {
		t.Fatalf("missing folds: %+v", ab.ParAcc)
	}
}

func avg(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestRepartitionAblationHarness(t *testing.T) {
	res := sharedRun(t) // ensure datasets exist; reuse one
	_ = res
	ds := res.Cfg.Datasets[0]
	ab, err := RunRepartitionAblation(ds, 2, 2, 3, DefaultCost(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ab.Render(&buf)
	if !strings.Contains(buf.String(), "Ablation C") {
		t.Fatalf("render: %s", buf.String())
	}
	if len(ab.Base["time"]) != 2 || len(ab.Repart["time"]) != 2 {
		t.Fatalf("folds missing: %+v %+v", ab.Base, ab.Repart)
	}
}
