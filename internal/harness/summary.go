package harness

import (
	"encoding/json"

	"repro/internal/stats"
)

// SummarySchemaVersion stamps every emitted Summary so downstream tooling
// comparing BENCH_<n>.json files across commits can detect shape changes
// instead of mis-parsing. Bump it when a field is renamed, removed, or
// changes meaning; purely additive fields keep the version.
const SummarySchemaVersion = 2

// Summary is the machine-readable form of a harness run, emitted by
// `ilpbench -json` and archived by CI as BENCH_<n>.json so benchmark
// trajectories can be compared across commits without scraping tables.
type Summary struct {
	SchemaVersion int              `json:"schema_version"`
	Scale         float64          `json:"scale,omitempty"`
	Folds         int              `json:"folds"`
	Seed          int64            `json:"seed"`
	Procs         []int            `json:"procs"`
	Widths        []int            `json:"widths"`
	Datasets      []DatasetSummary `json:"datasets"`
}

// DatasetSummary is one dataset's sweep: the sequential baseline plus one
// cell per (procs, width) configuration, all values fold means.
type DatasetSummary struct {
	Name     string        `json:"name"`
	Pos      int           `json:"pos"`
	Neg      int           `json:"neg"`
	SeqTimeS float64       `json:"seq_time_s"`
	SeqAcc   float64       `json:"seq_accuracy"`
	Cells    []CellSummary `json:"cells"`
}

// CellSummary is one parallel configuration's fold-mean measurements —
// the quantities behind Tables 2–6.
type CellSummary struct {
	Procs    int     `json:"procs"`
	Width    int     `json:"width"` // 0 = the paper's "nolimit"
	TimeS    float64 `json:"time_s"`
	Speedup  float64 `json:"speedup"`
	CommMB   float64 `json:"comm_mb"`
	Epochs   float64 `json:"epochs"`
	Accuracy float64 `json:"accuracy"`
	WallS    float64 `json:"wall_s"`
	// Rebalances and JoinedWorkers are the elastic-scheduling counters
	// (fold means); zero for a conventional static-partition sweep.
	Rebalances    float64 `json:"rebalances"`
	JoinedWorkers float64 `json:"joined_workers"`
	// MasterRestarts and OrphanReconnects are the fault-tolerance counters
	// (fold means); zero for a failure-free sweep.
	MasterRestarts   float64 `json:"master_restarts"`
	OrphanReconnects float64 `json:"orphan_reconnects"`
	// LinkFlaps, ReplayedFrames and FencedFrames are the link-resilience
	// counters (fold means); zero for a flap-free sweep.
	LinkFlaps      float64 `json:"link_flaps"`
	ReplayedFrames float64 `json:"replayed_frames"`
	FencedFrames   float64 `json:"fenced_frames"`
}

// Summary collapses the per-fold measurements into fold means.
func (r *Results) Summary() Summary {
	s := Summary{
		SchemaVersion: SummarySchemaVersion,
		Folds:         r.Cfg.Folds,
		Seed:          r.Cfg.Seed,
		Procs:         r.Cfg.Procs,
		Widths:        r.Cfg.Widths,
	}
	for _, ds := range r.Cfg.Datasets {
		name, pos, neg := ds.Characterize()
		d := DatasetSummary{
			Name:     name,
			Pos:      pos,
			Neg:      neg,
			SeqTimeS: stats.Mean(r.SeqTime[name]),
			SeqAcc:   stats.Mean(r.SeqAcc[name]),
		}
		for _, w := range r.Cfg.Widths {
			for _, p := range r.Cfg.Procs {
				k := Key{Dataset: name, Width: w, Procs: p}
				d.Cells = append(d.Cells, CellSummary{
					Procs:            p,
					Width:            w,
					TimeS:            stats.Mean(r.Time[k]),
					Speedup:          stats.Mean(r.foldSpeedups(k)),
					CommMB:           stats.Mean(r.Comm[k]),
					Epochs:           stats.Mean(r.Epochs[k]),
					Accuracy:         stats.Mean(r.Acc[k]),
					WallS:            stats.Mean(r.Wall[k]),
					Rebalances:       stats.Mean(r.Rebal[k]),
					JoinedWorkers:    stats.Mean(r.Joined[k]),
					MasterRestarts:   stats.Mean(r.Restarts[k]),
					OrphanReconnects: stats.Mean(r.Orphans[k]),
					LinkFlaps:        stats.Mean(r.Flaps[k]),
					ReplayedFrames:   stats.Mean(r.Replayed[k]),
					FencedFrames:     stats.Mean(r.Fenced[k]),
				})
			}
		}
		s.Datasets = append(s.Datasets, d)
	}
	return s
}

// MarshalSummary renders the summary as indented JSON.
func (r *Results) MarshalSummary(scale float64) ([]byte, error) {
	s := r.Summary()
	s.Scale = scale
	return json.MarshalIndent(s, "", "  ")
}
