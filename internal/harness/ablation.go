package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/covering"
	"repro/internal/datasets"
	"repro/internal/parcov"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/xval"
)

// WidthAblation sweeps the pipeline width beyond the paper's {nolimit, 10}
// at a fixed processor count, measuring time and communication — the
// design-choice study DESIGN.md calls Ablation A.
type WidthAblation struct {
	Dataset string
	Procs   int
	Widths  []int
	Time    map[int][]float64 // width → per-fold virtual seconds
	Comm    map[int][]float64 // width → per-fold MBytes
	SeqTime []float64
}

// RunWidthAblation measures the width sweep on one dataset.
func RunWidthAblation(ds *datasets.Dataset, procs int, widths []int, folds int, seed int64, cost cluster.CostModel, progress io.Writer) (*WidthAblation, error) {
	if len(widths) == 0 {
		widths = []int{1, 5, 10, 50, WidthUnlimited}
	}
	if folds <= 0 {
		folds = 5
	}
	ab := &WidthAblation{
		Dataset: ds.Name, Procs: procs, Widths: widths,
		Time: map[int][]float64{}, Comm: map[int][]float64{},
	}
	kfolds, err := xval.KFold(ds.Pos, ds.Neg, folds, seed)
	if err != nil {
		return nil, err
	}
	for fi, fold := range kfolds {
		ex := search.NewExamples(fold.TrainPos, fold.TrainNeg)
		seq, err := covering.Learn(ds.KB, ex, ds.Modes, covering.Config{
			Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
		})
		if err != nil {
			return nil, err
		}
		ab.SeqTime = append(ab.SeqTime, float64(seq.Inferences)*modelNsPerInference(cost)/1e9)
		for _, w := range widths {
			met, err := core.Learn(ds.KB, fold.TrainPos, fold.TrainNeg, ds.Modes, core.Config{
				Workers: procs, Width: w, Seed: seed + int64(fi),
				Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget, Cost: cost,
			})
			if err != nil {
				return nil, err
			}
			ab.Time[w] = append(ab.Time[w], met.VirtualTime.Seconds())
			ab.Comm[w] = append(ab.Comm[w], float64(met.CommBytes)/1e6)
			if progress != nil {
				fmt.Fprintf(progress, "%s fold %d w=%s: %.2fs, %.2f MB\n", ds.Name, fi+1, widthLabel(w), met.VirtualTime.Seconds(), float64(met.CommBytes)/1e6)
			}
		}
	}
	return ab, nil
}

// Render prints the width ablation table.
func (ab *WidthAblation) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation A. Pipeline width sweep on %s at p=%d\n", ab.Dataset, ab.Procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Width\tTime (s)\tSpeedup\tComm (MB)")
	seqMean := stats.Mean(ab.SeqTime)
	for _, width := range ab.Widths {
		tm := stats.Mean(ab.Time[width])
		fmt.Fprintf(tw, "%s\t%.1f\t%.2f\t%.2f\n", widthLabel(width), tm, stats.Speedup(seqMean, tm), stats.Mean(ab.Comm[width]))
	}
	tw.Flush()
}

// RepartitionAblation quantifies the cost of the §4.1 alternative the
// paper declined: re-balancing uncovered positives across workers before
// every epoch — Ablation C. The expected outcome (and the paper's stated
// reason to skip it): similar learning, markedly more communication.
type RepartitionAblation struct {
	Dataset string
	Procs   int
	Base    map[string][]float64 // "time"/"comm"/"epochs" per fold
	Repart  map[string][]float64
}

// RunRepartitionAblation measures p²-mdie with and without per-epoch
// repartitioning at width 10.
func RunRepartitionAblation(ds *datasets.Dataset, procs, folds int, seed int64, cost cluster.CostModel, progress io.Writer) (*RepartitionAblation, error) {
	if folds <= 0 {
		folds = 5
	}
	ab := &RepartitionAblation{
		Dataset: ds.Name, Procs: procs,
		Base:   map[string][]float64{},
		Repart: map[string][]float64{},
	}
	kfolds, err := xval.KFold(ds.Pos, ds.Neg, folds, seed)
	if err != nil {
		return nil, err
	}
	for fi, fold := range kfolds {
		for _, repart := range []bool{false, true} {
			met, err := core.Learn(ds.KB, fold.TrainPos, fold.TrainNeg, ds.Modes, core.Config{
				Workers: procs, Width: 10, Seed: seed + int64(fi),
				Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget, Cost: cost,
				RepartitionEachEpoch: repart,
			})
			if err != nil {
				return nil, err
			}
			dst := ab.Base
			label := "fixed"
			if repart {
				dst = ab.Repart
				label = "repartitioned"
			}
			dst["time"] = append(dst["time"], met.VirtualTime.Seconds())
			dst["comm"] = append(dst["comm"], float64(met.CommBytes)/1e6)
			dst["epochs"] = append(dst["epochs"], float64(met.Epochs))
			if progress != nil {
				fmt.Fprintf(progress, "%s fold %d (%s): %.2fs, %.2f MB, %d epochs\n",
					ds.Name, fi+1, label, met.VirtualTime.Seconds(), float64(met.CommBytes)/1e6, met.Epochs)
			}
		}
	}
	return ab, nil
}

// Render prints the repartitioning comparison.
func (ab *RepartitionAblation) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation C. Per-epoch repartitioning on %s at p=%d (width 10)\n", ab.Dataset, ab.Procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Partitioning\tTime (s)\tComm (MB)\tEpochs")
	fmt.Fprintf(tw, "fixed (paper)\t%.2f\t%.2f\t%.1f\n",
		stats.Mean(ab.Base["time"]), stats.Mean(ab.Base["comm"]), stats.Mean(ab.Base["epochs"]))
	fmt.Fprintf(tw, "per-epoch\t%.2f\t%.2f\t%.1f\n",
		stats.Mean(ab.Repart["time"]), stats.Mean(ab.Repart["comm"]), stats.Mean(ab.Repart["epochs"]))
	tw.Flush()
}

// NoiseAblation stresses the paper's accuracy-preservation claim across
// label-noise levels — Ablation D: at each noise rate, sequential and
// p²-mdie accuracies are compared fold-by-fold.
type NoiseAblation struct {
	Procs  int
	Noises []float64
	SeqAcc map[float64][]float64
	ParAcc map[float64][]float64
}

// RunNoiseAblation runs the sweep on noise-parameterised pyrimidines
// tasks of the given size.
func RunNoiseAblation(nPos, nNeg, procs, folds int, noises []float64, seed int64, noBatch bool, progress io.Writer) (*NoiseAblation, error) {
	if len(noises) == 0 {
		noises = []float64{0, 0.1, 0.2, 0.3}
	}
	if folds <= 0 {
		folds = 5
	}
	ab := &NoiseAblation{
		Procs: procs, Noises: noises,
		SeqAcc: map[float64][]float64{}, ParAcc: map[float64][]float64{},
	}
	for _, noise := range noises {
		ds := datasets.PyrimidinesNoisy(nPos, nNeg, noise, seed)
		ds.Search.NoBatchEval = ds.Search.NoBatchEval || noBatch
		kfolds, err := xval.KFold(ds.Pos, ds.Neg, folds, seed)
		if err != nil {
			return nil, err
		}
		for fi, fold := range kfolds {
			ex := search.NewExamples(fold.TrainPos, fold.TrainNeg)
			seq, err := covering.Learn(ds.KB, ex, ds.Modes, covering.Config{
				Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
			})
			if err != nil {
				return nil, err
			}
			ab.SeqAcc[noise] = append(ab.SeqAcc[noise], covering.Accuracy(ds.KB, seq.Theory, fold.TestPos, fold.TestNeg, ds.Budget))
			met, err := core.Learn(ds.KB, fold.TrainPos, fold.TrainNeg, ds.Modes, core.Config{
				Workers: procs, Width: 10, Seed: seed + int64(fi),
				Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
			})
			if err != nil {
				return nil, err
			}
			ab.ParAcc[noise] = append(ab.ParAcc[noise], covering.Accuracy(ds.KB, met.Theory, fold.TestPos, fold.TestNeg, ds.Budget))
			if progress != nil {
				fmt.Fprintf(progress, "noise %.2f fold %d: seq %.2f par %.2f\n",
					noise, fi+1, ab.SeqAcc[noise][fi], ab.ParAcc[noise][fi])
			}
		}
	}
	return ab, nil
}

// Render prints the noise sweep with significance markers.
func (ab *NoiseAblation) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation D. Accuracy vs label noise (pyrimidines-style task, p=%d, width 10)\n", ab.Procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Noise\tSequential\tp2-mdie\tSignif@98%")
	for _, noise := range ab.Noises {
		mark := "no"
		if res, err := stats.PairedTTest(ab.ParAcc[noise], ab.SeqAcc[noise]); err == nil && res.Significant(0.98) {
			mark = "YES"
		}
		fmt.Fprintf(tw, "%.2f\t%.2f (%.2f)\t%.2f (%.2f)\t%s\n",
			noise,
			100*stats.Mean(ab.SeqAcc[noise]), 100*stats.StdDev(ab.SeqAcc[noise]),
			100*stats.Mean(ab.ParAcc[noise]), 100*stats.StdDev(ab.ParAcc[noise]),
			mark)
	}
	tw.Flush()
}

// ParcovAblation compares p²-mdie against the related-work baseline that
// only parallelises coverage tests (§6) — Ablation B.
type ParcovAblation struct {
	Dataset string
	Procs   []int
	SeqTime []float64
	P2Time  map[int][]float64 // procs → per-fold virtual seconds
	PCTime  map[int][]float64
	P2Msgs  map[int][]float64
	PCMsgs  map[int][]float64
}

// RunParcovAblation measures both parallelisations on one dataset.
func RunParcovAblation(ds *datasets.Dataset, procs []int, folds int, seed int64, cost cluster.CostModel, progress io.Writer) (*ParcovAblation, error) {
	if len(procs) == 0 {
		procs = []int{2, 4, 8}
	}
	if folds <= 0 {
		folds = 5
	}
	ab := &ParcovAblation{
		Dataset: ds.Name, Procs: procs,
		P2Time: map[int][]float64{}, PCTime: map[int][]float64{},
		P2Msgs: map[int][]float64{}, PCMsgs: map[int][]float64{},
	}
	kfolds, err := xval.KFold(ds.Pos, ds.Neg, folds, seed)
	if err != nil {
		return nil, err
	}
	for fi, fold := range kfolds {
		ex := search.NewExamples(fold.TrainPos, fold.TrainNeg)
		seq, err := covering.Learn(ds.KB, ex, ds.Modes, covering.Config{
			Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
		})
		if err != nil {
			return nil, err
		}
		ab.SeqTime = append(ab.SeqTime, float64(seq.Inferences)*modelNsPerInference(cost)/1e9)
		for _, p := range procs {
			met, err := core.Learn(ds.KB, fold.TrainPos, fold.TrainNeg, ds.Modes, core.Config{
				Workers: p, Width: 10, Seed: seed + int64(fi),
				Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget, Cost: cost,
			})
			if err != nil {
				return nil, err
			}
			ab.P2Time[p] = append(ab.P2Time[p], met.VirtualTime.Seconds())
			ab.P2Msgs[p] = append(ab.P2Msgs[p], float64(met.CommMessages))
			pc, err := parcov.Learn(ds.KB, fold.TrainPos, fold.TrainNeg, ds.Modes, parcov.Config{
				Workers: p, Seed: seed + int64(fi),
				Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget, Cost: cost,
			})
			if err != nil {
				return nil, err
			}
			ab.PCTime[p] = append(ab.PCTime[p], pc.VirtualTime.Seconds())
			ab.PCMsgs[p] = append(ab.PCMsgs[p], float64(pc.CommMessages))
			if progress != nil {
				fmt.Fprintf(progress, "%s fold %d p=%d: p2=%.2fs parcov=%.2fs\n", ds.Name, fi+1, p,
					met.VirtualTime.Seconds(), pc.VirtualTime.Seconds())
			}
		}
	}
	return ab, nil
}

// Render prints the comparison table.
func (ab *ParcovAblation) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation B. p2-mdie vs parallel coverage testing on %s (width 10)\n", ab.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tp2 speedup\tparcov speedup\tp2 msgs\tparcov msgs")
	seqMean := stats.Mean(ab.SeqTime)
	for _, p := range ab.Procs {
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.0f\t%.0f\n", p,
			stats.Speedup(seqMean, stats.Mean(ab.P2Time[p])),
			stats.Speedup(seqMean, stats.Mean(ab.PCTime[p])),
			stats.Mean(ab.P2Msgs[p]),
			stats.Mean(ab.PCMsgs[p]))
	}
	tw.Flush()
}

// BalanceAblation quantifies elastic scheduling's throughput-aware
// rebalancing on the cost-skewed trains workload (deliberately imbalanced
// example costs, datasets.TrainsSkewed) — Ablation E. Three partition
// policies at the same width: the paper's static random partition, the
// §4.1 even per-epoch repartition, and sched.Balancer's proportional
// redeal (Config.Balance). The headline number is simulated makespan; the
// PERF.md before/after row comes from this table.
type BalanceAblation struct {
	N        int
	Skew     float64
	Procs    int
	Policies []string
	Rows     map[string]map[string][]float64 // policy → time/comm/epochs/rebalances per fold
}

// RunBalanceAblation measures the three policies on n skewed trains.
func RunBalanceAblation(n, procs, folds int, skew float64, seed int64, cost cluster.CostModel, progress io.Writer) (*BalanceAblation, error) {
	if folds <= 0 {
		folds = 5
	}
	ds := datasets.TrainsSkewed(n, seed, skew)
	ab := &BalanceAblation{
		N: n, Skew: skew, Procs: procs,
		Policies: []string{"static", "repartition", "balance"},
		Rows:     map[string]map[string][]float64{},
	}
	for _, p := range ab.Policies {
		ab.Rows[p] = map[string][]float64{}
	}
	kfolds, err := xval.KFold(ds.Pos, ds.Neg, folds, seed)
	if err != nil {
		return nil, err
	}
	for fi, fold := range kfolds {
		for _, policy := range ab.Policies {
			cfg := core.Config{
				Workers: procs, Width: 10, Seed: seed + int64(fi),
				Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget, Cost: cost,
				RepartitionEachEpoch: policy == "repartition",
				Balance:              policy == "balance",
			}
			met, err := core.Learn(ds.KB, fold.TrainPos, fold.TrainNeg, ds.Modes, cfg)
			if err != nil {
				return nil, err
			}
			row := ab.Rows[policy]
			row["time"] = append(row["time"], met.VirtualTime.Seconds())
			row["comm"] = append(row["comm"], float64(met.CommBytes)/1e6)
			row["epochs"] = append(row["epochs"], float64(met.Epochs))
			row["rebalances"] = append(row["rebalances"], float64(met.Rebalances))
			if progress != nil {
				fmt.Fprintf(progress, "%s fold %d (%s): %.2fs, %.2f MB, %d epochs, %d rebalances\n",
					ds.Name, fi+1, policy, met.VirtualTime.Seconds(), float64(met.CommBytes)/1e6, met.Epochs, met.Rebalances)
			}
		}
	}
	return ab, nil
}

// Render prints the balance comparison.
func (ab *BalanceAblation) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation E. Load balancing on trains-skew (n=%d, skew=%.2f, p=%d, width 10)\n", ab.N, ab.Skew, ab.Procs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Policy\tTime (s)\tComm (MB)\tEpochs\tRebalances")
	labels := map[string]string{
		"static":      "static (paper)",
		"repartition": "even per-epoch",
		"balance":     "throughput-aware",
	}
	for _, p := range ab.Policies {
		row := ab.Rows[p]
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f\t%.1f\n",
			labels[p], stats.Mean(row["time"]), stats.Mean(row["comm"]),
			stats.Mean(row["epochs"]), stats.Mean(row["rebalances"]))
	}
	tw.Flush()
}
