package harness

import (
	"encoding/json"
	"testing"

	"repro/internal/datasets"
)

func TestSummaryCoversEveryCell(t *testing.T) {
	res := sharedRun(t)
	s := res.Summary()
	if s.Folds != 3 || s.Seed != 5 {
		t.Fatalf("protocol echo wrong: %+v", s)
	}
	if len(s.Datasets) != 1 {
		t.Fatalf("datasets = %d", len(s.Datasets))
	}
	d := s.Datasets[0]
	if d.Name != "carcinogenesis" || d.Pos <= 0 || d.Neg <= 0 {
		t.Fatalf("dataset characterisation missing: %+v", d)
	}
	if d.SeqTimeS <= 0 {
		t.Fatalf("sequential baseline missing: %+v", d)
	}
	if want := len(s.Procs) * len(s.Widths); len(d.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(d.Cells), want)
	}
	for _, c := range d.Cells {
		if c.TimeS <= 0 || c.Speedup <= 0 || c.Epochs <= 0 {
			t.Fatalf("empty cell: %+v", c)
		}
	}
}

func TestMarshalSummaryRoundTrips(t *testing.T) {
	res := sharedRun(t)
	out, err := res.MarshalSummary(0.08)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("summary JSON does not parse: %v", err)
	}
	if back.Scale != 0.08 || len(back.Datasets) != 1 || len(back.Datasets[0].Cells) != 4 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.SchemaVersion != SummarySchemaVersion {
		t.Fatalf("schema version = %d, want %d", back.SchemaVersion, SummarySchemaVersion)
	}
	// The version must appear under the stable key in the raw JSON, so
	// tooling can dispatch on it before binding the rest of the document.
	var raw map[string]any
	if err := json.Unmarshal(out, &raw); err != nil {
		t.Fatal(err)
	}
	if v, ok := raw["schema_version"].(float64); !ok || int(v) != SummarySchemaVersion {
		t.Fatalf("raw schema_version = %v, want %d", raw["schema_version"], SummarySchemaVersion)
	}
}

// TestSummaryCarriesElasticCounters pins the elastic-scheduling fields of
// the machine-readable summary: present in the JSON (so BENCH artefacts can
// track them across commits), zero for the conventional static sweep, and
// faithfully fold-meaned when a run rebalanced or grew.
func TestSummaryCarriesElasticCounters(t *testing.T) {
	res := sharedRun(t)
	s := res.Summary()
	for _, c := range s.Datasets[0].Cells {
		if c.Rebalances != 0 || c.JoinedWorkers != 0 {
			t.Fatalf("static sweep reported elastic activity: %+v", c)
		}
	}
	out, err := res.MarshalSummary(0.08)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(out, &raw); err != nil {
		t.Fatal(err)
	}
	ds := raw["datasets"].([]any)[0].(map[string]any)
	cell := ds["cells"].([]any)[0].(map[string]any)
	if _, ok := cell["rebalances"]; !ok {
		t.Fatalf("summary JSON cell lacks rebalances: %v", cell)
	}
	if _, ok := cell["joined_workers"]; !ok {
		t.Fatalf("summary JSON cell lacks joined_workers: %v", cell)
	}

	// Synthetic results with elastic activity fold-mean through Summary()
	// into the right cell fields.
	ds2 := &datasets.Dataset{Name: "x"}
	k := Key{Dataset: "x", Width: 10, Procs: 2}
	r2 := newResults(Config{Folds: 2, Seed: 1, Procs: []int{2}, Widths: []int{10}, Datasets: []*datasets.Dataset{ds2}})
	r2.Time[k] = []float64{1, 1}
	r2.Rebal[k] = []float64{1, 3}
	r2.Joined[k] = []float64{0, 1}
	s2 := r2.Summary()
	if len(s2.Datasets) != 1 || len(s2.Datasets[0].Cells) != 1 {
		t.Fatalf("synthetic summary shape: %+v", s2)
	}
	c2 := s2.Datasets[0].Cells[0]
	if c2.Rebalances != 2 || c2.JoinedWorkers != 0.5 {
		t.Fatalf("elastic fold means = %v/%v, want 2/0.5", c2.Rebalances, c2.JoinedWorkers)
	}
}

// TestSummaryCarriesLinkResilienceCounters pins the link-resilience fields
// of the machine-readable summary: present in the JSON so chaos sweeps can
// confirm a flap really happened (flaps > 0) and really healed (fenced and
// recoveries 0), zero on a failure-free run, and fold-meaned like every
// other cell metric.
func TestSummaryCarriesLinkResilienceCounters(t *testing.T) {
	res := sharedRun(t)
	for _, c := range res.Summary().Datasets[0].Cells {
		if c.LinkFlaps != 0 || c.ReplayedFrames != 0 || c.FencedFrames != 0 {
			t.Fatalf("failure-free sweep reported link faults: %+v", c)
		}
	}
	out, err := res.MarshalSummary(0.08)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(out, &raw); err != nil {
		t.Fatal(err)
	}
	ds := raw["datasets"].([]any)[0].(map[string]any)
	cell := ds["cells"].([]any)[0].(map[string]any)
	for _, key := range []string{"link_flaps", "replayed_frames", "fenced_frames"} {
		if _, ok := cell[key]; !ok {
			t.Fatalf("summary JSON cell lacks %s: %v", key, cell)
		}
	}

	// Synthetic results with link activity fold-mean through Summary().
	ds2 := &datasets.Dataset{Name: "x"}
	k := Key{Dataset: "x", Width: 10, Procs: 2}
	r2 := newResults(Config{Folds: 2, Seed: 1, Procs: []int{2}, Widths: []int{10}, Datasets: []*datasets.Dataset{ds2}})
	r2.Time[k] = []float64{1, 1}
	r2.Flaps[k] = []float64{1, 3}
	r2.Replayed[k] = []float64{10, 20}
	r2.Fenced[k] = []float64{0, 4}
	c2 := r2.Summary().Datasets[0].Cells[0]
	if c2.LinkFlaps != 2 || c2.ReplayedFrames != 15 || c2.FencedFrames != 2 {
		t.Fatalf("link-resilience fold means = %v/%v/%v, want 2/15/2",
			c2.LinkFlaps, c2.ReplayedFrames, c2.FencedFrames)
	}
}
