package harness

import (
	"encoding/json"
	"testing"
)

func TestSummaryCoversEveryCell(t *testing.T) {
	res := sharedRun(t)
	s := res.Summary()
	if s.Folds != 3 || s.Seed != 5 {
		t.Fatalf("protocol echo wrong: %+v", s)
	}
	if len(s.Datasets) != 1 {
		t.Fatalf("datasets = %d", len(s.Datasets))
	}
	d := s.Datasets[0]
	if d.Name != "carcinogenesis" || d.Pos <= 0 || d.Neg <= 0 {
		t.Fatalf("dataset characterisation missing: %+v", d)
	}
	if d.SeqTimeS <= 0 {
		t.Fatalf("sequential baseline missing: %+v", d)
	}
	if want := len(s.Procs) * len(s.Widths); len(d.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(d.Cells), want)
	}
	for _, c := range d.Cells {
		if c.TimeS <= 0 || c.Speedup <= 0 || c.Epochs <= 0 {
			t.Fatalf("empty cell: %+v", c)
		}
	}
}

func TestMarshalSummaryRoundTrips(t *testing.T) {
	res := sharedRun(t)
	out, err := res.MarshalSummary(0.08)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("summary JSON does not parse: %v", err)
	}
	if back.Scale != 0.08 || len(back.Datasets) != 1 || len(back.Datasets[0].Cells) != 4 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
