package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

type ping struct {
	N    int
	Text string
}

// ping speaks both codecs, like every real protocol message, so the
// transport tests run under the default wire codec. Tests shipping bare
// strings or ints (which have no wire encoding) pin CodecGob instead.
func (p ping) AppendWire(w *wire.Writer) {
	w.Int(p.N)
	w.String(p.Text)
}

func (p *ping) DecodeWire(r *wire.Reader) {
	p.N = r.Int()
	p.Text = r.String()
}

func TestSendReceiveRoundTrip(t *testing.T) {
	nw := NewNetwork(2, CostModel{})
	done := make(chan ping, 1)
	go func() {
		msg, ok := nw.Node(1).Receive()
		if !ok {
			t.Error("receive failed")
			done <- ping{}
			return
		}
		var p ping
		if err := msg.Decode(&p); err != nil {
			t.Error(err)
		}
		done <- p
	}()
	want := ping{N: 42, Text: "hello"}
	if err := nw.Node(0).Send(1, 7, want); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestPayloadIsolation(t *testing.T) {
	// The receiver must get a deep copy: mutating the sender's value after
	// Send must not affect what is delivered (MPI semantics).
	nw := NewNetwork(2, CostModel{})
	v := &ping{N: 1, Text: "original"}
	if err := nw.Node(0).Send(1, 0, v); err != nil {
		t.Fatal(err)
	}
	v.Text = "mutated"
	msg, _ := nw.Node(1).Receive()
	var got ping
	if err := msg.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Text != "original" {
		t.Fatalf("payload not isolated: %+v", got)
	}
}

func TestBroadcast(t *testing.T) {
	nw := NewNetwork(4, CostModel{})
	if err := nw.Node(0).Broadcast([]int{1, 2, 3}, 5, ping{N: 9}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		msg, ok := nw.Node(i).Receive()
		if !ok || msg.Kind != 5 {
			t.Fatalf("node %d: %+v ok=%v", i, msg, ok)
		}
		var p ping
		if err := msg.Decode(&p); err != nil || p.N != 9 {
			t.Fatalf("node %d payload: %+v err=%v", i, p, err)
		}
	}
	if got := nw.Stats().Messages; got != 3 {
		t.Fatalf("broadcast counted %d messages, want 3", got)
	}
}

func TestFIFOOrderPerLink(t *testing.T) {
	nw := NewNetwork(2, CostModel{})
	for i := 0; i < 10; i++ {
		if err := nw.Node(0).Send(1, i, ping{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		msg, ok := nw.Node(1).Receive()
		if !ok || msg.Kind != i {
			t.Fatalf("message %d out of order: kind=%d", i, msg.Kind)
		}
	}
}

func TestVirtualClockAdvancesOnCompute(t *testing.T) {
	nw := NewNetwork(1, CostModel{NsPerInference: 1000})
	n := nw.Node(0)
	n.Compute(500)
	if got := n.Clock(); got != VTime(500*1000) {
		t.Fatalf("clock = %d, want 500000", got)
	}
	n.ComputeDuration(time.Millisecond)
	if got := n.Clock(); got != VTime(500000+1e6) {
		t.Fatalf("clock = %d after duration", got)
	}
}

func TestVirtualClockAdvancesOnReceive(t *testing.T) {
	model := CostModel{Latency: time.Millisecond, BandwidthBps: 1e6, NsPerInference: 1}
	nw := NewNetwork(2, model)
	sender := nw.Node(0)
	sender.ComputeDuration(10 * time.Millisecond) // sender clock = 10ms
	if err := sender.Send(1, 0, ping{Text: "x"}); err != nil {
		t.Fatal(err)
	}
	msg, _ := nw.Node(1).Receive()
	// Arrival = 10ms + 1ms latency + bytes/1e6 seconds.
	wantMin := VTime(11 * time.Millisecond)
	if msg.Arrive < wantMin {
		t.Fatalf("arrival %d < %d", msg.Arrive, wantMin)
	}
	if nw.Node(1).Clock() != msg.Arrive {
		t.Fatalf("receiver clock %d != arrival %d", nw.Node(1).Clock(), msg.Arrive)
	}
	// Receiver ahead of arrival must NOT move backwards.
	nw2 := NewNetwork(2, model)
	nw2.Node(1).ComputeDuration(time.Second)
	if err := nw2.Node(0).Send(1, 0, ping{}); err != nil {
		t.Fatal(err)
	}
	before := nw2.Node(1).Clock()
	nw2.Node(1).Receive()
	if nw2.Node(1).Clock() != before {
		t.Fatal("receiver clock moved backwards")
	}
}

func TestTransferTimeScalesWithBytes(t *testing.T) {
	model := CostModel{Latency: time.Millisecond, BandwidthBps: 1e6, NsPerInference: 1}.withDefaults()
	small := model.transferTime(100)
	big := model.transferTime(100000)
	if big <= small {
		t.Fatalf("transfer time not monotone in size: %d vs %d", small, big)
	}
	// 100 KB at 1 MB/s ≈ 100 ms (+1 ms latency).
	want := VTime(101 * time.Millisecond)
	if diff := big - want; diff < -VTime(time.Millisecond) || diff > VTime(time.Millisecond) {
		t.Fatalf("transfer time %v, want ≈ %v", big, want)
	}
}

func TestByteAccounting(t *testing.T) {
	nw := NewNetwork(3, CostModel{})
	if err := nw.Node(0).Send(1, 0, ping{Text: "0 to 1"}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Node(0).Send(2, 0, ping{Text: "0 to 2, longer payload"}); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if st.Messages != 2 || st.Bytes <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	if nw.LinkBytes(0, 1) <= 0 || nw.LinkBytes(0, 2) <= 0 {
		t.Fatal("link bytes missing")
	}
	if nw.LinkBytes(0, 2) <= nw.LinkBytes(0, 1) {
		t.Fatal("longer payload should move more bytes")
	}
	if nw.LinkBytes(1, 0) != 0 {
		t.Fatal("phantom traffic on unused link")
	}
	if st.Bytes != nw.LinkBytes(0, 1)+nw.LinkBytes(0, 2) {
		t.Fatal("total bytes != sum of links")
	}
}

func TestReceiveBlocksUntilSend(t *testing.T) {
	nw := NewNetwork(2, CostModel{})
	received := make(chan struct{})
	go func() {
		nw.Node(1).Receive()
		close(received)
	}()
	select {
	case <-received:
		t.Fatal("receive returned with no message")
	case <-time.After(20 * time.Millisecond):
	}
	if err := nw.Node(0).Send(1, 0, ping{}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-received:
	case <-time.After(time.Second):
		t.Fatal("receive never unblocked")
	}
}

func TestShutdownReleasesReceivers(t *testing.T) {
	nw := NewNetwork(2, CostModel{})
	done := make(chan bool, 1)
	go func() {
		_, ok := nw.Node(1).Receive()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	nw.Shutdown()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Receive reported ok after shutdown")
		}
	case <-time.After(time.Second):
		t.Fatal("shutdown did not release receiver")
	}
}

func TestMakespanIsMaxClock(t *testing.T) {
	nw := NewNetwork(3, CostModel{NsPerInference: 1})
	nw.Node(0).ComputeDuration(5 * time.Millisecond)
	nw.Node(1).ComputeDuration(9 * time.Millisecond)
	nw.Node(2).ComputeDuration(2 * time.Millisecond)
	if got := nw.Makespan(); got != VTime(9*time.Millisecond) {
		t.Fatalf("makespan = %v", got)
	}
}

func TestTraceEvents(t *testing.T) {
	nw := NewNetwork(2, CostModel{})
	var mu sync.Mutex
	var events []Event
	nw.SetTrace(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	if err := nw.Node(0).Send(1, 3, ping{}); err != nil {
		t.Fatal(err)
	}
	nw.Node(1).Receive()
	nw.Node(1).Compute(10)
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 3 {
		t.Fatalf("events: %v", events)
	}
	if events[0].Type != EvSend || events[1].Type != EvReceive || events[2].Type != EvCompute {
		t.Fatalf("event sequence: %v", events)
	}
	if events[0].Kind != 3 || events[1].Peer != 0 {
		t.Fatalf("event fields: %+v %+v", events[0], events[1])
	}
}

func TestRingTokenStress(t *testing.T) {
	const n, rounds = 8, 50
	nw := NewNetwork(n, CostModel{})
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(id int) {
			defer wg.Done()
			node := nw.Node(id)
			if id == 0 {
				if err := node.Send(1, 0, ping{N: 0}); err != nil {
					t.Error(err)
					return
				}
			}
			for {
				msg, ok := node.Receive()
				if !ok {
					return
				}
				var p ping
				if err := msg.Decode(&p); err != nil {
					t.Error(err)
					return
				}
				node.Compute(100)
				if p.N >= rounds*n {
					nw.Shutdown()
					return
				}
				if err := node.Send((id+1)%n, 0, ping{N: p.N + 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := nw.Stats()
	if st.Messages < rounds*n {
		t.Fatalf("messages = %d, want ≥ %d", st.Messages, rounds*n)
	}
	if nw.Makespan() <= 0 {
		t.Fatal("makespan not positive")
	}
}

// TestSpawnDeliversPeerUpAndGrowsAccounting pins the elastic join surface
// of the simulated machine: a node spawned mid-run is announced to
// failure-notifying peers as a KindPeerUp event, its links are accounted,
// and nodes that did not opt in hear nothing.
func TestSpawnDeliversPeerUpAndGrowsAccounting(t *testing.T) {
	nw := NewNetwork(2, CostModel{})
	nw.SetCodec(CodecGob)           // bare string payloads below have no wire encoding
	nw.Node(0).NotifyFailures(true) // the master opts in; node 1 does not

	joiner := nw.Spawn()
	if joiner.ID() != 2 || nw.Size() != 3 || nw.Node(2) != joiner {
		t.Fatalf("spawned node id=%d size=%d", joiner.ID(), nw.Size())
	}
	msg, ok := nw.Node(0).Receive()
	if !ok || msg.Kind != KindPeerUp || msg.From != 2 {
		t.Fatalf("master got %+v, want KindPeerUp from 2", msg)
	}
	// Traffic to and from the joiner is accounted like any other link.
	if err := nw.Node(0).Send(2, 7, "welcome"); err != nil {
		t.Fatal(err)
	}
	if _, ok := joiner.Receive(); !ok {
		t.Fatal("joiner did not receive")
	}
	if err := joiner.Send(0, 8, "ack"); err != nil {
		t.Fatal(err)
	}
	tr := nw.Traffic()
	if tr.N != 3 || tr.LinkMsgs(0, 2) != 1 || tr.LinkMsgs(2, 0) != 1 {
		t.Fatalf("joiner links not accounted: %v", tr.Links())
	}
	// Node 1 never opted in: its mailbox holds no membership event.
	if err := nw.Node(0).Send(1, 9, "x"); err != nil {
		t.Fatal(err)
	}
	if msg, ok := nw.Node(1).Receive(); !ok || msg.Kind != 9 {
		t.Fatalf("non-notifying node saw %+v, want only the data message", msg)
	}
	// Members on every node includes the joiner.
	if got := nw.Node(1).Members(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("members = %v", got)
	}
}

// TestSetSpeedScalesCompute pins per-node heterogeneity: a factor-4 node
// pays 4× the model cost per inference, everyone else is unchanged.
func TestSetSpeedScalesCompute(t *testing.T) {
	nw := NewNetwork(2, CostModel{NsPerInference: 1000})
	nw.SetSpeed(1, 4)
	nw.Node(0).Compute(100)
	nw.Node(1).Compute(100)
	if nw.Node(0).Clock() != VTime(100*1000) {
		t.Fatalf("node 0 clock %d", nw.Node(0).Clock())
	}
	if nw.Node(1).Clock() != VTime(4*100*1000) {
		t.Fatalf("node 1 clock %d, want 4x", nw.Node(1).Clock())
	}
	nw.SetSpeed(1, 0) // reset to 1
	nw.Node(1).Compute(100)
	if nw.Node(1).Clock() != VTime(5*100*1000) {
		t.Fatalf("node 1 clock after reset %d", nw.Node(1).Clock())
	}
}
