// Package cluster simulates a distributed-memory message-passing machine
// (the paper's LAM/MPI Beowulf cluster) inside one process: one goroutine
// per node, unbounded mailboxes, non-blocking send/broadcast and blocking
// receive — exactly the communication model of the paper's §2.2.
//
// Two things make the simulation quantitative rather than just structural:
//
//   - every payload is serialised (compact wire codec by default, gob
//     behind -wirecodec gob), so per-message and per-link byte counts
//     are real (Table 4 reproduces from these), and the receiver
//     decodes its own deep copy, giving MPI-like value isolation;
//
//   - each node carries a virtual clock in the spirit of Lamport: Compute
//     advances it by measured work (SLD inferences × a calibrated cost),
//     and Receive advances it to the message arrival time, which is the
//     sender's clock at send plus latency plus bytes/bandwidth. The maximum
//     clock at termination is the simulated makespan of the run on a
//     cluster with one CPU per node, independent of how many host cores
//     actually ran the goroutines.
package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// VTime is virtual time in nanoseconds since the start of the run.
type VTime int64

// Seconds converts a virtual time to seconds.
func (t VTime) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts a virtual time to a time.Duration.
func (t VTime) Duration() time.Duration { return time.Duration(t) }

// CostModel sets the simulated hardware constants.
type CostModel struct {
	// Latency is the fixed per-message cost (interconnect + MPI stack).
	Latency time.Duration
	// BandwidthBps is the link bandwidth in bytes per second.
	BandwidthBps float64
	// NsPerInference converts one SLD inference into virtual nanoseconds.
	NsPerInference float64
}

// DefaultCostModel approximates the paper's 2005-era Beowulf hardware:
// 100 Mbit/s switched Ethernet (~12.5 MB/s, ~120 µs end-to-end latency for
// LAM/MPI) and a Prolog engine doing roughly one resolution per
// microsecond.
var DefaultCostModel = CostModel{
	Latency:        120 * time.Microsecond,
	BandwidthBps:   12.5e6,
	NsPerInference: 1000,
}

func (c CostModel) withDefaults() CostModel {
	if c.Latency <= 0 {
		c.Latency = DefaultCostModel.Latency
	}
	if c.BandwidthBps <= 0 {
		c.BandwidthBps = DefaultCostModel.BandwidthBps
	}
	if c.NsPerInference <= 0 {
		c.NsPerInference = DefaultCostModel.NsPerInference
	}
	return c
}

// WithDefaults returns the model with zero fields replaced by defaults.
func (c CostModel) WithDefaults() CostModel { return c.withDefaults() }

// TransferTime returns the virtual duration to move n payload bytes — the
// fixed latency plus the bandwidth term. Exported so other transports
// charge message delivery identically to the simulation.
func (c CostModel) TransferTime(n int) VTime { return c.transferTime(n) }

// transferTime returns the virtual duration to move n payload bytes.
func (c CostModel) transferTime(n int) VTime {
	return VTime(c.Latency) + VTime(float64(n)/c.BandwidthBps*1e9)
}

// Message is one delivered communication.
type Message struct {
	From, To int
	// Kind is an application-level tag used for dispatch.
	Kind int
	// Payload is the encoded body; Codec says which encoding.
	Payload []byte
	// Codec is the encoding the payload was produced with. The transport
	// that delivered the message stamps it, so Decode needs no guessing.
	Codec Codec
	// SendTime is the sender's virtual clock when the send happened.
	SendTime VTime
	// Arrive is the virtual arrival time at the receiver.
	Arrive VTime
	// Seq is a global sequence number (diagnostics, deterministic traces).
	Seq int64
}

// Decode unmarshals the payload into v (a pointer) using the codec the
// message was delivered under.
func (m *Message) Decode(v any) error {
	return DecodePayload(m.Codec, m.Payload, v)
}

// mailbox is an unbounded FIFO queue: sends never block (the paper's
// non-blocking send/broadcast), receives block until a message is present.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Signal()
}

func (mb *mailbox) take() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return Message{}, false
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	return m, true
}

// takeCtx is take with a failure path: it returns ErrClosed when the
// mailbox is closed with nothing queued, and the context error when ctx
// expires first. A queued message always wins over an expired context, so
// no delivered message is lost to a deadline race.
func (mb *mailbox) takeCtx(ctx context.Context) (Message, error) {
	defer WakeOnDone(ctx, mb.cond)()
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed && ctx.Err() == nil {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		if err := ctx.Err(); err != nil {
			return Message{}, err
		}
		return Message{}, ErrClosed
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	return m, nil
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// Network is a set of simulated nodes plus traffic accounting. The node
// set can grow mid-run (Spawn), modelling machines that join a running
// cluster; it never shrinks — Kill marks nodes dead but keeps their ids.
type Network struct {
	model CostModel
	// codec is the payload encoding every node on this network sends
	// with. Set once via SetCodec before any node runs; read without
	// synchronisation on the send path.
	codec Codec
	seq   atomic.Int64

	// mu guards the growth state (nodes, per-link counter slices): Spawn
	// write-locks to append; the delivery hot path only read-locks and
	// then uses atomics, so senders never serialise on each other.
	mu          sync.RWMutex
	nodes       []*Node
	perLink     []atomic.Int64 // bytes, index = from*len(nodes) + to
	perLinkMsgs []atomic.Int64 // messages, same indexing

	msgs    atomic.Int64
	bytes   atomic.Int64
	traceMu sync.Mutex
	traceFn func(Event)

	deadMu sync.Mutex
	dead   map[int]bool // nodes removed by Kill
}

// NewNetwork creates n nodes (ids 0..n-1) sharing one cost model.
func NewNetwork(n int, model CostModel) *Network {
	nw := &Network{
		model:       model.withDefaults(),
		perLink:     make([]atomic.Int64, n*n),
		perLinkMsgs: make([]atomic.Int64, n*n),
	}
	nw.nodes = make([]*Node, n)
	for i := range nw.nodes {
		nw.nodes[i] = &Node{id: i, nw: nw, mbox: newMailbox()}
	}
	return nw
}

// Size returns the number of nodes (including any spawned mid-run).
func (nw *Network) Size() int {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return len(nw.nodes)
}

// Node returns node i. Each node must be driven by exactly one goroutine.
func (nw *Network) Node(i int) *Node {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.nodes[i]
}

// Model returns the cost model in use.
func (nw *Network) Model() CostModel { return nw.model }

// SetCodec selects the payload encoding (default CodecWire). It must be
// called before any node sends — the field is read unsynchronised on
// the delivery hot path.
func (nw *Network) SetCodec(c Codec) { nw.codec = c }

// Codec returns the payload encoding in use.
func (nw *Network) Codec() Codec { return nw.codec }

// Spawn adds one fresh node to a running network — the simulated analogue
// of a machine joining the cluster mid-run. The node starts with a zero
// clock and an empty mailbox; every live node that opted into
// NotifyFailures receives a synthetic KindPeerUp event naming it, which is
// how a protocol master learns a joiner is available. The traffic table
// grows to cover the new links. The returned node must be driven by
// exactly one goroutine, like every other node.
func (nw *Network) Spawn() *Node {
	nw.mu.Lock()
	old := len(nw.nodes)
	id := old
	n := &Node{id: id, nw: nw, mbox: newMailbox()}
	nw.nodes = append(nw.nodes, n)
	// Re-index the per-link counters for the grown node count, keeping
	// every (from, to) pair's identity. Holding the write lock excludes
	// concurrent deliveries, whose read lock pins the matching slices.
	size := id + 1
	pl := make([]atomic.Int64, size*size)
	plm := make([]atomic.Int64, size*size)
	for from := 0; from < old; from++ {
		for to := 0; to < old; to++ {
			pl[from*size+to].Store(nw.perLink[from*old+to].Load())
			plm[from*size+to].Store(nw.perLinkMsgs[from*old+to].Load())
		}
	}
	nw.perLink, nw.perLinkMsgs = pl, plm
	peers := append([]*Node(nil), nw.nodes[:id]...)
	nw.mu.Unlock()
	for _, p := range peers {
		if nw.isDead(p.id) || !p.notify.Load() {
			continue
		}
		// Synthetic event, mirroring Kill's KindPeerDown: no payload, no
		// traffic accounting, no clock advance.
		p.mbox.put(Message{From: id, To: p.id, Kind: KindPeerUp})
	}
	return n
}

// SetSpeed scales node id's compute cost: factor 2 makes every inference
// cost twice the model's NsPerInference on that node, factor 0.5 half.
// Factors ≤ 0 reset to 1. The cluster is otherwise homogeneous; per-node
// factors model the heterogeneous machines throughput-aware balancing
// redistributes load over.
func (nw *Network) SetSpeed(id int, factor float64) {
	nw.Node(id).speed.Store(math.Float64bits(factor))
}

// Shutdown closes every mailbox, releasing any blocked receiver.
func (nw *Network) Shutdown() {
	nw.mu.RLock()
	nodes := append([]*Node(nil), nw.nodes...)
	nw.mu.RUnlock()
	for _, n := range nodes {
		n.mbox.close()
	}
}

// Kill simulates the crash of node id: its mailbox closes (a goroutine
// blocked in its ReceiveCtx unblocks with ErrClosed, and messages sent to
// it disappear, as they would on a dead machine) and every surviving node
// that opted into NotifyFailures receives a synthetic KindPeerDown event.
// Nodes that did not opt in simply never hear from the dead peer again —
// the silent-death behaviour a non-fault-tolerant protocol must already
// guard against with timeouts. Killing a node twice is a no-op.
func (nw *Network) Kill(id int) {
	nw.deadMu.Lock()
	if nw.dead == nil {
		nw.dead = make(map[int]bool)
	}
	if nw.dead[id] {
		nw.deadMu.Unlock()
		return
	}
	nw.dead[id] = true
	nw.deadMu.Unlock()
	nw.mu.RLock()
	nodes := append([]*Node(nil), nw.nodes...)
	nw.mu.RUnlock()
	nodes[id].mbox.close()
	for _, n := range nodes {
		if n.id == id || nw.isDead(n.id) || !n.notify.Load() {
			continue
		}
		// Synthetic event: no payload, no traffic accounting, no clock
		// advance (Arrive zero never moves a receiver's clock forward).
		n.mbox.put(Message{From: id, To: n.id, Kind: KindPeerDown})
	}
}

func (nw *Network) isDead(id int) bool {
	nw.deadMu.Lock()
	defer nw.deadMu.Unlock()
	return nw.dead[id]
}

// Stats is a snapshot of network traffic.
type Stats struct {
	Messages int64
	Bytes    int64
}

// Stats returns total traffic so far.
func (nw *Network) Stats() Stats {
	return Stats{Messages: nw.msgs.Load(), Bytes: nw.bytes.Load()}
}

// LinkBytes returns bytes sent from node a to node b.
func (nw *Network) LinkBytes(a, b int) int64 {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	return nw.perLink[a*len(nw.nodes)+b].Load()
}

// Traffic snapshots the per-link byte/message table (Table-4 accounting).
func (nw *Network) Traffic() Traffic {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	t := NewTraffic(len(nw.nodes))
	for i := range nw.perLink {
		t.Bytes[i] = nw.perLink[i].Load()
		t.Msgs[i] = nw.perLinkMsgs[i].Load()
	}
	return t
}

// Makespan returns the maximum node clock; call it after all node
// goroutines have finished to obtain the simulated run time.
func (nw *Network) Makespan() VTime {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	var max VTime
	for _, n := range nw.nodes {
		if c := n.Clock(); c > max {
			max = c
		}
	}
	return max
}

// SetTrace installs a hook that observes every send and receive.
func (nw *Network) SetTrace(fn func(Event)) {
	nw.traceMu.Lock()
	nw.traceFn = fn
	nw.traceMu.Unlock()
}

func (nw *Network) emit(ev Event) {
	nw.traceMu.Lock()
	fn := nw.traceFn
	nw.traceMu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// EventType discriminates trace events.
type EventType uint8

const (
	// EvSend is emitted when a message leaves a node.
	EvSend EventType = iota
	// EvReceive is emitted when a node consumes a message.
	EvReceive
	// EvCompute is emitted when a node advances its clock by local work.
	EvCompute
)

func (t EventType) String() string {
	switch t {
	case EvSend:
		return "send"
	case EvReceive:
		return "recv"
	case EvCompute:
		return "work"
	}
	return "?"
}

// Event is one trace record.
type Event struct {
	Type  EventType
	Node  int   // acting node
	Peer  int   // counterpart (send: to, receive: from), -1 for compute
	Kind  int   // message kind, -1 for compute
	Bytes int   // payload bytes, 0 for compute
	Clock VTime // acting node's clock after the event
	Seq   int64
}

func (e Event) String() string {
	switch e.Type {
	case EvSend:
		return fmt.Sprintf("[%8.3fms] node %d send kind=%d to %d (%d B)", float64(e.Clock)/1e6, e.Node, e.Kind, e.Peer, e.Bytes)
	case EvReceive:
		return fmt.Sprintf("[%8.3fms] node %d recv kind=%d from %d (%d B)", float64(e.Clock)/1e6, e.Node, e.Kind, e.Peer, e.Bytes)
	default:
		return fmt.Sprintf("[%8.3fms] node %d compute", float64(e.Clock)/1e6, e.Node)
	}
}

// Node is one simulated cluster node. All methods must be called from the
// single goroutine that owns the node.
type Node struct {
	id     int
	nw     *Network
	mbox   *mailbox
	clock  atomic.Int64  // VTime; atomic so Makespan can read cross-goroutine
	notify atomic.Bool   // deliver KindPeerDown/KindPeerUp events on Kill/Spawn
	speed  atomic.Uint64 // float64 bits: per-node compute cost factor (0 = 1.0)
}

// Node implements the Transport abstraction over the simulated machine.
var _ Transport = (*Node)(nil)

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// Size returns the number of nodes in the network (grows with Spawn).
func (n *Node) Size() int { return n.nw.Size() }

// Members returns the other nodes not removed by Kill, ascending
// (including any nodes spawned mid-run).
func (n *Node) Members() []int {
	size := n.nw.Size()
	n.nw.deadMu.Lock()
	defer n.nw.deadMu.Unlock()
	out := make([]int, 0, size-1)
	for id := 0; id < size; id++ {
		if id != n.id && !n.nw.dead[id] {
			out = append(out, id)
		}
	}
	return out
}

// NotifyFailures opts this node into synthetic KindPeerDown events when a
// peer is removed by Kill.
func (n *Node) NotifyFailures(on bool) { n.notify.Store(on) }

// Clock returns the node's current virtual time.
func (n *Node) Clock() VTime { return VTime(n.clock.Load()) }

func (n *Node) advanceTo(t VTime) {
	if t > n.Clock() {
		n.clock.Store(int64(t))
	}
}

// speedFactor returns this node's compute cost factor (default 1).
func (n *Node) speedFactor() float64 {
	f := math.Float64frombits(n.speed.Load())
	if f <= 0 {
		return 1
	}
	return f
}

// Compute advances the node's clock by units of work (SLD inferences) under
// the network cost model, scaled by the node's speed factor.
func (n *Node) Compute(units int64) {
	if units <= 0 {
		return
	}
	d := VTime(float64(units) * n.nw.model.NsPerInference * n.speedFactor())
	n.clock.Add(int64(d))
	n.nw.emit(Event{Type: EvCompute, Node: n.id, Peer: -1, Kind: -1, Clock: n.Clock()})
}

// ComputeDuration advances the clock by a raw virtual duration.
func (n *Node) ComputeDuration(d time.Duration) {
	if d > 0 {
		n.clock.Add(int64(d))
	}
}

// Send encodes v under the network's codec and delivers it to node `to`
// without blocking.
// The sender is charged no compute time (sends are asynchronous); the
// receiver cannot observe the message before its arrival time. A
// failure-notifying sender (NotifyFailures) gets ErrPeerDown for a
// Kill-ed destination — the same contract as the TCP transport — while a
// non-notifying sender keeps the lost-datagram model: the send silently
// vanishes, as it would on a real network before the failure detector
// fires.
func (n *Node) Send(to int, kind int, v any) error {
	if n.notify.Load() && n.nw.isDead(to) {
		return fmt.Errorf("cluster: send from %d to %d kind %d: %w", n.id, to, kind, ErrPeerDown)
	}
	payload, err := EncodePayload(n.nw.codec, v)
	if err != nil {
		return fmt.Errorf("cluster: send from %d to %d kind %d: %w", n.id, to, kind, err)
	}
	n.deliver(to, kind, payload)
	return nil
}

// Broadcast sends v to every node in targets (encoded once). Like
// Send, a failure-notifying sender gets ErrPeerDown on the first dead
// target (the live targets before it are delivered).
func (n *Node) Broadcast(targets []int, kind int, v any) error {
	payload, err := EncodePayload(n.nw.codec, v)
	if err != nil {
		return fmt.Errorf("cluster: broadcast from %d kind %d: %w", n.id, kind, err)
	}
	for _, to := range targets {
		if n.notify.Load() && n.nw.isDead(to) {
			return fmt.Errorf("cluster: broadcast from %d to %d kind %d: %w", n.id, to, kind, ErrPeerDown)
		}
		n.deliver(to, kind, payload)
	}
	return nil
}

func (n *Node) deliver(to int, kind int, payload []byte) {
	nw := n.nw
	if nw.isDead(to) {
		// A dead machine neither receives nor accounts traffic; the send
		// itself stays non-blocking and error-free, exactly like a lost
		// datagram. Fault-aware callers learn of the death via the
		// KindPeerDown event, not the send.
		return
	}
	seq := nw.seq.Add(1)
	sendTime := n.Clock()
	msg := Message{
		From:     n.id,
		To:       to,
		Kind:     kind,
		Payload:  payload,
		Codec:    nw.codec,
		SendTime: sendTime,
		Arrive:   sendTime + nw.model.transferTime(len(payload)),
		Seq:      seq,
	}
	nw.msgs.Add(1)
	nw.bytes.Add(int64(len(payload)))
	nw.mu.RLock()
	nw.perLink[n.id*len(nw.nodes)+to].Add(int64(len(payload)))
	nw.perLinkMsgs[n.id*len(nw.nodes)+to].Add(1)
	dst := nw.nodes[to]
	nw.mu.RUnlock()
	nw.emit(Event{Type: EvSend, Node: n.id, Peer: to, Kind: kind, Bytes: len(payload), Clock: sendTime, Seq: seq})
	dst.mbox.put(msg)
}

// Receive blocks until a message is available, advances the node's clock to
// the arrival time, and returns it. ok is false when the network was shut
// down with no pending messages.
func (n *Node) Receive() (Message, bool) {
	msg, ok := n.mbox.take()
	if !ok {
		return Message{}, false
	}
	n.advanceTo(msg.Arrive)
	n.nw.emit(Event{Type: EvReceive, Node: n.id, Peer: msg.From, Kind: msg.Kind, Bytes: len(msg.Payload), Clock: n.Clock(), Seq: msg.Seq})
	return msg, true
}

// ReceiveCtx is Receive with a failure path: it unblocks with ErrClosed
// after Shutdown, or with the context error when ctx expires first — so a
// crashed peer (whose failure handler shuts the network down) or a deadline
// surfaces as an error instead of a deadlock.
func (n *Node) ReceiveCtx(ctx context.Context) (Message, error) {
	msg, err := n.mbox.takeCtx(ctx)
	if err != nil {
		return Message{}, err
	}
	n.advanceTo(msg.Arrive)
	n.nw.emit(Event{Type: EvReceive, Node: n.id, Peer: msg.From, Kind: msg.Kind, Bytes: len(msg.Payload), Clock: n.Clock(), Seq: msg.Seq})
	return msg, nil
}

// Encode gob-encodes a message payload exactly as Send does. netcluster
// uses it so wire payloads — and therefore the per-link byte accounting —
// are byte-identical to the simulation's for identical protocol messages.
func Encode(v any) ([]byte, error) {
	return encode(v)
}

func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
