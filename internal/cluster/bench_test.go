package cluster

import (
	"testing"

	"repro/internal/wire"
)

type benchPayload struct {
	Indices [][]int32
	Label   string
}

func (p benchPayload) AppendWire(w *wire.Writer) {
	w.Uvarint(uint64(len(p.Indices)))
	for _, ix := range p.Indices {
		w.I32s(ix)
	}
	w.String(p.Label)
}

func (p *benchPayload) DecodeWire(r *wire.Reader) {
	if n := r.Len(); n > 0 {
		p.Indices = make([][]int32, n)
		for i := range p.Indices {
			p.Indices[i] = r.I32s()
		}
	}
	p.Label = r.String()
}

func BenchmarkSendReceiveRoundTrip(b *testing.B) {
	nw := NewNetwork(2, CostModel{})
	payload := benchPayload{Label: "stage"}
	for i := 0; i < 10; i++ {
		payload.Indices = append(payload.Indices, []int32{1, 5, 9, 12})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := nw.Node(0).Send(1, 1, payload); err != nil {
			b.Fatal(err)
		}
		msg, ok := nw.Node(1).Receive()
		if !ok {
			b.Fatal("receive failed")
		}
		var back benchPayload
		if err := msg.Decode(&back); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBroadcast8(b *testing.B) {
	nw := NewNetwork(9, CostModel{})
	targets := []int{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := nw.Node(0).Broadcast(targets, 1, benchPayload{Label: "bag"}); err != nil {
			b.Fatal(err)
		}
		for _, t := range targets {
			if _, ok := nw.Node(t).Receive(); !ok {
				b.Fatal("receive failed")
			}
		}
	}
}
