package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/wire"
)

// Codec selects the encoding protocol payloads travel in — on the
// simulated transport and on TCP alike, so the per-link byte accounting
// (and therefore the virtual-clock cost model) measures the same frames
// both ways.
type Codec uint8

const (
	// CodecWire is the compact symbol-interned binary codec
	// (internal/wire): varint integers, interned symbol indices, flate
	// compression over bulk shipments. The zero value, and the default.
	CodecWire Codec = iota
	// CodecGob is the original encoding/gob framing, retained for A/B
	// comparison behind -wirecodec gob.
	CodecGob
)

// String returns the flag spelling of the codec.
func (c Codec) String() string {
	switch c {
	case CodecWire:
		return "wire"
	case CodecGob:
		return "gob"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// ParseCodec parses a -wirecodec flag value. The empty string means the
// default (wire).
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "wire":
		return CodecWire, nil
	case "gob":
		return CodecGob, nil
	default:
		return 0, fmt.Errorf("cluster: unknown wire codec %q (want \"wire\" or \"gob\")", s)
	}
}

// EncodePayload encodes v under codec c, exactly as Send does. Both
// transports call it, so identical protocol messages produce identical
// payload bytes regardless of how they travel.
func EncodePayload(c Codec, v any) ([]byte, error) {
	switch c {
	case CodecGob:
		return encode(v)
	case CodecWire:
		m, ok := v.(wire.Marshaler)
		if !ok {
			return nil, fmt.Errorf("cluster: %T has no wire encoding (does not implement wire.Marshaler)", v)
		}
		return wire.Seal(m), nil
	default:
		return nil, fmt.Errorf("cluster: unknown codec %d", uint8(c))
	}
}

// DecodePayload decodes a payload produced by EncodePayload(c, ...)
// into v (a pointer).
func DecodePayload(c Codec, payload []byte, v any) error {
	switch c {
	case CodecGob:
		return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
	case CodecWire:
		u, ok := v.(wire.Unmarshaler)
		if !ok {
			return fmt.Errorf("cluster: %T has no wire decoding (does not implement wire.Unmarshaler)", v)
		}
		return wire.Unseal(payload, u)
	default:
		return fmt.Errorf("cluster: unknown codec %d", uint8(c))
	}
}

// AppendWire encodes the traffic table: node count, then the flattened
// per-link byte and message counters.
func (t Traffic) AppendWire(w *wire.Writer) {
	w.Int(t.N)
	w.I64s(t.Bytes)
	w.I64s(t.Msgs)
}

// DecodeWire decodes a traffic table, rejecting tables whose counter
// slices disagree with the claimed node count.
func (t *Traffic) DecodeWire(r *wire.Reader) {
	t.N = r.Int()
	t.Bytes = r.I64s()
	t.Msgs = r.I64s()
	if r.Err() == nil && (len(t.Bytes) != len(t.Msgs) || (t.N != 0 && len(t.Bytes) != t.N*t.N) || (t.N == 0 && t.Bytes != nil)) {
		r.Failf("traffic table: n=%d, %d byte counters, %d msg counters", t.N, len(t.Bytes), len(t.Msgs))
	}
}
