package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ErrClosed is returned by ReceiveCtx when the transport has been shut down
// and no pending message remains. Node loops treat it as a clean exit.
var ErrClosed = errors.New("cluster: transport closed")

// ErrPeerDown is returned (wrapped) by Send/Broadcast on a
// failure-notifying transport when the destination has been declared dead.
// Protocol code that can recover from peer loss treats it as "message
// dropped": the corresponding KindPeerDown event carries the failure.
var ErrPeerDown = errors.New("cluster: peer down")

// KindPeerDown is the kind of the synthetic membership event a
// failure-notifying transport delivers when it declares a peer dead: the
// Message's From field names the dead peer and the payload is empty. The
// kind is negative so it can never collide with an application protocol
// kind (those are small non-negative constants).
const KindPeerDown = -1

// KindPeerUp is the join-side counterpart of KindPeerDown: a synthetic
// membership event delivered to a failure-notifying node when a new peer
// joins the cluster mid-run. The Message's From field names the joiner and
// the payload is empty. The simulated machine emits it from Network.Spawn;
// netcluster emits it on the master when a late worker completes the join
// handshake. Protocol code that cannot use joiners simply ignores it.
const KindPeerUp = -2

// Transport is one node's port onto a message-passing substrate: the
// communication model of the paper's §2.2 (non-blocking send/broadcast,
// blocking receive) plus the work/clock accounting that makes runs
// quantitatively comparable across substrates.
//
// Two implementations exist: *cluster.Node (the in-process simulated
// machine, one goroutine per node, virtual clocks) and *netcluster.Node
// (real TCP between processes, same virtual-clock and per-link byte
// accounting). The p²-mdie protocol in internal/core and the
// coverage-farming baseline in internal/parcov run unchanged on either.
type Transport interface {
	// ID is this node's id: 0 is the master, workers are 1..p.
	ID() int
	// Size is the total number of nodes, p+1.
	Size() int
	// Send gob-encodes v and delivers it to node to without blocking.
	Send(to int, kind int, v any) error
	// Broadcast sends v to every node in targets (encoded once).
	Broadcast(targets []int, kind int, v any) error
	// ReceiveCtx blocks until a message is available, the context is done,
	// or the transport fails. It returns ErrClosed after an orderly
	// shutdown, the context error on expiry, and a transport-specific
	// error when a peer is unreachable — a crashed peer surfaces here
	// instead of hanging the caller forever.
	ReceiveCtx(ctx context.Context) (Message, error)
	// Compute advances the node's virtual clock by units of work (SLD
	// inferences) under the transport's cost model.
	Compute(units int64)
	// Clock returns the node's current virtual time.
	Clock() VTime
	// Members returns the ids of the peers currently believed alive
	// (this node excluded), in ascending order. On a transport that has
	// detected no failures this is every other node.
	Members() []int
	// NotifyFailures selects the failure-notification regime. Off (the
	// default), a detected peer failure poisons the transport: every
	// subsequent ReceiveCtx returns an error, which is the right contract
	// for a protocol that cannot survive peer loss. On, a detected failure
	// is delivered in-band as a synthetic Message{Kind: KindPeerDown,
	// From: peer}, sends to the dead peer fail with ErrPeerDown, and the
	// transport stays fully usable towards the survivors — the contract
	// the fault-tolerant epoch engine builds on.
	NotifyFailures(on bool)
}

// WakeOnDone bridges context cancellation into a sync.Cond wait loop: when
// ctx fires, cond is broadcast under its own locker, so a loop of the form
//
//	for <no progress> && ctx.Err() == nil { cond.Wait() }
//
// observes the expiry. The returned stop releases the watcher (defer it).
// Both transports' receive queues use this; they also share the guarantee
// that a queued message wins over an expired context, which their wait
// loops implement by checking the queue before the error states on exit.
func WakeOnDone(ctx context.Context, cond *sync.Cond) (stop func() bool) {
	if ctx.Done() == nil {
		return func() bool { return false }
	}
	return context.AfterFunc(ctx, func() {
		cond.L.Lock()
		cond.Broadcast()
		cond.L.Unlock()
	})
}

// TrafficReporter is implemented by transports that keep per-link traffic
// counters (the Table-4 accounting). For the simulated Network the report
// covers the whole cluster; a netcluster node reports its own outgoing
// links, and the master assembles the global table from workers' final
// reports.
type TrafficReporter interface {
	Traffic() Traffic
}

// Link is one directed edge of a traffic table.
type Link struct {
	From  int   `json:"from"`
	To    int   `json:"to"`
	Bytes int64 `json:"bytes"`
	Msgs  int64 `json:"msgs"`
}

// Traffic is a per-link snapshot of protocol traffic over an n-node
// cluster. Counts cover protocol payload bytes only (the gob-encoded
// message bodies), exactly as the simulated Network counts them; transport
// framing and heartbeats are excluded so both transports report through
// the same accounting.
type Traffic struct {
	N     int     `json:"nodes"`
	Bytes []int64 `json:"-"` // from*N + to
	Msgs  []int64 `json:"-"`
}

// NewTraffic returns an empty table over n nodes.
func NewTraffic(n int) Traffic {
	return Traffic{N: n, Bytes: make([]int64, n*n), Msgs: make([]int64, n*n)}
}

// Add records msgs messages totalling bytes payload bytes on link from→to.
func (t *Traffic) Add(from, to int, bytes, msgs int64) {
	t.Bytes[from*t.N+to] += bytes
	t.Msgs[from*t.N+to] += msgs
}

// Grow re-indexes the table to cover n nodes (no-op when n ≤ t.N). Link
// counters keep their (from, to) identity as the node count rises, which is
// what lets a run's accounting survive workers joining mid-run.
func (t *Traffic) Grow(n int) {
	if n <= t.N {
		return
	}
	nb := make([]int64, n*n)
	nm := make([]int64, n*n)
	for from := 0; from < t.N; from++ {
		copy(nb[from*n:from*n+t.N], t.Bytes[from*t.N:(from+1)*t.N])
		copy(nm[from*n:from*n+t.N], t.Msgs[from*t.N:(from+1)*t.N])
	}
	t.N, t.Bytes, t.Msgs = n, nb, nm
}

// Merge accumulates another table into t, growing t when o covers more
// nodes. Tables of different sizes merge by link identity, so reports from
// nodes that joined (or finished) at different cluster sizes still fold
// into one global table.
func (t *Traffic) Merge(o Traffic) {
	t.Grow(o.N)
	for from := 0; from < o.N; from++ {
		for to := 0; to < o.N; to++ {
			i := from*o.N + to
			if o.Bytes[i] != 0 || o.Msgs[i] != 0 {
				t.Add(from, to, o.Bytes[i], o.Msgs[i])
			}
		}
	}
}

// LinkBytes returns payload bytes sent from node a to node b.
func (t Traffic) LinkBytes(a, b int) int64 { return t.Bytes[a*t.N+b] }

// LinkMsgs returns messages sent from node a to node b.
func (t Traffic) LinkMsgs(a, b int) int64 { return t.Msgs[a*t.N+b] }

// TotalBytes sums payload bytes over all links.
func (t Traffic) TotalBytes() int64 {
	var s int64
	for _, b := range t.Bytes {
		s += b
	}
	return s
}

// TotalMsgs sums messages over all links.
func (t Traffic) TotalMsgs() int64 {
	var s int64
	for _, m := range t.Msgs {
		s += m
	}
	return s
}

// Links returns the non-empty directed links in (from, to) order — the
// JSON-friendly form dumped by `p2mdie -traffic json`.
func (t Traffic) Links() []Link {
	var out []Link
	for from := 0; from < t.N; from++ {
		for to := 0; to < t.N; to++ {
			i := from*t.N + to
			if t.Msgs[i] != 0 || t.Bytes[i] != 0 {
				out = append(out, Link{From: from, To: to, Bytes: t.Bytes[i], Msgs: t.Msgs[i]})
			}
		}
	}
	return out
}

// String renders the table, one non-empty link per line.
func (t Traffic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "link     msgs      bytes\n")
	for _, l := range t.Links() {
		fmt.Fprintf(&b, "%d->%d %8d %10d\n", l.From, l.To, l.Msgs, l.Bytes)
	}
	fmt.Fprintf(&b, "total %7d %10d\n", t.TotalMsgs(), t.TotalBytes())
	return b.String()
}
