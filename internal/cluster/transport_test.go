package cluster

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The simulated transport's failure paths: ReceiveCtx must unblock on
// shutdown (ErrClosed) and on context expiry, never deadlock.

func TestReceiveCtxDeliversAndAdvancesClock(t *testing.T) {
	nw := NewNetwork(2, CostModel{})
	nw.SetCodec(CodecGob) // bare string payloads have no wire encoding
	if err := nw.Node(0).Send(1, 3, "hello"); err != nil {
		t.Fatal(err)
	}
	msg, err := nw.Node(1).ReceiveCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != 3 || msg.From != 0 {
		t.Fatalf("got %+v", msg)
	}
	if nw.Node(1).Clock() != msg.Arrive {
		t.Fatalf("clock %d, want arrival %d", nw.Node(1).Clock(), msg.Arrive)
	}
}

func TestReceiveCtxDeadline(t *testing.T) {
	nw := NewNetwork(1, CostModel{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := nw.Node(0).ReceiveCtx(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestReceiveCtxShutdown(t *testing.T) {
	nw := NewNetwork(1, CostModel{})
	done := make(chan error, 1)
	go func() {
		_, err := nw.Node(0).ReceiveCtx(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	nw.Shutdown()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReceiveCtx did not unblock on shutdown")
	}
}

func TestReceiveCtxPrefersQueuedMessageOverExpiredContext(t *testing.T) {
	nw := NewNetwork(2, CostModel{})
	nw.SetCodec(CodecGob) // bare int payloads have no wire encoding
	if err := nw.Node(0).Send(1, 1, 42); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired
	msg, err := nw.Node(1).ReceiveCtx(ctx)
	if err != nil {
		t.Fatalf("queued message lost to expired context: %v", err)
	}
	var v int
	if err := msg.Decode(&v); err != nil || v != 42 {
		t.Fatalf("decode: %v %d", err, v)
	}
}

func TestTrafficTable(t *testing.T) {
	nw := NewNetwork(3, CostModel{})
	nw.SetCodec(CodecGob) // bare string payloads have no wire encoding
	nw.Node(0).Send(1, 0, "x")
	nw.Node(0).Send(1, 0, "x")
	nw.Node(1).Send(2, 0, "longer payload")
	tr := nw.Traffic()
	if tr.LinkMsgs(0, 1) != 2 || tr.LinkMsgs(1, 2) != 1 || tr.LinkMsgs(2, 0) != 0 {
		t.Fatalf("per-link msgs wrong: %v", tr.Links())
	}
	if tr.TotalBytes() != nw.Stats().Bytes || tr.TotalMsgs() != nw.Stats().Messages {
		t.Fatalf("traffic totals disagree with Stats: %v vs %v", tr, nw.Stats())
	}
	merged := NewTraffic(3)
	merged.Merge(tr)
	merged.Merge(NewTraffic(2)) // smaller table folds in by link identity
	if merged.LinkBytes(0, 1) != tr.LinkBytes(0, 1) {
		t.Fatal("merge lost bytes")
	}
	// A larger table grows the receiver, preserving existing links.
	bigger := NewTraffic(4)
	bigger.Add(3, 0, 7, 1)
	merged.Merge(bigger)
	if merged.N != 4 || merged.LinkBytes(0, 1) != tr.LinkBytes(0, 1) || merged.LinkBytes(3, 0) != 7 {
		t.Fatalf("growth merge wrong: n=%d links=%v", merged.N, merged.Links())
	}
}

func TestTrafficGrowKeepsLinkIdentity(t *testing.T) {
	tr := NewTraffic(2)
	tr.Add(0, 1, 100, 2)
	tr.Add(1, 0, 50, 1)
	tr.Grow(4)
	if tr.N != 4 || tr.LinkBytes(0, 1) != 100 || tr.LinkMsgs(0, 1) != 2 || tr.LinkBytes(1, 0) != 50 {
		t.Fatalf("grow lost links: %v", tr.Links())
	}
	tr.Grow(3) // shrink request is a no-op
	if tr.N != 4 {
		t.Fatalf("grow shrank the table to %d", tr.N)
	}
}
