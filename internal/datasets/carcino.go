package datasets

import (
	"fmt"

	"repro/internal/bottom"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// Carcinogenesis returns the carcinogenesis-style task at paper size
// (Table 1: 162 positive, 136 negative).
//
// Like the original (Srinivasan et al. 1997), each example is a molecule
// described as a typed attribute graph: atm/5 facts (molecule, atom,
// element, atom type, partial charge) and bond/4 facts (molecule, two
// atoms, bond type), with numeric charge thresholds available through
// background rules. The hidden concept is a disjunction of two structural
// alerts — a strongly negative nitrogen, or a chlorine on an aromatic
// bond — under heavy label noise, mirroring the original task's difficulty
// (the paper's predictive accuracy on it is only ~60%).
func Carcinogenesis(seed int64) *Dataset { return CarcinogenesisSized(162, 136, seed) }

// CarcinogenesisSized generates the task with custom example counts.
func CarcinogenesisSized(nPos, nNeg int, seed int64) *Dataset {
	const noise = 0.30
	r := newRng(seed ^ 0xCA5C1)
	kb := solve.NewKB()
	if err := kb.AddSource(`
		charge_t(-0.6). charge_t(-0.4). charge_t(-0.2). charge_t(0.0). charge_t(0.2).
		lteq_chg(C, T) :- charge_t(T), C =< T.
		gteq_chg(C, T) :- charge_t(T), C >= T.
	`); err != nil {
		panic(err)
	}

	elements := []string{"c", "c", "c", "c", "c", "n", "o", "s", "cl"}
	atomTypes := []string{"1", "3", "8", "10", "14", "22", "27", "29"}
	bondWeights := []float64{0.60, 0.25, 0.15} // single, double, aromatic
	bondNames := []string{"1", "2", "7"}

	molID := 0
	gen := func() (logic.Term, bool, func()) {
		molID++
		mol := fmt.Sprintf("d%d", molID)
		nAtoms := 8 + r.intn(8)
		elems := make([]string, nAtoms)
		charges := make([]float64, nAtoms)
		var facts []string
		for i := 0; i < nAtoms; i++ {
			elems[i] = r.pick(elements)
			// Charges on a 0.05 grid in [-0.8, 0.8].
			charges[i] = float64(r.intn(33)-16) * 0.05
			facts = append(facts, fmt.Sprintf("atm(%s, %s_a%d, %s, %s, %.2f)",
				mol, mol, i, elems[i], atomTypes[r.intn(len(atomTypes))], charges[i]))
		}
		type edge struct{ a, b, t int }
		var edges []edge
		for i := 1; i < nAtoms; i++ {
			edges = append(edges, edge{i - 1, i, r.weighted(bondWeights)})
		}
		for k := 0; k < nAtoms/3; k++ {
			a, b := r.intn(nAtoms), r.intn(nAtoms)
			if a != b {
				edges = append(edges, edge{a, b, r.weighted(bondWeights)})
			}
		}
		for _, e := range edges {
			facts = append(facts, fmt.Sprintf("bond(%s, %s_a%d, %s_a%d, %s)",
				mol, mol, e.a, mol, e.b, bondNames[e.t]))
		}
		// Hidden concept: nitro-like nitrogen OR aromatic chlorine.
		label := false
		for i := 0; i < nAtoms; i++ {
			if elems[i] == "n" && charges[i] <= -0.4 {
				label = true
			}
		}
		for _, e := range edges {
			if bondNames[e.t] == "7" && (elems[e.a] == "cl" || elems[e.b] == "cl") {
				label = true
			}
		}
		example := logic.MustParseTerm(fmt.Sprintf("active(%s)", mol))
		commit := func() {
			if err := sortedFacts(kb, facts); err != nil {
				panic(err)
			}
		}
		return example, label, commit
	}

	pos, neg := fill(r, nPos, nNeg, noise, gen)
	return &Dataset{
		Name:  "carcinogenesis",
		KB:    kb,
		Pos:   pos,
		Neg:   neg,
		Noise: noise,
		Modes: mode.MustParseSet(`
			modeh(1, active(+drug)).
			modeb('*', atm(+drug, -atomid, #element, #atype, -charge)).
			modeb('*', bond(+drug, -atomid, -atomid, #btype)).
			modeb('*', lteq_chg(+charge, #cthresh)).
			modeb('*', gteq_chg(+charge, #cthresh)).
		`),
		Search: search.Settings{
			MaxClauseLen: 3,
			NodesLimit:   600,
			MinPos:       3,
			// The positive base rate is ~54% and the true structural
			// alerts reach ~0.72 precision under the 30% label noise;
			// 0.68 keeps the empty rule and near-random rules out of the
			// good set while accepting the alerts.
			MinPrec:   0.68,
			Heuristic: search.HeurCoverage,
		},
		Bottom: bottom.Options{VarDepth: 2, MaxLiterals: 90, MaxRecall: 30},
		Budget: solve.Budget{MaxDepth: 24, MaxInferences: 1 << 16},
		TrueConcept: []logic.Clause{
			logic.MustParseClause("active(D) :- atm(D, A, n, T, C), lteq_chg(C, -0.4)."),
			logic.MustParseClause("active(D) :- bond(D, A, B, 7), atm(D, B, cl, T, C)."),
		},
	}
}
