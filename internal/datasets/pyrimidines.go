package datasets

import (
	"fmt"

	"repro/internal/bottom"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// Pyrimidines returns the drug-activity-style task at paper size
// (Table 1: 848 positive, 764 negative).
//
// Like the original QSAR task (King et al. 1992), each example is a drug
// whose three substituent positions carry chemical groups, and the groups'
// properties live in a shared background table (polarity, size,
// flexibility, hydrogen-donor capability) reachable only through a join on
// the group — the canonical multi-relational setup. The hidden concept is
// a two-rule disjunction over thresholded group properties at specific
// positions, with moderate label noise (paper accuracy ≈ 76%).
func Pyrimidines(seed int64) *Dataset { return PyrimidinesSized(848, 764, seed) }

// PyrimidinesSized generates the task with custom example counts at the
// calibrated default noise.
func PyrimidinesSized(nPos, nNeg int, seed int64) *Dataset {
	return PyrimidinesNoisy(nPos, nNeg, 0.18, seed)
}

// PyrimidinesNoisy generates the task with a custom label-noise rate,
// used by the noise-sensitivity ablation (how far does the paper's
// "quality of learning is preserved" claim stretch as the task hardens?).
func PyrimidinesNoisy(nPos, nNeg int, noise float64, seed int64) *Dataset {
	const nGroups = 24
	r := newRng(seed ^ 0x97121D)
	kb := solve.NewKB()
	if err := kb.AddSource(`
		level(0). level(1). level(2). level(3). level(4). level(5).
		polar_gte(G, L) :- polar(G, V), level(L), V >= L.
		polar_lte(G, L) :- polar(G, V), level(L), V =< L.
		size_gte(G, L) :- gsize(G, V), level(L), V >= L.
		size_lte(G, L) :- gsize(G, V), level(L), V =< L.
		flex_gte(G, L) :- flex(G, V), level(L), V >= L.
		flex_lte(G, L) :- flex(G, V), level(L), V =< L.
	`); err != nil {
		panic(err)
	}

	// Shared group-property table.
	polar := make([]int, nGroups)
	gsize := make([]int, nGroups)
	flex := make([]int, nGroups)
	hdon := make([]bool, nGroups)
	var tableFacts []string
	for g := 0; g < nGroups; g++ {
		polar[g] = r.intn(6)
		gsize[g] = r.intn(6)
		flex[g] = r.intn(4)
		hdon[g] = r.bool(0.4)
		name := fmt.Sprintf("g%d", g)
		tableFacts = append(tableFacts,
			fmt.Sprintf("polar(%s, %d)", name, polar[g]),
			fmt.Sprintf("gsize(%s, %d)", name, gsize[g]),
			fmt.Sprintf("flex(%s, %d)", name, flex[g]),
		)
		if hdon[g] {
			tableFacts = append(tableFacts, fmt.Sprintf("hdonor(%s)", name))
		}
	}
	if err := sortedFacts(kb, tableFacts); err != nil {
		panic(err)
	}

	drugID := 0
	gen := func() (logic.Term, bool, func()) {
		drugID++
		drug := fmt.Sprintf("d%d", drugID)
		groups := [3]int{r.intn(nGroups), r.intn(nGroups), r.intn(nGroups)}
		facts := []string{
			fmt.Sprintf("subst(%s, p1, g%d)", drug, groups[0]),
			fmt.Sprintf("subst(%s, p2, g%d)", drug, groups[1]),
			fmt.Sprintf("subst(%s, p3, g%d)", drug, groups[2]),
		}
		// Hidden concept: a polar-but-small group at position 3, or a
		// flexible hydrogen donor at position 1.
		g3, g1 := groups[2], groups[0]
		label := (polar[g3] >= 3 && gsize[g3] <= 2) || (hdon[g1] && flex[g1] >= 2)
		example := logic.MustParseTerm(fmt.Sprintf("active(%s)", drug))
		commit := func() {
			if err := sortedFacts(kb, facts); err != nil {
				panic(err)
			}
		}
		return example, label, commit
	}

	pos, neg := fill(r, nPos, nNeg, noise, gen)
	return &Dataset{
		Name:  "pyrimidines",
		KB:    kb,
		Pos:   pos,
		Neg:   neg,
		Noise: noise,
		Modes: mode.MustParseSet(`
			modeh(1, active(+drug)).
			modeb('*', subst(+drug, #position, -group)).
			modeb('*', polar_gte(+group, #level)).
			modeb('*', polar_lte(+group, #level)).
			modeb('*', size_gte(+group, #level)).
			modeb('*', size_lte(+group, #level)).
			modeb('*', flex_gte(+group, #level)).
			modeb('*', flex_lte(+group, #level)).
			modeb(1, hdonor(+group)).
		`),
		Search: search.Settings{
			MaxClauseLen: 3,
			NodesLimit:   800,
			MinPos:       3,
			MinPrec:      0.65,
			Heuristic:    search.HeurCoverage,
		},
		Bottom: bottom.Options{VarDepth: 2, MaxLiterals: 100, MaxRecall: 24},
		Budget: solve.Budget{MaxDepth: 16, MaxInferences: 1 << 14},
		TrueConcept: []logic.Clause{
			logic.MustParseClause("active(D) :- subst(D, p3, G), polar_gte(G, 3), size_lte(G, 2)."),
			logic.MustParseClause("active(D) :- subst(D, p1, G), hdonor(G), flex_gte(G, 2)."),
		},
	}
}
