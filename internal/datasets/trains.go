package datasets

import (
	"fmt"

	"repro/internal/bottom"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// Trains returns a ten-train eastbound/westbound task in the spirit of
// Michalski's classic challenge (the dataset Matsui et al., discussed in
// the paper's related work, evaluated on). Five eastbound (positive) and
// five westbound (negative) trains; the intended theory is the classic
// one: a train is eastbound iff it has a short closed car.
//
// The exact original car descriptions are not reproduced verbatim; the
// encoding (has_car/2, car attributes, closed/1 derived from roof shape)
// and the target regularity follow the standard Progol/Aleph formulation.
// Noise-free and tiny: this is the quickstart dataset.
func Trains() *Dataset {
	kb := solve.NewKB()
	if err := kb.AddSource(`
		closed(C) :- roof(C, flat).
		closed(C) :- roof(C, peaked).
		closed(C) :- roof(C, jagged).
		open_car(C) :- roof(C, none).
	`); err != nil {
		panic(err)
	}

	type car struct {
		len    string // short | long
		roof   string // none | flat | peaked | jagged
		shape  string // rectangle | u_shaped | bucket
		wheels int
		load   string // circle | triangle | rectangle | hexagon
		nload  int
	}
	trains := []struct {
		name string
		east bool
		cars []car
	}{
		{"east1", true, []car{
			{"long", "none", "rectangle", 2, "rectangle", 3},
			{"short", "peaked", "rectangle", 2, "triangle", 1},
			{"long", "none", "rectangle", 3, "hexagon", 1},
		}},
		{"east2", true, []car{
			{"short", "flat", "bucket", 2, "circle", 1},
			{"long", "none", "u_shaped", 2, "triangle", 2},
		}},
		{"east3", true, []car{
			{"short", "none", "u_shaped", 2, "circle", 1},
			{"short", "jagged", "rectangle", 2, "triangle", 1},
			{"long", "none", "rectangle", 2, "rectangle", 2},
		}},
		{"east4", true, []car{
			{"short", "peaked", "u_shaped", 2, "triangle", 1},
			{"short", "none", "rectangle", 2, "rectangle", 1},
		}},
		{"east5", true, []car{
			{"long", "flat", "rectangle", 3, "circle", 2},
			{"short", "flat", "rectangle", 2, "hexagon", 1},
		}},
		{"west1", false, []car{
			{"long", "none", "rectangle", 2, "circle", 3},
			{"long", "flat", "rectangle", 3, "triangle", 1},
		}},
		{"west2", false, []car{
			{"short", "none", "u_shaped", 2, "circle", 1},
			{"long", "none", "rectangle", 2, "rectangle", 1},
		}},
		{"west3", false, []car{
			{"long", "jagged", "rectangle", 3, "hexagon", 1},
			{"short", "none", "bucket", 2, "circle", 1},
		}},
		{"west4", false, []car{
			{"long", "peaked", "rectangle", 2, "rectangle", 2},
			{"short", "none", "rectangle", 2, "triangle", 1},
			{"long", "none", "u_shaped", 2, "circle", 1},
		}},
		{"west5", false, []car{
			{"short", "none", "rectangle", 2, "rectangle", 1},
		}},
	}

	var pos, neg []logic.Term
	var facts []string
	for _, t := range trains {
		for i, c := range t.cars {
			carName := fmt.Sprintf("%s_c%d", t.name, i+1)
			facts = append(facts,
				fmt.Sprintf("has_car(%s, %s)", t.name, carName),
				fmt.Sprintf("car_len(%s, %s)", carName, c.len),
				fmt.Sprintf("roof(%s, %s)", carName, c.roof),
				fmt.Sprintf("car_shape(%s, %s)", carName, c.shape),
				fmt.Sprintf("wheels(%s, %d)", carName, c.wheels),
				fmt.Sprintf("load(%s, %s, %d)", carName, c.load, c.nload),
			)
		}
		e := logic.MustParseTerm(fmt.Sprintf("eastbound(%s)", t.name))
		if t.east {
			pos = append(pos, e)
		} else {
			neg = append(neg, e)
		}
	}
	if err := sortedFacts(kb, facts); err != nil {
		panic(err)
	}

	return &Dataset{
		Name:  "trains",
		KB:    kb,
		Pos:   pos,
		Neg:   neg,
		Noise: 0,
		Modes: mode.MustParseSet(`
			modeh(1, eastbound(+train)).
			modeb('*', has_car(+train, -car)).
			modeb(1, car_len(+car, #carlen)).
			modeb(1, roof(+car, #rooftype)).
			modeb(1, car_shape(+car, #carshape)).
			modeb(1, wheels(+car, #wcount)).
			modeb(1, load(+car, #loadshape, #loadcount)).
			modeb(1, closed(+car)).
			modeb(1, open_car(+car)).
		`),
		Search: search.Settings{
			MaxClauseLen: 3,
			NodesLimit:   500,
			MinPos:       2,
			MinPrec:      0.99,
			Heuristic:    search.HeurCoverage,
		},
		Bottom: bottom.Options{VarDepth: 2, MaxLiterals: 60, MaxRecall: 10},
		Budget: solve.Budget{MaxDepth: 16, MaxInferences: 1 << 14},
		TrueConcept: []logic.Clause{
			logic.MustParseClause("eastbound(T) :- has_car(T, C), car_len(C, short), closed(C)."),
		},
	}
}
