package datasets

import (
	"testing"

	"repro/internal/covering"
	"repro/internal/search"
)

func TestTrainsSizedCounts(t *testing.T) {
	ds := TrainsSized(40, 3)
	if len(ds.Pos) != 20 || len(ds.Neg) != 20 {
		t.Fatalf("counts: %d/%d", len(ds.Pos), len(ds.Neg))
	}
	if ds.KB.Size() == 0 {
		t.Fatal("empty KB")
	}
}

func TestTrainsSizedLabelsFollowRule(t *testing.T) {
	ds := TrainsSized(30, 5)
	// The generator is noise-free, so the classic theory classifies
	// perfectly — this pins generator and engine to the same semantics.
	if acc := covering.Accuracy(ds.KB, ds.TrueConcept, ds.Pos, ds.Neg, ds.Budget); acc != 1.0 {
		t.Fatalf("intended theory accuracy = %v", acc)
	}
}

func TestTrainsSizedLearnable(t *testing.T) {
	ds := TrainsSized(24, 7)
	ex := search.NewExamples(ds.Pos, ds.Neg)
	res, err := covering.Learn(ds.KB, ex, ds.Modes, covering.Config{
		Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := covering.Accuracy(ds.KB, res.Theory, ds.Pos, ds.Neg, ds.Budget); acc < 0.99 {
		t.Fatalf("learned accuracy = %v", acc)
	}
}

func TestTrainsSizedDeterministic(t *testing.T) {
	a := TrainsSized(20, 9)
	b := TrainsSized(20, 9)
	if a.KB.Size() != b.KB.Size() || len(a.Pos) != len(b.Pos) {
		t.Fatal("nondeterministic generation")
	}
	for i := range a.Pos {
		if a.Pos[i].String() != b.Pos[i].String() {
			t.Fatal("positives differ")
		}
	}
}

func TestPyrimidinesNoisyZeroNoiseSeparable(t *testing.T) {
	ds := PyrimidinesNoisy(40, 36, 0, 11)
	if acc := covering.Accuracy(ds.KB, ds.TrueConcept, ds.Pos, ds.Neg, ds.Budget); acc != 1.0 {
		t.Fatalf("noise-free concept accuracy = %v", acc)
	}
}

func TestPyrimidinesNoisyMoreNoiseHarder(t *testing.T) {
	clean := PyrimidinesNoisy(80, 72, 0.02, 11)
	noisy := PyrimidinesNoisy(80, 72, 0.35, 11)
	accClean := covering.Accuracy(clean.KB, clean.TrueConcept, clean.Pos, clean.Neg, clean.Budget)
	accNoisy := covering.Accuracy(noisy.KB, noisy.TrueConcept, noisy.Pos, noisy.Neg, noisy.Budget)
	if accClean <= accNoisy {
		t.Fatalf("noise did not hurt: %.3f vs %.3f", accClean, accNoisy)
	}
}
