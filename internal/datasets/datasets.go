// Package datasets bundles the learning tasks used by the paper's
// evaluation. The originals (carcinogenesis, mesh, pyrimidines) ship with
// Prolog ILP systems and are not redistributable here, so each is replaced
// by a seeded synthetic generator that preserves what the parallel
// algorithm is sensitive to:
//
//   - the example counts of Table 1 (they set evaluation cost and the size
//     of each worker's partition),
//   - the relational shape of the background knowledge (graph-structured
//     molecules for carcinogenesis, attribute tables behind a join for
//     pyrimidines, geometric/structural features for mesh),
//   - a hidden multi-rule target concept, and
//   - calibrated label noise, so rule precision and predictive accuracy
//     have paper-like headroom rather than being trivially 100%.
//
// Every generator is deterministic in its seed. The Michalski trains set is
// included as a tiny, noise-free quickstart task.
package datasets

import (
	"fmt"
	"sort"

	"repro/internal/bottom"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// Dataset is a ready-to-learn task: background knowledge, labelled
// examples, language bias, and the per-dataset learner configuration used
// by the benchmark harness (the paper tuned its ILP settings per dataset,
// §5.2).
type Dataset struct {
	Name string
	KB   *solve.KB
	Pos  []logic.Term
	Neg  []logic.Term
	// Modes is the language bias.
	Modes *mode.Set
	// Search is the recommended search configuration.
	Search search.Settings
	// Bottom is the recommended saturation configuration.
	Bottom bottom.Options
	// Budget bounds individual proofs.
	Budget solve.Budget
	// TrueConcept documents the generator's hidden target theory.
	TrueConcept []logic.Clause
	// Noise is the label-flip rate the generator applied.
	Noise float64
}

// Characterize returns the Table 1 row for this dataset.
func (d *Dataset) Characterize() (name string, pos, neg int) {
	return d.Name, len(d.Pos), len(d.Neg)
}

func (d *Dataset) String() string {
	return fmt.Sprintf("%s: |E+|=%d |E-|=%d, %d BK clauses", d.Name, len(d.Pos), len(d.Neg), d.KB.Size())
}

// ByName returns a paper dataset (or a trains variant) by name at its
// default size.
func ByName(name string, seed int64) (*Dataset, error) {
	switch name {
	case "carcinogenesis":
		return Carcinogenesis(seed), nil
	case "mesh":
		return Mesh(seed), nil
	case "pyrimidines":
		return Pyrimidines(seed), nil
	case "trains":
		return Trains(), nil
	case "trains-gen":
		return TrainsSized(100, seed), nil
	case "trains-skew":
		// The cost-skewed elastic-scheduling workload: a quarter of the
		// trains are heavy, so a static random partition leaves stragglers.
		return TrainsSkewed(200, seed, 0.25), nil
	}
	return nil, fmt.Errorf("datasets: unknown dataset %q (have carcinogenesis, mesh, pyrimidines, trains, trains-gen, trains-skew)", name)
}

// Paper returns the three evaluation datasets at paper size (Table 1).
func Paper(seed int64) []*Dataset {
	return []*Dataset{Carcinogenesis(seed), Mesh(seed), Pyrimidines(seed)}
}

// PaperScaled returns the three evaluation datasets with example counts
// scaled by the given factor (≥ ~0.05), used by fast benchmark variants.
func PaperScaled(scale float64, seed int64) []*Dataset {
	n := func(x int) int {
		v := int(float64(x) * scale)
		if v < 8 {
			v = 8
		}
		return v
	}
	return []*Dataset{
		CarcinogenesisSized(n(162), n(136), seed),
		MeshSized(n(2840), n(278), seed),
		PyrimidinesSized(n(848), n(764), seed),
	}
}

// rng is the package's deterministic generator (xorshift64*).
type rng struct{ s uint64 }

func newRng(seed int64) *rng {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{s: s}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *rng) bool(p float64) bool { return r.float() < p }

// pick returns a random element of xs.
func (r *rng) pick(xs []string) string { return xs[r.intn(len(xs))] }

// weighted picks an index with the given weights.
func (r *rng) weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.float() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// fill distributes generated items into pos/neg lists with label noise
// until both quotas are met. gen produces one candidate per call: its
// example atom, its true label, and a commit hook that persists the
// candidate's background facts; commit runs only when the candidate is
// kept, so the KB holds facts exactly for the emitted examples.
func fill(r *rng, nPos, nNeg int, noise float64, gen func() (logic.Term, bool, func())) (pos, neg []logic.Term) {
	for len(pos) < nPos || len(neg) < nNeg {
		e, label, commit := gen()
		if r.bool(noise) {
			label = !label
		}
		if label && len(pos) < nPos {
			pos = append(pos, e)
			commit()
		} else if !label && len(neg) < nNeg {
			neg = append(neg, e)
			commit()
		}
	}
	return pos, neg
}

// sortedFacts loads facts into the KB in deterministic (string) order — the
// generators build maps along the way, and map iteration order must never
// leak into the KB.
func sortedFacts(kb *solve.KB, facts []string) error {
	sort.Strings(facts)
	for _, f := range facts {
		c, err := logic.ParseClause(f + ".")
		if err != nil {
			return fmt.Errorf("datasets: bad generated fact %q: %w", f, err)
		}
		kb.Add(c)
	}
	return nil
}
