package datasets

import (
	"fmt"

	"repro/internal/bottom"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// Mesh returns the finite-element mesh-design-style task at paper size
// (Table 1: 2840 positive, 278 negative).
//
// Like the original (Dolšak & Bratko), each example is one edge of a
// structure to be meshed, described by geometric and boundary-condition
// attributes: edge type, support, loading, plus a continuous length with
// threshold comparators. The target is whether the edge needs a fine mesh;
// the hidden concept is a three-way disjunction over type, loading and
// support. Class balance is heavily positive, as in Table 1.
func Mesh(seed int64) *Dataset { return MeshSized(2840, 278, seed) }

// MeshSized generates the task with custom example counts.
func MeshSized(nPos, nNeg int, seed int64) *Dataset {
	const noise = 0.10
	r := newRng(seed ^ 0x3E5B)
	kb := solve.NewKB()
	if err := kb.AddSource(`
		len_t(2.0). len_t(4.0). len_t(8.0). len_t(16.0).
		len_gteq(L, T) :- len_t(T), L >= T.
		len_lteq(L, T) :- len_t(T), L =< T.
	`); err != nil {
		panic(err)
	}

	types := []string{"long", "short", "circuit", "half_circuit", "quarter_circuit", "not_important"}
	typeW := []float64{0.30, 0.22, 0.12, 0.10, 0.10, 0.16}
	supports := []string{"fixed", "free", "one_side_fixed", "two_side_fixed"}
	supportW := []float64{0.35, 0.25, 0.22, 0.18}
	loads := []string{"noload", "cont_loaded", "point_loaded"}
	loadW := []float64{0.35, 0.40, 0.25}

	edgeID := 0
	gen := func() (logic.Term, bool, func()) {
		edgeID++
		edge := fmt.Sprintf("e%d", edgeID)
		etype := types[r.weighted(typeW)]
		support := supports[r.weighted(supportW)]
		load := loads[r.weighted(loadW)]
		length := float64(1+r.intn(40)) * 0.5 // 0.5 .. 20.0
		facts := []string{
			fmt.Sprintf("etype(%s, %s)", edge, etype),
			fmt.Sprintf("support(%s, %s)", edge, support),
			fmt.Sprintf("loading(%s, %s)", edge, load),
			fmt.Sprintf("elen(%s, %.1f)", edge, length),
		}
		// Hidden concept: fine mesh needed for continuously loaded long
		// edges, point-loaded fixed edges, and full circuits.
		label := (etype == "long" && load == "cont_loaded") ||
			(support == "fixed" && load == "point_loaded") ||
			etype == "circuit"
		example := logic.MustParseTerm(fmt.Sprintf("fine_mesh(%s)", edge))
		commit := func() {
			if err := sortedFacts(kb, facts); err != nil {
				panic(err)
			}
		}
		return example, label, commit
	}

	pos, neg := fill(r, nPos, nNeg, noise, gen)
	return &Dataset{
		Name:  "mesh",
		KB:    kb,
		Pos:   pos,
		Neg:   neg,
		Noise: noise,
		Modes: mode.MustParseSet(`
			modeh(1, fine_mesh(+edge)).
			modeb(1, etype(+edge, #etype)).
			modeb(1, support(+edge, #sup)).
			modeb(1, loading(+edge, #load)).
			modeb(1, elen(+edge, -elength)).
			modeb('*', len_gteq(+elength, #lthresh)).
			modeb('*', len_lteq(+elength, #lthresh)).
		`),
		Search: search.Settings{
			MaxClauseLen: 3,
			NodesLimit:   400,
			MinPos:       2,
			// The class balance is ~91% positive, so the acceptance
			// precision must sit above the base rate (an empty rule has
			// ~0.91 precision) and below the ~0.99 of the true rules.
			MinPrec:   0.93,
			Heuristic: search.HeurCoverage,
		},
		Bottom: bottom.Options{VarDepth: 2, MaxLiterals: 40, MaxRecall: 20},
		Budget: solve.Budget{MaxDepth: 16, MaxInferences: 1 << 14},
		TrueConcept: []logic.Clause{
			logic.MustParseClause("fine_mesh(E) :- etype(E, long), loading(E, cont_loaded)."),
			logic.MustParseClause("fine_mesh(E) :- support(E, fixed), loading(E, point_loaded)."),
			logic.MustParseClause("fine_mesh(E) :- etype(E, circuit)."),
		},
	}
}
