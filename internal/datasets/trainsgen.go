package datasets

import (
	"fmt"

	"repro/internal/bottom"
	"repro/internal/logic"
	"repro/internal/search"
	"repro/internal/solve"
)

// TrainsSized generates n random trains labelled by Michalski's classic
// east/west regularity (a train is eastbound iff it carries a short closed
// car), split roughly evenly between classes. This is the generator-style
// trains workload used by Matsui et al. — the related-work system the
// paper discusses in §6 — and makes the toy task scalable for parallel
// experiments. Noise-free: the labels follow the rule exactly.
func TrainsSized(n int, seed int64) *Dataset {
	base := Trains() // reuse the closed/1, open_car/1 background rules and modes
	kb := solve.NewKB()
	if err := kb.AddSource(`
		closed(C) :- roof(C, flat).
		closed(C) :- roof(C, peaked).
		closed(C) :- roof(C, jagged).
		open_car(C) :- roof(C, none).
	`); err != nil {
		panic(err)
	}

	r := newRng(seed ^ 0x7841195)
	lens := []string{"short", "long"}
	roofs := []string{"none", "flat", "peaked", "jagged"}
	shapes := []string{"rectangle", "u_shaped", "bucket"}
	loads := []string{"circle", "triangle", "rectangle", "hexagon"}

	nPos := n / 2
	nNeg := n - nPos
	gen := func() (logic.Term, bool, func()) {
		id := r.intn(1 << 30)
		name := fmt.Sprintf("t%d", id)
		nCars := 1 + r.intn(4)
		var facts []string
		east := false
		for c := 1; c <= nCars; c++ {
			carName := fmt.Sprintf("%s_c%d", name, c)
			length := lens[r.intn(2)]
			roof := roofs[r.intn(4)]
			if length == "short" && roof != "none" {
				east = true
			}
			facts = append(facts,
				fmt.Sprintf("has_car(%s, %s)", name, carName),
				fmt.Sprintf("car_len(%s, %s)", carName, length),
				fmt.Sprintf("roof(%s, %s)", carName, roof),
				fmt.Sprintf("car_shape(%s, %s)", carName, shapes[r.intn(3)]),
				fmt.Sprintf("wheels(%s, %d)", carName, 2+r.intn(2)),
				fmt.Sprintf("load(%s, %s, %d)", carName, loads[r.intn(4)], r.intn(4)),
			)
		}
		example := logic.MustParseTerm(fmt.Sprintf("eastbound(%s)", name))
		commit := func() {
			if err := sortedFacts(kb, facts); err != nil {
				panic(err)
			}
		}
		return example, east, commit
	}

	pos, neg := fill(r, nPos, nNeg, 0, gen)
	return &Dataset{
		Name:  "trains-gen",
		KB:    kb,
		Pos:   pos,
		Neg:   neg,
		Noise: 0,
		Modes: base.Modes,
		Search: search.Settings{
			MaxClauseLen: 3,
			NodesLimit:   500,
			MinPos:       2,
			MinPrec:      0.99,
			Heuristic:    search.HeurCoverage,
		},
		Bottom:      bottom.Options{VarDepth: 2, MaxLiterals: 80, MaxRecall: 10},
		Budget:      solve.Budget{MaxDepth: 16, MaxInferences: 1 << 14},
		TrueConcept: base.TrueConcept,
	}
}
