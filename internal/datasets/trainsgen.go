package datasets

import (
	"fmt"

	"repro/internal/bottom"
	"repro/internal/logic"
	"repro/internal/search"
	"repro/internal/solve"
)

// TrainsSized generates n random trains labelled by Michalski's classic
// east/west regularity (a train is eastbound iff it carries a short closed
// car), split roughly evenly between classes. This is the generator-style
// trains workload used by Matsui et al. — the related-work system the
// paper discusses in §6 — and makes the toy task scalable for parallel
// experiments. Noise-free: the labels follow the rule exactly.
func TrainsSized(n int, seed int64) *Dataset {
	return trainsGen(n, seed, 0)
}

// TrainsSkewed is TrainsSized with deliberately imbalanced example costs:
// a `skew` fraction of the trains are "heavy" — 12–17 cars instead of 1–4 —
// so saturating or testing coverage on them costs several times the
// inferences of a light train. A static random partition then hands some
// workers far more work than others (the straggler situation elastic
// scheduling exists for), which is what makes this the workload for the
// balance ablation and the PERF.md makespan comparison.
//
// The target concept is also widened from the classic single rule to four
// independent causes (short closed car; bucket car with a hexagon load;
// three-wheeled u-shaped car; a triple triangle load), so covering needs
// several epochs — and the between-epoch rebalance barriers actually run.
func TrainsSkewed(n int, seed int64, skew float64) *Dataset {
	return trainsGen(n, seed, skew)
}

func trainsGen(n int, seed int64, skew float64) *Dataset {
	base := Trains() // reuse the closed/1, open_car/1 background rules and modes
	kb := solve.NewKB()
	if err := kb.AddSource(`
		closed(C) :- roof(C, flat).
		closed(C) :- roof(C, peaked).
		closed(C) :- roof(C, jagged).
		open_car(C) :- roof(C, none).
	`); err != nil {
		panic(err)
	}

	r := newRng(seed ^ 0x7841195)
	lens := []string{"short", "long"}
	roofs := []string{"none", "flat", "peaked", "jagged"}
	shapes := []string{"rectangle", "u_shaped", "bucket"}
	loads := []string{"circle", "triangle", "rectangle", "hexagon"}

	nPos := n / 2
	nNeg := n - nPos
	safeLoads := []string{"circle", "rectangle", "hexagon"}
	gen := func() (logic.Term, bool, func()) {
		id := r.intn(1 << 30)
		name := fmt.Sprintf("t%d", id)
		nCars := 1 + r.intn(4)
		// A heavy train carries 12–17 cars, exactly one of which satisfies
		// a cause; every rule for the *other* causes must enumerate the
		// whole train to fail, so the example costs many times a light
		// train's inferences — the deliberate cost imbalance the elastic
		// scheduler's cost-aware deal exists to even out.
		heavy := skew > 0 && r.bool(skew)
		causeCar := 0
		if heavy {
			nCars = 12 + r.intn(6)
			causeCar = 1 + r.intn(nCars)
		}
		var facts []string
		east := false
		for c := 1; c <= nCars; c++ {
			carName := fmt.Sprintf("%s_c%d", name, c)
			length := lens[r.intn(2)]
			roof := roofs[r.intn(4)]
			shape := shapes[r.intn(3)]
			nWheels := 2 + r.intn(2)
			loadShape := loads[r.intn(4)]
			loadCount := r.intn(4)
			if heavy {
				// Filler cars are "safe" (satisfy no cause); the one cause
				// car is a classic short closed car.
				length, shape, loadShape = "long", "rectangle", safeLoads[r.intn(3)]
				if c == causeCar {
					length, roof = "short", roofs[1+r.intn(3)]
				}
			}
			if length == "short" && roof != "none" {
				east = true
			}
			if skew > 0 {
				// The skewed workload's disjunctive concept: any of three
				// further car regularities also makes the train eastbound,
				// so the theory needs several rules (and the run several
				// epochs, which is when rebalancing happens).
				if shape == "bucket" && loadShape == "hexagon" ||
					nWheels == 3 && shape == "u_shaped" ||
					loadShape == "triangle" && loadCount == 3 {
					east = true
				}
			}
			facts = append(facts,
				fmt.Sprintf("has_car(%s, %s)", name, carName),
				fmt.Sprintf("car_len(%s, %s)", carName, length),
				fmt.Sprintf("roof(%s, %s)", carName, roof),
				fmt.Sprintf("car_shape(%s, %s)", carName, shape),
				fmt.Sprintf("wheels(%s, %d)", carName, nWheels),
				fmt.Sprintf("load(%s, %s, %d)", carName, loadShape, loadCount),
			)
		}
		example := logic.MustParseTerm(fmt.Sprintf("eastbound(%s)", name))
		commit := func() {
			if err := sortedFacts(kb, facts); err != nil {
				panic(err)
			}
		}
		return example, east, commit
	}

	dsName := "trains-gen"
	concept := base.TrueConcept
	if skew > 0 {
		dsName = "trains-skew"
		concept = []logic.Clause{
			logic.MustParseClause("eastbound(T) :- has_car(T, C), car_len(C, short), closed(C)."),
			logic.MustParseClause("eastbound(T) :- has_car(T, C), car_shape(C, bucket), load(C, hexagon, N)."),
			logic.MustParseClause("eastbound(T) :- has_car(T, C), wheels(C, 3), car_shape(C, u_shaped)."),
			logic.MustParseClause("eastbound(T) :- has_car(T, C), load(C, triangle, 3)."),
		}
	}
	pos, neg := fill(r, nPos, nNeg, 0, gen)
	return &Dataset{
		Name:  dsName,
		KB:    kb,
		Pos:   pos,
		Neg:   neg,
		Noise: 0,
		Modes: base.Modes,
		Search: search.Settings{
			MaxClauseLen: 3,
			NodesLimit:   500,
			MinPos:       2,
			MinPrec:      0.99,
			Heuristic:    search.HeurCoverage,
		},
		Bottom:      bottom.Options{VarDepth: 2, MaxLiterals: 80, MaxRecall: 10},
		Budget:      solve.Budget{MaxDepth: 16, MaxInferences: 1 << 14},
		TrueConcept: concept,
	}
}
