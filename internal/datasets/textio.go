package datasets

import (
	"fmt"
	"strings"

	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// This file implements the textual dataset interchange format: a single
// Prolog-subset document carrying mode declarations, background knowledge
// and labelled examples. cmd/ilpgen writes it; ParseText reads it back, so
// users can persist, edit and reload learning tasks.
//
//	modeh(1, active(+drug)).
//	modeb('*', atm(+drug, -atomid, #element)).
//	atm(d1, d1_a0, c, 22, -0.11).
//	pos(active(d1)).
//	neg(active(d9)).

var (
	symModeh = logic.Intern("modeh")
	symModeb = logic.Intern("modeb")
	symPos   = logic.Intern("pos")
	symNeg   = logic.Intern("neg")
)

// ParseText reads a dataset from its textual form. Clauses are classified
// by shape: modeh/modeb facts become the language bias, pos/1 and neg/1
// facts become examples, everything else is background knowledge. The
// returned dataset carries default search settings; callers tune them.
func ParseText(name, src string) (*Dataset, error) {
	clauses, err := logic.ParseProgram(src)
	if err != nil {
		return nil, fmt.Errorf("datasets: parse text: %w", err)
	}
	kb := solve.NewKB()
	var modeClauses []logic.Clause
	var pos, neg []logic.Term
	for _, c := range clauses {
		if c.IsFact() {
			switch {
			case c.Head.Sym == symModeh && len(c.Head.Args) == 2,
				c.Head.Sym == symModeb && len(c.Head.Args) == 2:
				modeClauses = append(modeClauses, c)
				continue
			case c.Head.Sym == symPos && len(c.Head.Args) == 1:
				e := c.Head.Args[0]
				if !e.IsGround() || !e.IsCallable() {
					return nil, fmt.Errorf("datasets: positive example %s must be a ground atom", e)
				}
				pos = append(pos, e)
				continue
			case c.Head.Sym == symNeg && len(c.Head.Args) == 1:
				e := c.Head.Args[0]
				if !e.IsGround() || !e.IsCallable() {
					return nil, fmt.Errorf("datasets: negative example %s must be a ground atom", e)
				}
				neg = append(neg, e)
				continue
			}
		}
		kb.Add(c)
	}
	ms, err := mode.FromClauses(modeClauses)
	if err != nil {
		return nil, fmt.Errorf("datasets: %w", err)
	}
	if len(pos) == 0 {
		return nil, fmt.Errorf("datasets: no pos/1 examples in text")
	}
	return &Dataset{
		Name:   name,
		KB:     kb,
		Pos:    pos,
		Neg:    neg,
		Modes:  ms,
		Search: search.Settings{}.WithDefaults(),
	}, nil
}

// FormatText renders the dataset in the interchange format; the output
// parses back with ParseText (mode declarations, background, examples; the
// hidden concept and provenance ride along as comments).
func FormatText(ds *Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%% dataset: %s\n", ds.Name)
	fmt.Fprintf(&b, "%% |E+| = %d, |E-| = %d, noise = %.2f\n", len(ds.Pos), len(ds.Neg), ds.Noise)
	b.WriteString("%\n% mode declarations\n")
	recallStr := func(r int) string {
		if r <= 0 {
			return "'*'"
		}
		return fmt.Sprintf("%d", r)
	}
	fmt.Fprintf(&b, "modeh(%s, %s).\n", recallStr(ds.Modes.Head.Recall), ds.Modes.Head)
	for _, d := range ds.Modes.Body {
		fmt.Fprintf(&b, "modeb(%s, %s).\n", recallStr(d.Recall), d)
	}
	if len(ds.TrueConcept) > 0 {
		b.WriteString("%\n% hidden target concept (generator ground truth)\n")
		for _, c := range ds.TrueConcept {
			fmt.Fprintf(&b, "%% %s.\n", c.String())
		}
	}
	b.WriteString("%\n% background knowledge\n")
	for _, c := range ds.KB.AllClauses() {
		fmt.Fprintf(&b, "%s.\n", c.String())
	}
	b.WriteString("%\n% positive examples\n")
	for _, e := range ds.Pos {
		fmt.Fprintf(&b, "pos(%s).\n", e)
	}
	b.WriteString("% negative examples\n")
	for _, e := range ds.Neg {
		fmt.Fprintf(&b, "neg(%s).\n", e)
	}
	return b.String()
}
