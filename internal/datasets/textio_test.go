package datasets

import (
	"strings"
	"testing"

	"repro/internal/covering"
	"repro/internal/search"
)

func TestTextRoundTripTrains(t *testing.T) {
	orig := Trains()
	text := FormatText(orig)
	back, err := ParseText("trains", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Pos) != len(orig.Pos) || len(back.Neg) != len(orig.Neg) {
		t.Fatalf("examples lost: %d/%d vs %d/%d", len(back.Pos), len(back.Neg), len(orig.Pos), len(orig.Neg))
	}
	if back.KB.Size() != orig.KB.Size() {
		t.Fatalf("KB size changed: %d vs %d", back.KB.Size(), orig.KB.Size())
	}
	if len(back.Modes.Body) != len(orig.Modes.Body) {
		t.Fatalf("modes lost: %d vs %d", len(back.Modes.Body), len(orig.Modes.Body))
	}
	// The reloaded dataset must be learnable to the same theory.
	back.Search = orig.Search
	back.Bottom = orig.Bottom
	back.Budget = orig.Budget
	ex := search.NewExamples(back.Pos, back.Neg)
	res, err := covering.Learn(back.KB, ex, back.Modes, covering.Config{
		Search: back.Search, Bottom: back.Bottom, Budget: back.Budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := covering.Accuracy(back.KB, res.Theory, back.Pos, back.Neg, back.Budget); acc != 1.0 {
		t.Fatalf("reloaded trains accuracy = %v", acc)
	}
}

func TestTextRoundTripSynthetic(t *testing.T) {
	for _, orig := range []*Dataset{
		CarcinogenesisSized(12, 10, 3),
		MeshSized(16, 8, 3),
		PyrimidinesSized(12, 10, 3),
	} {
		text := FormatText(orig)
		back, err := ParseText(orig.Name, text)
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		if len(back.Pos) != len(orig.Pos) || len(back.Neg) != len(orig.Neg) {
			t.Fatalf("%s: examples lost", orig.Name)
		}
		if back.KB.Size() != orig.KB.Size() {
			t.Fatalf("%s: KB %d vs %d", orig.Name, back.KB.Size(), orig.KB.Size())
		}
		// Examples survive in order.
		for i := range orig.Pos {
			if back.Pos[i].String() != orig.Pos[i].String() {
				t.Fatalf("%s: pos %d: %s vs %s", orig.Name, i, back.Pos[i], orig.Pos[i])
			}
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"syntax", "p(a"},
		{"no modes", "p(a). pos(t(a))."},
		{"no positives", "modeh(1, t(+x)). modeb(1, p(+x)). p(a)."},
		{"nonground pos", "modeh(1, t(+x)). modeb(1, p(+x)). p(a). pos(t(X))."},
		{"nonground neg", "modeh(1, t(+x)). modeb(1, p(+x)). p(a). pos(t(a)). neg(t(Y))."},
	}
	for _, c := range cases {
		if _, err := ParseText("x", c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseTextClassifiesClauses(t *testing.T) {
	src := `
		modeh(1, t(+x)).
		modeb(1, q(+x)).
		q(a). q(b).
		helper(X) :- q(X).
		pos(t(a)).
		neg(t(c)).
	`
	ds, err := ParseText("tiny", src)
	if err != nil {
		t.Fatal(err)
	}
	if ds.KB.Size() != 3 { // q(a), q(b), helper rule
		t.Fatalf("KB size = %d, want 3", ds.KB.Size())
	}
	if len(ds.Pos) != 1 || len(ds.Neg) != 1 {
		t.Fatalf("examples: %d/%d", len(ds.Pos), len(ds.Neg))
	}
	if !strings.Contains(FormatText(ds), "helper(A) :- q(A).") {
		t.Fatal("BK rule lost in formatting")
	}
}
