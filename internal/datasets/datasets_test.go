package datasets

import (
	"strings"
	"testing"

	"repro/internal/covering"
	"repro/internal/search"
)

func TestTable1Characterization(t *testing.T) {
	cases := []struct {
		ds       *Dataset
		pos, neg int
	}{
		{Carcinogenesis(1), 162, 136},
		{Mesh(1), 2840, 278},
		{Pyrimidines(1), 848, 764},
	}
	for _, c := range cases {
		name, p, n := c.ds.Characterize()
		if p != c.pos || n != c.neg {
			t.Errorf("%s: |E+|=%d |E-|=%d, want %d/%d", name, p, n, c.pos, c.neg)
		}
		if c.ds.KB.Size() == 0 {
			t.Errorf("%s: empty KB", name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := []func(int64) *Dataset{
		func(s int64) *Dataset { return CarcinogenesisSized(20, 16, s) },
		func(s int64) *Dataset { return MeshSized(40, 10, s) },
		func(s int64) *Dataset { return PyrimidinesSized(30, 24, s) },
	}
	for _, gen := range gens {
		a, b := gen(7), gen(7)
		if a.KB.Size() != b.KB.Size() {
			t.Errorf("%s: KB sizes differ for equal seeds: %d vs %d", a.Name, a.KB.Size(), b.KB.Size())
		}
		for i := range a.Pos {
			if a.Pos[i].String() != b.Pos[i].String() {
				t.Errorf("%s: positives differ at %d", a.Name, i)
				break
			}
		}
		c := gen(8)
		if a.KB.Size() == c.KB.Size() && len(a.Pos) > 0 && a.Pos[0].String() == c.Pos[0].String() {
			// Sizes could coincide, but identical first example too is
			// suspicious enough to flag.
			same := true
			for i := range a.Pos {
				if a.Pos[i].String() != c.Pos[i].String() {
					same = false
					break
				}
			}
			if same {
				t.Errorf("%s: different seeds produced identical examples", a.Name)
			}
		}
	}
}

// The generator's hidden concept, evaluated by the SLD engine, must
// classify the generated data at roughly (1 − noise) accuracy: this pins
// generator and solver to the same semantics.
func TestTrueConceptAccuracy(t *testing.T) {
	cases := []struct {
		ds     *Dataset
		lo, hi float64
	}{
		{CarcinogenesisSized(162, 136, 3), 0.58, 0.85},
		{MeshSized(600, 60, 3), 0.72, 0.95},
		{PyrimidinesSized(300, 270, 3), 0.65, 0.92},
	}
	for _, c := range cases {
		acc := covering.Accuracy(c.ds.KB, c.ds.TrueConcept, c.ds.Pos, c.ds.Neg, c.ds.Budget)
		if acc < c.lo || acc > c.hi {
			t.Errorf("%s: true-concept accuracy %.3f outside [%.2f, %.2f]", c.ds.Name, acc, c.lo, c.hi)
		}
	}
}

func TestTrainsExactlyLearnable(t *testing.T) {
	ds := Trains()
	if len(ds.Pos) != 5 || len(ds.Neg) != 5 {
		t.Fatalf("trains: %d/%d examples", len(ds.Pos), len(ds.Neg))
	}
	// The intended theory classifies perfectly.
	if acc := covering.Accuracy(ds.KB, ds.TrueConcept, ds.Pos, ds.Neg, ds.Budget); acc != 1.0 {
		t.Fatalf("intended trains theory accuracy = %v, want 1.0", acc)
	}
	// And the learner recovers a perfect theory.
	ex := search.NewExamples(ds.Pos, ds.Neg)
	res, err := covering.Learn(ds.KB, ex, ds.Modes, covering.Config{
		Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := covering.Accuracy(ds.KB, res.Theory, ds.Pos, ds.Neg, ds.Budget); acc != 1.0 {
		var lines []string
		for _, c := range res.Theory {
			lines = append(lines, c.String())
		}
		t.Fatalf("learned trains accuracy = %v, theory:\n%s", acc, strings.Join(lines, "\n"))
	}
	if res.GroundFactsAdopted != 0 {
		t.Fatalf("trains needed %d fallback adoptions", res.GroundFactsAdopted)
	}
}

func TestSmallDatasetsLearnable(t *testing.T) {
	sized := []*Dataset{
		CarcinogenesisSized(40, 34, 5),
		MeshSized(80, 12, 5),
		PyrimidinesSized(60, 54, 5),
	}
	for _, ds := range sized {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			ex := search.NewExamples(ds.Pos, ds.Neg)
			res, err := covering.Learn(ds.KB, ex, ds.Modes, covering.Config{
				Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ex.NumPosAlive() != 0 {
				t.Fatalf("covering left %d positives", ex.NumPosAlive())
			}
			acc := covering.Accuracy(ds.KB, res.Theory, ds.Pos, ds.Neg, ds.Budget)
			// Training accuracy must beat the majority-class baseline.
			base := float64(len(ds.Pos)) / float64(len(ds.Pos)+len(ds.Neg))
			if base < 0.5 {
				base = 1 - base
			}
			if acc <= base {
				t.Fatalf("training accuracy %.3f does not beat baseline %.3f", acc, base)
			}
		})
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"carcinogenesis", "mesh", "pyrimidines", "trains"} {
		ds, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, ds.Name)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPaperScaled(t *testing.T) {
	scaled := PaperScaled(0.1, 2)
	if len(scaled) != 3 {
		t.Fatalf("PaperScaled returned %d datasets", len(scaled))
	}
	if got := len(scaled[0].Pos); got != 16 {
		t.Fatalf("scaled carcinogenesis pos = %d, want 16", got)
	}
	if got := len(scaled[1].Pos); got != 284 {
		t.Fatalf("scaled mesh pos = %d, want 284", got)
	}
	// Floor kicks in for tiny scales.
	tiny := PaperScaled(0.001, 2)
	for _, ds := range tiny {
		if len(ds.Pos) < 8 || len(ds.Neg) < 8 {
			t.Fatalf("%s: tiny scale went below floor: %d/%d", ds.Name, len(ds.Pos), len(ds.Neg))
		}
	}
}

func TestDatasetString(t *testing.T) {
	ds := Trains()
	s := ds.String()
	if !strings.Contains(s, "trains") || !strings.Contains(s, "|E+|=5") {
		t.Fatalf("String: %q", s)
	}
}
