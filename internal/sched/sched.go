// Package sched owns partition policy for the elastic p²-mdie cluster: how
// many examples each worker should hold, and how a pooled example set is
// dealt into shares. The epoch-driven master feeds it per-worker measured
// throughput (inferences per virtual second of busy time, read off the
// cost-model clock) and asks for shares; every share-dealing path in the
// system — per-epoch repartitioning, recovery redistribution, join
// rebalancing — routes through this package, so the even-split and the
// throughput-proportional policies are two parameterisations of one
// mechanism rather than parallel ad-hoc code paths.
//
// Determinism contract: all outputs are pure functions of the inputs, and
// DealEven reproduces the historical round-robin deal bit-for-bit — the
// default-off byte-identity guarantee of the scheduling refactor rests on
// that.
package sched

import "sort"

// Balancer accumulates per-worker throughput observations and converts
// them into share weights. Throughput is measured as inferences per
// nanosecond of busy virtual time: idle time (waiting on stragglers) is
// excluded, so the measure is the worker's demonstrated compute speed, not
// its recent luck with cheap examples — on a homogeneous cluster all
// weights converge to the same value and proportional shares degrade
// gracefully to an even split.
type Balancer struct {
	inf  map[int]int64 // cumulative inferences per worker id
	busy map[int]int64 // cumulative busy virtual nanoseconds
}

// NewBalancer returns an empty balancer.
func NewBalancer() *Balancer {
	return &Balancer{inf: make(map[int]int64), busy: make(map[int]int64)}
}

// Observe records worker id's cumulative totals (not deltas): total
// inferences performed and total busy virtual nanoseconds. Reports are
// idempotent and monotonic; a smaller total than previously seen is kept
// anyway (it means the worker was rebuilt, e.g. after a repartition).
func (b *Balancer) Observe(id int, inferences, busyNs int64) {
	b.inf[id] = inferences
	b.busy[id] = busyNs
}

// Forget drops a worker's history (call when it leaves the membership).
func (b *Balancer) Forget(id int) {
	delete(b.inf, id)
	delete(b.busy, id)
}

// Throughput returns worker id's measured inferences per busy nanosecond,
// and whether a usable observation exists.
func (b *Balancer) Throughput(id int) (float64, bool) {
	inf, busy := b.inf[id], b.busy[id]
	if busy <= 0 || inf <= 0 {
		return 0, false
	}
	return float64(inf) / float64(busy), true
}

// Weights returns one positive weight per id, proportional to measured
// throughput. Workers without history (fresh joiners) are assumed average:
// they get the mean of the known weights, or 1 when nobody has history —
// so a joiner's first share is a fair one rather than zero or everything.
func (b *Balancer) Weights(ids []int) []float64 {
	out := make([]float64, len(ids))
	var sum float64
	known := 0
	for i, id := range ids {
		if tp, ok := b.Throughput(id); ok {
			out[i] = tp
			sum += tp
			known++
		}
	}
	fill := 1.0
	if known > 0 {
		fill = sum / float64(known)
	}
	for i := range out {
		if out[i] == 0 {
			out[i] = fill
		}
	}
	return out
}

// DealEven splits xs into p round-robin shares (possibly empty) — exactly
// the historical dealShares order: xs[i] goes to share i mod p. Recovery
// redistribution and per-epoch repartitioning use this; its output being
// bit-identical to the pre-sched code is what pins the default-off
// byte-identity guarantee.
func DealEven[T any](xs []T, p int) [][]T {
	shares := make([][]T, p)
	for i, x := range xs {
		shares[i%p] = append(shares[i%p], x)
	}
	return shares
}

// DealByCost distributes items with per-item costs over len(weights)
// shares so that each share's total cost is proportional to its weight —
// the longest-processing-time greedy: items in descending cost order (ties
// by original position, so the deal is deterministic), each assigned to
// the share with the lowest weighted load. This is what evens out
// partitions whose *examples* have skewed costs, which a count-based deal
// cannot see: two workers with equal counts can still hold wildly unequal
// work. costs must parallel xs; missing or non-positive costs count as 1.
func DealByCost[T any](xs []T, costs []int64, weights []float64) [][]T {
	p := len(weights)
	shares := make([][]T, p)
	if p == 0 || len(xs) == 0 {
		return shares
	}
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	cost := func(i int) int64 {
		if i < len(costs) && costs[i] > 0 {
			return costs[i]
		}
		return 1
	}
	sort.SliceStable(order, func(a, b int) bool { return cost(order[a]) > cost(order[b]) })
	loads := make([]float64, p)
	for _, i := range order {
		best := 0
		for k := 1; k < p; k++ {
			if loads[k] < loads[best] {
				best = k
			}
		}
		w := weights[best]
		if w <= 0 {
			w = 1
		}
		loads[best] += float64(cost(i)) / w
		shares[best] = append(shares[best], xs[i])
	}
	return shares
}
