package sched

import (
	"reflect"
	"testing"
)

// TestDealEvenMatchesHistoricalRoundRobin pins the byte-identity anchor:
// DealEven must reproduce the master's historical dealShares exactly.
func TestDealEvenMatchesHistoricalRoundRobin(t *testing.T) {
	xs := []int{10, 11, 12, 13, 14, 15, 16}
	want := [][]int{{10, 13, 16}, {11, 14}, {12, 15}}
	if got := DealEven(xs, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("DealEven = %v, want %v", got, want)
	}
	// Empty input: p empty (nil) shares.
	shares := DealEven([]int(nil), 2)
	if len(shares) != 2 || shares[0] != nil || shares[1] != nil {
		t.Fatalf("empty deal = %v", shares)
	}
}

func TestBalancerWeights(t *testing.T) {
	b := NewBalancer()
	// No history: everyone weight 1.
	if got := b.Weights([]int{1, 2}); !reflect.DeepEqual(got, []float64{1, 1}) {
		t.Fatalf("empty weights = %v", got)
	}
	// Worker 1 twice as fast as worker 2; joiner 3 gets the mean.
	b.Observe(1, 2000, 1000)
	b.Observe(2, 1000, 1000)
	got := b.Weights([]int{1, 2, 3})
	if got[0] != 2 || got[1] != 1 || got[2] != 1.5 {
		t.Fatalf("weights = %v, want [2 1 1.5]", got)
	}
	// Shares follow: DealByCost hands the fast worker the most cost.
	items := make([]int, 9)
	for i := range items {
		items[i] = i
	}
	shares := DealByCost(items, nil, got)
	if len(shares[0]) <= len(shares[1]) {
		t.Fatalf("fast worker got %d items, slow got %d", len(shares[0]), len(shares[1]))
	}
	// Forgetting a worker removes its influence.
	b.Forget(1)
	if _, ok := b.Throughput(1); ok {
		t.Fatal("forgot worker still has throughput")
	}
}

func TestBalancerIgnoresUnusableObservations(t *testing.T) {
	b := NewBalancer()
	b.Observe(1, 0, 500) // no inferences yet
	b.Observe(2, 500, 0) // no busy time yet
	if _, ok := b.Throughput(1); ok {
		t.Fatal("zero-inference observation should be unusable")
	}
	if _, ok := b.Throughput(2); ok {
		t.Fatal("zero-busy observation should be unusable")
	}
	if got := b.Weights([]int{1, 2}); !reflect.DeepEqual(got, []float64{1, 1}) {
		t.Fatalf("weights = %v", got)
	}
}

func TestDealByCostEqualisesWeightedLoad(t *testing.T) {
	// Six items, one of cost 10, the rest cost 1; two equal workers: the
	// monster goes alone-ish — the greedy keeps the cost split 10/5, the
	// best achievable, instead of a count split that could give 11/4.
	items := []string{"a", "b", "c", "d", "e", "f"}
	costs := []int64{1, 10, 1, 1, 1, 1}
	shares := DealByCost(items, costs, []float64{1, 1})
	load := func(sh []string) int64 {
		var s int64
		for _, x := range sh {
			for i, it := range items {
				if it == x {
					s += costs[i]
				}
			}
		}
		return s
	}
	l0, l1 := load(shares[0]), load(shares[1])
	if l0+l1 != 15 || max64(l0, l1) != 10 {
		t.Fatalf("loads %d/%d, want 10/5", l0, l1)
	}
	// Deterministic: same inputs, same deal.
	again := DealByCost(items, append([]int64(nil), costs...), []float64{1, 1})
	if !reflect.DeepEqual(shares, again) {
		t.Fatalf("nondeterministic deal: %v vs %v", shares, again)
	}
	// A 2x-faster worker absorbs proportionally more cost.
	weighted := DealByCost(items, costs, []float64{2, 1})
	if lw := load(weighted[0]); lw < load(weighted[1]) {
		t.Fatalf("fast worker underloaded: %d vs %d", lw, load(weighted[1]))
	}
	// Missing costs default to 1 and everything is dealt.
	none := DealByCost(items, nil, []float64{1, 1})
	if len(none[0])+len(none[1]) != len(items) {
		t.Fatalf("items lost: %v", none)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
