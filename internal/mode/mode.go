// Package mode implements mode declarations, the language bias used by
// MDIE systems (Progol, Aleph, April) to direct bottom-clause construction
// and refinement.
//
// A mode declaration constrains how a predicate may appear in a learned
// rule: modeh describes the head, modeb the body literals. Each argument
// place is marked +type (input: must be an already-bound variable of that
// type), -type (output: binds a variable of that type) or #type (a ground
// constant). Recall bounds how many alternative solutions of a body literal
// saturation may keep ('*' = all).
package mode

import (
	"fmt"
	"strings"

	"repro/internal/logic"
)

// PlaceKind classifies one argument place of a mode template.
type PlaceKind uint8

const (
	// In marks a +type place: consumes an existing variable.
	In PlaceKind = iota
	// Out marks a -type place: produces a variable.
	Out
	// ConstPlace marks a #type place: a ground constant.
	ConstPlace
)

func (k PlaceKind) String() string {
	switch k {
	case In:
		return "+"
	case Out:
		return "-"
	case ConstPlace:
		return "#"
	}
	return "?"
}

// Place is one argument position of a mode template.
type Place struct {
	Kind PlaceKind
	Type logic.Symbol
}

// Decl is a single mode declaration.
type Decl struct {
	// Recall bounds the number of solutions kept per instantiation during
	// saturation; 0 or negative means unbounded ('*').
	Recall int
	// Pred is the declared predicate.
	Pred logic.PredKey
	// Places describes each argument position.
	Places []Place
}

// String renders the declaration template, e.g. "bond(+mol, -atom, #kind)".
func (d Decl) String() string {
	var b strings.Builder
	b.WriteString(d.Pred.Sym.Name())
	b.WriteByte('(')
	for i, p := range d.Places {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Kind.String())
		b.WriteString(p.Type.Name())
	}
	b.WriteByte(')')
	return b.String()
}

// parseTemplate decomposes a mode template term like bond(+mol, -atom, #k).
func parseTemplate(t logic.Term) (logic.PredKey, []Place, error) {
	if !t.IsCallable() {
		return logic.PredKey{}, nil, fmt.Errorf("mode: template %s is not callable", t)
	}
	places := make([]Place, len(t.Args))
	for i, a := range t.Args {
		if a.Kind != logic.Compound || len(a.Args) != 1 || a.Args[0].Kind != logic.Atom {
			return logic.PredKey{}, nil, fmt.Errorf("mode: argument %d of template %s must be +type, -type or #type", i+1, t)
		}
		var kind PlaceKind
		switch a.Sym.Name() {
		case "+":
			kind = In
		case "-":
			kind = Out
		case "#":
			kind = ConstPlace
		default:
			return logic.PredKey{}, nil, fmt.Errorf("mode: bad marker %q in template %s", a.Sym.Name(), t)
		}
		places[i] = Place{Kind: kind, Type: a.Args[0].Sym}
	}
	return t.Pred(), places, nil
}

func parseRecall(t logic.Term) (int, error) {
	switch {
	case t.Kind == logic.Int:
		r := int(t.Num)
		if r < 1 {
			return 0, fmt.Errorf("mode: recall must be positive or '*', got %d", r)
		}
		return r, nil
	case t.Kind == logic.Atom && t.Sym.Name() == "*":
		return 0, nil
	}
	return 0, fmt.Errorf("mode: bad recall %s", t)
}

// Set is the complete language bias for one learning task: exactly one head
// mode and any number of body modes, in declaration order.
type Set struct {
	Head Decl
	Body []Decl
}

// FromClauses extracts modeh/modeb declarations from parsed clauses;
// non-mode clauses are ignored, so it can run over a whole dataset file.
func FromClauses(cs []logic.Clause) (*Set, error) {
	var set Set
	haveHead := false
	for _, c := range cs {
		if !c.IsFact() || c.Head.Kind != logic.Compound || len(c.Head.Args) != 2 {
			continue
		}
		name := c.Head.Sym.Name()
		if name != "modeh" && name != "modeb" {
			continue
		}
		recall, err := parseRecall(c.Head.Args[0])
		if err != nil {
			return nil, err
		}
		pred, places, err := parseTemplate(c.Head.Args[1])
		if err != nil {
			return nil, err
		}
		d := Decl{Recall: recall, Pred: pred, Places: places}
		if name == "modeh" {
			if haveHead {
				return nil, fmt.Errorf("mode: multiple modeh declarations")
			}
			set.Head = d
			haveHead = true
			continue
		}
		set.Body = append(set.Body, d)
	}
	if !haveHead {
		return nil, fmt.Errorf("mode: no modeh declaration found")
	}
	if len(set.Body) == 0 {
		return nil, fmt.Errorf("mode: no modeb declarations found")
	}
	return &set, nil
}

// ParseSet parses src as a program and extracts the mode declarations.
func ParseSet(src string) (*Set, error) {
	cs, err := logic.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return FromClauses(cs)
}

// MustParseSet is ParseSet, panicking on error.
func MustParseSet(src string) *Set {
	s, err := ParseSet(src)
	if err != nil {
		panic(err)
	}
	return s
}

// BodyFor returns the body declarations for the given predicate, in
// declaration order (a predicate may have several modes).
func (s *Set) BodyFor(key logic.PredKey) []Decl {
	var out []Decl
	for _, d := range s.Body {
		if d.Pred == key {
			out = append(out, d)
		}
	}
	return out
}

// Types returns every type symbol mentioned by the declarations, in first-
// mention order.
func (s *Set) Types() []logic.Symbol {
	seen := make(map[logic.Symbol]bool)
	var out []logic.Symbol
	add := func(d Decl) {
		for _, p := range d.Places {
			if !seen[p.Type] {
				seen[p.Type] = true
				out = append(out, p.Type)
			}
		}
	}
	add(s.Head)
	for _, d := range s.Body {
		add(d)
	}
	return out
}
