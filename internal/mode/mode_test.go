package mode

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

const sampleModes = `
modeh(1, active(+drug)).
modeb(2, bond(+drug, -atomid, -atomid, #bondtype)).
modeb('*', atm(+drug, -atomid, #element)).
modeb(1, charge(+atomid, -chval)).
`

func TestParseSet(t *testing.T) {
	s := MustParseSet(sampleModes)
	if s.Head.Pred.String() != "active/1" {
		t.Fatalf("head pred: %s", s.Head.Pred)
	}
	if s.Head.Recall != 1 {
		t.Fatalf("head recall: %d", s.Head.Recall)
	}
	if len(s.Body) != 3 {
		t.Fatalf("body decls: %d", len(s.Body))
	}
	if s.Body[0].Recall != 2 {
		t.Fatalf("bond recall: %d", s.Body[0].Recall)
	}
	if s.Body[1].Recall != 0 {
		t.Fatalf("'*' recall should parse as 0 (unbounded), got %d", s.Body[1].Recall)
	}
}

func TestPlaces(t *testing.T) {
	s := MustParseSet(sampleModes)
	bond := s.Body[0]
	wantKinds := []PlaceKind{In, Out, Out, ConstPlace}
	wantTypes := []string{"drug", "atomid", "atomid", "bondtype"}
	for i, p := range bond.Places {
		if p.Kind != wantKinds[i] {
			t.Errorf("place %d kind = %v, want %v", i, p.Kind, wantKinds[i])
		}
		if p.Type.Name() != wantTypes[i] {
			t.Errorf("place %d type = %s, want %s", i, p.Type.Name(), wantTypes[i])
		}
	}
}

func TestDeclString(t *testing.T) {
	s := MustParseSet(sampleModes)
	if got := s.Body[0].String(); got != "bond(+drug, -atomid, -atomid, #bondtype)" {
		t.Fatalf("String = %q", got)
	}
}

func TestModeLinesMixedWithProgram(t *testing.T) {
	src := `
% a dataset file with everything in it
active(d1).
modeh(1, active(+drug)).
atm(d1, a1, c).
modeb('*', atm(+drug, -atomid, #element)).
`
	s, err := ParseSet(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Body) != 1 {
		t.Fatalf("body decls: %d", len(s.Body))
	}
}

func TestBodyFor(t *testing.T) {
	src := `
modeh(1, p(+t)).
modeb(1, q(+t, -u)).
modeb(3, q(+t, #u)).
modeb(1, r(+u)).
`
	s := MustParseSet(src)
	q := s.BodyFor(logic.PredKey{Sym: logic.Intern("q"), Arity: 2})
	if len(q) != 2 {
		t.Fatalf("BodyFor q/2: %d", len(q))
	}
	if q[0].Recall != 1 || q[1].Recall != 3 {
		t.Fatal("BodyFor lost declaration order")
	}
	if got := s.BodyFor(logic.PredKey{Sym: logic.Intern("zz"), Arity: 1}); got != nil {
		t.Fatal("BodyFor unknown predicate should be nil")
	}
}

func TestTypes(t *testing.T) {
	s := MustParseSet(sampleModes)
	types := s.Types()
	names := make([]string, len(types))
	for i, ty := range types {
		names[i] = ty.Name()
	}
	want := "drug atomid bondtype element chval"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("Types = %q, want %q", got, want)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		`modeb(1, q(+t)).`, // no modeh
		`modeh(1, p(+t)).`, // no modeb
		`modeh(1, p(+t)). modeh(1, q(+t)). modeb(1, r(+t)).`, // two heads
		`modeh(0, p(+t)). modeb(1, q(+t)).`,                  // zero recall
		`modeh(1, p(t)). modeb(1, q(+t)).`,                   // missing marker
		`modeh(1, p(+t)). modeb(1, q(+t(x))).`,               // non-atom type
	}
	for _, src := range bad {
		if _, err := ParseSet(src); err == nil {
			t.Errorf("ParseSet(%q) succeeded, want error", src)
		}
	}
}
