// Package theory post-processes learned rule sets: redundancy removal via
// θ-subsumption (both between rules and inside each rule's body) and
// confusion-matrix evaluation. MDIE covering can emit overlapping rules —
// especially p²-mdie, whose epochs accept several rules from independently
// partitioned searches — so downstream users routinely want the minimised
// equivalent theory.
package theory

import (
	"fmt"
	"strings"

	"repro/internal/logic"
	"repro/internal/search"
	"repro/internal/solve"
)

// ReduceRules removes clauses subsumed by another clause of the theory
// (keeping the subsuming, more general one; first occurrence wins among
// subsume-equivalent rules). Coverage is preserved: a subsumed clause's
// coverage is a subset of its subsumer's.
func ReduceRules(theory []logic.Clause) []logic.Clause {
	var out []logic.Clause
	for i := range theory {
		redundant := false
		for j := range theory {
			if i == j {
				continue
			}
			if !logic.Subsumes(&theory[j], &theory[i]) {
				continue
			}
			// j subsumes i. Drop i unless they are subsume-equivalent and
			// i comes first (keep the earlier of equivalent rules).
			if logic.Subsumes(&theory[i], &theory[j]) && i < j {
				continue
			}
			redundant = true
			break
		}
		if !redundant {
			out = append(out, theory[i])
		}
	}
	return out
}

// ReduceBodies applies Plotkin reduction to every clause, dropping body
// literals that are redundant under θ-subsumption.
func ReduceBodies(theory []logic.Clause) []logic.Clause {
	out := make([]logic.Clause, len(theory))
	for i := range theory {
		out[i] = logic.ReducesTo(&theory[i])
	}
	return out
}

// Minimize composes ReduceBodies and ReduceRules and canonicalises the
// remaining clauses.
func Minimize(theory []logic.Clause) []logic.Clause {
	reduced := ReduceRules(ReduceBodies(theory))
	out := make([]logic.Clause, len(reduced))
	for i := range reduced {
		out[i] = reduced[i].Canonical()
	}
	return out
}

// Stats summarises a theory's shape.
type Stats struct {
	Rules         int // clauses with a non-empty body
	Facts         int // bodiless clauses (adopted examples)
	Literals      int // total body literals
	MaxBodyLen    int
	BodyPredCount int // distinct body predicates
}

// AvgBodyLen returns the mean body length over rules (0 if no rules).
func (s Stats) AvgBodyLen() float64 {
	if s.Rules == 0 {
		return 0
	}
	return float64(s.Literals) / float64(s.Rules)
}

func (s Stats) String() string {
	return fmt.Sprintf("theory{rules: %d, facts: %d, avg body: %.1f, max body: %d, predicates: %d}",
		s.Rules, s.Facts, s.AvgBodyLen(), s.MaxBodyLen, s.BodyPredCount)
}

// Summarize computes Stats for a theory.
func Summarize(theory []logic.Clause) Stats {
	var st Stats
	preds := map[logic.PredKey]bool{}
	for i := range theory {
		c := &theory[i]
		if c.IsFact() {
			st.Facts++
			continue
		}
		st.Rules++
		st.Literals += len(c.Body)
		if len(c.Body) > st.MaxBodyLen {
			st.MaxBodyLen = len(c.Body)
		}
		for _, l := range c.Body {
			preds[l.Atom.Pred()] = true
		}
	}
	st.BodyPredCount = len(preds)
	return st
}

// Confusion is a binary confusion matrix of a theory over labelled
// examples: the theory predicts positive iff some rule covers the example.
type Confusion struct {
	TP, FN int // positives covered / missed
	FP, TN int // negatives covered / rejected
}

// Evaluate scores theory on the labelled examples against kb.
func Evaluate(kb *solve.KB, theory []logic.Clause, pos, neg []logic.Term, budget solve.Budget) Confusion {
	m := solve.NewMachine(kb, budget)
	var c Confusion
	for _, e := range pos {
		if search.TheoryCovers(m, theory, e) {
			c.TP++
		} else {
			c.FN++
		}
	}
	for _, e := range neg {
		if search.TheoryCovers(m, theory, e) {
			c.FP++
		} else {
			c.TN++
		}
	}
	return c
}

// Accuracy is (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FN + c.FP + c.TN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision is TP/(TP+FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (c Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion{TP: %d, FN: %d, FP: %d, TN: %d; acc %.3f, prec %.3f, rec %.3f, f1 %.3f}",
		c.TP, c.FN, c.FP, c.TN, c.Accuracy(), c.Precision(), c.Recall(), c.F1())
	return b.String()
}
