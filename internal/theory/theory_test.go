package theory

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/solve"
)

func cl(s string) logic.Clause { return logic.MustParseClause(s) }

func TestReduceRulesDropsSpecialisations(t *testing.T) {
	th := []logic.Clause{
		cl("p(X) :- q(X)."),
		cl("p(X) :- q(X), r(X)."), // subsumed by the first
		cl("p(X) :- s(X)."),
	}
	out := ReduceRules(th)
	if len(out) != 2 {
		t.Fatalf("ReduceRules kept %d rules, want 2: %v", len(out), out)
	}
	if out[0].String() != "p(A) :- q(A)" || out[1].String() != "p(A) :- s(A)" {
		t.Fatalf("wrong survivors: %v", out)
	}
}

func TestReduceRulesKeepsFirstOfEquivalents(t *testing.T) {
	th := []logic.Clause{
		cl("p(X) :- q(X, Y)."),
		cl("p(U) :- q(U, V), q(U, W)."), // subsume-equivalent to the first
	}
	out := ReduceRules(th)
	if len(out) != 1 {
		t.Fatalf("kept %d, want 1", len(out))
	}
	if out[0].String() != "p(A) :- q(A, B)" {
		t.Fatalf("kept the wrong equivalent: %s", out[0].String())
	}
}

func TestReduceRulesKeepsGroundFacts(t *testing.T) {
	th := []logic.Clause{
		cl("p(X) :- q(X)."),
		cl("p(a)."), // adopted example: subsumed by the general rule
		cl("p(zz)."),
	}
	out := ReduceRules(th)
	// p(a) and p(zz) are instances of p(X) :- q(X)? No: the rule has a
	// body, the facts do not; a clause with extra body literals cannot be
	// mapped into a bodiless clause, so facts survive.
	if len(out) != 3 {
		t.Fatalf("facts were dropped: %v", out)
	}
}

func TestReduceBodies(t *testing.T) {
	th := []logic.Clause{cl("p(X) :- q(X, Y), q(X, Z).")}
	out := ReduceBodies(th)
	if len(out[0].Body) != 1 {
		t.Fatalf("body not reduced: %s", out[0].String())
	}
}

func TestMinimizePreservesCoverage(t *testing.T) {
	kb := solve.NewKB()
	if err := kb.AddSource(`
		q(a). q(b). s(c).
		r(a).
	`); err != nil {
		t.Fatal(err)
	}
	th := []logic.Clause{
		cl("p(X) :- q(X), q(X)."),
		cl("p(X) :- q(X), r(X)."),
		cl("p(X) :- s(X)."),
	}
	min := Minimize(th)
	if len(min) >= len(th) {
		t.Fatalf("Minimize did not shrink: %v", min)
	}
	pos := []logic.Term{
		logic.MustParseTerm("p(a)"),
		logic.MustParseTerm("p(b)"),
		logic.MustParseTerm("p(c)"),
	}
	before := Evaluate(kb, th, pos, nil, solve.Budget{})
	after := Evaluate(kb, min, pos, nil, solve.Budget{})
	if before.TP != after.TP {
		t.Fatalf("minimisation changed coverage: %d vs %d", before.TP, after.TP)
	}
}

func TestSummarize(t *testing.T) {
	th := []logic.Clause{
		cl("p(X) :- q(X), r(X, Y)."),
		cl("p(X) :- q(X)."),
		cl("p(a)."),
	}
	st := Summarize(th)
	if st.Rules != 2 || st.Facts != 1 || st.Literals != 3 || st.MaxBodyLen != 2 || st.BodyPredCount != 2 {
		t.Fatalf("Summarize: %+v", st)
	}
	if st.AvgBodyLen() != 1.5 {
		t.Fatalf("AvgBodyLen = %v", st.AvgBodyLen())
	}
	if Summarize(nil).AvgBodyLen() != 0 {
		t.Fatal("empty theory avg")
	}
}

func TestConfusionMetrics(t *testing.T) {
	kb := solve.NewKB()
	if err := kb.AddSource(`q(a). q(b). q(n1).`); err != nil {
		t.Fatal(err)
	}
	th := []logic.Clause{cl("p(X) :- q(X).")}
	pos := []logic.Term{logic.MustParseTerm("p(a)"), logic.MustParseTerm("p(b)"), logic.MustParseTerm("p(c)")}
	neg := []logic.Term{logic.MustParseTerm("p(n1)"), logic.MustParseTerm("p(n2)")}
	c := Evaluate(kb, th, pos, neg, solve.Budget{})
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion: %+v", c)
	}
	if c.Accuracy() != 3.0/5.0 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	if c.Precision() != 2.0/3.0 {
		t.Fatalf("precision = %v", c.Precision())
	}
	if c.Recall() != 2.0/3.0 {
		t.Fatalf("recall = %v", c.Recall())
	}
	if c.F1() != 2.0/3.0 {
		t.Fatalf("f1 = %v", c.F1())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("zero matrix should yield zero metrics")
	}
}

// Property: Minimize is idempotent.
func TestQuickMinimizeIdempotent(t *testing.T) {
	preds := []string{"q", "r", "s"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var th []logic.Clause
		for i := 0; i < 4; i++ {
			var body []logic.Term
			for j := 0; j <= rng.Intn(3); j++ {
				body = append(body, logic.Comp(preds[rng.Intn(3)], logic.V(rng.Intn(2))))
			}
			th = append(th, logic.Rule(logic.Comp("p", logic.V(0)), body...))
		}
		once := Minimize(th)
		twice := Minimize(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i].String() != twice[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
