package wire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/logic"
)

// testMsg exercises every primitive the message encoders use, in a fixed
// field order, so the fuzz harness and the error tables below cover the
// same decode paths the real protocol does.
type testMsg struct {
	A  int
	B  int64
	U  uint64
	F  float64
	OK bool
	S  string
	I3 []int32
	I6 []int64
	IS []int
	W  []uint64
	BS []bool
	T  logic.Term
	TS []logic.Term
	L  logic.Literal
	LS []logic.Literal
	C  logic.Clause
	CS []logic.Clause
}

func (m testMsg) AppendWire(w *Writer) {
	w.Int(m.A)
	w.Varint(m.B)
	w.Uvarint(m.U)
	w.F64(m.F)
	w.Bool(m.OK)
	w.String(m.S)
	w.I32s(m.I3)
	w.I64s(m.I6)
	w.Ints(m.IS)
	w.U64sFixed(m.W)
	w.Bools(m.BS)
	w.Term(m.T)
	w.Terms(m.TS)
	w.Literal(m.L)
	w.Literals(m.LS)
	w.Clause(m.C)
	w.Clauses(m.CS)
}

func (m *testMsg) DecodeWire(r *Reader) {
	m.A = r.Int()
	m.B = r.Varint()
	m.U = r.Uvarint()
	m.F = r.F64()
	m.OK = r.Bool()
	m.S = r.String()
	m.I3 = r.I32s()
	m.I6 = r.I64s()
	m.IS = r.Ints()
	m.W = r.U64sFixed()
	m.BS = r.Bools()
	m.T = r.Term()
	m.TS = r.Terms()
	m.L = r.Literal()
	m.LS = r.Literals()
	m.C = r.Clause()
	m.CS = r.Clauses()
}

func sampleMsg() testMsg {
	mustTerm := logic.MustParseTerm
	rule := logic.Clause{
		Head: mustTerm("active(X)"),
		Body: []logic.Literal{
			logic.Lit(mustTerm("atm(X, Y, oxygen)")),
			logic.NegLit(mustTerm("charged(Y)")),
		},
	}
	return testMsg{
		A:  -42,
		B:  1 << 40,
		U:  math.MaxUint64,
		F:  3.14159,
		OK: true,
		S:  "théory",
		I3: []int32{0, -1, math.MaxInt32, math.MinInt32},
		I6: []int64{math.MinInt64, 0, math.MaxInt64},
		IS: []int{7, -7},
		W:  []uint64{0, ^uint64(0), 0xdeadbeefcafef00d},
		BS: []bool{true, false, true},
		T:  mustTerm("f(g(X, 3), -2.5, h)"),
		TS: []logic.Term{mustTerm("active(m1)"), {Kind: logic.Int, Num: 0.5}},
		L:  logic.NegLit(mustTerm("charged(Y)")),
		LS: rule.Body,
		C:  rule,
		CS: []logic.Clause{rule, {Head: mustTerm("ok")}},
	}
}

func TestPrimitivesRoundTrip(t *testing.T) {
	in := sampleMsg()
	payload := Seal(in)
	var out testMsg
	if err := Unseal(payload, &out); err != nil {
		t.Fatalf("unseal: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n got: %#v\nwant: %#v", out, in)
	}
}

// TestEmptySlicesDecodeNil pins the gob-parity rule the codec comment
// promises: empty slices encode as length 0 and come back nil, exactly
// what a gob round trip of an omitted field yields.
func TestEmptySlicesDecodeNil(t *testing.T) {
	in := testMsg{I3: []int32{}, TS: []logic.Term{}, CS: []logic.Clause{}}
	var out testMsg
	if err := Unseal(Seal(in), &out); err != nil {
		t.Fatal(err)
	}
	if out.I3 != nil || out.TS != nil || out.CS != nil {
		t.Fatalf("empty slices decoded non-nil: %#v", out)
	}
}

// TestTermTags pins every term tag's round trip, including the two
// integer encodings (exact int64 varint vs raw IEEE bits).
func TestTermTags(t *testing.T) {
	for _, tc := range []logic.Term{
		{},
		{Kind: logic.Var, Sym: 3},
		{Kind: logic.Atom, Sym: 7},
		{Kind: logic.Int, Num: -12345},
		{Kind: logic.Int, Num: 0.5}, // not an exact int64: ships raw bits
		{Kind: logic.Int, Num: 1e308},
		{Kind: logic.Float, Num: math.Inf(-1)},
		logic.MustParseTerm("f(g(h(X)), atom, 9)"),
	} {
		var w Writer
		w.Term(tc)
		r := NewReader(w.B)
		got := r.Term()
		if r.Err() != nil {
			t.Fatalf("term %v: decode: %v", tc, r.Err())
		}
		if r.Remaining() != 0 {
			t.Fatalf("term %v: %d trailing bytes", tc, r.Remaining())
		}
		if !reflect.DeepEqual(got, tc) {
			t.Fatalf("term round trip: got %#v want %#v", got, tc)
		}
	}
}

// TestDecodeErrors is the table of garbled and truncated frames: each
// must fail loudly with the right error class, and none may panic or
// over-allocate.
func TestDecodeErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		body []byte // reader body (no envelope)
		read func(r *Reader)
		want error
	}{
		{"byte past end", nil, func(r *Reader) { r.Byte() }, ErrTruncated},
		{"bool byte 2", []byte{2}, func(r *Reader) { r.Bool() }, ErrCorrupt},
		{"uvarint cut mid-value", []byte{0x80}, func(r *Reader) { r.Uvarint() }, ErrTruncated},
		{"uvarint overflow", bytes.Repeat([]byte{0xff}, 11), func(r *Reader) { r.Uvarint() }, ErrCorrupt},
		{"varint cut mid-value", []byte{0xc0}, func(r *Reader) { r.Varint() }, ErrTruncated},
		{"fixed64 short", []byte{1, 2, 3}, func(r *Reader) { r.Fixed64() }, ErrTruncated},
		{"string length past end", []byte{0x05, 'h', 'i'}, func(r *Reader) { _ = r.String() }, ErrTruncated},
		// 2^32 elements claimed in a 6-byte body: the sliceLen guard must
		// reject it before allocating anything.
		{"huge slice claim", append([]byte{0x80, 0x80, 0x80, 0x80, 0x10}, 1), func(r *Reader) { r.Ints() }, ErrTruncated},
		{"huge term arity", []byte{tCompound, 0x01, 0xff, 0xff, 0xff, 0x7f}, func(r *Reader) { r.Term() }, ErrTruncated},
		{"unknown term tag", []byte{0x7f}, func(r *Reader) { r.Term() }, ErrCorrupt},
		{"literal bad neg byte", []byte{9, tAtom, 0x01}, func(r *Reader) { r.Literal() }, ErrCorrupt},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(tc.body)
			tc.read(r)
			if !errors.Is(r.Err(), tc.want) {
				t.Fatalf("err = %v, want %v", r.Err(), tc.want)
			}
		})
	}
}

// TestEnvelopeErrors covers the frame-level failure modes: empty frames,
// unknown flags, inflate garbage, and trailing bytes after a full decode.
func TestEnvelopeErrors(t *testing.T) {
	if _, err := Decompress(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty frame: %v", err)
	}
	if _, err := Decompress([]byte{0x1f, 1, 2}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown flag: %v", err)
	}
	if _, err := Decompress([]byte{flagFlate, 0xde, 0xad}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("inflate garbage: %v", err)
	}
	// A sealed frame with appended garbage must fail the trailing-bytes
	// check, not silently decode.
	payload := append(Seal(testMsg{}), 0x00)
	var out testMsg
	if err := Unseal(payload, &out); !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes: %v", err)
	}
}

// TestLatchedError pins the Reader contract decoders rely on: after the
// first failure every read returns a zero value and the original error
// survives.
func TestLatchedError(t *testing.T) {
	r := NewReader([]byte{2}) // bad bool
	r.Bool()
	first := r.Err()
	if first == nil {
		t.Fatal("no error latched")
	}
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("read after error returned %d", v)
	}
	if s := r.String(); s != "" {
		t.Fatalf("read after error returned %q", s)
	}
	if r.Err() != first {
		t.Fatalf("latched error replaced: %v", r.Err())
	}
}

// TestCompressThreshold pins the envelope policy: small bodies ship raw,
// large compressible bodies ship flate-flagged and smaller, and both
// decompress back to the identical body.
func TestCompressThreshold(t *testing.T) {
	small := append([]byte{flagRaw}, bytes.Repeat([]byte{'x'}, CompressMin-2)...)
	if got := Compress(small); &got[0] != &small[0] {
		t.Fatal("sub-threshold body was not shipped raw")
	}
	big := append([]byte{flagRaw}, bytes.Repeat([]byte("abcdef"), CompressMin)...)
	z := Compress(big)
	if z[0] != flagFlate {
		t.Fatalf("big compressible body flag %#x, want flate", z[0])
	}
	if len(z) >= len(big) {
		t.Fatalf("compression grew the frame: %d >= %d", len(z), len(big))
	}
	body, err := Decompress(z)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, big[1:]) {
		t.Fatal("decompressed body differs")
	}
	// Determinism: the virtual clock charges encoded bytes, so the same
	// body must always seal to the same frame.
	if !bytes.Equal(z, Compress(big)) {
		t.Fatal("compression is not deterministic")
	}
}

// FuzzReader feeds arbitrary bytes through the full message decode path:
// whatever the input, the decoder must not panic, and anything it
// accepts must re-encode and decode to the same value (a fixed point).
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add(Seal(sampleMsg()))
	f.Add(Seal(testMsg{}))
	f.Add([]byte{flagFlate, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m testMsg
		if err := Unseal(data, &m); err != nil {
			return
		}
		var again testMsg
		if err := Unseal(Seal(m), &again); err != nil {
			t.Fatalf("re-decode of accepted value failed: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("decode not a fixed point:\n got: %#v\nwant: %#v", again, m)
		}
	})
}

func BenchmarkSealWire(b *testing.B) {
	m := sampleMsg()
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(Seal(m))
	}
	b.ReportMetric(float64(n), "bytes/op")
}

func BenchmarkUnsealWire(b *testing.B) {
	payload := Seal(sampleMsg())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var m testMsg
		if err := Unseal(payload, &m); err != nil {
			b.Fatal(err)
		}
	}
}
