// Package wire is the compact binary codec protocol frames travel in.
//
// Every payload the cluster ships — p²-mdie control and data messages,
// parcov's coverage protocol, bulk example shipments — can be encoded
// either with encoding/gob (the original transport encoding, retained
// for A/B comparison) or with this hand-rolled format. The wire format
// wins on size for three reasons:
//
//   - no per-message type metadata: gob re-emits struct descriptors in
//     every payload because each message gets a fresh encoder (stream
//     encoders cannot be shared across reordered frames);
//   - varint integers: epochs, sequence numbers, widths, and symbol
//     indices are small, and zigzag varints make them one or two bytes;
//   - interned symbols: the PR 3 fingerprint handshake guarantees every
//     process interned the identical background knowledge in the same
//     order, so an atom or functor is a single small index instead of a
//     structural spelling.
//
// The grammar is documented in DESIGN.md §12. Encoders append to a
// Writer; decoders pull from a Reader that latches its first error so
// per-field error checking is unnecessary — callers check Err() once.
//
// Payloads are wrapped in a one-byte envelope (Seal/Open): flag 0 is a
// raw body, flag 1 a DEFLATE-compressed body. Seal compresses when the
// body reaches CompressMin and compression actually helps, which in
// practice catches the bulk shipments (kindLoad, kindRebalance,
// kindWelcome, snapshot publish) while leaving small control frames
// untouched.
package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/logic"
)

// ErrTruncated reports a payload that ended before its structure did.
var ErrTruncated = errors.New("wire: truncated payload")

// ErrCorrupt reports a payload whose bytes cannot be the output of a
// wire encoder: a varint overflow, an unknown tag, trailing garbage.
var ErrCorrupt = errors.New("wire: corrupt payload")

// CompressMin is the body size, in bytes, at which Seal attempts flate
// compression. Below it the flate header and dictionary warm-up cost
// more than they save on the short control frames that dominate frame
// *count* (the bulk shipments dominate frame *bytes*).
const CompressMin = 1 << 10

// maxInflate bounds how far Decompress will inflate a frame, so a
// garbled length field cannot balloon into unbounded allocation. It is
// far above any real shipment (the transport already caps compressed
// frames at MaxFrameBytes).
const maxInflate = 1 << 31

// Envelope flags: the first byte of every sealed payload.
const (
	flagRaw   = 0x00
	flagFlate = 0x01
)

// Marshaler is implemented (on value receivers, so both values and
// pointers satisfy it) by every message type that can travel in wire
// encoding.
type Marshaler interface {
	AppendWire(w *Writer)
}

// Unmarshaler is implemented (on pointer receivers) by the same types.
// DecodeWire reports failure through the Reader's latched error, not a
// return value.
type Unmarshaler interface {
	DecodeWire(r *Reader)
}

// A Writer accumulates an encoded body. The zero value is ready to use;
// encoders append and never fail.
type Writer struct {
	B []byte
}

// A Reader consumes an encoded body. The first failed read latches an
// error; every subsequent read returns a zero value, so decoders can
// run straight through and check Err once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps an encoded body.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many bytes are left unconsumed.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// DiscardRest consumes the remainder of the body without interpreting
// it. Partial decoders (reading just a message header) use it so the
// trailing-bytes check in Unseal still passes.
func (r *Reader) DiscardRest() { r.off = len(r.b) }

// Failf latches a corrupt-payload error with context. Decoders use it
// to report structural invariants the primitive reads cannot see.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// --- primitive writes ---

// Byte appends a single raw byte.
func (w *Writer) Byte(b byte) { w.B = append(w.B, b) }

// Bool appends a bool as one byte, 0 or 1.
func (w *Writer) Bool(v bool) {
	if v {
		w.B = append(w.B, 1)
	} else {
		w.B = append(w.B, 0)
	}
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.B = binary.AppendUvarint(w.B, v) }

// Varint appends a zigzag-encoded signed varint.
func (w *Writer) Varint(v int64) { w.B = binary.AppendVarint(w.B, v) }

// Int appends an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// F64 appends a float64 as its 8 little-endian IEEE-754 bits. Floats
// get fixed width: heuristic parameters and costs have dense mantissas
// that varint tricks would inflate.
func (w *Writer) F64(v float64) {
	w.B = binary.LittleEndian.AppendUint64(w.B, math.Float64bits(v))
}

// Fixed64 appends a uint64 as 8 little-endian bytes. Used for bitset
// words, whose high bits are as likely set as low ones.
func (w *Writer) Fixed64(v uint64) {
	w.B = binary.LittleEndian.AppendUint64(w.B, v)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.B = append(w.B, s...)
}

// --- primitive reads ---

// Byte consumes one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

// Bool consumes one byte and requires it to be 0 or 1 — anything else
// marks the payload corrupt, which makes garbled frames loud.
func (r *Reader) Bool() bool {
	b := r.Byte()
	if b > 1 {
		r.Failf("bool byte %#x", b)
		return false
	}
	return b == 1
}

// Uvarint consumes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.Failf("uvarint overflow")
		}
		return 0
	}
	r.off += n
	return v
}

// Varint consumes a zigzag-encoded signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.Failf("varint overflow")
		}
		return 0
	}
	r.off += n
	return v
}

// Int consumes a signed varint as an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// F64 consumes 8 bytes as a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.Fixed64()) }

// Fixed64 consumes 8 little-endian bytes as a uint64.
func (r *Reader) Fixed64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// String consumes a length-prefixed string.
func (r *Reader) String() string {
	n := r.sliceLen(1)
	if n == 0 {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// Len reads a length prefix for a slice of structs whose elements take
// at least one byte each, with the same remaining-bytes guard as the
// built-in slice helpers. Message decoders use it for struct slices the
// Reader has no dedicated helper for.
func (r *Reader) Len() int { return r.sliceLen(1) }

// sliceLen reads a length prefix and guards it against the remaining
// byte count: a claimed length that cannot fit in what is left (at
// elemSize bytes minimum per element) is a truncated or garbled frame,
// and rejecting it here keeps decoders from allocating attacker-sized
// slices before discovering the payload runs dry.
func (r *Reader) sliceLen(elemSize int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()/elemSize) {
		r.fail(fmt.Errorf("%w: %d elements claimed, %d bytes remain", ErrTruncated, n, r.Remaining()))
		return 0
	}
	return int(n)
}

// --- slice helpers ---
//
// Empty slices encode as length 0 and decode as nil. That asymmetry is
// deliberate: gob omits empty slices entirely, so a gob round trip of a
// struct with an empty slice yields nil — matching it keeps the two
// codecs DeepEqual-interchangeable, which the fuzz harness pins.

// I32s appends a length-prefixed []int32 of varints.
func (w *Writer) I32s(xs []int32) {
	w.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.Varint(int64(x))
	}
}

// I32s consumes a length-prefixed []int32.
func (r *Reader) I32s() []int32 {
	n := r.sliceLen(1)
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.Varint())
	}
	return out
}

// I64s appends a length-prefixed []int64 of varints.
func (w *Writer) I64s(xs []int64) {
	w.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.Varint(x)
	}
}

// I64s consumes a length-prefixed []int64.
func (r *Reader) I64s() []int64 {
	n := r.sliceLen(1)
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Varint()
	}
	return out
}

// Ints appends a length-prefixed []int of varints.
func (w *Writer) Ints(xs []int) {
	w.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.Varint(int64(x))
	}
}

// Ints consumes a length-prefixed []int.
func (r *Reader) Ints() []int {
	n := r.sliceLen(1)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}

// U64sFixed appends a length-prefixed []uint64 of fixed 8-byte words.
func (w *Writer) U64sFixed(xs []uint64) {
	w.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.Fixed64(x)
	}
}

// U64sFixed consumes a length-prefixed fixed-width []uint64.
func (r *Reader) U64sFixed() []uint64 {
	n := r.sliceLen(8)
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Fixed64()
	}
	return out
}

// Bools appends a length-prefixed []bool, one byte per element.
func (w *Writer) Bools(xs []bool) {
	w.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.Bool(x)
	}
}

// Bools consumes a length-prefixed []bool.
func (r *Reader) Bools() []bool {
	n := r.sliceLen(1)
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Bool()
	}
	return out
}

// --- terms, literals, clauses ---
//
// A term is a one-byte tag followed by tag-specific fields. Variables
// and atoms are bare symbol indices; integers whose float64 carrier is
// an exact int64 take the varint fast path, everything else ships the
// raw IEEE bits so the round trip is bit-faithful.

const (
	tInvalid  = 0x00 // zero Term
	tVar      = 0x01 // varint variable index
	tAtom     = 0x02 // uvarint interned symbol
	tInt      = 0x03 // zigzag varint, exact integers only
	tFloat    = 0x04 // 8-byte IEEE-754 bits
	tCompound = 0x05 // uvarint functor symbol, uvarint arity, args
	tIntBits  = 0x06 // Int whose value is not an exact int64: raw bits
)

// Term appends one logic.Term.
func (w *Writer) Term(t logic.Term) {
	switch t.Kind {
	case logic.Var:
		w.Byte(tVar)
		w.Varint(int64(t.Sym))
	case logic.Atom:
		w.Byte(tAtom)
		w.Uvarint(uint64(t.Sym))
	case logic.Int:
		if iv := int64(t.Num); float64(iv) == t.Num {
			w.Byte(tInt)
			w.Varint(iv)
		} else {
			w.Byte(tIntBits)
			w.F64(t.Num)
		}
	case logic.Float:
		w.Byte(tFloat)
		w.F64(t.Num)
	case logic.Compound:
		w.Byte(tCompound)
		w.Uvarint(uint64(t.Sym))
		w.Uvarint(uint64(len(t.Args)))
		for _, a := range t.Args {
			w.Term(a)
		}
	default:
		w.Byte(tInvalid)
	}
}

// Term consumes one logic.Term.
func (r *Reader) Term() logic.Term {
	switch tag := r.Byte(); tag {
	case tVar:
		return logic.Term{Kind: logic.Var, Sym: logic.Symbol(r.Varint())}
	case tAtom:
		return logic.Term{Kind: logic.Atom, Sym: logic.Symbol(r.Uvarint())}
	case tInt:
		return logic.Term{Kind: logic.Int, Num: float64(r.Varint())}
	case tIntBits:
		return logic.Term{Kind: logic.Int, Num: r.F64()}
	case tFloat:
		return logic.Term{Kind: logic.Float, Num: r.F64()}
	case tCompound:
		sym := logic.Symbol(r.Uvarint())
		n := r.sliceLen(1)
		t := logic.Term{Kind: logic.Compound, Sym: sym}
		if n > 0 {
			t.Args = make([]logic.Term, n)
			for i := range t.Args {
				t.Args[i] = r.Term()
			}
		}
		return t
	case tInvalid:
		return logic.Term{}
	default:
		r.Failf("term tag %#x", tag)
		return logic.Term{}
	}
}

// Terms appends a length-prefixed []logic.Term.
func (w *Writer) Terms(ts []logic.Term) {
	w.Uvarint(uint64(len(ts)))
	for _, t := range ts {
		w.Term(t)
	}
}

// Terms consumes a length-prefixed []logic.Term.
func (r *Reader) Terms() []logic.Term {
	n := r.sliceLen(1)
	if n == 0 {
		return nil
	}
	out := make([]logic.Term, n)
	for i := range out {
		out[i] = r.Term()
	}
	return out
}

// Literal appends one logic.Literal: negation flag, then the atom.
func (w *Writer) Literal(l logic.Literal) {
	w.Bool(l.Neg)
	w.Term(l.Atom)
}

// Literal consumes one logic.Literal.
func (r *Reader) Literal() logic.Literal {
	neg := r.Bool()
	return logic.Literal{Neg: neg, Atom: r.Term()}
}

// Literals appends a length-prefixed []logic.Literal.
func (w *Writer) Literals(ls []logic.Literal) {
	w.Uvarint(uint64(len(ls)))
	for _, l := range ls {
		w.Literal(l)
	}
}

// Literals consumes a length-prefixed []logic.Literal.
func (r *Reader) Literals() []logic.Literal {
	n := r.sliceLen(2)
	if n == 0 {
		return nil
	}
	out := make([]logic.Literal, n)
	for i := range out {
		out[i] = r.Literal()
	}
	return out
}

// Clause appends one logic.Clause: head term, then body literals.
func (w *Writer) Clause(c logic.Clause) {
	w.Term(c.Head)
	w.Literals(c.Body)
}

// Clause consumes one logic.Clause.
func (r *Reader) Clause() logic.Clause {
	head := r.Term()
	return logic.Clause{Head: head, Body: r.Literals()}
}

// Clauses appends a length-prefixed []logic.Clause.
func (w *Writer) Clauses(cs []logic.Clause) {
	w.Uvarint(uint64(len(cs)))
	for _, c := range cs {
		w.Clause(c)
	}
}

// Clauses consumes a length-prefixed []logic.Clause.
func (r *Reader) Clauses() []logic.Clause {
	n := r.sliceLen(2)
	if n == 0 {
		return nil
	}
	out := make([]logic.Clause, n)
	for i := range out {
		out[i] = r.Clause()
	}
	return out
}

// --- envelope ---

// Seal encodes m and wraps it in the compression envelope: a flag byte
// of 0 (raw) or 1 (flate), then the body. Bodies of CompressMin bytes
// or more are flate-compressed when that actually shrinks the frame.
// Flate with a fixed input and level is deterministic, so sealed frames
// stay byte-stable — the virtual clock's byte accounting depends on it.
func Seal(m Marshaler) []byte {
	w := Writer{B: make([]byte, 1, 128)} // B[0] is already flagRaw
	m.AppendWire(&w)
	return Compress(w.B)
}

// Compress applies the envelope's compression policy to an
// already-flag-prefixed payload (payload[0] must be flagRaw). It is
// split out of Seal so non-message blobs — snapshot publishes — share
// the exact threshold and framing.
func Compress(payload []byte) []byte {
	if len(payload) == 0 {
		return payload
	}
	body := payload[1:]
	if len(body) < CompressMin {
		return payload
	}
	var zb bytes.Buffer
	zb.Grow(len(body) / 2)
	zb.WriteByte(flagFlate)
	zw, err := flate.NewWriter(&zb, flate.DefaultCompression)
	if err != nil {
		return payload // impossible for a valid level; ship raw
	}
	if _, err := zw.Write(body); err != nil {
		return payload
	}
	if err := zw.Close(); err != nil {
		return payload
	}
	if zb.Len() >= len(payload) {
		return payload // incompressible body: raw is smaller
	}
	return zb.Bytes()
}

// Decompress strips the envelope and returns the raw body. It is the
// inverse of Compress.
func Decompress(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrTruncated)
	}
	switch payload[0] {
	case flagRaw:
		return payload[1:], nil
	case flagFlate:
		fr := flate.NewReader(bytes.NewReader(payload[1:]))
		body, err := io.ReadAll(io.LimitReader(fr, maxInflate))
		if err != nil {
			return nil, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
		}
		if len(body) >= maxInflate {
			return nil, fmt.Errorf("%w: frame inflates past %d bytes", ErrCorrupt, maxInflate)
		}
		return body, nil
	default:
		return nil, fmt.Errorf("%w: unknown envelope flag %#x", ErrCorrupt, payload[0])
	}
}

// Open strips the envelope and returns a Reader over the body.
func Open(payload []byte) (*Reader, error) {
	body, err := Decompress(payload)
	if err != nil {
		return nil, err
	}
	return NewReader(body), nil
}

// Unseal decodes a sealed payload into u. A decode that errors, or one
// that leaves unconsumed bytes (a garbled or mis-typed frame), fails.
// Partial decoders that intend to skip the tail call DiscardRest.
func Unseal(payload []byte, u Unmarshaler) error {
	r, err := Open(payload)
	if err != nil {
		return err
	}
	u.DecodeWire(r)
	if r.err != nil {
		return r.err
	}
	if n := r.Remaining(); n != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, n)
	}
	return nil
}
