package xval

import (
	"fmt"
	"testing"

	"repro/internal/logic"
)

func makeExamples(n int, pred string) []logic.Term {
	out := make([]logic.Term, n)
	for i := range out {
		out[i] = logic.MustParseTerm(fmt.Sprintf("%s(e%d)", pred, i))
	}
	return out
}

func TestKFoldPartitionProperties(t *testing.T) {
	pos := makeExamples(23, "p")
	neg := makeExamples(17, "n")
	folds, err := KFold(pos, neg, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seenPos := make(map[string]int)
	seenNeg := make(map[string]int)
	for fi, f := range folds {
		// Test + train must reconstruct the full set for each fold.
		if len(f.TestPos)+len(f.TrainPos) != len(pos) {
			t.Fatalf("fold %d: pos split %d+%d != %d", fi, len(f.TestPos), len(f.TrainPos), len(pos))
		}
		if len(f.TestNeg)+len(f.TrainNeg) != len(neg) {
			t.Fatalf("fold %d: neg split sizes wrong", fi)
		}
		// No overlap between train and test.
		inTrain := make(map[string]bool)
		for _, e := range f.TrainPos {
			inTrain[e.String()] = true
		}
		for _, e := range f.TestPos {
			if inTrain[e.String()] {
				t.Fatalf("fold %d: %s in both train and test", fi, e)
			}
			seenPos[e.String()]++
		}
		for _, e := range f.TestNeg {
			seenNeg[e.String()]++
		}
		// Balanced fold sizes (within one example).
		if len(f.TestPos) < len(pos)/5 || len(f.TestPos) > len(pos)/5+1 {
			t.Fatalf("fold %d: unbalanced test pos size %d", fi, len(f.TestPos))
		}
	}
	// Every example appears in exactly one test fold.
	if len(seenPos) != len(pos) || len(seenNeg) != len(neg) {
		t.Fatalf("coverage: %d pos, %d neg in test folds", len(seenPos), len(seenNeg))
	}
	for k, c := range seenPos {
		if c != 1 {
			t.Fatalf("%s appears in %d test folds", k, c)
		}
	}
}

func TestKFoldDeterministicBySeed(t *testing.T) {
	pos := makeExamples(20, "p")
	neg := makeExamples(20, "n")
	f1, _ := KFold(pos, neg, 4, 7)
	f2, _ := KFold(pos, neg, 4, 7)
	f3, _ := KFold(pos, neg, 4, 8)
	for i := range f1 {
		if fmt.Sprint(f1[i].TestPos) != fmt.Sprint(f2[i].TestPos) {
			t.Fatal("same seed produced different folds")
		}
	}
	same := true
	for i := range f1 {
		if fmt.Sprint(f1[i].TestPos) != fmt.Sprint(f3[i].TestPos) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical folds (suspicious)")
	}
}

func TestKFoldShufflesAcrossFolds(t *testing.T) {
	pos := makeExamples(30, "p")
	neg := makeExamples(10, "n")
	folds, err := KFold(pos, neg, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The first fold should not simply be the first 6 examples in order.
	inOrder := true
	for i, e := range folds[0].TestPos {
		if e.String() != fmt.Sprintf("p(e%d)", i) {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("fold 0 is the unshuffled prefix")
	}
}

func TestKFoldErrors(t *testing.T) {
	pos := makeExamples(3, "p")
	neg := makeExamples(3, "n")
	if _, err := KFold(pos, neg, 1, 0); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := KFold(pos, neg, 5, 0); err == nil {
		t.Fatal("k > len(pos) accepted")
	}
}

func TestKFoldEmptyNegatives(t *testing.T) {
	pos := makeExamples(10, "p")
	folds, err := KFold(pos, nil, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range folds {
		if len(f.TestNeg) != 0 || len(f.TrainNeg) != 0 {
			t.Fatal("phantom negatives")
		}
	}
}
