// Package xval implements stratified k-fold cross-validation, the paper's
// evaluation protocol (§5.2: 5-fold CV, values averaged over the folds).
package xval

import (
	"fmt"

	"repro/internal/logic"
)

// Fold is one train/test split.
type Fold struct {
	TrainPos, TrainNeg []logic.Term
	TestPos, TestNeg   []logic.Term
}

// KFold produces k stratified folds: positives and negatives are shuffled
// independently with the seed and dealt round-robin, so every fold's class
// balance matches the full set to within one example.
func KFold(pos, neg []logic.Term, k int, seed int64) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("xval: k must be ≥ 2, got %d", k)
	}
	if len(pos) < k {
		return nil, fmt.Errorf("xval: %d positives cannot fill %d folds", len(pos), k)
	}
	posIdx := shuffled(len(pos), seed)
	negIdx := shuffled(len(neg), seed+1)
	posFold := make([][]logic.Term, k)
	negFold := make([][]logic.Term, k)
	for i, ix := range posIdx {
		posFold[i%k] = append(posFold[i%k], pos[ix])
	}
	for i, ix := range negIdx {
		negFold[i%k] = append(negFold[i%k], neg[ix])
	}
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		fold := &folds[f]
		fold.TestPos = posFold[f]
		fold.TestNeg = negFold[f]
		for g := 0; g < k; g++ {
			if g == f {
				continue
			}
			fold.TrainPos = append(fold.TrainPos, posFold[g]...)
			fold.TrainNeg = append(fold.TrainNeg, negFold[g]...)
		}
	}
	return folds, nil
}

// shuffled returns a seeded permutation of 0..n-1 (xorshift64*, matching the
// partitioner used elsewhere so runs are reproducible end to end).
func shuffled(n int, seed int64) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 0x2545F4914F6CDD1D
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx
}
