package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := []byte("the master state at boundary 3")
	if _, err := Save(dir, 3, want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, seq, err := LoadLatest(dir)
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if seq != 3 || !bytes.Equal(got, want) {
		t.Fatalf("got seq=%d payload=%q, want seq=3 payload=%q", seq, got, want)
	}
}

func TestLoadLatestPicksNewest(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := Save(dir, seq, []byte{byte(seq)}); err != nil {
			t.Fatalf("Save %d: %v", seq, err)
		}
	}
	got, seq, err := LoadLatest(dir)
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if seq != 3 || !bytes.Equal(got, []byte{3}) {
		t.Fatalf("got seq=%d payload=%v, want newest (seq 3)", seq, got)
	}
}

// TestTornWriteFallsBackToPreviousGood truncates the newest snapshot
// mid-file — the on-disk shape a crash during a non-atomic write would
// leave — and asserts recovery silently falls back to the previous good one.
func TestTornWriteFallsBackToPreviousGood(t *testing.T) {
	dir := t.TempDir()
	good := []byte("boundary 7: theory with 4 clauses")
	if _, err := Save(dir, 7, good); err != nil {
		t.Fatalf("Save: %v", err)
	}
	newest, err := Save(dir, 8, []byte("boundary 8: this write will be torn"))
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(newest, info.Size()/2); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	got, seq, err := LoadLatest(dir)
	if err != nil {
		t.Fatalf("LoadLatest after torn write: %v", err)
	}
	if seq != 7 || !bytes.Equal(got, good) {
		t.Fatalf("got seq=%d payload=%q, want fallback to seq 7", seq, got)
	}
}

func TestCorruptPayloadFallsBack(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, 1, []byte("good")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	newest, err := Save(dir, 2, []byte("soon to be flipped"))
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	b[len(b)-1] ^= 0xFF // flip a payload bit: length intact, CRC must catch it
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, seq, err := LoadLatest(dir)
	if err != nil {
		t.Fatalf("LoadLatest after corruption: %v", err)
	}
	if seq != 1 || string(got) != "good" {
		t.Fatalf("got seq=%d payload=%q, want fallback to seq 1", seq, got)
	}
}

func TestEmptyDirReportsNoSnapshot(t *testing.T) {
	if _, _, err := LoadLatest(t.TempDir()); err != ErrNoSnapshot {
		t.Fatalf("got %v, want ErrNoSnapshot", err)
	}
	if _, _, err := LoadLatest(filepath.Join(t.TempDir(), "missing")); err != ErrNoSnapshot {
		t.Fatalf("missing dir: got %v, want ErrNoSnapshot", err)
	}
}

func TestPruneKeepsTwo(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := Save(dir, seq, []byte{byte(seq)}); err != nil {
			t.Fatalf("Save %d: %v", seq, err)
		}
	}
	names, err := snapshots(dir)
	if err != nil {
		t.Fatalf("snapshots: %v", err)
	}
	if len(names) != keepSnapshots {
		t.Fatalf("kept %d snapshots %v, want %d", len(names), names, keepSnapshots)
	}
	if seqOf(names[len(names)-1]) != 5 {
		t.Fatalf("newest kept is %v, want seq 5", names)
	}
}
