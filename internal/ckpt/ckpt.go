// Package ckpt stores durable, versioned snapshots of a coordinator's state
// so a crashed process can resume from the last completed boundary instead of
// forfeiting the run.
//
// The package is deliberately payload-agnostic: callers hand it opaque bytes
// (the master gob-encodes its own record) and ckpt guarantees only atomicity
// and integrity. Each snapshot is one file, `ckpt-<seq>.snap`, written as
// tmp + fsync + rename (+ directory fsync), so a crash mid-write can never
// replace a good snapshot with a torn one. The file header carries a magic,
// a format version, the payload length and a CRC-32 over the payload;
// LoadLatest walks snapshots newest-first and the first one that validates
// wins, so a torn or corrupted newest file silently falls back to the
// previous good snapshot.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// magic identifies a snapshot file; version gates future format changes.
const (
	magic   = "P2CKPT\x00\x01"
	version = 1
)

// headerSize is magic + version (u32) + payload length (u64) + CRC-32 (u32).
const headerSize = len(magic) + 4 + 8 + 4

// keepSnapshots is how many good snapshots Save retains. Two, not one: the
// newest may be the file a crash tore, and recovery then needs its
// predecessor intact.
const keepSnapshots = 2

// ErrNoSnapshot is returned by LoadLatest when the directory holds no valid
// snapshot at all.
var ErrNoSnapshot = errors.New("ckpt: no valid snapshot")

// Save atomically writes payload as snapshot seq under dir, creating dir if
// needed, then prunes all but the newest keepSnapshots snapshot files. seq
// must increase across calls — LoadLatest trusts it for recency ordering.
func Save(dir string, seq uint64, payload []byte) (string, error) {
	final := filepath.Join(dir, fmt.Sprintf("ckpt-%016d.snap", seq))
	if err := WriteFile(final, payload); err != nil {
		return "", err
	}
	prune(dir)
	return final, nil
}

// WriteFile atomically writes payload to path in the checked snapshot
// format (magic, format version, payload length, CRC-32; tmp + fsync +
// rename + directory fsync), creating the parent directory if needed. It is
// the raw write primitive behind Save, exported for other durable-artifact
// stores (the serving layer's theory snapshots) that want the same
// integrity guarantees under their own naming and retention policy.
func WriteFile(path string, payload []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed

	hdr := make([]byte, headerSize)
	n := copy(hdr, magic)
	binary.BigEndian.PutUint32(hdr[n:], version)
	binary.BigEndian.PutUint64(hdr[n+4:], uint64(len(payload)))
	binary.BigEndian.PutUint32(hdr[n+12:], crc32.ChecksumIEEE(payload))
	if _, err := tmp.Write(hdr); err == nil {
		_, err = tmp.Write(payload)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: fsync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	syncDir(dir) // make the rename itself durable; best-effort
	return nil
}

// LoadLatest returns the payload and sequence number of the newest snapshot
// under dir that passes integrity checks, skipping torn or corrupt files.
func LoadLatest(dir string) ([]byte, uint64, error) {
	names, err := snapshots(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("ckpt: %w", err)
	}
	for i := len(names) - 1; i >= 0; i-- { // newest first
		payload, err := read(filepath.Join(dir, names[i]))
		if err != nil {
			continue // torn or corrupt: the previous good snapshot wins
		}
		return payload, seqOf(names[i]), nil
	}
	return nil, 0, ErrNoSnapshot
}

// ReadFile validates and returns one checked-format file's payload —
// the read side of WriteFile.
func ReadFile(path string) ([]byte, error) { return read(path) }

// read validates and returns one snapshot file's payload.
func read(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < headerSize || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("ckpt: %s: bad header", path)
	}
	n := len(magic)
	if v := binary.BigEndian.Uint32(b[n:]); v != version {
		return nil, fmt.Errorf("ckpt: %s: unsupported version %d", path, v)
	}
	plen := binary.BigEndian.Uint64(b[n+4:])
	sum := binary.BigEndian.Uint32(b[n+12:])
	payload := b[headerSize:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("ckpt: %s: torn write (%d of %d payload bytes)", path, len(payload), plen)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("ckpt: %s: checksum mismatch", path)
	}
	return payload, nil
}

// snapshots lists snapshot file names under dir sorted by sequence number.
func snapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "ckpt-") && strings.HasSuffix(e.Name(), ".snap") {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool { return seqOf(names[i]) < seqOf(names[j]) })
	return names, nil
}

func seqOf(name string) uint64 {
	s := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".snap")
	seq, _ := strconv.ParseUint(s, 10, 64)
	return seq
}

// prune removes all but the newest keepSnapshots snapshot files; best-effort.
func prune(dir string) {
	names, err := snapshots(dir)
	if err != nil || len(names) <= keepSnapshots {
		return
	}
	for _, name := range names[:len(names)-keepSnapshots] {
		os.Remove(filepath.Join(dir, name))
	}
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
