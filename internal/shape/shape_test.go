package shape

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Config
		err  bool
	}{
		{"", Config{}, false},
		{"lat=5ms", Config{Latency: 5 * time.Millisecond}, false},
		{"bw=100mbit", Config{BandwidthBps: 12.5e6}, false},
		{"lat=5ms,bw=100mbit", Config{Latency: 5 * time.Millisecond, BandwidthBps: 12.5e6}, false},
		{"bw=1gbit", Config{BandwidthBps: 125e6}, false},
		{"bw=8kbit", Config{BandwidthBps: 1e3}, false},
		{"bw=1000000", Config{BandwidthBps: 1e6}, false}, // bare bytes/s
		{"lat=abc", Config{}, true},
		{"lat=-5ms", Config{}, true},
		{"bw=0mbit", Config{}, true},
		{"speed=9", Config{}, true},
		{"latency", Config{}, true},
	} {
		got, err := Parse(tc.in)
		if (err != nil) != tc.err {
			t.Fatalf("Parse(%q): err = %v, want error=%v", tc.in, err, tc.err)
		}
		if err == nil && got != tc.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestZeroConfigWrapsNothing(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if got := (Config{}).Wrap(a); got != a {
		t.Fatal("zero config wrapped the conn")
	}
}

// pipePair returns a shaped TCP loopback pair: c1 is wrapped, c2 raw.
func pipePair(t *testing.T, cfg Config) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { c1.Close(); r.c.Close() })
	return cfg.Wrap(c1), r.c
}

// TestLatencyDelaysReads pins the propagation-delay half: a byte written
// by the peer becomes readable only one latency later.
func TestLatencyDelaysReads(t *testing.T) {
	const lat = 50 * time.Millisecond
	shaped, raw := pipePair(t, Config{Latency: lat})
	start := time.Now()
	if _, err := raw.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := shaped.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < lat {
		t.Fatalf("read completed in %v, want >= %v", d, lat)
	}
}

// TestBandwidthPacesWrites pins the throughput half: shipping n bytes
// through a bw-limited conn takes at least n/bw seconds.
func TestBandwidthPacesWrites(t *testing.T) {
	const bw = 1 << 20 // 1 MiB/s
	shaped, raw := pipePair(t, Config{BandwidthBps: bw})
	go func() {
		buf := make([]byte, 32<<10)
		for {
			if _, err := raw.Read(buf); err != nil {
				return
			}
		}
	}()
	payload := make([]byte, 256<<10) // 256 KiB at 1 MiB/s = 250ms
	start := time.Now()
	for off := 0; off < len(payload); off += 32 << 10 {
		if _, err := shaped.Write(payload[off : off+32<<10]); err != nil {
			t.Fatal(err)
		}
	}
	want := time.Duration(float64(len(payload)-32<<10) / bw * float64(time.Second))
	if d := time.Since(start); d < want {
		t.Fatalf("wrote %d bytes in %v, want >= %v at %d B/s", len(payload), d, want, bw)
	}
}

// TestReadDeadlineUnblocks pins the deadline contract the join handshakes
// rely on: a Read waiting out the latency returns ErrDeadlineExceeded
// when the deadline lands first, and the conn remains usable after.
func TestReadDeadlineUnblocks(t *testing.T) {
	shaped, raw := pipePair(t, Config{Latency: 10 * time.Second})
	shaped.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 1)
	done := make(chan error, 1)
	go func() {
		_, err := shaped.Read(buf)
		done <- err
	}()
	if _, err := raw.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("read err = %v, want deadline exceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read did not honor the deadline")
	}
}

// TestEOFAfterQueueDrains pins shutdown ordering: data already in flight
// is still delivered (after its latency) before the peer's close
// surfaces as an error.
func TestEOFAfterQueueDrains(t *testing.T) {
	shaped, raw := pipePair(t, Config{Latency: 20 * time.Millisecond})
	if _, err := raw.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	buf := make([]byte, 8)
	n, err := shaped.Read(buf)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("read after close: %q, %v", buf[:n], err)
	}
	if _, err := shaped.Read(buf); err == nil {
		t.Fatal("second read succeeded after peer close")
	}
}

func TestString(t *testing.T) {
	if got := (Config{}).String(); got != "unshaped" {
		t.Fatalf("zero config String() = %q", got)
	}
	c := Config{Latency: 5 * time.Millisecond, BandwidthBps: 12.5e6}
	if got := c.String(); got != "lat=5ms,bw=100mbit" {
		t.Fatalf("String() = %q", got)
	}
}
