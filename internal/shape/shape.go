// Package shape throttles net.Conn traffic in userspace — a tc/netem
// in miniature that needs no root and no kernel qdiscs — so the TCP
// transport can be benchmarked on links that behave like real cluster
// interconnects instead of loopback.
//
// Two knobs, matching cluster.CostModel's two transfer terms:
//
//   - Latency: every byte becomes readable one propagation delay after
//     the peer wrote it. Implemented on the receive side: a pump
//     goroutine drains the underlying conn and stamps each chunk with a
//     due time; Read blocks until the head chunk matures.
//   - BandwidthBps: writes are paced through a token-bucket meter, so a
//     B-byte burst occupies the link for B/bandwidth seconds.
//
// A round trip over a wrapped pair therefore costs ~2×latency plus the
// bandwidth terms, and a one-way transfer costs latency + bytes/bw —
// exactly the shape of CostModel.TransferTime, which is what lets
// PERF.md compare sim-clock predictions against measured wall time on a
// shaped link.
//
// Deadlines are honoured: SetReadDeadline unblocks a Read waiting for
// a chunk to mature (netcluster's handshakes depend on this), and write
// deadlines pass through to the underlying conn after pacing.
package shape

import (
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// Config describes one link shape. The zero value shapes nothing.
type Config struct {
	// Latency is the one-way propagation delay added to every read.
	Latency time.Duration
	// BandwidthBps is the link bandwidth in bytes per second; 0 means
	// unlimited.
	BandwidthBps float64
}

// Enabled reports whether the config actually shapes anything.
func (c Config) Enabled() bool { return c.Latency > 0 || c.BandwidthBps > 0 }

func (c Config) String() string {
	if !c.Enabled() {
		return "unshaped"
	}
	parts := []string{}
	if c.Latency > 0 {
		parts = append(parts, fmt.Sprintf("lat=%s", c.Latency))
	}
	if c.BandwidthBps > 0 {
		parts = append(parts, fmt.Sprintf("bw=%.3gmbit", c.BandwidthBps*8/1e6))
	}
	return strings.Join(parts, ",")
}

// Parse reads a -shape flag value: comma-separated key=value pairs,
// e.g. "lat=5ms,bw=100mbit". Keys: lat (any time.Duration) and bw (a
// rate: <number>bit|kbit|mbit|gbit in bits per second, or a bare
// number in bytes per second).
func Parse(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, found := strings.Cut(strings.TrimSpace(kv), "=")
		if !found {
			return Config{}, fmt.Errorf("shape: %q is not key=value (want e.g. lat=5ms,bw=100mbit)", kv)
		}
		switch k {
		case "lat":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return Config{}, fmt.Errorf("shape: bad latency %q (want a duration like 5ms)", v)
			}
			c.Latency = d
		case "bw":
			bps, err := parseRate(v)
			if err != nil {
				return Config{}, err
			}
			c.BandwidthBps = bps
		default:
			return Config{}, fmt.Errorf("shape: unknown key %q (want lat or bw)", k)
		}
	}
	return c, nil
}

// parseRate converts "100mbit"-style rates to bytes per second.
func parseRate(s string) (float64, error) {
	mult := 0.0 // bits multiplier; 0 = bare bytes/s
	num := s
	for _, u := range []struct {
		suffix string
		bits   float64
	}{{"gbit", 1e9}, {"mbit", 1e6}, {"kbit", 1e3}, {"bit", 1}} {
		if strings.HasSuffix(s, u.suffix) {
			num, mult = strings.TrimSuffix(s, u.suffix), u.bits
			break
		}
	}
	var v float64
	if _, err := fmt.Sscanf(num, "%g", &v); err != nil || v <= 0 {
		return 0, fmt.Errorf("shape: bad rate %q (want e.g. 100mbit, 12.5mbit, or bytes/s)", s)
	}
	if mult == 0 {
		return v, nil // bytes per second
	}
	return v * mult / 8, nil
}

// Wrap shapes one connection. With a zero config the conn is returned
// untouched.
func (c Config) Wrap(conn net.Conn) net.Conn {
	if !c.Enabled() {
		return conn
	}
	sc := &shapedConn{Conn: conn, cfg: c}
	sc.rcond = sync.NewCond(&sc.rmu)
	go sc.pump()
	return sc
}

// chunk is a received byte run and the instant it becomes deliverable.
type chunk struct {
	data []byte
	due  time.Time
}

type shapedConn struct {
	net.Conn
	cfg Config

	// Write pacing: wfree is when the simulated link next frees up.
	wmu   sync.Mutex
	wfree time.Time

	// Read path: pump appends matured-later chunks, Read consumes them.
	rmu    sync.Mutex
	rcond  *sync.Cond
	rqueue []chunk
	rerr   error     // terminal pump error (EOF, reset), after the queue drains
	rdl    time.Time // read deadline; zero = none
}

// pump drains the underlying conn as fast as TCP delivers, stamping
// each chunk one propagation delay into the future. Draining eagerly
// matters: the latency must not backpressure the peer's writes, or it
// would (wrongly) count against bandwidth too.
func (sc *shapedConn) pump() {
	buf := make([]byte, 32<<10)
	for {
		n, err := sc.Conn.Read(buf)
		if n > 0 {
			data := append([]byte(nil), buf[:n]...)
			sc.rmu.Lock()
			sc.rqueue = append(sc.rqueue, chunk{data: data, due: time.Now().Add(sc.cfg.Latency)})
			sc.rcond.Broadcast()
			sc.rmu.Unlock()
		}
		if err != nil {
			sc.rmu.Lock()
			sc.rerr = err
			sc.rcond.Broadcast()
			sc.rmu.Unlock()
			return
		}
	}
}

// waitUntil blocks (holding rmu) until roughly t, a broadcast, or
// spuriously — callers re-check their condition in a loop.
func (sc *shapedConn) waitUntil(t time.Time) {
	d := time.Until(t)
	if d <= 0 {
		return
	}
	timer := time.AfterFunc(d, func() {
		sc.rmu.Lock()
		sc.rcond.Broadcast()
		sc.rmu.Unlock()
	})
	sc.rcond.Wait()
	timer.Stop()
}

func (sc *shapedConn) Read(p []byte) (int, error) {
	sc.rmu.Lock()
	defer sc.rmu.Unlock()
	for {
		if !sc.rdl.IsZero() && !time.Now().Before(sc.rdl) {
			return 0, os.ErrDeadlineExceeded
		}
		if len(sc.rqueue) > 0 {
			head := &sc.rqueue[0]
			now := time.Now()
			if head.due.After(now) {
				// Wake at whichever comes first: maturity or the deadline.
				wake := head.due
				if !sc.rdl.IsZero() && sc.rdl.Before(wake) {
					wake = sc.rdl
				}
				sc.waitUntil(wake)
				continue
			}
			n := copy(p, head.data)
			if n < len(head.data) {
				head.data = head.data[n:]
			} else {
				sc.rqueue = sc.rqueue[1:]
			}
			return n, nil
		}
		if sc.rerr != nil {
			return 0, sc.rerr
		}
		if sc.rdl.IsZero() {
			sc.rcond.Wait()
		} else {
			sc.waitUntil(sc.rdl)
		}
	}
}

// Write paces the burst through the bandwidth meter, then writes it
// whole to the underlying conn. The meter is a virtual link-busy clock:
// each burst reserves len/bw seconds of link time, and the writer
// sleeps until its reservation starts, so sustained throughput
// converges on BandwidthBps without per-byte sleeping.
func (sc *shapedConn) Write(p []byte) (int, error) {
	if sc.cfg.BandwidthBps > 0 && len(p) > 0 {
		sc.wmu.Lock()
		now := time.Now()
		if sc.wfree.Before(now) {
			sc.wfree = now
		}
		start := sc.wfree
		sc.wfree = start.Add(time.Duration(float64(len(p)) / sc.cfg.BandwidthBps * float64(time.Second)))
		sc.wmu.Unlock()
		time.Sleep(time.Until(start))
	}
	return sc.Conn.Write(p)
}

func (sc *shapedConn) SetReadDeadline(t time.Time) error {
	sc.rmu.Lock()
	sc.rdl = t
	sc.rcond.Broadcast()
	sc.rmu.Unlock()
	// The pump owns reads on the underlying conn and must keep running
	// past caller deadlines, so the deadline is enforced locally only.
	return nil
}

func (sc *shapedConn) SetWriteDeadline(t time.Time) error {
	return sc.Conn.SetWriteDeadline(t)
}

func (sc *shapedConn) SetDeadline(t time.Time) error {
	err := sc.SetWriteDeadline(t)
	sc.SetReadDeadline(t)
	return err
}
