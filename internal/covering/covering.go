// Package covering implements the sequential MDIE covering algorithm of the
// paper's Figure 1: repeatedly select an uncovered positive example,
// saturate it into a bottom clause, search for the best acceptable rule,
// add it to the theory and retract the positives it covers, until every
// positive example is explained.
//
// This is the April-equivalent baseline all the paper's speedup tables are
// measured against.
package covering

import (
	"time"

	"repro/internal/bottom"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// Config parameterises a sequential run.
type Config struct {
	// Search configures the per-rule search (Fig. 2).
	Search search.Settings
	// Bottom configures saturation.
	Bottom bottom.Options
	// Budget bounds each individual proof.
	Budget solve.Budget
	// MaxRules stops a runaway covering loop. ≤0 means 1000.
	MaxRules int
	// AddLearnedToBK, when set, asserts each accepted rule into the
	// background knowledge before continuing (the paper's Fig. 6
	// mark_covered does this on workers; the sequential Fig. 1 does not,
	// so the default is off).
	AddLearnedToBK bool
	// CoverParallelism selects the coverage evaluator: ≤1 tests examples
	// serially on the learner's own machine, n > 1 shards coverage tests
	// across n goroutines, and a negative value selects GOMAXPROCS. The
	// learned theory is identical in all cases; only wall-clock changes.
	CoverParallelism int
}

func (c Config) withDefaults() Config {
	if c.MaxRules <= 0 {
		c.MaxRules = 1000
	}
	return c
}

// Result summarises a sequential covering run.
type Result struct {
	// Theory is the learned rule set, in acceptance order.
	Theory []logic.Clause
	// RulesLearned counts searched (non-fallback) rules in the theory.
	RulesLearned int
	// GroundFactsAdopted counts positives adopted verbatim because no
	// acceptable rule generalised them.
	GroundFactsAdopted int
	// Searches counts learn_rule invocations (one per covering iteration).
	Searches int
	// GeneratedRules counts rules evaluated across all searches.
	GeneratedRules int
	// Inferences is the total SLD work performed.
	Inferences int64
	// Duration is the wall-clock time of the run.
	Duration time.Duration
}

// Learn runs the covering loop over ex (mutating its alive mask) against the
// background kb under the mode set ms.
func Learn(kb *solve.KB, ex *search.Examples, ms *mode.Set, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	m := solve.NewMachine(kb, cfg.Budget)
	m.SetNoVM(cfg.Search.NoVM)
	ev := search.NewFullCoverer(m, ex, cfg.Budget, cfg.CoverParallelism)
	defer ev.Close()
	res := &Result{}

	for ex.NumPosAlive() > 0 && len(res.Theory) < cfg.MaxRules {
		seed := ex.FirstAlivePos()
		example := ex.Pos[seed]
		bot, err := bottom.Construct(m, ms, example, cfg.Bottom)
		if err != nil {
			return nil, err
		}
		sr := search.LearnRule(ev, bot, nil, cfg.Search)
		res.Searches++
		res.GeneratedRules += sr.Generated
		best := sr.Best()
		if best == nil || best.PosCover().Empty() {
			// No acceptable generalisation: adopt the example itself so the
			// loop always progresses (Aleph's standard fallback).
			res.Theory = append(res.Theory, logic.Fact(example))
			res.GroundFactsAdopted++
			single := search.NewBitset(len(ex.Pos))
			single.Set(seed)
			ex.RetractPos(single)
			continue
		}
		clause := best.Materialize(bot).Canonical()
		res.Theory = append(res.Theory, clause)
		res.RulesLearned++
		ex.RetractPos(best.PosCover())
		if cfg.AddLearnedToBK {
			m.KB().Add(clause)
		}
	}

	res.Inferences = m.TotalInferences() + ev.OwnInferences()
	res.Duration = time.Since(start)
	return res, nil
}

// Accuracy evaluates a theory on a labelled test set and returns the
// fraction of correctly classified examples: covered positives plus
// uncovered negatives over all examples.
func Accuracy(kb *solve.KB, theory []logic.Clause, pos, neg []logic.Term, budget solve.Budget) float64 {
	if len(pos)+len(neg) == 0 {
		return 0
	}
	m := solve.NewMachine(kb, budget)
	correct := 0
	for _, e := range pos {
		if search.TheoryCovers(m, theory, e) {
			correct++
		}
	}
	for _, e := range neg {
		if !search.TheoryCovers(m, theory, e) {
			correct++
		}
	}
	return float64(correct) / float64(len(pos)+len(neg))
}
