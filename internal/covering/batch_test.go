package covering

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/search"
)

// TestBatchedSearchMatchesUnbatchedOnPaperDatasets pins the PR's acceptance
// invariant at the covering level: whole-frontier batched candidate
// evaluation must be a pure performance change. The full covering loop runs
// on each paper dataset with batching on and off, serial and pooled, and
// every observable — theory, rule/fact counts, generated-rule counts, total
// inference charge — must be bit-for-bit identical.
func TestBatchedSearchMatchesUnbatchedOnPaperDatasets(t *testing.T) {
	for _, ds := range datasets.PaperScaled(0.1, 7) {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			run := func(noBatch bool, parallelism int) *Result {
				cfg := Config{
					Search:           ds.Search,
					Bottom:           ds.Bottom,
					Budget:           ds.Budget,
					CoverParallelism: parallelism,
				}
				cfg.Search.NoBatchEval = noBatch
				ex := search.NewExamples(ds.Pos, ds.Neg)
				res, err := Learn(ds.KB, ex, ds.Modes, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := run(true, 0) // the pre-batch reference path
			for _, c := range []struct {
				name        string
				noBatch     bool
				parallelism int
			}{
				{"batched-serial", false, 0},
				{"batched-pool", false, 4},
			} {
				got := run(c.noBatch, c.parallelism)
				if len(got.Theory) != len(want.Theory) {
					t.Fatalf("%s: theory size %d, want %d", c.name, len(got.Theory), len(want.Theory))
				}
				for i := range want.Theory {
					if got.Theory[i].String() != want.Theory[i].String() {
						t.Fatalf("%s: rule %d: %s, want %s", c.name, i, got.Theory[i], want.Theory[i])
					}
				}
				if got.RulesLearned != want.RulesLearned || got.GroundFactsAdopted != want.GroundFactsAdopted ||
					got.Searches != want.Searches || got.GeneratedRules != want.GeneratedRules {
					t.Fatalf("%s: counts (%d,%d,%d,%d), want (%d,%d,%d,%d)", c.name,
						got.RulesLearned, got.GroundFactsAdopted, got.Searches, got.GeneratedRules,
						want.RulesLearned, want.GroundFactsAdopted, want.Searches, want.GeneratedRules)
				}
				if got.Inferences != want.Inferences {
					t.Fatalf("%s: inferences %d, want %d", c.name, got.Inferences, want.Inferences)
				}
			}
		})
	}
}
