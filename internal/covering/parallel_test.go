package covering

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/search"
)

// TestParallelCoverageMatchesSerialOnPaperDatasets runs the full covering
// loop on each paper dataset twice — serial coverage testing and sharded
// across 4 goroutines — and requires bit-for-bit identical outcomes: same
// theory, same rule/fact counts, same total inference charge. Per-query
// inference costs are independent of which machine runs the query, so even
// the work accounting must agree exactly.
func TestParallelCoverageMatchesSerialOnPaperDatasets(t *testing.T) {
	for _, ds := range datasets.PaperScaled(0.1, 7) {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			run := func(parallelism int) *Result {
				ex := search.NewExamples(ds.Pos, ds.Neg)
				res, err := Learn(ds.KB, ex, ds.Modes, Config{
					Search:           ds.Search,
					Bottom:           ds.Bottom,
					Budget:           ds.Budget,
					CoverParallelism: parallelism,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial := run(0)
			par := run(4)
			if len(serial.Theory) != len(par.Theory) {
				t.Fatalf("theory size: serial %d, parallel %d", len(serial.Theory), len(par.Theory))
			}
			for i := range serial.Theory {
				if serial.Theory[i].String() != par.Theory[i].String() {
					t.Fatalf("rule %d: serial %s, parallel %s", i, serial.Theory[i], par.Theory[i])
				}
			}
			if serial.RulesLearned != par.RulesLearned || serial.GroundFactsAdopted != par.GroundFactsAdopted {
				t.Fatalf("counts: serial (%d, %d), parallel (%d, %d)",
					serial.RulesLearned, serial.GroundFactsAdopted, par.RulesLearned, par.GroundFactsAdopted)
			}
			if serial.GeneratedRules != par.GeneratedRules {
				t.Fatalf("generated: serial %d, parallel %d", serial.GeneratedRules, par.GeneratedRules)
			}
			if serial.Inferences != par.Inferences {
				t.Fatalf("inferences: serial %d, parallel %d", serial.Inferences, par.Inferences)
			}
		})
	}
}
