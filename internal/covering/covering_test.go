package covering

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// Task: mol is active iff it has an oxygen atom OR a heavy atom (weight>30).
// Two distinct rules are needed to cover all positives.
func buildTask(t *testing.T) (*solve.KB, *search.Examples, *mode.Set) {
	t.Helper()
	kb := solve.NewKB()
	var pos, neg []logic.Term
	add := func(id int, elements []string, weights []int, isPos bool) {
		mol := fmt.Sprintf("m%d", id)
		for i, el := range elements {
			atom := fmt.Sprintf("%s_a%d", mol, i)
			kb.AddFact(logic.MustParseTerm(fmt.Sprintf("atm(%s, %s, %s)", mol, atom, el)))
			kb.AddFact(logic.MustParseTerm(fmt.Sprintf("wt(%s, %d)", atom, weights[i])))
		}
		e := logic.MustParseTerm(fmt.Sprintf("active(%s)", mol))
		if isPos {
			pos = append(pos, e)
		} else {
			neg = append(neg, e)
		}
	}
	// Positives: oxygen-bearing.
	add(1, []string{"carbon", "oxygen"}, []int{12, 16}, true)
	add(2, []string{"oxygen"}, []int{16}, true)
	add(3, []string{"nitrogen", "oxygen"}, []int{14, 16}, true)
	// Positives: heavy atom.
	add(4, []string{"sulfur"}, []int{32}, true)
	add(5, []string{"chlorine", "carbon"}, []int{35, 12}, true)
	// Negatives: light, no oxygen.
	add(6, []string{"carbon", "carbon"}, []int{12, 12}, false)
	add(7, []string{"nitrogen"}, []int{14}, false)
	add(8, []string{"carbon", "nitrogen"}, []int{12, 14}, false)
	ms := mode.MustParseSet(`
		modeh(1, active(+mol)).
		modeb('*', atm(+mol, -atomid, #element)).
		modeb(1, wt(+atomid, -weight)).
		modeb(1, '>='(+weight, #weight)).
	`)
	return kb, search.NewExamples(pos, neg), ms
}

func TestLearnCoversAllPositives(t *testing.T) {
	kb, ex, ms := buildTask(t)
	// Provide threshold facts the >= mode can compare against: none needed,
	// the mode uses #weight constants from solutions... use wt directly.
	res, err := Learn(kb, ex, ms, Config{
		Search: search.Settings{MaxClauseLen: 3, MinPrec: 0.85},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumPosAlive() != 0 {
		t.Fatalf("covering left %d positives uncovered", ex.NumPosAlive())
	}
	if len(res.Theory) == 0 {
		t.Fatal("empty theory")
	}
	if res.Searches == 0 || res.GeneratedRules == 0 || res.Inferences == 0 {
		t.Fatalf("missing metrics: %+v", res)
	}
	// The theory must separate train data: no negative covered.
	acc := Accuracy(kb, res.Theory, ex.Pos, ex.Neg, solve.Budget{})
	if acc < 0.99 {
		t.Fatalf("training accuracy = %v, want ~1.0 (theory: %v)", acc, theoryStrings(res.Theory))
	}
}

func theoryStrings(theory []logic.Clause) []string {
	out := make([]string, len(theory))
	for i, c := range theory {
		out[i] = c.String()
	}
	return out
}

func TestLearnIsDeterministic(t *testing.T) {
	kb1, ex1, ms1 := buildTask(t)
	kb2, ex2, ms2 := buildTask(t)
	cfg := Config{Search: search.Settings{MaxClauseLen: 3, MinPrec: 0.85}}
	r1, err := Learn(kb1, ex1, ms1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Learn(kb2, ex2, ms2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Theory) != len(r2.Theory) {
		t.Fatalf("theory sizes differ: %d vs %d", len(r1.Theory), len(r2.Theory))
	}
	for i := range r1.Theory {
		if r1.Theory[i].String() != r2.Theory[i].String() {
			t.Fatalf("rule %d differs:\n%s\n%s", i, r1.Theory[i].String(), r2.Theory[i].String())
		}
	}
}

func TestFallbackAdoptsGroundFact(t *testing.T) {
	// A positive example indistinguishable from a negative cannot be
	// generalised at high precision; the loop must adopt it and terminate.
	kb := solve.NewKB()
	kb.AddFact(logic.MustParseTerm("atm(p1, x1, carbon)"))
	kb.AddFact(logic.MustParseTerm("atm(n1, y1, carbon)"))
	ex := search.NewExamples(
		[]logic.Term{logic.MustParseTerm("active(p1)")},
		[]logic.Term{logic.MustParseTerm("active(n1)")},
	)
	ms := mode.MustParseSet(`
		modeh(1, active(+mol)).
		modeb('*', atm(+mol, -atomid, #element)).
	`)
	res, err := Learn(kb, ex, ms, Config{Search: search.Settings{MinPrec: 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	if res.GroundFactsAdopted != 1 {
		t.Fatalf("GroundFactsAdopted = %d, want 1", res.GroundFactsAdopted)
	}
	if ex.NumPosAlive() != 0 {
		t.Fatal("fallback did not retract the example")
	}
	// The adopted fact is the example itself.
	if res.Theory[len(res.Theory)-1].String() != "active(p1)" {
		t.Fatalf("adopted theory entry: %s", res.Theory[len(res.Theory)-1].String())
	}
}

func TestMaxRulesStopsLoop(t *testing.T) {
	kb, ex, ms := buildTask(t)
	res, err := Learn(kb, ex, ms, Config{
		Search:   search.Settings{MaxClauseLen: 3, MinPrec: 0.99, MinPos: 5},
		MaxRules: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Theory) > 2 {
		t.Fatalf("MaxRules exceeded: %d", len(res.Theory))
	}
}

func TestAddLearnedToBK(t *testing.T) {
	kb, ex, ms := buildTask(t)
	before := kb.Size()
	_, err := Learn(kb, ex, ms, Config{
		Search:         search.Settings{MaxClauseLen: 3, MinPrec: 0.85},
		AddLearnedToBK: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if kb.Size() <= before {
		t.Fatal("learned rules were not asserted into the KB")
	}
}

func TestAccuracyOnHeldOut(t *testing.T) {
	kb, ex, ms := buildTask(t)
	res, err := Learn(kb, ex, ms, Config{Search: search.Settings{MaxClauseLen: 3, MinPrec: 0.85}})
	if err != nil {
		t.Fatal(err)
	}
	// Held-out molecules: one oxygen positive, one carbon-only negative.
	kb.AddFact(logic.MustParseTerm("atm(h1, h1a, oxygen)"))
	kb.AddFact(logic.MustParseTerm("wt(h1a, 16)"))
	kb.AddFact(logic.MustParseTerm("atm(h2, h2a, carbon)"))
	kb.AddFact(logic.MustParseTerm("wt(h2a, 12)"))
	acc := Accuracy(kb, res.Theory,
		[]logic.Term{logic.MustParseTerm("active(h1)")},
		[]logic.Term{logic.MustParseTerm("active(h2)")},
		solve.Budget{})
	if acc < 0.99 {
		t.Fatalf("held-out accuracy = %v; theory: %s", acc, strings.Join(theoryStrings(res.Theory), "; "))
	}
}

func TestAccuracyEmptySets(t *testing.T) {
	kb := solve.NewKB()
	if got := Accuracy(kb, nil, nil, nil, solve.Budget{}); got != 0 {
		t.Fatalf("Accuracy on empty sets = %v", got)
	}
}
