// Package trace collects and analyses simulated-cluster event streams:
// per-node busy/communication accounting, link traffic matrices, and a
// plain-text timeline rendering. It turns the cluster's raw event hook
// into the utilisation views one would use to study pipeline balance (the
// paper argues p²-mdie keeps all stages busy — these tools let a user
// check that claim on any run).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
)

// Collector accumulates events; safe for concurrent emitters.
type Collector struct {
	mu     sync.Mutex
	events []cluster.Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Hook returns the function to install via cluster.Network.SetTrace or
// core.Config.Trace.
func (c *Collector) Hook() func(cluster.Event) {
	return func(e cluster.Event) {
		c.mu.Lock()
		c.events = append(c.events, e)
		c.mu.Unlock()
	}
}

// Events returns a copy of the collected events.
func (c *Collector) Events() []cluster.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]cluster.Event(nil), c.events...)
}

// Len reports how many events were collected.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// NodeStats aggregates one node's activity.
type NodeStats struct {
	Node       int
	Sends      int
	Receives   int
	BytesOut   int64
	BytesIn    int64
	ComputeOps int
	LastClock  cluster.VTime
}

// Analysis summarises a whole run.
type Analysis struct {
	Nodes    []NodeStats
	Messages int
	Bytes    int64
	// Link[from][to] = bytes.
	Link map[int]map[int]int64
	// Makespan is the maximum clock observed on any event.
	Makespan cluster.VTime
}

// Analyze aggregates an event stream.
func Analyze(events []cluster.Event) *Analysis {
	byNode := map[int]*NodeStats{}
	get := func(id int) *NodeStats {
		ns, ok := byNode[id]
		if !ok {
			ns = &NodeStats{Node: id}
			byNode[id] = ns
		}
		return ns
	}
	an := &Analysis{Link: map[int]map[int]int64{}}
	for _, e := range events {
		ns := get(e.Node)
		if e.Clock > ns.LastClock {
			ns.LastClock = e.Clock
		}
		if e.Clock > an.Makespan {
			an.Makespan = e.Clock
		}
		switch e.Type {
		case cluster.EvSend:
			ns.Sends++
			ns.BytesOut += int64(e.Bytes)
			get(e.Peer).BytesIn += int64(e.Bytes)
			if an.Link[e.Node] == nil {
				an.Link[e.Node] = map[int]int64{}
			}
			an.Link[e.Node][e.Peer] += int64(e.Bytes)
			an.Messages++
			an.Bytes += int64(e.Bytes)
		case cluster.EvReceive:
			ns.Receives++
		case cluster.EvCompute:
			ns.ComputeOps++
		}
	}
	for _, ns := range byNode {
		an.Nodes = append(an.Nodes, *ns)
	}
	sort.Slice(an.Nodes, func(i, j int) bool { return an.Nodes[i].Node < an.Nodes[j].Node })
	return an
}

// Balance returns the ratio of the least to the most loaded worker by
// outgoing bytes, over the given node ids (1.0 = perfectly balanced;
// 0 when some worker sent nothing). The paper argues the pipeline keeps
// granularity similar across workers — this is the quantitative check.
func (a *Analysis) Balance(workers []int) float64 {
	min, max := int64(-1), int64(0)
	for _, w := range workers {
		var out int64
		for _, ns := range a.Nodes {
			if ns.Node == w {
				out = ns.BytesOut
			}
		}
		if min < 0 || out < min {
			min = out
		}
		if out > max {
			max = out
		}
	}
	if max == 0 {
		return 0
	}
	return float64(min) / float64(max)
}

// RenderSummary writes a per-node table.
func (a *Analysis) RenderSummary(w io.Writer, names map[int]string) {
	fmt.Fprintf(w, "%-10s %8s %8s %10s %10s %12s\n", "node", "sends", "recvs", "bytes out", "bytes in", "last clock")
	for _, ns := range a.Nodes {
		name := names[ns.Node]
		if name == "" {
			name = fmt.Sprintf("node%d", ns.Node)
		}
		fmt.Fprintf(w, "%-10s %8d %8d %10d %10d %11.3fms\n",
			name, ns.Sends, ns.Receives, ns.BytesOut, ns.BytesIn, float64(ns.LastClock)/1e6)
	}
}

// Timeline renders a coarse text Gantt chart of send activity: one row per
// node, time bucketed into width columns; '#' marks buckets where the node
// sent at least one message, '.' marks quiet buckets.
func Timeline(events []cluster.Event, nodes int, width int) string {
	if width <= 0 {
		width = 60
	}
	var makespan cluster.VTime
	for _, e := range events {
		if e.Clock > makespan {
			makespan = e.Clock
		}
	}
	if makespan == 0 {
		makespan = 1
	}
	rows := make([][]byte, nodes)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, e := range events {
		if e.Type != cluster.EvSend || e.Node >= nodes {
			continue
		}
		bucket := int(int64(e.Clock) * int64(width-1) / int64(makespan))
		rows[e.Node][bucket] = '#'
	}
	var b strings.Builder
	for i, row := range rows {
		fmt.Fprintf(&b, "node%-2d |%s|\n", i, row)
	}
	pad := width - 12
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "        0%s%.3fms\n", strings.Repeat(" ", pad), float64(makespan)/1e6)
	return b.String()
}
