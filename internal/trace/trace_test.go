package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasets"
)

func sampleEvents() []cluster.Event {
	ms := func(n int) cluster.VTime { return cluster.VTime(time.Duration(n) * time.Millisecond) }
	return []cluster.Event{
		{Type: cluster.EvSend, Node: 0, Peer: 1, Kind: 1, Bytes: 100, Clock: ms(0), Seq: 1},
		{Type: cluster.EvReceive, Node: 1, Peer: 0, Kind: 1, Bytes: 100, Clock: ms(1), Seq: 1},
		{Type: cluster.EvCompute, Node: 1, Peer: -1, Kind: -1, Clock: ms(5)},
		{Type: cluster.EvSend, Node: 1, Peer: 2, Kind: 2, Bytes: 400, Clock: ms(5), Seq: 2},
		{Type: cluster.EvReceive, Node: 2, Peer: 1, Kind: 2, Bytes: 400, Clock: ms(6), Seq: 2},
		{Type: cluster.EvSend, Node: 2, Peer: 0, Kind: 3, Bytes: 50, Clock: ms(8), Seq: 3},
	}
}

func TestAnalyzeAggregates(t *testing.T) {
	an := Analyze(sampleEvents())
	if an.Messages != 3 || an.Bytes != 550 {
		t.Fatalf("totals: %+v", an)
	}
	if an.Makespan != cluster.VTime(8*time.Millisecond) {
		t.Fatalf("makespan: %v", an.Makespan)
	}
	if an.Link[1][2] != 400 {
		t.Fatalf("link bytes: %+v", an.Link)
	}
	var n1 NodeStats
	for _, ns := range an.Nodes {
		if ns.Node == 1 {
			n1 = ns
		}
	}
	if n1.Sends != 1 || n1.Receives != 1 || n1.BytesOut != 400 || n1.BytesIn != 100 || n1.ComputeOps != 1 {
		t.Fatalf("node1 stats: %+v", n1)
	}
}

func TestBalance(t *testing.T) {
	an := Analyze(sampleEvents())
	// Workers 1 and 2 sent 400 and 50 bytes.
	got := an.Balance([]int{1, 2})
	if got != 50.0/400.0 {
		t.Fatalf("balance = %v", got)
	}
	if an.Balance([]int{9}) != 0 {
		t.Fatal("unknown worker should give zero balance")
	}
}

func TestRenderSummary(t *testing.T) {
	an := Analyze(sampleEvents())
	var buf bytes.Buffer
	an.RenderSummary(&buf, map[int]string{0: "master"})
	out := buf.String()
	if !strings.Contains(out, "master") || !strings.Contains(out, "node1") {
		t.Fatalf("summary: %s", out)
	}
}

func TestTimeline(t *testing.T) {
	tl := Timeline(sampleEvents(), 3, 40)
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 4 {
		t.Fatalf("timeline lines: %d\n%s", len(lines), tl)
	}
	if !strings.HasPrefix(lines[0], "node0") || !strings.Contains(lines[0], "|#") {
		t.Fatalf("node0 row should start with a send mark:\n%s", tl)
	}
	if !strings.Contains(lines[2], "#") {
		t.Fatalf("node2 row missing send mark:\n%s", tl)
	}
	// Zero events must not divide by zero.
	if got := Timeline(nil, 2, 10); !strings.Contains(got, "node0") {
		t.Fatalf("empty timeline: %q", got)
	}
}

func TestCollectorOnRealRun(t *testing.T) {
	ds := datasets.CarcinogenesisSized(16, 12, 5)
	col := NewCollector()
	met, err := core.Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, core.Config{
		Workers: 3, Width: 5, Seed: 1,
		Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
		Trace: col.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() == 0 {
		t.Fatal("no events collected")
	}
	an := Analyze(col.Events())
	if int64(an.Messages) != met.CommMessages {
		t.Fatalf("trace saw %d messages, metrics say %d", an.Messages, met.CommMessages)
	}
	if an.Bytes != met.CommBytes {
		t.Fatalf("trace saw %d bytes, metrics say %d", an.Bytes, met.CommBytes)
	}
	if an.Makespan.Duration() > met.VirtualTime {
		t.Fatalf("trace makespan %v exceeds metrics %v", an.Makespan, met.VirtualTime)
	}
	// All three workers participated.
	bal := an.Balance([]int{1, 2, 3})
	if bal <= 0 {
		t.Fatalf("some worker never sent: balance=%v", bal)
	}
}
