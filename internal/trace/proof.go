package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/solve"
)

// Proof rendering: the serving layer returns the SLD proof behind a positive
// classification as its explanation artifact. solve.ProofStep is the
// in-memory tree; this file fixes its two external encodings — an indented
// plain-text form for humans and a stable JSON form for machines. The JSON
// shape (field names, kind strings, child ordering) is a wire contract
// pinned by a golden test: /classify clients parse it.

// ProofJSONVersion identifies the proof JSON shape. Bump only with a
// corresponding golden update and changelog note.
const ProofJSONVersion = 1

// ProofNode is the JSON form of one proof step. Goal and Clause are
// canonical logic syntax (the same strings the parser accepts); Kind is one
// of "fact", "rule", "builtin", "naf". Children appear in clause-body
// order.
type ProofNode struct {
	Goal     string      `json:"goal"`
	Neg      bool        `json:"neg,omitempty"`
	Kind     string      `json:"kind"`
	Clause   string      `json:"clause,omitempty"`
	Children []ProofNode `json:"children,omitempty"`
}

// NewProofNode converts a proof tree into its JSON form.
func NewProofNode(p *solve.ProofStep) ProofNode {
	n := ProofNode{Goal: p.Goal.String(), Neg: p.Neg, Kind: p.Kind.String()}
	if p.Clause != nil {
		n.Clause = p.Clause.String()
	}
	for _, c := range p.Children {
		n.Children = append(n.Children, NewProofNode(c))
	}
	return n
}

// ProofJSON renders a proof tree as its stable JSON encoding.
func ProofJSON(p *solve.ProofStep) ([]byte, error) {
	return json.MarshalIndent(NewProofNode(p), "", "  ")
}

// RenderProof writes the indented plain-text form: one line per node,
// `\+`-prefixed for negation-as-failure, with the discharging clause after
// the goal for rule nodes.
func RenderProof(w io.Writer, p *solve.ProofStep) {
	renderProofNode(w, p, 0)
}

// ProofText renders the plain-text form as a string.
func ProofText(p *solve.ProofStep) string {
	var sb strings.Builder
	renderProofNode(&sb, p, 0)
	return sb.String()
}

func renderProofNode(w io.Writer, p *solve.ProofStep, depth int) {
	for range depth {
		io.WriteString(w, "  ")
	}
	switch p.Kind {
	case solve.ProofNAF:
		fmt.Fprintf(w, "\\+ %s  [naf]\n", p.Goal)
	case solve.ProofRule:
		fmt.Fprintf(w, "%s  [rule %s]\n", p.Goal, p.Clause)
	case solve.ProofBuiltin:
		fmt.Fprintf(w, "%s  [builtin]\n", p.Goal)
	default:
		fmt.Fprintf(w, "%s  [fact]\n", p.Goal)
	}
	for _, c := range p.Children {
		renderProofNode(w, c, depth+1)
	}
}
