package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/solve"
)

// proofFixture builds a deterministic proof covering every node kind: rule
// resolution, fact leaves, a builtin and negation as failure.
func proofFixture(t *testing.T) *solve.ProofStep {
	t.Helper()
	kb := solve.NewKB()
	if err := kb.AddSource(`
		parent(ann, bob). parent(bob, cat).
		age(cat, 3).
		blocked(dee).
		anc(X, Y) :- parent(X, Y).
		anc(X, Y) :- parent(X, Z), anc(Z, Y).
	`); err != nil {
		t.Fatal(err)
	}
	parsed, err := logic.ParseClause(
		"young_desc(X, Y) :- anc(X, Y), age(Y, N), N < 5, \\+ blocked(Y).")
	if err != nil {
		t.Fatal(err)
	}
	ex, err := logic.ParseTerm("young_desc(ann, cat)")
	if err != nil {
		t.Fatal(err)
	}
	m := solve.NewMachine(kb, solve.DefaultBudget)
	proof, ok := m.ProveExample(&parsed, ex)
	if !ok {
		t.Fatal("fixture proof failed")
	}
	return proof
}

// TestProofJSONGolden pins the stable JSON encoding of proof trees — the
// wire contract of /classify responses. Regenerate with UPDATE_GOLDEN=1
// after an intentional shape change (and bump ProofJSONVersion).
func TestProofJSONGolden(t *testing.T) {
	proof := proofFixture(t)
	out, err := ProofJSON(proof)
	if err != nil {
		t.Fatal(err)
	}
	got := string(out) + "\n"
	golden := filepath.Join("testdata", "proof.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("proof JSON drifted from golden %s.\nGot:\n%s\nWant:\n%s\nIf intentional, regenerate with UPDATE_GOLDEN=1 and bump ProofJSONVersion.",
			golden, got, want)
	}
}

func TestProofText(t *testing.T) {
	text := ProofText(proofFixture(t))
	for _, want := range []string{
		"young_desc(ann, cat)  [rule ",
		"parent(ann, bob)  [fact]",
		"3 < 5  [builtin]",
		"\\+ blocked(cat)  [naf]",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("proof text missing %q:\n%s", want, text)
		}
	}
	// Indentation must reflect tree depth: fact leaves sit under the anc
	// subtree, two levels below the root.
	if !strings.Contains(text, "\n    parent(ann, bob)") {
		t.Fatalf("expected indented fact leaf:\n%s", text)
	}
}
