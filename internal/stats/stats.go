// Package stats provides the summary statistics the paper's evaluation
// uses: means and standard deviations for the table cells, speedups, and a
// paired two-sided Student t-test (the paper tests accuracy differences at
// 98% confidence). The t CDF is computed exactly via the regularised
// incomplete beta function — no tables, no approximations beyond float64.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator); 0 when
// fewer than two values.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Speedup is sequential time over parallel time.
func Speedup(seq, par float64) float64 {
	if par <= 0 {
		return 0
	}
	return seq / par
}

// TTestResult reports a paired t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF int     // degrees of freedom (n−1)
	P  float64 // two-sided p-value
}

// Significant reports whether the difference is significant at the given
// confidence level (e.g. 0.98 for the paper's 98%).
func (r TTestResult) Significant(confidence float64) bool {
	return r.P < 1-confidence
}

func (r TTestResult) String() string {
	return fmt.Sprintf("t(%d)=%.4f, p=%.4f", r.DF, r.T, r.P)
}

// ErrTooFewPairs is returned when fewer than two pairs are supplied.
var ErrTooFewPairs = errors.New("stats: paired t-test needs at least two pairs")

// ErrLengthMismatch is returned when the paired samples differ in length.
var ErrLengthMismatch = errors.New("stats: paired samples must have equal length")

// PairedTTest runs a two-sided paired Student t-test on samples a and b
// (e.g. per-fold accuracies of two learners).
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, ErrLengthMismatch
	}
	n := len(a)
	if n < 2 {
		return TTestResult{}, ErrTooFewPairs
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	m := Mean(diffs)
	sd := StdDev(diffs)
	df := n - 1
	if sd == 0 {
		// All differences identical: either exactly zero (no difference,
		// p = 1) or a constant shift (infinitely significant).
		if m == 0 {
			return TTestResult{T: 0, DF: df, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(m)), DF: df, P: 0}, nil
	}
	t := m / (sd / math.Sqrt(float64(n)))
	return TTestResult{T: t, DF: df, P: TwoSidedP(t, df)}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// TwoSidedP returns the two-sided p-value of a t statistic with df degrees
// of freedom: P(|T| ≥ |t|) = I_{df/(df+t²)}(df/2, 1/2).
func TwoSidedP(t float64, df int) float64 {
	if df <= 0 {
		return 1
	}
	v := float64(df)
	x := v / (v + t*t)
	return RegIncBeta(v/2, 0.5, x)
}

// RegIncBeta computes the regularised incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Lentz's method), accurate to
// ~1e-14 over the domain used here.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	bt := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return bt * betaCF(a, b, x) / a
	}
	return 1 - bt*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
