package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	// Sample stddev of the set above is sqrt(32/7).
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{3}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100, 25); got != 4 {
		t.Fatalf("Speedup = %v", got)
	}
	if got := Speedup(100, 0); got != 0 {
		t.Fatalf("Speedup by zero = %v", got)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{0.5, 0.5, 0.5, 0.5}, // symmetric arcsine distribution median
		{1, 1, 0.3, 0.3},     // uniform: I_x(1,1) = x
		{2, 2, 0.5, 0.5},     // symmetric beta median
		{2, 1, 0.5, 0.25},    // I_x(2,1) = x²
		{1, 2, 0.5, 0.75},    // I_x(1,2) = 1-(1-x)²
		{5, 3, 0.0, 0},       // boundary
		{5, 3, 1.0, 1},       // boundary
	}
	for _, c := range cases {
		if got := RegIncBeta(c.a, c.b, c.x); !almost(got, c.want, 1e-10) {
			t.Errorf("RegIncBeta(%v, %v, %v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestTwoSidedPKnownQuantiles(t *testing.T) {
	// Classic t-table entries: t_{0.025, df} gives two-sided p = 0.05.
	cases := []struct {
		t  float64
		df int
	}{
		{12.706, 1},
		{2.776, 4},
		{2.262, 9},
		{2.045, 29},
	}
	for _, c := range cases {
		if got := TwoSidedP(c.t, c.df); !almost(got, 0.05, 2e-4) {
			t.Errorf("TwoSidedP(%v, %d) = %v, want ≈ 0.05", c.t, c.df, got)
		}
	}
	if got := TwoSidedP(0, 10); !almost(got, 1, 1e-12) {
		t.Errorf("TwoSidedP(0) = %v, want 1", got)
	}
}

func TestTwoSidedPMonotone(t *testing.T) {
	prev := 1.1
	for _, tv := range []float64{0, 0.5, 1, 2, 4, 8, 16} {
		p := TwoSidedP(tv, 7)
		if p > prev {
			t.Fatalf("p not monotone at t=%v: %v > %v", tv, p, prev)
		}
		prev = p
	}
}

func TestPairedTTestWorkedExample(t *testing.T) {
	// Differences 1..5: mean 3, sd √2.5, t = 3/(√2.5/√5) = 4.2426, df 4.
	a := []float64{2, 4, 6, 8, 10}
	b := []float64{1, 2, 3, 4, 5}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.T, 3/math.Sqrt(2.5/5), 1e-12) {
		t.Fatalf("T = %v", res.T)
	}
	if res.DF != 4 {
		t.Fatalf("DF = %d", res.DF)
	}
	if !almost(res.P, 0.0132, 5e-4) {
		t.Fatalf("P = %v, want ≈ 0.0132", res.P)
	}
	if !res.Significant(0.98) {
		t.Fatal("should be significant at 98%")
	}
	if res.Significant(0.995) {
		t.Fatal("should not be significant at 99.5%")
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{2}); err != ErrTooFewPairs {
		t.Fatalf("short input: %v", err)
	}
	if _, err := PairedTTest([]float64{1, 2}, []float64{2}); err != ErrLengthMismatch {
		t.Fatalf("mismatch: %v", err)
	}
	// Identical samples: no difference.
	res, err := PairedTTest([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.T != 0 {
		t.Fatalf("identical samples: %+v", res)
	}
	// Constant shift: infinitely significant.
	res, err = PairedTTest([]float64{2, 3, 4}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 || !math.IsInf(res.T, 1) {
		t.Fatalf("constant shift: %+v", res)
	}
}

func TestPairedTTestSymmetry(t *testing.T) {
	a := []float64{0.62, 0.58, 0.61, 0.66, 0.59}
	b := []float64{0.60, 0.62, 0.57, 0.60, 0.63}
	r1, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := PairedTTest(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r1.T, -r2.T, 1e-12) || !almost(r1.P, r2.P, 1e-12) {
		t.Fatalf("asymmetry: %+v vs %+v", r1, r2)
	}
}

// Property: RegIncBeta is a CDF in x — monotone nondecreasing, 0 at 0, 1 at 1.
func TestQuickRegIncBetaMonotone(t *testing.T) {
	f := func(ai, bi uint8) bool {
		a := 0.5 + float64(ai%40)/4
		b := 0.5 + float64(bi%40)/4
		prev := -1.0
		for x := 0.0; x <= 1.0001; x += 0.02 {
			v := RegIncBeta(a, b, math.Min(x, 1))
			if v < prev-1e-12 || v < -1e-12 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: I_x(a,b) + I_{1-x}(b,a) = 1.
func TestQuickRegIncBetaReflection(t *testing.T) {
	f := func(ai, bi, xi uint8) bool {
		a := 0.5 + float64(ai%40)/4
		b := 0.5 + float64(bi%40)/4
		x := float64(xi) / 255
		return almost(RegIncBeta(a, b, x)+RegIncBeta(b, a, 1-x), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
