package bottom

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/solve"
)

const molBK = `
atm(m1, a1, carbon). atm(m1, a2, oxygen). atm(m1, a3, carbon).
bondx(m1, a1, a2). bondx(m1, a2, a3).
charge(a1, 0.2). charge(a2, -0.4). charge(a3, 0.1).
`

const molModes = `
modeh(1, active(+mol)).
modeb('*', atm(+mol, -atomid, #element)).
modeb('*', bondx(+mol, -atomid, -atomid)).
modeb(1, charge(+atomid, -chval)).
`

func buildMol(t *testing.T, opts Options) *Bottom {
	t.Helper()
	kb := solve.NewKB()
	if err := kb.AddSource(molBK); err != nil {
		t.Fatal(err)
	}
	m := solve.NewMachine(kb, solve.DefaultBudget)
	ms := mode.MustParseSet(molModes)
	b, err := Construct(m, ms, logic.MustParseTerm("active(m1)"), opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConstructHead(t *testing.T) {
	b := buildMol(t, Options{})
	if got := b.Head.String(); got != "active(A)" {
		t.Fatalf("head = %q", got)
	}
	if len(b.HeadVars) != 1 || b.HeadVars[0] != 0 {
		t.Fatalf("head vars: %v", b.HeadVars)
	}
}

func TestConstructLiterals(t *testing.T) {
	b := buildMol(t, Options{VarDepth: 2})
	c := b.ToClause()
	s := c.String()
	// Must contain all three atm literals with # element constants inline.
	for _, want := range []string{"atm(A, ", "carbon", "oxygen", "bondx(A, ", "charge("} {
		if !strings.Contains(s, want) {
			t.Errorf("bottom clause missing %q: %s", want, s)
		}
	}
	// At depth 2 the charge literals (inputs produced at depth 1) appear.
	nCharge := 0
	for _, lit := range b.Lits {
		if lit.Atom.Sym.Name() == "charge" {
			nCharge++
		}
	}
	if nCharge != 3 {
		t.Errorf("charge literals = %d, want 3 (one per atom)\n%s", nCharge, s)
	}
}

func TestVarDepthOneExcludesChainedLiterals(t *testing.T) {
	b := buildMol(t, Options{VarDepth: 1})
	for _, lit := range b.Lits {
		if lit.Atom.Sym.Name() == "charge" {
			t.Fatalf("charge literal requires depth-1 outputs, must not appear at VarDepth 1: %s", b.ToClause().String())
		}
	}
}

func TestVariableReuseAcrossLiterals(t *testing.T) {
	b := buildMol(t, Options{VarDepth: 2})
	// The atom a2 appears as output of atm and of bondx; both must map to
	// the same variable (constants are variabilised consistently per type).
	varOfA2 := int32(-1)
	for i, lit := range b.Lits {
		if lit.Atom.Sym.Name() != "atm" {
			continue
		}
		// atm(A, X, oxygen) identifies a2.
		if lit.Atom.Args[2].Sym.Name() == "oxygen" {
			varOfA2 = b.Info[i].OutVars[0]
		}
	}
	if varOfA2 < 0 {
		t.Fatal("no oxygen atm literal found")
	}
	found := false
	for _, lit := range b.Lits {
		if lit.Atom.Sym.Name() == "bondx" && lit.Atom.Args[1].VarIndex() == int(varOfA2) {
			found = true
		}
	}
	if !found {
		t.Fatalf("bondx should reuse the variable of a2: %s", b.ToClause().String())
	}
}

func TestRecallLimit(t *testing.T) {
	kb := solve.NewKB()
	src := "target(x)."
	for i := 0; i < 10; i++ {
		src += " feat(x, f" + string(rune('0'+i)) + ")."
	}
	if err := kb.AddSource(src); err != nil {
		t.Fatal(err)
	}
	m := solve.NewMachine(kb, solve.DefaultBudget)
	ms := mode.MustParseSet(`
		modeh(1, target(+obj)).
		modeb(3, feat(+obj, -fid)).
	`)
	b, err := Construct(m, ms, logic.MustParseTerm("target(x)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Lits) != 3 {
		t.Fatalf("recall 3 produced %d literals", len(b.Lits))
	}
}

func TestMaxLiteralsTruncates(t *testing.T) {
	b := buildMol(t, Options{MaxLiterals: 2})
	if !b.Truncated {
		t.Fatal("expected truncation flag")
	}
	if len(b.Lits) != 2 {
		t.Fatalf("got %d literals, want 2", len(b.Lits))
	}
}

func TestInfoDiscipline(t *testing.T) {
	b := buildMol(t, Options{VarDepth: 2})
	bound := make(map[int32]bool)
	for _, v := range b.HeadVars {
		bound[v] = true
	}
	// Literals are generated so that a left-to-right pass keeps inputs bound.
	for i, info := range b.Info {
		for _, v := range info.InVars {
			if !bound[v] {
				t.Fatalf("literal %d (%s) uses unbound input var %d", i, b.Lits[i], v)
			}
		}
		for _, v := range info.OutVars {
			bound[v] = true
		}
	}
}

func TestMaterialize(t *testing.T) {
	b := buildMol(t, Options{VarDepth: 2})
	c := b.Materialize([]int32{0})
	if len(c.Body) != 1 || !logic.EqualLiteral(c.Body[0], b.Lits[0]) {
		t.Fatalf("Materialize: %s", c.String())
	}
	if !logic.Equal(c.Head, b.Head) {
		t.Fatal("Materialize changed the head")
	}
}

func TestBottomCoversOwnExample(t *testing.T) {
	kb := solve.NewKB()
	if err := kb.AddSource(molBK); err != nil {
		t.Fatal(err)
	}
	m := solve.NewMachine(kb, solve.DefaultBudget)
	ms := mode.MustParseSet(molModes)
	ex := logic.MustParseTerm("active(m1)")
	b, err := Construct(m, ms, ex, Options{VarDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The fundamental MDIE property: ⊥e covers e.
	full := b.ToClause()
	if !m.CoversExample(&full, ex) {
		t.Fatalf("bottom clause does not cover its own example:\n%s", full.String())
	}
}

func TestConstructErrors(t *testing.T) {
	kb := solve.NewKB()
	m := solve.NewMachine(kb, solve.DefaultBudget)
	ms := mode.MustParseSet(molModes)
	if _, err := Construct(m, ms, logic.MustParseTerm("inactive(m1)"), Options{}); err == nil {
		t.Fatal("wrong predicate accepted")
	}
	if _, err := Construct(m, ms, logic.MustParseTerm("active(X)"), Options{}); err == nil {
		t.Fatal("non-ground example accepted")
	}
}

func TestDeterministicConstruction(t *testing.T) {
	b1 := buildMol(t, Options{VarDepth: 2})
	b2 := buildMol(t, Options{VarDepth: 2})
	c1, c2 := b1.ToClause(), b2.ToClause()
	if c1.String() != c2.String() {
		t.Fatalf("nondeterministic bottom clause:\n%s\n%s", c1.String(), c2.String())
	}
}
