package bottom

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/solve"
)

func BenchmarkConstruct(b *testing.B) {
	kb := solve.NewKB()
	if err := kb.AddSource(molBK); err != nil {
		b.Fatal(err)
	}
	m := solve.NewMachine(kb, solve.DefaultBudget)
	ms := mode.MustParseSet(molModes)
	example := logic.MustParseTerm("active(m1)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Construct(m, ms, example, Options{VarDepth: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
