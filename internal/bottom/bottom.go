// Package bottom implements MDIE saturation: constructing the most specific
// clause ("bottom clause", ⊥e) that entails a selected example under the
// background knowledge and the mode-declaration language bias.
//
// The bottom clause is the cornerstone of the MDIE search (paper §3): every
// candidate rule considered afterwards is a subset of its literals, so its
// construction bounds — and orders — the whole search space. In the
// pipelined parallel algorithm the bottom clause additionally travels along
// the pipeline so later stages can continue refining against it (paper §4).
package bottom

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/solve"
)

// Options controls saturation.
type Options struct {
	// VarDepth is Progol's i-bound: how many layers of new variables may be
	// introduced. ≤0 means 2.
	VarDepth int
	// MaxLiterals caps the number of body literals kept. ≤0 means 128.
	MaxLiterals int
	// MaxRecall bounds solutions per instantiation when a declaration's
	// recall is '*' (unbounded). ≤0 means 64.
	MaxRecall int
}

func (o Options) withDefaults() Options {
	if o.VarDepth <= 0 {
		o.VarDepth = 2
	}
	if o.MaxLiterals <= 0 {
		o.MaxLiterals = 128
	}
	if o.MaxRecall <= 0 {
		o.MaxRecall = 64
	}
	return o
}

// LitInfo records the variable discipline of one bottom-clause literal,
// used by the refinement operator: a literal may join a clause only when
// all its InVars are already bound; once added it binds its OutVars.
type LitInfo struct {
	InVars  []int32
	OutVars []int32
	Depth   int32
}

// Bottom is a saturated most-specific clause with refinement metadata.
// All fields are exported so a Bottom can travel between pipeline stages.
type Bottom struct {
	// Example is the saturated example atom.
	Example logic.Term
	// Head is the (variabilised) clause head.
	Head logic.Term
	// Lits are the body literals in generation order.
	Lits []logic.Literal
	// Info parallels Lits.
	Info []LitInfo
	// HeadVars are the variables bound by the head.
	HeadVars []int32
	// NumVars is one more than the largest variable index used.
	NumVars int
	// Truncated reports that MaxLiterals stopped the saturation early.
	Truncated bool
}

// ToClause returns the full bottom clause (head :- all literals).
func (b *Bottom) ToClause() logic.Clause {
	return logic.Clause{Head: b.Head, Body: append([]logic.Literal(nil), b.Lits...)}
}

// Materialize returns the rule formed by the head plus the selected body
// literal indices, preserving bottom-clause variable numbering.
func (b *Bottom) Materialize(indices []int32) logic.Clause {
	c := logic.Clause{Head: b.Head}
	for _, i := range indices {
		c.Body = append(c.Body, b.Lits[i])
	}
	return c
}

// inEntry is a saturation constant available as an input of a given type.
type inEntry struct {
	constant logic.Term
	varIdx   int32
	depth    int
}

type constructor struct {
	m    *solve.Machine
	ms   *mode.Set
	opts Options

	varOf   map[string]int32           // constant+type → variable index
	inTerms map[logic.Symbol][]inEntry // type → available inputs, insertion order
	litSeen map[string]bool            // dedup of generated literals
	nextVar int32
	out     *Bottom
}

func constKey(t logic.Term, typ logic.Symbol) string {
	return typ.Name() + "\x00" + t.String()
}

// varFor returns the variable standing for constant c of the given type,
// creating it (and registering the input entry at depth) when new. The
// second result reports whether the variable is new.
func (ct *constructor) varFor(c logic.Term, typ logic.Symbol, depth int) (int32, bool) {
	key := constKey(c, typ)
	if v, ok := ct.varOf[key]; ok {
		return v, false
	}
	v := ct.nextVar
	ct.nextVar++
	ct.varOf[key] = v
	ct.inTerms[typ] = append(ct.inTerms[typ], inEntry{constant: c, varIdx: v, depth: depth})
	return v, true
}

// Construct saturates example against the machine's knowledge base under the
// mode set. Proof effort is charged to the machine's inference counters, so
// saturation cost flows into the same work measure as coverage tests.
func Construct(m *solve.Machine, ms *mode.Set, example logic.Term, opts Options) (*Bottom, error) {
	opts = opts.withDefaults()
	if example.Pred() != ms.Head.Pred {
		return nil, fmt.Errorf("bottom: example %s does not match modeh %s", example, ms.Head)
	}
	if !example.IsGround() {
		return nil, fmt.Errorf("bottom: example %s is not ground", example)
	}
	ct := &constructor{
		m:       m,
		ms:      ms,
		opts:    opts,
		varOf:   make(map[string]int32),
		inTerms: make(map[logic.Symbol][]inEntry),
		litSeen: make(map[string]bool),
		out:     &Bottom{Example: example},
	}
	if err := ct.buildHead(example); err != nil {
		return nil, err
	}
	for depth := 1; depth <= opts.VarDepth && !ct.out.Truncated; depth++ {
		ct.saturateLayer(depth)
	}
	ct.out.NumVars = int(ct.nextVar)
	return ct.out, nil
}

// buildHead variabilises the example according to modeh: + and - places
// become (typed) variables seeding the input set; # places stay constant.
func (ct *constructor) buildHead(example logic.Term) error {
	places := ct.ms.Head.Places
	if len(places) != len(example.Args) {
		return fmt.Errorf("bottom: arity mismatch between example %s and modeh %s", example, ct.ms.Head)
	}
	args := make([]logic.Term, len(example.Args))
	for i, p := range places {
		switch p.Kind {
		case mode.In, mode.Out:
			v, _ := ct.varFor(example.Args[i], p.Type, 0)
			args[i] = logic.V(int(v))
			ct.out.HeadVars = append(ct.out.HeadVars, v)
		case mode.ConstPlace:
			args[i] = example.Args[i]
		}
	}
	ct.out.Head = logic.CompSym(example.Sym, args...)
	return nil
}

// saturateLayer runs every body declaration against all input combinations
// whose entries were discovered strictly before this depth.
func (ct *constructor) saturateLayer(depth int) {
	// Snapshot input availability: entries introduced at this depth must not
	// feed literals of the same depth (they become available next layer).
	avail := make(map[logic.Symbol]int)
	for ty, entries := range ct.inTerms {
		n := 0
		for _, e := range entries {
			if e.depth < depth {
				n++
			}
		}
		avail[ty] = n
	}
	for _, d := range ct.ms.Body {
		ct.saturateDecl(d, depth, avail)
		if ct.out.Truncated {
			return
		}
	}
}

func (ct *constructor) saturateDecl(d mode.Decl, depth int, avail map[logic.Symbol]int) {
	// Collect the index positions of In places and verify availability.
	var inPlaces []int
	for i, p := range d.Places {
		if p.Kind == mode.In {
			if avail[p.Type] == 0 {
				return
			}
			inPlaces = append(inPlaces, i)
		}
	}
	// Iterate the cartesian product of available inputs, odometer-style.
	choice := make([]int, len(inPlaces))
	for {
		ct.instantiate(d, depth, inPlaces, choice)
		if ct.out.Truncated {
			return
		}
		// Advance odometer.
		k := len(choice) - 1
		for ; k >= 0; k-- {
			choice[k]++
			if choice[k] < avail[d.Places[inPlaces[k]].Type] {
				break
			}
			choice[k] = 0
		}
		if k < 0 {
			return // odometer wrapped: all combinations done
		}
	}
}

// instantiate runs one input combination of declaration d: query the KB and
// add a literal per solution, up to the declaration's recall.
func (ct *constructor) instantiate(d mode.Decl, depth int, inPlaces []int, choice []int) {
	recall := d.Recall
	if recall <= 0 {
		recall = ct.opts.MaxRecall
	}
	// Build the query: In places carry the chosen constants; Out/# places
	// carry fresh query variables 0..n-1.
	queryArgs := make([]logic.Term, len(d.Places))
	inEntries := make([]inEntry, len(d.Places)) // indexed by place, only In filled
	qv := 0
	for i, p := range d.Places {
		if p.Kind == mode.In {
			// Which choice slot does this place use?
			slot := 0
			for s, ip := range inPlaces {
				if ip == i {
					slot = s
					break
				}
			}
			entries := ct.inTerms[p.Type]
			// choice indexes the sub-list of entries with depth < current;
			// entries are append-only so the first avail ones qualify.
			e := entries[choice[slot]]
			inEntries[i] = e
			queryArgs[i] = e.constant
			continue
		}
		queryArgs[i] = logic.V(qv)
		qv++
	}
	goal := logic.CompSym(d.Pred.Sym, queryArgs...)
	type solution struct{ vals []logic.Term }
	var sols []solution
	ct.m.Solve([]logic.Literal{logic.Lit(goal)}, qv, func(bs *logic.Bindings) bool {
		vals := make([]logic.Term, qv)
		ground := true
		for i := 0; i < qv; i++ {
			vals[i] = bs.Resolve(logic.V(i))
			if !vals[i].IsGround() {
				ground = false
			}
		}
		if ground {
			sols = append(sols, solution{vals: vals})
		}
		return len(sols) < recall
	})
	for _, sol := range sols {
		litArgs := make([]logic.Term, len(d.Places))
		var info LitInfo
		info.Depth = int32(depth)
		sv := 0
		for i, p := range d.Places {
			switch p.Kind {
			case mode.In:
				litArgs[i] = logic.V(int(inEntries[i].varIdx))
				info.InVars = append(info.InVars, inEntries[i].varIdx)
			case mode.Out:
				v, _ := ct.varFor(sol.vals[sv], p.Type, depth)
				litArgs[i] = logic.V(int(v))
				info.OutVars = append(info.OutVars, v)
				sv++
			case mode.ConstPlace:
				litArgs[i] = sol.vals[sv]
				sv++
			}
		}
		lit := logic.Lit(logic.CompSym(d.Pred.Sym, litArgs...))
		key := lit.String()
		if ct.litSeen[key] {
			continue
		}
		ct.litSeen[key] = true
		ct.out.Lits = append(ct.out.Lits, lit)
		ct.out.Info = append(ct.out.Info, info)
		if len(ct.out.Lits) >= ct.opts.MaxLiterals {
			ct.out.Truncated = true
			return
		}
	}
}
