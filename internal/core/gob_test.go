package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/bottom"
	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/search"
	"repro/internal/solve"
)

// testPayloads builds one representative payload per message kind, keyed
// by the kind that carries it, so adding a kind without extending this
// table fails the kind-count check in the round-trip tests. Both codec
// round-trip tests (gob here, wire in wiremsg_test.go) and the per-kind
// encode/decode benchmarks share it.
func testPayloads() map[int]any {
	mustTerm := logic.MustParseTerm
	rule := logic.Clause{
		Head: mustTerm("active(X)"),
		Body: []logic.Literal{
			logic.Lit(mustTerm("atm(X, Y, oxygen)")),
			logic.NegLit(mustTerm("charged(Y)")),
		},
	}
	bot := bottom.Bottom{
		Example:  mustTerm("active(m1)"),
		Head:     mustTerm("active(A)"),
		Lits:     []logic.Literal{logic.Lit(mustTerm("atm(A, B, oxygen)"))},
		Info:     []bottom.LitInfo{{InVars: []int32{0}, OutVars: []int32{1}, Depth: 1}},
		HeadVars: []int32{0},
		NumVars:  2,
	}
	return map[int]any{
		kindLoad: loadDataMsg{
			Round:   1,
			HasData: true,
			Pos:     []logic.Term{mustTerm("active(m1)"), mustTerm("active(m2)")},
			Neg:     []logic.Term{mustTerm("active(m3)")},
			Width:   10,
			Search:  search.Settings{MaxClauseLen: 3, NodesLimit: 500, MinPos: 1, MinPrec: 0.7, W: 10, MEstimateM: 2, PosPrior: 0.5}.WithDefaults(),
			Bottom:  bottom.Options{VarDepth: 2, MaxLiterals: 64, MaxRecall: 32},
			Budget:  solve.Budget{MaxDepth: 32, MaxInferences: 1 << 16},

			Checkpoint:    true,
			OrphanTimeout: 30 * time.Second,
		},
		kindStartPipeline: startMsg{Gen: 1, Width: 10},
		kindStage: stageMsg{
			Origin: 2,
			Step:   3,
			Bottom: bot,
			Seeds:  []wireRule{{Indices: []int32{0}}, {Indices: []int32{0, 0}}},
		},
		kindRules:       rulesMsg{Origin: 1, Rules: []logic.Clause{rule}},
		kindEvaluate:    evaluateMsg{Rules: []logic.Clause{rule}},
		kindEvalResult:  evalResultMsg{Worker: 2, Pos: []int32{3, 0}, Neg: []int32{1, 2}},
		kindMarkCovered: markCoveredMsg{Rule: rule},
		kindAdopt:       adoptMsg{},
		kindAdopted:     adoptedMsg{Worker: 1, Ok: true, Example: mustTerm("active(m9)")},
		kindStop:        stopMsg{Gen: 1},
		kindGather:      gatherMsg{},
		kindGathered:    gatheredMsg{Worker: 2, Pos: []logic.Term{mustTerm("active(m4)")}, Costs: []int64{7}, Inferences: 4242, BusyNs: 991100},
		kindRepartition: repartitionMsg{Pos: []logic.Term{mustTerm("active(m5)")}},
		kindFinal: finalMsg{
			Worker:     2,
			Inferences: 12345,
			Generated:  67,
			Clock:      987654321,
			Traffic: cluster.Traffic{
				N:     3,
				Bytes: []int64{0, 1, 2, 3, 4, 5, 6, 7, 8},
				Msgs:  []int64{0, 0, 1, 1, 0, 2, 2, 0, 3},
			},
		},
		kindReassign: reassignMsg{
			Epoch:         7,
			Seq:           42,
			Members:       []int{1, 3},
			Pos:           []logic.Term{mustTerm("active(m6)")},
			Neg:           []logic.Term{mustTerm("active(m7)")},
			RollbackBelow: 6,
		},
		kindReassignAck: reassignAckMsg{Epoch: 7, Seq: 9, Worker: 3, Alive: 5},
		kindSuspect:     suspectMsg{Epoch: 7, Seq: 10, Worker: 1, Peer: 2},
		kindWelcome: welcomeMsg{
			Epoch:   8,
			Seq:     11,
			Members: []int{1, 2, 3},
			Load: loadDataMsg{
				HasData: true,
				Width:   10,
				Search:  search.Settings{MaxClauseLen: 3, NodesLimit: 500, MinPos: 1, MinPrec: 0.7, W: 10, MEstimateM: 2, PosPrior: 0.5}.WithDefaults(),
				Bottom:  bottom.Options{VarDepth: 2, MaxLiterals: 64, MaxRecall: 32},
				Budget:  solve.Budget{MaxDepth: 32, MaxInferences: 1 << 16},
				Balance: true,
			},
		},
		kindRebalance: rebalanceMsg{
			Epoch:   8,
			Seq:     12,
			Members: []int{1, 2, 3},
			Pos:     []logic.Term{mustTerm("active(m8)")},
		},
		kindRebalanceAck: rebalanceAckMsg{Epoch: 8, Seq: 13, Worker: 3, Alive: 4},
		kindResumeQuery:  resumeQueryMsg{Epoch: 9, Seq: 14, Gen: 2},
		kindResumeInfo:   resumeInfoMsg{Epoch: 11, Seq: 15, Gen: 2, Worker: 2, Loaded: true, Reconnects: 1},
		kindFenced:       fencedMsg{Epoch: 12, Seq: 16, Gen: 3, Worker: 1},
	}
}

// TestMessageGobRoundTrip pins the legacy encoding: every payload type of
// every p²-mdie message kind must survive a gob round trip unchanged.
// The simulated transport re-decodes each message anyway (that is what
// makes its byte accounting real), but a regression here would otherwise
// only surface as corrupted state on the TCP path between processes
// running -wirecodec gob.
func TestMessageGobRoundTrip(t *testing.T) {
	payloads := testPayloads()
	if got, want := len(payloads), kindFenced+1; got != want {
		t.Fatalf("payload table covers %d kinds, protocol has %d — extend the table", got, want)
	}

	for kind, v := range payloads {
		enc, err := cluster.Encode(v)
		if err != nil {
			t.Fatalf("kind %d: encode: %v", kind, err)
		}
		msg := cluster.Message{Kind: kind, Payload: enc, Codec: cluster.CodecGob}
		out := reflect.New(reflect.TypeOf(v)) // decode into a fresh zero value
		if err := msg.Decode(out.Interface()); err != nil {
			t.Fatalf("kind %d: decode: %v", kind, err)
		}
		if !reflect.DeepEqual(out.Elem().Interface(), v) {
			t.Errorf("kind %d round trip mismatch:\n got: %#v\nwant: %#v", kind, out.Elem().Interface(), v)
		}
	}
}

// TestSimLoadMsgDecodesAsLoadData pins the cross-shape compatibility the
// remote worker relies on being ABSENT: the simulation's loadMsg and the
// network loadDataMsg share the kindLoad tag, distinguished by the
// worker's remote flag, and gob happily decodes one into the other by
// field names — HasData stays false, which loadRemote rejects.
func TestSimLoadMsgDecodesAsLoadData(t *testing.T) {
	enc, err := cluster.Encode(loadMsg{Round: 3})
	if err != nil {
		t.Fatal(err)
	}
	msg := cluster.Message{Kind: kindLoad, Payload: enc, Codec: cluster.CodecGob}
	var ld loadDataMsg
	if err := msg.Decode(&ld); err != nil {
		t.Fatal(err)
	}
	if ld.Round != 3 || ld.HasData {
		t.Fatalf("decoded %+v, want Round=3 HasData=false", ld)
	}
	w := &worker{id: 1, remote: true}
	if err := w.loadRemote(&ld); err == nil {
		t.Fatal("loadRemote accepted a partitionless load")
	}
}

// TestSimLoadMessageShapeUnchanged pins the simulated transport's kindLoad
// wire shape: gob transmits a descriptor naming every exported field, so
// adding a field to loadMsg — rather than to the network-only
// loadDataMsg — would grow every simulated run's kindLoad bytes and shift
// its byte and virtual-time accounting, which are part of the reproduced
// results. (The absolute encoded size is not asserted: gob's global type
// registry makes it depend on what else the process encoded first.)
func TestSimLoadMessageShapeUnchanged(t *testing.T) {
	typ := reflect.TypeOf(loadMsg{})
	if typ.NumField() != 1 || typ.Field(0).Name != "Round" || typ.Field(0).Type.Kind() != reflect.Int {
		t.Fatalf("loadMsg shape changed (%d fields) — partition shipping belongs in loadDataMsg", typ.NumField())
	}
}
