package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/sched"
)

// checkpointRecord is the master's durable state, gob-encoded into one
// ckpt snapshot at every epoch boundary (the top of run()'s epoch loop,
// where every barrier of the previous epoch has completed). It holds
// everything a restarted master needs to take over: the protocol clock,
// the theory so far, the per-worker example assignments recovery
// redistributes, the live membership with its address book, and the
// metrics counters that must stay cumulative across restarts. The bag is
// deliberately absent — at a boundary it is always empty.
type checkpointRecord struct {
	// Fingerprint pins the dataset: gob payloads (including this record's
	// terms) reference interned symbol indices, so a resume must have
	// re-loaded the exact task the checkpoint was written under.
	Fingerprint uint64

	// Protocol clock at the boundary. Generation is the master-generation
	// fence (DESIGN.md §9): the writing master's generation, bumped by
	// every ResumeMaster so each restart outranks — and fences off — its
	// predecessor's surviving frames.
	Epoch      int
	Seq        int64
	Generation int

	// Membership and assignments.
	Workers     int // initial p (Metrics.Workers)
	Targets     []int
	AssignedPos [][]logic.Term
	AssignedNeg [][]logic.Term

	// Covering-loop state.
	Remaining int
	Theory    []logic.Clause

	// Load is the semantics-bearing settings payload (empty partition),
	// from which the resumed master rebuilds its Config — and re-ships
	// kindLoad to workers the crash caught before their first load.
	Load      loadDataMsg
	MaxEpochs int

	// Peers/Size are the transport address book (netcluster runs; nil/0 on
	// the simulation): the membership a restarted master must re-bind and
	// the workers' listen addresses for the ring's lazy dials.
	Peers []string
	Size  int

	// Metrics continuity.
	Epochs             int
	RulesLearned       int
	GroundFactsAdopted int
	Recoveries         int
	LostWorkers        int
	Rebalances         int
	JoinedWorkers      int
	JoinShares         []int
	StaleDropped       int64
	MasterRestarts     int
	OrphanReconnects   int
}

// addressBooker is implemented by transports whose members have stable
// out-of-band addresses a checkpoint must persist (netcluster.Node).
type addressBooker interface {
	AddressBook() ([]string, int)
}

// linkProber reports per-peer link liveness (netcluster.Node.Linked); the
// resume protocol uses it to tell which members still have to rejoin.
// Transports without explicit links (the simulated machine) lack it.
type linkProber interface {
	Linked(peer int) bool
}

// masterRejoiner re-establishes a worker's master link after a master
// death (netcluster.Node.RejoinMaster).
type masterRejoiner interface {
	RejoinMaster(timeout time.Duration) (int, error)
}

// linkStatser exposes a transport's link-resilience counters
// (netcluster.Node.LinkStats): transient link flaps absorbed and frames
// replayed over resumed links (DESIGN.md §9).
type linkStatser interface {
	LinkStats() (flaps, replayed int64)
}

// linkGracer exposes a transport's configured reconnect grace window
// (netcluster.Node.LinkGrace); config validation uses it to catch a
// grace window that would outlast the protocol's receive timeout.
type linkGracer interface {
	LinkGrace() time.Duration
}

// innerTransport lets the capability probes below see through transport
// wrappers (faultline.Transport exposes its wrapped node this way).
type innerTransport interface {
	Inner() cluster.Transport
}

func asAddressBooker(t cluster.Transport) (addressBooker, bool) {
	for {
		if ab, ok := t.(addressBooker); ok {
			return ab, true
		}
		iw, ok := t.(innerTransport)
		if !ok {
			return nil, false
		}
		t = iw.Inner()
	}
}

func asLinkProber(t cluster.Transport) (linkProber, bool) {
	for {
		if lp, ok := t.(linkProber); ok {
			return lp, true
		}
		iw, ok := t.(innerTransport)
		if !ok {
			return nil, false
		}
		t = iw.Inner()
	}
}

func asMasterRejoiner(t cluster.Transport) (masterRejoiner, bool) {
	for {
		if mr, ok := t.(masterRejoiner); ok {
			return mr, true
		}
		iw, ok := t.(innerTransport)
		if !ok {
			return nil, false
		}
		t = iw.Inner()
	}
}

func asLinkStatser(t cluster.Transport) (linkStatser, bool) {
	for {
		if ls, ok := t.(linkStatser); ok {
			return ls, true
		}
		iw, ok := t.(innerTransport)
		if !ok {
			return nil, false
		}
		t = iw.Inner()
	}
}

func asLinkGracer(t cluster.Transport) (linkGracer, bool) {
	for {
		if lg, ok := t.(linkGracer); ok {
			return lg, true
		}
		iw, ok := t.(innerTransport)
		if !ok {
			return nil, false
		}
		t = iw.Inner()
	}
}

// record assembles the master's current boundary state.
func (ma *master) record() *checkpointRecord {
	rec := &checkpointRecord{
		Fingerprint:        ma.cfg.Fingerprint,
		Epoch:              ma.epoch,
		Seq:                ma.seq,
		Generation:         ma.gen,
		Workers:            ma.metrics.Workers,
		Targets:            append([]int(nil), ma.targets...),
		AssignedPos:        ma.assignedPos,
		AssignedNeg:        ma.assignedNeg,
		Remaining:          ma.remaining,
		Theory:             ma.theory,
		Load:               ma.cfg.loadSettings(),
		MaxEpochs:          ma.cfg.MaxEpochs,
		Epochs:             ma.metrics.Epochs,
		RulesLearned:       ma.metrics.RulesLearned,
		GroundFactsAdopted: ma.metrics.GroundFactsAdopted,
		Recoveries:         ma.metrics.Recoveries,
		LostWorkers:        ma.metrics.LostWorkers,
		Rebalances:         ma.metrics.Rebalances,
		JoinedWorkers:      ma.metrics.JoinedWorkers,
		JoinShares:         ma.metrics.JoinShares,
		StaleDropped:       ma.metrics.StaleDropped,
		MasterRestarts:     ma.metrics.MasterRestarts,
		OrphanReconnects:   ma.metrics.OrphanReconnects,
	}
	if ab, ok := asAddressBooker(ma.node); ok {
		rec.Peers, rec.Size = ab.AddressBook()
	} else {
		rec.Size = ma.node.Size()
	}
	return rec
}

// maybeCheckpoint writes the boundary snapshot when checkpointing is
// configured. A failed save fails the run: a master that silently stopped
// being durable would break the crash-restart contract the caller asked
// for. Checkpointing never touches the wire, so checkpoint-on runs stay
// byte-identical to checkpoint-off runs.
func (ma *master) maybeCheckpoint() error {
	if ma.cfg.CheckpointDir == "" {
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ma.record()); err != nil {
		return fmt.Errorf("core: master: encode checkpoint: %w", err)
	}
	if _, err := ckpt.Save(ma.cfg.CheckpointDir, ma.ckptSeq, buf.Bytes()); err != nil {
		return fmt.Errorf("core: master: checkpoint epoch %d: %w", ma.epoch, err)
	}
	ma.ckptSeq++
	return nil
}

// Checkpoint is a decoded master snapshot, loaded by LoadCheckpoint and
// consumed by ResumeMaster. The accessors expose what the front-end needs
// to rebuild the transport endpoint before resuming.
type Checkpoint struct {
	rec checkpointRecord
	seq uint64 // the snapshot's file sequence number
}

// LoadCheckpoint reads the latest valid snapshot under dir. The caller
// must have loaded the dataset (rebuilding the interned symbol table)
// BEFORE calling this — the record's terms reference symbol indices — and
// should verify Fingerprint against the freshly computed one.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	payload, seq, err := ckpt.LoadLatest(dir)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{seq: seq}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck.rec); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	return ck, nil
}

// Fingerprint is the dataset fingerprint the checkpoint was written under.
func (c *Checkpoint) Fingerprint() uint64 { return c.rec.Fingerprint }

// Peers is the checkpointed transport address book (nil on simulation
// checkpoints).
func (c *Checkpoint) Peers() []string { return append([]string(nil), c.rec.Peers...) }

// Size is the checkpointed transport cluster size.
func (c *Checkpoint) Size() int { return c.rec.Size }

// Epoch is the checkpointed protocol epoch (the completed boundary).
func (c *Checkpoint) Epoch() int { return c.rec.Epoch }

// Epochs is the number of completed logical epochs at the boundary.
func (c *Checkpoint) Epochs() int { return c.rec.Epochs }

// config rebuilds the semantics-bearing Config a resumed master must run
// with over the caller's local knobs (timeouts, checkpoint dir, cost
// model): a resume that silently ran different search settings would learn
// a different theory.
func (rec *checkpointRecord) config(base Config) Config {
	base.Width = rec.Load.Width
	base.Search = rec.Load.Search
	base.Bottom = rec.Load.Bottom
	base.Budget = rec.Load.Budget
	base.AddLearnedToBK = rec.Load.AddLearnedToBK
	base.Recover = rec.Load.Recover
	base.Balance = rec.Load.Balance
	base.OrphanTimeout = rec.Load.OrphanTimeout
	base.MaxEpochs = rec.MaxEpochs
	return base
}

// resumedMaster rebuilds a master over t from a checkpoint: protocol
// clock, membership, assignments, theory and cumulative metrics all pick
// up where the snapshot left off. remote selects the multi-process regime
// (parts non-nil, final reports collected).
func resumedMaster(t cluster.Transport, ck *Checkpoint, cfg Config, metrics *Metrics, remote bool) *master {
	rec := &ck.rec
	metrics.Workers = rec.Workers
	metrics.Width = cfg.Width
	metrics.Epochs = rec.Epochs
	metrics.RulesLearned = rec.RulesLearned
	metrics.GroundFactsAdopted = rec.GroundFactsAdopted
	metrics.Recoveries = rec.Recoveries
	metrics.LostWorkers = rec.LostWorkers
	metrics.Rebalances = rec.Rebalances
	metrics.JoinedWorkers = rec.JoinedWorkers
	metrics.JoinShares = rec.JoinShares
	metrics.StaleDropped = rec.StaleDropped
	metrics.MasterRestarts = rec.MasterRestarts + 1
	metrics.OrphanReconnects = rec.OrphanReconnects
	ma := &master{
		node:        t,
		p:           rec.Workers,
		cfg:         cfg,
		metrics:     metrics,
		targets:     append([]int(nil), rec.Targets...),
		epoch:       rec.Epoch,
		seq:         rec.Seq,
		gen:         rec.Generation + 1,
		assignedPos: rec.AssignedPos,
		assignedNeg: rec.AssignedNeg,
		remaining:   rec.Remaining,
		theory:      rec.Theory,
		bal:         sched.NewBalancer(),
		resumed:     true,
		ckptSeq:     ck.seq + 1,
		// The crashed run already published every boundary up to the
		// checkpoint; a resumed master must not re-emit the same epoch
		// under a fresh sequence number.
		published: rec.Epochs,
	}
	if remote {
		// Non-nil but empty: marks the remote regime (welcome loads carry
		// settings, finals are collected) without the initial shipment —
		// workers already hold their partitions, or report Loaded=false in
		// the resume handshake and get theirs re-shipped.
		ma.parts = []loadDataMsg{}
	}
	return ma
}

// ResumeMaster restarts a crashed p²-mdie master from a checkpoint over a
// rebuilt transport endpoint (normally netcluster.Resume on the address
// book the checkpoint carries). It re-admits the rejoining workers, rolls
// every survivor back to the checkpoint boundary, re-issues the in-flight
// epoch and runs to completion: with the same dataset the learned theory
// is byte-identical to a run whose master never died. cfg supplies local
// knobs (RecvTimeout, CheckpointDir to keep checkpointing, Fingerprint of
// the re-loaded dataset); every semantics-bearing setting comes from the
// checkpoint itself.
func ResumeMaster(t cluster.Transport, ck *Checkpoint, cfg Config) (*Metrics, error) {
	if t.ID() != 0 {
		return nil, fmt.Errorf("core: ResumeMaster needs node id 0, got %d", t.ID())
	}
	if cfg.Fingerprint != 0 && ck.rec.Fingerprint != 0 && cfg.Fingerprint != ck.rec.Fingerprint {
		return nil, fmt.Errorf("core: checkpoint fingerprint %x does not match loaded dataset %x (resume against a different task)",
			ck.rec.Fingerprint, cfg.Fingerprint)
	}
	cfg = ck.rec.config(cfg).withDefaults()
	if len(ck.rec.Targets) == 0 {
		return nil, fmt.Errorf("core: checkpoint has no live workers to resume with")
	}

	metrics := &Metrics{}
	ma := resumedMaster(t, ck, cfg, metrics, true)

	start := time.Now()
	if err := ma.run(); err != nil {
		return nil, err
	}

	metrics.Theory = ma.theory
	metrics.WallTime = time.Since(start)

	// Same assembly as RunMaster: the workers' final reports carry their
	// cumulative totals (including pre-crash work — the workers survived),
	// so inference and rule counts stay continuous across the restart. The
	// restarted master's own traffic table restarts from zero; the paper's
	// Table-4 numbers are only claimed for failure-free runs.
	traffic := cluster.NewTraffic(t.Size())
	if tr, ok := t.(cluster.TrafficReporter); ok {
		traffic.Merge(tr.Traffic())
	}
	makespan := t.Clock()
	for _, fm := range ma.finals {
		metrics.TotalInferences += fm.Inferences
		metrics.GeneratedRules += fm.Generated
		metrics.FencedFrames += fm.Fenced
		metrics.LinkFlaps += fm.Flaps
		metrics.ReplayedFrames += fm.Replayed
		if c := cluster.VTime(fm.Clock); c > makespan {
			makespan = c
		}
		traffic.Merge(fm.Traffic)
	}
	if ls, ok := asLinkStatser(t); ok {
		flaps, replayed := ls.LinkStats()
		metrics.LinkFlaps += flaps
		metrics.ReplayedFrames += replayed
	}
	metrics.VirtualTime = makespan.Duration()
	metrics.Traffic = traffic
	metrics.CommBytes = traffic.TotalBytes()
	metrics.CommMessages = traffic.TotalMsgs()
	return metrics, nil
}
