package core

// Wire-codec encoders for every protocol message in messages.go. Each
// message kind gets an AppendWire (value receiver, so values and
// pointers both satisfy wire.Marshaler at the Send call sites) and a
// DecodeWire (pointer receiver). Field order follows struct order; in
// particular every worker→master reply keeps Epoch first, which is what
// lets the master's epoch fence (epochOnly) peek at any reply payload
// without knowing its kind.
//
// The encoders for nested config types (search.Settings,
// bottom.Options, solve.Budget, bottom.Bottom, cluster.Traffic) are
// written field-by-field here rather than in their home packages: the
// wire format is a transport concern, and keeping it beside the message
// structs keeps one file to update when the protocol grows.

import (
	"time"

	"repro/internal/bottom"
	"repro/internal/search"
	"repro/internal/solve"
	"repro/internal/wire"
)

// --- nested struct helpers ---

func appendSettings(w *wire.Writer, s search.Settings) {
	w.Int(s.MaxClauseLen)
	w.Int(s.NodesLimit)
	w.Int(s.MinPos)
	w.F64(s.MinPrec)
	w.Int(s.W)
	w.Byte(byte(s.Heuristic))
	w.Byte(byte(s.Strategy))
	w.F64(s.MEstimateM)
	w.F64(s.PosPrior)
	w.Bool(s.NoBatchEval)
	w.Bool(s.NoVM)
}

func readSettings(r *wire.Reader) search.Settings {
	var s search.Settings
	s.MaxClauseLen = r.Int()
	s.NodesLimit = r.Int()
	s.MinPos = r.Int()
	s.MinPrec = r.F64()
	s.W = r.Int()
	s.Heuristic = search.Heuristic(r.Byte())
	s.Strategy = search.Strategy(r.Byte())
	s.MEstimateM = r.F64()
	s.PosPrior = r.F64()
	s.NoBatchEval = r.Bool()
	s.NoVM = r.Bool()
	return s
}

func appendBottomOpts(w *wire.Writer, o bottom.Options) {
	w.Int(o.VarDepth)
	w.Int(o.MaxLiterals)
	w.Int(o.MaxRecall)
}

func readBottomOpts(r *wire.Reader) bottom.Options {
	var o bottom.Options
	o.VarDepth = r.Int()
	o.MaxLiterals = r.Int()
	o.MaxRecall = r.Int()
	return o
}

func appendBudget(w *wire.Writer, b solve.Budget) {
	w.Int(b.MaxDepth)
	w.Varint(b.MaxInferences)
}

func readBudget(r *wire.Reader) solve.Budget {
	var b solve.Budget
	b.MaxDepth = r.Int()
	b.MaxInferences = r.Varint()
	return b
}

func appendBottom(w *wire.Writer, b bottom.Bottom) {
	w.Term(b.Example)
	w.Term(b.Head)
	w.Literals(b.Lits)
	w.Uvarint(uint64(len(b.Info)))
	for _, li := range b.Info {
		w.I32s(li.InVars)
		w.I32s(li.OutVars)
		w.Varint(int64(li.Depth))
	}
	w.I32s(b.HeadVars)
	w.Int(b.NumVars)
	w.Bool(b.Truncated)
}

func readBottom(r *wire.Reader) bottom.Bottom {
	var b bottom.Bottom
	b.Example = r.Term()
	b.Head = r.Term()
	b.Lits = r.Literals()
	if n := r.Len(); n > 0 {
		b.Info = make([]bottom.LitInfo, n)
		for i := range b.Info {
			b.Info[i].InVars = r.I32s()
			b.Info[i].OutVars = r.I32s()
			b.Info[i].Depth = int32(r.Varint())
		}
	}
	b.HeadVars = r.I32s()
	b.NumVars = r.Int()
	b.Truncated = r.Bool()
	return b
}

func appendWireRules(w *wire.Writer, rs []wireRule) {
	w.Uvarint(uint64(len(rs)))
	for _, rl := range rs {
		w.I32s(rl.Indices)
	}
}

func readWireRules(r *wire.Reader) []wireRule {
	n := r.Len()
	if n == 0 {
		return nil
	}
	out := make([]wireRule, n)
	for i := range out {
		out[i].Indices = r.I32s()
	}
	return out
}

// --- per-kind encoders, in kind order ---

func (m loadMsg) AppendWire(w *wire.Writer) { w.Int(m.Round) }
func (m *loadMsg) DecodeWire(r *wire.Reader) {
	m.Round = r.Int()
}

func (m loadDataMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Round)
	w.Bool(m.HasData)
	w.Terms(m.Pos)
	w.Terms(m.Neg)
	w.Int(m.Gen)
	w.Int(m.Width)
	appendSettings(w, m.Search)
	appendBottomOpts(w, m.Bottom)
	appendBudget(w, m.Budget)
	w.Bool(m.AddLearnedToBK)
	w.Bool(m.Recover)
	w.Bool(m.Balance)
	w.Bool(m.Checkpoint)
	w.Varint(int64(m.OrphanTimeout))
}

func (m *loadDataMsg) DecodeWire(r *wire.Reader) {
	m.Round = r.Int()
	m.HasData = r.Bool()
	m.Pos = r.Terms()
	m.Neg = r.Terms()
	m.Gen = r.Int()
	m.Width = r.Int()
	m.Search = readSettings(r)
	m.Bottom = readBottomOpts(r)
	m.Budget = readBudget(r)
	m.AddLearnedToBK = r.Bool()
	m.Recover = r.Bool()
	m.Balance = r.Bool()
	m.Checkpoint = r.Bool()
	m.OrphanTimeout = time.Duration(r.Varint())
}

func (m startMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Int(m.Width)
}

func (m *startMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Width = r.Int()
}

func (m stageMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Int(m.Origin)
	w.Int(m.Step)
	appendBottom(w, m.Bottom)
	appendWireRules(w, m.Seeds)
}

func (m *stageMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Origin = r.Int()
	m.Step = r.Int()
	m.Bottom = readBottom(r)
	m.Seeds = readWireRules(r)
}

func (m rulesMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Int(m.Origin)
	w.Clauses(m.Rules)
}

func (m *rulesMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Origin = r.Int()
	m.Rules = r.Clauses()
}

func (m evaluateMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Clauses(m.Rules)
}

func (m *evaluateMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Rules = r.Clauses()
}

func (m evalResultMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Int(m.Worker)
	w.I32s(m.Pos)
	w.I32s(m.Neg)
}

func (m *evalResultMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Worker = r.Int()
	m.Pos = r.I32s()
	m.Neg = r.I32s()
}

func (m markCoveredMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Clause(m.Rule)
}

func (m *markCoveredMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Rule = r.Clause()
}

func (m adoptMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
}

func (m *adoptMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
}

func (m adoptedMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Int(m.Worker)
	w.Bool(m.Ok)
	w.Term(m.Example)
}

func (m *adoptedMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Worker = r.Int()
	m.Ok = r.Bool()
	m.Example = r.Term()
}

func (m stopMsg) AppendWire(w *wire.Writer) { w.Int(m.Gen) }
func (m *stopMsg) DecodeWire(r *wire.Reader) {
	m.Gen = r.Int()
}

func (m gatherMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
}

func (m *gatherMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
}

func (m gatheredMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Int(m.Worker)
	w.Terms(m.Pos)
	w.I64s(m.Costs)
	w.Varint(m.Inferences)
	w.Varint(m.BusyNs)
}

func (m *gatheredMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Worker = r.Int()
	m.Pos = r.Terms()
	m.Costs = r.I64s()
	m.Inferences = r.Varint()
	m.BusyNs = r.Varint()
}

func (m repartitionMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Terms(m.Pos)
}

func (m *repartitionMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Pos = r.Terms()
}

func (m finalMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Int(m.Worker)
	w.Varint(m.Inferences)
	w.Varint(m.Generated)
	w.Varint(m.Clock)
	m.Traffic.AppendWire(w)
	w.Int(m.Fenced)
	w.Varint(m.Flaps)
	w.Varint(m.Replayed)
}

func (m *finalMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Worker = r.Int()
	m.Inferences = r.Varint()
	m.Generated = r.Varint()
	m.Clock = r.Varint()
	m.Traffic.DecodeWire(r)
	m.Fenced = r.Int()
	m.Flaps = r.Varint()
	m.Replayed = r.Varint()
}

func (m reassignMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Ints(m.Members)
	w.Terms(m.Pos)
	w.Terms(m.Neg)
	w.Int(m.RollbackBelow)
}

func (m *reassignMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Members = r.Ints()
	m.Pos = r.Terms()
	m.Neg = r.Terms()
	m.RollbackBelow = r.Int()
}

func (m reassignAckMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Int(m.Worker)
	w.Int(m.Alive)
}

func (m *reassignAckMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Worker = r.Int()
	m.Alive = r.Int()
}

func (m welcomeMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Ints(m.Members)
	m.Load.AppendWire(w)
}

func (m *welcomeMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Members = r.Ints()
	m.Load.DecodeWire(r)
}

func (m rebalanceMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Ints(m.Members)
	w.Terms(m.Pos)
}

func (m *rebalanceMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Members = r.Ints()
	m.Pos = r.Terms()
}

func (m resumeQueryMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
}

func (m *resumeQueryMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
}

func (m resumeInfoMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Int(m.Worker)
	w.Bool(m.Loaded)
	w.Int(m.Reconnects)
}

func (m *resumeInfoMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Worker = r.Int()
	m.Loaded = r.Bool()
	m.Reconnects = r.Int()
}

func (m suspectMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Int(m.Worker)
	w.Int(m.Peer)
}

func (m *suspectMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Worker = r.Int()
	m.Peer = r.Int()
}

func (m fencedMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Epoch)
	w.Varint(m.Seq)
	w.Int(m.Gen)
	w.Int(m.Worker)
}

func (m *fencedMsg) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	m.Seq = r.Varint()
	m.Gen = r.Int()
	m.Worker = r.Int()
}

// epochOnly reads just the leading Epoch varint every worker→master
// reply starts with, then discards the rest — the wire analogue of
// gob's name-matching partial decode the epoch fence relies on.
func (m *epochOnly) DecodeWire(r *wire.Reader) {
	m.Epoch = r.Int()
	r.DiscardRest()
}
