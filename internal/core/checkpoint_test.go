package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultline"
	"repro/internal/logic"
	"repro/internal/search"
)

// TestCheckpointRecordGobRoundTrip pins the durable snapshot format the
// same way gob_test.go pins the wire format: every field of the master's
// checkpoint record must survive an encode/decode cycle unchanged, or a
// resumed master silently starts from corrupted state.
func TestCheckpointRecordGobRoundTrip(t *testing.T) {
	mustTerm := logic.MustParseTerm
	rule := logic.Clause{
		Head: mustTerm("active(X)"),
		Body: []logic.Literal{logic.Lit(mustTerm("atm(X, Y, oxygen)"))},
	}
	rec := checkpointRecord{
		Fingerprint: 0xDEADBEEF,
		Epoch:       7,
		Seq:         91,
		Workers:     2,
		Targets:     []int{1, 2},
		AssignedPos: [][]logic.Term{nil, {mustTerm("active(m1)")}, {mustTerm("active(m2)")}},
		AssignedNeg: [][]logic.Term{nil, {mustTerm("active(m3)")}, nil},
		Remaining:   5,
		Theory:      []logic.Clause{rule},
		Load: loadDataMsg{
			Width:         4,
			Checkpoint:    true,
			OrphanTimeout: 30 * time.Second,
			Recover:       true,
		},
		MaxEpochs:          500,
		Peers:              []string{"127.0.0.1:9000", "127.0.0.1:9001", "127.0.0.1:9002"},
		Size:               3,
		Epochs:             6,
		RulesLearned:       3,
		GroundFactsAdopted: 1,
		Recoveries:         2,
		LostWorkers:        1,
		Rebalances:         1,
		JoinedWorkers:      1,
		JoinShares:         []int{4},
		StaleDropped:       9,
		MasterRestarts:     1,
		OrphanReconnects:   2,
		Generation:         3,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rec); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out checkpointRecord
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(out, rec) {
		t.Errorf("round trip mismatch:\n got: %#v\nwant: %#v", out, rec)
	}
}

// TestLearnRejectsCheckpointWithAddLearnedToBK pins the documented
// incompatibility: rollback cannot retract rules asserted into a worker's
// background knowledge.
func TestLearnRejectsCheckpointWithAddLearnedToBK(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(2, 0)
	cfg.CheckpointDir = t.TempDir()
	cfg.AddLearnedToBK = true
	if _, err := Learn(kb, pos, neg, ms, cfg); err == nil {
		t.Fatal("Learn accepted CheckpointDir together with AddLearnedToBK")
	}
}

// TestCheckpointingDoesNotTouchTheWire pins the zero-overhead contract:
// a checkpointed run exchanges exactly the same bytes, messages and
// virtual time as an unchckpointed one, and learns the same theory — the
// durability layer lives entirely beside the protocol.
func TestCheckpointingDoesNotTouchTheWire(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	base, err := Learn(kb, pos, neg, ms, testConfig(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(4, 0)
	cfg.CheckpointDir = t.TempDir()
	ck, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ck.Theory) != fmt.Sprint(base.Theory) {
		t.Errorf("theory changed under checkpointing:\n got: %v\nwant: %v", ck.Theory, base.Theory)
	}
	if ck.CommBytes != base.CommBytes || ck.CommMessages != base.CommMessages {
		t.Errorf("traffic changed under checkpointing: got %d bytes/%d msgs, want %d/%d",
			ck.CommBytes, ck.CommMessages, base.CommBytes, base.CommMessages)
	}
	if ck.VirtualTime != base.VirtualTime {
		t.Errorf("virtual time changed under checkpointing: got %v, want %v", ck.VirtualTime, base.VirtualTime)
	}
	if ck, err := LoadCheckpoint(cfg.CheckpointDir); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	} else if ck.Epoch() < 0 || ck.Fingerprint() == 0 {
		t.Fatalf("checkpoint carries no fingerprint: %+v", ck.rec)
	}
}

// crashRestartRun drives one simulated p²-mdie run whose master is killed
// by the faultline schedule at the crashAt'th protocol op (0 = never) and
// then restarted from its latest durable checkpoint, taking over the same
// transport node — the simulation analogue of `kill -9` plus `p2mdie
// -resume`. The workers are never told: exactly as in a real master crash
// they sit blocked mid-epoch until the resumed master's handshake reaches
// them. Returns the final metrics and the total op count observed.
func crashRestartRun(t *testing.T, crashAt int64, dir string) (*Metrics, int64) {
	t.Helper()
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(4, 0)
	cfg.CheckpointDir = dir
	cfg.Fingerprint = Fingerprint(kb, pos, neg)
	cfg.RecvTimeout = 30 * time.Second // a wedged resume must fail, not hang the test
	cfgd := cfg.withDefaults()
	p := cfgd.Workers

	posParts, negParts := splitExamples(pos, neg, p, cfgd.Seed)
	nw := cluster.NewNetwork(p+1, cfgd.Cost)
	var wg sync.WaitGroup
	for k := 1; k <= p; k++ {
		w := newWorker(k, p, nw.Node(k), kb, search.NewExamples(posParts[k-1], negParts[k-1]), ms, cfgd)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.run(); err != nil {
				t.Errorf("worker %d: %v", w.id, err)
				nw.Shutdown()
			}
		}()
	}

	metrics := &Metrics{Workers: p, Width: cfgd.Width}
	node0 := nw.Node(0)
	fl := faultline.Wrap(node0, faultline.Plan{CrashAtOp: crashAt})
	ma := newMaster(fl, p, cfgd, metrics, len(pos), posParts, negParts)
	err := ma.run()
	if err == nil {
		metrics.Theory = ma.theory
		wg.Wait()
		return metrics, fl.Ops()
	}
	if !errors.Is(err, faultline.ErrCrashed) {
		nw.Shutdown()
		t.Fatalf("master failed outside the schedule: %v", err)
	}

	// The restart: a fresh master process loads the checkpoint and takes
	// over the dead master's endpoint.
	chk, lerr := LoadCheckpoint(dir)
	if lerr != nil {
		nw.Shutdown()
		t.Fatalf("crash at op %d: load checkpoint: %v", crashAt, lerr)
	}
	if chk.Fingerprint() != cfg.Fingerprint {
		nw.Shutdown()
		t.Fatalf("crash at op %d: checkpoint fingerprint %x, want %x", crashAt, chk.Fingerprint(), cfg.Fingerprint)
	}
	m2 := &Metrics{}
	rcfg := chk.rec.config(cfg).withDefaults()
	ma2 := resumedMaster(node0, chk, rcfg, m2, false)
	if err := ma2.run(); err != nil {
		nw.Shutdown()
		t.Fatalf("crash at op %d: resumed master: %v", crashAt, err)
	}
	m2.Theory = ma2.theory
	wg.Wait()
	return m2, fl.Ops()
}

// TestSimCrashRestartByteIdentity is the tentpole acceptance check on the
// simulated transport: kill the master at a sweep of protocol points,
// restart it from its durable checkpoint, and require the learned theory
// to be identical to the failure-free run's every time. The stop window
// (the final kindStop broadcast) is excluded — workers that already
// received their stop have exited, and a crash there has nothing left to
// resume (documented caveat, DESIGN.md §8).
func TestSimCrashRestartByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point sweep is slow")
	}
	base, total := crashRestartRun(t, 0, t.TempDir())
	if total < 10 {
		t.Fatalf("probe run counted only %d ops", total)
	}
	want := fmt.Sprint(base.Theory)
	kb, pos, _, _ := makeTask(t)
	theoryCoversAll(t, kb, base.Theory, pos)
	// Sweep every op when cheap, else ~24 evenly spaced points plus the
	// earliest (mid-load) and latest resumable one.
	last := total - int64(base.Workers) // exclude the stop broadcast window
	stride := int64(1)
	if last > 24 {
		stride = last / 24
	}
	points := []int64{1, last}
	for op := stride; op < last; op += stride {
		points = append(points, op)
	}
	for _, op := range points {
		met, _ := crashRestartRun(t, op, t.TempDir())
		if t.Failed() {
			t.Fatalf("aborting sweep at op %d", op)
		}
		if got := fmt.Sprint(met.Theory); got != want {
			t.Fatalf("crash at op %d: theory diverged\n got: %s\nwant: %s", op, got, want)
		}
		if met.MasterRestarts != 1 {
			t.Fatalf("crash at op %d: MasterRestarts = %d, want 1", op, met.MasterRestarts)
		}
	}
}
