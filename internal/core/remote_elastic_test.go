package core

import (
	"testing"

	"repro/internal/netcluster"
)

// TestRemoteJoinMidRun attaches a third worker to a live TCP master: the
// joiner's transport-level join lands before the protocol starts (so the
// admission is deterministic), it must be welcomed with the full remote
// settings, dealt a non-empty share at the rebalance barrier, participate
// in the ring, and report a final like any other worker.
func TestRemoteJoinMidRun(t *testing.T) {
	kb, pos, neg, ms := makeWideTask(t)
	cfg := testConfig(2, 10)

	ncfg := netcluster.Config{Fingerprint: Fingerprint(kb, pos, neg)}
	master, errCh := startNetCluster(t, 2, ncfg, func(node *netcluster.Node) error {
		return RunWorker(node, kb, ms, Config{})
	})
	if err := master.ListenForJoins("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	joinErr := make(chan error, 1)
	jnode, err := netcluster.Join(master.Addr(), "127.0.0.1:0", ncfg)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	go func() {
		defer jnode.Close()
		// The joiner runs the ordinary remote worker loop: everything it
		// needs — settings, ring, share — arrives over the protocol.
		joinErr <- RunWorker(jnode, kb, ms, Config{})
	}()

	met, err := RunMaster(master, pos, neg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	master.Close()
	for k := 0; k < 2; k++ {
		if werr := <-errCh; werr != nil {
			t.Fatalf("worker error: %v", werr)
		}
	}
	if werr := <-joinErr; werr != nil {
		t.Fatalf("joiner error: %v", werr)
	}

	if met.JoinedWorkers != 1 {
		t.Fatalf("JoinedWorkers = %d, want 1", met.JoinedWorkers)
	}
	if met.Rebalances < 1 {
		t.Fatalf("Rebalances = %d, want ≥ 1", met.Rebalances)
	}
	if len(met.JoinShares) != 1 || met.JoinShares[0] == 0 {
		t.Fatalf("JoinShares = %v, want one non-empty share", met.JoinShares)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
	// The joiner is a first-class member: its links appear in the global
	// traffic table (it must at least have answered the master), and the
	// table covers the grown cluster.
	if met.Traffic.N != 4 {
		t.Fatalf("traffic table over %d nodes, want 4", met.Traffic.N)
	}
	if met.Traffic.LinkMsgs(3, 0) == 0 {
		t.Fatalf("joiner sent nothing to the master: %v", met.Traffic.Links())
	}
}

// TestRemoteJoinMatchesSimJoin pins cross-transport parity for elastic
// runs: a TCP run whose joiner attached before the protocol started learns
// the same theory as a simulated run joining at the first epoch boundary.
// (The TCP master only consumes the KindPeerUp event once it starts
// receiving — during epoch 1 — so admission lands at the same boundary as
// a simulated JoinEpochs entry of 1.)
func TestRemoteJoinMatchesSimJoin(t *testing.T) {
	kb, pos, neg, ms := makeWideTask(t)
	cfg := testConfig(2, 10)
	cfg.JoinEpochs = []int{1}
	sim, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.JoinedWorkers != 1 {
		t.Fatalf("sim JoinedWorkers = %d", sim.JoinedWorkers)
	}

	tcpCfg := testConfig(2, 10) // join arrives via the transport, not JoinEpochs
	ncfg := netcluster.Config{Fingerprint: Fingerprint(kb, pos, neg)}
	master, errCh := startNetCluster(t, 2, ncfg, func(node *netcluster.Node) error {
		return RunWorker(node, kb, ms, Config{})
	})
	if err := master.ListenForJoins("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	jnode, err := netcluster.Join(master.Addr(), "127.0.0.1:0", ncfg)
	if err != nil {
		t.Fatal(err)
	}
	joinErr := make(chan error, 1)
	go func() {
		defer jnode.Close()
		joinErr <- RunWorker(jnode, kb, ms, Config{})
	}()
	met, err := RunMaster(master, pos, neg, tcpCfg)
	if err != nil {
		t.Fatal(err)
	}
	master.Close()
	<-errCh
	<-errCh
	if werr := <-joinErr; werr != nil {
		t.Fatalf("joiner error: %v", werr)
	}

	if len(met.Theory) != len(sim.Theory) {
		t.Fatalf("theory sizes differ: net %d vs sim %d", len(met.Theory), len(sim.Theory))
	}
	for i := range met.Theory {
		if met.Theory[i].String() != sim.Theory[i].String() {
			t.Fatalf("rule %d differs:\nnet: %s\nsim: %s", i, met.Theory[i], sim.Theory[i])
		}
	}
	if met.Epochs != sim.Epochs || met.JoinedWorkers != sim.JoinedWorkers || met.Rebalances != sim.Rebalances {
		t.Fatalf("run shape differs: net epochs=%d joined=%d rebal=%d vs sim epochs=%d joined=%d rebal=%d",
			met.Epochs, met.JoinedWorkers, met.Rebalances, sim.Epochs, sim.JoinedWorkers, sim.Rebalances)
	}
	if met.TotalInferences != sim.TotalInferences {
		t.Fatalf("inference totals differ: net %d vs sim %d", met.TotalInferences, sim.TotalInferences)
	}
}
