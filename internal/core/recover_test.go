package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// learnWithChaos is Learn's wiring on makeTask with the network exposed,
// so a test can kill a worker at a precise protocol point via the trace
// hook.
func learnWithChaos(t *testing.T, p int, cfg Config, chaos func(nw *cluster.Network, e cluster.Event)) (*Metrics, error) {
	t.Helper()
	kb, pos, neg, ms := makeTask(t)
	return learnTaskWithChaos(t, kb, pos, neg, ms, p, cfg, chaos)
}

// learnTaskWithChaos is learnWithChaos over an explicit task.
func learnTaskWithChaos(t *testing.T, kb *solve.KB, pos, neg []logic.Term, ms *mode.Set, p int, cfg Config, chaos func(nw *cluster.Network, e cluster.Event)) (*Metrics, error) {
	t.Helper()
	cfg = cfg.withDefaults()
	posParts, negParts := splitExamples(pos, neg, p, cfg.Seed)
	nw := cluster.NewNetwork(p+1, cfg.Cost)
	nw.SetTrace(func(e cluster.Event) { chaos(nw, e) })

	workers := make([]*worker, p)
	for k := 1; k <= p; k++ {
		workers[k-1] = newWorker(k, p, nw.Node(k), kb, search.NewExamples(posParts[k-1], negParts[k-1]), ms, cfg)
	}
	metrics := &Metrics{Workers: p, Width: cfg.Width}
	ma := newMaster(nw.Node(0), p, cfg, metrics, len(pos), posParts, negParts)

	errCh := make(chan error, p+1)
	var wg sync.WaitGroup
	wg.Add(p)
	for _, w := range workers {
		go func(w *worker) {
			defer wg.Done()
			if err := w.run(); err != nil {
				errCh <- err
				if cfg.Recover {
					nw.Kill(w.id)
				} else {
					nw.Shutdown()
				}
			}
		}(w)
	}
	masterErr := ma.run()
	if masterErr != nil {
		nw.Shutdown()
	}
	wg.Wait()
	close(errCh)
	if masterErr != nil {
		return nil, masterErr
	}
	if !cfg.Recover {
		for err := range errCh {
			if err != nil {
				return nil, err
			}
		}
	}
	metrics.Theory = ma.theory
	metrics.VirtualTime = nw.Makespan().Duration()
	return metrics, nil
}

// TestRecoverFromWorkerDeathMidEpoch is the simulated chaos test: worker 2
// of 3 is killed mid-epoch — right as the master broadcasts the first bag
// evaluation, so a gather is provably in flight — and the run must
// complete on the survivors with a valid theory and Recoveries ≥ 1.
func TestRecoverFromWorkerDeathMidEpoch(t *testing.T) {
	cfg := testConfig(3, 10)
	cfg.Recover = true
	cfg.RecvTimeout = 30 * time.Second
	var once sync.Once
	met, err := learnWithChaos(t, 3, cfg, func(nw *cluster.Network, e cluster.Event) {
		if e.Type == cluster.EvSend && e.Node == 0 && e.Kind == kindEvaluate {
			once.Do(func() { nw.Kill(2) })
		}
	})
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if met.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want ≥ 1", met.Recoveries)
	}
	if met.LostWorkers != 1 {
		t.Fatalf("LostWorkers = %d, want 1", met.LostWorkers)
	}
	// Every positive must still be covered or adopted: the dead worker's
	// partition was redistributed and re-learned on the survivors.
	kb, pos, _, _ := makeTask(t)
	theoryCoversAll(t, kb, met.Theory, pos)
}

// TestRecoverFromDeathDuringPipelines kills the worker while pipelines are
// running (first stage hand-off), exercising lost-pipeline recovery: the
// master never receives the dead worker's rules and must re-issue.
func TestRecoverFromDeathDuringPipelines(t *testing.T) {
	cfg := testConfig(3, 10)
	cfg.Recover = true
	cfg.RecvTimeout = 30 * time.Second
	var once sync.Once
	met, err := learnWithChaos(t, 3, cfg, func(nw *cluster.Network, e cluster.Event) {
		if e.Type == cluster.EvSend && e.Kind == kindStage {
			once.Do(func() { nw.Kill(3) })
		}
	})
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if met.Recoveries < 1 || met.LostWorkers != 1 {
		t.Fatalf("Recoveries = %d LostWorkers = %d", met.Recoveries, met.LostWorkers)
	}
	kb, pos, _, _ := makeTask(t)
	theoryCoversAll(t, kb, met.Theory, pos)
}

// TestRecoverSurvivesTwoDeaths loses two of four workers at different
// protocol points and still requires a complete theory.
func TestRecoverSurvivesTwoDeaths(t *testing.T) {
	cfg := testConfig(4, 10)
	cfg.Recover = true
	cfg.RecvTimeout = 30 * time.Second
	var kills atomic.Int64
	met, err := learnWithChaos(t, 4, cfg, func(nw *cluster.Network, e cluster.Event) {
		if e.Type != cluster.EvSend || e.Node != 0 {
			return
		}
		if e.Kind == kindEvaluate && kills.CompareAndSwap(0, 1) {
			nw.Kill(2)
		}
		if e.Kind == kindMarkCovered && kills.CompareAndSwap(1, 2) {
			nw.Kill(4)
		}
	})
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if met.LostWorkers != 2 {
		t.Fatalf("LostWorkers = %d, want 2", met.LostWorkers)
	}
	if met.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want ≥ 1", met.Recoveries)
	}
	kb, pos, _, _ := makeTask(t)
	theoryCoversAll(t, kb, met.Theory, pos)
}

// TestRecoverDeathDuringAdoptFallbackLosesNothing pins the late-adoption
// rule: a worker dies the instant the adopt fallback is broadcast, so the
// survivors' adoptions — already retracted locally — come back tagged
// with an epoch the recovery has abandoned. The master must still admit
// them into the theory (acceptStale), or those positives would end up
// neither covered nor adopted.
func TestRecoverDeathDuringAdoptFallbackLosesNothing(t *testing.T) {
	// An unlearnable task: every epoch's bag is empty, so progress comes
	// from adoption alone (same construction as
	// TestFallbackAdoptsUnlearnablePositive, sized for three workers).
	kb := solve.NewKB()
	var pos, neg []logic.Term
	for i := 1; i <= 6; i++ {
		kb.AddFact(logic.MustParseTerm(fmt.Sprintf("atm(p%d, a%d, carbon)", i, i)))
		kb.AddFact(logic.MustParseTerm(fmt.Sprintf("atm(n%d, b%d, carbon)", i, i)))
		pos = append(pos, logic.MustParseTerm(fmt.Sprintf("active(p%d)", i)))
		neg = append(neg, logic.MustParseTerm(fmt.Sprintf("active(n%d)", i)))
	}
	ms := mode.MustParseSet(`
		modeh(1, active(+mol)).
		modeb('*', atm(+mol, -atomid, #element)).
	`)
	cfg := testConfig(3, 10)
	cfg.Search.MinPrec = 0.95
	cfg.Recover = true
	cfg.RecvTimeout = 30 * time.Second
	var once sync.Once
	met, err := learnTaskWithChaos(t, kb, pos, neg, ms, 3, cfg, func(nw *cluster.Network, e cluster.Event) {
		if e.Type == cluster.EvSend && e.Node == 0 && e.Kind == kindAdopt {
			once.Do(func() { nw.Kill(3) })
		}
	})
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if met.Recoveries < 1 || met.LostWorkers != 1 {
		t.Fatalf("Recoveries = %d LostWorkers = %d", met.Recoveries, met.LostWorkers)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
	if met.GroundFactsAdopted < len(pos) {
		t.Fatalf("GroundFactsAdopted = %d, want ≥ %d", met.GroundFactsAdopted, len(pos))
	}
}

// TestRecoverModeFailureFreeByteIdentical pins the acceptance bar for the
// refactor: with no failure injected, a Recover run is indistinguishable
// from a fail-stop run — same theory, same epochs, same bytes on the wire.
func TestRecoverModeFailureFreeByteIdentical(t *testing.T) {
	kb1, pos1, neg1, ms1 := makeTask(t)
	base, err := Learn(kb1, pos1, neg1, ms1, testConfig(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	kb2, pos2, neg2, ms2 := makeTask(t)
	cfg := testConfig(4, 10)
	cfg.Recover = true
	rec, err := Learn(kb2, pos2, neg2, ms2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Theory) != len(rec.Theory) {
		t.Fatalf("theory sizes differ: %d vs %d", len(base.Theory), len(rec.Theory))
	}
	for i := range base.Theory {
		if base.Theory[i].String() != rec.Theory[i].String() {
			t.Fatalf("rule %d differs:\n%s\n%s", i, base.Theory[i], rec.Theory[i])
		}
	}
	if base.Epochs != rec.Epochs || base.CommBytes != rec.CommBytes || base.CommMessages != rec.CommMessages {
		t.Fatalf("run shape differs: base %d/%d/%d vs recover %d/%d/%d",
			base.Epochs, base.CommBytes, base.CommMessages, rec.Epochs, rec.CommBytes, rec.CommMessages)
	}
	if rec.Recoveries != 0 || rec.LostWorkers != 0 || rec.StaleDropped != 0 {
		t.Fatalf("phantom recovery: %+v", rec)
	}
}

// TestRecoverPanickingWorkerViaLearn pins the public Learn path: a worker
// goroutine that panics mid-run is converted to a crash of just that node
// and recovered around — the same injection TestWorkerPanicSurfacesAsError
// uses, which without Recover fails the whole run.
func TestRecoverPanickingWorkerViaLearn(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(3, 10)
	cfg.Recover = true
	cfg.RecvTimeout = 30 * time.Second
	cfg.Trace = func(e cluster.Event) {
		if e.Type == cluster.EvCompute && e.Node == 1 {
			panic(fmt.Sprintf("injected panic on node %d", e.Node))
		}
	}
	met, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatalf("Learn failed despite recovery: %v", err)
	}
	if met.LostWorkers != 1 || met.Recoveries < 1 {
		t.Fatalf("LostWorkers = %d Recoveries = %d", met.LostWorkers, met.Recoveries)
	}
	// The recovered-around failure must stay visible, not be laundered
	// into an anonymous crash.
	if len(met.WorkerErrors) != 1 || !strings.Contains(met.WorkerErrors[0], "panicked") {
		t.Fatalf("WorkerErrors = %v, want the recorded panic", met.WorkerErrors)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
	_ = neg
}

// TestRecoverDuringRepartition kills a worker in the same epoch as a
// per-epoch repartition, at each protocol point of the gather/redeal
// exchange. The repartition moves every worker's uncovered positives
// through the master, so the tracked assignedPos/Neg bookkeeping — what
// recovery redistributes — must stay consistent across the abort: no
// positive may end up unowned (covered by nobody, adopted by nobody).
func TestRecoverDuringRepartition(t *testing.T) {
	kills := []struct {
		name string
		kind int
		node int // -1: any sender of kind
	}{
		{"on gather broadcast", kindGather, 0},
		{"on gathered reply", kindGathered, -1},
		{"on repartition deal", kindRepartition, 0},
	}
	for _, k := range kills {
		k := k
		t.Run(k.name, func(t *testing.T) {
			kb, pos, neg, ms := makeWideTask(t)
			cfg := testConfig(3, 10)
			cfg.RepartitionEachEpoch = true
			cfg.Recover = true
			cfg.RecvTimeout = 30 * time.Second
			var once sync.Once
			met, err := learnTaskWithChaosElastic(t, kb, pos, neg, ms, 3, cfg, func(nw *cluster.Network, e cluster.Event) {
				if e.Type != cluster.EvSend || e.Kind != k.kind {
					return
				}
				if k.node >= 0 && e.Node != k.node {
					return
				}
				once.Do(func() { nw.Kill(2) })
			})
			if err != nil {
				t.Fatalf("recovery run failed: %v", err)
			}
			if met.LostWorkers != 1 || met.Recoveries < 1 {
				t.Fatalf("LostWorkers = %d Recoveries = %d", met.LostWorkers, met.Recoveries)
			}
			theoryCoversAll(t, kb, met.Theory, pos)
		})
	}
}

// TestRecoverDuringRepartitionConsecutiveEpochs stresses the interaction
// over repeated repartitions: a second worker dies in a later epoch's
// repartition, after the first recovery already tightened and re-dealt the
// tracked assignments.
func TestRecoverDuringRepartitionConsecutiveEpochs(t *testing.T) {
	kb, pos, neg, ms := makeWideTask(t)
	cfg := testConfig(4, 10)
	cfg.RepartitionEachEpoch = true
	cfg.Recover = true
	cfg.RecvTimeout = 30 * time.Second
	var kills atomic.Int64
	met, err := learnTaskWithChaosElastic(t, kb, pos, neg, ms, 4, cfg, func(nw *cluster.Network, e cluster.Event) {
		if e.Type != cluster.EvSend || e.Node != 0 {
			return
		}
		if e.Kind == kindGather && kills.CompareAndSwap(0, 1) {
			nw.Kill(2)
		}
		if e.Kind == kindRepartition && kills.Load() == 1 && kills.CompareAndSwap(1, 2) {
			nw.Kill(4)
		}
	})
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if met.LostWorkers != 2 || met.Recoveries < 1 {
		t.Fatalf("LostWorkers = %d Recoveries = %d", met.LostWorkers, met.Recoveries)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
}
