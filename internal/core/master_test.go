package core

import (
	"sort"
	"testing"

	"repro/internal/logic"
	"repro/internal/search"
)

func newTestMaster(minPos int, minPrec float64) *master {
	cfg := Config{
		Workers: 2,
		Search:  search.Settings{MinPos: minPos, MinPrec: minPrec},
	}.withDefaults()
	return &master{p: 2, cfg: cfg, metrics: &Metrics{}}
}

func entry(ruleSrc string, pos, neg int) bagEntry {
	rule := logic.MustParseClause(ruleSrc)
	return bagEntry{rule: rule, key: rule.Key(), pos: pos, neg: neg}
}

func TestFilterGoodDropsGloballyBadRules(t *testing.T) {
	ma := newTestMaster(2, 0.8)
	bag := []bagEntry{
		entry("p(X) :- q(X).", 10, 1), // precision 10/11 ≈ 0.91: keep
		entry("p(X) :- r(X).", 10, 5), // precision 0.67: drop
		entry("p(X) :- s(X).", 1, 0),  // below MinPos: drop
		entry("p(X) :- u(X).", 0, 0),  // covers nothing: drop
		entry("p(X) :- w(X).", 4, 1),  // precision 0.8: keep
	}
	out := ma.filterGood(bag)
	if len(out) != 2 {
		t.Fatalf("filterGood kept %d, want 2", len(out))
	}
	if out[0].rule.String() != "p(A) :- q(A)" || out[1].rule.String() != "p(A) :- w(A)" {
		t.Fatalf("wrong survivors: %v %v", out[0].rule, out[1].rule)
	}
}

func TestPickBestByGlobalScore(t *testing.T) {
	ma := newTestMaster(1, 0.1)
	bag := []bagEntry{
		entry("p(X) :- q(X).", 5, 2), // score 3
		entry("p(X) :- r(X).", 9, 1), // score 8: best
		entry("p(X) :- s(X).", 7, 0), // score 7
	}
	best, rest := ma.pickBest(bag)
	if best.rule.String() != "p(A) :- r(A)" {
		t.Fatalf("picked %s", best.rule)
	}
	if len(rest) != 2 {
		t.Fatalf("rest = %d", len(rest))
	}
}

func TestPickBestTieBreaks(t *testing.T) {
	ma := newTestMaster(1, 0.1)
	// Same score (4): higher pos wins.
	bag := []bagEntry{
		entry("p(X) :- a(X).", 5, 1), // score 4, pos 5
		entry("p(X) :- b(X).", 6, 2), // score 4, pos 6: wins
	}
	best, _ := ma.pickBest(bag)
	if best.pos != 6 {
		t.Fatalf("tie-break by pos failed: %+v", best)
	}
	// Same score and pos: shorter body wins.
	bag = []bagEntry{
		entry("p(X) :- a(X), c(X).", 5, 1),
		entry("p(X) :- b(X).", 5, 1),
	}
	best, _ = ma.pickBest(bag)
	if len(best.rule.Body) != 1 {
		t.Fatalf("tie-break by length failed: %s", best.rule)
	}
	// Fully tied except key: lexicographic key order, deterministic.
	bag = []bagEntry{
		entry("p(X) :- zb(X).", 5, 1),
		entry("p(X) :- ab(X).", 5, 1),
	}
	best, _ = ma.pickBest(bag)
	if best.rule.String() != "p(A) :- ab(A)" {
		t.Fatalf("tie-break by key failed: %s", best.rule)
	}
}

// pickBestSortReference is the original implementation — a full stable
// sort per pick — kept here as the behavioural reference for the
// single-pass max that replaced it.
func pickBestSortReference(ma *master, bag []bagEntry) (bagEntry, []bagEntry) {
	sort.SliceStable(bag, func(i, j int) bool {
		a, b := bag[i], bag[j]
		sa := ma.cfg.Search.Score(a.pos, a.neg, len(a.rule.Body))
		sb := ma.cfg.Search.Score(b.pos, b.neg, len(b.rule.Body))
		if sa != sb {
			return sa > sb
		}
		if a.pos != b.pos {
			return a.pos > b.pos
		}
		if len(a.rule.Body) != len(b.rule.Body) {
			return len(a.rule.Body) < len(b.rule.Body)
		}
		return a.key < b.key
	})
	return bag[0], bag[1:]
}

// TestPickBestMatchesSortReference pins the consumption order: draining a
// bag with the single-pass pickBest yields exactly the pick sequence the
// sort-based implementation produced, on randomized bags with heavy
// score/coverage ties.
func TestPickBestMatchesSortReference(t *testing.T) {
	ma := newTestMaster(1, 0.1)
	rng := newRng(17)
	preds := []string{"a", "b", "c", "dd", "ee", "ff", "ggg", "hh", "iii", "jj"}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.intn(len(preds))
		var bag []bagEntry
		for i := 0; i < n; i++ {
			body := preds[i]
			src := "p(X) :- " + body + "(X)."
			if rng.intn(2) == 0 {
				src = "p(X) :- " + body + "(X), q(X)."
			}
			// Small ranges force frequent score and coverage ties, so the
			// deeper tie-breaks actually run.
			bag = append(bag, entry(src, 1+rng.intn(4), rng.intn(3)))
		}
		ref := make([]bagEntry, len(bag))
		copy(ref, bag)
		got := make([]bagEntry, len(bag))
		copy(got, bag)
		for len(ref) > 0 {
			var wantBest, gotBest bagEntry
			wantBest, ref = pickBestSortReference(ma, ref)
			gotBest, got = ma.pickBest(got)
			if wantBest.key != gotBest.key {
				t.Fatalf("trial %d: pick diverged: sort-reference %s, single-pass %s", trial, wantBest.key, gotBest.key)
			}
			if len(ref) != len(got) {
				t.Fatalf("trial %d: rest sizes diverged: %d vs %d", trial, len(ref), len(got))
			}
		}
	}
}

func TestPartitionEvenAndSeeded(t *testing.T) {
	rng := newRng(42)
	parts := partition(103, 8, rng)
	total := 0
	for _, p := range parts {
		total += len(p)
		if len(p) < 103/8 || len(p) > 103/8+1 {
			t.Fatalf("unbalanced partition: %d", len(p))
		}
	}
	if total != 103 {
		t.Fatalf("lost examples: %d", total)
	}
	seen := make(map[int]bool)
	for _, p := range parts {
		for _, v := range p {
			if seen[v] {
				t.Fatalf("duplicate index %d", v)
			}
			seen[v] = true
		}
	}
	// Same seed → same partition.
	again := partition(103, 8, newRng(42))
	for i := range parts {
		for j := range parts[i] {
			if parts[i][j] != again[i][j] {
				t.Fatal("partition not seed-deterministic")
			}
		}
	}
	// Different seed → (almost surely) different partition.
	other := partition(103, 8, newRng(43))
	same := true
	for i := range parts {
		for j := range parts[i] {
			if parts[i][j] != other[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical partitions")
	}
}

func TestRngShuffleIsPermutation(t *testing.T) {
	rng := newRng(7)
	xs := make([]int, 50)
	for i := range xs {
		xs[i] = i
	}
	rng.shuffle(xs)
	seen := make(map[int]bool)
	for _, v := range xs {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", xs)
		}
		seen[v] = true
	}
}
