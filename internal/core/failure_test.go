package core

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mode"
	"repro/internal/search"
)

// Failure injection: protocol violations must surface as errors from the
// worker loop and not hang the run.

func TestWorkerRejectsUnknownMessageKind(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	nw := cluster.NewNetwork(2, cluster.CostModel{})
	w := newWorker(1, 1, nw.Node(1), kb, search.NewExamples(pos[:4], neg[:4]), ms, Config{Workers: 1}.withDefaults())
	nw.SetCodec(cluster.CodecGob) // bare struct{} payloads have no wire encoding
	if err := nw.Node(0).Send(1, 999, struct{}{}); err != nil {
		t.Fatal(err)
	}
	err := w.run()
	if err == nil || !strings.Contains(err.Error(), "unknown message kind") {
		t.Fatalf("worker error = %v, want unknown-kind error", err)
	}
}

func TestWorkerRejectsMalformedPayload(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	nw := cluster.NewNetwork(2, cluster.CostModel{})
	w := newWorker(1, 1, nw.Node(1), kb, search.NewExamples(pos[:4], neg[:4]), ms, Config{Workers: 1}.withDefaults())
	// A stage message whose payload is a completely different shape,
	// injected under the gob codec (bare strings have no wire encoding).
	nw.SetCodec(cluster.CodecGob)
	if err := nw.Node(0).Send(1, kindStage, "not a stage message"); err != nil {
		t.Fatal(err)
	}
	if err := w.run(); err == nil {
		t.Fatal("malformed payload accepted")
	}
}

func TestWorkerExitsCleanlyOnShutdown(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	nw := cluster.NewNetwork(2, cluster.CostModel{})
	w := newWorker(1, 1, nw.Node(1), kb, search.NewExamples(pos[:4], neg[:4]), ms, Config{Workers: 1}.withDefaults())
	done := make(chan error, 1)
	go func() { done <- w.run() }()
	nw.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("shutdown produced error: %v", err)
	}
}

func TestMasterErrorReleasesWorkers(t *testing.T) {
	// A master that dies mid-protocol must not leave worker goroutines
	// stuck: Learn returns an error and all goroutines exit. Simulate by
	// feeding the master an out-of-protocol message through a rogue
	// config: easiest is Workers with no positive examples on any side —
	// covered by validation — so instead inject via an impossible mode
	// set that makes saturation fail on every worker.
	kb, pos, neg, _ := makeTask(t)
	badModes := mustBadModes(t)
	_, err := Learn(kb, pos, neg, badModes, testConfig(2, 5))
	if err == nil {
		t.Fatal("expected error from failing saturation")
	}
}

func mustBadModes(t *testing.T) *mode.Set {
	t.Helper()
	// A head mode whose predicate does not match the examples: every
	// start_pipeline errors during saturation.
	ms, err := mode.ParseSet(`
		modeh(1, wrong_pred(+mol)).
		modeb(1, atm(+mol, -atomid, #element)).
	`)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}
