package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/solve"
)

// receiveWithTimeout is the one blocking receive used by master and
// workers: context-based, so a deadline (when configured) or a transport
// failure unblocks it with an error instead of deadlocking the protocol.
func receiveWithTimeout(t cluster.Transport, timeout time.Duration) (cluster.Message, error) {
	if timeout <= 0 {
		return t.ReceiveCtx(context.Background())
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return t.ReceiveCtx(ctx)
}

// Fingerprint summarises the loaded task for the netcluster join
// handshake. Gob payloads reference interned symbol indices, so master and
// workers must have built identical symbol tables — which they do exactly
// when they loaded the same dataset the same way. The fingerprint hashes
// the symbol table in intern order plus the examples and the background
// size; a worker started on different data is rejected at join time
// instead of silently mis-decoding every message. Search settings are not
// part of the fingerprint: the master ships those in the load message.
func Fingerprint(kb *solve.KB, pos, neg []logic.Term) uint64 {
	h := fnv.New64a()
	write := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }
	write("p2mdie-fp-v1")
	write(fmt.Sprintf("syms=%d", logic.NumSymbols()))
	for i := 0; i < logic.NumSymbols(); i++ {
		write(logic.Symbol(i).Name())
	}
	write(fmt.Sprintf("kb=%d", kb.Size()))
	write(fmt.Sprintf("pos=%d", len(pos)))
	for _, e := range pos {
		write(e.String())
	}
	write(fmt.Sprintf("neg=%d", len(neg)))
	for _, e := range neg {
		write(e.String())
	}
	return h.Sum64()
}

// RunWorker drives one multi-process p²-mdie worker over an established
// transport (normally a netcluster node joined via Serve): it waits for
// its partition and settings in kindLoad, serves the pipeline protocol,
// and reports its totals on kindStop. The background knowledge and mode
// set are the worker's share of the paper's shared filesystem; everything
// else comes from the master. Panics are converted to errors so a bug in
// one worker surfaces at the master as a link failure, not a hang.
func RunWorker(t cluster.Transport, kb *solve.KB, ms *mode.Set, cfg Config) (err error) {
	if t.ID() < 1 {
		return fmt.Errorf("core: RunWorker needs a worker node id (≥ 1), got %d", t.ID())
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: worker %d panicked: %v", t.ID(), r)
		}
	}()
	cfg = cfg.withDefaults()
	if err := checkLinkGrace(t, cfg); err != nil {
		return err
	}
	w := newRemoteWorker(t, kb, ms, cfg)
	return w.run()
}

// checkLinkGrace rejects a transport whose link-reconnect grace window
// (DESIGN.md §9) is as long as the protocol's receive timeout: the grace
// window is supposed to hide a transient partition INSIDE a receive wait,
// so one that can outlast the wait guarantees a spurious protocol timeout
// on every flap instead of a seamless replay.
func checkLinkGrace(t cluster.Transport, cfg Config) error {
	lg, ok := asLinkGracer(t)
	if !ok {
		return nil
	}
	grace := lg.LinkGrace()
	if grace > 0 && cfg.RecvTimeout > 0 && grace >= cfg.RecvTimeout {
		return fmt.Errorf("core: link grace window %s must be shorter than RecvTimeout %s (a flap must heal inside one receive wait)",
			grace, cfg.RecvTimeout)
	}
	return nil
}

// RunMaster drives the p²-mdie master over an established transport whose
// peers are RunWorker processes: it partitions the examples exactly as the
// simulated Learn does (same seeded shuffle, same deal), ships each
// worker its partition, runs the epochs of Fig. 5, and assembles Metrics
// from the workers' final reports. With the same dataset, seed and
// settings, the learned theory is byte-identical to Learn's. On error the
// caller must Abort the underlying transport so workers see the failure
// instead of waiting on a heartbeat-alive but silent master.
func RunMaster(t cluster.Transport, pos, neg []logic.Term, cfg Config) (*Metrics, error) {
	cfg = cfg.withDefaults()
	p := t.Size() - 1
	if t.ID() != 0 {
		return nil, fmt.Errorf("core: RunMaster needs node id 0, got %d", t.ID())
	}
	if p < 1 {
		return nil, fmt.Errorf("core: RunMaster needs ≥ 1 worker, transport has %d nodes", t.Size())
	}
	if len(pos) == 0 {
		return nil, fmt.Errorf("core: no positive examples")
	}
	if cfg.CheckpointDir != "" && cfg.AddLearnedToBK {
		return nil, fmt.Errorf("core: CheckpointDir is incompatible with AddLearnedToBK: rollback cannot retract asserted rules")
	}
	if err := checkLinkGrace(t, cfg); err != nil {
		return nil, err
	}

	// Fig. 5 step 2: the same random even partition as the simulation
	// (shared splitExamples — the byte-identity guarantee depends on it).
	posParts, negParts := splitExamples(pos, neg, p, cfg.Seed)
	parts := make([]loadDataMsg, p)
	for k := 0; k < p; k++ {
		parts[k] = cfg.loadSettings()
		parts[k].Pos = posParts[k]
		parts[k].Neg = negParts[k]
	}

	metrics := &Metrics{Workers: p, Width: cfg.Width}
	ma := newMaster(t, p, cfg, metrics, len(pos), posParts, negParts)
	ma.parts = parts

	start := time.Now()
	if err := ma.run(); err != nil {
		return nil, err
	}

	metrics.Theory = ma.theory
	metrics.WallTime = time.Since(start)

	// The simulation reads clocks, work totals and traffic off the worker
	// structs; here they arrive in the final reports. The table is sized
	// to the transport's final node count (joins may have grown it) and
	// Merge folds smaller per-node reports in by link identity.
	traffic := cluster.NewTraffic(t.Size())
	if tr, ok := t.(cluster.TrafficReporter); ok {
		traffic.Merge(tr.Traffic())
	}
	makespan := t.Clock()
	for _, fm := range ma.finals {
		metrics.TotalInferences += fm.Inferences
		metrics.GeneratedRules += fm.Generated
		metrics.FencedFrames += fm.Fenced
		metrics.LinkFlaps += fm.Flaps
		metrics.ReplayedFrames += fm.Replayed
		if c := cluster.VTime(fm.Clock); c > makespan {
			makespan = c
		}
		traffic.Merge(fm.Traffic)
	}
	if ls, ok := asLinkStatser(t); ok {
		flaps, replayed := ls.LinkStats()
		metrics.LinkFlaps += flaps
		metrics.ReplayedFrames += replayed
	}
	metrics.VirtualTime = makespan.Duration()
	metrics.Traffic = traffic
	metrics.CommBytes = traffic.TotalBytes()
	metrics.CommMessages = traffic.TotalMsgs()
	return metrics, nil
}
