package core

import (
	"testing"
)

func TestRepartitionStillCoversAll(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(4, 10)
	cfg.RepartitionEachEpoch = true
	met, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
}

func TestRepartitionCostsCommunication(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	base, err := Learn(kb, pos, neg, ms, testConfig(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(4, 10)
	cfg.RepartitionEachEpoch = true
	repart, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Repartitioning only pays off in message volume when several epochs
	// run; with a single epoch nothing is exchanged. In all cases it must
	// never reduce traffic.
	if repart.CommBytes < base.CommBytes {
		t.Fatalf("repartitioning decreased traffic: %d < %d", repart.CommBytes, base.CommBytes)
	}
	if repart.Epochs > 1 && repart.CommMessages <= base.CommMessages {
		t.Fatalf("multi-epoch repartition should add messages: %d vs %d", repart.CommMessages, base.CommMessages)
	}
}

func TestRepartitionDeterministic(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(3, 5)
	cfg.RepartitionEachEpoch = true
	m1, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Theory) != len(m2.Theory) || m1.CommBytes != m2.CommBytes || m1.Epochs != m2.Epochs {
		t.Fatalf("nondeterministic repartition run: %+v vs %+v", m1, m2)
	}
	for i := range m1.Theory {
		if m1.Theory[i].String() != m2.Theory[i].String() {
			t.Fatalf("rule %d differs", i)
		}
	}
}
