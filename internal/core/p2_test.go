package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/covering"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// makeTask builds a molecular task where activity has two latent causes:
// an oxygen atom, or a heavy (weight ≥ 30) atom. Enough examples that
// every partition keeps signal at p = 8.
func makeTask(t testing.TB) (*solve.KB, []logic.Term, []logic.Term, *mode.Set) {
	t.Helper()
	kb := solve.NewKB()
	var pos, neg []logic.Term
	id := 0
	add := func(elements []string, isPos bool) {
		id++
		mol := fmt.Sprintf("m%d", id)
		for i, el := range elements {
			atom := fmt.Sprintf("%s_a%d", mol, i)
			kb.AddFact(logic.MustParseTerm(fmt.Sprintf("atm(%s, %s, %s)", mol, atom, el)))
		}
		e := logic.MustParseTerm(fmt.Sprintf("active(%s)", mol))
		if isPos {
			pos = append(pos, e)
		} else {
			neg = append(neg, e)
		}
	}
	fillers := [][]string{
		{"carbon", "nitrogen"},
		{"carbon", "carbon", "nitrogen"},
		{"nitrogen"},
		{"carbon"},
	}
	for i := 0; i < 16; i++ {
		add(append([]string{"oxygen"}, fillers[i%4]...), true)
	}
	for i := 0; i < 16; i++ {
		heavy := "sulfur"
		if i%2 == 0 {
			heavy = "chlorine"
		}
		add(append([]string{heavy}, fillers[i%4]...), true)
	}
	for i := 0; i < 24; i++ {
		add(fillers[i%4], false)
	}
	ms := mode.MustParseSet(`
		modeh(1, active(+mol)).
		modeb('*', atm(+mol, -atomid, #element)).
	`)
	return kb, pos, neg, ms
}

func testConfig(p, width int) Config {
	return Config{
		Workers: p,
		Width:   width,
		Seed:    11,
		Search:  search.Settings{MaxClauseLen: 2, MinPrec: 0.8, NodesLimit: 500},
	}
}

func theoryCoversAll(t *testing.T, kb *solve.KB, theory []logic.Clause, pos []logic.Term) {
	t.Helper()
	m := solve.NewMachine(kb, solve.Budget{})
	for _, e := range pos {
		if !search.TheoryCovers(m, theory, e) {
			t.Fatalf("theory does not cover %s; theory: %v", e, theory)
		}
	}
}

func TestLearnSingleWorker(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	met, err := Learn(kb, pos, neg, ms, testConfig(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
	if met.Epochs < 1 {
		t.Fatalf("epochs = %d", met.Epochs)
	}
	if met.RulesLearned == 0 {
		t.Fatal("no rules learned")
	}
}

func TestLearnMultiWorkerCoversAll(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			kb, pos, neg, ms := makeTask(t)
			met, err := Learn(kb, pos, neg, ms, testConfig(p, 10))
			if err != nil {
				t.Fatal(err)
			}
			theoryCoversAll(t, kb, met.Theory, pos)
			if met.Workers != p {
				t.Fatalf("Workers = %d", met.Workers)
			}
			if met.CommBytes <= 0 || met.CommMessages <= 0 {
				t.Fatalf("communication not recorded: %+v", met)
			}
			if met.VirtualTime <= 0 || met.WallTime <= 0 {
				t.Fatalf("times not recorded: %+v", met)
			}
			if met.TotalInferences <= 0 || met.GeneratedRules <= 0 {
				t.Fatalf("work not recorded: %+v", met)
			}
		})
	}
}

func TestLearnDeterministic(t *testing.T) {
	kb1, pos1, neg1, ms1 := makeTask(t)
	kb2, pos2, neg2, ms2 := makeTask(t)
	m1, err := Learn(kb1, pos1, neg1, ms1, testConfig(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Learn(kb2, pos2, neg2, ms2, testConfig(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Theory) != len(m2.Theory) {
		t.Fatalf("theory sizes differ: %d vs %d", len(m1.Theory), len(m2.Theory))
	}
	for i := range m1.Theory {
		if m1.Theory[i].String() != m2.Theory[i].String() {
			t.Fatalf("rule %d differs:\n%s\n%s", i, m1.Theory[i], m2.Theory[i])
		}
	}
	if m1.Epochs != m2.Epochs {
		t.Fatalf("epochs differ: %d vs %d", m1.Epochs, m2.Epochs)
	}
	if m1.CommBytes != m2.CommBytes {
		t.Fatalf("comm bytes differ: %d vs %d", m1.CommBytes, m2.CommBytes)
	}
}

func TestDifferentSeedDifferentPartition(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(4, 10)
	m1, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	m2, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Different partitions may learn different theories, but both must be
	// complete.
	theoryCoversAll(t, kb, m1.Theory, pos)
	theoryCoversAll(t, kb, m2.Theory, pos)
}

func TestWidthLimitReducesCommunication(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	unlimited, err := Learn(kb, pos, neg, ms, testConfig(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Learn(kb, pos, neg, ms, testConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if narrow.CommBytes > unlimited.CommBytes {
		t.Fatalf("W=1 moved more bytes (%d) than nolimit (%d)", narrow.CommBytes, unlimited.CommBytes)
	}
	theoryCoversAll(t, kb, narrow.Theory, pos)
}

func TestParallelMatchesSequentialQuality(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	seqEx := search.NewExamples(pos, neg)
	seqRes, err := covering.Learn(kb, seqEx, ms, covering.Config{
		Search: search.Settings{MaxClauseLen: 2, MinPrec: 0.8, NodesLimit: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Learn(kb, pos, neg, ms, testConfig(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	seqAcc := covering.Accuracy(kb, seqRes.Theory, pos, neg, solve.Budget{})
	parAcc := covering.Accuracy(kb, par.Theory, pos, neg, solve.Budget{})
	if seqAcc < 0.95 {
		t.Fatalf("sequential baseline accuracy too low: %v", seqAcc)
	}
	if parAcc < seqAcc-0.1 {
		t.Fatalf("parallel accuracy %v far below sequential %v", parAcc, seqAcc)
	}
}

func TestFallbackAdoptsUnlearnablePositive(t *testing.T) {
	kb := solve.NewKB()
	kb.AddFact(logic.MustParseTerm("atm(p1, a1, carbon)"))
	kb.AddFact(logic.MustParseTerm("atm(p2, a2, carbon)"))
	kb.AddFact(logic.MustParseTerm("atm(n1, b1, carbon)"))
	kb.AddFact(logic.MustParseTerm("atm(n2, b2, carbon)"))
	pos := []logic.Term{logic.MustParseTerm("active(p1)"), logic.MustParseTerm("active(p2)")}
	neg := []logic.Term{logic.MustParseTerm("active(n1)"), logic.MustParseTerm("active(n2)")}
	ms := mode.MustParseSet(`
		modeh(1, active(+mol)).
		modeb('*', atm(+mol, -atomid, #element)).
	`)
	cfg := testConfig(2, 10)
	cfg.Search.MinPrec = 0.95
	met, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if met.GroundFactsAdopted != 2 {
		t.Fatalf("GroundFactsAdopted = %d, want 2", met.GroundFactsAdopted)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
}

func TestConfigValidation(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	if _, err := Learn(kb, pos, neg, ms, Config{Workers: 0}); err == nil {
		t.Fatal("Workers=0 accepted")
	}
	if _, err := Learn(kb, nil, neg, ms, testConfig(2, 0)); err == nil {
		t.Fatal("no positives accepted")
	}
}

func TestTraceObservesPipelineHandOffs(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(3, 5)
	var mu sync.Mutex
	stageSends := 0
	cfg.Trace = func(e cluster.Event) {
		mu.Lock()
		defer mu.Unlock()
		if e.Type == cluster.EvSend && e.Kind == kindStage {
			stageSends++
		}
	}
	met, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// Each epoch runs 3 pipelines × 2 hand-offs (stages 2 and 3).
	want := met.Epochs * 3 * 2
	if stageSends != want {
		t.Fatalf("stage hand-offs = %d, want %d (epochs=%d)", stageSends, want, met.Epochs)
	}
}

func TestAddLearnedToBKIsolatesWorkers(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	before := kb.Size()
	cfg := testConfig(2, 10)
	cfg.AddLearnedToBK = true
	if _, err := Learn(kb, pos, neg, ms, cfg); err != nil {
		t.Fatal(err)
	}
	if kb.Size() != before {
		t.Fatal("worker assertions leaked into the shared KB")
	}
}

func TestEpochsShrinkWithMoreWorkers(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	m1, err := Learn(kb, pos, neg, ms, testConfig(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	m8, err := Learn(kb, pos, neg, ms, testConfig(8, 10))
	if err != nil {
		t.Fatal(err)
	}
	// More pipelines per epoch → at most as many epochs (paper Table 5).
	if m8.Epochs > m1.Epochs {
		t.Fatalf("epochs grew with workers: p=1 %d, p=8 %d", m1.Epochs, m8.Epochs)
	}
}
