package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/search"
	"repro/internal/solve"
)

// newCacheWorker builds an isolated worker (no running cluster protocol)
// for unit-testing the coverage cache.
func newCacheWorker(t *testing.T) *worker {
	t.Helper()
	kb, pos, neg, ms := makeTask(t)
	nw := cluster.NewNetwork(2, cluster.CostModel{})
	ex := search.NewExamples(pos[:12], neg[:10])
	return newWorker(1, 1, nw.Node(1), kb, ex, ms, Config{Workers: 1}.withDefaults())
}

func TestRuleCoverageCacheCorrect(t *testing.T) {
	w := newCacheWorker(t)
	rule := logic.MustParseClause("active(M) :- atm(M, A, oxygen).")
	fresh := w.ruleCoverage(&rule)
	// Direct evaluation must agree.
	m := solve.NewMachine(w.m.KB(), solve.Budget{})
	ev := search.NewEvaluator(m, w.ex)
	pos, neg := ev.CoverageFull(&rule)
	if fresh.pos.Count() != pos.Count() || fresh.neg != neg.Count() {
		t.Fatalf("cached entry (%d/%d) != direct evaluation (%d/%d)",
			fresh.pos.Count(), fresh.neg, pos.Count(), neg.Count())
	}
}

func TestRuleCoverageCacheHitsAreFree(t *testing.T) {
	w := newCacheWorker(t)
	rule := logic.MustParseClause("active(M) :- atm(M, A, oxygen).")
	w.ruleCoverage(&rule)
	before := w.m.TotalInferences()
	clockBefore := w.node.Clock()
	again := w.ruleCoverage(&rule)
	if w.m.TotalInferences() != before {
		t.Fatal("cache hit performed inference work")
	}
	if w.node.Clock() != clockBefore {
		t.Fatal("cache hit advanced the virtual clock")
	}
	if again.pos.Count() == 0 {
		t.Fatal("cached coverage lost")
	}
}

func TestRuleCoverageCacheKeyedByAlphaEquivalence(t *testing.T) {
	w := newCacheWorker(t)
	a := logic.MustParseClause("active(M) :- atm(M, A, oxygen).")
	b := logic.MustParseClause("active(X) :- atm(X, Y, oxygen).")
	w.ruleCoverage(&a)
	before := w.m.TotalInferences()
	w.ruleCoverage(&b)
	if w.m.TotalInferences() != before {
		t.Fatal("alpha-variant rule missed the cache")
	}
}

func TestEvaluateBagUsesAliveMask(t *testing.T) {
	w := newCacheWorker(t)
	rule := logic.MustParseClause("active(M) :- atm(M, A, oxygen).")
	e := w.ruleCoverage(&rule)
	full := e.pos.Count()
	if full == 0 {
		t.Skip("rule covers nothing in this partition")
	}
	// Retract everything the rule covers; recounting against alive must
	// now yield zero while the cached intrinsic coverage is unchanged.
	w.ex.RetractPos(e.pos)
	e2 := w.ruleCoverage(&rule)
	if e2.pos.Count() != full {
		t.Fatal("cached intrinsic coverage changed after retraction")
	}
	alive := e2.pos.Clone()
	alive.AndWith(w.ex.PosAlive)
	if alive.Count() != 0 {
		t.Fatal("alive-masked count should be zero after retraction")
	}
}
