package core

import (
	"errors"
	"fmt"

	"repro/internal/bottom"
	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// worker is one pipeline node (Figures 6 and 7). It owns a partition of the
// examples, an SLD machine over the (shared) background knowledge and an
// event loop dispatching protocol messages. The transport behind node may
// be the simulated machine or a netcluster TCP node; the worker cannot
// tell the difference except through the remote flag, which switches the
// partition source (construction vs kindLoad) and the end-of-run report.
//
// The worker mirrors the master's epoch discipline (DESIGN.md §6): it
// tracks the highest epoch it has seen, drops stale-epoch requests whose
// replies nobody would read, applies kindMarkCovered unconditionally (an
// accepted rule survives its epoch), and installs membership changes from
// kindReassign — merging its share of a dead sibling's examples and
// adopting the surviving pipeline ring.
type worker struct {
	id   int // 1-based worker id; node id on the cluster
	node cluster.Transport
	cfg  Config
	ms   *mode.Set

	// epoch is the highest master epoch observed; seq numbers this
	// worker's outbound protocol messages.
	epoch int
	seq   int64

	// gen is the highest master generation observed (DESIGN.md §9): zero
	// until a crash-restarted master announces itself. Frames stamped
	// with a lower generation come from a superseded master and are
	// fenced off; fenced counts them for Metrics.FencedFrames.
	gen    int
	fenced int

	// ring is the live pipeline membership, ascending worker ids.
	// Initially 1..p; replaced by kindReassign after a failure.
	ring []int
	// deadPeers marks siblings reported dead by the transport; stage
	// forwards to them are dropped (the master re-issues the epoch).
	deadPeers map[int]bool

	// remote marks a multi-process worker: the partition and the
	// semantics-bearing config arrive via kindLoad, and kindStop is
	// answered with a kindFinal report.
	remote bool
	kb     *solve.KB // retained for remote (re)loads

	m  *solve.Machine
	ex *search.Examples
	ev search.FullCoverer

	// retiredInf preserves inference totals of evaluators discarded on
	// repartition, so the worker's work accounting stays monotonic.
	retiredInf int64

	// snapsOn enables epoch-boundary snapshots (set when the master runs
	// with CheckpointDir; remote workers learn it from the load message).
	// snaps holds them, keyed by completed epoch: the lazy snapshot taken
	// when the first message of a later epoch arrives captures exactly the
	// state the master's loop-top checkpoint named. Bounded (old boundaries
	// can no longer be rolled back to once a newer checkpoint lands).
	snapsOn bool
	snaps   map[int]boundarySnap
	// rolledBack is the highest reassignMsg.RollbackBelow this worker has
	// applied. A rollback is applied at most once: re-issued recovery
	// barriers after the restore merge their shares on top — mirroring the
	// master's append-only assignment bookkeeping — so restoring again
	// would orphan the shares merged in between.
	rolledBack int
	// orphanReconnects counts survived master deaths since the last
	// kindResumeInfo report (a delta, zeroed on reply, so repeated
	// restarts never double-count).
	orphanReconnects int

	// busyNs accumulates the virtual nanoseconds this worker spent
	// computing (every clock advance charged through compute), excluding
	// receive-time idling. totalInf over busyNs is the worker's measured
	// throughput — its demonstrated compute speed — which it reports in
	// kindGathered replies when the master is balancing.
	busyNs int64

	generated int64 // rules evaluated by this worker's searches

	// covCache memoises intrinsic rule coverage over the local partition
	// (coverage over a fixed example set never changes; only the alive
	// mask does). It makes the repeated rules-bag evaluations of Fig. 5's
	// consumption loop nearly free after the first pass. Keyed by the
	// clause's structural hash (bag rules arrive canonicalised, so
	// structural equality is alpha-equivalence here) with an EqualClause
	// check on the bucket — no canonical-string key allocation per lookup.
	covCache map[uint64][]covCacheEntry
}

// covEntry is a memoised local evaluation of one rule.
type covEntry struct {
	pos search.Bitset // over all local positives, retracted or not
	neg int           // negatives never retract, so a count suffices
}

// covCacheEntry pairs a cached rule with its evaluation for hash-bucket
// verification.
type covCacheEntry struct {
	rule logic.Clause
	cov  covEntry
}

// boundarySnap is one epoch-boundary rollback point. The example set is
// held by reference — Pos and Neg are immutable once built, only the alive
// mask mutates — with the mask cloned; if a later reassign or rebalance
// replaced the Examples object itself, the snapshot still pins the old one.
type boundarySnap struct {
	ex    *search.Examples
	alive search.Bitset
	ring  []int
}

// maxBoundarySnaps bounds the in-memory rollback window. The master only
// ever rolls back to its latest valid checkpoint — at most two epochs old
// (two snapshot files are kept) — so a handful of boundaries is ample.
const maxBoundarySnaps = 8

func fullRing(p int) []int {
	ring := make([]int, p)
	for i := range ring {
		ring[i] = i + 1
	}
	return ring
}

func newWorker(id, p int, node cluster.Transport, kb *solve.KB, ex *search.Examples, ms *mode.Set, cfg Config) *worker {
	machineKB := kb
	if cfg.AddLearnedToBK {
		machineKB = kb.Clone()
	}
	m := solve.NewMachine(machineKB, cfg.Budget)
	m.SetNoVM(cfg.Search.NoVM)
	w := &worker{
		id:       id,
		ring:     fullRing(p),
		node:     node,
		cfg:      cfg,
		ms:       ms,
		kb:       kb,
		m:        m,
		ex:       ex,
		snapsOn:  cfg.CheckpointDir != "",
		snaps:    make(map[int]boundarySnap),
		covCache: make(map[uint64][]covCacheEntry),
	}
	node.NotifyFailures(cfg.Recover || cfg.OrphanTimeout > 0)
	w.ev = w.newEvaluator()
	return w
}

// newRemoteWorker builds a multi-process worker: id, worker count and —
// via kindLoad — the partition and search configuration all come from the
// master, so only the background knowledge and the language bias (the
// paper's shared-filesystem data) are needed up front.
func newRemoteWorker(node cluster.Transport, kb *solve.KB, ms *mode.Set, cfg Config) *worker {
	return &worker{
		id:       node.ID(),
		ring:     fullRing(node.Size() - 1),
		node:     node,
		cfg:      cfg,
		ms:       ms,
		remote:   true,
		kb:       kb,
		snaps:    make(map[int]boundarySnap),
		covCache: make(map[uint64][]covCacheEntry),
	}
}

// loadRemote installs the partition and the master's semantics-bearing
// settings, building the machine and evaluator (a remote worker has none
// until its first kindLoad).
func (w *worker) loadRemote(lm *loadDataMsg) error {
	if !lm.HasData {
		return fmt.Errorf("core: worker %d: remote load carried no partition", w.id)
	}
	w.cfg.Width = lm.Width
	w.cfg.Search = lm.Search
	w.cfg.Bottom = lm.Bottom
	w.cfg.Budget = lm.Budget
	w.cfg.AddLearnedToBK = lm.AddLearnedToBK
	w.cfg.Recover = lm.Recover
	w.cfg.Balance = lm.Balance
	w.snapsOn = lm.Checkpoint
	if lm.OrphanTimeout > 0 {
		w.cfg.OrphanTimeout = lm.OrphanTimeout
	}
	w.cfg = w.cfg.withDefaults()
	// The failure regime is cluster-wide and master-decided: under
	// recovery a sibling's death must arrive as a membership event, not
	// poison this worker's transport — and the orphan regime needs the
	// master's own death delivered the same way.
	w.node.NotifyFailures(w.cfg.Recover || w.cfg.OrphanTimeout > 0)
	if w.ev != nil {
		w.retiredInf += w.m.TotalInferences() + w.ev.OwnInferences()
		w.ev.Close()
	}
	machineKB := w.kb
	if w.cfg.AddLearnedToBK {
		machineKB = w.kb.Clone()
	}
	w.m = solve.NewMachine(machineKB, w.cfg.Budget)
	w.m.SetNoVM(w.cfg.Search.NoVM)
	w.ex = search.NewExamples(lm.Pos, lm.Neg)
	w.ev = w.newEvaluator()
	w.covCache = make(map[uint64][]covCacheEntry)
	return nil
}

// sendFinal reports the worker's totals to the master (remote runs only).
func (w *worker) sendFinal() error {
	fm := finalMsg{
		Epoch:      w.epoch,
		Seq:        w.nextSeq(),
		Gen:        w.gen,
		Worker:     w.id,
		Inferences: w.totalInf(),
		Generated:  w.generated,
		Clock:      int64(w.node.Clock()),
		Fenced:     w.fenced,
	}
	if ls, ok := asLinkStatser(w.node); ok {
		fm.Flaps, fm.Replayed = ls.LinkStats()
	}
	if tr, ok := w.node.(cluster.TrafficReporter); ok {
		// Snapshotted before the send, so the report excludes itself: the
		// p final messages are run bookkeeping, not protocol traffic, and
		// the simulation's Table-4 numbers have no counterpart for them.
		fm.Traffic = tr.Traffic()
	}
	return w.node.Send(0, kindFinal, fm)
}

// newEvaluator builds the worker's coverage evaluator over its current
// example partition: serial on the worker's own machine, or sharded over
// CoverParallelism goroutines with private machines on the same KB.
func (w *worker) newEvaluator() search.FullCoverer {
	return search.NewFullCoverer(w.m, w.ex, w.cfg.Budget, w.cfg.CoverParallelism)
}

func (w *worker) nextSeq() int64 {
	w.seq++
	return w.seq
}

// bumpEpoch advances the worker's epoch clock to the (already
// staleness-checked) wire epoch, returning the previous value. When
// snapshots are on and the clock actually moves, the pre-advance state is
// recorded first, keyed by the epoch just completed — the lazy boundary
// snapshot a crash-restart rollback restores.
func (w *worker) bumpEpoch(to int) (prev int) {
	prev = w.epoch
	if w.snapsOn && to > w.epoch && w.ex != nil {
		w.snapshot()
	}
	w.epoch = to
	return prev
}

// snapshot records the current state under the current epoch and prunes
// the oldest boundaries past the cap.
func (w *worker) snapshot() {
	w.snaps[w.epoch] = boundarySnap{
		ex:    w.ex,
		alive: w.ex.PosAlive.Clone(),
		ring:  append([]int(nil), w.ring...),
	}
	for len(w.snaps) > maxBoundarySnaps {
		low := -1
		for k := range w.snaps {
			if low < 0 || k < low {
				low = k
			}
		}
		delete(w.snaps, low)
	}
}

// restore rolls the worker back to the boundary snapshot of the given
// completed epoch, discarding every later effect: retractions un-retract
// (the alive mask is restored) and partition replacements un-replace (the
// snapshotted Examples object comes back, with a fresh evaluator, since
// the coverage cache's bitsets index the example set they were built
// over). kindMarkCovered effects survive by re-application: the master
// re-retracts accepted rules when it re-issues the rolled-back epochs.
func (w *worker) restore(boundary int) error {
	s, ok := w.snaps[boundary]
	if !ok {
		return fmt.Errorf("core: worker %d: no boundary snapshot for epoch %d", w.id, boundary)
	}
	if s.ex != w.ex {
		w.retiredInf += w.ev.OwnInferences()
		w.ev.Close()
		w.ex = s.ex
		w.ev = w.newEvaluator()
		w.covCache = make(map[uint64][]covCacheEntry)
	}
	w.ex.PosAlive = s.alive.Clone()
	w.ring = append([]int(nil), s.ring...)
	return nil
}

// fenceDrop applies the generation fence (DESIGN.md §9) to an inbound
// message stamped with gen. A frame below the worker's generation comes
// from a superseded master: it is dropped, and — when it came from the
// master link itself — answered with kindFenced so the stale master
// learns it must stand down. A frame above advances the worker's
// generation (a crash-restarted master announcing itself). The fence
// runs BEFORE the epoch-staleness check: a stale master's epoch clock
// may be arbitrarily ahead of or behind ours, so epoch comparison
// against its frames is meaningless.
func (w *worker) fenceDrop(gen, from int) (drop bool, err error) {
	if gen < w.gen {
		w.fenced++
		if from == 0 {
			err = w.sendMaster(kindFenced, fencedMsg{Epoch: w.epoch, Seq: w.nextSeq(), Gen: w.gen, Worker: w.id})
		}
		return true, err
	}
	if gen > w.gen {
		w.gen = gen
	}
	return false, nil
}

// sendMaster ships a protocol message to the master, swallowing the
// dead-master send error under the orphan regime: the message belongs to
// an epoch the restarted master will roll back anyway, and the KindPeerDown
// event (possibly already queued) moves the worker into its reconnect
// loop.
func (w *worker) sendMaster(kind int, v any) error {
	err := w.node.Send(0, kind, v)
	if err != nil && w.cfg.OrphanTimeout > 0 && errors.Is(err, cluster.ErrPeerDown) {
		return nil
	}
	return err
}

// totalInf is the worker's total SLD work: its own machine plus any
// evaluator-owned shard machines, plus totals retired on repartition.
func (w *worker) totalInf() int64 {
	if w.m == nil { // remote worker stopped before its first load
		return w.retiredInf
	}
	return w.m.TotalInferences() + w.ev.OwnInferences() + w.retiredInf
}

// cachedCoverage returns the memoised evaluation of rule, or nil.
func (w *worker) cachedCoverage(rule *logic.Clause) *covEntry {
	bucket := w.covCache[rule.Hash64()]
	for i := range bucket {
		if logic.EqualClause(&bucket[i].rule, rule) {
			return &bucket[i].cov
		}
	}
	return nil
}

// storeCoverage memoises one rule's evaluation.
func (w *worker) storeCoverage(rule *logic.Clause, e covEntry) {
	h := rule.Hash64()
	w.covCache[h] = append(w.covCache[h], covCacheEntry{rule: *rule, cov: e})
}

// ruleCoverage returns the memoised intrinsic coverage of rule on this
// worker's partition, computing and charging it on first sight.
func (w *worker) ruleCoverage(rule *logic.Clause) covEntry {
	if e := w.cachedCoverage(rule); e != nil {
		return *e
	}
	before := w.totalInf()
	pos, neg := w.ev.CoverageFull(rule)
	w.chargeWork(before)
	e := covEntry{pos: pos, neg: neg.Count()}
	w.storeCoverage(rule, e)
	return e
}

// primeCoverage batch-evaluates every bag rule missing from the coverage
// cache in a single CoverageFullBatch call — one pool synchronisation for
// the whole bag instead of one per rule — charging the SLD work once. The
// total inference count equals rule-at-a-time evaluation exactly; the
// virtual-clock charge coincides too under any integral NsPerInference
// (all bundled cost models), while a fractional model could differ by up
// to one truncated nanosecond per rule versus per-rule charging.
func (w *worker) primeCoverage(rules []logic.Clause) {
	var missing []*logic.Clause
	var pending map[uint64][]*logic.Clause // lazily built: re-sent bags usually hit the cache in full
	for i := range rules {
		r := &rules[i]
		if w.cachedCoverage(r) != nil {
			continue
		}
		if pending == nil {
			pending = make(map[uint64][]*logic.Clause)
		}
		h := r.Hash64()
		dup := false
		for _, m := range pending[h] {
			if logic.EqualClause(m, r) {
				dup = true
				break
			}
		}
		if !dup {
			pending[h] = append(pending[h], r)
			missing = append(missing, r)
		}
	}
	if len(missing) == 0 {
		return
	}
	before := w.totalInf()
	results := w.ev.CoverageFullBatch(missing)
	w.chargeWork(before)
	for i, r := range missing {
		w.storeCoverage(r, covEntry{pos: results[i].Pos, neg: results[i].Neg.Count()})
	}
}

// nextWorker computes the successor on the live ring (Fig. 7
// next_worker()): the next higher surviving id, wrapping to the lowest.
func (w *worker) nextWorker() int {
	for _, k := range w.ring {
		if k > w.id {
			return k
		}
	}
	return w.ring[0]
}

// compute advances the node's virtual clock by units of work, accumulating
// the resulting clock advance into busyNs. Measuring the advance (rather
// than recomputing units × cost) keeps the busy-time account correct on
// heterogeneous clusters where this node's per-inference cost differs from
// the model's baseline.
func (w *worker) compute(units int64) {
	if units <= 0 {
		return
	}
	before := w.node.Clock()
	w.node.Compute(units)
	w.busyNs += int64(w.node.Clock() - before)
}

// chargeWork advances the node's virtual clock by the SLD work done since
// the last charge (before is a prior totalInf reading).
func (w *worker) chargeWork(before int64) {
	w.compute(w.totalInf() - before)
}

// run is the worker event loop; it exits on kindStop or network shutdown.
func (w *worker) run() error {
	// Stop the evaluator's shard pool (if any) when the worker retires.
	defer func() {
		if w.ev != nil {
			w.ev.Close()
		}
	}()
	for {
		msg, err := receiveWithTimeout(w.node, w.cfg.RecvTimeout)
		if errors.Is(err, cluster.ErrClosed) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: worker %d: receive: %w", w.id, err)
		}
		if msg.Kind == cluster.KindPeerUp {
			// A machine joined the cluster. The master drives admission;
			// this worker learns the new ring from the kindRebalance that
			// follows, so the transport event itself needs no action.
			continue
		}
		if msg.Kind == cluster.KindPeerDown {
			if msg.From == 0 {
				if w.cfg.OrphanTimeout > 0 {
					if rj, ok := asMasterRejoiner(w.node); ok {
						// Orphan regime: hold all state and redial the
						// master's stable address with backoff until a
						// restarted master re-admits this worker (its
						// kindResumeQuery then arrives on the new link).
						if _, err := rj.RejoinMaster(w.cfg.OrphanTimeout); err != nil {
							return fmt.Errorf("core: worker %d orphaned at epoch %d: master did not return: %w", w.id, w.epoch, err)
						}
						w.orphanReconnects++
						continue
					}
				}
				return fmt.Errorf("core: worker %d at epoch %d: master failed: %w", w.id, w.epoch, cluster.ErrPeerDown)
			}
			// A dead sibling: remember it so pipeline forwards stop
			// targeting it, and report the observation — link failures
			// are per-link, so this worker may be the only one (master
			// included) that saw it, possibly with a stage in flight.
			// The master drives the actual recovery.
			if w.deadPeers == nil {
				w.deadPeers = make(map[int]bool)
			}
			w.deadPeers[msg.From] = true
			err := w.node.Send(0, kindSuspect, suspectMsg{Epoch: w.epoch, Seq: w.nextSeq(), Gen: w.gen, Worker: w.id, Peer: msg.From})
			if err != nil && !errors.Is(err, cluster.ErrPeerDown) {
				return err
			}
			continue
		}
		if w.ex == nil && msg.Kind != kindLoad && msg.Kind != kindWelcome && msg.Kind != kindStop && msg.Kind != kindResumeQuery {
			return fmt.Errorf("core: worker %d got kind %d before its partition was loaded", w.id, msg.Kind)
		}
		switch msg.Kind {
		case kindLoad:
			if w.remote {
				var lm loadDataMsg
				if err := msg.Decode(&lm); err != nil {
					return err
				}
				if drop, err := w.fenceDrop(lm.Gen, msg.From); err != nil {
					return err
				} else if drop {
					continue
				}
				if err := w.loadRemote(&lm); err != nil {
					return err
				}
				w.compute(int64(w.ex.NumPos() + w.ex.NumNeg()))
				continue
			}
			var lm loadMsg
			if err := msg.Decode(&lm); err != nil {
				return err
			}
			// Data is on the shared filesystem (partition handed at
			// construction); loading charges a nominal unit per example.
			w.compute(int64(w.ex.NumPos() + w.ex.NumNeg()))
		case kindStartPipeline:
			var sm startMsg
			if err := msg.Decode(&sm); err != nil {
				return err
			}
			if drop, err := w.fenceDrop(sm.Gen, msg.From); err != nil {
				return err
			} else if drop {
				continue
			}
			if sm.Epoch < w.epoch {
				continue // stale re-issued epoch; nobody reads the result
			}
			w.bumpEpoch(sm.Epoch)
			if err := w.startPipeline(); err != nil {
				return err
			}
		case kindStage:
			var st stageMsg
			if err := msg.Decode(&st); err != nil {
				return err
			}
			if drop, err := w.fenceDrop(st.Gen, msg.From); err != nil {
				return err
			} else if drop {
				continue // a sibling still relaying a superseded master's epoch
			}
			if st.Epoch < w.epoch {
				continue // residue of an abandoned epoch attempt
			}
			if err := w.runStage(&st); err != nil {
				return err
			}
		case kindEvaluate:
			var em evaluateMsg
			if err := msg.Decode(&em); err != nil {
				return err
			}
			if drop, err := w.fenceDrop(em.Gen, msg.From); err != nil {
				return err
			} else if drop {
				continue
			}
			if em.Epoch < w.epoch {
				continue
			}
			w.bumpEpoch(em.Epoch)
			if err := w.evaluateBag(&em); err != nil {
				return err
			}
		case kindMarkCovered:
			var mm markCoveredMsg
			if err := msg.Decode(&mm); err != nil {
				return err
			}
			// Epoch-independent, but NOT generation-independent: a stale
			// master's acceptance must not retract examples the live
			// generation still owns.
			if drop, err := w.fenceDrop(mm.Gen, msg.From); err != nil {
				return err
			} else if drop {
				continue
			}
			// Applied regardless of epoch: the accepted rule stays in the
			// theory even when its epoch is re-issued (see messages.go).
			w.markCovered(&mm)
		case kindAdopt:
			var am adoptMsg
			if err := msg.Decode(&am); err != nil {
				return err
			}
			if drop, err := w.fenceDrop(am.Gen, msg.From); err != nil {
				return err
			} else if drop {
				continue
			}
			if am.Epoch < w.epoch {
				// Unlike markCovered, a stale adoption must NOT run: it
				// would retire a positive whose reply nobody reads, and
				// the example would end up neither covered nor adopted.
				continue
			}
			w.bumpEpoch(am.Epoch)
			if err := w.adoptOne(); err != nil {
				return err
			}
		case kindGather:
			var gm gatherMsg
			if err := msg.Decode(&gm); err != nil {
				return err
			}
			if drop, err := w.fenceDrop(gm.Gen, msg.From); err != nil {
				return err
			} else if drop {
				continue
			}
			if gm.Epoch < w.epoch {
				continue
			}
			w.bumpEpoch(gm.Epoch)
			if err := w.gatherAlive(); err != nil {
				return err
			}
		case kindRepartition:
			var rm repartitionMsg
			if err := msg.Decode(&rm); err != nil {
				return err
			}
			if drop, err := w.fenceDrop(rm.Gen, msg.From); err != nil {
				return err
			} else if drop {
				continue
			}
			if rm.Epoch < w.epoch {
				continue
			}
			w.bumpEpoch(rm.Epoch)
			w.installExamples(rm.Pos, w.ex.Neg)
		case kindReassign:
			var rm reassignMsg
			if err := msg.Decode(&rm); err != nil {
				return err
			}
			if drop, err := w.fenceDrop(rm.Gen, msg.From); err != nil {
				return err
			} else if drop {
				continue
			}
			if rm.Epoch < w.epoch {
				continue
			}
			prev := w.bumpEpoch(rm.Epoch)
			if err := w.reassign(&rm, prev); err != nil {
				return err
			}
		case kindWelcome:
			// This worker joined mid-run: install the ring (and, remote,
			// the settings a kindLoad would have carried — the partition
			// share follows in the kindRebalance on this same link).
			var wm welcomeMsg
			if err := msg.Decode(&wm); err != nil {
				return err
			}
			if drop, err := w.fenceDrop(wm.Gen, msg.From); err != nil {
				return err
			} else if drop {
				continue
			}
			if wm.Epoch < w.epoch {
				continue
			}
			w.bumpEpoch(wm.Epoch)
			if w.remote {
				if err := w.loadRemote(&wm.Load); err != nil {
					return err
				}
			}
			w.ring = wm.Members
		case kindRebalance:
			var rm rebalanceMsg
			if err := msg.Decode(&rm); err != nil {
				return err
			}
			if drop, err := w.fenceDrop(rm.Gen, msg.From); err != nil {
				return err
			} else if drop {
				continue
			}
			if rm.Epoch < w.epoch {
				continue
			}
			w.bumpEpoch(rm.Epoch)
			if err := w.rebalance(&rm); err != nil {
				return err
			}
		case kindResumeQuery:
			// From a crash-restarted master, epoch-INDEPENDENT: this
			// worker's clock may legitimately be AHEAD of the restarted
			// master's checkpointed clock. Reply with where we stand; the
			// rollback rides on the kindReassign that follows.
			var qm resumeQueryMsg
			if err := msg.Decode(&qm); err != nil {
				return err
			}
			if drop, err := w.fenceDrop(qm.Gen, msg.From); err != nil {
				return err
			} else if drop {
				continue
			}
			err := w.sendMaster(kindResumeInfo, resumeInfoMsg{
				Epoch:      w.epoch,
				Seq:        w.nextSeq(),
				Gen:        w.gen,
				Worker:     w.id,
				Loaded:     w.ex != nil,
				Reconnects: w.orphanReconnects,
			})
			if err != nil {
				return err
			}
			w.orphanReconnects = 0 // reported: the master accumulates deltas
		case kindStop:
			var tm stopMsg
			if err := msg.Decode(&tm); err != nil {
				return err
			}
			// A zombie master must not stop a cluster a newer generation
			// is still driving.
			if drop, err := w.fenceDrop(tm.Gen, msg.From); err != nil {
				return err
			} else if drop {
				continue
			}
			if w.remote {
				return w.sendFinal()
			}
			return nil
		default:
			return fmt.Errorf("core: worker %d got unknown message kind %d", w.id, msg.Kind)
		}
	}
}

// startPipeline runs stage 1 of this worker's pipeline (Fig. 6
// start_pipeline): select a local uncovered example, saturate it, search,
// and hand the frontier to the next stage.
func (w *worker) startPipeline() error {
	seedIdx := w.ex.FirstAlivePos()
	if seedIdx < 0 {
		// Nothing left locally: deliver an empty pipeline result.
		return w.sendMaster(kindRules, rulesMsg{Epoch: w.epoch, Seq: w.nextSeq(), Gen: w.gen, Origin: w.id})
	}
	before := w.totalInf()
	bot, err := bottom.Construct(w.m, w.ms, w.ex.Pos[seedIdx], w.cfg.Bottom)
	if err != nil {
		return fmt.Errorf("core: worker %d saturation: %w", w.id, err)
	}
	res := search.LearnRule(w.ev, bot, nil, w.cfg.Search)
	w.generated += int64(res.Generated)
	w.chargeWork(before)
	// This stageMsg never hits the wire (forward rebuilds the outgoing
	// message, stamping Seq there), it just threads epoch/origin/bottom.
	return w.forward(&stageMsg{Epoch: w.epoch, Origin: w.id, Step: 1, Bottom: *bot}, res)
}

// runStage continues a pipeline that arrived from the previous worker
// (Fig. 7 learn_rule' at Step > 1).
func (w *worker) runStage(st *stageMsg) error {
	if len(st.Seeds) == 0 {
		// Nothing survived the previous stages; pass the empty frontier on
		// so the pipeline still completes at the master.
		return w.forwardEmpty(st)
	}
	seeds := make([][]int32, len(st.Seeds))
	for i, s := range st.Seeds {
		seeds[i] = s.Indices
	}
	before := w.totalInf()
	res := search.LearnRule(w.ev, &st.Bottom, seeds, w.cfg.Search)
	w.generated += int64(res.Generated)
	w.chargeWork(before)
	return w.forward(st, res)
}

// forwardStage ships a stage hand-off to the ring successor. It reports
// sent=false (with no error) when the successor is unreachable — known
// dead, or the send failed with ErrPeerDown — so the caller can terminate
// the pipeline at the master instead: silently dropping the stage would
// hang the master forever if its own link to that peer happened to stay
// healthy (failure detection is per-link on TCP, so it can be one-sided).
func (w *worker) forwardStage(next stageMsg) (sent bool, err error) {
	to := w.nextWorker()
	if w.deadPeers[to] {
		return false, nil
	}
	err = w.node.Send(to, kindStage, next)
	if err != nil && errors.Is(err, cluster.ErrPeerDown) {
		return false, nil
	}
	return err == nil, err
}

// deliverRules completes a pipeline at the master (res nil = empty
// frontier).
func (w *worker) deliverRules(st *stageMsg, res *search.Result) error {
	var rules []logic.Clause
	if res != nil {
		rules = make([]logic.Clause, 0, len(res.Good))
		for _, g := range res.Good {
			rules = append(rules, g.Materialize(&st.Bottom).Canonical())
		}
	}
	return w.sendMaster(kindRules, rulesMsg{Epoch: st.Epoch, Seq: w.nextSeq(), Gen: w.gen, Origin: st.Origin, Rules: rules})
}

// forward routes a stage's results: to the next worker while stages
// remain, to the master once the pipeline has visited every live
// partition — or early, when the ring successor is unreachable. The
// early, less-refined delivery keeps the epoch live at the master, which
// either counts the pipeline (an asymmetric link failure it cannot see)
// or discards it as stale after recovering (a death it can see).
func (w *worker) forward(st *stageMsg, res *search.Result) error {
	if st.Step < len(w.ring) {
		seeds := make([]wireRule, 0, len(res.Good))
		for _, g := range res.Good {
			seeds = append(seeds, wireRule{Indices: g.Indices})
		}
		next := stageMsg{Epoch: st.Epoch, Seq: w.nextSeq(), Gen: w.gen, Origin: st.Origin, Step: st.Step + 1, Bottom: st.Bottom, Seeds: seeds}
		sent, err := w.forwardStage(next)
		if sent || err != nil {
			return err
		}
	}
	return w.deliverRules(st, res)
}

func (w *worker) forwardEmpty(st *stageMsg) error {
	if st.Step < len(w.ring) {
		next := stageMsg{Epoch: st.Epoch, Seq: w.nextSeq(), Gen: w.gen, Origin: st.Origin, Step: st.Step + 1, Bottom: st.Bottom}
		sent, err := w.forwardStage(next)
		if sent || err != nil {
			return err
		}
	}
	return w.deliverRules(st, nil)
}

// evaluateBag scores every bag rule on the local alive examples and reports
// the counts (Fig. 6 evaluate_rules). Coverage is memoised per rule, so
// the re-evaluations of the consumption loop only recount bitset
// intersections with the current alive mask.
func (w *worker) evaluateBag(em *evaluateMsg) error {
	if !w.cfg.Search.NoBatchEval {
		// One pool synchronisation for the whole bag; the NoBatchEval A/B
		// baseline falls through to rule-at-a-time evaluation below.
		w.primeCoverage(em.Rules)
	}
	out := evalResultMsg{
		Epoch:  em.Epoch,
		Seq:    w.nextSeq(),
		Gen:    w.gen,
		Worker: w.id,
		Pos:    make([]int32, len(em.Rules)),
		Neg:    make([]int32, len(em.Rules)),
	}
	for i := range em.Rules {
		e := w.ruleCoverage(&em.Rules[i])
		out.Pos[i] = int32(search.AndCount(e.pos, w.ex.PosAlive))
		out.Neg[i] = int32(e.neg)
	}
	return w.sendMaster(kindEvalResult, out)
}

// markCovered retracts the local positives covered by the accepted rule
// (Fig. 6 mark_covered), optionally asserting it into the background.
func (w *worker) markCovered(mm *markCoveredMsg) {
	e := w.ruleCoverage(&mm.Rule)
	w.ex.RetractPos(e.pos)
	if w.cfg.AddLearnedToBK {
		w.m.KB().Add(mm.Rule)
	}
}

// gatherAlive ships the worker's uncovered positives to the master for
// redealing (repartition or rebalance). Under Balance it also reports the
// cumulative work totals the master's balancer measures throughput from;
// off, the fields stay zero and the message bytes are unchanged.
func (w *worker) gatherAlive() error {
	out := gatheredMsg{Epoch: w.epoch, Seq: w.nextSeq(), Gen: w.gen, Worker: w.id}
	w.ex.PosAlive.ForEach(func(i int) bool {
		out.Pos = append(out.Pos, w.ex.Pos[i])
		return true
	})
	if w.cfg.Balance {
		out.Costs = make([]int64, len(out.Pos))
		for i, e := range out.Pos {
			out.Costs[i] = w.exampleCost(e)
		}
		out.Inferences = w.totalInf()
		out.BusyNs = w.busyNs
	}
	return w.sendMaster(kindGathered, out)
}

// exampleCost estimates an example's evaluation cost as the relational
// footprint of its individual (the first argument's neighbourhood size in
// the background knowledge) — the quantity SLD work on the example scales
// with. Always ≥ 1 so zero-footprint examples still count.
func (w *worker) exampleCost(e logic.Term) int64 {
	c := e
	if e.Kind == logic.Compound && len(e.Args) > 0 {
		c = e.Args[0]
	}
	return int64(1 + w.kb.Footprint(c))
}

// installExamples replaces the worker's example partition. The coverage
// cache keys rules, but its bitsets index the old examples, so it must be
// rebuilt from scratch.
func (w *worker) installExamples(pos, neg []logic.Term) {
	w.retiredInf += w.ev.OwnInferences()
	w.ev.Close()
	w.ex = search.NewExamples(pos, neg)
	w.ev = w.newEvaluator()
	w.covCache = make(map[uint64][]covCacheEntry)
	w.compute(int64(len(pos)))
}

// reassign recovers from a sibling's failure: install the surviving ring,
// merge this worker's share of the dead worker's examples (shares are
// disjoint from everything already here), and acknowledge with the local
// uncovered count so the master can rebase its remaining counter. After a
// master crash-restart the barrier additionally carries a rollback order,
// applied at most once (see worker.rolledBack) and only when this
// worker's pre-message epoch (prev) had actually advanced past the
// checkpoint boundary — a worker already sitting at the boundary has
// nothing to discard.
func (w *worker) reassign(rm *reassignMsg, prev int) error {
	if rm.RollbackBelow > 0 && rm.RollbackBelow > w.rolledBack {
		if prev >= rm.RollbackBelow {
			if err := w.restore(rm.RollbackBelow - 1); err != nil {
				return err
			}
		}
		w.rolledBack = rm.RollbackBelow
	}
	w.ring = rm.Members
	for _, k := range rm.Members {
		delete(w.deadPeers, k)
	}
	pos := make([]logic.Term, 0, w.ex.PosAlive.Count()+len(rm.Pos))
	w.ex.PosAlive.ForEach(func(i int) bool {
		pos = append(pos, w.ex.Pos[i])
		return true
	})
	pos = append(pos, rm.Pos...)
	neg := w.ex.Neg
	if len(rm.Neg) > 0 {
		neg = append(append(make([]logic.Term, 0, len(neg)+len(rm.Neg)), neg...), rm.Neg...)
	}
	w.installExamples(pos, neg)
	return w.sendMaster(kindReassignAck, reassignAckMsg{
		Epoch:  w.epoch,
		Seq:    w.nextSeq(),
		Gen:    w.gen,
		Worker: w.id,
		Alive:  w.ex.PosAlive.Count(),
	})
}

// rebalance installs a rebalanced membership: adopt the new ring (which
// may have grown — mid-run joiners arrive this way) and replace the
// positive partition with the master's freshly dealt share. Unlike
// reassign this is a replacement, not a merge: the master gathered the
// complete alive pool first, so everything this worker should now hold is
// in rm.Pos. Negatives stay put. The ack carries the local uncovered count
// for the master's remaining rebase.
func (w *worker) rebalance(rm *rebalanceMsg) error {
	w.ring = rm.Members
	for _, k := range rm.Members {
		delete(w.deadPeers, k)
	}
	w.installExamples(rm.Pos, w.ex.Neg)
	return w.sendMaster(kindRebalanceAck, rebalanceAckMsg{
		Epoch:  w.epoch,
		Seq:    w.nextSeq(),
		Gen:    w.gen,
		Worker: w.id,
		Alive:  w.ex.PosAlive.Count(),
	})
}

// adoptOne retires the first uncovered local positive as a ground fact
// (progress fallback; see DESIGN.md §5).
func (w *worker) adoptOne() error {
	idx := w.ex.FirstAlivePos()
	if idx < 0 {
		return w.sendMaster(kindAdopted, adoptedMsg{Epoch: w.epoch, Seq: w.nextSeq(), Gen: w.gen, Worker: w.id})
	}
	single := search.NewBitset(len(w.ex.Pos))
	single.Set(idx)
	w.ex.RetractPos(single)
	w.compute(1)
	return w.sendMaster(kindAdopted, adoptedMsg{Epoch: w.epoch, Seq: w.nextSeq(), Gen: w.gen, Worker: w.id, Ok: true, Example: w.ex.Pos[idx]})
}
