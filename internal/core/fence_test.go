package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultline"
	"repro/internal/search"
)

// gracedTransport gives any transport a link-reconnect grace window, so
// the config-time validation can be exercised without a TCP cluster.
type gracedTransport struct {
	cluster.Transport
	grace time.Duration
}

func (g *gracedTransport) LinkGrace() time.Duration { return g.grace }

// TestCheckLinkGraceValidation pins the startup check: a grace window as
// long as the protocol's receive timeout guarantees a spurious timeout on
// every flap, so the combination must be rejected before any wire op.
func TestCheckLinkGraceValidation(t *testing.T) {
	nw := cluster.NewNetwork(1, cluster.DefaultCostModel)
	defer nw.Shutdown()
	node := nw.Node(0)
	cases := []struct {
		name    string
		t       cluster.Transport
		timeout time.Duration
		wantErr bool
	}{
		{name: "no grace capability", t: node, timeout: time.Second},
		{name: "grace disabled", t: &gracedTransport{Transport: node}, timeout: time.Second},
		{name: "no receive timeout", t: &gracedTransport{Transport: node, grace: time.Second}},
		{name: "grace inside timeout", t: &gracedTransport{Transport: node, grace: 100 * time.Millisecond}, timeout: time.Second},
		{name: "grace equals timeout", t: &gracedTransport{Transport: node, grace: time.Second}, timeout: time.Second, wantErr: true},
		{name: "grace exceeds timeout", t: &gracedTransport{Transport: node, grace: 2 * time.Second}, timeout: time.Second, wantErr: true},
		// The probe sees through fault-injection wrappers.
		{name: "grace wrapped in faultline", t: faultline.Wrap(&gracedTransport{Transport: node, grace: 2 * time.Second}, faultline.Plan{}), timeout: time.Second, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkLinkGrace(tc.t, Config{RecvTimeout: tc.timeout})
			if tc.wantErr {
				if err == nil || !strings.Contains(err.Error(), "grace") {
					t.Fatalf("checkLinkGrace = %v, want error naming the grace window", err)
				}
			} else if err != nil {
				t.Fatalf("checkLinkGrace = %v, want nil", err)
			}
		})
	}
}

// flapClusterRun drives one simulated p²-mdie run whose master suffers a
// transient link blip at the flapAt'th protocol op (0 = never): for the
// blip window the master's sends are buffered and its receives wait, then
// everything flushes — the faultline analogue of a partition that heals
// inside the netcluster grace window. Returns the metrics (with the
// workers' fence counters folded in, as Learn does) and the op count.
func flapClusterRun(t *testing.T, flapAt int64) (*Metrics, int64) {
	t.Helper()
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(4, 0)
	cfg.RecvTimeout = 30 * time.Second
	cfgd := cfg.withDefaults()
	p := cfgd.Workers

	posParts, negParts := splitExamples(pos, neg, p, cfgd.Seed)
	nw := cluster.NewNetwork(p+1, cfgd.Cost)
	var wg sync.WaitGroup
	workers := make([]*worker, p+1)
	for k := 1; k <= p; k++ {
		w := newWorker(k, p, nw.Node(k), kb, search.NewExamples(posParts[k-1], negParts[k-1]), ms, cfgd)
		workers[k] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.run(); err != nil {
				t.Errorf("worker %d: %v", w.id, err)
				nw.Shutdown()
			}
		}()
	}

	metrics := &Metrics{Workers: p, Width: cfgd.Width}
	fl := faultline.Wrap(nw.Node(0), faultline.Plan{FlapAtOp: flapAt, FlapFor: 5 * time.Millisecond})
	ma := newMaster(fl, p, cfgd, metrics, len(pos), posParts, negParts)
	if err := ma.run(); err != nil {
		t.Fatalf("flap at op %d: master: %v", flapAt, err)
	}
	metrics.Theory = ma.theory
	wg.Wait()
	for k := 1; k <= p; k++ {
		metrics.FencedFrames += workers[k].fenced
	}
	if flapAt > 0 && fl.Flaps() != 1 {
		t.Fatalf("flap at op %d: Flaps() = %d, want 1", flapAt, fl.Flaps())
	}
	return metrics, fl.Ops()
}

// TestSimFlapSweepByteIdentity is the link-resilience acceptance check on
// the simulated transport: blip the master's links at a sweep of protocol
// points and require the learned theory to be byte-identical to the
// flap-free run's every time, with zero recoveries, zero master restarts
// and zero fenced frames — a healed transient partition must be invisible
// to the protocol.
func TestSimFlapSweepByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("flap-point sweep is slow")
	}
	base, total := flapClusterRun(t, 0)
	if total < 10 {
		t.Fatalf("probe run counted only %d ops", total)
	}
	want := fmt.Sprint(base.Theory)
	kb, pos, _, _ := makeTask(t)
	theoryCoversAll(t, kb, base.Theory, pos)
	// ~12 evenly spaced flap points plus the earliest and latest op.
	stride := total / 12
	if stride < 1 {
		stride = 1
	}
	points := []int64{1, total}
	for op := stride; op < total; op += stride {
		points = append(points, op)
	}
	for _, op := range points {
		met, _ := flapClusterRun(t, op)
		if t.Failed() {
			t.Fatalf("aborting sweep at op %d", op)
		}
		if got := fmt.Sprint(met.Theory); got != want {
			t.Fatalf("flap at op %d: theory diverged\n got: %s\nwant: %s", op, got, want)
		}
		if met.Recoveries != 0 || met.MasterRestarts != 0 {
			t.Fatalf("flap at op %d: Recoveries = %d MasterRestarts = %d, want 0/0 (a healed blip needs no recovery)",
				op, met.Recoveries, met.MasterRestarts)
		}
		if met.FencedFrames != 0 {
			t.Fatalf("flap at op %d: FencedFrames = %d, want 0 (no competing master generation)", op, met.FencedFrames)
		}
	}
}

// TestAsymmetricPartitionOneGenerationSurvives is the generation-fencing
// acceptance check: an asymmetric partition separates a master from a
// cluster that has meanwhile been taken over by a resumed successor. When
// the stale master comes back it must self-fence with ErrSuperseded on the
// workers' evidence — and exactly one generation, the newest, completes
// the run with a theory byte-identical to a failure-free one.
func TestAsymmetricPartitionOneGenerationSurvives(t *testing.T) {
	base, total := crashRestartRun(t, 0, t.TempDir())
	want := fmt.Sprint(base.Theory)

	dir := t.TempDir()
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(4, 0)
	cfg.CheckpointDir = dir
	cfg.Fingerprint = Fingerprint(kb, pos, neg)
	cfg.RecvTimeout = 30 * time.Second
	cfgd := cfg.withDefaults()
	p := cfgd.Workers

	posParts, negParts := splitExamples(pos, neg, p, cfgd.Seed)
	nw := cluster.NewNetwork(p+1, cfgd.Cost)
	var wg sync.WaitGroup
	workers := make([]*worker, p+1)
	for k := 1; k <= p; k++ {
		w := newWorker(k, p, nw.Node(k), kb, search.NewExamples(posParts[k-1], negParts[k-1]), ms, cfgd)
		workers[k] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.run(); err != nil {
				t.Errorf("worker %d: %v", w.id, err)
				nw.Shutdown()
			}
		}()
	}

	// Generation 0: the original master drives half the run, then vanishes
	// behind the partition (the crash is indistinguishable to the cluster).
	node0 := nw.Node(0)
	fl := faultline.Wrap(node0, faultline.Plan{CrashAtOp: total / 2})
	ma := newMaster(fl, p, cfgd, &Metrics{Workers: p, Width: cfgd.Width}, len(pos), posParts, negParts)
	if err := ma.run(); !errors.Is(err, faultline.ErrCrashed) {
		t.Fatalf("original master: %v, want the scheduled crash", err)
	}

	// Generation 1: a successor resumes from the checkpoint and performs
	// the rollback handshake — the workers are now fenced to generation 1.
	chk, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := chk.rec.config(cfg).withDefaults()
	maB := resumedMaster(node0, chk, rcfg, &Metrics{}, false)
	if maB.gen != 1 {
		t.Fatalf("resumed master generation = %d, want 1", maB.gen)
	}
	if err := maB.resumeCluster(); err != nil {
		t.Fatalf("successor resume handshake: %v", err)
	}

	// The partition heals and the original master comes back, still
	// believing its pre-partition generation 0. Its resume query must be
	// fenced by the workers and surface as ErrSuperseded — fast, not as a
	// receive timeout.
	chkA, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	maA := resumedMaster(node0, chkA, chkA.rec.config(cfg).withDefaults(), &Metrics{}, false)
	maA.gen = 0 // it never observed the successor's takeover
	start := time.Now()
	if err := maA.run(); !errors.Is(err, ErrSuperseded) {
		t.Fatalf("stale master: %v, want ErrSuperseded", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("stale master took %v to self-fence — it waited out a timeout instead of reading the fence", waited)
	}

	// The surviving generation finishes the run byte-identically.
	chkC, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	mC := &Metrics{}
	maC := resumedMaster(node0, chkC, chkC.rec.config(cfg).withDefaults(), mC, false)
	if err := maC.run(); err != nil {
		t.Fatalf("surviving master: %v", err)
	}
	mC.Theory = maC.theory
	wg.Wait()
	if got := fmt.Sprint(mC.Theory); got != want {
		t.Fatalf("theory diverged after the partition\n got: %s\nwant: %s", got, want)
	}
	fenced := 0
	for k := 1; k <= p; k++ {
		fenced += workers[k].fenced
	}
	if fenced != p {
		t.Errorf("workers fenced %d frames, want exactly %d (one stale resume query each)", fenced, p)
	}
}
