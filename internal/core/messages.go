package core

import (
	"time"

	"repro/internal/bottom"
	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/search"
	"repro/internal/solve"
)

// Message kinds of the p²-mdie protocol. Master is node 0; workers are
// nodes 1..p. All payloads are encoded by the cluster substrate under the
// codec in force — the compact wire codec by default, gob behind
// -wirecodec gob (wiremsg.go holds the wire encoders) — so message sizes
// in the traffic accounting reflect real serialised content.
//
// Since the event-driven master (see DESIGN.md §6), every protocol message
// after the initial load carries an Epoch tag — the master's re-issue
// counter — and a Seq tag — a per-sender monotonic sequence number used
// for diagnostics. The master's dispatch loop and the workers' event loops
// silently drop stale-epoch traffic, which is what makes an epoch safely
// re-issuable after a worker failure: everything still in flight from the
// abandoned attempt carries the old epoch.
const (
	// kindLoad (master→workers) tells a worker to load its partition
	// (Fig. 5 step 3 / Fig. 6 load_examples). The example data itself is
	// not in the message: the paper assumes a shared filesystem, which the
	// simulation models by handing partitions to workers at construction.
	kindLoad = iota
	// kindStartPipeline (master→worker k) starts pipeline k (Fig. 5 step 7).
	kindStartPipeline
	// kindStage (worker→worker) hands a pipeline on to its next stage:
	// the travelling bottom clause plus the best W rules found so far
	// (Fig. 7 step 17).
	kindStage
	// kindRules (worker→master) delivers a completed pipeline's rules
	// (Fig. 7 step 13).
	kindRules
	// kindEvaluate (master→workers) requests local evaluation of the rules
	// bag (Fig. 5 steps 10 and 18 / Fig. 6 evaluate_rules).
	kindEvaluate
	// kindEvalResult (worker→master) returns local coverage counts.
	kindEvalResult
	// kindMarkCovered (master→workers) retracts the positives covered by
	// an accepted rule (Fig. 5 step 16 / Fig. 6 mark_covered). Applied
	// regardless of epoch: an accepted rule stays in the theory even when
	// the epoch that produced it is re-issued, so its retraction is always
	// valid — and skipping it would only resurrect already-covered work.
	kindMarkCovered
	// kindAdopt (master→workers) is the progress fallback when an epoch
	// produces no acceptable rule: each worker adopts its first uncovered
	// positive verbatim. Strictly epoch-checked: adopting for an abandoned
	// epoch would retire a positive whose adoption reply nobody reads.
	kindAdopt
	// kindAdopted (worker→master) returns the adopted example, if any.
	kindAdopted
	// kindStop (master→workers) ends the run.
	kindStop
	// kindGather (master→workers) requests the worker's uncovered
	// positives, the first half of the optional per-epoch repartitioning
	// (the alternative the paper declined in §4.1 for its communication
	// cost; implemented here as an ablation).
	kindGather
	// kindGathered (worker→master) returns the uncovered positives.
	kindGathered
	// kindRepartition (master→worker) installs a fresh positive partition.
	kindRepartition
	// kindFinal (worker→master) closes a remote run: after kindStop a
	// network worker reports its work totals, clock and outgoing traffic so
	// the master can assemble the same Metrics the simulation reads off the
	// worker structs directly. Never sent on the simulated transport.
	kindFinal
	// kindReassign (master→survivor) recovers from a worker failure: it
	// carries the new membership (the surviving ring) and this survivor's
	// share of the dead worker's examples. The worker merges the share
	// into its partition, installs the ring, and acknowledges. The master
	// gathers every ack before re-issuing the epoch, so no survivor can
	// observe new-epoch pipeline traffic before it has installed the new
	// membership (see DESIGN.md §6).
	kindReassign
	// kindReassignAck (survivor→master) confirms a reassignment and
	// reports the survivor's uncovered-positive count, from which the
	// master rebases its global remaining counter.
	kindReassignAck
	// kindSuspect (worker→master) reports a sibling the worker's
	// transport has declared dead. Failure detection is per-link, so it
	// can be one-sided: a worker-to-worker link can die — taking an
	// in-flight kindStage with it — while both ends' master links stay
	// healthy, and without this report the master would wait forever for
	// a pipeline nobody still owns. The master treats a live-member
	// suspicion from a live member as a membership event and recovers;
	// suspicions about already-excluded peers (the common case: the
	// master's own link noticed first) are dropped.
	kindSuspect
	// kindWelcome (master→joiner) admits a worker that joined the cluster
	// mid-run (the transport delivered a KindPeerUp event): it carries the
	// new pipeline ring and, on a remote run, the semantics-bearing
	// settings a kindLoad would have carried — with an empty partition,
	// because the joiner's share arrives in the rebalance that follows on
	// the same link. See DESIGN.md §7.
	kindWelcome
	// kindRebalance (master→worker) installs a fresh membership and a
	// replacement positive partition: the master has gathered every live
	// worker's uncovered positives (kindGather) and dealt them back out —
	// evenly for a plain join, proportionally to measured throughput with
	// Config.Balance. Unlike kindReassign (which merges a dead sibling's
	// share into the survivor's partition), kindRebalance replaces the
	// positive partition outright; negatives never move. The ack barrier
	// below mirrors kindReassign's, so no worker can see the next epoch's
	// pipeline traffic before it runs on the new membership and shares.
	kindRebalance
	// kindRebalanceAck (worker→master) confirms a rebalance and reports
	// the worker's uncovered-positive count, from which the master rebases
	// its global remaining counter (same rebase as kindReassignAck).
	kindRebalanceAck
	// kindResumeQuery (master→workers) opens a crash-restart resume: a
	// master rebuilt from a durable checkpoint asks every member where it
	// stands. Epoch-INDEPENDENT on the worker (like kindSuspect): worker
	// epochs may be ahead of the checkpointed master clock — finding out
	// by how much is the query's whole point. See DESIGN.md §8.
	kindResumeQuery
	// kindResumeInfo (worker→master) answers a resume query: the worker's
	// current epoch (the resumed master fast-forwards its own clock past
	// the maximum), whether it holds a loaded partition (a crash during
	// the initial load leaves remote workers empty, and the master must
	// re-ship), and its orphan-reconnect count since the last report.
	kindResumeInfo
	// kindFenced (worker→master) rejects a master whose generation is
	// stale: an asymmetric partition can leave a zombie master running
	// while a resumed master (generation + 1) has taken the cluster over.
	// The worker drops the stale frame (counted in Metrics.FencedFrames)
	// and answers with its own generation; a master that learns of a
	// higher generation self-fences — its run fails with ErrSuperseded
	// instead of double-driving epochs. See DESIGN.md §9.
	kindFenced
)

// loadMsg signals partition loading; Round distinguishes reloads. The
// simulation sends exactly this shape (the partition was handed to the
// worker at construction, modelling the paper's shared filesystem), so its
// serialised size — and with it the Table-4 byte accounting and the
// virtual-time transfer charges — is unchanged by the network transport's
// richer loadDataMsg below.
type loadMsg struct {
	Round int
}

// loadDataMsg is the network-transport load (same kindLoad tag): separate
// processes share no address space, so the partition travels in the
// message, together with every setting that affects search semantics —
// a worker whose knobs diverged from the master's would silently learn a
// different theory. Local-only knobs (CoverParallelism, cost model) stay
// with the worker. Gob decodes a loadMsg payload into this struct too
// (fields match by name), but the simulation never takes that path.
type loadDataMsg struct {
	Round   int
	HasData bool
	Pos     []logic.Term
	Neg     []logic.Term

	// Gen is the master generation (see kindFenced): zero for a master
	// that never crash-restarted — and gob omits zero, so the wire bytes
	// of an ordinary run are unchanged by the fencing layer. Every
	// post-load message struct carries the same field.
	Gen int

	Width          int
	Search         search.Settings
	Bottom         bottom.Options
	Budget         solve.Budget
	AddLearnedToBK bool
	// Recover mirrors the master's Config.Recover so the whole cluster
	// runs one failure regime: a worker that poisoned its transport on a
	// sibling's death while the master recovered around it would abort a
	// salvageable run.
	Recover bool
	// Balance mirrors the master's Config.Balance: workers attach their
	// measured throughput to kindGathered replies only when the master
	// will use it, so balance-off runs keep byte-identical wire traffic.
	Balance bool
	// Checkpoint mirrors whether the master writes durable checkpoints:
	// workers keep in-memory epoch-boundary snapshots (for crash-restart
	// rollback, kindReassign.RollbackBelow) exactly when there are
	// checkpoints they could be rolled back to. False is omitted by gob,
	// keeping checkpoint-off wire bytes unchanged.
	Checkpoint bool
	// OrphanTimeout mirrors the master's Config.OrphanTimeout: non-zero
	// switches workers to the orphan regime on master death (hold state,
	// redial with backoff, resume on re-admission) instead of failing.
	OrphanTimeout time.Duration
}

// loadSettings builds the semantics-bearing remote load payload with an
// empty partition: every Config knob a worker with a diverged value would
// silently learn a different theory under. It is the single source of
// truth for both the initial kindLoad shipment (RunMaster fills in the
// partition) and a joiner's kindWelcome — add new semantics-bearing knobs
// HERE, not at the call sites.
func (c Config) loadSettings() loadDataMsg {
	return loadDataMsg{
		HasData:        true,
		Width:          c.Width,
		Search:         c.Search,
		Bottom:         c.Bottom,
		Budget:         c.Budget,
		AddLearnedToBK: c.AddLearnedToBK,
		Recover:        c.Recover,
		Balance:        c.Balance,
		Checkpoint:     c.CheckpointDir != "",
		OrphanTimeout:  c.OrphanTimeout,
	}
}

// startMsg starts a pipeline at its owning worker.
type startMsg struct {
	Epoch int
	Seq   int64
	Gen   int
	Width int
}

// wireRule is one rule travelling between pipeline stages: a subset of the
// travelling bottom clause's literals. Sending index sets rather than full
// clauses keeps stage messages small — the serialised size still grows
// linearly with the number of rules, which is what the paper's Table 4
// measures against the width limit.
type wireRule struct {
	Indices []int32
}

// stageMsg is the pipeline hand-off: the bottom clause built at stage 1
// travels with the search frontier (Fig. 7's send of ⊥e and Good).
type stageMsg struct {
	Epoch  int
	Seq    int64
	Gen    int
	Origin int // worker that started this pipeline
	Step   int // stage number about to run (1-based)
	Bottom bottom.Bottom
	Seeds  []wireRule
}

// rulesMsg delivers a finished pipeline's good rules to the master,
// materialised so the master can rebroadcast them for global evaluation.
type rulesMsg struct {
	Epoch  int
	Seq    int64
	Gen    int
	Origin int
	Rules  []logic.Clause
}

// evaluateMsg asks workers to score every bag rule on local alive examples.
type evaluateMsg struct {
	Epoch int
	Seq   int64
	Gen   int
	Rules []logic.Clause
}

// evalResultMsg returns per-rule local coverage.
type evalResultMsg struct {
	Epoch  int
	Seq    int64
	Gen    int
	Worker int
	Pos    []int32
	Neg    []int32
}

// markCoveredMsg retracts local positives covered by Rule.
type markCoveredMsg struct {
	Epoch int
	Seq   int64
	Gen   int
	Rule  logic.Clause
}

// adoptMsg asks each worker to retire one uncovered positive.
type adoptMsg struct {
	Epoch int
	Seq   int64
	Gen   int
}

// adoptedMsg reports the adopted example (Ok=false when the worker had no
// alive positives).
type adoptedMsg struct {
	Epoch   int
	Seq     int64
	Gen     int
	Worker  int
	Ok      bool
	Example logic.Term
}

// stopMsg terminates workers; workers reply nothing (simulation) or a
// final report (network). It carries the generation so a zombie master
// cannot stop a cluster a newer generation is driving.
type stopMsg struct {
	Gen int
}

// gatherMsg requests the worker's alive positives.
type gatherMsg struct {
	Epoch int
	Seq   int64
	Gen   int
}

// gatheredMsg carries a worker's alive positives to the master. With
// Config.Balance the worker also reports its cumulative work totals —
// Inferences over BusyNs is its measured throughput (compute speed net of
// idle waiting), which sched.Balancer turns into proportional shares. The
// fields stay zero when balance is off, so gob omits them and the wire
// bytes of a repartition-only run are unchanged.
type gatheredMsg struct {
	Epoch  int
	Seq    int64
	Gen    int
	Worker int
	Pos    []logic.Term
	// Costs, parallel to Pos, are per-example cost estimates (the
	// example's relational footprint in the background knowledge,
	// solve.KB.Footprint): sched.DealByCost equalises the *cost* each
	// worker holds, which a count-based deal cannot see.
	Costs []int64
	// Inferences is the worker's cumulative SLD work; BusyNs the virtual
	// nanoseconds it spent computing (clock advances from Compute charges
	// only, excluding receive-time idling).
	Inferences int64
	BusyNs     int64
}

// repartitionMsg replaces the worker's positive partition (negatives never
// move: they are never retracted, so their initial split stays balanced).
type repartitionMsg struct {
	Epoch int
	Seq   int64
	Gen   int
	Pos   []logic.Term
}

// finalMsg is a network worker's end-of-run report (see kindFinal).
type finalMsg struct {
	Epoch      int
	Seq        int64
	Gen        int
	Worker     int
	Inferences int64
	Generated  int64
	Clock      int64 // the worker's final virtual time
	Traffic    cluster.Traffic
	// Link-resilience counters: stale-generation frames this worker
	// fenced off, and its transport's flap/replay totals (zero on
	// transports without a link-session layer). All zero — and off the
	// wire — in an ordinary run.
	Fenced   int
	Flaps    int64
	Replayed int64
}

// reassignMsg recovers from a worker failure (see kindReassign). Pos/Neg
// are this survivor's share of the dead worker's assignment; shares dealt
// to different survivors are disjoint, and disjoint from every survivor's
// own assignment, so the merge needs no deduplication.
type reassignMsg struct {
	Epoch   int
	Seq     int64
	Gen     int
	Members []int // surviving worker ids, ascending — the new pipeline ring
	Pos     []logic.Term
	Neg     []logic.Term
	// RollbackBelow, when non-zero, orders the worker to discard the
	// effects of every epoch ≥ RollbackBelow — restoring its in-memory
	// boundary snapshot for epoch RollbackBelow−1 — before merging the
	// shares. Sent by a resumed master whose checkpoint predates work the
	// surviving workers already did; each worker rolls back at most once
	// per resume (re-issued barriers merge on top of the restored state,
	// matching the master's assignment bookkeeping). Zero — the value in
	// every failure-free and plain-recovery run — is omitted by gob, so
	// checkpoint-off wire bytes are unchanged.
	RollbackBelow int
}

// reassignAckMsg confirms a reassignment (see kindReassignAck).
type reassignAckMsg struct {
	Epoch  int
	Seq    int64
	Gen    int
	Worker int
	// Alive is the worker's uncovered-positive count after the merge; the
	// master sums these to rebase `remaining` (the dead worker's share may
	// contain positives that were already covered — the master cannot
	// know which, so the survivors recount).
	Alive int
}

// welcomeMsg admits a mid-run joiner (see kindWelcome). Members is the new
// pipeline ring including the joiner; Load carries the settings of a
// remote run (HasData with an empty partition — the share follows in the
// kindRebalance on the same ordered link) and is zero on the simulation,
// whose joiners are constructed with their configuration.
type welcomeMsg struct {
	Epoch   int
	Seq     int64
	Gen     int
	Members []int
	Load    loadDataMsg
}

// rebalanceMsg replaces a worker's positive partition and installs a new
// ring (see kindRebalance). Unlike reassignMsg there is no Neg share:
// negatives never move (they are never retracted, so their initial split
// stays balanced), and a joiner simply holds none — negative coverage
// still aggregates correctly because the original holders keep theirs.
type rebalanceMsg struct {
	Epoch   int
	Seq     int64
	Gen     int
	Members []int // live worker ids, ascending — the new pipeline ring
	Pos     []logic.Term
}

// rebalanceAckMsg confirms a rebalance (see kindRebalanceAck); it is the
// same shape as a reassign ack and reuses its dispatch header.
type rebalanceAckMsg = reassignAckMsg

// resumeQueryMsg opens a crash-restart resume (see kindResumeQuery). The
// Epoch tag is the resumed master's checkpointed clock — informational
// only, since workers answer regardless of epoch.
type resumeQueryMsg struct {
	Epoch int
	Seq   int64
	Gen   int
}

// resumeInfoMsg answers a resume query (see kindResumeInfo).
type resumeInfoMsg struct {
	Epoch  int
	Seq    int64
	Gen    int
	Worker int
	// Loaded reports whether the worker holds a partition; false means the
	// master crashed during the initial load and must re-ship kindLoad.
	Loaded bool
	// Reconnects is the worker's orphan→rejoin episode count since its
	// last report (the worker zeroes the counter after answering, so the
	// master can sum deltas across repeated restarts without double
	// counting).
	Reconnects int
}

// suspectMsg reports a transport-level sibling death (see kindSuspect).
// It is processed regardless of epoch: the observation is about present
// link state, not about any epoch's protocol phase.
type suspectMsg struct {
	Epoch  int
	Seq    int64
	Gen    int
	Worker int // the reporter
	Peer   int // the peer it observed dying
}

// fencedMsg rejects a stale-generation master (see kindFenced): Gen is
// the worker's — higher — current generation.
type fencedMsg struct {
	Epoch  int
	Seq    int64
	Gen    int
	Worker int
}

// replyHdr is the dispatch header shared by every worker→master payload:
// the master's event loop reads it to route, staleness-check and
// deduplicate a reply before (or without) decoding the full payload.
type replyHdr interface {
	// hdr returns the reply's epoch and its pending-set key — the worker
	// id for direct replies, the pipeline origin for kindRules.
	hdr() (epoch, key int)
}

func (m *rulesMsg) hdr() (int, int)       { return m.Epoch, m.Origin }
func (m *evalResultMsg) hdr() (int, int)  { return m.Epoch, m.Worker }
func (m *adoptedMsg) hdr() (int, int)     { return m.Epoch, m.Worker }
func (m *gatheredMsg) hdr() (int, int)    { return m.Epoch, m.Worker }
func (m *finalMsg) hdr() (int, int)       { return m.Epoch, m.Worker }
func (m *reassignAckMsg) hdr() (int, int) { return m.Epoch, m.Worker }
func (m *resumeInfoMsg) hdr() (int, int)  { return m.Epoch, m.Worker }
func (m *fencedMsg) hdr() (int, int)      { return m.Epoch, m.Worker }

// genCarrier exposes the generation a worker stamped on its reply, so
// the master can notice it has been superseded (see kindFenced) no
// matter which reply kind delivers the news.
type genCarrier interface {
	gen() int
}

func (m *rulesMsg) gen() int       { return m.Gen }
func (m *evalResultMsg) gen() int  { return m.Gen }
func (m *adoptedMsg) gen() int     { return m.Gen }
func (m *gatheredMsg) gen() int    { return m.Gen }
func (m *finalMsg) gen() int       { return m.Gen }
func (m *reassignAckMsg) gen() int { return m.Gen }
func (m *resumeInfoMsg) gen() int  { return m.Gen }
func (m *fencedMsg) gen() int      { return m.Gen }

// epochOnly decodes just the Epoch tag of a payload — used by the
// dispatch loop to distinguish a stale out-of-phase message (dropped) from
// a same-epoch protocol violation (fatal) without paying for a full
// decode. Gob matches fields by name and ignores the rest, so this works
// against every tagged payload; untagged payloads (loadMsg) decode as
// epoch 0, which is never current once the protocol is running.
type epochOnly struct {
	Epoch int
}
