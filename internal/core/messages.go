package core

import (
	"repro/internal/bottom"
	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/search"
	"repro/internal/solve"
)

// Message kinds of the p²-mdie protocol. Master is node 0; workers are
// nodes 1..p. All payloads are gob-encoded by the cluster substrate, so
// message sizes in the traffic accounting reflect real serialised content.
const (
	// kindLoad (master→workers) tells a worker to load its partition
	// (Fig. 5 step 3 / Fig. 6 load_examples). The example data itself is
	// not in the message: the paper assumes a shared filesystem, which the
	// simulation models by handing partitions to workers at construction.
	kindLoad = iota
	// kindStartPipeline (master→worker k) starts pipeline k (Fig. 5 step 7).
	kindStartPipeline
	// kindStage (worker→worker) hands a pipeline on to its next stage:
	// the travelling bottom clause plus the best W rules found so far
	// (Fig. 7 step 17).
	kindStage
	// kindRules (worker→master) delivers a completed pipeline's rules
	// (Fig. 7 step 13).
	kindRules
	// kindEvaluate (master→workers) requests local evaluation of the rules
	// bag (Fig. 5 steps 10 and 18 / Fig. 6 evaluate_rules).
	kindEvaluate
	// kindEvalResult (worker→master) returns local coverage counts.
	kindEvalResult
	// kindMarkCovered (master→workers) retracts the positives covered by
	// an accepted rule (Fig. 5 step 16 / Fig. 6 mark_covered).
	kindMarkCovered
	// kindAdopt (master→workers) is the progress fallback when an epoch
	// produces no acceptable rule: each worker adopts its first uncovered
	// positive verbatim.
	kindAdopt
	// kindAdopted (worker→master) returns the adopted example, if any.
	kindAdopted
	// kindStop (master→workers) ends the run.
	kindStop
	// kindGather (master→workers) requests the worker's uncovered
	// positives, the first half of the optional per-epoch repartitioning
	// (the alternative the paper declined in §4.1 for its communication
	// cost; implemented here as an ablation).
	kindGather
	// kindGathered (worker→master) returns the uncovered positives.
	kindGathered
	// kindRepartition (master→worker) installs a fresh positive partition.
	kindRepartition
	// kindFinal (worker→master) closes a remote run: after kindStop a
	// network worker reports its work totals, clock and outgoing traffic so
	// the master can assemble the same Metrics the simulation reads off the
	// worker structs directly. Never sent on the simulated transport.
	kindFinal
)

// loadMsg signals partition loading; Round distinguishes reloads. The
// simulation sends exactly this shape (the partition was handed to the
// worker at construction, modelling the paper's shared filesystem), so its
// serialised size — and with it the Table-4 byte accounting and the
// virtual-time transfer charges — is unchanged by the network transport's
// richer loadDataMsg below.
type loadMsg struct {
	Round int
}

// loadDataMsg is the network-transport load (same kindLoad tag): separate
// processes share no address space, so the partition travels in the
// message, together with every setting that affects search semantics —
// a worker whose knobs diverged from the master's would silently learn a
// different theory. Local-only knobs (CoverParallelism, cost model) stay
// with the worker. Gob decodes a loadMsg payload into this struct too
// (fields match by name), but the simulation never takes that path.
type loadDataMsg struct {
	Round   int
	HasData bool
	Pos     []logic.Term
	Neg     []logic.Term

	Width          int
	Search         search.Settings
	Bottom         bottom.Options
	Budget         solve.Budget
	AddLearnedToBK bool
}

// startMsg starts a pipeline at its owning worker.
type startMsg struct {
	Width int
}

// wireRule is one rule travelling between pipeline stages: a subset of the
// travelling bottom clause's literals. Sending index sets rather than full
// clauses keeps stage messages small — the serialised size still grows
// linearly with the number of rules, which is what the paper's Table 4
// measures against the width limit.
type wireRule struct {
	Indices []int32
}

// stageMsg is the pipeline hand-off: the bottom clause built at stage 1
// travels with the search frontier (Fig. 7's send of ⊥e and Good).
type stageMsg struct {
	Origin int // worker that started this pipeline
	Step   int // stage number about to run (1-based)
	Bottom bottom.Bottom
	Seeds  []wireRule
}

// rulesMsg delivers a finished pipeline's good rules to the master,
// materialised so the master can rebroadcast them for global evaluation.
type rulesMsg struct {
	Origin int
	Rules  []logic.Clause
}

// evaluateMsg asks workers to score every bag rule on local alive examples.
type evaluateMsg struct {
	Rules []logic.Clause
}

// evalResultMsg returns per-rule local coverage.
type evalResultMsg struct {
	Worker int
	Pos    []int32
	Neg    []int32
}

// markCoveredMsg retracts local positives covered by Rule.
type markCoveredMsg struct {
	Rule logic.Clause
}

// adoptMsg asks each worker to retire one uncovered positive.
type adoptMsg struct{}

// adoptedMsg reports the adopted example (Ok=false when the worker had no
// alive positives).
type adoptedMsg struct {
	Worker  int
	Ok      bool
	Example logic.Term
}

// stopMsg terminates workers; workers reply nothing.
type stopMsg struct{}

// gatherMsg requests the worker's alive positives.
type gatherMsg struct{}

// gatheredMsg carries a worker's alive positives to the master.
type gatheredMsg struct {
	Worker int
	Pos    []logic.Term
}

// repartitionMsg replaces the worker's positive partition (negatives never
// move: they are never retracted, so their initial split stays balanced).
type repartitionMsg struct {
	Pos []logic.Term
}

// finalMsg is a network worker's end-of-run report (see kindFinal).
type finalMsg struct {
	Worker     int
	Inferences int64
	Generated  int64
	Clock      int64 // the worker's final virtual time
	Traffic    cluster.Traffic
}
