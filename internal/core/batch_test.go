package core

import (
	"testing"

	"repro/internal/datasets"
)

// TestP2BatchedMatchesUnbatched pins batching as a pure performance change
// in the full pipelined algorithm: per-node frontier batches in the stage
// searches plus whole-bag batches in evaluate_rules must leave every
// simulated observable — theory, epochs, virtual time, communication,
// generated-rule and inference totals — bit-for-bit identical, with the
// evaluator serial or pooled.
func TestP2BatchedMatchesUnbatched(t *testing.T) {
	ds := datasets.CarcinogenesisSized(24, 20, 1)
	run := func(noBatch bool, parallelism int) *Metrics {
		cfg := Config{
			Workers: 4, Width: 10, Seed: 1,
			Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
			CoverParallelism: parallelism,
		}
		cfg.Search.NoBatchEval = noBatch
		met, err := Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	want := run(true, 0) // the pre-batch reference path
	for _, c := range []struct {
		name        string
		noBatch     bool
		parallelism int
	}{
		{"batched-serial", false, 0},
		{"batched-pool", false, 2},
	} {
		got := run(c.noBatch, c.parallelism)
		if len(got.Theory) != len(want.Theory) {
			t.Fatalf("%s: theory size %d, want %d", c.name, len(got.Theory), len(want.Theory))
		}
		for i := range want.Theory {
			if got.Theory[i].String() != want.Theory[i].String() {
				t.Fatalf("%s: rule %d: %s, want %s", c.name, i, got.Theory[i], want.Theory[i])
			}
		}
		if got.Epochs != want.Epochs || got.VirtualTime != want.VirtualTime ||
			got.CommBytes != want.CommBytes || got.CommMessages != want.CommMessages {
			t.Fatalf("%s: simulation diverged: epochs %d/%d, virtual %v/%v, bytes %d/%d, msgs %d/%d",
				c.name, got.Epochs, want.Epochs, got.VirtualTime, want.VirtualTime,
				got.CommBytes, want.CommBytes, got.CommMessages, want.CommMessages)
		}
		if got.GeneratedRules != want.GeneratedRules || got.TotalInferences != want.TotalInferences {
			t.Fatalf("%s: work diverged: generated %d/%d, inferences %d/%d",
				c.name, got.GeneratedRules, want.GeneratedRules, got.TotalInferences, want.TotalInferences)
		}
	}
}
