package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/datasets"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// The elastic-scheduling suite: mid-run worker joins on the simulated
// cluster, throughput-aware rebalancing, and the byte-identity guarantee
// that keeps both default-off.

// makeWideTask builds a task with many latent causes — one rule per
// distinguishing element — so that a p-worker run needs several epochs
// (each epoch's pipelines only saturate p seeds, hence discover at most
// p causes). Multi-epoch runs are what exercise the between-epoch
// membership machinery.
func makeWideTask(t testing.TB) (*solve.KB, []logic.Term, []logic.Term, *mode.Set) {
	t.Helper()
	kb := solve.NewKB()
	var pos, neg []logic.Term
	id := 0
	add := func(elements []string, isPos bool) {
		id++
		mol := fmt.Sprintf("w%d", id)
		for i, el := range elements {
			kb.AddFact(logic.MustParseTerm(fmt.Sprintf("atm(%s, %s_a%d, %s)", mol, mol, i, el)))
		}
		e := logic.MustParseTerm(fmt.Sprintf("active(%s)", mol))
		if isPos {
			pos = append(pos, e)
		} else {
			neg = append(neg, e)
		}
	}
	causes := []string{"oxygen", "sulfur", "chlorine", "fluorine", "phosphorus", "zinc", "iron", "copper"}
	fillers := [][]string{
		{"carbon", "nitrogen"},
		{"carbon", "carbon"},
		{"nitrogen"},
		{"carbon"},
	}
	for i, cause := range causes {
		for j := 0; j < 6; j++ {
			add(append([]string{cause}, fillers[(i+j)%4]...), true)
		}
	}
	for i := 0; i < 24; i++ {
		add(fillers[i%4], false)
	}
	ms := mode.MustParseSet(`
		modeh(1, active(+mol)).
		modeb('*', atm(+mol, -atomid, #element)).
	`)
	return kb, pos, neg, ms
}

// TestJoinMidRunSim grows a 2-worker cluster to 3 after the first epoch.
// The joiner must be welcomed into the ring, receive a non-empty share at
// the rebalance barrier, and the run must still cover every positive.
func TestJoinMidRunSim(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(2, 10)
	cfg.JoinEpochs = []int{1}
	met, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatalf("elastic run failed: %v", err)
	}
	if met.JoinedWorkers != 1 {
		t.Fatalf("JoinedWorkers = %d, want 1", met.JoinedWorkers)
	}
	if met.Rebalances < 1 {
		t.Fatalf("Rebalances = %d, want ≥ 1 (the admission barrier)", met.Rebalances)
	}
	if len(met.JoinShares) != 1 || met.JoinShares[0] == 0 {
		t.Fatalf("JoinShares = %v, want one non-empty share", met.JoinShares)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
}

// TestJoinBeforeFirstEpoch admits a joiner before any epoch has run:
// epoch 0 entries fire immediately, so the first pipelines already run on
// p+1 workers.
func TestJoinBeforeFirstEpoch(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(2, 10)
	cfg.JoinEpochs = []int{0}
	met, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatalf("elastic run failed: %v", err)
	}
	if met.JoinedWorkers != 1 || met.Rebalances < 1 {
		t.Fatalf("JoinedWorkers = %d Rebalances = %d", met.JoinedWorkers, met.Rebalances)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
}

// TestJoinWithRecoverAndDeath exercises the full membership lifecycle in
// one run: a worker joins mid-run, then another is killed; the run must
// recover on the grown membership and still cover everything.
func TestJoinWithRecoverAndDeath(t *testing.T) {
	kb, pos, neg, ms := makeWideTask(t)
	cfg := testConfig(3, 10)
	cfg.Recover = true
	cfg.RecvTimeout = 30 * time.Second
	cfg.JoinEpochs = []int{1}
	var once sync.Once
	// Kill worker 2 the first time the master broadcasts an evaluation
	// after the join has been admitted (epoch ≥ 3: load-era epochs 1–2 are
	// pipelines; the admission barrier bumps past them).
	trace := func(nw *cluster.Network, e cluster.Event) {
		if e.Type == cluster.EvSend && e.Node == 0 && e.Kind == kindEvaluate && nw.Size() > 4 {
			once.Do(func() { nw.Kill(2) })
		}
	}
	met, err := learnTaskWithChaosElastic(t, kb, pos, neg, ms, 3, cfg, trace)
	if err != nil {
		t.Fatalf("elastic+chaos run failed: %v", err)
	}
	if met.JoinedWorkers != 1 {
		t.Fatalf("JoinedWorkers = %d, want 1", met.JoinedWorkers)
	}
	if met.LostWorkers != 1 || met.Recoveries < 1 {
		t.Fatalf("LostWorkers = %d Recoveries = %d", met.LostWorkers, met.Recoveries)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
}

// learnTaskWithChaosElastic is learnTaskWithChaos plus the join machinery
// of Learn (cfg.JoinEpochs spawning fresh workers mid-run), so chaos tests
// can combine joins with kills.
func learnTaskWithChaosElastic(t *testing.T, kb *solve.KB, pos, neg []logic.Term, ms *mode.Set, p int, cfg Config, chaos func(nw *cluster.Network, e cluster.Event)) (*Metrics, error) {
	t.Helper()
	cfg = cfg.withDefaults()
	posParts, negParts := splitExamples(pos, neg, p, cfg.Seed)
	nw := cluster.NewNetwork(p+1, cfg.Cost)
	if chaos != nil {
		nw.SetTrace(func(e cluster.Event) { chaos(nw, e) })
	}

	workers := make([]*worker, p)
	for k := 1; k <= p; k++ {
		workers[k-1] = newWorker(k, p, nw.Node(k), kb, search.NewExamples(posParts[k-1], negParts[k-1]), ms, cfg)
	}
	metrics := &Metrics{Workers: p, Width: cfg.Width}
	ma := newMaster(nw.Node(0), p, cfg, metrics, len(pos), posParts, negParts)

	errCh := make(chan error, p+1+len(cfg.JoinEpochs))
	var wg sync.WaitGroup
	startWorker := func(w *worker) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.run(); err != nil {
				errCh <- err
				if cfg.Recover {
					nw.Kill(w.id)
				} else {
					nw.Shutdown()
				}
			}
		}()
	}
	for _, w := range workers {
		startWorker(w)
	}
	if len(cfg.JoinEpochs) > 0 {
		ma.spawn = func() int {
			node := nw.Spawn()
			w := newWorker(node.ID(), p, node, kb, search.NewExamples(nil, nil), ms, cfg)
			startWorker(w)
			return node.ID()
		}
	}
	masterErr := ma.run()
	if masterErr != nil {
		nw.Shutdown()
	}
	wg.Wait()
	close(errCh)
	if masterErr != nil {
		return nil, masterErr
	}
	if !cfg.Recover {
		for err := range errCh {
			if err != nil {
				return nil, err
			}
		}
	}
	metrics.Theory = ma.theory
	metrics.VirtualTime = nw.Makespan().Duration()
	return metrics, nil
}

// learnOnSlowNode runs the task on p workers with worker `slow` paying
// `factor`× per inference, with or without Balance.
func learnOnSlowNode(t *testing.T, p, slow int, factor float64, balance bool) *Metrics {
	t.Helper()
	kb, pos, neg, ms := makeWideTask(t)
	cfg := testConfig(p, 10)
	cfg.Balance = balance
	cfg = cfg.withDefaults()
	posParts, negParts := splitExamples(pos, neg, p, cfg.Seed)
	nw := cluster.NewNetwork(p+1, cfg.Cost)
	nw.SetSpeed(slow, factor)

	workers := make([]*worker, p)
	for k := 1; k <= p; k++ {
		workers[k-1] = newWorker(k, p, nw.Node(k), kb, search.NewExamples(posParts[k-1], negParts[k-1]), ms, cfg)
	}
	metrics := &Metrics{Workers: p, Width: cfg.Width}
	ma := newMaster(nw.Node(0), p, cfg, metrics, len(pos), posParts, negParts)

	var wg sync.WaitGroup
	for _, w := range workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.run(); err != nil {
				t.Error(err)
				nw.Shutdown()
			}
		}()
	}
	if err := ma.run(); err != nil {
		nw.Shutdown()
		wg.Wait()
		t.Fatalf("run failed: %v", err)
	}
	wg.Wait()
	metrics.Theory = ma.theory
	metrics.VirtualTime = nw.Makespan().Duration()
	return metrics
}

// TestBalanceReducesMakespanOnSlowNode pins the point of throughput-aware
// rebalancing: with one worker 6× slower than its siblings, Balance must
// measure the skew, shrink the straggler's share, and beat the static
// partition's makespan. (On a homogeneous cluster proportional shares
// degrade to an even split, so this is the heterogeneity the balancer
// exists for.)
func TestBalanceReducesMakespanOnSlowNode(t *testing.T) {
	static := learnOnSlowNode(t, 3, 2, 6, false)
	balanced := learnOnSlowNode(t, 3, 2, 6, true)
	theoryCoversAllElastic(t, balanced)
	if balanced.Rebalances < 1 {
		t.Fatalf("Rebalances = %d, want ≥ 1", balanced.Rebalances)
	}
	if balanced.VirtualTime >= static.VirtualTime {
		t.Fatalf("balance did not help: balanced %.3fs vs static %.3fs",
			balanced.VirtualTime.Seconds(), static.VirtualTime.Seconds())
	}
	t.Logf("slow-node makespan: static %.3fs, balanced %.3fs (%.1f%% less)",
		static.VirtualTime.Seconds(), balanced.VirtualTime.Seconds(),
		100*(1-balanced.VirtualTime.Seconds()/static.VirtualTime.Seconds()))
}

func theoryCoversAllElastic(t *testing.T, met *Metrics) {
	t.Helper()
	kb, pos, _, _ := makeWideTask(t)
	theoryCoversAll(t, kb, met.Theory, pos)
}

// TestBalanceOffByteIdentical pins the acceptance bar of the scheduling
// refactor: a run with the Balance knob off (and no joins) is
// bit-indistinguishable — same theory, same epochs, same bytes and message
// count on the wire — from the knob simply not existing.
func TestBalanceOffByteIdentical(t *testing.T) {
	kb1, pos1, neg1, ms1 := makeTask(t)
	base, err := Learn(kb1, pos1, neg1, ms1, testConfig(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	kb2, pos2, neg2, ms2 := makeTask(t)
	cfg := testConfig(4, 10)
	cfg.Balance = false // explicit: the default-off contract under test
	off, err := Learn(kb2, pos2, neg2, ms2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Theory) != len(off.Theory) {
		t.Fatalf("theory sizes differ: %d vs %d", len(base.Theory), len(off.Theory))
	}
	for i := range base.Theory {
		if base.Theory[i].String() != off.Theory[i].String() {
			t.Fatalf("rule %d differs", i)
		}
	}
	if base.Epochs != off.Epochs || base.CommBytes != off.CommBytes || base.CommMessages != off.CommMessages {
		t.Fatalf("run shape differs: %d/%d/%d vs %d/%d/%d",
			base.Epochs, base.CommBytes, base.CommMessages, off.Epochs, off.CommBytes, off.CommMessages)
	}
	if off.Rebalances != 0 || off.JoinedWorkers != 0 {
		t.Fatalf("phantom elasticity: %+v", off)
	}
}

// TestBalanceStillCoversAllAndIsDeterministic: Balance on must keep the
// covering guarantee and stay run-to-run deterministic.
func TestBalanceStillCoversAllAndIsDeterministic(t *testing.T) {
	kb, pos, neg, ms := makeWideTask(t)
	cfg := testConfig(3, 10)
	cfg.Balance = true
	m1, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	theoryCoversAll(t, kb, m1.Theory, pos)
	if m1.Epochs > 1 && m1.Rebalances < 1 {
		t.Fatalf("multi-epoch balance run with no rebalances: %+v", m1)
	}
	m2, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Theory) != len(m2.Theory) || m1.CommBytes != m2.CommBytes || m1.Epochs != m2.Epochs {
		t.Fatalf("nondeterministic balance run")
	}
	for i := range m1.Theory {
		if m1.Theory[i].String() != m2.Theory[i].String() {
			t.Fatalf("rule %d differs", i)
		}
	}
}

// TestJoinerDeathIsRecovered kills the mid-run joiner itself after it has
// been admitted and dealt a share. The membership bookkeeping must treat
// ids beyond the initial worker count as first-class members: the joiner's
// share is redistributed and the run completes (the pre-elastic noteLost
// bounds check would have rejected the failure event as "unknown worker").
func TestJoinerDeathIsRecovered(t *testing.T) {
	kb, pos, neg, ms := makeWideTask(t)
	cfg := testConfig(3, 10)
	cfg.Recover = true
	cfg.RecvTimeout = 30 * time.Second
	cfg.JoinEpochs = []int{1}
	var once sync.Once
	met, err := learnTaskWithChaosElastic(t, kb, pos, neg, ms, 3, cfg, func(nw *cluster.Network, e cluster.Event) {
		// Kill node 4 (the joiner) once it is demonstrably in the
		// protocol: the first time it sends anything to the master.
		if e.Type == cluster.EvSend && e.Node == 4 && e.Peer == 0 {
			once.Do(func() { nw.Kill(4) })
		}
	})
	if err != nil {
		t.Fatalf("run failed after joiner death: %v", err)
	}
	if met.JoinedWorkers != 1 || met.LostWorkers != 1 || met.Recoveries < 1 {
		t.Fatalf("JoinedWorkers=%d LostWorkers=%d Recoveries=%d", met.JoinedWorkers, met.LostWorkers, met.Recoveries)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
}

// TestBalanceReducesMakespanOnSkewedWorkload pins the ISSUE's acceptance
// criterion on the deliberately cost-imbalanced generator workload
// (datasets.TrainsSkewed): heavy multi-car trains concentrate SLD cost on
// whichever workers the static random partition happens to hand them to,
// and the cost-aware rebalance must end up with a shorter simulated
// makespan. The measured numbers are recorded in PERF.md.
func TestBalanceReducesMakespanOnSkewedWorkload(t *testing.T) {
	ds := datasets.TrainsSkewed(200, 7, 0.25)
	run := func(balance bool) *Metrics {
		met, err := Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, Config{
			Workers: 4, Width: 10, Seed: 7,
			Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
			Balance: balance,
		})
		if err != nil {
			t.Fatal(err)
		}
		theoryCoversAll(t, ds.KB, met.Theory, ds.Pos)
		return met
	}
	static := run(false)
	balanced := run(true)
	if balanced.Rebalances < 1 {
		t.Fatalf("Rebalances = %d, want ≥ 1", balanced.Rebalances)
	}
	if balanced.VirtualTime >= static.VirtualTime {
		t.Fatalf("balance did not reduce makespan on the skewed workload: %.4fs vs static %.4fs",
			balanced.VirtualTime.Seconds(), static.VirtualTime.Seconds())
	}
	t.Logf("trains-skew makespan: static %.4fs, balanced %.4fs (%.1f%% less)",
		static.VirtualTime.Seconds(), balanced.VirtualTime.Seconds(),
		100*(1-balanced.VirtualTime.Seconds()/static.VirtualTime.Seconds()))
}
