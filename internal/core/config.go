// Package core implements p²-mdie, the paper's pipelined data-parallel
// covering algorithm (Figures 5–7): examples are partitioned evenly over p
// workers; every epoch p rule searches start simultaneously, each pipelined
// through all p workers so that a rule is refined incrementally against
// every data partition; the master then evaluates the collected rules bag
// globally and consumes it MDIE-style.
package core

import (
	"time"

	"repro/internal/bottom"
	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/search"
	"repro/internal/solve"
)

// Config parameterises a parallel run.
type Config struct {
	// Workers is p, the number of pipeline workers (the master is an
	// additional coordination-only node, as in the paper's master/worker
	// model). Must be ≥ 1.
	Workers int
	// Width is W, the pipeline width: the maximum number of good rules
	// passed between stages and to the master. ≤0 means unlimited
	// ("nolimit" in the paper's tables).
	Width int
	// Seed drives the random even partitioning of the examples (Fig. 5
	// step 2).
	Seed int64
	// Search configures each stage's rule search.
	Search search.Settings
	// Bottom configures saturation.
	Bottom bottom.Options
	// Budget bounds individual proofs.
	Budget solve.Budget
	// Cost is the simulated cluster cost model.
	Cost cluster.CostModel
	// MaxEpochs stops a runaway run. ≤0 means 500.
	MaxEpochs int
	// AddLearnedToBK asserts accepted rules into each worker's background
	// (Fig. 6 mark_covered's "B = B ∪ {R}"). Off by default: with the
	// bundled language biases the target predicate never appears in rule
	// bodies, so asserting is semantically inert but costs memory.
	AddLearnedToBK bool
	// RepartitionEachEpoch re-balances the uncovered positives across
	// workers before every epoch after the first — the design alternative
	// the paper declined for its communication cost (§4.1). Implemented
	// for the repartitioning ablation: expect balanced partitions but a
	// large jump in exchanged bytes.
	RepartitionEachEpoch bool
	// Balance enables throughput-aware load rebalancing: between epochs
	// the master gathers every worker's uncovered positives together with
	// its measured throughput (inferences per virtual second of busy time,
	// read off the cost-model clock) and deals the pool back out
	// proportionally — fast workers get more, stragglers less, and fresh
	// joiners an average share (sched.Balancer). Off (the default), shares
	// are only dealt at partition time (plus RepartitionEachEpoch's even
	// redeal, which Balance supersedes when both are set), and runs are
	// byte-identical to a build without the scheduling layer. See
	// DESIGN.md §7.
	Balance bool
	// JoinEpochs schedules mid-run worker joins on the simulated cluster:
	// each entry e spawns one fresh worker once e epochs have completed
	// (0 = before the first). The joiner is welcomed into the ring and
	// receives a share at the next rebalance barrier; with Balance off the
	// pool is redealt evenly on admission. Simulation-only — on a TCP run
	// joiners attach themselves via `p2mdie -join` instead.
	JoinEpochs []int
	// RecvTimeout bounds every blocking protocol receive (master and
	// workers). 0 means no deadline: the transport's own failure paths —
	// shutdown in the simulation, link errors and heartbeat timeouts on
	// TCP — already unblock a receiver whose peer died; a timeout adds a
	// guard against protocol-level stalls where all peers stay healthy
	// but none ever sends.
	RecvTimeout time.Duration
	// Recover enables worker-failure recovery: the transport delivers
	// peer deaths as membership events, and the master — instead of
	// aborting the run — excludes the dead worker, redistributes its
	// assigned examples over the survivors (kindReassign), re-issues the
	// in-flight epoch and continues on p−1 pipelines. Off, a worker
	// failure fails the run (the original fail-stop contract). Failure-
	// free runs are byte-identical with either setting. See DESIGN.md §6.
	Recover bool
	// CheckpointDir, when non-empty, makes the master durable: at every
	// epoch boundary it writes a versioned, CRC-guarded snapshot of its
	// protocol state (theory, per-worker assignments, remaining counter,
	// membership and address book) under this directory via atomic
	// temp-file-and-rename, keeping the last two snapshots. A crashed
	// master restarts from the latest valid snapshot (`p2mdie -resume`)
	// and the learned theory is byte-identical to a failure-free run.
	// Workers keep matching epoch-boundary rollback snapshots in memory.
	// Off (the default), runs are byte-identical on the wire to a build
	// without the checkpoint layer. Incompatible with AddLearnedToBK:
	// rollback cannot retract rules asserted into a worker's background.
	// See DESIGN.md §8.
	CheckpointDir string
	// OrphanTimeout switches workers to the orphan regime on master death:
	// instead of failing, a worker holds its state and redials the master's
	// (stable) address with exponential backoff + jitter for up to this
	// long, resuming when the restarted master re-admits it. Zero (the
	// default) keeps master death fatal to workers. Master-configured and
	// shipped in the load message so the whole cluster runs one regime.
	OrphanTimeout time.Duration
	// Fingerprint is the loaded task's fingerprint (Fingerprint()); stamped
	// into checkpoints so a resume against a different dataset is rejected
	// instead of silently mis-decoding interned terms. Filled by the
	// p2mdie front-end; zero skips the check.
	Fingerprint uint64
	// CoverParallelism shards each worker's coverage tests across this many
	// goroutines (>1), serially on the worker's machine (≤1), or across
	// GOMAXPROCS (<0). This is real multicore parallelism inside one
	// simulated node: learned theories, inference counts and virtual time
	// are unchanged; only wall-clock drops. Note the shard pool is per
	// worker, so total concurrency is Workers × CoverParallelism — on a
	// machine with few cores keep the product near GOMAXPROCS or
	// oversubscription eats the gain.
	CoverParallelism int
	// WireCodec selects the payload encoding for protocol messages (the
	// zero value is the compact wire codec; cluster.CodecGob keeps the
	// legacy gob framing for A/B). Learned theories are byte-identical
	// either way — only frame sizes, and therefore the byte accounting
	// and the virtual transfer times, change.
	WireCodec cluster.Codec
	// Trace, when set, observes every simulated cluster event.
	Trace func(cluster.Event)
	// Publish, when set, is called by the master at every completed-epoch
	// boundary — the same quiescent point checkpoints name — with the
	// number of completed epochs and a copy of the theory accepted so far,
	// and once more after the final epoch with the finished theory. The
	// serving integration installs a snapshot writer here
	// (serve.Publisher via `p2mdie -publish`), pipelining learn and serve
	// live. Publishing is master-local and never touches the wire: runs
	// are byte-identical with it on or off. An error aborts the run.
	Publish func(epochsDone int, theory []logic.Clause) error
}

func (c Config) withDefaults() Config {
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 500
	}
	c.Search = c.Search.WithDefaults()
	// The stage search emits at most Width rules when constrained.
	c.Search.W = c.Width
	return c
}

// Metrics summarises a parallel run; the fields marked (Table n) feed the
// paper's evaluation tables.
type Metrics struct {
	// Theory is the learned rule set in acceptance order.
	Theory []logic.Clause
	// Epochs is the number of master epochs (Table 5).
	Epochs int
	// VirtualTime is the simulated cluster makespan (Tables 2 and 3).
	VirtualTime time.Duration
	// WallTime is the real elapsed time of the simulation.
	WallTime time.Duration
	// CommBytes is the total payload volume exchanged (Table 4).
	CommBytes int64
	// CommMessages is the total number of messages.
	CommMessages int64
	// Traffic is the per-link byte/message table behind CommBytes — the
	// same accounting on both transports (`p2mdie -traffic json` dumps it).
	Traffic cluster.Traffic
	// RulesLearned counts searched rules accepted into the theory.
	RulesLearned int
	// GroundFactsAdopted counts fallback adoptions of bare examples.
	GroundFactsAdopted int
	// GeneratedRules totals rules evaluated across all searches.
	GeneratedRules int64
	// TotalInferences totals SLD work across all workers.
	TotalInferences int64
	// Workers and Width echo the configuration.
	Workers, Width int
	// Recoveries counts completed membership recoveries (each may absorb
	// several simultaneous worker deaths); zero in a failure-free run.
	Recoveries int
	// LostWorkers counts workers that died during the run.
	LostWorkers int
	// Rebalances counts completed rebalance barriers: join admissions and
	// Balance's between-epoch proportional redeals.
	Rebalances int
	// JoinedWorkers counts workers admitted mid-run (Network.Spawn or
	// `p2mdie -join`).
	JoinedWorkers int
	// JoinShares records, per admitted joiner in admission order, how many
	// positives its first completed rebalance barrier handed it. An
	// admission aborted by a concurrent worker death records nothing (the
	// joiner is provisioned by the recovery path instead), so the list can
	// be shorter than JoinedWorkers.
	JoinShares []int
	// WorkerErrors holds the errors of workers that failed but were
	// recovered around (simulated runs; a TCP worker's error stays in its
	// own process). A successful recovered run keeps them visible instead
	// of silently converting a genuine worker-side bug into a crash.
	WorkerErrors []string
	// StaleDropped counts stale-epoch messages the master superseded by a
	// re-issue — the in-flight residue of recoveries. (Late adoptions are
	// counted here too, but still applied: the worker already retracted
	// the example.)
	StaleDropped int64
	// MasterRestarts counts crash-restart resumes of the master from a
	// durable checkpoint (cumulative across restarts — the counter itself
	// is checkpointed); zero in a run whose master never died.
	MasterRestarts int
	// OrphanReconnects counts worker orphan→rejoin episodes: each time a
	// worker survived a master death and reconnected to the restarted
	// master. Reported by the workers during the resume handshake.
	OrphanReconnects int
	// LinkFlaps counts transient link failures absorbed by the transport's
	// reconnect grace window (DESIGN.md §9) instead of escalating to a
	// peer-death recovery; summed over every node's transport. Zero on
	// transports without a link-session layer or with LinkGrace off.
	LinkFlaps int64
	// ReplayedFrames counts retained frames re-sent over resumed links —
	// the delivery gap the grace window bridged invisibly.
	ReplayedFrames int64
	// FencedFrames counts frames workers rejected for carrying a stale
	// master generation (a superseded master still transmitting after a
	// crash-restart or healed partition); zero in any single-master run.
	FencedFrames int
}

// splitExamples materialises Fig. 5 step 2 — the seeded shuffle +
// round-robin deal of E+ and E− over p workers — as term slices. It is the
// single source of truth for both the simulated master (Learn) and the
// remote one (RunMaster): the cross-transport byte-identical-theory
// guarantee rests on the two producing identical partitions, so neither
// may reimplement this.
func splitExamples(pos, neg []logic.Term, p int, seed int64) (posParts, negParts [][]logic.Term) {
	rng := newRng(seed)
	pi := partition(len(pos), p, rng)
	ni := partition(len(neg), p, rng)
	posParts = make([][]logic.Term, p)
	negParts = make([][]logic.Term, p)
	for k := 0; k < p; k++ {
		posParts[k] = make([]logic.Term, 0, len(pi[k]))
		for _, i := range pi[k] {
			posParts[k] = append(posParts[k], pos[i])
		}
		negParts[k] = make([]logic.Term, 0, len(ni[k]))
		for _, i := range ni[k] {
			negParts[k] = append(negParts[k], neg[i])
		}
	}
	return posParts, negParts
}

// partition splits indices 0..n-1 into p groups by seeded shuffle plus
// round-robin deal, the "randomly and evenly partitions" of Fig. 5.
func partition(n, p int, rng *rngState) [][]int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng.shuffle(idx)
	out := make([][]int, p)
	for i, v := range idx {
		out[i%p] = append(out[i%p], v)
	}
	return out
}

// rngState is a tiny deterministic generator (xorshift64*), avoiding a
// dependency on math/rand state sharing across goroutines.
type rngState struct{ s uint64 }

func newRng(seed int64) *rngState {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rngState{s: s}
}

func (r *rngState) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *rngState) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rngState) shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
