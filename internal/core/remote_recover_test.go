package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/netcluster"
)

// crashOn wraps a netcluster node and crashes the process's end of the
// cluster (Abort: links slam shut, no goodbyes — indistinguishable from a
// kill) the first time a message of the given kind is received. It lets a
// test lose a real TCP worker at a precise protocol point.
type crashOn struct {
	*netcluster.Node
	kind int
	once sync.Once
	hit  bool
}

func (c *crashOn) ReceiveCtx(ctx context.Context) (cluster.Message, error) {
	msg, err := c.Node.ReceiveCtx(ctx)
	if err == nil && msg.Kind == c.kind {
		c.once.Do(func() {
			c.hit = true
			c.Node.Abort()
		})
	}
	if c.hit {
		return cluster.Message{}, cluster.ErrClosed
	}
	return msg, err
}

// TestRemoteRecoverFromWorkerCrash is the TCP counterpart of the simulated
// chaos tests: one of three real loopback workers crashes the moment the
// first bag evaluation reaches it — mid-epoch, with its reply owed — and
// the master must exclude it, redistribute its partition and finish on the
// two survivors with a complete theory.
func TestRemoteRecoverFromWorkerCrash(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(3, 10)
	cfg.Recover = true
	cfg.RecvTimeout = 60 * time.Second
	ncfg := netcluster.Config{
		Fingerprint:    Fingerprint(kb, pos, neg),
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    500 * time.Millisecond,
	}
	master, errCh := startNetCluster(t, 3, ncfg, func(node *netcluster.Node) error {
		if node.ID() == 2 {
			return RunWorker(&crashOn{Node: node, kind: kindEvaluate}, kb, ms, Config{})
		}
		return RunWorker(node, kb, ms, Config{})
	})
	met, err := RunMaster(master, pos, neg, cfg)
	if err != nil {
		t.Fatalf("RunMaster failed despite recovery: %v", err)
	}
	master.Close()
	for k := 0; k < 3; k++ {
		<-errCh // survivors exit cleanly; the crashed worker's error is expected
	}
	if met.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want ≥ 1", met.Recoveries)
	}
	if met.LostWorkers != 1 {
		t.Fatalf("LostWorkers = %d, want 1", met.LostWorkers)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
	if met.VirtualTime <= 0 {
		t.Fatalf("virtual time not accounted: %v", met.VirtualTime)
	}
}

// TestRemoteRecoverCrashAfterStop pins the draining rule: once kindStop
// is out the run result is complete, so a worker dying before delivering
// its final report — even the only worker — must forfeit just the report,
// not the run.
func TestRemoteRecoverCrashAfterStop(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(1, 10)
	cfg.Recover = true
	cfg.RecvTimeout = 60 * time.Second
	ncfg := netcluster.Config{
		Fingerprint:    Fingerprint(kb, pos, neg),
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    500 * time.Millisecond,
	}
	master, errCh := startNetCluster(t, 1, ncfg, func(node *netcluster.Node) error {
		return RunWorker(&crashOn{Node: node, kind: kindStop}, kb, ms, Config{})
	})
	met, err := RunMaster(master, pos, neg, cfg)
	if err != nil {
		t.Fatalf("RunMaster failed on a completed run: %v", err)
	}
	master.Close()
	<-errCh
	if met.LostWorkers != 1 {
		t.Fatalf("LostWorkers = %d, want 1", met.LostWorkers)
	}
	if met.Recoveries != 0 {
		t.Fatalf("Recoveries = %d, want 0 (death after stop needs no recovery)", met.Recoveries)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
}

// TestRemoteRecoverCrashDuringPipelines loses the worker while pipelines
// are in flight (first stage hand-off it receives), so the master is
// blocked waiting for rules that will never arrive and must be unblocked
// by the membership event, not a timeout.
func TestRemoteRecoverCrashDuringPipelines(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(3, 10)
	cfg.Recover = true
	cfg.RecvTimeout = 60 * time.Second
	ncfg := netcluster.Config{
		Fingerprint:    Fingerprint(kb, pos, neg),
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    500 * time.Millisecond,
	}
	master, errCh := startNetCluster(t, 3, ncfg, func(node *netcluster.Node) error {
		if node.ID() == 3 {
			return RunWorker(&crashOn{Node: node, kind: kindStage}, kb, ms, Config{})
		}
		return RunWorker(node, kb, ms, Config{})
	})
	met, err := RunMaster(master, pos, neg, cfg)
	if err != nil {
		t.Fatalf("RunMaster failed despite recovery: %v", err)
	}
	master.Close()
	for k := 0; k < 3; k++ {
		<-errCh
	}
	if met.Recoveries < 1 || met.LostWorkers != 1 {
		t.Fatalf("Recoveries = %d LostWorkers = %d", met.Recoveries, met.LostWorkers)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
}
