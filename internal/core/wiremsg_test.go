package core

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/bottom"
	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/search"
	"repro/internal/solve"
)

// sortedKinds returns the payload table's kinds in protocol order so
// subtests and benchmarks enumerate deterministically.
func sortedKinds(payloads map[int]any) []int {
	kinds := make([]int, 0, len(payloads))
	for k := range payloads {
		kinds = append(kinds, k)
	}
	sort.Ints(kinds)
	return kinds
}

// TestMessageWireRoundTrip is the wire-codec twin of the gob round-trip
// test: every payload type of every message kind must survive the compact
// encoding unchanged, and — since both tests share testPayloads — decode
// to exactly the value the gob codec yields. That equivalence is what
// makes -wirecodec a pure transport choice with no semantic footprint.
func TestMessageWireRoundTrip(t *testing.T) {
	payloads := testPayloads()
	if got, want := len(payloads), kindFenced+1; got != want {
		t.Fatalf("payload table covers %d kinds, protocol has %d — extend the table", got, want)
	}

	for _, kind := range sortedKinds(payloads) {
		v := payloads[kind]
		enc, err := cluster.EncodePayload(cluster.CodecWire, v)
		if err != nil {
			t.Fatalf("kind %d: encode: %v", kind, err)
		}
		msg := cluster.Message{Kind: kind, Payload: enc, Codec: cluster.CodecWire}
		out := reflect.New(reflect.TypeOf(v))
		if err := msg.Decode(out.Interface()); err != nil {
			t.Fatalf("kind %d: decode: %v", kind, err)
		}
		if !reflect.DeepEqual(out.Elem().Interface(), v) {
			t.Errorf("kind %d round trip mismatch:\n got: %#v\nwant: %#v", kind, out.Elem().Interface(), v)
		}
	}
}

// TestEpochOnlyPartialDecode pins the header-peek path the master's
// dispatch loop uses: an epochOnly decode of any full worker reply must
// yield the reply's epoch, whatever the payload's tail holds.
func TestEpochOnlyPartialDecode(t *testing.T) {
	for _, v := range []any{
		evalResultMsg{Epoch: 9, Worker: 2, Pos: []int32{3}},
		adoptedMsg{Epoch: 17, Worker: 1, Ok: true, Example: logic.MustParseTerm("active(m9)")},
		gatheredMsg{Epoch: 23, Worker: 2, Inferences: 42},
		reassignAckMsg{Epoch: 31, Seq: 9, Worker: 3},
	} {
		enc, err := cluster.EncodePayload(cluster.CodecWire, v)
		if err != nil {
			t.Fatal(err)
		}
		var eo epochOnly
		if err := cluster.DecodePayload(cluster.CodecWire, enc, &eo); err != nil {
			t.Fatalf("%T: epoch peek: %v", v, err)
		}
		want := reflect.ValueOf(v).FieldByName("Epoch").Int()
		if int64(eo.Epoch) != want {
			t.Fatalf("%T: peeked epoch %d, want %d", v, eo.Epoch, want)
		}
	}
}

// TestWireDecodeRobustness drags every message kind's encoding through
// systematic damage: all truncation points and all single-byte
// corruptions. The decoder must survive each one — an error is fine, a
// panic or a runaway allocation is not.
func TestWireDecodeRobustness(t *testing.T) {
	for _, kind := range sortedKinds(testPayloads()) {
		v := testPayloads()[kind]
		enc, err := cluster.EncodePayload(cluster.CodecWire, v)
		if err != nil {
			t.Fatal(err)
		}
		typ := reflect.TypeOf(v)
		decode := func(data []byte) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("kind %d: decode panicked on damaged frame: %v", kind, p)
				}
			}()
			_ = cluster.DecodePayload(cluster.CodecWire, data, reflect.New(typ).Interface())
		}
		for cut := 0; cut < len(enc); cut++ {
			decode(enc[:cut])
		}
		garbled := append([]byte(nil), enc...)
		for i := range garbled {
			orig := garbled[i]
			garbled[i] ^= 0xff
			decode(garbled)
			garbled[i] = orig
		}
	}
}

// FuzzWireRoundTrip pins the wire codec against gob at the byte level for
// every message kind: any frame the wire decoder accepts must re-encode
// to a fixed point, and a gob round trip of the decoded value must
// re-encode to the same wire bytes. Comparing encodings rather than
// values keeps NaN-carrying floats (DeepEqual-hostile, bit-preserved by
// both codecs) honest.
func FuzzWireRoundTrip(f *testing.F) {
	payloads := testPayloads()
	for _, kind := range sortedKinds(payloads) {
		enc, err := cluster.EncodePayload(cluster.CodecWire, payloads[kind])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(kind, enc)
	}
	f.Fuzz(func(t *testing.T, kind int, data []byte) {
		proto, ok := payloads[kind]
		if !ok {
			return
		}
		typ := reflect.TypeOf(proto)
		out := reflect.New(typ)
		if err := cluster.DecodePayload(cluster.CodecWire, data, out.Interface()); err != nil {
			return
		}
		v := out.Elem().Interface()
		enc1, err := cluster.EncodePayload(cluster.CodecWire, v)
		if err != nil {
			t.Fatalf("re-encode of accepted value: %v", err)
		}
		out2 := reflect.New(typ)
		if err := cluster.DecodePayload(cluster.CodecWire, enc1, out2.Interface()); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		enc2, err := cluster.EncodePayload(cluster.CodecWire, out2.Elem().Interface())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("wire encoding is not a fixed point for kind %d", kind)
		}
		// Cross-codec: ship the same value through gob and back; it must
		// carry the identical information, i.e. re-encode to enc1.
		gobEnc, err := cluster.EncodePayload(cluster.CodecGob, v)
		if err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		out3 := reflect.New(typ)
		if err := cluster.DecodePayload(cluster.CodecGob, gobEnc, out3.Interface()); err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		enc3, err := cluster.EncodePayload(cluster.CodecWire, out3.Elem().Interface())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc3) {
			t.Fatalf("gob round trip changed the value for kind %d", kind)
		}
	})
}

// bulkLoadMsg builds a kindLoad shipment at realistic scale: the paper's
// smaller datasets ship hundreds of examples per worker in one frame.
func bulkLoadMsg(n int) loadDataMsg {
	pos := make([]logic.Term, n)
	neg := make([]logic.Term, n*3/4)
	for i := range pos {
		pos[i] = logic.MustParseTerm(fmt.Sprintf("active(mol_p%d)", i))
	}
	for i := range neg {
		neg[i] = logic.MustParseTerm(fmt.Sprintf("active(mol_n%d)", i))
	}
	return loadDataMsg{
		Round:         1,
		HasData:       true,
		Pos:           pos,
		Neg:           neg,
		Width:         10,
		Search:        search.Settings{MaxClauseLen: 4, NodesLimit: 5000, MinPos: 2, MinPrec: 0.7, W: 10, MEstimateM: 2, PosPrior: 0.5}.WithDefaults(),
		Bottom:        bottom.Options{VarDepth: 3, MaxLiterals: 64, MaxRecall: 32},
		Budget:        solve.Budget{MaxDepth: 64, MaxInferences: 1 << 20},
		Checkpoint:    true,
		OrphanTimeout: 30 * time.Second,
	}
}

// TestWireLoadFrameShrinks pins the headline win the codec was built
// for: a kindLoad-class bulk shipment must be at least 3x smaller on the
// wire codec (varints + interned symbols + flate) than under gob.
func TestWireLoadFrameShrinks(t *testing.T) {
	lm := bulkLoadMsg(500)
	gobEnc, err := cluster.EncodePayload(cluster.CodecGob, lm)
	if err != nil {
		t.Fatal(err)
	}
	wireEnc, err := cluster.EncodePayload(cluster.CodecWire, lm)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kindLoad %d examples: gob=%d bytes, wire=%d bytes (%.1fx)",
		len(lm.Pos)+len(lm.Neg), len(gobEnc), len(wireEnc), float64(len(gobEnc))/float64(len(wireEnc)))
	if len(gobEnc) < 3*len(wireEnc) {
		t.Fatalf("wire kindLoad frame %d bytes, gob %d: want >= 3x reduction", len(wireEnc), len(gobEnc))
	}
	// And it still round-trips exactly.
	var out loadDataMsg
	if err := cluster.DecodePayload(cluster.CodecWire, wireEnc, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, lm) {
		t.Fatal("bulk kindLoad round trip mismatch")
	}
}

// BenchmarkEncode measures per-kind encode cost under both codecs; the
// bytes/op metric doubles as the size comparison CI's bench-smoke logs.
func BenchmarkEncode(b *testing.B) {
	payloads := testPayloads()
	payloads[kindLoad] = bulkLoadMsg(500) // bench the bulk shipment at scale
	for _, codec := range []cluster.Codec{cluster.CodecWire, cluster.CodecGob} {
		for _, kind := range sortedKinds(payloads) {
			v := payloads[kind]
			b.Run(fmt.Sprintf("%s/kind%02d", codec, kind), func(b *testing.B) {
				b.ReportAllocs()
				var n int
				for i := 0; i < b.N; i++ {
					enc, err := cluster.EncodePayload(codec, v)
					if err != nil {
						b.Fatal(err)
					}
					n = len(enc)
				}
				b.ReportMetric(float64(n), "bytes/op")
			})
		}
	}
}

// BenchmarkDecode measures per-kind decode cost under both codecs.
func BenchmarkDecode(b *testing.B) {
	payloads := testPayloads()
	payloads[kindLoad] = bulkLoadMsg(500)
	for _, codec := range []cluster.Codec{cluster.CodecWire, cluster.CodecGob} {
		for _, kind := range sortedKinds(payloads) {
			v := payloads[kind]
			enc, err := cluster.EncodePayload(codec, v)
			if err != nil {
				b.Fatal(err)
			}
			typ := reflect.TypeOf(v)
			b.Run(fmt.Sprintf("%s/kind%02d", codec, kind), func(b *testing.B) {
				b.ReportAllocs()
				b.ReportMetric(float64(len(enc)), "bytes/op")
				for i := 0; i < b.N; i++ {
					if err := cluster.DecodePayload(codec, enc, reflect.New(typ).Interface()); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
