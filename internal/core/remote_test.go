package core

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/netcluster"
)

// startNetCluster brings up p RunWorker goroutines over real loopback TCP
// and returns the connected master node. Worker errors surface on errCh.
func startNetCluster(t *testing.T, p int, ncfg netcluster.Config, runWorker func(*netcluster.Node) error) (*netcluster.Node, chan error) {
	t.Helper()
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for k := 0; k < p; k++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[k] = ln
		addrs[k] = ln.Addr().String()
	}
	errCh := make(chan error, p)
	var joined sync.WaitGroup
	for k := 0; k < p; k++ {
		ln := lns[k]
		joined.Add(1)
		go func() {
			node, err := netcluster.ServeOn(ln, ncfg)
			joined.Done()
			if err != nil {
				errCh <- err
				return
			}
			defer node.Close()
			errCh <- runWorker(node)
		}()
	}
	master, err := netcluster.Connect(addrs, ncfg)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	joined.Wait()
	t.Cleanup(func() { master.Close() })
	return master, errCh
}

// TestRemoteMatchesSimulatedExactly is the tentpole invariant: the same
// task, seed and settings learn a byte-identical theory — with identical
// work accounting — whether the cluster is simulated in one process or
// spread over TCP.
func TestRemoteMatchesSimulatedExactly(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(2, 10)
	sim, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ncfg := netcluster.Config{Fingerprint: Fingerprint(kb, pos, neg)}
	master, errCh := startNetCluster(t, 2, ncfg, func(node *netcluster.Node) error {
		// Workers get no partition and no search settings up front: both
		// must arrive via kindLoad.
		return RunWorker(node, kb, ms, Config{})
	})
	met, err := RunMaster(master, pos, neg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	master.Close()
	for k := 0; k < 2; k++ {
		if werr := <-errCh; werr != nil {
			t.Fatalf("worker error: %v", werr)
		}
	}

	if len(met.Theory) != len(sim.Theory) {
		t.Fatalf("theory sizes differ: net %d vs sim %d", len(met.Theory), len(sim.Theory))
	}
	for i := range met.Theory {
		if met.Theory[i].String() != sim.Theory[i].String() {
			t.Fatalf("rule %d differs:\nnet: %s\nsim: %s", i, met.Theory[i], sim.Theory[i])
		}
	}
	if met.Epochs != sim.Epochs || met.RulesLearned != sim.RulesLearned || met.GroundFactsAdopted != sim.GroundFactsAdopted {
		t.Fatalf("run shape differs: net %+v vs sim %+v", met, sim)
	}
	if met.TotalInferences != sim.TotalInferences {
		t.Fatalf("inference totals differ: net %d vs sim %d", met.TotalInferences, sim.TotalInferences)
	}
	if met.GeneratedRules != sim.GeneratedRules {
		t.Fatalf("generated totals differ: net %d vs sim %d", met.GeneratedRules, sim.GeneratedRules)
	}

	// Traffic parity: every worker-originated link carries byte-identical
	// payloads (same gob encodings of the same protocol messages). Master
	// rows differ only on the kindLoad leg, where the network transport
	// ships the partitions the simulation hands over at construction.
	for from := 1; from <= 2; from++ {
		for to := 0; to <= 2; to++ {
			if got, want := met.Traffic.LinkBytes(from, to), sim.Traffic.LinkBytes(from, to); got != want {
				t.Errorf("link %d->%d bytes: net %d vs sim %d", from, to, got, want)
			}
			if got, want := met.Traffic.LinkMsgs(from, to), sim.Traffic.LinkMsgs(from, to); got != want {
				t.Errorf("link %d->%d msgs: net %d vs sim %d", from, to, got, want)
			}
		}
	}
	for to := 1; to <= 2; to++ {
		if got, want := met.Traffic.LinkMsgs(0, to), sim.Traffic.LinkMsgs(0, to); got != want {
			t.Errorf("link 0->%d msgs: net %d vs sim %d", to, got, want)
		}
		if got, want := met.Traffic.LinkBytes(0, to), sim.Traffic.LinkBytes(0, to); got <= want {
			t.Errorf("link 0->%d bytes: net %d should exceed sim %d (partition shipping)", to, got, want)
		}
	}
	if met.VirtualTime <= 0 {
		t.Fatalf("virtual time not accounted: %v", met.VirtualTime)
	}
}

// TestRemoteWorkerDeathFailsMaster pins the failure path: a worker process
// dying mid-run must surface as an error from RunMaster, not a hang.
func TestRemoteWorkerDeathFailsMaster(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(2, 10)
	ncfg := netcluster.Config{
		Fingerprint:    Fingerprint(kb, pos, neg),
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    200 * time.Millisecond,
	}
	died := make(chan struct{})
	master, errCh := startNetCluster(t, 2, ncfg, func(node *netcluster.Node) error {
		if node.ID() == 2 {
			// Die before serving anything.
			node.Close()
			close(died)
			return nil
		}
		return RunWorker(node, kb, ms, Config{})
	})
	<-died
	done := make(chan error, 1)
	go func() {
		_, err := RunMaster(master, pos, neg, cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("RunMaster succeeded despite dead worker")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunMaster hung on dead worker")
	}
	master.Close()
	// Unblock the surviving worker and ignore its error (the master died
	// on it from its point of view).
	<-errCh
	<-errCh
}

// TestWorkerPanicSurfacesAsError pins the simulated transport's panic
// path: a panicking worker goroutine becomes an error from Learn.
func TestWorkerPanicSurfacesAsError(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(2, 10)
	cfg.Trace = func(e cluster.Event) {
		if e.Type == cluster.EvCompute && e.Node == 1 {
			panic(fmt.Sprintf("injected panic on node %d", e.Node))
		}
	}
	_, err := Learn(kb, pos, neg, ms, cfg)
	if err == nil {
		t.Fatal("Learn succeeded despite panicking worker")
	}
}
