package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// bagEntry is one rule under consideration by the master, with its
// aggregated (global) coverage.
type bagEntry struct {
	rule logic.Clause
	key  string
	pos  int // aggregate positive cover over all partitions
	neg  int // aggregate negative cover
}

// master drives the epochs of Fig. 5.
type master struct {
	node    cluster.Transport
	p       int
	cfg     Config
	targets []int // worker node ids 1..p

	// parts, when non-nil, holds the per-worker kindLoad payloads of a
	// remote (multi-process) run; nil selects the simulation's
	// shared-filesystem model where workers were constructed with their
	// partitions and kindLoad is a bare signal.
	parts []loadDataMsg
	// finals collects the workers' kindFinal reports of a remote run.
	finals []finalMsg

	theory    []logic.Clause
	metrics   *Metrics
	remaining int
}

// collect receives exactly n messages, all required to be of the given
// kind; the protocol phases guarantee no interleaving of other kinds.
func (ma *master) collect(kind, n int) ([]cluster.Message, error) {
	out := make([]cluster.Message, 0, n)
	for len(out) < n {
		msg, err := receiveWithTimeout(ma.node, ma.cfg.RecvTimeout)
		if err != nil {
			return nil, fmt.Errorf("core: master: waiting for kind %d: %w", kind, err)
		}
		if msg.Kind != kind {
			return nil, fmt.Errorf("core: master: expected kind %d, got %d from node %d", kind, msg.Kind, msg.From)
		}
		out = append(out, msg)
	}
	return out, nil
}

// gatherBag collects the p pipeline results and assembles the deduplicated
// rules bag in deterministic (origin, position) order.
func (ma *master) gatherBag() ([]bagEntry, error) {
	msgs, err := ma.collect(kindRules, ma.p)
	if err != nil {
		return nil, err
	}
	byOrigin := make([][]logic.Clause, ma.p+1)
	for _, msg := range msgs {
		var rm rulesMsg
		if err := msg.Decode(&rm); err != nil {
			return nil, err
		}
		if rm.Origin < 1 || rm.Origin > ma.p {
			return nil, fmt.Errorf("core: master: bad pipeline origin %d", rm.Origin)
		}
		byOrigin[rm.Origin] = rm.Rules
	}
	seen := make(map[string]bool)
	var bag []bagEntry
	for origin := 1; origin <= ma.p; origin++ {
		for _, r := range byOrigin[origin] {
			key := r.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			bag = append(bag, bagEntry{rule: r, key: key})
		}
	}
	return bag, nil
}

// evaluateBag broadcasts the bag for local evaluation and aggregates the
// returned counts into the entries (Fig. 5 steps 10–11 and 18–19).
func (ma *master) evaluateBag(bag []bagEntry) error {
	rules := make([]logic.Clause, len(bag))
	for i := range bag {
		rules[i] = bag[i].rule
	}
	if err := ma.node.Broadcast(ma.targets, kindEvaluate, evaluateMsg{Rules: rules}); err != nil {
		return err
	}
	msgs, err := ma.collect(kindEvalResult, ma.p)
	if err != nil {
		return err
	}
	for i := range bag {
		bag[i].pos, bag[i].neg = 0, 0
	}
	for _, msg := range msgs {
		var er evalResultMsg
		if err := msg.Decode(&er); err != nil {
			return err
		}
		if len(er.Pos) != len(bag) || len(er.Neg) != len(bag) {
			return fmt.Errorf("core: master: evaluation result size mismatch from worker %d", er.Worker)
		}
		for i := range bag {
			bag[i].pos += int(er.Pos[i])
			bag[i].neg += int(er.Neg[i])
		}
	}
	return nil
}

// filterGood drops rules that are not globally acceptable (notGood of
// Fig. 5 step 20, also applied before the first pick as a progress
// guarantee — an unacceptable first pick could cover zero positives and
// stall the covering loop; see DESIGN.md §5).
func (ma *master) filterGood(bag []bagEntry) []bagEntry {
	out := bag[:0]
	for _, e := range bag {
		if e.pos > 0 && ma.cfg.Search.IsGood(e.pos, e.neg) {
			out = append(out, e)
		}
	}
	return out
}

// pickBest removes and returns the best entry by global score (Fig. 5
// step 13; the paper orders the bag by aggregate coverage).
func (ma *master) pickBest(bag []bagEntry) (bagEntry, []bagEntry) {
	sort.SliceStable(bag, func(i, j int) bool {
		a, b := bag[i], bag[j]
		sa := ma.cfg.Search.Score(a.pos, a.neg, len(a.rule.Body))
		sb := ma.cfg.Search.Score(b.pos, b.neg, len(b.rule.Body))
		if sa != sb {
			return sa > sb
		}
		if a.pos != b.pos {
			return a.pos > b.pos
		}
		if len(a.rule.Body) != len(b.rule.Body) {
			return len(a.rule.Body) < len(b.rule.Body)
		}
		return a.key < b.key
	})
	return bag[0], bag[1:]
}

// consumeBag implements the sequential consumption loop of Fig. 5 steps
// 12–22: accept the globally best rule, retract its positives everywhere,
// re-evaluate and prune the bag, repeat. It returns how many rules were
// accepted, so the caller can fall back when the whole bag proved globally
// unacceptable.
func (ma *master) consumeBag(bag []bagEntry) (int, error) {
	if err := ma.evaluateBag(bag); err != nil {
		return 0, err
	}
	bag = ma.filterGood(bag)
	accepted := 0
	for len(bag) > 0 {
		var best bagEntry
		best, bag = ma.pickBest(bag)
		ma.theory = append(ma.theory, best.rule)
		ma.metrics.RulesLearned++
		accepted++
		ma.remaining -= best.pos
		if err := ma.node.Broadcast(ma.targets, kindMarkCovered, markCoveredMsg{Rule: best.rule}); err != nil {
			return accepted, err
		}
		if len(bag) == 0 {
			break
		}
		if err := ma.evaluateBag(bag); err != nil {
			return accepted, err
		}
		bag = ma.filterGood(bag)
	}
	return accepted, nil
}

// adoptFallback retires one uncovered positive per worker when an epoch
// yields no acceptable rule, guaranteeing progress.
func (ma *master) adoptFallback() error {
	if err := ma.node.Broadcast(ma.targets, kindAdopt, adoptMsg{}); err != nil {
		return err
	}
	msgs, err := ma.collect(kindAdopted, ma.p)
	if err != nil {
		return err
	}
	// Sort by worker for deterministic theory order.
	var adopted []adoptedMsg
	for _, msg := range msgs {
		var am adoptedMsg
		if err := msg.Decode(&am); err != nil {
			return err
		}
		if am.Ok {
			adopted = append(adopted, am)
		}
	}
	sort.Slice(adopted, func(i, j int) bool { return adopted[i].Worker < adopted[j].Worker })
	for _, am := range adopted {
		ma.theory = append(ma.theory, logic.Fact(am.Example))
		ma.metrics.GroundFactsAdopted++
		ma.remaining--
	}
	if len(adopted) == 0 {
		// Defensive: nothing left anywhere despite remaining > 0.
		ma.remaining = 0
	}
	return nil
}

// repartition collects every worker's uncovered positives and deals them
// back out evenly (the §4.1 alternative, used only when configured). The
// examples make two network trips, which is exactly the communication cost
// the paper avoided.
func (ma *master) repartition() error {
	if err := ma.node.Broadcast(ma.targets, kindGather, gatherMsg{}); err != nil {
		return err
	}
	msgs, err := ma.collect(kindGathered, ma.p)
	if err != nil {
		return err
	}
	byWorker := make([][]logic.Term, ma.p+1)
	for _, msg := range msgs {
		var gm gatheredMsg
		if err := msg.Decode(&gm); err != nil {
			return err
		}
		if gm.Worker < 1 || gm.Worker > ma.p {
			return fmt.Errorf("core: master: bad gather origin %d", gm.Worker)
		}
		byWorker[gm.Worker] = gm.Pos
	}
	var all []logic.Term
	for k := 1; k <= ma.p; k++ {
		all = append(all, byWorker[k]...)
	}
	parts := make([][]logic.Term, ma.p)
	for i, e := range all {
		parts[i%ma.p] = append(parts[i%ma.p], e)
	}
	for k := 1; k <= ma.p; k++ {
		if err := ma.node.Send(k, kindRepartition, repartitionMsg{Pos: parts[k-1]}); err != nil {
			return err
		}
	}
	return nil
}

// run executes the epochs until every positive is covered (Fig. 5).
func (ma *master) run() error {
	if ma.parts != nil {
		// Remote workers have no shared filesystem: each load ships the
		// worker's partition (and the semantics-bearing settings).
		for i, k := range ma.targets {
			if err := ma.node.Send(k, kindLoad, ma.parts[i]); err != nil {
				return err
			}
		}
	} else if err := ma.node.Broadcast(ma.targets, kindLoad, loadMsg{}); err != nil {
		return err
	}
	for ma.remaining > 0 && ma.metrics.Epochs < ma.cfg.MaxEpochs {
		if ma.cfg.RepartitionEachEpoch && ma.metrics.Epochs > 0 {
			if err := ma.repartition(); err != nil {
				return err
			}
		}
		ma.metrics.Epochs++
		for _, k := range ma.targets {
			if err := ma.node.Send(k, kindStartPipeline, startMsg{Width: ma.cfg.Width}); err != nil {
				return err
			}
		}
		bag, err := ma.gatherBag()
		if err != nil {
			return err
		}
		accepted := 0
		if len(bag) > 0 {
			if accepted, err = ma.consumeBag(bag); err != nil {
				return err
			}
		}
		// Progress guarantee: an epoch whose bag was empty — or globally
		// all-unacceptable — retires one uncovered positive per worker.
		if accepted == 0 && ma.remaining > 0 {
			if err := ma.adoptFallback(); err != nil {
				return err
			}
		}
	}
	if err := ma.node.Broadcast(ma.targets, kindStop, stopMsg{}); err != nil {
		return err
	}
	if ma.parts == nil {
		return nil
	}
	// Remote runs: collect the workers' final reports (work totals,
	// clocks, outgoing traffic) — the data Learn reads off the worker
	// structs directly in the simulation.
	msgs, err := ma.collect(kindFinal, ma.p)
	if err != nil {
		return err
	}
	for _, msg := range msgs {
		var fm finalMsg
		if err := msg.Decode(&fm); err != nil {
			return err
		}
		if fm.Worker < 1 || fm.Worker > ma.p {
			return fmt.Errorf("core: master: bad final report origin %d", fm.Worker)
		}
		ma.finals = append(ma.finals, fm)
	}
	return nil
}

// Learn runs p²-mdie over the background kb and the labelled examples under
// the mode set ms. It returns the learned theory plus run metrics; the
// simulated cluster makespan in Metrics.VirtualTime is the paper-comparable
// execution time.
func Learn(kb *solve.KB, pos, neg []logic.Term, ms *mode.Set, cfg Config) (*Metrics, error) {
	cfg = cfg.withDefaults()
	p := cfg.Workers
	if p < 1 {
		return nil, fmt.Errorf("core: Workers must be ≥ 1, got %d", p)
	}
	if len(pos) == 0 {
		return nil, fmt.Errorf("core: no positive examples")
	}

	// Fig. 5 step 2: random even partition of E+ and E−.
	posParts, negParts := splitExamples(pos, neg, p, cfg.Seed)

	nw := cluster.NewNetwork(p+1, cfg.Cost)
	if cfg.Trace != nil {
		nw.SetTrace(cfg.Trace)
	}

	workers := make([]*worker, p)
	for k := 1; k <= p; k++ {
		workers[k-1] = newWorker(k, p, nw.Node(k), kb, search.NewExamples(posParts[k-1], negParts[k-1]), ms, cfg)
	}

	metrics := &Metrics{Workers: p, Width: cfg.Width}
	ma := &master{
		node:      nw.Node(0),
		p:         p,
		cfg:       cfg,
		metrics:   metrics,
		remaining: len(pos),
	}
	for k := 1; k <= p; k++ {
		ma.targets = append(ma.targets, k)
	}

	start := time.Now()
	errCh := make(chan error, p+1)
	var wg sync.WaitGroup
	wg.Add(p)
	for _, w := range workers {
		go func(w *worker) {
			defer wg.Done()
			// A panicking worker must surface as an error at the master,
			// not hang it forever (or, unrecovered, kill the whole
			// process): convert the panic and release everyone blocked.
			defer func() {
				if r := recover(); r != nil {
					errCh <- fmt.Errorf("core: worker %d panicked: %v", w.id, r)
					nw.Shutdown()
				}
			}()
			if err := w.run(); err != nil {
				errCh <- err
				nw.Shutdown() // release anyone blocked, including the master
			}
		}(w)
	}
	masterErr := ma.run()
	if masterErr != nil {
		nw.Shutdown()
	}
	wg.Wait()
	close(errCh)
	// A worker failure shuts the network down and surfaces at the master as
	// a shutdown error; report the root cause in preference.
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	if masterErr != nil {
		return nil, masterErr
	}

	metrics.Theory = ma.theory
	metrics.WallTime = time.Since(start)
	metrics.VirtualTime = nw.Makespan().Duration()
	st := nw.Stats()
	metrics.CommBytes = st.Bytes
	metrics.CommMessages = st.Messages
	metrics.Traffic = nw.Traffic()
	for _, w := range workers {
		metrics.TotalInferences += w.totalInf()
		metrics.GeneratedRules += w.generated
	}
	return metrics, nil
}
