package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/sched"
	"repro/internal/search"
	"repro/internal/solve"
)

// bagEntry is one rule under consideration by the master, with its
// aggregated (global) coverage.
type bagEntry struct {
	rule logic.Clause
	key  string
	pos  int // aggregate positive cover over all partitions
	neg  int // aggregate negative cover
}

// ErrSuperseded reports that a newer master generation has taken over
// the cluster (DESIGN.md §9): some worker answered a frame of ours with
// kindFenced, or stamped a reply with a generation above ours. The only
// correct reaction is to stand down — the newer master owns the run, and
// a superseded master driving epochs in parallel would fork the theory.
// Callers detect it with errors.Is.
var ErrSuperseded = errors.New("core: master superseded by a newer generation")

// workerLostError aborts the phase that observed a worker failure; the
// epoch loop catches it, recovers the membership and re-issues the epoch.
type workerLostError struct {
	id int
}

func (e *workerLostError) Error() string {
	return fmt.Sprintf("core: master: worker %d lost", e.id)
}

func asWorkerLost(err error) *workerLostError {
	var wl *workerLostError
	if errors.As(err, &wl) {
		return wl
	}
	return nil
}

// master drives the epochs of Fig. 5 as an event-driven state machine:
// one receive loop (nextReply) dispatches on message kind, every phase
// tracks which members still owe a current-epoch reply, stale-epoch
// traffic is dropped, and a worker failure — delivered by the transport
// as a KindPeerDown membership event — aborts the phase so the epoch loop
// can redistribute the dead worker's examples and re-issue the epoch on
// the survivors. See DESIGN.md §6 for the state machine.
type master struct {
	node cluster.Transport
	p    int // initial worker count
	cfg  Config

	// targets is the live membership: surviving worker ids, ascending.
	// It starts as 1..p and shrinks as failures are recovered.
	targets []int

	// epoch is the wire epoch: bumped for every pipeline round and for
	// every recovery re-issue, so anything in flight from an abandoned
	// attempt is recognisably stale. Distinct from Metrics.Epochs, which
	// counts completed logical epochs only.
	epoch int
	// seq numbers the master's outbound protocol messages (one per
	// logical message; broadcast copies share it).
	seq int64
	// gen is this master's generation (DESIGN.md §9): zero for a fresh
	// master (gob then omits the Gen field everywhere — the wire bytes of
	// an ordinary run are unchanged), checkpointed generation + 1 for a
	// crash-restarted one. Stamped on every outbound frame; workers fence
	// off frames below their observed generation, and a master that
	// learns of a higher generation fails with ErrSuperseded.
	gen int

	// assignedPos/assignedNeg track, per worker id (1-indexed), the
	// examples the master has handed that worker — initial partition,
	// repartitions and recovery shares. The sets are pairwise disjoint.
	// When a worker dies this is what gets redistributed; it may include
	// already-covered positives (the master cannot know local coverage),
	// which survivors simply re-cover.
	assignedPos [][]logic.Term
	assignedNeg [][]logic.Term
	// lostPos/lostNeg hold dead workers' assignments awaiting
	// redistribution.
	lostPos []logic.Term
	lostNeg []logic.Term

	// published is the completed-epoch count of the last Publish call, so
	// boundaries revisited without progress (recovery re-entries) and the
	// final post-loop publish never emit duplicates.
	published int

	// pendingJoin holds worker ids whose transport-level join has
	// completed (a KindPeerUp event arrived, or the simulation spawned
	// them) but that are not yet protocol members; admission — welcome,
	// ring install, first share — happens between epochs (prepEpoch).
	pendingJoin []int
	// bal turns per-worker measured throughput into partition shares;
	// every share-dealing path (repartition, recovery, rebalance) routes
	// through the sched package it fronts.
	bal *sched.Balancer
	// spawn, when non-nil (simulated runs), creates and starts one fresh
	// worker on the network and returns its node id; cfg.JoinEpochs
	// drives it. Remote joiners arrive through the transport instead.
	spawn      func() int
	spawnFired []bool // one flag per cfg.JoinEpochs entry

	// draining marks the post-stop phase: the result is complete, so a
	// worker death no longer threatens the run — it only forfeits that
	// worker's final report — and is tolerated even when it empties the
	// membership or recovery is off.
	draining bool

	// resumed marks a master rebuilt from a durable checkpoint: run()
	// replaces the initial load with the resume handshake (rejoin wait,
	// state query, rollback barrier). See DESIGN.md §8.
	resumed bool
	// rollbackTo, when non-zero, rides on every kindReassign until a
	// barrier completes: workers discard the effects of every epoch ≥
	// rollbackTo, restoring the checkpoint boundary the resumed master
	// restarted from. Cleared by the first completed barrier (each worker
	// rolls back at most once, so re-issues merge on top).
	rollbackTo int
	// resumeFloor is the epoch of the resume's rollback barrier: stale
	// adoptions from below it are residue of the crashed run whose
	// retractions the rollback un-did, so — unlike ordinary stale
	// adoptions — they must NOT enter the theory. Zero (never resumed)
	// keeps every pre-existing code path unchanged.
	resumeFloor int
	// ckptSeq numbers the next checkpoint snapshot file (continuing the
	// loaded sequence on resume).
	ckptSeq uint64

	// parts, when non-nil, holds the per-worker kindLoad payloads of a
	// remote (multi-process) run; nil selects the simulation's
	// shared-filesystem model where workers were constructed with their
	// partitions and kindLoad is a bare signal.
	parts []loadDataMsg
	// finals collects the workers' kindFinal reports of a remote run.
	finals []finalMsg

	theory    []logic.Clause
	metrics   *Metrics
	remaining int
}

func (ma *master) nextSeq() int64 {
	ma.seq++
	return ma.seq
}

// isLive reports whether worker id is still a member.
func (ma *master) isLive(id int) bool {
	for _, k := range ma.targets {
		if k == id {
			return true
		}
	}
	return false
}

// pendingLive returns a fresh pending set over the live membership.
func (ma *master) pendingLive() map[int]bool {
	pending := make(map[int]bool, len(ma.targets))
	for _, k := range ma.targets {
		pending[k] = true
	}
	return pending
}

// send delivers one protocol message to a live worker, treating a peer
// declared dead mid-send as a drop: the matching KindPeerDown event is (or
// will be) in the inbox, and the receive loop recovers from there.
func (ma *master) send(to, kind int, v any) error {
	err := ma.node.Send(to, kind, v)
	if err != nil && errors.Is(err, cluster.ErrPeerDown) {
		return nil
	}
	return err
}

// bcastLive sends one protocol message to every live worker.
func (ma *master) bcastLive(kind int, v any) error {
	for _, k := range ma.targets {
		if err := ma.send(k, kind, v); err != nil {
			return err
		}
	}
	return nil
}

// noteJoin queues a transport-joined worker for protocol admission at the
// next between-epoch point. Duplicates (the simulation both spawns
// directly and delivers a KindPeerUp event) are ignored.
func (ma *master) noteJoin(id int) {
	if id < 1 || ma.isLive(id) {
		return
	}
	for _, j := range ma.pendingJoin {
		if j == id {
			return
		}
	}
	ma.pendingJoin = append(ma.pendingJoin, id)
}

// dropPendingJoin removes a not-yet-admitted joiner (it died before its
// welcome), reporting whether it was pending. No recovery is needed: the
// joiner held no examples.
func (ma *master) dropPendingJoin(id int) bool {
	for i, j := range ma.pendingJoin {
		if j == id {
			ma.pendingJoin = append(ma.pendingJoin[:i], ma.pendingJoin[i+1:]...)
			return true
		}
	}
	return false
}

// noteLost removes a failed worker from the membership and queues its
// assignment for redistribution. It returns an error when the run cannot
// continue: recovery disabled, or no survivors left.
func (ma *master) noteLost(id int) error {
	if id < 1 || id >= len(ma.assignedPos) || !ma.isLive(id) {
		// Duplicate or out-of-range event; both transports deduplicate,
		// so treat this as a protocol error rather than guessing.
		return fmt.Errorf("core: master: failure event for unknown worker %d", id)
	}
	live := ma.targets[:0]
	for _, k := range ma.targets {
		if k != id {
			live = append(live, k)
		}
	}
	ma.targets = live
	ma.metrics.LostWorkers++
	ma.bal.Forget(id)
	ma.lostPos = append(ma.lostPos, ma.assignedPos[id]...)
	ma.lostNeg = append(ma.lostNeg, ma.assignedNeg[id]...)
	ma.assignedPos[id], ma.assignedNeg[id] = nil, nil
	if ma.draining {
		return nil
	}
	if !ma.cfg.Recover {
		return fmt.Errorf("core: master: worker %d failed and recovery is disabled (run with Recover to continue on survivors)", id)
	}
	if len(ma.targets) == 0 {
		return fmt.Errorf("core: master: worker %d failed and no workers survive", id)
	}
	return nil
}

// acceptStale consumes a stale-epoch message. Almost all stale traffic is
// droppable residue of an abandoned epoch attempt, with one exception:
// kindAdopted. An adoption has already retracted the example on the
// worker — exactly like a markCovered — so a reply orphaned by a phase
// abort must still enter the theory, or the example would end up neither
// covered nor adopted. `remaining` is deliberately untouched: a stale
// adopted implies a recovery ran (or is completing), and its ack-count
// rebase is authoritative — the survivor's count already excludes the
// retracted example, while a dead worker's adoptee is redistributed and
// recounted alive (it may then be covered twice; harmless).
func (ma *master) acceptStale(msg cluster.Message) error {
	ma.metrics.StaleDropped++
	if msg.Kind != kindAdopted {
		return nil
	}
	var am adoptedMsg
	if err := msg.Decode(&am); err != nil {
		return fmt.Errorf("core: master: garbled stale adoption from node %d: %w", msg.From, err)
	}
	if am.Epoch < ma.resumeFloor {
		// Residue of a run the master crashed out of: the resume's rollback
		// barrier restored every worker to the checkpoint boundary,
		// un-retracting this adoptee — it is alive again and will be
		// re-covered (or re-adopted) by the re-issued epochs, so admitting
		// it here would fork the theory from the failure-free run.
		return nil
	}
	if am.Ok {
		ma.theory = append(ma.theory, logic.Fact(am.Example))
		ma.metrics.GroundFactsAdopted++
	}
	return nil
}

// nextReply is the master's event dispatch: it returns the next
// current-epoch reply of kind want whose key (worker id, or pipeline
// origin for kindRules) is still pending, decoded into a payload from
// newDst, and removes the key from pending. Along the way it
//
//   - converts KindPeerDown membership events into a workerLostError
//     (after updating the membership), so the caller's phase aborts and
//     the epoch loop can recover;
//   - silently drops stale-epoch traffic of any kind — the residue of an
//     abandoned epoch attempt (counted in Metrics.StaleDropped);
//   - fails on same-epoch protocol violations: unexpected kinds,
//     duplicate replies, replies from unknown members, garbled payloads.
func (ma *master) nextReply(want int, pending map[int]bool, newDst func() replyHdr) (replyHdr, error) {
	for {
		msg, err := receiveWithTimeout(ma.node, ma.cfg.RecvTimeout)
		if err != nil {
			return nil, fmt.Errorf("core: master: waiting for kind %d: %w", want, err)
		}
		if msg.Kind == cluster.KindPeerUp {
			// A worker joined at the transport level. Admission waits for
			// the next between-epoch point (prepEpoch): mid-phase the ring
			// is load-bearing, so the joiner is only queued here — no
			// phase abort, unlike a death.
			ma.noteJoin(msg.From)
			continue
		}
		if msg.Kind == cluster.KindPeerDown {
			if ma.dropPendingJoin(msg.From) {
				// A joiner died before its welcome: it held no examples,
				// so nothing needs recovering.
				continue
			}
			if !ma.isLive(msg.From) {
				// Already excluded — a sibling's suspicion can beat the
				// master's own link failure to the same death.
				continue
			}
			if err := ma.noteLost(msg.From); err != nil {
				return nil, err
			}
			return nil, &workerLostError{id: msg.From}
		}
		if msg.Kind == kindSuspect {
			// A worker's transport observed a sibling die. Usually the
			// master's own link noticed first and the peer is already
			// excluded; but link failures are per-link, so a one-sided
			// break (possibly having swallowed an in-flight kindStage)
			// may be visible only to the reporter — without acting on it
			// the master would wait forever for a pipeline nobody owns.
			// Epoch-independent: the observation is about link state now.
			var sm suspectMsg
			if err := msg.Decode(&sm); err != nil {
				return nil, fmt.Errorf("core: master: garbled suspicion from node %d: %w", msg.From, err)
			}
			if !ma.cfg.Recover || ma.draining || !ma.isLive(sm.Worker) || !ma.isLive(sm.Peer) {
				continue // moot, or from an excluded (untrusted) reporter
			}
			if err := ma.noteLost(sm.Peer); err != nil {
				return nil, err
			}
			return nil, &workerLostError{id: sm.Peer}
		}
		if msg.Kind == kindFenced {
			// A worker refused one of our frames: it has seen a newer
			// master generation. If its generation really is above ours,
			// we are the zombie side of a healed partition — stand down.
			// (A rejection quoting our own or an older generation is
			// residue of a race already settled in our favour.)
			var fm fencedMsg
			if err := msg.Decode(&fm); err != nil {
				return nil, fmt.Errorf("core: master: garbled fence rejection from node %d: %w", msg.From, err)
			}
			if fm.Gen > ma.gen {
				return nil, fmt.Errorf("core: master: generation %d fenced off by worker %d at generation %d: %w",
					ma.gen, fm.Worker, fm.Gen, ErrSuperseded)
			}
			continue
		}
		if msg.Kind != want {
			var eo epochOnly
			if err := msg.Decode(&eo); err != nil {
				return nil, fmt.Errorf("core: master: garbled kind-%d payload from node %d: %w", msg.Kind, msg.From, err)
			}
			if eo.Epoch < ma.epoch {
				if err := ma.acceptStale(msg); err != nil {
					return nil, err
				}
				continue
			}
			return nil, fmt.Errorf("core: master: expected kind %d, got kind %d from node %d (epoch %d)", want, msg.Kind, msg.From, eo.Epoch)
		}
		dst := newDst()
		if err := msg.Decode(dst); err != nil {
			return nil, fmt.Errorf("core: master: truncated or garbled kind-%d payload from node %d: %w", msg.Kind, msg.From, err)
		}
		if gc, ok := dst.(genCarrier); ok && gc.gen() > ma.gen {
			// Replies carry the worker's observed generation, so the news
			// that we were superseded reaches us even if the kindFenced
			// rejection itself was lost.
			return nil, fmt.Errorf("core: master: generation %d superseded by generation %d (reply from node %d): %w",
				ma.gen, gc.gen(), msg.From, ErrSuperseded)
		}
		epoch, key := dst.hdr()
		if epoch < ma.epoch {
			if err := ma.acceptStale(msg); err != nil {
				return nil, err
			}
			continue
		}
		if epoch > ma.epoch {
			return nil, fmt.Errorf("core: master: kind-%d reply from future epoch %d (current %d) from node %d", msg.Kind, epoch, ma.epoch, msg.From)
		}
		if !pending[key] {
			if ma.draining {
				// A reply from a member excluded mid-drain: its death
				// event can win the race into the inbox against its last
				// frame (two transport goroutines feed it). The run is
				// complete; the report is simply forfeited. Draining is
				// the one phase that never bumps the epoch, so the stale
				// check above cannot shield it. Not counted as stale —
				// the message is current-epoch, just moot.
				continue
			}
			return nil, fmt.Errorf("core: master: duplicate or unexpected kind-%d reply for member %d from node %d", msg.Kind, key, msg.From)
		}
		delete(pending, key)
		return dst, nil
	}
}

// gatherBag collects the live pipelines' results and assembles the
// deduplicated rules bag in deterministic (origin, position) order.
func (ma *master) gatherBag() ([]bagEntry, error) {
	pending := ma.pendingLive()
	byOrigin := make(map[int][]logic.Clause, len(pending))
	for len(pending) > 0 {
		r, err := ma.nextReply(kindRules, pending, func() replyHdr { return new(rulesMsg) })
		if err != nil {
			return nil, err
		}
		rm := r.(*rulesMsg)
		byOrigin[rm.Origin] = rm.Rules
	}
	seen := make(map[string]bool)
	var bag []bagEntry
	for _, origin := range ma.targets {
		for _, r := range byOrigin[origin] {
			key := r.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			bag = append(bag, bagEntry{rule: r, key: key})
		}
	}
	return bag, nil
}

// evaluateBag broadcasts the bag for local evaluation and aggregates the
// returned counts into the entries (Fig. 5 steps 10–11 and 18–19).
func (ma *master) evaluateBag(bag []bagEntry) error {
	rules := make([]logic.Clause, len(bag))
	for i := range bag {
		rules[i] = bag[i].rule
	}
	if err := ma.bcastLive(kindEvaluate, evaluateMsg{Epoch: ma.epoch, Seq: ma.nextSeq(), Gen: ma.gen, Rules: rules}); err != nil {
		return err
	}
	for i := range bag {
		bag[i].pos, bag[i].neg = 0, 0
	}
	pending := ma.pendingLive()
	for len(pending) > 0 {
		r, err := ma.nextReply(kindEvalResult, pending, func() replyHdr { return new(evalResultMsg) })
		if err != nil {
			return err
		}
		er := r.(*evalResultMsg)
		if len(er.Pos) != len(bag) || len(er.Neg) != len(bag) {
			return fmt.Errorf("core: master: evaluation result size mismatch from worker %d", er.Worker)
		}
		for i := range bag {
			bag[i].pos += int(er.Pos[i])
			bag[i].neg += int(er.Neg[i])
		}
	}
	return nil
}

// filterGood drops rules that are not globally acceptable (notGood of
// Fig. 5 step 20, also applied before the first pick as a progress
// guarantee — an unacceptable first pick could cover zero positives and
// stall the covering loop; see DESIGN.md §5).
func (ma *master) filterGood(bag []bagEntry) []bagEntry {
	out := bag[:0]
	for _, e := range bag {
		if e.pos > 0 && ma.cfg.Search.IsGood(e.pos, e.neg) {
			out = append(out, e)
		}
	}
	return out
}

// better reports whether a (with score sa) outranks b (with score sb)
// under the consumption order (Fig. 5 step 13: global score, then
// coverage, then brevity, then canonical key). The key tie-break makes
// this a strict total order over distinct rules.
func (ma *master) better(a *bagEntry, sa float64, b *bagEntry, sb float64) bool {
	if sa != sb {
		return sa > sb
	}
	if a.pos != b.pos {
		return a.pos > b.pos
	}
	if len(a.rule.Body) != len(b.rule.Body) {
		return len(a.rule.Body) < len(b.rule.Body)
	}
	return a.key < b.key
}

// pickBest removes and returns the best entry by global score. The
// comparator is a strict total order, so a single-pass max — scoring each
// entry once and carrying the incumbent's score — finds the same pick the
// stable sort used to, at O(n) per accepted rule instead of O(n·log n),
// and the consumption sequence is unchanged (pinned by
// TestPickBestMatchesSortReference).
func (ma *master) pickBest(bag []bagEntry) (bagEntry, []bagEntry) {
	score := func(e *bagEntry) float64 {
		return ma.cfg.Search.Score(e.pos, e.neg, len(e.rule.Body))
	}
	best, bestScore := 0, score(&bag[0])
	for i := 1; i < len(bag); i++ {
		if s := score(&bag[i]); ma.better(&bag[i], s, &bag[best], bestScore) {
			best, bestScore = i, s
		}
	}
	picked := bag[best]
	rest := append(bag[:best], bag[best+1:]...)
	return picked, rest
}

// consumeBag implements the sequential consumption loop of Fig. 5 steps
// 12–22: accept the globally best rule, retract its positives everywhere,
// re-evaluate and prune the bag, repeat. It returns how many rules were
// accepted, so the caller can fall back when the whole bag proved globally
// unacceptable.
func (ma *master) consumeBag(bag []bagEntry) (int, error) {
	if err := ma.evaluateBag(bag); err != nil {
		return 0, err
	}
	bag = ma.filterGood(bag)
	accepted := 0
	for len(bag) > 0 {
		var best bagEntry
		best, bag = ma.pickBest(bag)
		ma.theory = append(ma.theory, best.rule)
		ma.metrics.RulesLearned++
		accepted++
		ma.remaining -= best.pos
		if err := ma.bcastLive(kindMarkCovered, markCoveredMsg{Epoch: ma.epoch, Seq: ma.nextSeq(), Gen: ma.gen, Rule: best.rule}); err != nil {
			return accepted, err
		}
		if len(bag) == 0 {
			break
		}
		if err := ma.evaluateBag(bag); err != nil {
			return accepted, err
		}
		bag = ma.filterGood(bag)
	}
	return accepted, nil
}

// adoptFallback retires one uncovered positive per worker when an epoch
// yields no acceptable rule, guaranteeing progress.
func (ma *master) adoptFallback() error {
	if err := ma.bcastLive(kindAdopt, adoptMsg{Epoch: ma.epoch, Seq: ma.nextSeq(), Gen: ma.gen}); err != nil {
		return err
	}
	pending := ma.pendingLive()
	var adopted []adoptedMsg
	for len(pending) > 0 {
		r, err := ma.nextReply(kindAdopted, pending, func() replyHdr { return new(adoptedMsg) })
		if err != nil {
			return err
		}
		am := r.(*adoptedMsg)
		if am.Ok {
			adopted = append(adopted, *am)
		}
	}
	// Sort by worker for deterministic theory order.
	sort.Slice(adopted, func(i, j int) bool { return adopted[i].Worker < adopted[j].Worker })
	for _, am := range adopted {
		ma.theory = append(ma.theory, logic.Fact(am.Example))
		ma.metrics.GroundFactsAdopted++
		ma.remaining--
	}
	if len(adopted) == 0 {
		// Defensive: nothing left anywhere despite remaining > 0.
		ma.remaining = 0
	}
	return nil
}

// gatherAllAlive runs the kindGather half of any redeal: it collects every
// live worker's uncovered positives (pooled in membership order, which
// keeps the deal deterministic) with their cost estimates, and feeds any
// attached throughput reports to the balancer. Both repartition and
// rebalance start here; the repartition path ignores the costs.
func (ma *master) gatherAllAlive() ([]logic.Term, []int64, error) {
	if err := ma.bcastLive(kindGather, gatherMsg{Epoch: ma.epoch, Seq: ma.nextSeq(), Gen: ma.gen}); err != nil {
		return nil, nil, err
	}
	type gathered struct {
		pos   []logic.Term
		costs []int64
	}
	byWorker := make(map[int]gathered, len(ma.targets))
	pending := ma.pendingLive()
	for len(pending) > 0 {
		r, err := ma.nextReply(kindGathered, pending, func() replyHdr { return new(gatheredMsg) })
		if err != nil {
			return nil, nil, err
		}
		gm := r.(*gatheredMsg)
		byWorker[gm.Worker] = gathered{pos: gm.Pos, costs: gm.Costs}
		if gm.BusyNs > 0 && gm.Inferences > 0 {
			ma.bal.Observe(gm.Worker, gm.Inferences, gm.BusyNs)
		}
	}
	var all []logic.Term
	var costs []int64
	for _, k := range ma.targets {
		all = append(all, byWorker[k].pos...)
		costs = append(costs, byWorker[k].costs...)
	}
	return all, costs, nil
}

// repartition collects every worker's uncovered positives and deals them
// back out evenly (the §4.1 alternative, used only when configured). The
// examples make two network trips, which is exactly the communication cost
// the paper avoided.
func (ma *master) repartition() error {
	all, _, err := ma.gatherAllAlive()
	if err != nil {
		return err
	}
	parts := sched.DealEven(all, len(ma.targets))
	for i, k := range ma.targets {
		if err := ma.send(k, kindRepartition, repartitionMsg{Epoch: ma.epoch, Seq: ma.nextSeq(), Gen: ma.gen, Pos: parts[i]}); err != nil {
			return err
		}
		// The dealt set replaces the worker's positive assignment (its
		// negatives never move); covered positives were gathered out, so
		// the tracked assignment tightens to the alive set here.
		ma.assignedPos[k] = parts[i]
	}
	return nil
}

// reassignBarrier runs one kindReassign barrier: bump the epoch, deal the
// queued lost assignments over the live membership, and collect every
// survivor's ack, rebasing the global remaining counter from the reported
// alive counts. It reports lostAgain=true when a further death aborted
// the collection, so the caller can re-issue with the new casualty folded
// in. A pending rollback order (ma.rollbackTo, set by a crash-restart
// resume) rides on every reassign until some barrier completes; each
// worker applies it at most once, so re-issued barriers merge their
// shares on top of already-rolled-back survivors — exactly matching the
// master's append-only assignment bookkeeping.
func (ma *master) reassignBarrier() (lostAgain bool, err error) {
	ma.epoch++
	members := append([]int(nil), ma.targets...)
	posShares := sched.DealEven(ma.lostPos, len(ma.targets))
	negShares := sched.DealEven(ma.lostNeg, len(ma.targets))
	ma.lostPos, ma.lostNeg = nil, nil
	seq := ma.nextSeq()
	for i, k := range ma.targets {
		rm := reassignMsg{
			Epoch:         ma.epoch,
			Seq:           seq,
			Gen:           ma.gen,
			Members:       members,
			Pos:           posShares[i],
			Neg:           negShares[i],
			RollbackBelow: ma.rollbackTo,
		}
		ma.assignedPos[k] = append(ma.assignedPos[k], posShares[i]...)
		ma.assignedNeg[k] = append(ma.assignedNeg[k], negShares[i]...)
		if err := ma.send(k, kindReassign, rm); err != nil {
			return false, err
		}
	}
	pending := ma.pendingLive()
	alive := 0
	for len(pending) > 0 {
		r, err := ma.nextReply(kindReassignAck, pending, func() replyHdr { return new(reassignAckMsg) })
		if err != nil {
			if asWorkerLost(err) != nil {
				return true, nil
			}
			return false, err
		}
		alive += r.(*reassignAckMsg).Alive
	}
	ma.remaining = alive
	ma.rollbackTo = 0
	return false, nil
}

// recoverMembership redistributes dead workers' assignments over the
// survivors and installs the new membership through the kindReassign
// barrier: every survivor merges its share, adopts the new ring and acks;
// only when every ack is in does the caller re-issue the epoch, so no
// survivor can see new-epoch pipeline traffic before it runs on the new
// membership. Survivor acks carry alive counts, from which the global
// remaining counter is rebased (a dead partition's share may contain
// already-covered positives the master cannot identify). Failures during
// recovery simply restart it with the additional casualties folded in.
func (ma *master) recoverMembership() error {
	for {
		again, err := ma.reassignBarrier()
		if err != nil {
			return err
		}
		if again {
			continue
		}
		ma.metrics.Recoveries++
		return nil
	}
}

// awaitRejoins waits for every checkpointed member to re-establish its
// master link after a crash-restart (netcluster: the workers redial the
// resumed listener and surface as KindPeerUp events). Members that miss
// the window are declared lost — their assignment redistributes through
// the same rollback barrier the survivors get. On transports without
// per-peer links (the simulated machine, where the restarted master takes
// over the same always-connected node) there is nothing to wait for.
func (ma *master) awaitRejoins() error {
	lp, ok := asLinkProber(ma.node)
	if !ok {
		return nil
	}
	missing := func() []int {
		var out []int
		for _, k := range ma.targets {
			if !lp.Linked(k) {
				out = append(out, k)
			}
		}
		return out
	}
	wait := ma.cfg.RecvTimeout
	if wait <= 0 {
		wait = defaultResumeWait
	}
	deadline := time.Now().Add(wait)
	for {
		absent := missing()
		if len(absent) == 0 {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			for _, k := range absent {
				if err := ma.noteLost(k); err != nil {
					return fmt.Errorf("core: master: resume: worker %d never rejoined: %w", k, err)
				}
			}
			return nil
		}
		ctx, cancel := context.WithTimeout(context.Background(), remain)
		msg, err := ma.node.ReceiveCtx(ctx)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				continue // re-check the deadline, then give up on absentees
			}
			return fmt.Errorf("core: master: resume: waiting for rejoins: %w", err)
		}
		switch msg.Kind {
		case cluster.KindPeerUp:
			// A rejoining member (already live — noteJoin ignores it; the
			// Linked probe sees the fresh link) or a brand-new joiner.
			ma.noteJoin(msg.From)
		case cluster.KindPeerDown:
			if ma.dropPendingJoin(msg.From) || !ma.isLive(msg.From) {
				continue
			}
			if err := ma.noteLost(msg.From); err != nil {
				return err
			}
		default:
			ma.metrics.StaleDropped++ // pre-crash residue; superseded below
		}
	}
}

// defaultResumeWait bounds the rejoin wait when no RecvTimeout is set.
const defaultResumeWait = 60 * time.Second

// collectResumeInfo gathers every live member's kindResumeInfo answer.
// It is a dedicated loop rather than nextReply because worker epochs may
// legitimately EXCEED the checkpointed master clock — exactly the
// condition nextReply treats as a protocol violation. Everything else in
// the inbox is pre-crash residue (the simulated master inherits its
// predecessor's unread mailbox) and is dropped — including late
// adoptions, whose retractions the imminent rollback un-does.
func (ma *master) collectResumeInfo() (map[int]*resumeInfoMsg, error) {
	pending := ma.pendingLive()
	infos := make(map[int]*resumeInfoMsg, len(pending))
	for len(pending) > 0 {
		msg, err := receiveWithTimeout(ma.node, ma.cfg.RecvTimeout)
		if err != nil {
			return nil, fmt.Errorf("core: master: resume: waiting for worker state: %w", err)
		}
		switch msg.Kind {
		case cluster.KindPeerUp:
			ma.noteJoin(msg.From)
		case cluster.KindPeerDown:
			if ma.dropPendingJoin(msg.From) || !ma.isLive(msg.From) {
				continue
			}
			if err := ma.noteLost(msg.From); err != nil {
				return nil, err
			}
			delete(pending, msg.From)
		case kindFenced:
			// A worker owned by a newer master answers a stale master's
			// resume query with a fence, not with resume info: surface the
			// supersede immediately instead of letting the stale master
			// wait out its receive timeout on replies that never come.
			var fm fencedMsg
			if err := msg.Decode(&fm); err != nil {
				return nil, fmt.Errorf("core: master: garbled fence from node %d: %w", msg.From, err)
			}
			if fm.Gen > ma.gen {
				return nil, fmt.Errorf("core: master: resume: generation %d fenced off by worker %d at generation %d: %w",
					ma.gen, fm.Worker, fm.Gen, ErrSuperseded)
			}
		case kindResumeInfo:
			var im resumeInfoMsg
			if err := msg.Decode(&im); err != nil {
				return nil, fmt.Errorf("core: master: garbled resume info from node %d: %w", msg.From, err)
			}
			if im.Gen > ma.gen {
				// This loop bypasses nextReply, so the supersede check must
				// run here too: a worker already owned by a newer master
				// answers resume queries with that master's generation.
				return nil, fmt.Errorf("core: master: resume: generation %d superseded by generation %d (worker %d): %w",
					ma.gen, im.Gen, im.Worker, ErrSuperseded)
			}
			if !pending[im.Worker] {
				return nil, fmt.Errorf("core: master: duplicate or unexpected resume info for worker %d from node %d", im.Worker, msg.From)
			}
			delete(pending, im.Worker)
			infos[im.Worker] = &im
		default:
			ma.metrics.StaleDropped++
		}
	}
	return infos, nil
}

// resumeCluster is the crash-restart handshake, replacing the initial
// load on a resumed master: wait for the checkpointed members to rejoin,
// ask each where it stands (kindResumeQuery), re-ship the partition to
// remote workers the crash caught before their first load, fast-forward
// the epoch clock past everything any worker saw, and run the rollback
// barrier — every survivor restores its checkpoint-boundary snapshot,
// discarding the crashed epoch's partial work, and re-acks its alive
// count. From there the ordinary epoch loop re-issues the in-flight epoch
// and the run is on rails again; determinism makes the remainder identical
// to a run that never crashed.
func (ma *master) resumeCluster() error {
	boundary := ma.epoch // the checkpointed, completed epoch
	if err := ma.awaitRejoins(); err != nil {
		return err
	}
	if err := ma.bcastLive(kindResumeQuery, resumeQueryMsg{Epoch: ma.epoch, Seq: ma.nextSeq(), Gen: ma.gen}); err != nil {
		return err
	}
	infos, err := ma.collectResumeInfo()
	if err != nil {
		return err
	}
	maxEpoch := ma.epoch
	for _, im := range infos {
		if im.Epoch > maxEpoch {
			maxEpoch = im.Epoch
		}
		ma.metrics.OrphanReconnects += im.Reconnects
	}
	if ma.parts != nil {
		// A crash during the initial load leaves remote workers without a
		// partition; re-ship it (the load precedes the rollback reassign on
		// the same ordered link, so ordering holds).
		for _, k := range ma.targets {
			if im := infos[k]; im == nil || im.Loaded {
				continue
			}
			lm := ma.cfg.loadSettings()
			lm.Gen = ma.gen
			lm.Pos = ma.assignedPos[k]
			lm.Neg = ma.assignedNeg[k]
			if err := ma.send(k, kindLoad, lm); err != nil {
				return err
			}
		}
	}
	ma.epoch = maxEpoch
	ma.rollbackTo = boundary + 1
	ma.resumeFloor = maxEpoch + 1
	for {
		again, err := ma.reassignBarrier()
		if err != nil {
			return err
		}
		if !again {
			return nil
		}
	}
}

// maybeSpawn fires the cfg.JoinEpochs schedule (simulated runs): each
// unconsumed entry ≤ the completed-epoch count spawns one fresh worker and
// queues it for admission.
func (ma *master) maybeSpawn() {
	if ma.spawn == nil {
		return
	}
	if ma.spawnFired == nil {
		ma.spawnFired = make([]bool, len(ma.cfg.JoinEpochs))
	}
	for i, e := range ma.cfg.JoinEpochs {
		if ma.spawnFired[i] || ma.metrics.Epochs < e {
			continue
		}
		ma.spawnFired[i] = true
		ma.noteJoin(ma.spawn())
	}
}

// welcomeLoad builds the settings payload a joiner needs. On a remote run
// it is everything kindLoad would have carried minus the partition (the
// share arrives in the rebalance that follows on the same ordered link);
// in the simulation joiners are constructed with their configuration and
// the zero Load goes unused.
func (ma *master) welcomeLoad() loadDataMsg {
	if ma.parts == nil {
		return loadDataMsg{}
	}
	return ma.cfg.loadSettings()
}

// admitJoiners grows the membership by every pending joiner and gives the
// new ring its first shares: each joiner gets a kindWelcome (ring +
// settings), then one rebalance barrier sheds examples from the loaded
// workers onto the joiners (and, with Balance, skews shares toward
// measured throughput). The epoch bump makes any in-flight traffic from
// the old membership recognisably stale, exactly as recovery does.
func (ma *master) admitJoiners() error {
	joiners := ma.pendingJoin
	ma.pendingJoin = nil
	ma.epoch++
	for _, id := range joiners {
		for id >= len(ma.assignedPos) {
			ma.assignedPos = append(ma.assignedPos, nil)
			ma.assignedNeg = append(ma.assignedNeg, nil)
		}
		ma.targets = append(ma.targets, id)
		ma.metrics.JoinedWorkers++
	}
	sort.Ints(ma.targets)
	members := append([]int(nil), ma.targets...)
	seq := ma.nextSeq()
	for _, id := range joiners {
		wm := welcomeMsg{Epoch: ma.epoch, Seq: seq, Gen: ma.gen, Members: members, Load: ma.welcomeLoad()}
		if err := ma.send(id, kindWelcome, wm); err != nil {
			return err
		}
	}
	return ma.rebalance(joiners)
}

// rebalance pools every live worker's uncovered positives and deals them
// back out — proportionally to measured throughput when Balance is on,
// evenly otherwise — then installs the membership and shares through the
// kindRebalance+ack barrier (the kindReassign barrier's shape), rebasing
// `remaining` from the acks. joiners, when non-nil, names freshly admitted
// members whose first share sizes are recorded in Metrics.JoinShares. The
// caller has already bumped the epoch.
func (ma *master) rebalance(joiners []int) error {
	all, costs, err := ma.gatherAllAlive()
	if err != nil {
		return err
	}
	var parts [][]logic.Term
	if ma.cfg.Balance {
		// Cost- and speed-aware: each worker's share of the pooled
		// per-example cost is proportional to its measured throughput.
		parts = sched.DealByCost(all, costs, ma.bal.Weights(ma.targets))
	} else {
		parts = sched.DealEven(all, len(ma.targets))
	}
	isJoiner := make(map[int]bool, len(joiners))
	for _, id := range joiners {
		isJoiner[id] = true
	}
	members := append([]int(nil), ma.targets...)
	seq := ma.nextSeq()
	var joinShares []int
	for i, k := range ma.targets {
		rm := rebalanceMsg{Epoch: ma.epoch, Seq: seq, Gen: ma.gen, Members: members, Pos: parts[i]}
		// Covered positives were gathered out, so the tracked assignment
		// tightens to the dealt share (negatives never move).
		ma.assignedPos[k] = parts[i]
		if err := ma.send(k, kindRebalance, rm); err != nil {
			return err
		}
		if isJoiner[k] {
			joinShares = append(joinShares, len(parts[i]))
		}
	}
	pending := ma.pendingLive()
	alive := 0
	for len(pending) > 0 {
		r, err := ma.nextReply(kindRebalanceAck, pending, func() replyHdr { return new(rebalanceAckMsg) })
		if err != nil {
			return err
		}
		alive += r.(*rebalanceAckMsg).Alive
	}
	ma.remaining = alive
	// Only a completed barrier records its deals: an admission aborted by
	// a concurrent death falls into recovery, whose kindReassign
	// supersedes the shares sent above — recording them at send time
	// would report sizes nobody installed.
	ma.metrics.JoinShares = append(ma.metrics.JoinShares, joinShares...)
	ma.metrics.Rebalances++
	return nil
}

// prepEpoch runs the between-epoch membership work: spawn scheduled
// simulated joiners, admit pending joiners, and — with Balance on — skew
// shares toward measured throughput. Default-off runs with no joiners do
// nothing here, which is what keeps them byte-identical to the
// pre-elastic engine.
func (ma *master) prepEpoch() error {
	ma.maybeSpawn()
	if len(ma.pendingJoin) > 0 {
		return ma.admitJoiners()
	}
	if ma.cfg.Balance && ma.metrics.Epochs > 0 {
		ma.epoch++
		return ma.rebalance(nil)
	}
	return nil
}

// stopJoiners releases joiners that arrived too late to be admitted: they
// hold no examples, so the result is complete without them, but a worker
// blocked waiting for its welcome must still be told the run is over.
// Best-effort — a joiner that died meanwhile is simply skipped.
func (ma *master) stopJoiners() {
	for _, id := range ma.pendingJoin {
		ma.send(id, kindStop, stopMsg{Gen: ma.gen})
	}
	ma.pendingJoin = nil
}

// runEpoch runs one logical epoch on the current membership: optional
// repartitioning, one pipeline per live worker, bag consumption, and the
// progress fallback. A workerLostError from any phase aborts the attempt
// before Metrics.Epochs is counted; run() then recovers and re-issues.
func (ma *master) runEpoch() error {
	if ma.cfg.RepartitionEachEpoch && !ma.cfg.Balance && ma.metrics.Epochs > 0 {
		if err := ma.repartition(); err != nil {
			return err
		}
	}
	ma.epoch++
	if err := ma.bcastLive(kindStartPipeline, startMsg{Epoch: ma.epoch, Seq: ma.nextSeq(), Gen: ma.gen, Width: ma.cfg.Width}); err != nil {
		return err
	}
	bag, err := ma.gatherBag()
	if err != nil {
		return err
	}
	accepted := 0
	if len(bag) > 0 {
		if accepted, err = ma.consumeBag(bag); err != nil {
			return err
		}
	}
	// Progress guarantee: an epoch whose bag was empty — or globally
	// all-unacceptable — retires one uncovered positive per worker.
	if accepted == 0 && ma.remaining > 0 {
		if err := ma.adoptFallback(); err != nil {
			return err
		}
	}
	ma.metrics.Epochs++
	return nil
}

// maybePublish hands the theory-so-far to the configured publish hook at a
// completed-epoch boundary. It is a no-op without a hook, before the first
// completed epoch, and at boundaries already published.
func (ma *master) maybePublish() error {
	if ma.cfg.Publish == nil || ma.metrics.Epochs == 0 || ma.metrics.Epochs == ma.published {
		return nil
	}
	theory := append([]logic.Clause(nil), ma.theory...)
	if err := ma.cfg.Publish(ma.metrics.Epochs, theory); err != nil {
		return fmt.Errorf("publish after epoch %d: %w", ma.metrics.Epochs, err)
	}
	ma.published = ma.metrics.Epochs
	return nil
}

// run executes the epochs until every positive is covered (Fig. 5),
// recovering from worker failures when configured.
func (ma *master) run() error {
	ma.node.NotifyFailures(ma.cfg.Recover)
	if ma.resumed {
		// Crash-restart: the cluster already holds (post-crash) state; the
		// resume handshake rolls everyone back to the checkpoint boundary
		// in place of the initial load.
		if err := ma.resumeCluster(); err != nil {
			return err
		}
	} else {
		// Snapshot before the first wire op: a durable master is resumable
		// from the instant it starts, including a crash mid-load (workers
		// the load never reached report Loaded=false and get it re-shipped).
		if err := ma.maybeCheckpoint(); err != nil {
			return err
		}
		if ma.parts != nil {
			// Remote workers have no shared filesystem: each load ships the
			// worker's partition (and the semantics-bearing settings).
			for i, k := range ma.targets {
				if err := ma.send(k, kindLoad, ma.parts[i]); err != nil {
					return err
				}
			}
		} else if err := ma.bcastLive(kindLoad, loadMsg{}); err != nil {
			return err
		}
	}
	for ma.remaining > 0 && ma.metrics.Epochs < ma.cfg.MaxEpochs {
		// The loop top is the only place the whole cluster is quiescent at a
		// completed epoch — the one state a snapshot can name. Serving
		// snapshots publish from the same boundary.
		if err := ma.maybeCheckpoint(); err != nil {
			return err
		}
		if err := ma.maybePublish(); err != nil {
			return err
		}
		err := ma.prepEpoch()
		if err == nil {
			err = ma.runEpoch()
		}
		if err == nil {
			continue
		}
		if asWorkerLost(err) == nil {
			return err
		}
		if err := ma.recoverMembership(); err != nil {
			return err
		}
	}
	// The final theory completed after the last boundary the loop top saw;
	// publish it before the cluster is told to stop.
	if err := ma.maybePublish(); err != nil {
		return err
	}
	ma.draining = true
	if err := ma.bcastLive(kindStop, stopMsg{Gen: ma.gen}); err != nil {
		return err
	}
	ma.stopJoiners()
	if ma.parts == nil {
		return nil
	}
	// Remote runs: collect the workers' final reports (work totals,
	// clocks, outgoing traffic) — the data Learn reads off the worker
	// structs directly in the simulation. A worker dying after its stop
	// forfeits its report; the run result is already complete.
	pending := ma.pendingLive()
	for len(pending) > 0 {
		r, err := ma.nextReply(kindFinal, pending, func() replyHdr { return new(finalMsg) })
		if err != nil {
			if wl := asWorkerLost(err); wl != nil {
				delete(pending, wl.id)
				continue
			}
			return err
		}
		ma.finals = append(ma.finals, *r.(*finalMsg))
	}
	// Joiners whose KindPeerUp only surfaced during the drain still need
	// their stop.
	ma.stopJoiners()
	return nil
}

// newMaster wires a master over a transport for p workers, tracking the
// given initial assignments (index k-1 holds worker k's examples).
func newMaster(node cluster.Transport, p int, cfg Config, metrics *Metrics, nPos int, posParts, negParts [][]logic.Term) *master {
	ma := &master{
		node:        node,
		p:           p,
		cfg:         cfg,
		metrics:     metrics,
		remaining:   nPos,
		bal:         sched.NewBalancer(),
		assignedPos: make([][]logic.Term, p+1),
		assignedNeg: make([][]logic.Term, p+1),
	}
	for k := 1; k <= p; k++ {
		ma.targets = append(ma.targets, k)
		ma.assignedPos[k] = posParts[k-1]
		ma.assignedNeg[k] = negParts[k-1]
	}
	return ma
}

// Learn runs p²-mdie over the background kb and the labelled examples under
// the mode set ms. It returns the learned theory plus run metrics; the
// simulated cluster makespan in Metrics.VirtualTime is the paper-comparable
// execution time.
func Learn(kb *solve.KB, pos, neg []logic.Term, ms *mode.Set, cfg Config) (*Metrics, error) {
	cfg = cfg.withDefaults()
	p := cfg.Workers
	if p < 1 {
		return nil, fmt.Errorf("core: Workers must be ≥ 1, got %d", p)
	}
	if len(pos) == 0 {
		return nil, fmt.Errorf("core: no positive examples")
	}
	if cfg.CheckpointDir != "" {
		if cfg.AddLearnedToBK {
			return nil, fmt.Errorf("core: CheckpointDir is incompatible with AddLearnedToBK: rollback cannot retract asserted rules")
		}
		if cfg.Fingerprint == 0 {
			cfg.Fingerprint = Fingerprint(kb, pos, neg)
		}
	}

	// Fig. 5 step 2: random even partition of E+ and E−.
	posParts, negParts := splitExamples(pos, neg, p, cfg.Seed)

	nw := cluster.NewNetwork(p+1, cfg.Cost)
	nw.SetCodec(cfg.WireCodec)
	if cfg.Trace != nil {
		nw.SetTrace(cfg.Trace)
	}

	workers := make([]*worker, p)
	for k := 1; k <= p; k++ {
		workers[k-1] = newWorker(k, p, nw.Node(k), kb, search.NewExamples(posParts[k-1], negParts[k-1]), ms, cfg)
	}

	metrics := &Metrics{Workers: p, Width: cfg.Width}
	ma := newMaster(nw.Node(0), p, cfg, metrics, len(pos), posParts, negParts)

	start := time.Now()
	errCh := make(chan error, p+1+len(cfg.JoinEpochs))
	var wg sync.WaitGroup
	startWorker := func(w *worker) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A failing worker must surface at the master, not hang it
			// forever (or, unrecovered, kill the whole process): convert
			// panics to errors, then either crash just this node (recovery
			// takes over) or shut the whole network down (the historical
			// fail-stop contract).
			fail := func(err error) {
				errCh <- err
				if cfg.Recover {
					nw.Kill(w.id)
				} else {
					nw.Shutdown()
				}
			}
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("core: worker %d panicked: %v", w.id, r))
				}
			}()
			if err := w.run(); err != nil {
				fail(err)
			}
		}()
	}
	for _, w := range workers {
		startWorker(w)
	}
	if len(cfg.JoinEpochs) > 0 {
		// The cfg.JoinEpochs schedule: spawn a fresh node on the running
		// network, start its worker with an empty partition (the share
		// arrives through the rebalance barrier), and hand the id to the
		// master. Called from the master's own goroutine, so appending to
		// workers is race-free and the totals below see every joiner.
		ma.spawn = func() int {
			node := nw.Spawn()
			w := newWorker(node.ID(), p, node, kb, search.NewExamples(nil, nil), ms, cfg)
			workers = append(workers, w)
			startWorker(w)
			return node.ID()
		}
	}
	masterErr := ma.run()
	if masterErr != nil {
		nw.Shutdown()
	}
	wg.Wait()
	close(errCh)
	// A worker failure shuts the network down and surfaces at the master as
	// a shutdown error; report the root cause in preference. Under
	// recovery, worker failures the master survived are part of a
	// successful run — counted in Metrics.LostWorkers and kept readable in
	// Metrics.WorkerErrors, so a genuine worker-side bug is not silently
	// laundered into an anonymous crash.
	for err := range errCh {
		if err == nil {
			continue
		}
		if cfg.Recover && masterErr == nil {
			metrics.WorkerErrors = append(metrics.WorkerErrors, err.Error())
			continue
		}
		return nil, err
	}
	if masterErr != nil {
		return nil, masterErr
	}

	metrics.Theory = ma.theory
	metrics.WallTime = time.Since(start)
	metrics.VirtualTime = nw.Makespan().Duration()
	st := nw.Stats()
	metrics.CommBytes = st.Bytes
	metrics.CommMessages = st.Messages
	metrics.Traffic = nw.Traffic()
	// Every worker goroutine has exited (wg.Wait above), so reading totals
	// is race-free — including workers lost and recovered around, whose
	// partial work still happened and still counts.
	for _, w := range workers {
		metrics.TotalInferences += w.totalInf()
		metrics.GeneratedRules += w.generated
		metrics.FencedFrames += w.fenced
	}
	return metrics, nil
}
