package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faultline"
	"repro/internal/netcluster"
)

// tcpFlapRun drives one real-TCP p²-mdie run whose master's links are all
// severed at the flapAt'th protocol op (0 = never). With LinkGrace on, the
// session layer must re-dial and replay the gap so the protocol never
// notices. Returns the metrics and the op count.
func tcpFlapRun(t *testing.T, flapAt int64) (*Metrics, int64) {
	t.Helper()
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(2, 10)
	cfg.RecvTimeout = 60 * time.Second
	ncfg := netcluster.Config{
		Fingerprint: Fingerprint(kb, pos, neg),
		LinkGrace:   5 * time.Second,
	}
	master, errCh := startNetCluster(t, 2, ncfg, func(node *netcluster.Node) error {
		return RunWorker(node, kb, ms, Config{})
	})
	plan := faultline.Plan{}
	if flapAt > 0 {
		plan.FlapAtOp = flapAt
		plan.OnFlap = func() { master.DropLinks() }
	}
	fl := faultline.Wrap(master, plan)
	met, err := RunMaster(fl, pos, neg, cfg)
	if err != nil {
		t.Fatalf("flap at op %d: RunMaster: %v", flapAt, err)
	}
	master.Close()
	for k := 0; k < 2; k++ {
		if werr := <-errCh; werr != nil {
			t.Fatalf("flap at op %d: worker error: %v", flapAt, werr)
		}
	}
	return met, fl.Ops()
}

// TestTCPFlapReplayByteIdentity is the link-resilience acceptance check
// over real TCP: sever every one of the master's live connections at
// sampled protocol points and require the learned theory to be
// byte-identical to the failure-free run's, with zero recoveries and zero
// master restarts — the grace window and frame replay must make the
// partition invisible to the protocol, while the flap counters record
// that it really happened.
func TestTCPFlapReplayByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP flap sweep is slow")
	}
	base, total := tcpFlapRun(t, 0)
	if total < 10 {
		t.Fatalf("probe run counted only %d ops", total)
	}
	want := fmt.Sprint(base.Theory)
	if base.LinkFlaps != 0 || base.ReplayedFrames != 0 {
		t.Fatalf("failure-free run reported link faults: flaps=%d replayed=%d", base.LinkFlaps, base.ReplayedFrames)
	}
	for _, op := range []int64{2, total / 3, (2 * total) / 3} {
		met, _ := tcpFlapRun(t, op)
		if got := fmt.Sprint(met.Theory); got != want {
			t.Fatalf("flap at op %d: theory diverged\n got: %s\nwant: %s", op, got, want)
		}
		if met.Recoveries != 0 || met.MasterRestarts != 0 {
			t.Fatalf("flap at op %d: Recoveries = %d MasterRestarts = %d, want 0/0 (the blip must heal below the protocol)",
				op, met.Recoveries, met.MasterRestarts)
		}
		if met.FencedFrames != 0 {
			t.Fatalf("flap at op %d: FencedFrames = %d, want 0", op, met.FencedFrames)
		}
		if met.LinkFlaps < 1 {
			t.Fatalf("flap at op %d: LinkFlaps = %d, want ≥ 1 (the severed links must be counted)", op, met.LinkFlaps)
		}
	}
}

// TestRemoteRecoverAfterGraceExpiry pins the escalation backstop as a
// regression guard on the PR 4 machinery: with a grace window configured,
// a worker that genuinely dies (not a blip — its process, listener and
// all, is gone) must still expire the window, surface as a peer-down and
// be recovered from, exactly as before the link-resilience layer existed.
func TestRemoteRecoverAfterGraceExpiry(t *testing.T) {
	kb, pos, neg, ms := makeTask(t)
	cfg := testConfig(3, 10)
	cfg.Recover = true
	cfg.RecvTimeout = 60 * time.Second
	ncfg := netcluster.Config{
		Fingerprint:    Fingerprint(kb, pos, neg),
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    500 * time.Millisecond,
		LinkGrace:      250 * time.Millisecond,
	}
	master, errCh := startNetCluster(t, 3, ncfg, func(node *netcluster.Node) error {
		if node.ID() == 2 {
			return RunWorker(&crashOn{Node: node, kind: kindEvaluate}, kb, ms, Config{})
		}
		return RunWorker(node, kb, ms, Config{})
	})
	met, err := RunMaster(master, pos, neg, cfg)
	if err != nil {
		t.Fatalf("RunMaster failed despite recovery: %v", err)
	}
	master.Close()
	for k := 0; k < 3; k++ {
		<-errCh // survivors exit cleanly; the crashed worker's error is expected
	}
	if met.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want ≥ 1 (grace expiry must still escalate)", met.Recoveries)
	}
	if met.LostWorkers != 1 {
		t.Fatalf("LostWorkers = %d, want 1", met.LostWorkers)
	}
	theoryCoversAll(t, kb, met.Theory, pos)
}
