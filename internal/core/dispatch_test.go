package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/logic"
)

// The master's event-dispatch loop (nextReply) is the heart of the
// fault-tolerant epoch engine: these tests drive it directly over a
// simulated network where the test plays the workers, covering the error
// paths — kind mismatch, stale-epoch drops, truncated/garbled payloads,
// duplicates, future epochs and membership events.

// dispatchRig is a master mid-epoch over p fake workers driven by the test.
type dispatchRig struct {
	ma *master
	nw *cluster.Network
}

func newDispatchRig(t *testing.T, p int, recovery bool) *dispatchRig {
	t.Helper()
	nw := cluster.NewNetwork(p+1, cluster.CostModel{})
	cfg := Config{
		Workers:     p,
		Recover:     recovery,
		RecvTimeout: 5 * time.Second, // fail tests instead of hanging them
	}.withDefaults()
	empty := make([][]logic.Term, p)
	ma := newMaster(nw.Node(0), p, cfg, &Metrics{}, p, empty, empty)
	ma.node.NotifyFailures(recovery)
	ma.epoch = 3 // pretend we are mid-run so both older and newer epochs exist
	return &dispatchRig{ma: ma, nw: nw}
}

// sendAs injects a message from worker id into the master's inbox.
func (r *dispatchRig) sendAs(t *testing.T, id, kind int, v any) {
	t.Helper()
	if err := r.nw.Node(id).Send(0, kind, v); err != nil {
		t.Fatal(err)
	}
}

// gatherOne runs one nextReply for kindRules over the full pending set.
func (r *dispatchRig) gatherOne() (replyHdr, error) {
	return r.ma.nextReply(kindRules, r.ma.pendingLive(), func() replyHdr { return new(rulesMsg) })
}

func TestDispatchErrorPaths(t *testing.T) {
	rule := logic.MustParseClause("p(X) :- q(X).")
	cases := []struct {
		name    string
		recover bool
		inject  func(t *testing.T, r *dispatchRig)
		// wantErr is a substring of the expected error; empty means the
		// gather must succeed.
		wantErr string
		// wantStale is the number of stale drops the master must count.
		wantStale int64
		// wantLost, when true, expects a workerLostError.
		wantLost bool
	}{
		{
			name: "kind mismatch same epoch",
			inject: func(t *testing.T, r *dispatchRig) {
				r.sendAs(t, 1, kindEvalResult, evalResultMsg{Epoch: 3, Worker: 1})
			},
			wantErr: "expected kind",
		},
		{
			name: "stale epoch reply dropped then current accepted",
			inject: func(t *testing.T, r *dispatchRig) {
				r.sendAs(t, 1, kindRules, rulesMsg{Epoch: 2, Origin: 1, Rules: []logic.Clause{rule}})
				r.sendAs(t, 1, kindRules, rulesMsg{Epoch: 3, Origin: 1})
				r.sendAs(t, 2, kindRules, rulesMsg{Epoch: 3, Origin: 2})
			},
			wantStale: 1,
		},
		{
			name: "stale foreign kind dropped then current accepted",
			inject: func(t *testing.T, r *dispatchRig) {
				r.sendAs(t, 2, kindEvalResult, evalResultMsg{Epoch: 1, Worker: 2})
				r.sendAs(t, 2, kindAdopted, adoptedMsg{Epoch: 2, Worker: 2})
				r.sendAs(t, 1, kindRules, rulesMsg{Epoch: 3, Origin: 1})
				r.sendAs(t, 2, kindRules, rulesMsg{Epoch: 3, Origin: 2})
			},
			wantStale: 2,
		},
		{
			name: "truncated stream",
			inject: func(t *testing.T, r *dispatchRig) {
				// A payload that is not a protocol struct at all: the decode
				// fails exactly as it would on a truncated/corrupt frame.
				// Injected under the gob codec — bare strings have no wire
				// encoding, and a mis-typed gob payload garbles the same way.
				r.nw.SetCodec(cluster.CodecGob)
				r.sendAs(t, 1, kindRules, "not a rules message")
			},
			wantErr: "truncated or garbled",
		},
		{
			name: "garbled foreign kind",
			inject: func(t *testing.T, r *dispatchRig) {
				r.nw.SetCodec(cluster.CodecGob)
				r.sendAs(t, 1, kindAdopted, 12345)
			},
			wantErr: "garbled",
		},
		{
			name: "duplicate reply",
			inject: func(t *testing.T, r *dispatchRig) {
				r.sendAs(t, 1, kindRules, rulesMsg{Epoch: 3, Origin: 1})
				r.sendAs(t, 1, kindRules, rulesMsg{Epoch: 3, Origin: 1})
			},
			wantErr: "duplicate or unexpected",
		},
		{
			name: "unknown origin",
			inject: func(t *testing.T, r *dispatchRig) {
				r.sendAs(t, 1, kindRules, rulesMsg{Epoch: 3, Origin: 9})
			},
			wantErr: "duplicate or unexpected",
		},
		{
			name: "future epoch",
			inject: func(t *testing.T, r *dispatchRig) {
				r.sendAs(t, 1, kindRules, rulesMsg{Epoch: 99, Origin: 1})
			},
			wantErr: "future epoch",
		},
		{
			name:    "worker death with recovery",
			recover: true,
			inject: func(t *testing.T, r *dispatchRig) {
				r.nw.Kill(2)
			},
			wantLost: true,
		},
		{
			// A one-sided link failure: only a sibling saw worker 2 die,
			// so its report must drive the eviction.
			name:    "sibling suspicion evicts live member",
			recover: true,
			inject: func(t *testing.T, r *dispatchRig) {
				r.sendAs(t, 1, kindSuspect, suspectMsg{Epoch: 1, Worker: 1, Peer: 2})
			},
			wantLost: true,
		},
		{
			name: "worker death without recovery",
			// NotifyFailures is off, so Kill is silent; the dispatch loop
			// must still fail via the receive deadline instead of hanging.
			inject: func(t *testing.T, r *dispatchRig) {
				r.ma.cfg.RecvTimeout = 50 * time.Millisecond
				r.nw.Kill(2)
			},
			wantErr: "waiting for kind",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := newDispatchRig(t, 2, tc.recover)
			tc.inject(t, r)
			var err error
			pending := r.ma.pendingLive()
			for len(pending) > 0 {
				_, err = r.ma.nextReply(kindRules, pending, func() replyHdr { return new(rulesMsg) })
				if err != nil {
					break
				}
			}
			if tc.wantLost {
				if asWorkerLost(err) == nil {
					t.Fatalf("err = %v, want workerLostError", err)
				}
				if r.ma.isLive(2) || len(r.ma.targets) != 1 {
					t.Fatalf("membership not updated: %v", r.ma.targets)
				}
				if r.ma.metrics.LostWorkers != 1 {
					t.Fatalf("LostWorkers = %d", r.ma.metrics.LostWorkers)
				}
				return
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("gather failed: %v", err)
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
			if got := r.ma.metrics.StaleDropped; got != tc.wantStale {
				t.Fatalf("StaleDropped = %d, want %d", got, tc.wantStale)
			}
		})
	}
}

// TestSuspicionAboutExcludedPeerIsDropped pins the common suspect case:
// the master's own link noticed the death first, so the sibling's late
// report about the already-excluded peer must be moot — and gathering
// from the survivor continues undisturbed.
func TestSuspicionAboutExcludedPeerIsDropped(t *testing.T) {
	r := newDispatchRig(t, 2, true)
	r.nw.Kill(2)
	_, err := r.gatherOne()
	if asWorkerLost(err) == nil {
		t.Fatalf("err = %v, want workerLostError from the master's own event", err)
	}
	r.sendAs(t, 1, kindSuspect, suspectMsg{Epoch: 3, Worker: 1, Peer: 2})
	r.sendAs(t, 1, kindRules, rulesMsg{Epoch: 3, Origin: 1})
	pending := r.ma.pendingLive() // now just worker 1
	if _, err := r.ma.nextReply(kindRules, pending, func() replyHdr { return new(rulesMsg) }); err != nil {
		t.Fatalf("gather after moot suspicion failed: %v", err)
	}
	if r.ma.metrics.LostWorkers != 1 {
		t.Fatalf("LostWorkers = %d, want 1 (suspicion must not double-count)", r.ma.metrics.LostWorkers)
	}
}

// TestDeathWithoutRecoveryIsAnError pins the fail-stop contract: a
// membership event reaching a master whose recovery is disabled fails the
// run with an actionable message.
func TestDeathWithoutRecoveryIsAnError(t *testing.T) {
	r := newDispatchRig(t, 2, false)
	r.ma.node.NotifyFailures(true) // events delivered, recovery still off
	r.nw.Kill(2)
	_, err := r.gatherOne()
	if err == nil || !strings.Contains(err.Error(), "recovery is disabled") {
		t.Fatalf("err = %v, want recovery-disabled error", err)
	}
}

// TestAllWorkersLostIsFatal: recovery cannot continue with zero survivors.
func TestAllWorkersLostIsFatal(t *testing.T) {
	r := newDispatchRig(t, 2, true)
	r.nw.Kill(1)
	r.nw.Kill(2)
	var err error
	for i := 0; i < 2; i++ {
		_, err = r.gatherOne()
		if err != nil && asWorkerLost(err) == nil {
			break
		}
	}
	if err == nil || !strings.Contains(err.Error(), "no workers survive") {
		t.Fatalf("err = %v, want no-survivors error", err)
	}
}
