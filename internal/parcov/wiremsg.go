package parcov

// Wire-codec encoders for the parcov coverage protocol, mirroring
// core/wiremsg.go: AppendWire on value receivers, DecodeWire on pointer
// receivers, field order = struct order. Candidate bitsets ship as
// fixed 8-byte words — their high bits are as populated as their low
// ones, so varints would only inflate them.

import (
	"repro/internal/solve"
	"repro/internal/wire"
)

func appendMasks(w *wire.Writer, xs [][]uint64) {
	w.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.U64sFixed(x)
	}
}

func readMasks(r *wire.Reader) [][]uint64 {
	n := r.Len()
	if n == 0 {
		return nil
	}
	out := make([][]uint64, n)
	for i := range out {
		out[i] = r.U64sFixed()
	}
	return out
}

func appendBudget(w *wire.Writer, b solve.Budget) {
	w.Int(b.MaxDepth)
	w.Varint(b.MaxInferences)
}

func readBudget(r *wire.Reader) solve.Budget {
	var b solve.Budget
	b.MaxDepth = r.Int()
	b.MaxInferences = r.Varint()
	return b
}

func (m evalMsg) AppendWire(w *wire.Writer) {
	w.Varint(m.Seq)
	w.Clause(m.Rule)
	w.U64sFixed(m.PosCand)
	w.U64sFixed(m.NegCand)
	w.Bool(m.HasCand)
}

func (m *evalMsg) DecodeWire(r *wire.Reader) {
	m.Seq = r.Varint()
	m.Rule = r.Clause()
	m.PosCand = r.U64sFixed()
	m.NegCand = r.U64sFixed()
	m.HasCand = r.Bool()
}

func (m evalResultMsg) AppendWire(w *wire.Writer) {
	w.Varint(m.Seq)
	w.Int(m.Worker)
	w.U64sFixed(m.Pos)
	w.U64sFixed(m.Neg)
}

func (m *evalResultMsg) DecodeWire(r *wire.Reader) {
	m.Seq = r.Varint()
	m.Worker = r.Int()
	m.Pos = r.U64sFixed()
	m.Neg = r.U64sFixed()
}

func (m evalBatchMsg) AppendWire(w *wire.Writer) {
	w.Varint(m.Seq)
	w.Clauses(m.Rules)
	appendMasks(w, m.PosCands)
	appendMasks(w, m.NegCands)
	w.Bools(m.HasCand)
}

func (m *evalBatchMsg) DecodeWire(r *wire.Reader) {
	m.Seq = r.Varint()
	m.Rules = r.Clauses()
	m.PosCands = readMasks(r)
	m.NegCands = readMasks(r)
	m.HasCand = r.Bools()
}

func (m evalBatchResultMsg) AppendWire(w *wire.Writer) {
	w.Varint(m.Seq)
	w.Int(m.Worker)
	appendMasks(w, m.Pos)
	appendMasks(w, m.Neg)
}

func (m *evalBatchResultMsg) DecodeWire(r *wire.Reader) {
	m.Seq = r.Varint()
	m.Worker = r.Int()
	m.Pos = readMasks(r)
	m.Neg = readMasks(r)
}

func (m retractRuleMsg) AppendWire(w *wire.Writer) { w.Clause(m.Rule) }
func (m *retractRuleMsg) DecodeWire(r *wire.Reader) {
	m.Rule = r.Clause()
}

func (m retractOneMsg) AppendWire(w *wire.Writer) { w.Term(m.Example) }
func (m *retractOneMsg) DecodeWire(r *wire.Reader) {
	m.Example = r.Term()
}

func (m stopMsg) AppendWire(w *wire.Writer)  {}
func (m *stopMsg) DecodeWire(r *wire.Reader) {}

func (m loadMsg) AppendWire(w *wire.Writer) {
	w.Terms(m.Pos)
	w.Terms(m.Neg)
	appendBudget(w, m.Budget)
	w.Bool(m.NoVM)
}

func (m *loadMsg) DecodeWire(r *wire.Reader) {
	m.Pos = r.Terms()
	m.Neg = r.Terms()
	m.Budget = readBudget(r)
	m.NoVM = r.Bool()
}

func (m finalMsg) AppendWire(w *wire.Writer) {
	w.Int(m.Worker)
	w.Varint(m.Inferences)
	w.Varint(m.Clock)
	m.Traffic.AppendWire(w)
}

func (m *finalMsg) DecodeWire(r *wire.Reader) {
	m.Worker = r.Int()
	m.Inferences = r.Varint()
	m.Clock = r.Varint()
	m.Traffic.DecodeWire(r)
}
