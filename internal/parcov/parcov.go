// Package parcov implements the related-work baseline the paper compares
// against in §6: data-parallel *coverage testing* (Graham et al. 2003;
// Konstantopoulos 2003). The master runs the ordinary sequential MDIE
// covering loop — saturation, search, bag-keeping all serial — and only the
// coverage test of each candidate rule is farmed out: every worker scores
// the rule on its local partition and the master sums the counts.
//
// The point of the baseline is granularity: one message round-trip per
// candidate rule is fine-grained parallelism, so serial search overhead and
// per-message latency bound the achievable speedup (Amdahl), whereas
// p²-mdie parallelises the searches themselves and cuts the epoch count.
// The ablation benchmark contrasts the two on the same simulated cluster.
package parcov

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bottom"
	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

// Config parameterises a parallel-coverage run.
type Config struct {
	// Workers is the number of coverage-testing workers.
	Workers int
	// Seed drives the example partitioning.
	Seed int64
	// Search, Bottom, Budget configure the (serial) learner.
	Search search.Settings
	Bottom bottom.Options
	Budget solve.Budget
	// Cost is the simulated cluster cost model.
	Cost cluster.CostModel
	// WireCodec selects the payload encoding (zero = compact wire codec,
	// cluster.CodecGob = legacy gob), as in core.Config.
	WireCodec cluster.Codec
	// MaxRules bounds the covering loop. ≤0 means 1000.
	MaxRules int
}

// Metrics summarises a run.
type Metrics struct {
	Theory             []logic.Clause
	VirtualTime        time.Duration
	WallTime           time.Duration
	CommBytes          int64
	CommMessages       int64
	Traffic            cluster.Traffic
	Searches           int
	GeneratedRules     int
	RulesLearned       int
	GroundFactsAdopted int
	TotalInferences    int64
	Workers            int
}

// Protocol kinds.
const (
	kindEval = iota
	kindEvalResult
	kindRetractRule
	kindRetractOne
	kindStop
	// kindLoad (master→worker) ships a remote worker its partition; the
	// simulation hands partitions at construction and never sends it.
	kindLoad
	// kindFinal (worker→master) reports work totals after kindStop on a
	// remote run.
	kindFinal
	// kindEvalBatch (master→workers) carries a whole search frontier —
	// every candidate rule of one node expansion — in one message per
	// worker, with per-rule candidate masks. One kindEvalBatchResult comes
	// back per worker. This collapses the per-candidate round trips of the
	// fine-grained baseline into one round trip per expanded node: the
	// latency term that bounds parcov's speedup shrinks by the frontier
	// size, while the evaluation semantics (and inference totals) are
	// unchanged.
	kindEvalBatch
	// kindEvalBatchResult (worker→master) returns per-rule local bitsets
	// for one kindEvalBatch query.
	kindEvalBatchResult
)

// evalMsg carries one rule plus optional per-worker candidate masks (local
// index space) so workers keep the incremental-evaluation shortcut the
// sequential learner enjoys: only examples the parent rule covered are
// re-tested. Nil masks mean "test everything". Seq numbers the
// coordinator's queries; workers echo it, and the coordinator's dispatch
// loop drops replies to superseded queries instead of misfolding them.
type evalMsg struct {
	Seq     int64
	Rule    logic.Clause
	PosCand []uint64
	NegCand []uint64
	HasCand bool
}

type evalResultMsg struct {
	Seq    int64
	Worker int
	Pos    []uint64 // bitset words over the worker's local positives (alive only)
	Neg    []uint64
}

// evalBatchMsg carries one whole frontier (see kindEvalBatch): rule i is
// evaluated under PosCands[i]/NegCands[i] when HasCand[i], over everything
// otherwise — exactly the per-rule evalMsg semantics, batched.
type evalBatchMsg struct {
	Seq      int64
	Rules    []logic.Clause
	PosCands [][]uint64
	NegCands [][]uint64
	HasCand  []bool
}

// evalBatchResultMsg returns one worker's local bitsets for every rule of
// a kindEvalBatch query, in rule order.
type evalBatchResultMsg struct {
	Seq    int64
	Worker int
	Pos    [][]uint64
	Neg    [][]uint64
}

type retractRuleMsg struct{ Rule logic.Clause }

type retractOneMsg struct{ Example logic.Term }

type stopMsg struct{}

// loadMsg is the remote-transport partition shipment (see kindLoad).
type loadMsg struct {
	Pos, Neg []logic.Term
	Budget   solve.Budget
	// NoVM pins the worker's prover to the interpreter; it travels with the
	// load because parcov's wire protocol ships no other search settings.
	NoVM bool
}

// finalMsg is a remote worker's end-of-run report (see kindFinal).
type finalMsg struct {
	Worker     int
	Inferences int64
	Clock      int64
	Traffic    cluster.Traffic
}

// pcWorker owns one example partition and answers coverage queries. Like
// core's worker it is transport-agnostic: remote workers receive their
// partition via kindLoad and answer kindStop with a final report.
type pcWorker struct {
	id     int
	node   cluster.Transport
	remote bool
	kb     *solve.KB
	m      *solve.Machine
	ex     *search.Examples
	ev     *search.Evaluator
}

func (w *pcWorker) run() error {
	for {
		msg, err := w.node.ReceiveCtx(context.Background())
		if errors.Is(err, cluster.ErrClosed) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("parcov: worker %d: receive: %w", w.id, err)
		}
		if w.ex == nil && msg.Kind != kindLoad && msg.Kind != kindStop {
			return fmt.Errorf("parcov: worker %d got kind %d before its partition was loaded", w.id, msg.Kind)
		}
		switch msg.Kind {
		case kindLoad:
			var lm loadMsg
			if err := msg.Decode(&lm); err != nil {
				return err
			}
			w.m = solve.NewMachine(w.kb, lm.Budget)
			w.m.SetNoVM(lm.NoVM)
			w.ex = search.NewExamples(lm.Pos, lm.Neg)
			w.ev = search.NewEvaluator(w.m, w.ex)
			w.node.Compute(int64(len(lm.Pos) + len(lm.Neg)))
		case kindEval:
			var em evalMsg
			if err := msg.Decode(&em); err != nil {
				return err
			}
			before := w.m.TotalInferences()
			var posCand, negCand search.Bitset
			if em.HasCand {
				posCand = search.Bitset(em.PosCand)
				negCand = search.Bitset(em.NegCand)
			}
			pos, neg := w.ev.Coverage(&em.Rule, posCand, negCand)
			w.node.Compute(w.m.TotalInferences() - before)
			if err := w.node.Send(0, kindEvalResult, evalResultMsg{Seq: em.Seq, Worker: w.id, Pos: pos, Neg: neg}); err != nil {
				return err
			}
		case kindEvalBatch:
			var bm evalBatchMsg
			if err := msg.Decode(&bm); err != nil {
				return err
			}
			before := w.m.TotalInferences()
			out := evalBatchResultMsg{
				Seq:    bm.Seq,
				Worker: w.id,
				Pos:    make([][]uint64, len(bm.Rules)),
				Neg:    make([][]uint64, len(bm.Rules)),
			}
			for i := range bm.Rules {
				var posCand, negCand search.Bitset
				if bm.HasCand[i] {
					posCand = search.Bitset(bm.PosCands[i])
					negCand = search.Bitset(bm.NegCands[i])
				}
				pos, neg := w.ev.Coverage(&bm.Rules[i], posCand, negCand)
				out.Pos[i], out.Neg[i] = pos, neg
			}
			// One compute charge for the whole frontier: the inference sum
			// equals rule-at-a-time evaluation exactly.
			w.node.Compute(w.m.TotalInferences() - before)
			if err := w.node.Send(0, kindEvalBatchResult, out); err != nil {
				return err
			}
		case kindRetractRule:
			var rm retractRuleMsg
			if err := msg.Decode(&rm); err != nil {
				return err
			}
			before := w.m.TotalInferences()
			covered, _ := w.ev.Coverage(&rm.Rule, nil, nil)
			w.ex.RetractPos(covered)
			w.node.Compute(w.m.TotalInferences() - before)
		case kindRetractOne:
			var rm retractOneMsg
			if err := msg.Decode(&rm); err != nil {
				return err
			}
			for i := range w.ex.Pos {
				if logic.Equal(w.ex.Pos[i], rm.Example) {
					single := search.NewBitset(len(w.ex.Pos))
					single.Set(i)
					w.ex.RetractPos(single)
					break
				}
			}
			w.node.Compute(1)
		case kindStop:
			if w.remote {
				fm := finalMsg{Worker: w.id, Clock: int64(w.node.Clock())}
				if w.m != nil {
					fm.Inferences = w.m.TotalInferences()
				}
				if tr, ok := w.node.(cluster.TrafficReporter); ok {
					fm.Traffic = tr.Traffic()
				}
				return w.node.Send(0, kindFinal, fm)
			}
			return nil
		default:
			return fmt.Errorf("parcov: worker %d: unknown kind %d", w.id, msg.Kind)
		}
	}
}

// distCoverer satisfies search.Coverer by broadcasting each rule to the
// workers and stitching their local bitsets into the global index space.
// Its receive loop is event-driven in the same style as core's master:
// each query carries a fresh Seq, replies are matched to the current query
// and deduplicated per worker, and replies to superseded queries are
// dropped rather than misfolded — so the coordinator state machine is
// robust to out-of-order and leftover traffic, not just to the strict
// request/response interleaving of the failure-free path.
type distCoverer struct {
	node    cluster.Transport
	p       int
	targets []int
	posMap  [][]int // worker (0-based) → local index → global index
	negMap  [][]int
	nPos    int
	nNeg    int
	seq     int64 // current query number
	err     error
}

var _ search.Coverer = (*distCoverer)(nil)
var _ search.BatchCoverer = (*distCoverer)(nil)

func (d *distCoverer) PosLen() int { return d.nPos }
func (d *distCoverer) NegLen() int { return d.nNeg }

// CoverageBatch evaluates a whole search frontier in one message per
// worker (kindEvalBatch) instead of one per rule: the search layer's
// CoverageBatchOf dispatches here natively, so a node expansion costs one
// round trip regardless of how many candidates it generated. Results are
// bit-for-bit identical to len(rules) Coverage calls, and inference
// accounting is unchanged; only message count (and with it the simulated
// latency bill) drops.
func (d *distCoverer) CoverageBatch(rules []*logic.Clause, posCands, negCands []search.Bitset) []search.CoverResult {
	out := make([]search.CoverResult, len(rules))
	for i := range out {
		out[i].Pos = search.NewBitset(d.nPos)
		out[i].Neg = search.NewBitset(d.nNeg)
	}
	if d.err != nil || len(rules) == 0 {
		return out
	}
	d.seq++
	for k := 0; k < d.p; k++ {
		bm := evalBatchMsg{
			Seq:      d.seq,
			Rules:    make([]logic.Clause, len(rules)),
			PosCands: make([][]uint64, len(rules)),
			NegCands: make([][]uint64, len(rules)),
			HasCand:  make([]bool, len(rules)),
		}
		for i, r := range rules {
			bm.Rules[i] = *r
			var pc, nc search.Bitset
			if posCands != nil {
				pc = posCands[i]
			}
			if negCands != nil {
				nc = negCands[i]
			}
			if pc != nil && nc != nil {
				bm.HasCand[i] = true
				bm.PosCands[i] = localize(pc, d.posMap[k])
				bm.NegCands[i] = localize(nc, d.negMap[k])
			}
		}
		if err := d.node.Send(d.targets[k], kindEvalBatch, bm); err != nil {
			d.err = err
			return out
		}
	}
	pending := make(map[int]bool, d.p)
	for _, t := range d.targets {
		pending[t] = true
	}
	for len(pending) > 0 {
		msg, err := d.node.ReceiveCtx(context.Background())
		if err != nil {
			d.err = fmt.Errorf("parcov: master: waiting for batch evaluation reply: %w", err)
			return out
		}
		if msg.Kind == cluster.KindPeerDown {
			// Fail-stop kept deliberately (p²-mdie is the recovering
			// engine); share-dealing policy moved to sched, not the
			// failure model.
			d.err = fmt.Errorf("parcov: master: worker %d failed", msg.From)
			return out
		}
		if msg.Kind != kindEvalBatchResult {
			d.err = fmt.Errorf("parcov: master: bad batch evaluation reply (kind=%d)", msg.Kind)
			return out
		}
		var br evalBatchResultMsg
		if err := msg.Decode(&br); err != nil {
			d.err = err
			return out
		}
		if br.Seq < d.seq {
			continue // reply to a superseded query
		}
		if br.Seq > d.seq || br.Worker < 1 || br.Worker > d.p || !pending[br.Worker] || len(br.Pos) != len(rules) || len(br.Neg) != len(rules) {
			d.err = fmt.Errorf("parcov: master: unexpected batch reply (seq=%d worker=%d rules=%d, current seq=%d)", br.Seq, br.Worker, len(br.Pos), d.seq)
			return out
		}
		delete(pending, br.Worker)
		w := br.Worker - 1
		for i := range rules {
			scatter(search.Bitset(br.Pos[i]), d.posMap[w], out[i].Pos)
			scatter(search.Bitset(br.Neg[i]), d.negMap[w], out[i].Neg)
		}
	}
	for i := range rules {
		var pc, nc search.Bitset
		if posCands != nil {
			pc = posCands[i]
		}
		if negCands != nil {
			nc = negCands[i]
		}
		if pc != nil {
			out[i].Pos.AndWith(pc)
		}
		if nc != nil {
			out[i].Neg.AndWith(nc)
		}
	}
	return out
}

func (d *distCoverer) Coverage(rule *logic.Clause, posCand, negCand search.Bitset) (search.Bitset, search.Bitset) {
	pos := search.NewBitset(d.nPos)
	neg := search.NewBitset(d.nNeg)
	if d.err != nil {
		return pos, neg
	}
	d.seq++
	for k := 0; k < d.p; k++ {
		em := evalMsg{Seq: d.seq, Rule: *rule}
		if posCand != nil && negCand != nil {
			em.HasCand = true
			em.PosCand = localize(posCand, d.posMap[k])
			em.NegCand = localize(negCand, d.negMap[k])
		}
		if err := d.node.Send(d.targets[k], kindEval, em); err != nil {
			d.err = err
			return pos, neg
		}
	}
	pending := make(map[int]bool, d.p)
	for _, t := range d.targets {
		pending[t] = true
	}
	for len(pending) > 0 {
		msg, err := d.node.ReceiveCtx(context.Background())
		if err != nil {
			d.err = fmt.Errorf("parcov: master: waiting for evaluation reply: %w", err)
			return pos, neg
		}
		if msg.Kind == cluster.KindPeerDown {
			// The coverage-farming baseline keeps the paper's fail-stop
			// contract: it cannot redistribute state, so a dead worker
			// fails the run (p²-mdie is the recovering engine).
			d.err = fmt.Errorf("parcov: master: worker %d failed", msg.From)
			return pos, neg
		}
		if msg.Kind != kindEvalResult {
			d.err = fmt.Errorf("parcov: master: bad evaluation reply (kind=%d)", msg.Kind)
			return pos, neg
		}
		var er evalResultMsg
		if err := msg.Decode(&er); err != nil {
			d.err = err
			return pos, neg
		}
		if er.Seq < d.seq {
			continue // reply to a superseded query
		}
		if er.Seq > d.seq || er.Worker < 1 || er.Worker > d.p || !pending[er.Worker] {
			d.err = fmt.Errorf("parcov: master: unexpected evaluation reply (seq=%d worker=%d, current seq=%d)", er.Seq, er.Worker, d.seq)
			return pos, neg
		}
		delete(pending, er.Worker)
		w := er.Worker - 1
		scatter(search.Bitset(er.Pos), d.posMap[w], pos)
		scatter(search.Bitset(er.Neg), d.negMap[w], neg)
	}
	if posCand != nil {
		pos.AndWith(posCand)
	}
	if negCand != nil {
		neg.AndWith(negCand)
	}
	return pos, neg
}

// scatter maps local bitset positions through idxMap into the global set.
func scatter(local search.Bitset, idxMap []int, global search.Bitset) {
	local.ForEach(func(i int) bool {
		if i < len(idxMap) {
			global.Set(idxMap[i])
		}
		return true
	})
}

// localize projects a global mask into one worker's local index space.
func localize(global search.Bitset, idxMap []int) []uint64 {
	local := search.NewBitset(len(idxMap))
	for li, gi := range idxMap {
		if global.Get(gi) {
			local.Set(li)
		}
	}
	return local
}

// Learn runs the parallel-coverage-testing covering algorithm.
func Learn(kb *solve.KB, pos, neg []logic.Term, ms *mode.Set, cfg Config) (*Metrics, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("parcov: Workers must be ≥ 1, got %d", cfg.Workers)
	}
	if len(pos) == 0 {
		return nil, fmt.Errorf("parcov: no positive examples")
	}
	if cfg.MaxRules <= 0 {
		cfg.MaxRules = 1000
	}
	p := cfg.Workers
	nw := cluster.NewNetwork(p+1, cfg.Cost)
	nw.SetCodec(cfg.WireCodec)

	// Partition examples (same seeded scheme as p²-mdie).
	posParts := dealOut(len(pos), p, cfg.Seed)
	negParts := dealOut(len(neg), p, cfg.Seed+1)
	workers := make([]*pcWorker, p)
	posMap := make([][]int, p)
	negMap := make([][]int, p)
	for k := 0; k < p; k++ {
		var wpos, wneg []logic.Term
		for _, gi := range posParts[k] {
			posMap[k] = append(posMap[k], gi)
			wpos = append(wpos, pos[gi])
		}
		for _, gi := range negParts[k] {
			negMap[k] = append(negMap[k], gi)
			wneg = append(wneg, neg[gi])
		}
		m := solve.NewMachine(kb, cfg.Budget)
		m.SetNoVM(cfg.Search.NoVM)
		ex := search.NewExamples(wpos, wneg)
		workers[k] = &pcWorker{id: k + 1, node: nw.Node(k + 1), kb: kb, m: m, ex: ex, ev: search.NewEvaluator(m, ex)}
	}

	masterNode := nw.Node(0)
	targets := make([]int, p)
	for i := range targets {
		targets[i] = i + 1
	}
	dc := &distCoverer{node: masterNode, p: p, targets: targets, posMap: posMap, negMap: negMap, nPos: len(pos), nNeg: len(neg)}

	met := &Metrics{Workers: p}
	start := time.Now()
	errCh := make(chan error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for _, w := range workers {
		go func(w *pcWorker) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errCh <- fmt.Errorf("parcov: worker %d panicked: %v", w.id, r)
					nw.Shutdown()
				}
			}()
			if err := w.run(); err != nil {
				errCh <- err
				nw.Shutdown()
			}
		}(w)
	}

	masterErr := runMaster(masterNode, kb, pos, ms, cfg, dc, met)
	if masterErr == nil {
		masterErr = masterNode.Broadcast(targets, kindStop, stopMsg{})
	}
	if masterErr != nil {
		nw.Shutdown()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	if masterErr != nil {
		return nil, masterErr
	}
	if dc.err != nil {
		return nil, dc.err
	}

	met.WallTime = time.Since(start)
	met.VirtualTime = nw.Makespan().Duration()
	st := nw.Stats()
	met.CommBytes = st.Bytes
	met.CommMessages = st.Messages
	met.Traffic = nw.Traffic()
	for _, w := range workers {
		met.TotalInferences += w.m.TotalInferences()
	}
	return met, nil
}

// runMaster is the serial covering loop with distributed coverage tests.
func runMaster(node cluster.Transport, kb *solve.KB, pos []logic.Term, ms *mode.Set, cfg Config, dc *distCoverer, met *Metrics) error {
	m := solve.NewMachine(kb, cfg.Budget) // master machine: saturation only
	m.SetNoVM(cfg.Search.NoVM)
	alive := search.FullBitset(len(pos))
	targets := dc.targets

	for !alive.Empty() && len(met.Theory) < cfg.MaxRules {
		if dc.err != nil {
			return dc.err
		}
		seed := -1
		alive.ForEach(func(i int) bool { seed = i; return false })
		before := m.TotalInferences()
		bot, err := bottom.Construct(m, ms, pos[seed], cfg.Bottom)
		node.Compute(m.TotalInferences() - before)
		if err != nil {
			return err
		}
		sr := search.LearnRule(dc, bot, nil, cfg.Search)
		met.Searches++
		met.GeneratedRules += sr.Generated
		best := sr.Best()
		if best == nil || best.PosCover().Empty() {
			alive.Clear(seed)
			met.Theory = append(met.Theory, logic.Fact(pos[seed]))
			met.GroundFactsAdopted++
			if err := node.Broadcast(targets, kindRetractOne, retractOneMsg{Example: pos[seed]}); err != nil {
				return err
			}
			continue
		}
		clause := best.Materialize(bot).Canonical()
		met.Theory = append(met.Theory, clause)
		met.RulesLearned++
		alive.AndNotWith(best.PosCover())
		if err := node.Broadcast(targets, kindRetractRule, retractRuleMsg{Rule: clause}); err != nil {
			return err
		}
	}
	met.TotalInferences += m.TotalInferences()
	return nil
}

// dealOut splits 0..n-1 into p seeded-shuffled round-robin groups.
func dealOut(n, p int, seed int64) [][]int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 0x2545F4914F6CDD1D
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([][]int, p)
	for i, v := range idx {
		out[i%p] = append(out[i%p], v)
	}
	return out
}
