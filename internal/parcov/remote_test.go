package parcov

import (
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/netcluster"
	"repro/internal/search"
	"repro/internal/solve"
)

func remoteTask(t *testing.T) (*solve.KB, []logic.Term, []logic.Term, *mode.Set) {
	t.Helper()
	kb := solve.NewKB()
	var pos, neg []logic.Term
	add := func(mol, el string, isPos bool) {
		kb.AddFact(logic.MustParseTerm("atm(" + mol + ", " + mol + "_a, " + el + ")"))
		e := logic.MustParseTerm("active(" + mol + ")")
		if isPos {
			pos = append(pos, e)
		} else {
			neg = append(neg, e)
		}
	}
	for i, m := range []string{"p1", "p2", "p3", "p4", "p5", "p6"} {
		el := "oxygen"
		if i%2 == 1 {
			el = "sulfur"
		}
		add(m, el, true)
	}
	for _, m := range []string{"n1", "n2", "n3", "n4"} {
		add(m, "carbon", false)
	}
	ms := mode.MustParseSet(`
		modeh(1, active(+mol)).
		modeb('*', atm(+mol, -atomid, #element)).
	`)
	return kb, pos, neg, ms
}

// TestRemoteCoverageMatchesSimulated runs the coverage-farming baseline on
// both transports and requires identical theories: the parcov protocol is
// transport-agnostic just like p²-mdie's.
func TestRemoteCoverageMatchesSimulated(t *testing.T) {
	kb, pos, neg, ms := remoteTask(t)
	cfg := Config{
		Workers: 2,
		Seed:    7,
		Search:  search.Settings{MaxClauseLen: 2, MinPrec: 0.8, NodesLimit: 200}.WithDefaults(),
	}
	sim, err := Learn(kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}

	fp := core.Fingerprint(kb, pos, neg)
	ncfg := netcluster.Config{Fingerprint: fp}
	p := 2
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for k := 0; k < p; k++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[k] = ln
		addrs[k] = ln.Addr().String()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, p)
	for k := 0; k < p; k++ {
		ln := lns[k]
		wg.Add(1)
		go func() {
			defer wg.Done()
			node, err := netcluster.ServeOn(ln, ncfg)
			if err != nil {
				errCh <- err
				return
			}
			defer node.Close()
			errCh <- RunWorker(node, kb, cfg)
		}()
	}
	master, err := netcluster.Connect(addrs, ncfg)
	if err != nil {
		t.Fatal(err)
	}
	met, err := RunMaster(master, kb, pos, neg, ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	master.Close()
	wg.Wait()
	close(errCh)
	for werr := range errCh {
		if werr != nil {
			t.Fatalf("worker error: %v", werr)
		}
	}

	if len(met.Theory) != len(sim.Theory) {
		t.Fatalf("theory sizes differ: net %d vs sim %d", len(met.Theory), len(sim.Theory))
	}
	for i := range met.Theory {
		if met.Theory[i].String() != sim.Theory[i].String() {
			t.Fatalf("rule %d differs:\nnet: %s\nsim: %s", i, met.Theory[i], sim.Theory[i])
		}
	}
	if met.RulesLearned != sim.RulesLearned || met.GroundFactsAdopted != sim.GroundFactsAdopted {
		t.Fatalf("run shape differs: net %+v vs sim %+v", met, sim)
	}
	// Worker-originated traffic is byte-identical; master rows carry the
	// extra kindLoad partition shipping.
	for from := 1; from <= p; from++ {
		for to := 0; to <= p; to++ {
			if got, want := met.Traffic.LinkBytes(from, to), sim.Traffic.LinkBytes(from, to); got != want {
				t.Errorf("link %d->%d bytes: net %d vs sim %d", from, to, got, want)
			}
		}
	}
	if met.TotalInferences <= 0 || met.VirtualTime <= 0 {
		t.Fatalf("work not accounted: %+v", met)
	}
}
