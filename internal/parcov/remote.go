package parcov

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/solve"
)

// RunWorker drives one multi-process coverage-testing worker over an
// established transport: it waits for its partition in kindLoad, answers
// coverage queries, and reports totals on kindStop. The coverage-farming
// baseline thus runs on the same netcluster substrate as p²-mdie, which
// is what makes their Table-4 traffic directly comparable.
func RunWorker(t cluster.Transport, kb *solve.KB, cfg Config) (err error) {
	if t.ID() < 1 {
		return fmt.Errorf("parcov: RunWorker needs a worker node id (≥ 1), got %d", t.ID())
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parcov: worker %d panicked: %v", t.ID(), r)
		}
	}()
	w := &pcWorker{id: t.ID(), node: t, remote: true, kb: kb}
	return w.run()
}

// RunMaster drives the serial covering loop over remote coverage workers,
// partitioning the examples exactly as the simulated Learn does and
// shipping each worker its share. The learned theory is identical to the
// simulated run's for the same inputs. On error the caller should Abort
// the underlying transport (a best-effort stop is broadcast, but a peer
// behind a broken link only unblocks when its link dies).
func RunMaster(t cluster.Transport, kb *solve.KB, pos, neg []logic.Term, ms *mode.Set, cfg Config) (*Metrics, error) {
	if t.ID() != 0 {
		return nil, fmt.Errorf("parcov: RunMaster needs node id 0, got %d", t.ID())
	}
	p := t.Size() - 1
	if p < 1 {
		return nil, fmt.Errorf("parcov: RunMaster needs ≥ 1 worker, transport has %d nodes", t.Size())
	}
	if len(pos) == 0 {
		return nil, fmt.Errorf("parcov: no positive examples")
	}
	if cfg.MaxRules <= 0 {
		cfg.MaxRules = 1000
	}
	cfg.Workers = p

	// Same seeded partitioning as the simulation.
	posParts := dealOut(len(pos), p, cfg.Seed)
	negParts := dealOut(len(neg), p, cfg.Seed+1)
	posMap := make([][]int, p)
	negMap := make([][]int, p)
	targets := make([]int, p)
	for k := 0; k < p; k++ {
		targets[k] = k + 1
		lm := loadMsg{Budget: cfg.Budget, NoVM: cfg.Search.NoVM}
		for _, gi := range posParts[k] {
			posMap[k] = append(posMap[k], gi)
			lm.Pos = append(lm.Pos, pos[gi])
		}
		for _, gi := range negParts[k] {
			negMap[k] = append(negMap[k], gi)
			lm.Neg = append(lm.Neg, neg[gi])
		}
		if err := t.Send(k+1, kindLoad, lm); err != nil {
			return nil, err
		}
	}

	dc := &distCoverer{node: t, p: p, targets: targets, posMap: posMap, negMap: negMap, nPos: len(pos), nNeg: len(neg)}
	met := &Metrics{Workers: p}
	start := time.Now()
	masterErr := runMaster(t, kb, pos, ms, cfg, dc, met)
	if masterErr == nil {
		masterErr = dc.err
	}
	if masterErr != nil {
		// Best-effort release: without a stop, healthy remote workers
		// would block forever in their receive loop (their links stay
		// heartbeat-alive as long as this process runs). Callers should
		// still Abort the transport so broken peers see a failure.
		t.Broadcast(targets, kindStop, stopMsg{})
		return nil, masterErr
	}
	if err := t.Broadcast(targets, kindStop, stopMsg{}); err != nil {
		return nil, err
	}

	// Collect the final reports.
	traffic := cluster.NewTraffic(p + 1)
	if tr, ok := t.(cluster.TrafficReporter); ok {
		traffic.Merge(tr.Traffic())
	}
	makespan := t.Clock()
	for k := 0; k < p; k++ {
		msg, err := t.ReceiveCtx(context.Background())
		if err != nil {
			return nil, fmt.Errorf("parcov: master: waiting for final reports: %w", err)
		}
		if msg.Kind != kindFinal {
			return nil, fmt.Errorf("parcov: master: expected final report, got kind %d", msg.Kind)
		}
		var fm finalMsg
		if err := msg.Decode(&fm); err != nil {
			return nil, err
		}
		met.TotalInferences += fm.Inferences
		if c := cluster.VTime(fm.Clock); c > makespan {
			makespan = c
		}
		traffic.Merge(fm.Traffic)
	}
	met.WallTime = time.Since(start)
	met.VirtualTime = makespan.Duration()
	met.Traffic = traffic
	met.CommBytes = traffic.TotalBytes()
	met.CommMessages = traffic.TotalMsgs()
	return met, nil
}
