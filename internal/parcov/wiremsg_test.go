package parcov

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/logic"
	"repro/internal/solve"
)

// parcovPayloads is the coverage protocol's counterpart of core's
// testPayloads: one representative payload per message kind, so the
// round-trip tests fail on any kind added without a wire encoding.
func parcovPayloads() map[int]any {
	mustTerm := logic.MustParseTerm
	rule := logic.Clause{
		Head: mustTerm("active(X)"),
		Body: []logic.Literal{logic.Lit(mustTerm("atm(X, Y, oxygen)"))},
	}
	return map[int]any{
		kindEval:        evalMsg{Seq: 3, Rule: rule, PosCand: []uint64{0xff, 0}, NegCand: []uint64{1}, HasCand: true},
		kindEvalResult:  evalResultMsg{Seq: 3, Worker: 2, Pos: []uint64{0x0f}, Neg: []uint64{0}},
		kindRetractRule: retractRuleMsg{Rule: rule},
		kindRetractOne:  retractOneMsg{Example: mustTerm("active(m7)")},
		kindStop:        stopMsg{},
		kindLoad: loadMsg{
			Pos:    []logic.Term{mustTerm("active(m1)"), mustTerm("active(m2)")},
			Neg:    []logic.Term{mustTerm("active(m3)")},
			Budget: solve.Budget{MaxDepth: 32, MaxInferences: 1 << 16},
			NoVM:   true,
		},
		kindFinal: finalMsg{
			Worker:     1,
			Inferences: 4242,
			Clock:      987654321,
			Traffic:    cluster.Traffic{N: 2, Bytes: []int64{0, 1, 2, 3}, Msgs: []int64{0, 1, 1, 0}},
		},
		kindEvalBatch: evalBatchMsg{
			Seq:      9,
			Rules:    []logic.Clause{rule, {Head: mustTerm("active(Y)")}},
			PosCands: [][]uint64{{0xff}, nil},
			NegCands: [][]uint64{{1, 2}, nil},
			HasCand:  []bool{true, false},
		},
		kindEvalBatchResult: evalBatchResultMsg{
			Seq:    9,
			Worker: 2,
			Pos:    [][]uint64{{0x07}, {0}},
			Neg:    [][]uint64{{0}, {0x70}},
		},
	}
}

// TestParcovWireRoundTrip pins every parcov message kind under both
// codecs: the wire decode must reproduce exactly the value gob produces.
func TestParcovWireRoundTrip(t *testing.T) {
	payloads := parcovPayloads()
	if got, want := len(payloads), kindEvalBatchResult+1; got != want {
		t.Fatalf("payload table covers %d kinds, protocol has %d — extend the table", got, want)
	}
	kinds := make([]int, 0, len(payloads))
	for k := range payloads {
		kinds = append(kinds, k)
	}
	sort.Ints(kinds)
	for _, kind := range kinds {
		v := payloads[kind]
		for _, codec := range []cluster.Codec{cluster.CodecWire, cluster.CodecGob} {
			enc, err := cluster.EncodePayload(codec, v)
			if err != nil {
				t.Fatalf("kind %d %v: encode: %v", kind, codec, err)
			}
			out := reflect.New(reflect.TypeOf(v))
			msg := cluster.Message{Kind: kind, Payload: enc, Codec: codec}
			if err := msg.Decode(out.Interface()); err != nil {
				t.Fatalf("kind %d %v: decode: %v", kind, codec, err)
			}
			if !reflect.DeepEqual(out.Elem().Interface(), v) {
				t.Errorf("kind %d %v round trip mismatch:\n got: %#v\nwant: %#v", kind, codec, out.Elem().Interface(), v)
			}
		}
	}
}
