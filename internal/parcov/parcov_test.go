package parcov

import (
	"testing"

	"repro/internal/covering"
	"repro/internal/datasets"
	"repro/internal/logic"
	"repro/internal/mode"
	"repro/internal/search"
	"repro/internal/solve"
)

func smallTask(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds := datasets.PyrimidinesSized(48, 40, 9)
	// Keep unit tests quick: every generated rule costs a message round in
	// this baseline, so cap the per-search effort well below the dataset's
	// recommended benchmark setting.
	ds.Search.NodesLimit = 60
	ds.Search.MaxClauseLen = 2
	ds.Bottom.MaxLiterals = 40
	return ds
}

func TestLearnMatchesSequentialTheory(t *testing.T) {
	ds := smallTask(t)
	// Sequential baseline.
	ex := search.NewExamples(ds.Pos, ds.Neg)
	seq, err := covering.Learn(ds.KB, ex, ds.Modes, covering.Config{
		Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Parallel-coverage run: same search, distributed evaluation. The
	// search is semantically identical, so the theory must be identical.
	par, err := Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, Config{
		Workers: 3, Seed: 5,
		Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Theory) != len(par.Theory) {
		t.Fatalf("theory sizes differ: seq %d vs par %d", len(seq.Theory), len(par.Theory))
	}
	for i := range seq.Theory {
		if seq.Theory[i].String() != par.Theory[i].String() {
			t.Fatalf("rule %d differs:\nseq: %s\npar: %s", i, seq.Theory[i], par.Theory[i])
		}
	}
}

func TestMetricsRecorded(t *testing.T) {
	ds := smallTask(t)
	met, err := Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, Config{
		Workers: 4, Seed: 5,
		Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.CommMessages == 0 || met.CommBytes == 0 {
		t.Fatalf("communication not recorded: %+v", met)
	}
	if met.VirtualTime <= 0 || met.WallTime <= 0 {
		t.Fatalf("times not recorded: %+v", met)
	}
	if met.Searches == 0 || met.GeneratedRules == 0 {
		t.Fatalf("search stats not recorded: %+v", met)
	}
	// The coverage queries are batched per search frontier (one message
	// per worker per node expansion), so the message count must come in
	// well under the historical one-round-trip-per-generated-rule bill.
	// The NoBatchEval A/B path keeps the per-rule wire protocol: same
	// theory, same inference totals, strictly more messages.
	ds2 := smallTask(t)
	ds2.Search.NoBatchEval = true
	perRule, err := Learn(ds2.KB, ds2.Pos, ds2.Neg, ds2.Modes, Config{
		Workers: 4, Seed: 5,
		Search: ds2.Search, Bottom: ds2.Bottom, Budget: ds2.Budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if perRule.CommMessages < int64(perRule.GeneratedRules) {
		t.Fatalf("per-rule baseline sent %d messages for %d generated rules", perRule.CommMessages, perRule.GeneratedRules)
	}
	if met.CommMessages >= perRule.CommMessages {
		t.Fatalf("batched run sent %d messages, per-rule baseline %d — batching should cut the count", met.CommMessages, perRule.CommMessages)
	}
	if len(met.Theory) != len(perRule.Theory) {
		t.Fatalf("batched and per-rule theories differ in size: %d vs %d", len(met.Theory), len(perRule.Theory))
	}
	for i := range met.Theory {
		if met.Theory[i].String() != perRule.Theory[i].String() {
			t.Fatalf("rule %d differs between batched and per-rule evaluation", i)
		}
	}
	if met.TotalInferences != perRule.TotalInferences {
		t.Fatalf("inference totals differ: batched %d vs per-rule %d", met.TotalInferences, perRule.TotalInferences)
	}
	t.Logf("parcov messages: batched %d vs per-rule %d (%d generated rules)",
		met.CommMessages, perRule.CommMessages, met.GeneratedRules)
}

func TestDeterministic(t *testing.T) {
	ds := smallTask(t)
	cfg := Config{Workers: 2, Seed: 5, Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget}
	m1, err := Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Theory) != len(m2.Theory) || m1.CommBytes != m2.CommBytes {
		t.Fatalf("nondeterministic run: %d/%d rules, %d/%d bytes",
			len(m1.Theory), len(m2.Theory), m1.CommBytes, m2.CommBytes)
	}
}

func TestFallbackRetractsEverywhere(t *testing.T) {
	kb := solve.NewKB()
	kb.AddFact(logic.MustParseTerm("f(p1, a)"))
	kb.AddFact(logic.MustParseTerm("f(p2, a)"))
	kb.AddFact(logic.MustParseTerm("f(n1, a)"))
	pos := []logic.Term{logic.MustParseTerm("t(p1)"), logic.MustParseTerm("t(p2)")}
	neg := []logic.Term{logic.MustParseTerm("t(n1)")}
	ms := mode.MustParseSet(`
		modeh(1, t(+x)).
		modeb(1, f(+x, #v)).
	`)
	met, err := Learn(kb, pos, neg, ms, Config{
		Workers: 2, Seed: 1,
		Search: search.Settings{MinPrec: 0.99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.GroundFactsAdopted != 2 {
		t.Fatalf("GroundFactsAdopted = %d, want 2", met.GroundFactsAdopted)
	}
}

func TestConfigValidation(t *testing.T) {
	ds := smallTask(t)
	if _, err := Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, Config{Workers: 0}); err == nil {
		t.Fatal("Workers=0 accepted")
	}
	if _, err := Learn(ds.KB, nil, ds.Neg, ds.Modes, Config{Workers: 2}); err == nil {
		t.Fatal("empty positives accepted")
	}
}

// (modes helper removed: tests use mode.MustParseSet directly)

func TestMoreWorkersSameTheory(t *testing.T) {
	ds := smallTask(t)
	var prev []logic.Clause
	for _, p := range []int{1, 2, 5} {
		met, err := Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, Config{
			Workers: p, Seed: 3, Search: ds.Search, Bottom: ds.Bottom, Budget: ds.Budget,
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if prev != nil {
			if len(met.Theory) != len(prev) {
				t.Fatalf("p=%d: theory size changed: %d vs %d", p, len(met.Theory), len(prev))
			}
			for i := range prev {
				if met.Theory[i].String() != prev[i].String() {
					t.Fatalf("p=%d: rule %d changed", p, i)
				}
			}
		}
		prev = met.Theory
	}
}
