// Package faultline is a deterministic fault-injection wrapper around
// cluster.Transport. It schedules faults by *protocol-message count* under a
// fixed seed — every data send and every delivered data message is one
// numbered "op" — so a chaos schedule like "crash the master at op 37" or
// "drop 5% of receives with seed 1" replays identically run after run, on
// the simulated machine and on TCP alike. Hand-placed Kill hooks find the
// failure points someone thought of; a counted schedule can visit all of
// them.
//
// Synthetic membership events (negative kinds, KindPeerDown/KindPeerUp) are
// passed through uncounted and unfaulted: faultline perturbs the protocol,
// never the transport's own failure detector.
package faultline

import (
	"context"
	"errors"
	"time"

	"repro/internal/cluster"
)

// ErrCrashed is returned by every transport method once the crash schedule
// has fired: the wrapped node is dead and stays dead, exactly as if the
// process had been killed at that protocol point.
var ErrCrashed = errors.New("faultline: crashed by schedule")

// Plan is a deterministic fault schedule. The zero value injects nothing
// and is bitwise-transparent: calls delegate unchanged, only the op counter
// runs (which is how a probe run measures a protocol's op count).
type Plan struct {
	// Seed drives the probabilistic faults; the same seed replays the same
	// fault sequence. Zero picks a fixed default, never wall-clock entropy.
	Seed int64
	// CrashAtOp kills the transport when the op'th protocol point (1-based)
	// is reached: the op itself does not execute — a send dies before the
	// wire, a receive dies before delivery. 0 = never.
	CrashAtOp int64
	// OnCrash, when non-nil, runs once at the moment the crash fires.
	OnCrash func()
	// DropSend is the probability a data send is silently discarded.
	DropSend float64
	// DropRecv is the probability a delivered data message is discarded
	// before the caller sees it.
	DropRecv float64
	// DupRecv is the probability a delivered data message is delivered
	// twice.
	DupRecv float64
	// DelayRecv is the probability a delivered data message is held back
	// and re-delivered DelayOps receive-ops later (reordering).
	DelayRecv float64
	// DelayOps is the holdback distance for DelayRecv (default 3).
	DelayOps int64

	// FlapAtOp starts a transient link blip at the op'th protocol point
	// (1-based, once per run). With OnFlap set the blip is delegated —
	// e.g. netcluster.Node.DropLinks severs every live TCP conn and the
	// link-session layer replays the gap (DESIGN.md §9). Without OnFlap
	// the wrapper simulates the blip itself: the node's NIC is "down" for
	// FlapFor of wall time, so its protocol ops — sends and receives alike
	// — stall until the window closes and then proceed. No loss, no
	// reorder, so a run's protocol outcome is unchanged by the flap.
	// 0 = never.
	FlapAtOp int64
	// FlapFor is the blip duration (default 40ms).
	FlapFor time.Duration
	// OnFlap, when non-nil, runs once at FlapAtOp in place of the
	// built-in buffering blip.
	OnFlap func()

	// PartitionAtOp starts a lossy one-sided partition at the op'th
	// protocol point (1-based, once per run): for PartitionFor of wall
	// time, traffic on the PartitionSide is silently dropped — real loss,
	// unlike a flap, so the protocol must recover on its own. 0 = never.
	PartitionAtOp int64
	// PartitionFor is the partition duration (default 40ms).
	PartitionFor time.Duration
	// PartitionSide selects what the window drops: "out" (this node's
	// sends), "in" (its delivered data messages), or "both" (default).
	PartitionSide string
}

// Transport wraps an inner cluster.Transport with a Plan. It is safe for
// the same single-goroutine use the inner transport supports; the op
// counter and fault state are mutex-free by design because protocol nodes
// are single-threaded.
type Transport struct {
	inner cluster.Transport
	plan  Plan
	rng   uint64

	ops     int64
	sends   int64
	recvs   int64
	crashed bool

	// ready holds duplicated messages due for immediate re-delivery; held
	// holds delayed messages with the recv-op count at which they release.
	ready []cluster.Message
	held  []heldMsg

	// Flap/partition window state: each fires at most once; flapUntil and
	// partUntil are zero outside their windows.
	flapFired bool
	flapUntil time.Time
	partFired bool
	partUntil time.Time
	flaps     int64
}

type heldMsg struct {
	msg       cluster.Message
	releaseAt int64
}

// Wrap returns inner under plan's fault schedule.
func Wrap(inner cluster.Transport, plan Plan) *Transport {
	if plan.DelayOps <= 0 {
		plan.DelayOps = 3
	}
	seed := uint64(plan.Seed)
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 // fixed, not clock-derived: runs must replay
	}
	return &Transport{inner: inner, plan: plan, rng: seed}
}

// Ops returns the number of protocol points counted so far.
func (t *Transport) Ops() int64 { return t.ops }

// Sends returns the number of per-destination data sends counted so far.
func (t *Transport) Sends() int64 { return t.sends }

// Recvs returns the number of delivered data messages counted so far.
func (t *Transport) Recvs() int64 { return t.recvs }

// Crashed reports whether the crash schedule has fired.
func (t *Transport) Crashed() bool { return t.crashed }

// Flaps returns the number of flap windows fired (0 or 1 per plan).
func (t *Transport) Flaps() int64 { return t.flaps }

// Inner exposes the wrapped transport, so capability probes (address
// books, link liveness) can see through the fault layer — faults apply to
// protocol traffic, not to out-of-band endpoint introspection.
func (t *Transport) Inner() cluster.Transport { return t.inner }

// rand is the xorshift64* generator the rest of the repo uses for
// deterministic shuffles, advanced once per draw.
func (t *Transport) rand() float64 {
	s := t.rng
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	t.rng = s
	return float64((s*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
}

// tick numbers the next protocol point and fires the crash, flap and
// partition schedules when their ops come up. It reports whether the op
// may proceed.
func (t *Transport) tick() bool {
	t.ops++
	if t.plan.CrashAtOp > 0 && t.ops >= t.plan.CrashAtOp {
		t.crashed = true
		if t.plan.OnCrash != nil {
			t.plan.OnCrash()
			t.plan.OnCrash = nil
		}
		return false
	}
	if t.plan.FlapAtOp > 0 && !t.flapFired && t.ops >= t.plan.FlapAtOp {
		t.flapFired = true
		t.flaps++
		if t.plan.OnFlap != nil {
			t.plan.OnFlap()
		} else {
			t.flapUntil = time.Now().Add(windowDur(t.plan.FlapFor))
		}
	}
	if t.plan.PartitionAtOp > 0 && !t.partFired && t.ops >= t.plan.PartitionAtOp {
		t.partFired = true
		t.partUntil = time.Now().Add(windowDur(t.plan.PartitionFor))
	}
	return true
}

// windowDur applies the default flap/partition window length.
func windowDur(d time.Duration) time.Duration {
	if d <= 0 {
		return 40 * time.Millisecond
	}
	return d
}

// stallFlap blocks until the built-in flap window has closed, then clears
// it. The node is single-threaded, so stalling its next protocol op is
// exactly what a NIC-down blip does to it — and unlike buffering, a stall
// cannot strand traffic if the node's run ends during the window.
func (t *Transport) stallFlap() {
	if t.flapUntil.IsZero() {
		return
	}
	if d := time.Until(t.flapUntil); d > 0 {
		time.Sleep(d)
	}
	t.flapUntil = time.Time{}
}

// partActive reports whether the partition window is open for side,
// clearing the window once the wall clock has passed.
func (t *Transport) partActive(side string) bool {
	if t.partUntil.IsZero() {
		return false
	}
	if !time.Now().Before(t.partUntil) {
		t.partUntil = time.Time{}
		return false
	}
	switch t.plan.PartitionSide {
	case "", "both":
		return true
	default:
		return t.plan.PartitionSide == side
	}
}

func (t *Transport) ID() int                { return t.inner.ID() }
func (t *Transport) Size() int              { return t.inner.Size() }
func (t *Transport) Compute(units int64)    { t.inner.Compute(units) }
func (t *Transport) Clock() cluster.VTime   { return t.inner.Clock() }
func (t *Transport) Members() []int         { return t.inner.Members() }
func (t *Transport) NotifyFailures(on bool) { t.inner.NotifyFailures(on) }

// Traffic satisfies cluster.TrafficReporter when the inner transport does.
func (t *Transport) Traffic() cluster.Traffic {
	if tr, ok := t.inner.(cluster.TrafficReporter); ok {
		return tr.Traffic()
	}
	return cluster.Traffic{}
}

// Send counts one op and delegates, unless the schedule crashes or drops it.
func (t *Transport) Send(to int, kind int, v any) error {
	if t.crashed {
		return ErrCrashed
	}
	if !t.tick() {
		return ErrCrashed
	}
	t.sends++
	if t.plan.DropSend > 0 && t.rand() < t.plan.DropSend {
		return nil // swallowed: the caller believes it went out
	}
	if t.partActive("out") {
		return nil // partitioned away: real loss, the protocol must recover
	}
	t.stallFlap()
	return t.inner.Send(to, kind, v)
}

// Broadcast counts one op per destination. When no fault can fire inside
// the window it delegates to the inner broadcast (bitwise-identical to an
// unwrapped run); otherwise it decomposes into per-target sends so a crash
// mid-window leaves exactly the prefix delivered, the way a real process
// death interrupts a broadcast loop.
func (t *Transport) Broadcast(targets []int, kind int, v any) error {
	if t.crashed {
		return ErrCrashed
	}
	crashInWindow := t.plan.CrashAtOp > 0 && t.plan.CrashAtOp <= t.ops+int64(len(targets))
	flapLive := t.plan.FlapAtOp > 0 && (!t.flapFired || !t.flapUntil.IsZero())
	partLive := t.plan.PartitionAtOp > 0 && (!t.partFired || !t.partUntil.IsZero())
	if !crashInWindow && t.plan.DropSend == 0 && !flapLive && !partLive {
		t.ops += int64(len(targets))
		t.sends += int64(len(targets))
		return t.inner.Broadcast(targets, kind, v)
	}
	for _, to := range targets {
		if err := t.Send(to, kind, v); err != nil {
			return err
		}
	}
	return nil
}

// ReceiveCtx counts one op per delivered data message and applies the
// receive-side faults. Synthetic events pass through untouched.
func (t *Transport) ReceiveCtx(ctx context.Context) (cluster.Message, error) {
	for {
		if t.crashed {
			return cluster.Message{}, ErrCrashed
		}
		if !t.flapUntil.IsZero() {
			// The node's NIC is "down": wait the blip out before reading.
			// The caller's deadline still applies — the grace machinery
			// hides a flap from the protocol, never from its timeouts.
			if d := time.Until(t.flapUntil); d > 0 {
				timer := time.NewTimer(d)
				select {
				case <-ctx.Done():
					timer.Stop()
					return cluster.Message{}, ctx.Err()
				case <-timer.C:
				}
			}
			t.flapUntil = time.Time{}
		}
		msg, fromQueue, err := t.next(ctx)
		if err != nil {
			return cluster.Message{}, err
		}
		if msg.Kind < 0 {
			return msg, nil // membership events are never faulted
		}
		if !t.tick() {
			return cluster.Message{}, ErrCrashed
		}
		t.recvs++
		if fromQueue {
			return msg, nil // re-deliveries are not faulted again
		}
		if t.plan.DropRecv > 0 && t.rand() < t.plan.DropRecv {
			continue
		}
		if t.partActive("in") {
			continue // partitioned away before the caller saw it
		}
		if t.plan.DupRecv > 0 && t.rand() < t.plan.DupRecv {
			t.ready = append(t.ready, msg)
		}
		if t.plan.DelayRecv > 0 && t.rand() < t.plan.DelayRecv {
			t.held = append(t.held, heldMsg{msg: msg, releaseAt: t.recvs + t.plan.DelayOps})
			continue
		}
		return msg, nil
	}
}

// next yields the first due held message, then any duplicate, then the
// inner transport's stream.
func (t *Transport) next(ctx context.Context) (cluster.Message, bool, error) {
	for i, h := range t.held {
		if h.releaseAt <= t.recvs {
			t.held = append(t.held[:i], t.held[i+1:]...)
			return h.msg, true, nil
		}
	}
	if len(t.ready) > 0 {
		msg := t.ready[0]
		t.ready = t.ready[1:]
		return msg, true, nil
	}
	msg, err := t.inner.ReceiveCtx(ctx)
	return msg, false, err
}
