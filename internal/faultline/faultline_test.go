package faultline

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/wire"
)

type payload struct{ N int }

func (p payload) AppendWire(w *wire.Writer)  { w.Int(p.N) }
func (p *payload) DecodeWire(r *wire.Reader) { p.N = r.Int() }

func recvOne(t *testing.T, tr cluster.Transport) (cluster.Message, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return tr.ReceiveCtx(ctx)
}

// drain receives data messages until the stream goes quiet, returning the
// decoded sequence numbers in delivery order.
func drain(t *testing.T, tr cluster.Transport) []int {
	t.Helper()
	var got []int
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		msg, err := tr.ReceiveCtx(ctx)
		cancel()
		if err != nil {
			return got
		}
		var p payload
		if err := msg.Decode(&p); err != nil {
			t.Fatalf("decode: %v", err)
		}
		got = append(got, p.N)
	}
}

func TestZeroPlanIsTransparent(t *testing.T) {
	nw := cluster.NewNetwork(2, cluster.DefaultCostModel)
	defer nw.Shutdown()
	sender := Wrap(nw.Node(0), Plan{})
	for i := 1; i <= 3; i++ {
		if err := sender.Send(1, 7, payload{N: i}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	receiver := Wrap(nw.Node(1), Plan{})
	if got := drain(t, receiver); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("delivered %v, want [1 2 3]", got)
	}
	if sender.Ops() != 3 || sender.Sends() != 3 || receiver.Recvs() != 3 {
		t.Fatalf("counters: sends=%d recvs=%d, want 3/3", sender.Sends(), receiver.Recvs())
	}
}

func TestCrashAtSendOp(t *testing.T) {
	nw := cluster.NewNetwork(2, cluster.DefaultCostModel)
	defer nw.Shutdown()
	fired := 0
	sender := Wrap(nw.Node(0), Plan{CrashAtOp: 3, OnCrash: func() { fired++ }})
	for i := 1; i <= 2; i++ {
		if err := sender.Send(1, 7, payload{N: i}); err != nil {
			t.Fatalf("send %d before crash point: %v", i, err)
		}
	}
	if err := sender.Send(1, 7, payload{N: 3}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 3: got %v, want ErrCrashed", err)
	}
	if err := sender.Send(1, 7, payload{N: 4}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("after crash: got %v, want ErrCrashed", err)
	}
	if _, err := recvOne(t, sender); !errors.Is(err, ErrCrashed) {
		t.Fatalf("receive after crash: got %v, want ErrCrashed", err)
	}
	if fired != 1 {
		t.Fatalf("OnCrash ran %d times, want 1", fired)
	}
	// The crashing op must not have hit the wire.
	if got := drain(t, nw.Node(1)); len(got) != 2 {
		t.Fatalf("peer saw %v, want only the two pre-crash sends", got)
	}
}

func TestCrashAtRecvOp(t *testing.T) {
	nw := cluster.NewNetwork(2, cluster.DefaultCostModel)
	defer nw.Shutdown()
	for i := 1; i <= 3; i++ {
		if err := nw.Node(0).Send(1, 7, payload{N: i}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	receiver := Wrap(nw.Node(1), Plan{CrashAtOp: 3})
	for i := 1; i <= 2; i++ {
		if _, err := recvOne(t, receiver); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if _, err := recvOne(t, receiver); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 3: got %v, want ErrCrashed", err)
	}
	if !receiver.Crashed() {
		t.Fatal("Crashed() = false after schedule fired")
	}
}

func TestBroadcastCrashLeavesPrefix(t *testing.T) {
	nw := cluster.NewNetwork(3, cluster.DefaultCostModel)
	defer nw.Shutdown()
	sender := Wrap(nw.Node(0), Plan{CrashAtOp: 2})
	err := sender.Broadcast([]int{1, 2}, 7, payload{N: 1})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("broadcast: got %v, want ErrCrashed", err)
	}
	if got := drain(t, nw.Node(1)); len(got) != 1 {
		t.Fatalf("node 1 saw %v, want the pre-crash prefix", got)
	}
	if got := drain(t, nw.Node(2)); len(got) != 0 {
		t.Fatalf("node 2 saw %v, want nothing", got)
	}
}

func TestMembershipEventsAreNeverFaulted(t *testing.T) {
	nw := cluster.NewNetwork(3, cluster.DefaultCostModel)
	defer nw.Shutdown()
	node := nw.Node(0)
	node.NotifyFailures(true)
	receiver := Wrap(node, Plan{CrashAtOp: 1, DropRecv: 1.0})
	nw.Kill(2)
	msg, err := recvOne(t, receiver)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if msg.Kind != cluster.KindPeerDown || msg.From != 2 {
		t.Fatalf("got kind=%d from=%d, want PeerDown(2)", msg.Kind, msg.From)
	}
	if receiver.Ops() != 0 {
		t.Fatalf("synthetic event counted as op %d, want uncounted", receiver.Ops())
	}
}

// runSeeded pushes n messages through a wrapped receiver under plan and
// returns the delivered sequence.
func runSeeded(t *testing.T, n int, plan Plan) []int {
	t.Helper()
	nw := cluster.NewNetwork(2, cluster.DefaultCostModel)
	defer nw.Shutdown()
	for i := 1; i <= n; i++ {
		if err := nw.Node(0).Send(1, 7, payload{N: i}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	return drain(t, Wrap(nw.Node(1), plan))
}

func TestDropRecvIsSeedDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, DropRecv: 0.4}
	first := runSeeded(t, 40, plan)
	second := runSeeded(t, 40, plan)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("same seed diverged:\n%v\n%v", first, second)
	}
	if len(first) == 40 || len(first) == 0 {
		t.Fatalf("DropRecv=0.4 delivered %d/40 — faults not applied", len(first))
	}
	other := runSeeded(t, 40, Plan{Seed: 43, DropRecv: 0.4})
	if fmt.Sprint(first) == fmt.Sprint(other) {
		t.Fatal("different seeds produced the same drop pattern")
	}
}

func TestDupRecvDeliversTwice(t *testing.T) {
	got := runSeeded(t, 5, Plan{DupRecv: 1.0})
	want := []int{1, 1, 2, 2, 3, 3, 4, 4, 5, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want every message twice", got)
	}
}

func TestDelayRecvReordersDeterministically(t *testing.T) {
	plan := Plan{Seed: 7, DelayRecv: 0.5, DelayOps: 2}
	first := runSeeded(t, 30, plan)
	second := runSeeded(t, 30, plan)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("same seed diverged:\n%v\n%v", first, second)
	}
	seen := map[int]int{}
	inOrder := true
	for i, n := range first {
		seen[n]++
		if i > 0 && n < first[i-1] {
			inOrder = false
		}
	}
	for n := 1; n <= 30; n++ {
		if seen[n] != 1 {
			// A message held past the end of the stream is released by the
			// next receive op; with traffic exhausted it may stay queued.
			// Everything released must still be exactly-once.
			if seen[n] > 1 {
				t.Fatalf("message %d delivered %d times", n, seen[n])
			}
		}
	}
	if inOrder {
		t.Fatal("DelayRecv=0.5 left the stream fully ordered — faults not applied")
	}
}
