package faultline

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestFlapStallsSendsThenDeliversInOrder pins the built-in blip
// semantics: the flap stalls the node's next op until the window closes,
// then everything proceeds — nothing is lost, nothing reordered, and no
// traffic can be stranded if the run ends right after the flap point.
func TestFlapStallsSendsThenDeliversInOrder(t *testing.T) {
	nw := cluster.NewNetwork(2, cluster.DefaultCostModel)
	defer nw.Shutdown()
	sender := Wrap(nw.Node(0), Plan{FlapAtOp: 2, FlapFor: 60 * time.Millisecond})
	start := time.Now()
	for i := 1; i <= 5; i++ {
		if err := sender.Send(1, 7, payload{N: i}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("five sends across the flap point took %v — the blip window was not waited out", elapsed)
	}
	if sender.Flaps() != 1 {
		t.Fatalf("Flaps() = %d, want 1", sender.Flaps())
	}
	if got := drain(t, nw.Node(1)); fmt.Sprint(got) != "[1 2 3 4 5]" {
		t.Fatalf("delivered %v, want [1 2 3 4 5] exactly once in order", got)
	}
}

// TestFlapReceiveWaitsOutWindow pins the receive side of a blip: while the
// window is open the node's NIC is "down", so the next receive waits the
// blip out and then delivers normally — nothing is dropped.
func TestFlapReceiveWaitsOutWindow(t *testing.T) {
	nw := cluster.NewNetwork(2, cluster.DefaultCostModel)
	defer nw.Shutdown()
	for i := 1; i <= 2; i++ {
		if err := nw.Node(0).Send(1, 7, payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	receiver := Wrap(nw.Node(1), Plan{FlapAtOp: 1, FlapFor: 120 * time.Millisecond})
	if _, err := recvOne(t, receiver); err != nil {
		t.Fatalf("recv 1 (fires the flap after delivery): %v", err)
	}
	start := time.Now()
	msg, err := recvOne(t, receiver)
	if err != nil {
		t.Fatalf("recv 2: %v", err)
	}
	var p payload
	if err := msg.Decode(&p); err != nil || p.N != 2 {
		t.Fatalf("recv 2 decoded %v (err %v), want N=2", p, err)
	}
	if waited := time.Since(start); waited < 80*time.Millisecond {
		t.Fatalf("recv 2 returned after %v — the blip window was not waited out", waited)
	}
}

// TestFlapReceiveHonorsCallerDeadline pins that the blip wait is still
// context-aware: a caller deadline shorter than the remaining window fires
// as a deadline, it does not hang until the blip heals.
func TestFlapReceiveHonorsCallerDeadline(t *testing.T) {
	nw := cluster.NewNetwork(2, cluster.DefaultCostModel)
	defer nw.Shutdown()
	if err := nw.Node(0).Send(1, 7, payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	receiver := Wrap(nw.Node(1), Plan{FlapAtOp: 1, FlapFor: 2 * time.Second})
	if _, err := recvOne(t, receiver); err != nil {
		t.Fatalf("recv 1: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := receiver.ReceiveCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("recv during blip: got %v, want context.DeadlineExceeded", err)
	}
}

// TestFlapOnFlapDelegatesToHook pins the TCP mode: with OnFlap set the
// wrapper injects nothing itself — the hook (DropLinks on a real node)
// runs exactly once and traffic keeps flowing through the wrapper.
func TestFlapOnFlapDelegatesToHook(t *testing.T) {
	nw := cluster.NewNetwork(2, cluster.DefaultCostModel)
	defer nw.Shutdown()
	fired := 0
	sender := Wrap(nw.Node(0), Plan{FlapAtOp: 2, OnFlap: func() { fired++ }})
	for i := 1; i <= 4; i++ {
		if err := sender.Send(1, 7, payload{N: i}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if fired != 1 {
		t.Fatalf("OnFlap ran %d times, want 1", fired)
	}
	if got := drain(t, nw.Node(1)); fmt.Sprint(got) != "[1 2 3 4]" {
		t.Fatalf("delivered %v, want all four in order (hook mode buffers nothing)", got)
	}
}

// TestPartitionDropsSends pins the "out" side of the lossy partition:
// sends inside the window vanish — real loss, unlike a flap.
func TestPartitionDropsSends(t *testing.T) {
	nw := cluster.NewNetwork(2, cluster.DefaultCostModel)
	defer nw.Shutdown()
	sender := Wrap(nw.Node(0), Plan{PartitionAtOp: 2, PartitionFor: 80 * time.Millisecond, PartitionSide: "out"})
	for i := 1; i <= 3; i++ {
		if err := sender.Send(1, 7, payload{N: i}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	if err := sender.Send(1, 7, payload{N: 4}); err != nil {
		t.Fatalf("post-partition send: %v", err)
	}
	if got := drain(t, nw.Node(1)); fmt.Sprint(got) != "[1 4]" {
		t.Fatalf("delivered %v, want [1 4] (2 and 3 partitioned away)", got)
	}
}

// TestPartitionDropsReceives pins the "in" side: delivered data messages
// inside the window are discarded before the caller sees them.
func TestPartitionDropsReceives(t *testing.T) {
	nw := cluster.NewNetwork(2, cluster.DefaultCostModel)
	defer nw.Shutdown()
	for i := 1; i <= 5; i++ {
		if err := nw.Node(0).Send(1, 7, payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	receiver := Wrap(nw.Node(1), Plan{PartitionAtOp: 1, PartitionFor: 300 * time.Millisecond, PartitionSide: "in"})
	if got := drain(t, receiver); len(got) != 0 {
		t.Fatalf("delivered %v, want nothing (all five inside the partition window)", got)
	}
	if receiver.Recvs() != 5 {
		t.Fatalf("Recvs() = %d, want 5 (dropped messages still count as ops)", receiver.Recvs())
	}
}
