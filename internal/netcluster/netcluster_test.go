package netcluster

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/wire"
)

type payload struct {
	N int
	S string
}

// The test payload speaks both codecs, like every real protocol message:
// gob via reflection, wire via the Marshaler/Unmarshaler pair below. The
// transport tests run under the default wire codec unless a test pins
// Config.Codec.
func (p payload) AppendWire(w *wire.Writer) {
	w.Int(p.N)
	w.String(p.S)
}

func (p *payload) DecodeWire(r *wire.Reader) {
	p.N = r.Int()
	p.S = r.String()
}

// startCluster brings up one master and p workers over loopback, all
// in-process. Returns the master and the workers indexed 1..p.
func startCluster(t *testing.T, p int, cfg Config) (*Node, []*Node) {
	t.Helper()
	workers := make([]*Node, p+1)
	addrs := make([]string, p)
	var wg sync.WaitGroup
	errs := make([]error, p+1)
	for k := 1; k <= p; k++ {
		// Bind first so the address is known before the master dials.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[k-1] = ln.Addr().String()
		k, ln := k, ln
		wg.Add(1)
		go func() {
			defer wg.Done()
			workers[k], errs[k] = ServeOn(ln, cfg)
		}()
	}
	master, err := Connect(addrs, cfg)
	wg.Wait()
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	for k := 1; k <= p; k++ {
		if errs[k] != nil {
			t.Fatalf("Serve worker %d: %v", k, errs[k])
		}
	}
	t.Cleanup(func() {
		master.Close()
		for k := 1; k <= p; k++ {
			if workers[k] != nil {
				workers[k].Close()
			}
		}
	})
	return master, workers
}

func TestExchangeAndAccounting(t *testing.T) {
	cfg := Config{Fingerprint: 42}
	master, workers := startCluster(t, 2, cfg)

	if master.Size() != 3 || workers[1].Size() != 3 || workers[1].ID() != 1 || workers[2].ID() != 2 {
		t.Fatalf("bad topology: master size %d, worker ids %d %d", master.Size(), workers[1].ID(), workers[2].ID())
	}

	// Master → both workers; worker 1 → worker 2 (lazily dialed ring
	// link); worker 2 → master.
	if err := master.Broadcast([]int{1, 2}, 7, payload{N: 1, S: "go"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for k := 1; k <= 2; k++ {
		msg, err := workers[k].ReceiveCtx(ctx)
		if err != nil {
			t.Fatalf("worker %d receive: %v", k, err)
		}
		if msg.Kind != 7 || msg.From != 0 {
			t.Fatalf("worker %d got kind %d from %d", k, msg.Kind, msg.From)
		}
		var pl payload
		if err := msg.Decode(&pl); err != nil {
			t.Fatal(err)
		}
		if pl.N != 1 || pl.S != "go" {
			t.Fatalf("payload corrupted: %+v", pl)
		}
		// Receiver clock advanced to latency + bytes/bandwidth.
		want := cluster.VTime(0) + workers[k].Model().TransferTime(len(msg.Payload))
		if workers[k].Clock() != want {
			t.Fatalf("worker %d clock %d, want %d", k, workers[k].Clock(), want)
		}
	}

	workers[1].Compute(1000) // 1000 inferences = 1ms at default model
	if err := workers[1].Send(2, 8, payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	msg, err := workers[2].ReceiveCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 1 || msg.Kind != 8 {
		t.Fatalf("ring message from %d kind %d", msg.From, msg.Kind)
	}
	if msg.SendTime <= 0 {
		t.Fatalf("ring message send time %d, want > 0 after Compute", msg.SendTime)
	}
	if err := workers[2].Send(0, 9, payload{N: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := master.ReceiveCtx(ctx); err != nil {
		t.Fatal(err)
	}

	// Outgoing accounting: payload bytes only, per link.
	mt := master.Traffic()
	if mt.LinkMsgs(0, 1) != 1 || mt.LinkMsgs(0, 2) != 1 {
		t.Fatalf("master per-link msgs: %v", mt.Links())
	}
	if mt.LinkBytes(0, 1) != mt.LinkBytes(0, 2) || mt.LinkBytes(0, 1) <= 0 {
		t.Fatalf("broadcast link bytes differ: %v", mt.Links())
	}
	w1 := workers[1].Traffic()
	if w1.LinkMsgs(1, 2) != 1 || w1.TotalMsgs() != 1 {
		t.Fatalf("worker 1 traffic: %v", w1.Links())
	}
	// The payload must be byte-identical to the simulation's encoding
	// under the codec in force (the default wire codec here).
	enc, err := cluster.EncodePayload(cluster.CodecWire, payload{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w1.LinkBytes(1, 2) != int64(len(enc)) {
		t.Fatalf("worker 1 link bytes %d, want %d (pure payload)", w1.LinkBytes(1, 2), len(enc))
	}
}

func TestSelfSendLoopsLocally(t *testing.T) {
	master, _ := startCluster(t, 1, Config{})
	if err := master.Send(0, 5, payload{N: 9}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	msg, err := master.ReceiveCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != 0 || msg.Kind != 5 {
		t.Fatalf("self message: %+v", msg)
	}
}

func TestReceiveDeadline(t *testing.T) {
	master, _ := startCluster(t, 1, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := master.ReceiveCtx(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestFingerprintMismatchRejectsJoin(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serveErr := make(chan error, 1)
	go func() {
		_, err := ServeOn(ln, Config{Fingerprint: 1, JoinTimeout: 10 * time.Second})
		serveErr <- err
	}()
	n, err := Connect([]string{addr}, Config{Fingerprint: 2, JoinTimeout: 10 * time.Second})
	if err == nil {
		n.Close()
		t.Fatal("master accepted mismatched fingerprint")
	}
	if werr := <-serveErr; werr == nil {
		t.Fatal("worker accepted mismatched fingerprint")
	}
}

func TestMasterGoodbyeClosesWorkerCleanly(t *testing.T) {
	master, workers := startCluster(t, 1, Config{})
	master.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := workers[1].ReceiveCtx(ctx)
	if !errors.Is(err, cluster.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed after orderly master departure", err)
	}
}

func TestPeerDeathSurfacesAsReceiveError(t *testing.T) {
	cfg := Config{HeartbeatEvery: 30 * time.Millisecond, PeerTimeout: 200 * time.Millisecond}
	master, workers := startCluster(t, 2, cfg)
	workers[2].Abort() // abrupt worker death (no goodbye): master must not hang
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := master.ReceiveCtx(ctx)
	if err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want link-failure error", err)
	}
	_ = master
}

func TestSilentPeerTimesOut(t *testing.T) {
	cfg := Config{HeartbeatEvery: 20 * time.Millisecond, PeerTimeout: 150 * time.Millisecond}
	_, workers := startCluster(t, 2, cfg)
	// A peer that says hello and then goes silent: the worker's heartbeat
	// monitor must declare it dead and fail the inbox.
	conn, err := net.Dial("tcp", workers[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &frame{Ctrl: ctrlHello, From: 2, Fingerprint: 0}); err != nil {
		t.Fatal(err)
	}
	// Silence. Note worker 1's master link stays healthy (heartbeats), so
	// the failure can only come from the silent peer link. But the master
	// link monitor and the silent peer share the inbox; wait for the error.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, rerr := workers[1].ReceiveCtx(ctx)
	if rerr == nil || errors.Is(rerr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want unresponsive-peer error", rerr)
	}
}

func TestSilentPeerNeedsWrongSize(t *testing.T) {
	// Guard for the test above: the hello must carry a valid id to be
	// registered; out-of-range ids are dropped without failing the node.
	cfg := Config{HeartbeatEvery: 20 * time.Millisecond, PeerTimeout: 120 * time.Millisecond}
	_, workers := startCluster(t, 1, cfg)
	conn, err := net.Dial("tcp", workers[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &frame{Ctrl: ctrlHello, From: 99, Fingerprint: 0}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	_, rerr := workers[1].ReceiveCtx(ctx)
	if !errors.Is(rerr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded (stray conn ignored)", rerr)
	}
}
