package netcluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
)

// The failure-notifying regime (Transport.NotifyFailures): a peer death
// must arrive as an in-band KindPeerDown membership event, leave the
// transport usable towards the survivors, and make sends to the dead peer
// fail with cluster.ErrPeerDown — the contract core's fault-tolerant
// epoch engine is built on.

func receiveKind(t *testing.T, n *Node, timeout time.Duration) cluster.Message {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	msg, err := n.ReceiveCtx(ctx)
	if err != nil {
		t.Fatalf("node %d receive: %v", n.ID(), err)
	}
	return msg
}

func TestPeerDeathBecomesMembershipEvent(t *testing.T) {
	cfg := Config{
		Fingerprint:    7,
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    300 * time.Millisecond,
	}
	master, workers := startCluster(t, 2, cfg)
	master.NotifyFailures(true)

	if got := master.Members(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("initial members = %v", got)
	}

	// Worker 2 crashes (Abort slams the links without goodbyes).
	workers[2].Abort()

	msg := receiveKind(t, master, 10*time.Second)
	if msg.Kind != cluster.KindPeerDown || msg.From != 2 {
		t.Fatalf("got %+v, want KindPeerDown from 2", msg)
	}
	if got := master.Members(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("members after death = %v", got)
	}

	// The transport stays usable towards the survivor...
	if err := master.Send(1, 5, payload{N: 1, S: "still here"}); err != nil {
		t.Fatalf("send to survivor: %v", err)
	}
	got := receiveKind(t, workers[1], 5*time.Second)
	if got.Kind != 5 {
		t.Fatalf("survivor got %+v", got)
	}

	// ...and sends to the dead peer fail fast with ErrPeerDown.
	if err := master.Send(2, 5, payload{}); !errors.Is(err, cluster.ErrPeerDown) {
		t.Fatalf("send to dead peer: %v, want ErrPeerDown", err)
	}
}

func TestPeerDeathEventIsDeliveredOnce(t *testing.T) {
	cfg := Config{
		Fingerprint:    7,
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    200 * time.Millisecond,
	}
	master, workers := startCluster(t, 2, cfg)
	master.NotifyFailures(true)
	workers[2].Abort()

	msg := receiveKind(t, master, 10*time.Second)
	if msg.Kind != cluster.KindPeerDown || msg.From != 2 {
		t.Fatalf("got %+v", msg)
	}
	// Both the reader error and the heartbeat timeout will observe the
	// death; only one event may surface. Nothing else should arrive.
	ctx, cancel := context.WithTimeout(context.Background(), 3*cfg.PeerTimeout)
	defer cancel()
	if extra, err := master.ReceiveCtx(ctx); err == nil {
		t.Fatalf("unexpected second event: %+v", extra)
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
}

// TestSilentPeerBecomesMembershipEvent: a hung (not closed) peer times out
// via heartbeats and surfaces as a membership event, naming the peer.
func TestSilentPeerBecomesMembershipEvent(t *testing.T) {
	cfg := Config{
		Fingerprint:    7,
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    150 * time.Millisecond,
	}
	master, workers := startCluster(t, 1, cfg)
	master.NotifyFailures(true)
	// Hang (rather than close) the worker: holding its links' write
	// mutexes blocks its heartbeater, so its sockets stay open but go
	// silent — the SIGSTOP/blackhole failure mode. The master must time
	// the peer out and name it in a membership event.
	w := workers[1]
	w.mu.Lock()
	links := append([]*link(nil), w.all...)
	w.mu.Unlock()
	for _, l := range links {
		l.wmu.Lock()
	}
	defer func() {
		for _, l := range links {
			l.wmu.Unlock()
		}
	}()

	msg := receiveKind(t, master, 10*time.Second)
	if msg.Kind != cluster.KindPeerDown || msg.From != 1 {
		t.Fatalf("got %+v, want KindPeerDown from 1", msg)
	}
}

// TestWithoutNotifyDeathStillPoisons pins the historical default: with
// failure notification off, a peer death fails every ReceiveCtx.
func TestWithoutNotifyDeathStillPoisons(t *testing.T) {
	cfg := Config{
		Fingerprint:    7,
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    200 * time.Millisecond,
	}
	master, workers := startCluster(t, 1, cfg)
	workers[1].Abort()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := master.ReceiveCtx(ctx)
	if err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want link failure", err)
	}
}
