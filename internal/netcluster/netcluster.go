// Package netcluster implements the cluster.Transport abstraction over
// real TCP connections, turning the simulated p²-mdie cluster into a
// multi-process deployment: one master process and p worker processes,
// exchanging the same encoded protocol messages the simulation
// exchanges in memory (the paper's LAM/MPI Beowulf run, §5).
//
// Topology and handshake: every worker listens (`p2mdie -serve`); the
// master dials each worker and sends a welcome frame assigning its node id
// (1..p), the cluster size, the worker address book and the cost model.
// Worker-to-worker pipeline links (the kindStage ring) are dialed lazily on
// first send using the address book. Both ends of the join exchange
// dataset fingerprints, so a worker loaded with different data — which
// would silently desynchronise the interned symbol tables the payloads
// reference — is rejected at join time instead of corrupting the run.
// The welcome also negotiates the payload codec (compact wire encoding
// by default, gob behind -wirecodec gob): the master offers its codec,
// the worker adopts and echoes it, and a build that does not speak the
// offered codec is refused at join time rather than desynchronising
// mid-run.
//
// Accounting matches the simulation exactly: payloads are encoded with the
// same cluster.EncodePayload, per-link byte/message counters cover payload bytes
// only (framing and heartbeats excluded), and each node carries the same
// cost-model virtual clock — Compute advances it by measured work, a
// received message advances it to the sender's clock plus latency plus
// bytes/bandwidth (the send time travels in the frame header). Makespan
// and Table-4 traffic of a TCP run are therefore directly comparable to a
// simulated run's.
//
// Failure model: every connection runs a heartbeater, so a dead or
// partitioned peer is noticed within PeerTimeout even while both sides are
// deep in computation; link errors and timeouts fail the node's inbox, so
// a blocked ReceiveCtx surfaces the failure as an error instead of
// deadlocking — satisfying the same contract as the simulated transport's
// shutdown path.
package netcluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// Config parameterises a netcluster node.
type Config struct {
	// Model is the virtual-clock cost model. Workers adopt the master's
	// model at join, so only the master's setting matters cluster-wide.
	Model cluster.CostModel
	// Fingerprint identifies the loaded dataset and settings. Master and
	// workers must agree; see core.Fingerprint.
	Fingerprint uint64
	// HeartbeatEvery is the per-link keep-alive period. Default 500ms.
	HeartbeatEvery time.Duration
	// PeerTimeout declares a silent peer dead. Default 20 heartbeat
	// periods (10s at the default HeartbeatEvery) — derived, not fixed,
	// so raising the heartbeat period cannot silently make idle-but-
	// healthy peers look dead.
	PeerTimeout time.Duration
	// JoinTimeout bounds a worker's wait for the master's welcome and the
	// master's dial retries. Default 60s.
	JoinTimeout time.Duration
	// MaxFrameBytes bounds one frame. Default 256 MiB.
	MaxFrameBytes int
	// LinkGrace is the reconnect grace window for transient link failures.
	// Zero (the default) disables the link-session layer entirely: a read,
	// write or heartbeat failure escalates immediately, as it always has.
	// When positive, a failed link is suspended and re-dialed with backoff
	// for up to this long before the failure surfaces as a peer death.
	LinkGrace time.Duration
	// MaxRetainedFrames bounds the per-link ring of sent-but-unacked
	// frames kept for replay. Overflow — a peer that stops acking for
	// longer than the window the ring covers — escalates like a link
	// failure. Default 4096.
	MaxRetainedFrames int
	// Codec is the payload encoding (default cluster.CodecWire). Like
	// Model, the master's choice rules: it is offered in the welcome
	// handshake, workers adopt it, and a build that does not speak it is
	// refused at join time rather than desynchronising mid-run.
	Codec cluster.Codec
	// ShapeConn, when non-nil, wraps every TCP connection this node
	// creates or accepts — the hook the shaped-link harness
	// (internal/shape) uses to impose latency/bandwidth without root.
	ShapeConn func(net.Conn) net.Conn
}

// wrapConn applies the ShapeConn hook, if any.
func (c Config) wrapConn(conn net.Conn) net.Conn {
	if c.ShapeConn != nil {
		return c.ShapeConn(conn)
	}
	return conn
}

func (c Config) withDefaults() Config {
	c.Model = c.Model.WithDefaults()
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 20 * c.HeartbeatEvery
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 60 * time.Second
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = 256 << 20
	}
	if c.MaxRetainedFrames <= 0 {
		c.MaxRetainedFrames = 4096
	}
	return c
}

// validate rejects knob combinations that cannot work, after defaults
// are applied: a heartbeat period at least as long as PeerTimeout
// declares every idle-but-healthy peer dead before the next keep-alive
// can be written, and a negative grace window is meaningless.
func (c Config) validate() error {
	if c.HeartbeatEvery >= c.PeerTimeout {
		return fmt.Errorf("netcluster: HeartbeatEvery %s must be shorter than PeerTimeout %s (a peer is declared dead after PeerTimeout of silence, so the keep-alive must fit inside it)",
			c.HeartbeatEvery, c.PeerTimeout)
	}
	if c.LinkGrace < 0 {
		return fmt.Errorf("netcluster: LinkGrace %s must not be negative (zero disables the grace window)", c.LinkGrace)
	}
	return nil
}

// inbox is the unbounded receive queue shared by all of a node's links,
// mirroring the simulated mailbox plus a terminal failure state.
type inbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []cluster.Message
	err   error
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) put(m cluster.Message) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	ib.queue = append(ib.queue, m)
	ib.cond.Signal()
}

// fail records the first terminal error and wakes all waiters. Later
// failures are ignored, so an orderly Close after a peer error does not
// mask the root cause.
func (ib *inbox) fail(err error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.err == nil {
		ib.err = err
	}
	ib.cond.Broadcast()
}

func (ib *inbox) failed() error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.err
}

// take returns the next queued message; queued messages win over both a
// recorded failure and an expired context, so nothing delivered is lost.
func (ib *inbox) take(ctx context.Context) (cluster.Message, error) {
	defer cluster.WakeOnDone(ctx, ib.cond)()
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for len(ib.queue) == 0 && ib.err == nil && ctx.Err() == nil {
		ib.cond.Wait()
	}
	if len(ib.queue) > 0 {
		m := ib.queue[0]
		ib.queue = ib.queue[1:]
		return m, nil
	}
	if ib.err != nil {
		return cluster.Message{}, ib.err
	}
	return cluster.Message{}, ctx.Err()
}

// Node is one process's endpoint on a TCP cluster. It implements
// cluster.Transport; all Transport methods must be called from the single
// goroutine driving the protocol, as with the simulated *cluster.Node.
type Node struct {
	id    int
	size  int
	cfg   Config
	clock atomic.Int64 // cluster.VTime

	ln    net.Listener // workers: accepts master + peer dials
	inbox *inbox

	mu       sync.Mutex
	links    map[int]*link         // send links by peer id
	all      []*link               // every link, including receive-only accepted ones
	pending  map[net.Conn]struct{} // accepted conns mid-handshake
	peers    []string              // worker listen addresses by node id ("" for 0)
	departed map[int]bool          // peers that said an orderly goodbye
	down     map[int]bool          // peers declared dead (failure-notifying mode)
	closing  bool

	// joinMu serialises late-join admissions on the master: one joiner's
	// welcome/ack exchange completes (and commits the grown size) before
	// the next begins, so concurrent joiners cannot be offered the same
	// node id.
	joinMu sync.Mutex

	// notify switches peer-failure handling from poisoning the inbox to
	// delivering in-band KindPeerDown events (see Transport.NotifyFailures).
	notify atomic.Bool

	// Link-resilience counters (see LinkStats): suspensions entered and
	// retained frames replayed by successful resumes.
	linkFlaps      atomic.Int64
	replayedFrames atomic.Int64

	trMu sync.Mutex
	tr   cluster.Traffic // outgoing payload traffic, this node's rows

	done chan struct{} // closed by Close; unblocks heartbeat loops
	wg   sync.WaitGroup
}

var _ cluster.Transport = (*Node)(nil)
var _ cluster.TrafficReporter = (*Node)(nil)

// ID returns the node id (0 = master).
func (n *Node) ID() int { return n.id }

// Size returns the cluster size p+1 (late joins grow it).
func (n *Node) Size() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.size
}

// Clock returns the node's virtual time.
func (n *Node) Clock() cluster.VTime { return cluster.VTime(n.clock.Load()) }

// Members returns the nodes not declared dead (self excluded), ascending.
func (n *Node) Members() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]int, 0, n.size-1)
	for id := 0; id < n.size; id++ {
		if id != n.id && !n.down[id] {
			out = append(out, id)
		}
	}
	return out
}

// NotifyFailures selects in-band KindPeerDown delivery over inbox
// poisoning for detected peer failures (heartbeat timeout, link error,
// failed dial). Enable it before the failure can happen — typically right
// after the join, before the protocol starts.
func (n *Node) NotifyFailures(on bool) { n.notify.Store(on) }

// peerDown declares peer dead: its links close, sends to it start failing
// with cluster.ErrPeerDown, and one synthetic KindPeerDown event joins the
// inbox. Idempotent; a no-op once the node itself is closing.
func (n *Node) peerDown(peer int) {
	n.mu.Lock()
	if n.closing || n.down[peer] {
		n.mu.Unlock()
		return
	}
	if n.down == nil {
		n.down = make(map[int]bool)
	}
	n.down[peer] = true
	var dead []*link
	for _, l := range n.all {
		if l.peer == peer {
			dead = append(dead, l)
		}
	}
	n.mu.Unlock()
	for _, l := range dead {
		l.close()
	}
	n.inbox.put(cluster.Message{From: peer, To: n.id, Kind: cluster.KindPeerDown})
}

func (n *Node) isDown(peer int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[peer]
}

// linkFailed routes a detected failure of the link to peer: an in-band
// membership event when failure notification is on, a poisoned inbox (the
// historical contract) when off.
func (n *Node) linkFailed(peer int, err error) {
	if n.notify.Load() {
		n.peerDown(peer)
		return
	}
	n.inbox.fail(err)
}

// Model returns the cost model in force (the master's, cluster-wide).
func (n *Node) Model() cluster.CostModel { return n.cfg.Model }

// Compute advances the virtual clock by units of work, exactly as the
// simulated node does.
func (n *Node) Compute(units int64) {
	if units <= 0 {
		return
	}
	n.clock.Add(int64(cluster.VTime(float64(units) * n.cfg.Model.NsPerInference)))
}

// ComputeDuration advances the clock by a raw virtual duration.
func (n *Node) ComputeDuration(d time.Duration) {
	if d > 0 {
		n.clock.Add(int64(d))
	}
}

func (n *Node) advanceTo(t cluster.VTime) {
	if t > n.Clock() {
		n.clock.Store(int64(t))
	}
}

// Traffic snapshots this node's outgoing per-link payload counters.
func (n *Node) Traffic() cluster.Traffic {
	n.trMu.Lock()
	defer n.trMu.Unlock()
	out := cluster.NewTraffic(n.tr.N)
	copy(out.Bytes, n.tr.Bytes)
	copy(out.Msgs, n.tr.Msgs)
	return out
}

// Stats returns this node's outgoing payload totals.
func (n *Node) Stats() cluster.Stats {
	n.trMu.Lock()
	defer n.trMu.Unlock()
	return cluster.Stats{Messages: n.tr.TotalMsgs(), Bytes: n.tr.TotalBytes()}
}

func (n *Node) account(to int, payloadBytes int) {
	n.trMu.Lock()
	if to >= n.tr.N {
		n.tr.Grow(to + 1) // a late join grew the cluster under us
	}
	n.tr.Add(n.id, to, int64(payloadBytes), 1)
	n.trMu.Unlock()
}

// applyPeerUpdate installs a grown cluster size and address book (a late
// worker joined at the master). Updates arrive on the ordered master link
// before any protocol traffic that could reference the new node, so a
// stale-looking update (smaller than the current size) is simply ignored.
func (n *Node) applyPeerUpdate(f *frame) {
	n.mu.Lock()
	if int(f.Nodes) > n.size {
		n.size = int(f.Nodes)
		n.peers = f.Peers
	}
	n.mu.Unlock()
	n.trMu.Lock()
	n.tr.Grow(int(f.Nodes))
	n.trMu.Unlock()
}

// Send encodes v under the negotiated codec and ships it to node to.
// Sends to self loop through the inbox without touching the network, as
// in the simulation.
func (n *Node) Send(to int, kind int, v any) error {
	payload, err := cluster.EncodePayload(n.cfg.Codec, v)
	if err != nil {
		return fmt.Errorf("netcluster: send from %d to %d kind %d: %w", n.id, to, kind, err)
	}
	return n.sendPayload(to, kind, payload)
}

// Broadcast sends v to every node in targets, encoding once.
func (n *Node) Broadcast(targets []int, kind int, v any) error {
	payload, err := cluster.EncodePayload(n.cfg.Codec, v)
	if err != nil {
		return fmt.Errorf("netcluster: broadcast from %d kind %d: %w", n.id, kind, err)
	}
	for _, to := range targets {
		if err := n.sendPayload(to, kind, payload); err != nil {
			return err
		}
	}
	return nil
}

func (n *Node) sendPayload(to, kind int, payload []byte) error {
	n.mu.Lock()
	size := n.size
	n.mu.Unlock()
	if to < 0 || to >= size {
		return fmt.Errorf("netcluster: send to unknown node %d (cluster size %d)", to, size)
	}
	if n.isDown(to) {
		return fmt.Errorf("netcluster: send from %d to %d kind %d: %w", n.id, to, kind, cluster.ErrPeerDown)
	}
	sendTime := n.Clock()
	n.account(to, len(payload))
	if to == n.id {
		n.inbox.put(cluster.Message{
			From: n.id, To: to, Kind: kind, Payload: payload, Codec: n.cfg.Codec,
			SendTime: sendTime, Arrive: sendTime + n.cfg.Model.TransferTime(len(payload)),
		})
		return nil
	}
	l, err := n.linkTo(to)
	if err != nil {
		if n.notify.Load() {
			n.peerDown(to)
			return fmt.Errorf("netcluster: send from %d to %d kind %d: %v: %w", n.id, to, kind, err, cluster.ErrPeerDown)
		}
		return err
	}
	f := &frame{
		Ctrl: ctrlData, From: int32(n.id), To: int32(to), Kind: int32(kind),
		SendTime: int64(sendTime), Payload: payload,
	}
	if err := n.sendSequenced(l, f); err != nil {
		if n.notify.Load() {
			n.peerDown(to)
			return fmt.Errorf("netcluster: send from %d to %d kind %d: %v: %w", n.id, to, kind, err, cluster.ErrPeerDown)
		}
		err = fmt.Errorf("netcluster: send from %d to %d kind %d: %w", n.id, to, kind, err)
		n.inbox.fail(err)
		return err
	}
	return nil
}

// ReceiveCtx blocks until a protocol message arrives, the context is done,
// or the transport fails (peer death, link error, Close). The receiver's
// clock advances to the message's virtual arrival time.
func (n *Node) ReceiveCtx(ctx context.Context) (cluster.Message, error) {
	msg, err := n.inbox.take(ctx)
	if err != nil {
		return cluster.Message{}, err
	}
	n.advanceTo(msg.Arrive)
	return msg, nil
}

// Close shuts the node down in an orderly way: a goodbye frame tells every
// peer this departure is deliberate (their reader treats the following EOF
// as a clean close), pending local receivers unblock with ErrClosed, and
// every link closes. Use Abort when exiting on an error: an erroring
// node's peers must see a failure, not an orderly departure, or they
// could block forever waiting for protocol messages that will never come.
func (n *Node) Close() error { return n.shutdown(true) }

// Abort slams the node shut without goodbyes: peers observe a link
// failure, exactly as if the process had crashed.
func (n *Node) Abort() error { return n.shutdown(false) }

func (n *Node) shutdown(orderly bool) error {
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return nil
	}
	n.closing = true
	links := append([]*link(nil), n.all...)
	pending := make([]net.Conn, 0, len(n.pending))
	for c := range n.pending {
		pending = append(pending, c)
	}
	ln := n.ln
	n.mu.Unlock()

	close(n.done)
	for _, c := range pending {
		c.Close() // unblock handshakes so wg.Wait below returns promptly
	}

	n.inbox.fail(cluster.ErrClosed)
	if ln != nil {
		ln.Close()
	}
	for _, l := range links {
		if orderly {
			l.write(&frame{Ctrl: ctrlGoodbye, From: int32(n.id)})
		}
		l.close()
	}
	n.wg.Wait()
	return nil
}

func (n *Node) isClosing() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closing
}

// noteDeparture records an orderly goodbye from peer and reports whether
// this node's run is thereby over: for a worker, when the master departs;
// for the master, when every worker has.
func (n *Node) noteDeparture(peer int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.departed == nil {
		n.departed = make(map[int]bool)
	}
	n.departed[peer] = true
	if n.id != 0 {
		return n.departed[0]
	}
	for k := 1; k < n.size; k++ {
		if !n.departed[k] {
			return false
		}
	}
	return true
}

// registerLink installs a link and starts its reader and heartbeater.
func (n *Node) registerLink(peer int, conn net.Conn, sendable bool, sess linkSession) (*link, error) {
	l := newLink(peer, conn, n.cfg.PeerTimeout, sess)
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		conn.Close()
		return nil, cluster.ErrClosed
	}
	if sendable {
		if _, dup := n.links[peer]; dup {
			n.mu.Unlock()
			conn.Close()
			return nil, fmt.Errorf("netcluster: duplicate link to node %d", peer)
		}
		n.links[peer] = l
	}
	n.all = append(n.all, l)
	n.mu.Unlock()
	n.startLinkLoops(l, conn)
	return l, nil
}

// startLinkLoops launches the reader and heartbeater bound to one conn
// incarnation; a resume swaps the conn and starts fresh loops, and the
// old ones recognise the swap and exit.
func (n *Node) startLinkLoops(l *link, conn net.Conn) {
	n.wg.Add(2)
	go n.readLoop(l, conn)
	go n.heartbeatLoop(l, conn)
}

// linkTo returns the send link for peer, dialing it on first use (the lazy
// worker-to-worker ring edges).
func (n *Node) linkTo(peer int) (*link, error) {
	n.mu.Lock()
	l, ok := n.links[peer]
	addr := ""
	if !ok && peer < len(n.peers) {
		addr = n.peers[peer]
	}
	n.mu.Unlock()
	if ok {
		return l, nil
	}
	if addr == "" {
		return nil, fmt.Errorf("netcluster: no address for node %d", peer)
	}
	conn, err := net.DialTimeout("tcp", addr, n.cfg.JoinTimeout)
	if err != nil {
		return nil, fmt.Errorf("netcluster: dial node %d at %s: %w", peer, addr, err)
	}
	conn = n.cfg.wrapConn(conn)
	sess := n.newSession(addr)
	hello := &frame{Ctrl: ctrlHello, From: int32(n.id), Fingerprint: n.cfg.Fingerprint, Session: sess.sid, Codec: codecByte(n.cfg.Codec)}
	if err := writeFrame(conn, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netcluster: hello to node %d: %w", peer, err)
	}
	return n.registerLink(peer, conn, true, sess)
}

// readLoop decodes frames off one conn incarnation of a link until it
// dies. Any frame refreshes liveness; data frames join the shared inbox
// with their virtual arrival time computed under the cost model.
// Sequenced frames are deduplicated (a resume replay may overlap frames
// that arrived before the flap) and their piggybacked acks prune the
// reverse direction's retained ring.
func (n *Node) readLoop(l *link, conn net.Conn) {
	defer n.wg.Done()
	for {
		f, err := readFrame(conn, n.cfg.MaxFrameBytes)
		if err != nil {
			if !n.isClosing() && !l.isClosed() {
				n.linkTrouble(l, conn, fmt.Errorf("netcluster: node %d: link to node %d failed: %w", n.id, l.peer, err))
			}
			return
		}
		l.touch()
		if f.Ack > 0 {
			l.prune(f.Ack)
		}
		switch f.Ctrl {
		case ctrlData:
			if f.Seq > 0 && !l.acceptSeq(f.Seq) {
				continue // replay duplicate, already delivered
			}
			sendTime := cluster.VTime(f.SendTime)
			n.inbox.put(cluster.Message{
				From: int(f.From), To: int(f.To), Kind: int(f.Kind), Payload: f.Payload, Codec: n.cfg.Codec,
				SendTime: sendTime, Arrive: sendTime + n.cfg.Model.TransferTime(len(f.Payload)),
			})
		case ctrlHeartbeat:
			// touch above is all a heartbeat does.
		case ctrlPeerUpdate:
			if f.Seq > 0 && !l.acceptSeq(f.Seq) {
				continue
			}
			n.applyPeerUpdate(f)
		case ctrlGoodbye:
			// Orderly peer departure: every protocol frame it sent was
			// written (and, TCP being ordered, read) before the goodbye,
			// so silencing this link loses nothing. A departed master —
			// or, for the master, the departure of every worker — also
			// ends this node's run cleanly: anything still queued is
			// delivered first (the inbox drains before reporting closure).
			l.close()
			if n.noteDeparture(l.peer) {
				n.inbox.fail(cluster.ErrClosed)
			}
			return
		default:
			n.inbox.fail(fmt.Errorf("netcluster: node %d: unexpected ctrl frame %d from node %d", n.id, f.Ctrl, l.peer))
			return
		}
	}
}

// heartbeatLoop keeps one conn incarnation of a link observably alive and
// declares the peer dead after PeerTimeout of silence — the only way a
// hung (rather than closed) peer surfaces while this node is blocked in
// ReceiveCtx. Heartbeats piggyback the cumulative delivery ack, so a
// quiet reverse direction still prunes the peer's retained ring.
func (n *Node) heartbeatLoop(l *link, conn net.Conn) {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
		}
		if n.isClosing() || l.isClosed() {
			return
		}
		if l.currentConn() != conn {
			return // suspended or resumed onto a fresh conn; its loops took over
		}
		if l.sinceSeen() > n.cfg.PeerTimeout {
			err := fmt.Errorf("netcluster: node %d: peer %d unresponsive for %s", n.id, l.peer, n.cfg.PeerTimeout)
			if !n.linkTrouble(l, conn, err) {
				l.close()
			}
			return
		}
		hb := &frame{Ctrl: ctrlHeartbeat, From: int32(n.id), Ack: l.loadRecvSeq()}
		if err := l.write(hb); err != nil {
			if !n.isClosing() && !l.isClosed() {
				n.linkTrouble(l, conn, fmt.Errorf("netcluster: node %d: heartbeat to node %d: %w", n.id, l.peer, err))
			}
			return
		}
	}
}
