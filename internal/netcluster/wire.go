package netcluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/cluster"
)

// Frame control tags. Data frames carry protocol messages; the rest are
// transport-level (handshake, liveness) and are excluded from the Table-4
// traffic accounting.
const (
	ctrlData uint8 = iota
	// ctrlHello opens a peer-dialed connection: From identifies the dialer,
	// Fingerprint must match the accepter's.
	ctrlHello
	// ctrlWelcome is the master's join offer: node-id assignment, cluster
	// size, the worker address book and the cost model every node must use.
	ctrlWelcome
	// ctrlWelcomeAck confirms (or, with Err set, rejects) a welcome.
	ctrlWelcomeAck
	// ctrlHeartbeat keeps a link observably alive while no data flows.
	ctrlHeartbeat
	// ctrlGoodbye announces an orderly departure, so the peer's reader
	// treats the following EOF as a clean close rather than a failure —
	// a worker that finished the protocol must not look like a crash to a
	// master still collecting from its siblings.
	ctrlGoodbye
	// ctrlJoinReq asks a running master to admit a late worker: Addr is
	// the joiner's listen address (for the ring's lazy dials) and
	// Fingerprint must match the master's. The master answers with a
	// ctrlWelcome assigning the next node id — or a ctrlWelcomeAck with
	// Err set when the join is refused.
	ctrlJoinReq
	// ctrlPeerUpdate broadcasts a grown address book to the existing
	// workers after a late join: Nodes is the new cluster size and Peers
	// the extended address list. Transport-level only — the protocol
	// learns of the joiner through the master's in-band KindPeerUp event,
	// and workers learn the new ring from the master's rebalance.
	ctrlPeerUpdate
	// ctrlRejoinReq asks a (restarted) master to re-admit a worker that
	// already holds a node id: From is the worker's existing id, Addr its
	// listen address and Fingerprint must match the master's. Unlike
	// ctrlJoinReq no new id is assigned — the master answers ctrlWelcome
	// echoing the id, or ctrlWelcomeAck with Err when the rejoin is
	// refused (wrong fingerprint, unknown id, or a peer already declared
	// dead by a still-running master).
	ctrlRejoinReq
	// ctrlLinkResume reopens a dropped link session after a transient
	// failure (Config.LinkGrace): From names the dialer, Session the link
	// session being resumed, Ack the highest frame sequence the dialer has
	// delivered from the acceptor. The acceptor answers ctrlLinkResumeAck
	// with its own Ack — or Err when the session is unknown or resumption
	// is refused — and both sides replay their retained frames above the
	// peer's ack, restoring exactly-once in-order delivery.
	ctrlLinkResume
	// ctrlLinkResumeAck completes (or, with Err set, refuses) a link
	// resume.
	ctrlLinkResumeAck
)

// frame is the single on-the-wire record. Every frame is individually
// gob-encoded and length-prefixed (4-byte big-endian), so a reader can
// bound allocations and resynchronisation is trivial: a short read is a
// dead link, never a half-parsed stream.
type frame struct {
	Ctrl     uint8
	From     int32
	To       int32
	Kind     int32
	SendTime int64
	Payload  []byte

	// Link-session fields (Config.LinkGrace). Session identifies one
	// dialer-chosen link incarnation, Seq is the per-link send sequence of
	// a retained frame, and Ack piggybacks the sender's cumulative
	// last-delivered sequence for the reverse direction. All three stay
	// zero — and, gob omitting zero fields, off the wire — when the grace
	// window is disabled, keeping the frame encoding byte-identical to
	// earlier releases.
	Session uint64
	Seq     uint64
	Ack     uint64

	// Handshake fields (ctrlHello / ctrlWelcome / ctrlWelcomeAck /
	// ctrlJoinReq / ctrlPeerUpdate).
	NodeID      int32
	Nodes       int32
	Peers       []string
	Addr        string // ctrlJoinReq: the joiner's listen address
	Fingerprint uint64
	Model       cluster.CostModel
	Err         string

	// Codec negotiates the payload encoding: cluster.Codec value + 1, so
	// zero — the gob default for a frame from a binary that predates
	// negotiation — is distinguishable from an explicit choice and the
	// handshake can refuse mixed-version clusters outright. Carried on
	// ctrlWelcome (offer), ctrlWelcomeAck (echo) and ctrlHello (peer
	// dials assert the cluster-wide codec).
	Codec uint8
}

// codecByte maps a codec onto its negotiation byte (value + 1; 0 is
// reserved for "absent").
func codecByte(c cluster.Codec) uint8 { return uint8(c) + 1 }

// codecFromByte inverts codecByte, reporting whether the byte names a
// codec this build speaks.
func codecFromByte(b uint8) (cluster.Codec, bool) {
	switch b {
	case codecByte(cluster.CodecWire):
		return cluster.CodecWire, true
	case codecByte(cluster.CodecGob):
		return cluster.CodecGob, true
	}
	return 0, false
}

const lenPrefixSize = 4

// writeFrame length-prefix-writes one gob-encoded frame. Callers serialise
// writes per connection via the owning link's mutex.
func writeFrame(w io.Writer, f *frame) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, lenPrefixSize)) // reserve the prefix
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("netcluster: encode frame: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:lenPrefixSize], uint32(len(b)-lenPrefixSize))
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed frame, rejecting frames larger than
// maxBytes so a corrupt prefix cannot allocate unbounded memory.
func readFrame(r io.Reader, maxBytes int) (*frame, error) {
	var prefix [lenPrefixSize]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(prefix[:]))
	if n <= 0 || n > maxBytes {
		return nil, fmt.Errorf("netcluster: frame length %d out of range (max %d)", n, maxBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return nil, fmt.Errorf("netcluster: decode frame: %w", err)
	}
	return &f, nil
}

// link is one TCP connection to a peer. Data sends go out on links this
// node dialed (plus, on workers, the master-dialed connection, which is
// bidirectional); every link — dialed or accepted — runs a reader that
// feeds the node's inbox and a heartbeater that keeps the reverse
// direction's liveness tracking fed.
// linkSession carries the session identity a link is registered with.
// sid is the dialer-chosen session id (zero when LinkGrace is off, in
// which case the link behaves exactly as before this layer existed);
// dialer marks the side that re-dials after a transient failure; addr is
// the remote listen address the dialer reconnects to.
type linkSession struct {
	sid    uint64
	dialer bool
	addr   string
}

type link struct {
	peer int
	conn net.Conn

	// writeTimeout bounds every frame write. Without it, a peer that
	// stops draining (SIGSTOP, blackholed route) would block a writer on
	// a full TCP buffer while holding wmu — which would also block the
	// heartbeater, whose timeout check is the only thing that could have
	// broken the stall.
	writeTimeout time.Duration

	// Session identity (immutable after newLink).
	sess linkSession

	wmu sync.Mutex // serialises writeFrame calls

	mu       sync.Mutex
	lastSeen time.Time
	closed   bool

	// Link-session state (guarded by mu). While suspended the conn is
	// dead and outbound frames only accumulate in retained; a successful
	// resume swaps a fresh conn in and replays the unacked tail. flap
	// counts suspensions, so stale failure reports and expired grace
	// watchers recognise that the incarnation they observed is gone.
	suspended bool
	flap      int
	sendSeq   uint64   // last sequence assigned to an outbound frame
	recvSeq   uint64   // last sequence delivered from the peer
	retained  []*frame // sent-but-unacked frames, ascending Seq
}

func newLink(peer int, conn net.Conn, writeTimeout time.Duration, sess linkSession) *link {
	return &link{peer: peer, conn: conn, writeTimeout: writeTimeout, sess: sess, lastSeen: time.Now()}
}

func (l *link) write(f *frame) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.mu.Lock()
	conn := l.conn
	l.mu.Unlock()
	if l.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(l.writeTimeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	return writeFrame(conn, f)
}

// currentConn returns the live conn, or nil while suspended/closed.
func (l *link) currentConn() net.Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.suspended || l.closed {
		return nil
	}
	return l.conn
}

// acceptSeq records delivery of sequence seq and reports whether the
// frame is new; duplicates (a replay overlapping frames that already
// arrived before the flap) are dropped by the caller.
func (l *link) acceptSeq(seq uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.recvSeq {
		return false
	}
	l.recvSeq = seq
	return true
}

func (l *link) loadRecvSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recvSeq
}

// prune drops retained frames the peer has cumulatively acked.
func (l *link) prune(ack uint64) {
	l.mu.Lock()
	l.pruneLocked(ack)
	l.mu.Unlock()
}

func (l *link) pruneLocked(ack uint64) {
	i := 0
	for i < len(l.retained) && l.retained[i].Seq <= ack {
		i++
	}
	if i > 0 {
		kept := copy(l.retained, l.retained[i:])
		for j := kept; j < len(l.retained); j++ {
			l.retained[j] = nil // release the payloads
		}
		l.retained = l.retained[:kept]
	}
}

func (l *link) touch() {
	l.mu.Lock()
	l.lastSeen = time.Now()
	l.mu.Unlock()
}

func (l *link) sinceSeen() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Since(l.lastSeen)
}

func (l *link) close() {
	l.mu.Lock()
	already := l.closed
	l.closed = true
	l.mu.Unlock()
	if !already {
		l.conn.Close()
	}
}

func (l *link) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}
