package netcluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestConfigValidation pins the config-time rejection of knob combinations
// that cannot work, so a bad deployment fails at startup with a message
// naming the knobs instead of dying on a false-positive peer timeout later.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring; empty = must validate
	}{
		{
			name: "heartbeat must fit inside peer timeout",
			cfg:  Config{HeartbeatEvery: time.Second, PeerTimeout: 500 * time.Millisecond},
			wantErr: "HeartbeatEvery",
		},
		{
			name: "heartbeat equal to peer timeout rejected",
			cfg:  Config{HeartbeatEvery: time.Second, PeerTimeout: time.Second},
			wantErr: "HeartbeatEvery",
		},
		{
			name: "negative grace window rejected",
			cfg:  Config{LinkGrace: -time.Second},
			wantErr: "LinkGrace",
		},
		{
			name: "defaults are self-consistent",
			cfg:  Config{},
		},
		{
			name: "grace window with defaults accepted",
			cfg:  Config{LinkGrace: 2 * time.Second},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.withDefaults().validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %v, want error naming %q", err, tc.wantErr)
			}
		})
	}
	// The entry points run the same validation before touching the network.
	if _, err := Connect([]string{"127.0.0.1:1"}, Config{HeartbeatEvery: time.Second, PeerTimeout: time.Second}); err == nil || !strings.Contains(err.Error(), "HeartbeatEvery") {
		t.Fatalf("Connect accepted an invalid config: %v", err)
	}
}

// TestFrameSessionFieldsRoundTrip pins the wire format of the link-session
// header: Session, Seq and Ack must survive writeFrame/readFrame unchanged
// alongside every pre-existing field, or a resumed link replays the wrong
// gap.
func TestFrameSessionFieldsRoundTrip(t *testing.T) {
	in := &frame{
		Ctrl:     ctrlData,
		From:     2,
		To:       1,
		Kind:     9,
		SendTime: 12345,
		Payload:  []byte("rules"),
		Session:  0xA1B2C3D4E5F60718,
		Seq:      42,
		Ack:      41,
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, in); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	out, err := readFrame(&buf, 1<<20)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip mismatch:\n got: %#v\nwant: %#v", out, in)
	}

	// The resume handshake frames carry the session header too.
	hs := &frame{Ctrl: ctrlLinkResume, From: 1, Session: 7, Ack: 3, Fingerprint: 99}
	buf.Reset()
	if err := writeFrame(&buf, hs); err != nil {
		t.Fatalf("writeFrame handshake: %v", err)
	}
	if out, err = readFrame(&buf, 1<<20); err != nil || !reflect.DeepEqual(out, hs) {
		t.Fatalf("handshake round trip: %#v (err %v), want %#v", out, err, hs)
	}
}

// TestReceiveCtxDeadlineDuringGrace pins the contract core relies on: a
// caller deadline on ReceiveCtx keeps firing while a link sits inside its
// reconnect grace window. The grace window hides the flap from the
// protocol, it must not disable the protocol's own timeouts.
func TestReceiveCtxDeadlineDuringGrace(t *testing.T) {
	cases := []struct {
		name string
		blip bool
	}{
		{name: "no fault", blip: false},
		{name: "mid-grace-window", blip: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Fingerprint: 7, LinkGrace: 5 * time.Second}
			master, workers := startCluster(t, 1, cfg)
			if tc.blip {
				master.DropLinks()
			}
			for _, node := range []*Node{master, workers[1]} {
				ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
				start := time.Now()
				_, err := node.ReceiveCtx(ctx)
				cancel()
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("node %d: ReceiveCtx = %v, want context.DeadlineExceeded", node.ID(), err)
				}
				if waited := time.Since(start); waited > 2*time.Second {
					t.Fatalf("node %d: deadline took %v to fire", node.ID(), waited)
				}
			}
		})
	}
}

// TestLinkFlapReplaysExactlyOnce is the tentpole test of the session
// layer: sever every conn mid-stream with frames still to deliver, and the
// reconnect-plus-replay handshake must hand the protocol every frame
// exactly once, in order, with no membership event ever surfacing.
func TestLinkFlapReplaysExactlyOnce(t *testing.T) {
	cfg := Config{Fingerprint: 7, LinkGrace: 10 * time.Second}
	master, workers := startCluster(t, 1, cfg)
	master.NotifyFailures(true)
	workers[1].NotifyFailures(true)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	recvN := func(node *Node, want int) []int {
		t.Helper()
		var got []int
		for len(got) < want {
			msg, err := node.ReceiveCtx(ctx)
			if err != nil {
				t.Fatalf("node %d: receive after %v: %v", node.ID(), got, err)
			}
			if msg.Kind < 0 {
				t.Fatalf("node %d: membership event %d from %d surfaced during a flap", node.ID(), msg.Kind, msg.From)
			}
			var p payload
			if err := msg.Decode(&p); err != nil {
				t.Fatal(err)
			}
			got = append(got, p.N)
		}
		return got
	}

	// Pre-flap traffic establishes delivery state on both ends.
	for i := 1; i <= 3; i++ {
		if err := master.Send(1, 7, payload{N: i}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if got := recvN(workers[1], 3); fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("pre-flap delivery %v", got)
	}

	// The blip: every conn severed, then more frames sent into the gap.
	master.DropLinks()
	for i := 4; i <= 8; i++ {
		if err := master.Send(1, 7, payload{N: i}); err != nil {
			t.Fatalf("mid-flap send %d: %v", i, err)
		}
	}
	if got := recvN(workers[1], 5); fmt.Sprint(got) != "[4 5 6 7 8]" {
		t.Fatalf("post-flap delivery %v, want [4 5 6 7 8] exactly once in order", got)
	}

	// The healed link works in both directions.
	if err := workers[1].Send(0, 8, payload{N: 9}); err != nil {
		t.Fatalf("reply send: %v", err)
	}
	if got := recvN(master, 1); got[0] != 9 {
		t.Fatalf("reply delivery %v", got)
	}

	flaps, replayed := master.LinkStats()
	if flaps < 1 {
		t.Fatalf("master LinkStats flaps = %d, want ≥ 1", flaps)
	}
	if replayed < 1 {
		t.Fatalf("master LinkStats replayed = %d, want ≥ 1 (frames were sent into the gap)", replayed)
	}
}

// TestGraceExpiryEscalatesToPeerDown pins the backstop: a link that cannot
// resume inside LinkGrace must still surface the historical failure event
// — the grace window delays escalation, it never suppresses it.
func TestGraceExpiryEscalatesToPeerDown(t *testing.T) {
	cfg := Config{
		Fingerprint:    7,
		LinkGrace:      300 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    500 * time.Millisecond,
	}
	master, workers := startCluster(t, 1, cfg)
	master.NotifyFailures(true)
	// A genuinely dead peer: the worker's process is gone, listener and all,
	// so the master's reconnect loop has nothing to dial.
	workers[1].Abort()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	msg, err := master.ReceiveCtx(ctx)
	if err != nil {
		t.Fatalf("master receive: %v", err)
	}
	if msg.Kind != -1 || msg.From != 1 { // cluster.KindPeerDown
		t.Fatalf("got kind %d from %d, want KindPeerDown from worker 1", msg.Kind, msg.From)
	}
}
