package netcluster

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/cluster"
)

// Connect dials the given worker addresses and assembles the cluster: the
// caller becomes the master (node 0) and workerAddrs[k-1] becomes node k.
// Each dial is retried until JoinTimeout so workers may still be starting.
// The welcome exchange assigns ids, distributes the address book and the
// cost model, and cross-checks dataset fingerprints.
func Connect(workerAddrs []string, cfg Config) (*Node, error) {
	return connect(nil, workerAddrs, cfg)
}

// ConnectOn is Connect with a pre-bound master listener: joins and worker
// rejoins are accepted on it from the start, and — crucially for
// crash-restart — its address becomes the master's own entry in the
// distributed address book, so every worker knows where to find a restarted
// master. A master run with checkpointing must use a stable listen address
// for the orphan-reconnect loop to work.
func ConnectOn(ln net.Listener, workerAddrs []string, cfg Config) (*Node, error) {
	return connect(ln, workerAddrs, cfg)
}

func connect(ln net.Listener, workerAddrs []string, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := len(workerAddrs)
	if p < 1 {
		return nil, fmt.Errorf("netcluster: no worker addresses")
	}
	masterAddr := ""
	if ln != nil {
		masterAddr = ln.Addr().String()
	}
	n := &Node{
		id:      0,
		size:    p + 1,
		cfg:     cfg,
		inbox:   newInbox(),
		links:   make(map[int]*link),
		peers:   append([]string{masterAddr}, workerAddrs...),
		ln:      ln,
		tr:      cluster.NewTraffic(p + 1),
		pending: make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	for k := 1; k <= p; k++ {
		conn, err := dialRetry(workerAddrs[k-1], cfg.JoinTimeout)
		if err != nil {
			n.Abort() // a failed join is a failure, not an orderly departure
			return nil, fmt.Errorf("netcluster: worker %d at %s: %w", k, workerAddrs[k-1], err)
		}
		conn = cfg.wrapConn(conn)
		sess := n.newSession(workerAddrs[k-1])
		welcome := &frame{
			Ctrl:        ctrlWelcome,
			NodeID:      int32(k),
			Nodes:       int32(p + 1),
			Peers:       n.peers,
			Fingerprint: cfg.Fingerprint,
			Model:       cfg.Model,
			Session:     sess.sid,
			Codec:       codecByte(cfg.Codec),
		}
		if err := writeFrame(conn, welcome); err != nil {
			conn.Close()
			n.Abort() // a failed join is a failure, not an orderly departure
			return nil, fmt.Errorf("netcluster: welcome to worker %d: %w", k, err)
		}
		conn.SetReadDeadline(time.Now().Add(cfg.JoinTimeout))
		ack, err := readFrame(conn, cfg.MaxFrameBytes)
		conn.SetReadDeadline(time.Time{})
		if err != nil {
			conn.Close()
			n.Abort() // a failed join is a failure, not an orderly departure
			return nil, fmt.Errorf("netcluster: worker %d join ack: %w", k, err)
		}
		if ack.Ctrl != ctrlWelcomeAck {
			conn.Close()
			n.Abort() // a failed join is a failure, not an orderly departure
			return nil, fmt.Errorf("netcluster: worker %d: unexpected join reply ctrl %d", k, ack.Ctrl)
		}
		if ack.Err != "" {
			conn.Close()
			n.Abort() // a failed join is a failure, not an orderly departure
			return nil, fmt.Errorf("netcluster: worker %d rejected join: %s", k, ack.Err)
		}
		if ack.Fingerprint != cfg.Fingerprint {
			conn.Close()
			n.Abort() // a failed join is a failure, not an orderly departure
			return nil, fmt.Errorf("netcluster: worker %d fingerprint %x does not match master %x (different dataset or settings loaded)",
				k, ack.Fingerprint, cfg.Fingerprint)
		}
		if ack.Codec != codecByte(cfg.Codec) {
			conn.Close()
			n.Abort() // a failed join is a failure, not an orderly departure
			return nil, fmt.Errorf("netcluster: worker %d did not confirm codec %q (negotiation byte %d, want %d) — mixed-version cluster refused; rebuild the worker or run the master with -wirecodec gob",
				k, cfg.Codec, ack.Codec, codecByte(cfg.Codec))
		}
		if _, err := n.registerLink(k, conn, true, sess); err != nil {
			conn.Close()
			n.Abort() // a failed join is a failure, not an orderly departure
			return nil, err
		}
	}
	if ln != nil {
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return n, nil
}

func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for attempt := 0; ; attempt++ {
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		d := backoffDelay(attempt, dialBackoffBase, dialBackoffCap, rng)
		if until := time.Until(deadline); d > until {
			d = until
		}
		time.Sleep(d)
	}
}

// Retry pacing for dialRetry and the orphaned worker's rejoin loop: start
// fast (a restarting peer is usually back quickly), back off exponentially
// so a long outage doesn't hammer the address, and jitter so a fleet of
// workers orphaned by the same master crash doesn't reconnect in lockstep.
const (
	dialBackoffBase = 50 * time.Millisecond
	dialBackoffCap  = 2 * time.Second
)

// backoffDelay returns the pause before retry attempt (0-based):
// exponential doubling from base, capped at max, with equal jitter — the
// delay lands uniformly in [d/2, d), never zero, so retries spread out
// without ever busy-spinning.
func backoffDelay(attempt int, base, max time.Duration, rng *rand.Rand) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// Serve listens on addr, waits for the master's welcome (learning this
// node's id, the cluster size, the address book and the cost model), and
// returns the joined node. A fingerprint mismatch rejects the join on both
// sides. After joining, the listener keeps accepting the lazily-dialed
// worker-to-worker pipeline links.
func Serve(addr string, cfg Config) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netcluster: listen %s: %w", addr, err)
	}
	return ServeOn(ln, cfg)
}

// ServeOn is Serve over an already-bound listener, letting the caller bind
// ":0" and publish the real address before the blocking join.
func ServeOn(ln net.Listener, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		ln.Close()
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		inbox:   newInbox(),
		links:   make(map[int]*link),
		pending: make(map[net.Conn]struct{}),
		ln:      ln,
		done:    make(chan struct{}),
	}

	// Join phase: accept until the master's welcome arrives. Peer hellos
	// cannot legitimately precede it (peers dial only once the protocol is
	// running), but a straggler is parked and registered after the join
	// rather than dropped.
	type parked struct {
		conn net.Conn
		f    *frame
	}
	var early []parked
	joinDeadline := time.Now().Add(cfg.JoinTimeout)
	for {
		if dl, ok := ln.(*net.TCPListener); ok {
			dl.SetDeadline(joinDeadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("netcluster: waiting for master on %s: %w", ln.Addr(), err)
		}
		conn = cfg.wrapConn(conn)
		conn.SetReadDeadline(joinDeadline)
		f, err := readFrame(conn, cfg.MaxFrameBytes)
		conn.SetReadDeadline(time.Time{})
		if err != nil {
			conn.Close()
			continue // a port scan or a dead dial; keep waiting for the master
		}
		if f.Ctrl == ctrlHello {
			early = append(early, parked{conn, f})
			continue
		}
		if f.Ctrl != ctrlWelcome {
			conn.Close()
			continue
		}
		if f.Fingerprint != cfg.Fingerprint {
			reject := &frame{Ctrl: ctrlWelcomeAck, Err: fmt.Sprintf(
				"fingerprint %x does not match master %x (different dataset or settings loaded)",
				cfg.Fingerprint, f.Fingerprint)}
			writeFrame(conn, reject)
			conn.Close()
			ln.Close()
			return nil, fmt.Errorf("netcluster: master fingerprint %x does not match ours %x", f.Fingerprint, cfg.Fingerprint)
		}
		codec, ok := codecFromByte(f.Codec)
		if !ok {
			reject := &frame{Ctrl: ctrlWelcomeAck, Err: fmt.Sprintf(
				"codec negotiation byte %d not understood (master speaks a codec this build does not)", f.Codec)}
			writeFrame(conn, reject)
			conn.Close()
			ln.Close()
			return nil, fmt.Errorf("netcluster: master offered codec byte %d this build does not speak — mixed-version cluster refused", f.Codec)
		}
		n.id = int(f.NodeID)
		n.size = int(f.Nodes)
		n.peers = f.Peers
		n.cfg.Model = f.Model.WithDefaults()
		n.cfg.Codec = codec // the master's codec rules cluster-wide, like Model
		n.tr = cluster.NewTraffic(n.size)
		if err := writeFrame(conn, &frame{Ctrl: ctrlWelcomeAck, From: f.NodeID, Fingerprint: cfg.Fingerprint, Codec: codecByte(codec)}); err != nil {
			conn.Close()
			ln.Close()
			return nil, fmt.Errorf("netcluster: join ack: %w", err)
		}
		if _, err := n.registerLink(0, conn, true, n.acceptedSession(f)); err != nil {
			ln.Close()
			return nil, err
		}
		break
	}
	if dl, ok := ln.(*net.TCPListener); ok {
		dl.SetDeadline(time.Time{})
	}
	for _, e := range early {
		n.acceptPeer(e.conn, e.f)
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the worker's actual listen address (useful with ":0").
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// acceptLoop admits lazily-dialed peer links until the listener closes.
// Each handshake runs in its own goroutine: a connection that never sends
// its hello (a port scan, a stalled dialer) must not head-of-line-block
// the admission of healthy peers behind it.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		n.mu.Lock()
		if n.closing {
			n.mu.Unlock()
			conn.Close()
			return
		}
		conn = n.cfg.wrapConn(conn)
		n.pending[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.handshake(conn)
	}
}

// handshake reads an accepted connection's first frame and registers the
// peer. Shutdown closes pending connections, so the bounded read unblocks
// promptly rather than holding Close for the full JoinTimeout.
func (n *Node) handshake(conn net.Conn) {
	defer n.wg.Done()
	conn.SetReadDeadline(time.Now().Add(n.cfg.JoinTimeout))
	f, err := readFrame(conn, n.cfg.MaxFrameBytes)
	conn.SetReadDeadline(time.Time{})
	n.mu.Lock()
	delete(n.pending, conn)
	closing := n.closing
	n.mu.Unlock()
	if err != nil || closing {
		conn.Close()
		return
	}
	n.acceptPeer(conn, f)
}

func (n *Node) acceptPeer(conn net.Conn, f *frame) {
	if f.Ctrl == ctrlLinkResume {
		n.acceptLinkResume(conn, f)
		return
	}
	if f.Ctrl == ctrlJoinReq {
		if n.id == 0 {
			n.acceptJoin(conn, f)
		} else {
			conn.Close() // only the master admits joiners
		}
		return
	}
	if f.Ctrl == ctrlRejoinReq {
		if n.id == 0 {
			n.acceptRejoin(conn, f)
		} else {
			conn.Close() // only the master re-admits workers
		}
		return
	}
	n.mu.Lock()
	size := n.size
	n.mu.Unlock()
	if f.Ctrl != ctrlHello || int(f.From) <= 0 || int(f.From) >= size {
		conn.Close()
		return
	}
	if n.isDown(int(f.From)) {
		// Once declared dead a peer stays dead: membership recovery has
		// already redistributed its work, so a late reconnect is refused.
		conn.Close()
		return
	}
	if f.Fingerprint != n.cfg.Fingerprint {
		conn.Close()
		n.inbox.fail(fmt.Errorf("netcluster: node %d: peer %d fingerprint %x does not match ours %x",
			n.id, f.From, f.Fingerprint, n.cfg.Fingerprint))
		return
	}
	if f.Codec != codecByte(n.cfg.Codec) {
		// Every member adopted the master's codec at join, so a mismatched
		// hello is a build that negotiated nothing (byte 0) or a different
		// cluster — either way its payloads would be undecodable.
		conn.Close()
		n.inbox.fail(fmt.Errorf("netcluster: node %d: peer %d codec byte %d does not match negotiated %q (byte %d) — mixed-version cluster refused",
			n.id, f.From, f.Codec, n.cfg.Codec, codecByte(n.cfg.Codec)))
		return
	}
	// Receive-only: data to this peer goes out on a link we dial ourselves.
	n.registerLink(int(f.From), conn, false, n.acceptedSession(f))
}

// ListenForJoins opens a join listener on a running master, so late
// workers can attach themselves to the cluster mid-run (`p2mdie -join`).
// Each admitted joiner is assigned the next node id, the address book is
// broadcast to the existing workers, and the protocol layer learns of the
// newcomer through an in-band cluster.KindPeerUp event — the symmetric
// counterpart of the KindPeerDown failure surface.
func (n *Node) ListenForJoins(addr string) error {
	if n.id != 0 {
		return fmt.Errorf("netcluster: only the master (node 0) accepts joins, this is node %d", n.id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("netcluster: join listener on %s: %w", addr, err)
	}
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		ln.Close()
		return cluster.ErrClosed
	}
	if n.ln != nil {
		n.mu.Unlock()
		ln.Close()
		return fmt.Errorf("netcluster: node already listening on %s", n.ln.Addr())
	}
	n.ln = ln
	n.mu.Unlock()
	n.wg.Add(1)
	go n.acceptLoop()
	return nil
}

// acceptJoin admits one late worker on the master (see ListenForJoins).
// Nothing is committed until the joiner has acknowledged the welcome, so a
// joiner that vanishes mid-handshake leaves no trace; joinMu serialises
// admissions so concurrent joiners get distinct ids.
func (n *Node) acceptJoin(conn net.Conn, f *frame) {
	reject := func(reason string) {
		writeFrame(conn, &frame{Ctrl: ctrlWelcomeAck, Err: reason})
		conn.Close()
	}
	if f.Fingerprint != n.cfg.Fingerprint {
		reject(fmt.Sprintf("fingerprint %x does not match master %x (different dataset or settings loaded)",
			f.Fingerprint, n.cfg.Fingerprint))
		return
	}
	if f.Addr == "" {
		reject("join request carries no listen address")
		return
	}
	n.joinMu.Lock()
	defer n.joinMu.Unlock()
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		conn.Close()
		return
	}
	id := n.size
	peers := append(append([]string(nil), n.peers...), f.Addr)
	n.mu.Unlock()

	welcome := &frame{
		Ctrl:        ctrlWelcome,
		NodeID:      int32(id),
		Nodes:       int32(id + 1),
		Peers:       peers,
		Fingerprint: n.cfg.Fingerprint,
		Model:       n.cfg.Model,
		Codec:       codecByte(n.cfg.Codec),
	}
	if err := writeFrame(conn, welcome); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Now().Add(n.cfg.JoinTimeout))
	ack, err := readFrame(conn, n.cfg.MaxFrameBytes)
	conn.SetReadDeadline(time.Time{})
	if err != nil || ack.Ctrl != ctrlWelcomeAck || ack.Err != "" || ack.Fingerprint != n.cfg.Fingerprint || ack.Codec != codecByte(n.cfg.Codec) {
		conn.Close()
		return
	}

	// Commit: grow the cluster, register the link, tell everyone. The
	// address-book updates are written to each worker link before the
	// KindPeerUp event is enqueued, and the master's protocol only
	// references the joiner after consuming that event — so on TCP's
	// ordered links every worker knows the joiner's address before any
	// ring traffic could target it.
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		conn.Close()
		return
	}
	n.size = id + 1
	n.peers = peers
	var workerLinks []*link
	for peer, l := range n.links {
		if peer != 0 && peer != id {
			workerLinks = append(workerLinks, l)
		}
	}
	n.mu.Unlock()
	n.trMu.Lock()
	n.tr.Grow(id + 1)
	n.trMu.Unlock()
	if _, err := n.registerLink(id, conn, true, n.acceptedSession(f)); err != nil {
		conn.Close()
		return
	}
	for _, l := range workerLinks {
		// Best-effort: a broken link surfaces through its own failure
		// detection, and the dead worker will never dial the joiner.
		// Sequenced (own copy per link, sendSequenced stamps the header in
		// place) so a flap between the update and the ring's first dial
		// cannot lose the new address book.
		upd := &frame{Ctrl: ctrlPeerUpdate, Nodes: int32(id + 1), Peers: peers}
		n.sendSequenced(l, upd)
	}
	n.inbox.put(cluster.Message{From: id, To: n.id, Kind: cluster.KindPeerUp})
}

// Join attaches a late worker to a running master (the counterpart of
// ListenForJoins): listen on listenAddr for the ring's lazy peer dials,
// request admission at masterAddr, and return the joined node. The
// protocol-level welcome — ring membership, settings, the first example
// share — arrives from the master through the normal message surface
// afterwards. A fingerprint mismatch or a master without a join listener
// refuses the join.
func Join(masterAddr, listenAddr string, cfg Config) (*Node, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netcluster: listen %s: %w", listenAddr, err)
	}
	return JoinOn(ln, masterAddr, cfg)
}

// JoinOn is Join over an already-bound listener, letting the caller bind
// ":0" and publish the real address before the blocking join.
func JoinOn(ln net.Listener, masterAddr string, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	fail := func(err error) (*Node, error) {
		ln.Close()
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return fail(err)
	}
	conn, err := dialRetry(masterAddr, cfg.JoinTimeout)
	if err != nil {
		return fail(fmt.Errorf("netcluster: join master at %s: %w", masterAddr, err))
	}
	conn = cfg.wrapConn(conn)
	sess := linkSession{}
	if cfg.LinkGrace > 0 {
		sess = linkSession{sid: newSessionID(), dialer: true, addr: masterAddr}
	}
	req := &frame{Ctrl: ctrlJoinReq, Addr: ln.Addr().String(), Fingerprint: cfg.Fingerprint, Session: sess.sid}
	if err := writeFrame(conn, req); err != nil {
		conn.Close()
		return fail(fmt.Errorf("netcluster: join request: %w", err))
	}
	conn.SetReadDeadline(time.Now().Add(cfg.JoinTimeout))
	f, err := readFrame(conn, cfg.MaxFrameBytes)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return fail(fmt.Errorf("netcluster: waiting for join welcome: %w", err))
	}
	if f.Ctrl == ctrlWelcomeAck && f.Err != "" {
		conn.Close()
		return fail(fmt.Errorf("netcluster: master refused join: %s", f.Err))
	}
	if f.Ctrl != ctrlWelcome {
		conn.Close()
		return fail(fmt.Errorf("netcluster: unexpected join reply ctrl %d", f.Ctrl))
	}
	if f.Fingerprint != cfg.Fingerprint {
		conn.Close()
		return fail(fmt.Errorf("netcluster: master fingerprint %x does not match ours %x (different dataset or settings loaded)",
			f.Fingerprint, cfg.Fingerprint))
	}
	codec, ok := codecFromByte(f.Codec)
	if !ok {
		conn.Close()
		return fail(fmt.Errorf("netcluster: master offered codec byte %d this build does not speak — mixed-version cluster refused", f.Codec))
	}
	n := &Node{
		id:      int(f.NodeID),
		size:    int(f.Nodes),
		cfg:     cfg,
		inbox:   newInbox(),
		links:   make(map[int]*link),
		pending: make(map[net.Conn]struct{}),
		peers:   f.Peers,
		ln:      ln,
		tr:      cluster.NewTraffic(int(f.Nodes)),
		done:    make(chan struct{}),
	}
	n.cfg.Model = f.Model.WithDefaults()
	n.cfg.Codec = codec // adopt the running cluster's codec
	if err := writeFrame(conn, &frame{Ctrl: ctrlWelcomeAck, From: f.NodeID, Fingerprint: cfg.Fingerprint, Codec: codecByte(codec)}); err != nil {
		conn.Close()
		return fail(fmt.Errorf("netcluster: join ack: %w", err))
	}
	if _, err := n.registerLink(0, conn, true, sess); err != nil {
		return fail(err)
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}
