package netcluster

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/cluster"
)

// The late-join suite: a running master admits a new worker mid-run, the
// address book propagates, and the joiner becomes a first-class peer —
// reachable from the master, from the ring, and in the traffic accounting.

// joinLate attaches one extra worker to a running master.
func joinLate(t *testing.T, master *Node, cfg Config) *Node {
	t.Helper()
	if err := master.ListenForJoins("127.0.0.1:0"); err != nil {
		t.Fatalf("ListenForJoins: %v", err)
	}
	j, err := Join(master.Addr(), "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestLateJoinAdmitsWorker(t *testing.T) {
	cfg := Config{Fingerprint: 42}
	master, workers := startCluster(t, 2, cfg)
	joiner := joinLate(t, master, cfg)

	if joiner.ID() != 3 || joiner.Size() != 4 {
		t.Fatalf("joiner id=%d size=%d, want 3 of 4", joiner.ID(), joiner.Size())
	}
	// The master's protocol surface sees the join as an in-band event.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	msg, err := master.ReceiveCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != cluster.KindPeerUp || msg.From != 3 {
		t.Fatalf("master got %+v, want KindPeerUp from 3", msg)
	}
	if master.Size() != 4 {
		t.Fatalf("master size = %d, want 4", master.Size())
	}

	// Master ↔ joiner exchange works like any other link.
	if err := master.Send(3, 7, payload{N: 1, S: "welcome"}); err != nil {
		t.Fatal(err)
	}
	jm, err := joiner.ReceiveCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if jm.From != 0 || jm.Kind != 7 {
		t.Fatalf("joiner got %+v", jm)
	}
	if err := joiner.Send(0, 8, payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := master.ReceiveCtx(ctx); err != nil {
		t.Fatal(err)
	}

	// The existing workers' address books grew (ctrlPeerUpdate), so a
	// ring link to the joiner dials lazily — and the reverse direction
	// works too, closing the ring.
	waitForSize(t, workers[1], 4)
	if err := workers[1].Send(3, 9, payload{N: 3}); err != nil {
		t.Fatalf("ring send to joiner: %v", err)
	}
	rm, err := joiner.ReceiveCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rm.From != 1 || rm.Kind != 9 {
		t.Fatalf("joiner ring message: %+v", rm)
	}
	if err := joiner.Send(1, 10, payload{N: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := workers[1].ReceiveCtx(ctx); err != nil {
		t.Fatal(err)
	}

	// Traffic tables grew with the cluster; joiner links are accounted.
	mt := master.Traffic()
	if mt.N != 4 || mt.LinkMsgs(0, 3) != 1 {
		t.Fatalf("master traffic after join: n=%d %v", mt.N, mt.Links())
	}
	jt := joiner.Traffic()
	if jt.LinkMsgs(3, 0) != 1 || jt.LinkMsgs(3, 1) != 1 {
		t.Fatalf("joiner traffic: %v", jt.Links())
	}
}

// waitForSize polls until the node has observed the grown cluster (the
// ctrlPeerUpdate travels asynchronously on the master link).
func waitForSize(t *testing.T, n *Node, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n.Size() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %d never saw size %d (still %d)", n.ID(), want, n.Size())
}

func TestLateJoinFingerprintMismatchRefused(t *testing.T) {
	cfg := Config{Fingerprint: 42}
	master, _ := startCluster(t, 1, cfg)
	if err := master.ListenForJoins("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	j, err := Join(master.Addr(), "127.0.0.1:0", Config{Fingerprint: 7, JoinTimeout: 5 * time.Second})
	if err == nil {
		j.Close()
		t.Fatal("join with mismatched fingerprint accepted")
	}
	// The cluster is unchanged and still functional.
	if master.Size() != 2 {
		t.Fatalf("master size = %d after refused join", master.Size())
	}
}

func TestLateJoinRefusedByWorker(t *testing.T) {
	// Only the master admits joins: a join request aimed at a worker's
	// listener must be dropped, not corrupt the worker.
	cfg := Config{Fingerprint: 42, JoinTimeout: 2 * time.Second}
	_, workers := startCluster(t, 1, cfg)
	j, err := Join(workers[1].Addr(), "127.0.0.1:0", cfg)
	if err == nil {
		j.Close()
		t.Fatal("worker accepted a join request")
	}
}

func TestLateJoinSequential(t *testing.T) {
	// Two joiners one after the other get distinct ids and both work.
	cfg := Config{Fingerprint: 42}
	master, _ := startCluster(t, 1, cfg)
	if err := master.ListenForJoins("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	j1, err := Join(master.Addr(), "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j1.Close()
	j2, err := Join(master.Addr(), "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j1.ID() != 2 || j2.ID() != 3 {
		t.Fatalf("joiner ids %d, %d — want 2, 3", j1.ID(), j2.ID())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for want := 2; want <= 3; want++ {
		msg, err := master.ReceiveCtx(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Kind != cluster.KindPeerUp || msg.From != want {
			t.Fatalf("got %+v, want KindPeerUp from %d", msg, want)
		}
	}
	if err := master.Broadcast([]int{1, 2, 3}, 5, payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Node{j1, j2} {
		if _, err := n.ReceiveCtx(ctx); err != nil {
			t.Fatalf("joiner %d receive: %v", n.ID(), err)
		}
	}
}

func TestLateJoinWithoutListenerRefused(t *testing.T) {
	// A master that never called ListenForJoins simply has no join
	// endpoint; Join against a worker-less ephemeral port fails fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening here any more
	_, err = Join(addr, "127.0.0.1:0", Config{JoinTimeout: time.Second})
	if err == nil {
		t.Fatal("join to a dead address succeeded")
	}
}
