package netcluster

import (
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// Link-resilience layer: sequenced link sessions with a reconnect grace
// window (Config.LinkGrace). A read, write or heartbeat failure on a link
// no longer escalates straight to peerDown; instead the link is suspended
// — its outbound frames keep accumulating in the retained ring — while
// the side that originally dialed the connection re-dials with backoff.
// The ctrlLinkResume handshake exchanges the two ends' last-delivered
// sequences, both replay their retained tails, and the protocol layers
// above (core, parcov) observe nothing at all: exactly-once in-order
// delivery holds across the flap. Only a grace window that expires
// without a successful resume escalates to the PR 4/6 failure machinery
// (KindPeerDown, recovery, orphan regime), which remains the backstop for
// genuinely dead peers.

// sessionCounter seeds newSessionID; the time component makes ids from
// different node incarnations distinct, which is all correctness needs
// (a resumed session must never match a session of a crashed-and-
// restarted process that happens to reuse the peer id).
var sessionCounter atomic.Uint64

func newSessionID() uint64 {
	return uint64(time.Now().UnixNano())<<16 | (sessionCounter.Add(1) & 0xFFFF)
}

// graceOn reports whether the reconnect grace window is enabled.
func (n *Node) graceOn() bool { return n.cfg.LinkGrace > 0 }

// newSession builds the dialer-side session identity for a fresh link:
// a generated session id when the grace window is on, the zero session
// (legacy behavior, nothing new on the wire) when off.
func (n *Node) newSession(addr string) linkSession {
	if !n.graceOn() {
		return linkSession{}
	}
	return linkSession{sid: newSessionID(), dialer: true, addr: addr}
}

// acceptedSession builds the acceptor-side identity from a handshake
// frame's Session field.
func (n *Node) acceptedSession(f *frame) linkSession {
	return linkSession{sid: f.Session}
}

// LinkStats returns this node's transient-fault counters: how many times
// a link was suspended into a reconnect grace window, and how many
// retained frames were replayed by successful resumes.
func (n *Node) LinkStats() (flaps, replayed int64) {
	return n.linkFlaps.Load(), n.replayedFrames.Load()
}

// LinkGrace returns the configured reconnect grace window (zero =
// disabled). core probes this to validate it against RecvTimeout.
func (n *Node) LinkGrace() time.Duration { return n.cfg.LinkGrace }

// DropLinks abruptly severs every live connection without touching link
// state — the observable effect of a transient network partition. With a
// grace window configured the links suspend and resume transparently;
// without one, every link failure escalates exactly as a real blackout
// would. Testing aid for the flap chaos schedules (`p2mdie -flapat`).
func (n *Node) DropLinks() {
	n.mu.Lock()
	links := append([]*link(nil), n.all...)
	n.mu.Unlock()
	for _, l := range links {
		l.mu.Lock()
		conn := l.conn
		live := !l.closed && !l.suspended
		l.mu.Unlock()
		if live {
			conn.Close()
		}
	}
}

// sendSequenced ships a data-bearing frame over a session link: the
// frame is stamped with the session id, the next send sequence and the
// piggybacked cumulative ack, retained until acked, and written to the
// live conn — or merely queued while the link is suspended, to be
// replayed by the resume handshake. With the grace window off this is
// exactly the legacy l.write. A non-nil error is a permanent link
// failure the caller must escalate.
func (n *Node) sendSequenced(l *link, f *frame) error {
	if l.sess.sid == 0 {
		return l.write(f)
	}
	l.wmu.Lock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.wmu.Unlock()
		return fmt.Errorf("netcluster: node %d: link to node %d closed", n.id, l.peer)
	}
	l.sendSeq++
	f.Session = l.sess.sid
	f.Seq = l.sendSeq
	f.Ack = l.recvSeq
	l.retained = append(l.retained, f)
	overflow := len(l.retained) > n.cfg.MaxRetainedFrames
	suspended := l.suspended
	conn := l.conn
	l.mu.Unlock()
	if overflow {
		l.wmu.Unlock()
		return fmt.Errorf("netcluster: node %d: link to node %d retains %d unacked frames (MaxRetainedFrames %d) — peer not acking",
			n.id, l.peer, n.cfg.MaxRetainedFrames+1, n.cfg.MaxRetainedFrames)
	}
	if suspended {
		l.wmu.Unlock()
		return nil // queued; the resume replay delivers it
	}
	if l.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(l.writeTimeout))
	}
	err := writeFrame(conn, f)
	if l.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Time{})
	}
	l.wmu.Unlock()
	if err != nil {
		// The frame is retained: suspend and let the replay deliver it.
		// Only a refused suspension (node closing, peer already down,
		// grace exhausted elsewhere) leaves a failure for the caller.
		if n.suspendLink(l, conn, err) {
			return nil
		}
		if n.isClosing() || l.isClosed() {
			return nil
		}
		return err
	}
	return nil
}

// linkTrouble routes a detected link failure: absorbed into a suspension
// when the grace window applies, escalated through the historical
// linkFailed path otherwise. Returns true when absorbed.
func (n *Node) linkTrouble(l *link, conn net.Conn, err error) bool {
	if l.sess.sid == 0 || !n.graceOn() {
		n.linkFailed(l.peer, err)
		return false
	}
	return n.suspendLink(l, conn, err)
}

// suspendLink moves a link into the reconnect grace window: the dead
// conn closes, state and the retained ring survive, and either the
// dialer's reconnect loop or the acceptor's grace watcher takes over.
// Idempotent per conn incarnation: late reports against an already
// replaced or suspended conn are absorbed silently.
func (n *Node) suspendLink(l *link, conn net.Conn, cause error) bool {
	if n.isClosing() || n.isDown(l.peer) {
		return false
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	if l.suspended || l.conn != conn {
		l.mu.Unlock()
		return true // someone already handled this incarnation
	}
	l.suspended = true
	l.flap++
	flap := l.flap
	l.mu.Unlock()
	conn.Close()
	n.linkFlaps.Add(1)
	n.wg.Add(1)
	if l.sess.dialer {
		go n.reconnectLoop(l, flap, cause)
	} else {
		go n.graceWatch(l, flap)
	}
	return true
}

// escalateLink ends a grace window that failed to heal: the link closes
// for good and the failure surfaces through the historical path —
// KindPeerDown under NotifyFailures, a poisoned inbox otherwise.
func (n *Node) escalateLink(l *link, err error) {
	l.close()
	if n.isClosing() || n.isDown(l.peer) {
		return
	}
	n.linkFailed(l.peer, err)
}

// reconnectLoop is the dialer side of a suspended link: re-dial the
// peer's listen address with the join path's exponential backoff until
// the resume handshake succeeds or the grace window expires.
func (n *Node) reconnectLoop(l *link, flap int, cause error) {
	defer n.wg.Done()
	deadline := time.Now().Add(n.cfg.LinkGrace)
	rng := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(l.peer)<<20 ^ int64(n.id)))
	lastErr := cause
	for attempt := 0; ; attempt++ {
		if n.isClosing() || l.isClosed() || n.isDown(l.peer) || !n.stillSuspended(l, flap) {
			return
		}
		if attempt > 0 {
			d := backoffDelay(attempt-1, dialBackoffBase, dialBackoffCap, rng)
			if until := time.Until(deadline); d > until {
				d = until
			}
			if d > 0 {
				select {
				case <-n.done:
					return
				case <-time.After(d):
				}
			}
		}
		if time.Now().After(deadline) {
			n.escalateLink(l, fmt.Errorf("netcluster: node %d: link to node %d did not recover within LinkGrace %s: %w",
				n.id, l.peer, n.cfg.LinkGrace, lastErr))
			return
		}
		conn, err := net.DialTimeout("tcp", l.sess.addr, dialBackoffCap)
		if err != nil {
			lastErr = err
			continue
		}
		conn = n.cfg.wrapConn(conn)
		perm, err := n.tryLinkResume(l, flap, conn)
		if err == nil {
			return
		}
		conn.Close()
		if perm {
			n.escalateLink(l, fmt.Errorf("netcluster: node %d: link to node %d cannot resume: %w", n.id, l.peer, err))
			return
		}
		lastErr = err
	}
}

func (n *Node) stillSuspended(l *link, flap int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.suspended && l.flap == flap && !l.closed
}

// graceWatch is the acceptor side of a suspended link: it cannot re-dial
// (the peer holds the listen address), so it waits out the grace window
// and escalates if the dialer never resumed this suspension.
func (n *Node) graceWatch(l *link, flap int) {
	defer n.wg.Done()
	select {
	case <-n.done:
		return
	case <-time.After(n.cfg.LinkGrace):
	}
	if n.stillSuspended(l, flap) {
		n.escalateLink(l, fmt.Errorf("netcluster: node %d: link to node %d did not resume within LinkGrace %s",
			n.id, l.peer, n.cfg.LinkGrace))
	}
}

// tryLinkResume runs one dialer-side resume handshake over a fresh conn
// and, on success, commits it: swap the conn in, replay the unacked
// tail, restart the link loops. The returned bool marks a permanent
// refusal (retrying cannot help).
func (n *Node) tryLinkResume(l *link, flap int, conn net.Conn) (bool, error) {
	// Track the conn so shutdown can sever a handshake blocked on a hung
	// peer rather than waiting out the read deadline.
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return true, cluster.ErrClosed
	}
	n.pending[conn] = struct{}{}
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.pending, conn)
		n.mu.Unlock()
	}()

	req := &frame{
		Ctrl: ctrlLinkResume, From: int32(n.id),
		Session: l.sess.sid, Ack: l.loadRecvSeq(), Fingerprint: n.cfg.Fingerprint,
	}
	if err := writeFrame(conn, req); err != nil {
		return false, err
	}
	conn.SetReadDeadline(time.Now().Add(n.cfg.JoinTimeout))
	f, err := readFrame(conn, n.cfg.MaxFrameBytes)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		return false, err
	}
	if f.Ctrl != ctrlLinkResumeAck {
		return false, fmt.Errorf("unexpected resume reply ctrl %d", f.Ctrl)
	}
	if f.Err != "" {
		return true, fmt.Errorf("peer refused link resume: %s", f.Err)
	}
	if err := n.resumeLink(l, flap, conn, f.Ack); err != nil {
		return false, err
	}
	return false, nil
}

// resumeLink commits a completed resume handshake on either side: under
// the write mutex (so queued senders line up behind the replay) the
// fresh conn is swapped in, retained frames the peer already delivered
// are pruned, the rest are replayed in sequence order, and fresh
// read/heartbeat loops start. flap >= 0 requires the suspension
// incarnation to match (the dialer side); -1 skips the check (the
// acceptor side, which may be resuming a suspension it created itself an
// instant ago in acceptLinkResume).
func (n *Node) resumeLink(l *link, flap int, conn net.Conn, peerAck uint64) error {
	l.wmu.Lock()
	l.mu.Lock()
	if l.closed || !l.suspended || (flap >= 0 && l.flap != flap) {
		l.mu.Unlock()
		l.wmu.Unlock()
		return fmt.Errorf("link no longer awaiting this resume")
	}
	l.pruneLocked(peerAck)
	replay := append([]*frame(nil), l.retained...)
	l.conn = conn
	l.suspended = false
	l.lastSeen = time.Now()
	ack := l.recvSeq
	l.mu.Unlock()
	for _, f := range replay {
		f.Ack = ack
		if l.writeTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(l.writeTimeout))
		}
		err := writeFrame(conn, f)
		if l.writeTimeout > 0 {
			conn.SetWriteDeadline(time.Time{})
		}
		if err != nil {
			// The fresh conn died mid-replay: re-suspend (same flap, so a
			// dialer's reconnect loop keeps driving) and report transient.
			l.mu.Lock()
			l.suspended = true
			l.mu.Unlock()
			l.wmu.Unlock()
			return fmt.Errorf("replay to node %d: %w", l.peer, err)
		}
	}
	l.wmu.Unlock()
	n.replayedFrames.Add(int64(len(replay)))
	n.startLinkLoops(l, conn)
	return nil
}

// findSession locates the live link matching a resume request.
func (n *Node) findSession(peer int, sid uint64) *link {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.all {
		if l.peer == peer && l.sess.sid == sid && !l.isClosed() {
			return l
		}
	}
	return nil
}

// acceptLinkResume is the acceptor side of the resume handshake (the
// peer re-dialed our listener with ctrlLinkResume). An unknown session
// is refused permanently — the dialer escalates immediately instead of
// burning its grace window on a peer that has forgotten the link (e.g. a
// crash-restarted process, which must go through the rejoin path).
func (n *Node) acceptLinkResume(conn net.Conn, f *frame) {
	reject := func(reason string) {
		writeFrame(conn, &frame{Ctrl: ctrlLinkResumeAck, Err: reason})
		conn.Close()
	}
	if !n.graceOn() {
		reject("link grace window disabled on this node")
		return
	}
	if f.Fingerprint != n.cfg.Fingerprint {
		reject(fmt.Sprintf("fingerprint %x does not match ours %x", f.Fingerprint, n.cfg.Fingerprint))
		return
	}
	peer := int(f.From)
	if n.isDown(peer) {
		reject(fmt.Sprintf("node %d was declared dead", peer))
		return
	}
	l := n.findSession(peer, f.Session)
	if l == nil || f.Session == 0 {
		reject(fmt.Sprintf("unknown link session %x from node %d", f.Session, peer))
		return
	}
	// If we have not yet noticed the drop ourselves, suspend the stale
	// conn now; its loops see a conn mismatch and exit quietly.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		reject("link closed")
		return
	}
	if !l.suspended {
		old := l.conn
		l.suspended = true
		l.flap++
		flap := l.flap
		l.mu.Unlock()
		old.Close()
		n.linkFlaps.Add(1)
		// Arm a watcher in case the commit below fails and the dialer
		// never comes back: the suspension must still expire into the
		// ordinary failure path rather than hang the protocol.
		n.wg.Add(1)
		go n.graceWatch(l, flap)
	} else {
		l.mu.Unlock()
	}
	ack := &frame{
		Ctrl: ctrlLinkResumeAck, From: int32(n.id),
		Session: l.sess.sid, Ack: l.loadRecvSeq(), Fingerprint: n.cfg.Fingerprint,
	}
	if err := writeFrame(conn, ack); err != nil {
		conn.Close()
		return // still suspended; the dialer retries or grace expires
	}
	if err := n.resumeLink(l, -1, conn, f.Ack); err != nil {
		conn.Close()
	}
}
