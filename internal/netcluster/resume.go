package netcluster

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/cluster"
)

// Resume rebuilds the master's transport endpoint after a crash-restart:
// bind the (stable) listen address, install the checkpointed cluster size
// and address book, and start accepting worker rejoins. The node begins
// with no live links — each orphaned worker re-establishes its master link
// through RejoinMaster, surfacing here as a ctrlRejoinReq handshake and an
// in-band cluster.KindPeerUp event the resume protocol collects.
func Resume(addr string, size int, peers []string, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if size < 2 {
		return nil, fmt.Errorf("netcluster: resume with cluster size %d", size)
	}
	if len(peers) < size {
		return nil, fmt.Errorf("netcluster: resume address book has %d entries for size %d", len(peers), size)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netcluster: resume listen %s: %w", addr, err)
	}
	book := append([]string(nil), peers...)
	book[0] = ln.Addr().String()
	n := &Node{
		id:      0,
		size:    size,
		cfg:     cfg,
		inbox:   newInbox(),
		links:   make(map[int]*link),
		peers:   book,
		ln:      ln,
		tr:      cluster.NewTraffic(size),
		pending: make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// acceptRejoin re-admits a worker that already holds a node id (a worker
// orphaned by a master crash, reconnecting to a Resume'd master). The
// handshake mirrors acceptJoin — welcome, ack, commit — but assigns no new
// id and grows nothing; it only replaces the dead master↔worker link and
// refreshes the worker's address-book entry. Refusals are written back with
// a reason so the worker can tell a permanent rejection (wrong fingerprint,
// excluded from membership) from a master that simply isn't up yet.
func (n *Node) acceptRejoin(conn net.Conn, f *frame) {
	reject := func(reason string) {
		writeFrame(conn, &frame{Ctrl: ctrlWelcomeAck, Err: reason})
		conn.Close()
	}
	if f.Fingerprint != n.cfg.Fingerprint {
		reject(fmt.Sprintf("fingerprint %x does not match master %x (different dataset or settings loaded)",
			f.Fingerprint, n.cfg.Fingerprint))
		return
	}
	id := int(f.From)
	n.joinMu.Lock() // serialise with joins and concurrent rejoins
	defer n.joinMu.Unlock()
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		conn.Close()
		return
	}
	if id <= 0 || id >= n.size {
		n.mu.Unlock()
		reject(fmt.Sprintf("unknown node id %d (cluster size %d)", id, n.size))
		return
	}
	if n.down[id] {
		// Membership recovery has already redistributed this worker's
		// share; re-admitting it with stale state would corrupt the run.
		// (If it still wants in, it can come back through the join path as
		// a fresh worker.)
		n.mu.Unlock()
		reject(fmt.Sprintf("node %d was declared dead; rejoin refused", id))
		return
	}
	stale := n.links[id]
	if stale != nil {
		delete(n.links, id) // the worker knows its side is dead; replace
	}
	n.mu.Unlock()
	if stale != nil {
		stale.close()
	}

	n.mu.Lock()
	welcome := &frame{
		Ctrl:        ctrlWelcome,
		NodeID:      int32(id),
		Nodes:       int32(n.size),
		Peers:       append([]string(nil), n.peers...),
		Fingerprint: n.cfg.Fingerprint,
		Model:       n.cfg.Model,
		Codec:       codecByte(n.cfg.Codec),
	}
	n.mu.Unlock()
	if err := writeFrame(conn, welcome); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Now().Add(n.cfg.JoinTimeout))
	ack, err := readFrame(conn, n.cfg.MaxFrameBytes)
	conn.SetReadDeadline(time.Time{})
	if err != nil || ack.Ctrl != ctrlWelcomeAck || ack.Err != "" || ack.Fingerprint != n.cfg.Fingerprint || ack.Codec != codecByte(n.cfg.Codec) {
		conn.Close()
		return
	}
	if f.Addr != "" {
		n.mu.Lock()
		n.peers[id] = f.Addr
		n.mu.Unlock()
	}
	if _, err := n.registerLink(id, conn, true, n.acceptedSession(f)); err != nil {
		conn.Close()
		return
	}
	n.inbox.put(cluster.Message{From: id, To: n.id, Kind: cluster.KindPeerUp})
}

// RejoinMaster re-establishes this worker's master link after the master
// was declared dead: dial the master's address-book entry with exponential
// backoff + jitter until timeout, run the fingerprint-checked rejoin
// handshake, and swap the fresh link in (clearing the master's down state
// so a later master death is detected all over again). It returns the
// number of dial attempts made. A rejection by a live master — wrong
// fingerprint, or this worker already excluded from membership — is
// permanent and returns immediately; connection errors keep retrying, since
// a restarting master is exactly a temporarily unreachable address.
func (n *Node) RejoinMaster(timeout time.Duration) (int, error) {
	n.mu.Lock()
	addr := ""
	if len(n.peers) > 0 {
		addr = n.peers[0]
	}
	n.mu.Unlock()
	if addr == "" {
		return 0, fmt.Errorf("netcluster: node %d: master address unknown (master did not listen); cannot rejoin", n.id)
	}
	deadline := time.Now().Add(timeout)
	rng := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(n.id)))
	var lastErr error
	for attempt := 0; ; attempt++ {
		if n.isClosing() {
			return attempt, cluster.ErrClosed
		}
		if attempt > 0 {
			d := backoffDelay(attempt-1, dialBackoffBase, dialBackoffCap, rng)
			if until := time.Until(deadline); d > until {
				d = until
			}
			time.Sleep(d)
		}
		if time.Now().After(deadline) {
			if lastErr == nil {
				lastErr = fmt.Errorf("timed out")
			}
			return attempt, fmt.Errorf("netcluster: node %d: rejoin master at %s: %w", n.id, addr, lastErr)
		}
		perm, err := n.tryRejoin(addr)
		if err == nil {
			return attempt + 1, nil
		}
		if perm {
			return attempt + 1, fmt.Errorf("netcluster: node %d: rejoin master at %s: %w", n.id, addr, err)
		}
		lastErr = err
	}
}

// tryRejoin runs one rejoin handshake attempt. The returned bool marks a
// permanent refusal (retrying cannot help).
func (n *Node) tryRejoin(addr string) (bool, error) {
	conn, err := net.DialTimeout("tcp", addr, dialBackoffCap)
	if err != nil {
		return false, err
	}
	conn = n.cfg.wrapConn(conn)
	sess := n.newSession(addr)
	req := &frame{Ctrl: ctrlRejoinReq, From: int32(n.id), Addr: n.Addr(), Fingerprint: n.cfg.Fingerprint, Session: sess.sid}
	if err := writeFrame(conn, req); err != nil {
		conn.Close()
		return false, err
	}
	conn.SetReadDeadline(time.Now().Add(n.cfg.JoinTimeout))
	f, err := readFrame(conn, n.cfg.MaxFrameBytes)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return false, err
	}
	if f.Ctrl == ctrlWelcomeAck && f.Err != "" {
		conn.Close()
		return true, fmt.Errorf("master refused rejoin: %s", f.Err)
	}
	if f.Ctrl != ctrlWelcome {
		conn.Close()
		return false, fmt.Errorf("unexpected rejoin reply ctrl %d", f.Ctrl)
	}
	if f.Fingerprint != n.cfg.Fingerprint {
		conn.Close()
		return true, fmt.Errorf("master fingerprint %x does not match ours %x", f.Fingerprint, n.cfg.Fingerprint)
	}
	codec, ok := codecFromByte(f.Codec)
	if !ok {
		conn.Close()
		return true, fmt.Errorf("restarted master offered codec byte %d this build does not speak — mixed-version cluster refused", f.Codec)
	}
	n.cfg.Codec = codec // re-adopt: the (possibly re-flagged) master rules
	if err := writeFrame(conn, &frame{Ctrl: ctrlWelcomeAck, From: int32(n.id), Fingerprint: n.cfg.Fingerprint, Codec: codecByte(codec)}); err != nil {
		conn.Close()
		return false, err
	}

	// Commit: clear the master's dead state and swap the new link in. The
	// down flag must clear so sends flow again and so the *next* master
	// death raises a fresh KindPeerDown.
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		conn.Close()
		return true, cluster.ErrClosed
	}
	delete(n.down, 0)
	delete(n.departed, 0)
	if old := n.links[0]; old != nil {
		delete(n.links, 0)
		defer old.close()
	}
	if int(f.Nodes) > n.size {
		n.size = int(f.Nodes)
		n.peers = f.Peers
	}
	n.mu.Unlock()
	n.trMu.Lock()
	n.tr.Grow(int(f.Nodes))
	n.trMu.Unlock()
	if _, err := n.registerLink(0, conn, true, sess); err != nil {
		conn.Close()
		return true, err
	}
	return false, nil
}

// Linked reports whether this node currently holds a live send link to
// peer. The resume protocol uses it to tell which expected members still
// have to rejoin; transports without explicit links (the simulated machine)
// simply don't implement it.
func (n *Node) Linked(peer int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[peer]
	return ok && !l.isClosed()
}

// AddressBook returns a copy of the cluster address book and the current
// cluster size — the membership a checkpoint must persist for workers to
// find a restarted master (and for it to find them).
func (n *Node) AddressBook() ([]string, int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.peers...), n.size
}
