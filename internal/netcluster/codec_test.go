package netcluster

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestCodecGobCluster pins the -wirecodec gob escape hatch: a cluster
// negotiated onto the legacy codec exchanges payloads intact and accounts
// gob-sized frames.
func TestCodecGobCluster(t *testing.T) {
	master, workers := startCluster(t, 1, Config{Codec: cluster.CodecGob})
	if err := master.Send(1, 7, payload{N: 5, S: "legacy"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	msg, err := workers[1].ReceiveCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Codec != cluster.CodecGob {
		t.Fatalf("delivered codec %v, want gob", msg.Codec)
	}
	var pl payload
	if err := msg.Decode(&pl); err != nil {
		t.Fatal(err)
	}
	if pl.N != 5 || pl.S != "legacy" {
		t.Fatalf("payload corrupted: %+v", pl)
	}
	enc, err := cluster.EncodePayload(cluster.CodecGob, payload{N: 5, S: "legacy"})
	if err != nil {
		t.Fatal(err)
	}
	if got := master.Traffic().LinkBytes(0, 1); got != int64(len(enc)) {
		t.Fatalf("link bytes %d, want gob frame size %d", got, len(enc))
	}
}

// TestSimTCPByteParity pins the cost-model honesty property the codec
// work hinges on: the same logical message, under the same codec, must
// account the same frame bytes on the simulated transport and on TCP —
// otherwise sim-clock predictions and measured runs drift apart.
func TestSimTCPByteParity(t *testing.T) {
	for _, codec := range []cluster.Codec{cluster.CodecWire, cluster.CodecGob} {
		t.Run(codec.String(), func(t *testing.T) {
			pl := payload{N: 123456, S: "parity across transports"}

			nw := cluster.NewNetwork(2, cluster.CostModel{})
			nw.SetCodec(codec)
			if err := nw.Node(0).Send(1, 7, pl); err != nil {
				t.Fatal(err)
			}
			if _, ok := nw.Node(1).Receive(); !ok {
				t.Fatal("sim receive failed")
			}
			simBytes := nw.LinkBytes(0, 1)

			master, workers := startCluster(t, 1, Config{Codec: codec})
			if err := master.Send(1, 7, pl); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := workers[1].ReceiveCtx(ctx); err != nil {
				t.Fatal(err)
			}
			tcpBytes := master.Traffic().LinkBytes(0, 1)

			if simBytes != tcpBytes || simBytes <= 0 {
				t.Fatalf("%v: sim accounts %d bytes, TCP %d — transports disagree", codec, simBytes, tcpBytes)
			}
		})
	}
}

// TestWorkerRefusesLegacyMaster pins join-time refusal from the worker
// side: a master whose welcome carries no negotiation byte (a pre-codec
// build) must be rejected with a loud error, not decoded on faith.
func TestWorkerRefusesLegacyMaster(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() {
		_, err := ServeOn(ln, Config{Fingerprint: 7, JoinTimeout: 10 * time.Second})
		serveErr <- err
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A legacy master's welcome: right fingerprint, no codec byte.
	welcome := &frame{Ctrl: ctrlWelcome, NodeID: 1, Nodes: 2, Peers: []string{"", ln.Addr().String()}, Fingerprint: 7}
	if err := writeFrame(conn, welcome); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ack, err := readFrame(conn, 1<<20)
	if err != nil {
		t.Fatalf("reject ack: %v", err)
	}
	if ack.Ctrl != ctrlWelcomeAck || ack.Err == "" || !strings.Contains(ack.Err, "codec") {
		t.Fatalf("want codec rejection ack, got ctrl %d err %q", ack.Ctrl, ack.Err)
	}
	select {
	case err := <-serveErr:
		if err == nil || !strings.Contains(err.Error(), "mixed-version") {
			t.Fatalf("ServeOn error = %v, want mixed-version refusal", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeOn did not return")
	}
}

// TestMasterRefusesUnconfirmedCodec pins the master side: a worker whose
// join ack fails to echo the offered codec byte aborts the whole join.
func TestMasterRefusesUnconfirmedCodec(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		f, err := readFrame(conn, 1<<20)
		if err != nil || f.Ctrl != ctrlWelcome {
			return
		}
		if want := codecByte(cluster.CodecWire); f.Codec != want {
			t.Errorf("welcome codec byte %d, want %d", f.Codec, want)
		}
		// A pre-codec worker build echoes fingerprint but no codec byte.
		writeFrame(conn, &frame{Ctrl: ctrlWelcomeAck, From: f.NodeID, Fingerprint: f.Fingerprint})
	}()

	_, err = Connect([]string{ln.Addr().String()}, Config{Fingerprint: 7, JoinTimeout: 10 * time.Second})
	if err == nil || !strings.Contains(err.Error(), "mixed-version") {
		t.Fatalf("Connect error = %v, want mixed-version refusal", err)
	}
}
