package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/search"
	"repro/internal/solve"
)

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestClassifyMatchesEvaluator pins the acceptance bar: for all three paper
// datasets, the served per-rule classification answers are bit-for-bit the
// coverage bitsets search.Evaluator computes — the serving stack (snapshot
// write/read, KB rebuild, machine pool, HTTP layer) changes nothing.
func TestClassifyMatchesEvaluator(t *testing.T) {
	for _, ds := range datasets.PaperScaled(0.05, 1) {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			fp := core.Fingerprint(ds.KB, ds.Pos, ds.Neg)
			snap := NewSnapshot(ds.Name, fp, 1, ds.TrueConcept, ds.KB, ds.Budget, ds.Pos, ds.Neg)
			dir := t.TempDir()
			path, err := WriteSnapshot(dir, 1, snap)
			if err != nil {
				t.Fatal(err)
			}
			reg := NewRegistry(2)
			a, err := reg.LoadFile(SnapshotFile{Path: path, Seq: 1})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := reg.Activate(a.ID); err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(NewServer(reg))
			defer ts.Close()

			// Reference: the serial evaluator over the original dataset.
			ev := search.NewEvaluator(solve.NewMachine(ds.KB, ds.Budget), search.NewExamples(ds.Pos, ds.Neg))
			type ref struct{ pos, neg search.Bitset }
			refs := make([]ref, len(ds.TrueConcept))
			for ri := range ds.TrueConcept {
				p, n := ev.CoverageFull(&ds.TrueConcept[ri])
				refs[ri] = ref{p, n}
			}

			check := func(examples []string, isPos bool, offset int) {
				req := ClassifyRequest{Examples: examples}
				resp, body := postJSON(t, ts.Client(), ts.URL+"/classify", req)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("classify: %d %s", resp.StatusCode, body)
				}
				var cr ClassifyResponse
				if err := json.Unmarshal(body, &cr); err != nil {
					t.Fatal(err)
				}
				if len(cr.Results) != len(examples) {
					t.Fatalf("%d results for %d examples", len(cr.Results), len(examples))
				}
				for i, res := range cr.Results {
					wantAny := false
					for ri := range refs {
						var want bool
						if isPos {
							want = refs[ri].pos.Get(offset + i)
						} else {
							want = refs[ri].neg.Get(offset + i)
						}
						wantAny = wantAny || want
						if res.Rules[ri].Covered != want {
							t.Fatalf("example %s rule %d: served %v, evaluator %v",
								res.Example, ri, res.Rules[ri].Covered, want)
						}
					}
					if res.Covered != wantAny {
						t.Fatalf("example %s: served covered=%v, evaluator %v", res.Example, res.Covered, wantAny)
					}
					if res.Covered && res.Proof == nil {
						t.Fatalf("example %s covered but no proof", res.Example)
					}
					if res.Covered && res.Proof.Kind != "rule" && res.Proof.Kind != "fact" {
						t.Fatalf("example %s proof root kind %q", res.Example, res.Proof.Kind)
					}
				}
			}
			// Batch in chunks so requests stay realistic in size.
			const chunk = 64
			for lo := 0; lo < len(ds.Pos); lo += chunk {
				hi := min(lo+chunk, len(ds.Pos))
				strs := make([]string, 0, hi-lo)
				for _, e := range ds.Pos[lo:hi] {
					strs = append(strs, e.String())
				}
				check(strs, true, lo)
			}
			for lo := 0; lo < len(ds.Neg); lo += chunk {
				hi := min(lo+chunk, len(ds.Neg))
				strs := make([]string, 0, hi-lo)
				for _, e := range ds.Neg[lo:hi] {
					strs = append(strs, e.String())
				}
				check(strs, false, lo)
			}
		})
	}
}

func TestClassifyErrors(t *testing.T) {
	reg := NewRegistry(1)
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/classify", ClassifyRequest{Example: "eastbound(east1)"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no snapshot: got %d, want 503", resp.StatusCode)
	}

	snap := trainsSnapshot(t, 1, 99)
	a := reg.Add(snap, 1)
	if _, err := reg.Activate(a.ID); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []ClassifyRequest{
		{},                               // no examples
		{Example: "eastbound("},          // parse error
		{Example: "eastbound(X)"},        // not ground
		{Examples: []string{"f(a", "g"}}, // parse error in batch
	} {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/classify", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("request %+v: got %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/activate", ActivateRequest{Snapshot: "v999"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown activate: got %d, want 404", resp.StatusCode)
	}
}

// TestHotSwapUnderFire is the hot-swap satellite: N goroutines hammer
// /classify while the main goroutine flips between two snapshot versions in
// a tight loop. Run under -race in CI. Every response must be 200 and
// internally consistent with exactly one version: the rule count in the
// response identifies the snapshot that must have answered all of it.
func TestHotSwapUnderFire(t *testing.T) {
	reg := NewRegistry(4)
	// Two versions with observably different theories: v1 serves one rule,
	// v2 two (the trains concept rule twice — same answers, different
	// shape, so a response's rule count names its snapshot).
	a1 := reg.Add(trainsSnapshot(t, 1, 1), 1)
	twoRules := trainsSnapshot(t, 2, 1)
	twoRules.Theory = append(twoRules.Theory, twoRules.Theory[0])
	a2 := reg.Add(twoRules, 2)
	if len(a1.Snap.Theory) != 1 || len(a2.Snap.Theory) != 2 {
		t.Fatalf("fixture theories: %d and %d rules", len(a1.Snap.Theory), len(a2.Snap.Theory))
	}
	if _, err := reg.Activate(a1.ID); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()

	rulesOf := map[string]int{a1.ID: 1, a2.ID: 2}
	const hammers = 8
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		served   atomic.Int64
	)
	stop := make(chan struct{})
	body, _ := json.Marshal(ClassifyRequest{Examples: []string{"eastbound(east1)", "eastbound(west8)"}})
	for range hammers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(ts.URL+"/classify", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					t.Errorf("classify: %v", err)
					return
				}
				var cr ClassifyResponse
				err = json.NewDecoder(resp.Body).Decode(&cr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("classify status %d mid-swap", resp.StatusCode)
					continue
				}
				if err != nil {
					failures.Add(1)
					t.Errorf("decode: %v", err)
					continue
				}
				want, ok := rulesOf[cr.Snapshot]
				if !ok {
					failures.Add(1)
					t.Errorf("response from unknown snapshot %q", cr.Snapshot)
					continue
				}
				for _, res := range cr.Results {
					if len(res.Rules) != want {
						failures.Add(1)
						t.Errorf("snapshot %s answered %d rules, want %d — mixed versions in one response",
							cr.Snapshot, len(res.Rules), want)
					}
				}
				served.Add(1)
			}
		}()
	}
	// Flip versions as fast as the registry allows for a quarter second.
	swapUntil := time.Now().Add(250 * time.Millisecond)
	swaps := 0
	for time.Now().Before(swapUntil) {
		id := a1.ID
		if swaps%2 == 1 {
			id = a2.ID
		}
		if _, err := reg.Activate(id); err != nil {
			t.Fatal(err)
		}
		swaps++
	}
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d inconsistent or failed responses", failures.Load())
	}
	if served.Load() == 0 || swaps < 2 {
		t.Fatalf("test did not exercise the swap: %d responses, %d swaps", served.Load(), swaps)
	}
	t.Logf("hot-swap: %d responses across %d swaps, zero failures", served.Load(), swaps)
}

// TestWatchFollowsPublishes runs the watcher against a directory a
// publisher is writing into, checking the registry tracks the newest
// version.
func TestWatchFollowsPublishes(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	swapped := make(chan *Artifact, 16)
	done := make(chan error, 1)
	go func() {
		done <- reg.Watch(ctx, dir, 5*time.Millisecond, func(a *Artifact) { swapped <- a })
	}()

	for seq := uint64(1); seq <= 3; seq++ {
		snap := trainsSnapshot(t, int(seq), int(seq))
		if _, err := WriteSnapshot(dir, seq, snap); err != nil {
			t.Fatal(err)
		}
		select {
		case a := <-swapped:
			if a.Seq != seq {
				t.Fatalf("activated seq %d, want %d", a.Seq, seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("watcher never activated seq %d", seq)
		}
		if got := reg.Active().Snap.Epoch; got != int(seq) {
			t.Fatalf("active epoch = %d, want %d", got, seq)
		}
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Watch returned %v", err)
	}
}

// TestBenchSmoke drives the load generator briefly against a real server.
func TestBenchSmoke(t *testing.T) {
	reg := NewRegistry(2)
	snap := trainsSnapshot(t, 1, 99)
	a := reg.Add(snap, 1)
	if _, err := reg.Activate(a.ID); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()

	examples := make([]string, 0, len(snap.Pos)+len(snap.Neg))
	for _, e := range snap.Pos {
		examples = append(examples, e.String())
	}
	for _, e := range snap.Neg {
		examples = append(examples, e.String())
	}
	res, err := Bench(ts.URL, examples, 2, 150*time.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("bench saw %d errors: %s", res.Errors, res)
	}
	if res.Requests == 0 || res.QPS <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible bench result: %s", res)
	}
	if _, err := Bench(ts.URL, nil, 1, time.Millisecond, false); err == nil {
		t.Fatal("Bench accepted an empty example set")
	}
	t.Logf("bench smoke: %s", res)
}
