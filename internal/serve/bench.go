package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// BenchResult is one load-generation run against a serving endpoint.
type BenchResult struct {
	Requests int
	Errors   int
	Clients  int
	Duration time.Duration
	// QPS is sustained requests per second over the whole run (all
	// clients; divide by GOMAXPROCS for QPS/core on a saturated box).
	QPS float64
	// P50/P90/P99 are end-to-end request latency percentiles.
	P50, P90, P99 time.Duration
}

// String renders the result as a one-line summary.
func (r *BenchResult) String() string {
	return fmt.Sprintf("requests=%d errors=%d clients=%d duration=%s qps=%.0f p50=%s p90=%s p99=%s",
		r.Requests, r.Errors, r.Clients, r.Duration.Round(time.Millisecond), r.QPS, r.P50, r.P90, r.P99)
}

// Bench drives sustained /classify load against baseURL from clients
// concurrent connections for duration d, cycling through the example atoms
// (one per request), and reports throughput and latency percentiles.
// withProof requests proof traces, the full production response; without,
// the response carries coverage bits only.
func Bench(baseURL string, examples []string, clients int, d time.Duration, withProof bool) (*BenchResult, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("serve: bench needs at least one example")
	}
	if clients < 1 {
		clients = 1
	}
	// Pre-marshal one request body per example; clients cycle through them.
	bodies := make([][]byte, len(examples))
	for i, e := range examples {
		b, err := json.Marshal(ClassifyRequest{Example: e, Proof: &withProof})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	transport := &http.Transport{MaxIdleConnsPerHost: clients}
	defer transport.CloseIdleConnections()
	url := baseURL + "/classify"

	var wg sync.WaitGroup
	lats := make([][]time.Duration, clients)
	errs := make([]int, clients)
	deadline := time.Now().Add(d)
	for c := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Transport: transport}
			for i := c; time.Now().Before(deadline); i++ {
				body := bodies[i%len(bodies)]
				start := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errs[c]++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[c]++
					continue
				}
				lats[c] = append(lats[c], time.Since(start))
			}
		}()
	}
	wg.Wait()

	var all []time.Duration
	res := &BenchResult{Clients: clients, Duration: d}
	for c := range clients {
		all = append(all, lats[c]...)
		res.Errors += errs[c]
	}
	res.Requests = len(all) + res.Errors
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		res.QPS = float64(len(all)) / d.Seconds()
		res.P50 = percentile(all, 50)
		res.P90 = percentile(all, 90)
		res.P99 = percentile(all, 99)
	}
	return res, nil
}

// percentile returns the p-th percentile of sorted latencies.
func percentile(sorted []time.Duration, p int) time.Duration {
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
