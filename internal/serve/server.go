package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/logic"
	"repro/internal/trace"
)

// Server is the HTTP classification service over a Registry.
//
//	POST /classify   classify example atoms against the active snapshot
//	GET  /snapshots  list loaded snapshot versions
//	POST /activate   swap the serving version (zero dropped requests)
//	GET  /healthz    liveness + active version
//
// Concurrency: a request reads the active artifact pointer once, then
// checks one machine out of that artifact's pool for its whole proof
// workload. The pool bounds concurrent provers (admission control) and the
// single pointer read makes every response internally consistent with
// exactly one snapshot version, even mid-swap.
type Server struct {
	reg *Registry
	mux *http.ServeMux
}

// NewServer builds the service over reg.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /classify", s.handleClassify)
	s.mux.HandleFunc("GET /snapshots", s.handleSnapshots)
	s.mux.HandleFunc("POST /activate", s.handleActivate)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ClassifyRequest asks whether the active theory covers each example atom
// (ground facts in logic syntax, e.g. "eastbound(east1)"). Example is a
// convenience for the single-example case; Examples takes precedence when
// both are set. Proof (default true) controls whether covered examples get
// a proof trace.
type ClassifyRequest struct {
	Example  string   `json:"example,omitempty"`
	Examples []string `json:"examples,omitempty"`
	Proof    *bool    `json:"proof,omitempty"`
}

// RuleAnswer is one theory rule's coverage answer for one example.
type RuleAnswer struct {
	Rule    string `json:"rule"`
	Covered bool   `json:"covered"`
}

// ClassifyResult is one example's classification: Covered is the theory
// answer (any rule covers), Rules the per-rule answers in acceptance order,
// and Proof the SLD proof tree behind the first covering rule
// (trace.ProofJSON shape, version trace.ProofJSONVersion).
type ClassifyResult struct {
	Example string           `json:"example"`
	Covered bool             `json:"covered"`
	Rules   []RuleAnswer     `json:"rules"`
	Proof   *trace.ProofNode `json:"proof,omitempty"`
}

// ClassifyResponse stamps the results with the snapshot version that
// produced all of them.
type ClassifyResponse struct {
	Snapshot    string           `json:"snapshot"`
	Epoch       int              `json:"epoch"`
	Dataset     string           `json:"dataset"`
	Fingerprint string           `json:"fingerprint"`
	Results     []ClassifyResult `json:"results"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	art := s.reg.Active()
	if art == nil {
		httpError(w, http.StatusServiceUnavailable, "no active snapshot")
		return
	}
	var req ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	raw := req.Examples
	if len(raw) == 0 && req.Example != "" {
		raw = []string{req.Example}
	}
	if len(raw) == 0 {
		httpError(w, http.StatusBadRequest, "no examples given")
		return
	}
	examples := make([]logic.Term, len(raw))
	for i, e := range raw {
		t, err := logic.ParseTerm(e)
		if err != nil {
			httpError(w, http.StatusBadRequest, "example %q: %v", e, err)
			return
		}
		if !t.IsGround() {
			httpError(w, http.StatusBadRequest, "example %q is not ground", e)
			return
		}
		examples[i] = t
	}
	wantProof := req.Proof == nil || *req.Proof

	resp := ClassifyResponse{
		Snapshot:    art.ID,
		Epoch:       art.Snap.Epoch,
		Dataset:     art.Snap.Name,
		Fingerprint: fmt.Sprintf("%016x", art.Snap.Fingerprint),
		Results:     make([]ClassifyResult, len(examples)),
	}
	m := art.pool.Get()
	defer art.pool.Put(m)
	for i, ex := range examples {
		res := ClassifyResult{Example: raw[i], Rules: make([]RuleAnswer, len(art.Snap.Theory))}
		for ri := range art.Snap.Theory {
			rule := &art.Snap.Theory[ri]
			covered := m.CoversExample(rule, ex)
			res.Rules[ri] = RuleAnswer{Rule: art.Rules[ri], Covered: covered}
			if covered && !res.Covered {
				res.Covered = true
				if wantProof {
					// The coverage bit is authoritative (same prover as
					// learning); the recording prover supplies the
					// explanation and agrees within budget.
					if proof, ok := m.ProveExample(rule, ex); ok {
						n := trace.NewProofNode(proof)
						res.Proof = &n
					}
				}
			}
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

// SnapshotInfo is one /snapshots row.
type SnapshotInfo struct {
	ID          string `json:"id"`
	Epoch       int    `json:"epoch"`
	Dataset     string `json:"dataset"`
	Fingerprint string `json:"fingerprint"`
	Rules       int    `json:"rules"`
	Machines    int    `json:"machines"`
	Active      bool   `json:"active"`
}

// SnapshotsResponse lists the loaded versions, ascending by sequence.
type SnapshotsResponse struct {
	Active    string         `json:"active,omitempty"`
	Snapshots []SnapshotInfo `json:"snapshots"`
}

func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	resp := SnapshotsResponse{Snapshots: []SnapshotInfo{}}
	act := s.reg.Active()
	if act != nil {
		resp.Active = act.ID
	}
	for _, a := range s.reg.List() {
		resp.Snapshots = append(resp.Snapshots, SnapshotInfo{
			ID:          a.ID,
			Epoch:       a.Snap.Epoch,
			Dataset:     a.Snap.Name,
			Fingerprint: fmt.Sprintf("%016x", a.Snap.Fingerprint),
			Rules:       len(a.Snap.Theory),
			Machines:    a.pool.Size(),
			Active:      act != nil && a.ID == act.ID,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ActivateRequest names the version to swap to.
type ActivateRequest struct {
	Snapshot string `json:"snapshot"`
}

func (s *Server) handleActivate(w http.ResponseWriter, r *http.Request) {
	var req ActivateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	a, err := s.reg.Activate(req.Snapshot)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"active": a.ID})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := map[string]string{"status": "ok"}
	if a := s.reg.Active(); a != nil {
		status["active"] = a.ID
	} else {
		status["active"] = ""
	}
	writeJSON(w, http.StatusOK, status)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
