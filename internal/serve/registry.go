package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/solve"
)

// keepArtifacts bounds how many inactive artifacts the registry retains
// after an activation: each loaded artifact holds a compiled KB and a
// machine pool, and a long learning run publishes one snapshot per epoch.
const keepArtifacts = 8

// Artifact is a snapshot compiled for serving: the indexed KB, the rule
// strings, and a private machine pool. Artifacts are immutable once built —
// hot-swap replaces the whole artifact pointer, and requests that already
// hold the old one finish on it undisturbed, so every response is
// internally consistent with exactly one snapshot version.
type Artifact struct {
	// ID is the registry-unique version name, "v<seq>".
	ID string
	// Seq is the snapshot sequence (the learning master's publish counter).
	Seq uint64
	// Snap is the loaded snapshot (terms already re-interned).
	Snap *Snapshot
	// Rules caches the canonical string of each theory rule, index-aligned
	// with Snap.Theory.
	Rules []string

	kb   *solve.KB
	pool *solve.Pool
}

// Compile builds the serving artifact for a snapshot: index the KB once,
// then build a pool of machines machines over it. machines ≤ 0 selects
// GOMAXPROCS.
func Compile(s *Snapshot, seq uint64, machines int) *Artifact {
	kb := s.KB()
	a := &Artifact{
		ID:    fmt.Sprintf("v%d", seq),
		Seq:   seq,
		Snap:  s,
		Rules: make([]string, len(s.Theory)),
		kb:    kb,
		pool:  solve.NewPool(kb, s.Budget, machines),
	}
	for i := range s.Theory {
		a.Rules[i] = s.Theory[i].String()
	}
	return a
}

// Pool returns the artifact's machine pool.
func (a *Artifact) Pool() *solve.Pool { return a.pool }

// KB returns the artifact's compiled knowledge base.
func (a *Artifact) KB() *solve.KB { return a.kb }

// Registry holds the loaded artifacts and the active one. Activation is an
// atomic pointer swap: requests read the pointer once and keep that
// artifact for their whole lifetime, so a swap never strands or mixes an
// in-flight request.
type Registry struct {
	machines int

	mu   sync.Mutex // guards arts and activation ordering
	arts map[string]*Artifact

	active atomic.Pointer[Artifact]
}

// NewRegistry returns an empty registry whose artifacts get pools of
// machines machines (≤0: GOMAXPROCS).
func NewRegistry(machines int) *Registry {
	return &Registry{machines: machines, arts: make(map[string]*Artifact)}
}

// Add compiles and registers a snapshot under sequence seq, returning the
// artifact (or the already-registered one of the same ID).
func (r *Registry) Add(s *Snapshot, seq uint64) *Artifact {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := fmt.Sprintf("v%d", seq)
	if a, ok := r.arts[id]; ok {
		return a
	}
	a := Compile(s, seq, r.machines)
	r.arts[a.ID] = a
	return a
}

// LoadFile reads, compiles and registers one snapshot file.
func (r *Registry) LoadFile(f SnapshotFile) (*Artifact, error) {
	s, err := ReadSnapshot(f.Path)
	if err != nil {
		return nil, err
	}
	return r.Add(s, f.Seq), nil
}

// Activate makes the artifact with the given ID the serving version.
func (r *Registry) Activate(id string) (*Artifact, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.arts[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown snapshot %q", id)
	}
	r.active.Store(a)
	r.pruneLocked()
	return a, nil
}

// Active returns the serving artifact, or nil before the first activation.
func (r *Registry) Active() *Artifact { return r.active.Load() }

// List returns the registered artifacts in ascending sequence order.
func (r *Registry) List() []*Artifact {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Artifact, 0, len(r.arts))
	for _, a := range r.arts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// pruneLocked drops the lowest-sequence inactive artifacts beyond
// keepArtifacts. In-flight requests holding a dropped artifact finish
// normally — dropping only forgets the registry's reference.
func (r *Registry) pruneLocked() {
	if len(r.arts) <= keepArtifacts {
		return
	}
	act := r.active.Load()
	var all []*Artifact
	for _, a := range r.arts {
		all = append(all, a)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	excess := len(all) - keepArtifacts
	for _, a := range all {
		if excess == 0 {
			break
		}
		if act != nil && a.ID == act.ID {
			continue
		}
		delete(r.arts, a.ID)
		excess--
	}
}

// Watch polls dir for snapshot files until ctx is done, loading unseen
// sequences and activating the newest — the serving half of a live
// `-publish` learning run. Files that fail to load (e.g. a sequence torn by
// a dying writer; the atomic write protocol makes that unlikely) are
// skipped and retried on the next poll. onSwap, when non-nil, observes
// every activation.
func (r *Registry) Watch(ctx context.Context, dir string, every time.Duration, onSwap func(*Artifact)) error {
	if every <= 0 {
		every = 200 * time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		if err := r.pollDir(dir, onSwap); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// pollDir is one Watch scan: load news, activate the newest.
func (r *Registry) pollDir(dir string, onSwap func(*Artifact)) error {
	files, err := ListSnapshotFiles(dir)
	if err != nil {
		return err
	}
	act := r.Active()
	var newest *Artifact
	for _, f := range files {
		if act != nil && f.Seq <= act.Seq {
			continue
		}
		r.mu.Lock()
		_, loaded := r.arts[fmt.Sprintf("v%d", f.Seq)]
		r.mu.Unlock()
		if loaded {
			continue
		}
		a, err := r.LoadFile(f)
		if err != nil {
			continue // torn or in-flight write: retry next poll
		}
		if newest == nil || a.Seq > newest.Seq {
			newest = a
		}
	}
	if newest != nil && (act == nil || newest.Seq > act.Seq) {
		if _, err := r.Activate(newest.ID); err == nil && onSwap != nil {
			onSwap(newest)
		}
	}
	return nil
}
