package serve

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/logic"
	"repro/internal/solve"
	"repro/internal/wire"
)

func trainsSnapshot(t *testing.T, epoch int, nRules int) *Snapshot {
	t.Helper()
	ds, err := datasets.ByName("trains", 1)
	if err != nil {
		t.Fatal(err)
	}
	theory := ds.TrueConcept
	if nRules < len(theory) {
		theory = theory[:nRules]
	}
	fp := core.Fingerprint(ds.KB, ds.Pos, ds.Neg)
	return NewSnapshot(ds.Name, fp, epoch, theory, ds.KB, ds.Budget, ds.Pos, ds.Neg)
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := trainsSnapshot(t, 3, 99)
	path, err := WriteSnapshot(dir, 7, snap)
	if err != nil {
		t.Fatal(err)
	}
	if want := SnapshotPath(dir, 7); path != want {
		t.Fatalf("path = %q, want %q", path, want)
	}
	if got := SeqFromPath(path); got != 7 {
		t.Fatalf("SeqFromPath = %d, want 7", got)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != snap.Name || got.Fingerprint != snap.Fingerprint || got.Epoch != snap.Epoch {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if len(got.Theory) != len(snap.Theory) || len(got.Clauses) != len(snap.Clauses) {
		t.Fatalf("size mismatch: %d/%d theory, %d/%d clauses",
			len(got.Theory), len(snap.Theory), len(got.Clauses), len(snap.Clauses))
	}
	for i := range snap.Theory {
		if got.Theory[i].String() != snap.Theory[i].String() {
			t.Fatalf("theory[%d] = %v, want %v", i, got.Theory[i], snap.Theory[i])
		}
	}
	// The re-read KB must answer exactly like the original: same covered
	// bits for every example under every rule.
	m1 := solve.NewMachine(snap.KB(), snap.Budget)
	m2 := solve.NewMachine(got.KB(), got.Budget)
	for ri := range snap.Theory {
		for _, ex := range append(append([]logic.Term{}, snap.Pos...), snap.Neg...) {
			if m1.CoversExample(&snap.Theory[ri], ex) != m2.CoversExample(&got.Theory[ri], ex) {
				t.Fatalf("coverage diverged after round trip: rule %d example %v", ri, ex)
			}
		}
	}
}

// TestSnapshotRebindsForeignSymbols simulates loading a snapshot written by
// a process with a different intern table: the stored table is padded and
// shifted, and every stored term renumbered to match. ReadSnapshot must
// rewrite all terms back into this process's numbering.
func TestSnapshotRebindsForeignSymbols(t *testing.T) {
	dir := t.TempDir()
	snap := trainsSnapshot(t, 1, 99)

	// Forge the foreign numbering: symbol i becomes i+3 behind three dummy
	// names this process never interned in those slots.
	shift := 3
	foreign := &Snapshot{
		Name:        snap.Name,
		Fingerprint: snap.Fingerprint,
		Epoch:       snap.Epoch,
		Budget:      snap.Budget,
		Symbols:     append([]string{"zz_pad_a", "zz_pad_b", "zz_pad_c"}, snap.Symbols...),
	}
	shiftMap := make([]logic.Symbol, len(snap.Symbols))
	for i := range shiftMap {
		shiftMap[i] = logic.Symbol(i + shift)
	}
	for _, c := range snap.Theory {
		foreign.Theory = append(foreign.Theory, remapClause(c, shiftMap))
	}
	for _, c := range snap.Clauses {
		foreign.Clauses = append(foreign.Clauses, remapClause(c, shiftMap))
	}
	for _, e := range snap.Pos {
		foreign.Pos = append(foreign.Pos, remapTerm(e, shiftMap))
	}
	for _, e := range snap.Neg {
		foreign.Neg = append(foreign.Neg, remapTerm(e, shiftMap))
	}

	path, err := WriteSnapshot(dir, 1, foreign)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap.Theory {
		if got.Theory[i].String() != snap.Theory[i].String() {
			t.Fatalf("theory[%d] = %v, want %v", i, got.Theory[i], snap.Theory[i])
		}
	}
	for i := range snap.Pos {
		if !logic.Equal(got.Pos[i], snap.Pos[i]) {
			t.Fatalf("pos[%d] = %v, want %v", i, got.Pos[i], snap.Pos[i])
		}
	}
	m := solve.NewMachine(got.KB(), got.Budget)
	covered := 0
	for ri := range got.Theory {
		for _, ex := range got.Pos {
			if m.CoversExample(&got.Theory[ri], ex) {
				covered++
			}
		}
	}
	if covered == 0 {
		t.Fatal("rebound snapshot covers nothing — symbol rewrite broken")
	}
}

func TestReadSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	snap := trainsSnapshot(t, 1, 1)
	path, err := WriteSnapshot(dir, 1, snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	bad := filepath.Join(dir, "snap-0000000000000002.isnap")
	if err := os.WriteFile(bad, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bad); err == nil {
		t.Fatal("corrupted snapshot read succeeded")
	}
	files, err := ListSnapshotFiles(dir)
	if err != nil || len(files) != 2 {
		t.Fatalf("ListSnapshotFiles = %v, %v", files, err)
	}
}

// TestPublisherWithLearn pins the learn-then-serve pipeline in-process: a
// simulated-cluster run with a Publish hook must emit one snapshot per
// completed epoch plus the final theory, and the last snapshot's theory
// must be exactly the learned theory.
func TestPublisherWithLearn(t *testing.T) {
	dir := t.TempDir()
	ds, err := datasets.ByName("trains", 1)
	if err != nil {
		t.Fatal(err)
	}
	fp := core.Fingerprint(ds.KB, ds.Pos, ds.Neg)
	met, err := core.Learn(ds.KB, ds.Pos, ds.Neg, ds.Modes, core.Config{
		Workers: 2,
		Seed:    1,
		Search:  ds.Search,
		Bottom:  ds.Bottom,
		Budget:  ds.Budget,
		Publish: Publisher(dir, ds.Name, fp, ds.KB, ds.Budget, ds.Pos, ds.Neg),
	})
	if err != nil {
		t.Fatal(err)
	}
	files, err := ListSnapshotFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no snapshots published")
	}
	if len(files) != met.Epochs {
		t.Fatalf("published %d snapshots over %d epochs", len(files), met.Epochs)
	}
	last, err := ReadSnapshot(files[len(files)-1].Path)
	if err != nil {
		t.Fatal(err)
	}
	if last.Epoch != met.Epochs {
		t.Fatalf("last snapshot epoch = %d, want %d", last.Epoch, met.Epochs)
	}
	if len(last.Theory) != len(met.Theory) {
		t.Fatalf("last snapshot has %d rules, learned theory has %d", len(last.Theory), len(met.Theory))
	}
	for i := range met.Theory {
		if last.Theory[i].String() != met.Theory[i].String() {
			t.Fatalf("rule %d drifted: %v vs %v", i, last.Theory[i], met.Theory[i])
		}
	}
	if last.Fingerprint != fp {
		t.Fatalf("fingerprint = %x, want %x", last.Fingerprint, fp)
	}
}

// TestSnapshotCompressed pins the on-disk format introduced with the wire
// envelope: a trains snapshot is well past CompressMin, so the ckpt
// payload must carry the flate flag and undercut the raw gob encoding.
func TestSnapshotCompressed(t *testing.T) {
	dir := t.TempDir()
	snap := trainsSnapshot(t, 1, 99)
	path, err := WriteSnapshot(dir, 1, snap)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ckpt.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) == 0 || payload[0] != 0x01 {
		t.Fatalf("snapshot envelope flag %#x, want flate (0x01)", payload[0])
	}
	raw, err := wire.Decompress(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) >= len(raw)+1 {
		t.Fatalf("compression did not shrink: %d envelope vs %d raw", len(payload), len(raw))
	}
}

// TestReadSnapshotLegacyUncompressed pins backward compatibility: a
// snapshot written before the compression envelope — the bare gob stream
// inside the ckpt frame — must still load.
func TestReadSnapshotLegacyUncompressed(t *testing.T) {
	dir := t.TempDir()
	snap := trainsSnapshot(t, 2, 99)

	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(snapshotFormat); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(snap); err != nil {
		t.Fatal(err)
	}
	path := SnapshotPath(dir, 2)
	if err := ckpt.WriteFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	if got.Name != snap.Name || got.Epoch != 2 || len(got.Theory) != len(snap.Theory) {
		t.Fatalf("legacy snapshot decoded wrong: %+v", got)
	}
}
