package serve

import (
	"repro/internal/logic"
	"repro/internal/solve"
)

// Publisher returns a core.Config.Publish hook that writes a serving
// snapshot under dir at every completed-epoch boundary: sequence numbers
// continue after any snapshots already in dir (a resumed learning run keeps
// publishing monotonically), and each snapshot carries the full task — kb,
// budget, examples, dataset identity — plus the theory as of that epoch.
//
// The hook runs on the learning master's goroutine at a cluster-quiescent
// boundary; the write is atomic and CRC-framed (ckpt.WriteFile), so a
// concurrently watching server never observes a torn artifact.
func Publisher(dir, name string, fp uint64, kb *solve.KB, budget solve.Budget, pos, neg []logic.Term) func(int, []logic.Clause) error {
	var seq uint64
	if files, err := ListSnapshotFiles(dir); err == nil && len(files) > 0 {
		seq = files[len(files)-1].Seq
	}
	return func(epochs int, theory []logic.Clause) error {
		seq++
		snap := NewSnapshot(name, fp, epochs, theory, kb, budget, pos, neg)
		_, err := WriteSnapshot(dir, seq, snap)
		return err
	}
}
