// Package serve is the learn-then-serve runtime: it compiles a learned
// theory plus its background knowledge into an immutable, versioned
// snapshot artifact, and serves concurrent classification over HTTP with
// proof-trace explanations, hot-swapping to newer snapshots with zero
// dropped requests. The learning master publishes a snapshot at every epoch
// boundary (core.Config.Publish / `p2mdie -publish`), so a running service
// tracks a live learning run.
package serve

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/logic"
	"repro/internal/solve"
	"repro/internal/wire"
)

// snapshotFormat versions the gob payload inside the ckpt-framed file.
const snapshotFormat = 1

// snapshotPrefix/Suffix name snapshot files: snap-<seq>.isnap, seq
// zero-padded so lexical and numeric order agree.
const (
	snapshotPrefix = "snap-"
	snapshotSuffix = ".isnap"
)

// Snapshot is one immutable serving artifact: everything a fresh process
// needs to answer classification queries for a learned theory — no source
// re-parsing, no dataset regeneration.
//
// Interned symbols are process-local, so terms are not portable as raw
// gob: Symbols carries the writing process's symbol names in intern order,
// and ReadSnapshot re-interns them and rewrites every term into the reading
// process's table. Pos and Neg carry the training example atoms; they are
// not needed to serve, but make a snapshot self-contained for parity
// checking and load generation.
type Snapshot struct {
	// Name is the dataset name the theory was learned on.
	Name string
	// Fingerprint is core.Fingerprint of the learning task, the identity
	// link between a serving artifact and the run that produced it.
	Fingerprint uint64
	// Epoch is the number of completed learning epochs behind Theory.
	Epoch int
	// Theory is the learned rule set in acceptance order.
	Theory []logic.Clause
	// Clauses is the full background knowledge (solve.KB.AllClauses order).
	Clauses []logic.Clause
	// Budget bounds serving-time proofs, same as learning-time coverage.
	Budget solve.Budget
	// Pos and Neg are the training example atoms.
	Pos, Neg []logic.Term
	// Symbols is the writer's interned symbol table, in intern order.
	Symbols []string
}

// NewSnapshot captures a snapshot of theory over kb, stamping the current
// process's symbol table.
func NewSnapshot(name string, fp uint64, epoch int, theory []logic.Clause, kb *solve.KB, budget solve.Budget, pos, neg []logic.Term) *Snapshot {
	syms := make([]string, logic.NumSymbols())
	for i := range syms {
		syms[i] = logic.Symbol(i).Name()
	}
	return &Snapshot{
		Name:        name,
		Fingerprint: fp,
		Epoch:       epoch,
		Theory:      append([]logic.Clause(nil), theory...),
		Clauses:     kb.AllClauses(),
		Budget:      budget,
		Pos:         pos,
		Neg:         neg,
		Symbols:     syms,
	}
}

// SnapshotPath returns the file name of snapshot seq under dir.
func SnapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", snapshotPrefix, seq, snapshotSuffix))
}

// WriteSnapshot durably writes s as snapshot seq under dir using the ckpt
// checked format (CRC-framed, atomic temp-file-and-rename), and returns the
// file path. Unlike checkpoints, serving snapshots are never pruned by the
// writer: the registry decides retention.
func WriteSnapshot(dir string, seq uint64, s *Snapshot) (string, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(snapshotFormat); err != nil {
		return "", fmt.Errorf("serve: encode snapshot: %w", err)
	}
	if err := enc.Encode(s); err != nil {
		return "", fmt.Errorf("serve: encode snapshot: %w", err)
	}
	// Wrap the gob stream in the wire compression envelope (flag byte +
	// optional flate): a snapshot ships the full example set and symbol
	// table, which deflates well, and the publish directory may hold many
	// of them. Same threshold and framing as bulk protocol frames.
	body := make([]byte, 1, buf.Len()+1) // leading 0x00 = raw-envelope flag
	body = append(body, buf.Bytes()...)
	path := SnapshotPath(dir, seq)
	if err := ckpt.WriteFile(path, wire.Compress(body)); err != nil {
		return "", err
	}
	return path, nil
}

// ReadSnapshot loads, validates and re-interns one snapshot file. After it
// returns, every term in the snapshot is expressed in the reading process's
// symbol table.
func ReadSnapshot(path string) (*Snapshot, error) {
	payload, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if body, derr := wire.Decompress(payload); derr == nil {
		payload = body
	}
	// On envelope error keep the payload as-is: snapshots written before
	// the compression envelope start directly with the gob stream, whose
	// leading length byte can never equal an envelope flag. A genuinely
	// corrupt file still fails below, in the gob decode.
	dec := gob.NewDecoder(bytes.NewReader(payload))
	var format int
	if err := dec.Decode(&format); err != nil {
		return nil, fmt.Errorf("serve: decode %s: %w", path, err)
	}
	if format != snapshotFormat {
		return nil, fmt.Errorf("serve: %s: unsupported snapshot format %d", path, format)
	}
	s := new(Snapshot)
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("serve: decode %s: %w", path, err)
	}
	s.rebind()
	return s, nil
}

// rebind rewrites the snapshot's terms from the writer's symbol numbering
// into this process's, interning names as needed. When the tables agree (a
// reload within the writing process, or a server that interned nothing
// else first) the rewrite is skipped entirely.
func (s *Snapshot) rebind() {
	remap := make([]logic.Symbol, len(s.Symbols))
	identity := true
	for i, name := range s.Symbols {
		remap[i] = logic.Intern(name)
		if int(remap[i]) != i {
			identity = false
		}
	}
	if identity {
		return
	}
	for i := range s.Theory {
		s.Theory[i] = remapClause(s.Theory[i], remap)
	}
	for i := range s.Clauses {
		s.Clauses[i] = remapClause(s.Clauses[i], remap)
	}
	for i := range s.Pos {
		s.Pos[i] = remapTerm(s.Pos[i], remap)
	}
	for i := range s.Neg {
		s.Neg[i] = remapTerm(s.Neg[i], remap)
	}
}

func remapClause(c logic.Clause, remap []logic.Symbol) logic.Clause {
	out := logic.Clause{Head: remapTerm(c.Head, remap)}
	if len(c.Body) > 0 {
		out.Body = make([]logic.Literal, len(c.Body))
		for i, l := range c.Body {
			out.Body[i] = logic.Literal{Neg: l.Neg, Atom: remapTerm(l.Atom, remap)}
		}
	}
	return out
}

// remapTerm rewrites functor and constant symbols; variables keep their
// index (a Var's Sym is a variable number, not a symbol-table entry).
func remapTerm(t logic.Term, remap []logic.Symbol) logic.Term {
	switch t.Kind {
	case logic.Atom:
		t.Sym = remap[t.Sym]
	case logic.Compound:
		t.Sym = remap[t.Sym]
		args := make([]logic.Term, len(t.Args))
		for i := range t.Args {
			args[i] = remapTerm(t.Args[i], remap)
		}
		t.Args = args
	}
	return t
}

// KB builds the indexed knowledge base from the snapshot's clauses.
func (s *Snapshot) KB() *solve.KB {
	kb := solve.NewKB()
	kb.AddProgram(s.Clauses)
	return kb
}

// SeqFromPath recovers the sequence number from a snapshot file path, or 0
// when the name does not follow the snap-<seq>.isnap convention.
func SeqFromPath(path string) uint64 {
	name := filepath.Base(path)
	if !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
		return 0
	}
	seq, _ := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), snapshotSuffix), 10, 64)
	return seq
}

// SnapshotFile is one snapshot file found in a publish directory.
type SnapshotFile struct {
	Path string
	Seq  uint64
}

// ListSnapshotFiles returns the snapshot files under dir in ascending
// sequence order. A missing directory lists as empty: a watcher may start
// before its learning master has published anything.
func ListSnapshotFiles(dir string) ([]SnapshotFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("serve: %w", err)
	}
	var out []SnapshotFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), snapshotSuffix), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, SnapshotFile{Path: filepath.Join(dir, name), Seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}
