package solve

import (
	"sync"
	"testing"

	"repro/internal/logic"
)

// TestCompileOncePerKB pins the sharing contract of the bytecode compiler:
// however many machines prove against one KB — pool checkouts, the fixed
// shard view, or a standalone machine — the KB is compiled exactly once,
// and only a mutation forces a recompile.
func TestCompileOncePerKB(t *testing.T) {
	if envNoVM {
		t.Skip("ILP_NOVM set; nothing compiles")
	}
	kb := poolKB(t)
	if n := kb.Compilations(); n != 0 {
		t.Fatalf("fresh KB reports %d compilations, want 0", n)
	}
	goal, err := logic.ParseTerm("anc(ann, dee)")
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent Get/Put checkouts racing the first compile: exactly one
	// build must win, everyone shares it.
	p := NewPool(kb, DefaultBudget, 4)
	var wg sync.WaitGroup
	for range 16 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := p.Get()
			defer p.Put(m)
			if !m.ProveAtom(goal) {
				t.Error("proof failed on pooled machine")
			}
		}()
	}
	wg.Wait()
	if n := kb.Compilations(); n != 1 {
		t.Fatalf("after concurrent pool checkouts: %d compilations, want 1", n)
	}

	// The shard view and an unrelated standalone machine reuse the same
	// published program.
	for _, m := range p.Machines() {
		if !m.ProveAtom(goal) {
			t.Fatal("proof failed on sharded machine")
		}
	}
	if !NewMachine(kb, DefaultBudget).ProveAtom(goal) {
		t.Fatal("proof failed on standalone machine")
	}
	if n := kb.Compilations(); n != 1 {
		t.Fatalf("after shard + standalone reuse: %d compilations, want 1", n)
	}

	// Mutation invalidates; the next query triggers exactly one rebuild.
	kb.Add(logic.MustParseClause("parent(dee, eve)."))
	if !NewMachine(kb, DefaultBudget).ProveAtom(goal) {
		t.Fatal("proof failed after KB.Add")
	}
	if n := kb.Compilations(); n != 2 {
		t.Fatalf("after Add + requery: %d compilations, want 2", n)
	}
}

// TestInterpreterDoesNotCompile checks that a -novm machine never touches
// the compiler: pinning the interpreter must not cost a compilation.
func TestInterpreterDoesNotCompile(t *testing.T) {
	kb := poolKB(t)
	goal, err := logic.ParseTerm("anc(ann, dee)")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(kb, DefaultBudget)
	m.SetNoVM(true)
	if !m.ProveAtom(goal) {
		t.Fatal("interpreter proof failed")
	}
	if envNoVM {
		// Under ILP_NOVM=1 the VM machine below is also pinned to the
		// interpreter, so the compile-on-demand half cannot be observed.
		t.Skip("ILP_NOVM set; compile-on-demand unobservable")
	}
	if n := kb.Compilations(); n != 0 {
		t.Fatalf("interpreter run compiled the KB %d times, want 0", n)
	}
	vm := NewMachine(kb, DefaultBudget)
	if !vm.ProveAtom(goal) {
		t.Fatal("VM proof failed")
	}
	if n := kb.Compilations(); n != 1 {
		t.Fatalf("VM run: %d compilations, want 1", n)
	}
}
