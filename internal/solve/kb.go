// Package solve implements an indexed knowledge base of definite clauses and
// a depth- and inference-bounded SLD resolution engine over it.
//
// The engine is the theorem prover behind every ILP coverage test: deciding
// whether background knowledge plus a candidate rule entails an example. A
// KB is safe for concurrent readers once populated; each goroutine reasons
// through its own Machine, which owns all mutable state (bindings, trail,
// fresh-variable counter, inference counters).
package solve

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/logic"
)

// argIndex indexes fact positions by the constant at one argument position.
// Symbols and numbers get separate maps: symbol keys are small interned
// integers whose hashing is far cheaper than a composite struct key, and
// ints and floats unify numerically so they share the numeric map.
type argIndex struct {
	byAtom    map[logic.Symbol][]int32
	byNum     map[float64][]int32
	unindexed []int32 // fact positions whose argument is not a constant
}

func (ix *argIndex) add(t logic.Term, pos int32) {
	switch t.Kind {
	case logic.Atom:
		if ix.byAtom == nil {
			ix.byAtom = make(map[logic.Symbol][]int32)
		}
		ix.byAtom[t.Sym] = append(ix.byAtom[t.Sym], pos)
	case logic.Int, logic.Float:
		if ix.byNum == nil {
			ix.byNum = make(map[float64][]int32)
		}
		ix.byNum[t.Num] = append(ix.byNum[t.Num], pos)
	default:
		ix.unindexed = append(ix.unindexed, pos)
	}
}

// bucket returns the candidate positions for a dereferenced goal argument
// and whether the argument was a constant usable for indexing.
func (ix *argIndex) bucket(t logic.Term) ([]int32, bool) {
	switch t.Kind {
	case logic.Atom:
		return ix.byAtom[t.Sym], true
	case logic.Int, logic.Float:
		return ix.byNum[t.Num], true
	}
	return nil, false
}

func (ix *argIndex) clone() argIndex {
	out := argIndex{unindexed: append([]int32(nil), ix.unindexed...)}
	if ix.byAtom != nil {
		out.byAtom = make(map[logic.Symbol][]int32, len(ix.byAtom))
		for k, v := range ix.byAtom {
			out.byAtom[k] = append([]int32(nil), v...)
		}
	}
	if ix.byNum != nil {
		out.byNum = make(map[float64][]int32, len(ix.byNum))
		for k, v := range ix.byNum {
			out.byNum[k] = append([]int32(nil), v...)
		}
	}
	return out
}

// storedClause caches per-clause metadata needed at resolution time.
type storedClause struct {
	clause  logic.Clause
	numVars int
	// ground marks a fact with a fully ground head: resolving against it can
	// never bind clause-side variables, so a ground goal matches it by plain
	// equality, with no renaming, trail traffic or undo.
	ground bool
	// bodyGround flags the statically ground body literals (nil when none
	// are, the common case): goals pushed from them can take the
	// equality-only fast path against ground facts.
	bodyGround []bool
}

func staticBodyGround(body []logic.Literal) []bool {
	var out []bool
	for i := range body {
		if body[i].Atom.IsGround() {
			if out == nil {
				out = make([]bool, len(body))
			}
			out[i] = true
		}
	}
	return out
}

// pred holds all clauses for one predicate, facts indexed by their first and
// second argument constants.
type pred struct {
	facts []storedClause
	rules []storedClause
	arg1  argIndex
	arg2  argIndex
}

// predEntry pairs an arity with its clause store for by-symbol dispatch.
type predEntry struct {
	arity int32
	p     *pred
}

// KB is a knowledge base of definite clauses with first- and second-argument
// indexing on ground facts. Adding clauses is not goroutine-safe; reading
// (solving) is.
type KB struct {
	preds map[logic.PredKey]*pred
	// bySym resolves a goal's predicate without hashing: functor symbols are
	// small interned integers, so a slice lookup plus a short arity scan
	// replaces a map access on the hottest dispatch in the engine.
	bySym [][]predEntry
	size  int

	// prog caches the compiled bytecode program (compile.go). It is built
	// lazily by the first VM-enabled query and shared read-only by every
	// machine over this KB; Add invalidates it. compiles counts builds so
	// tests can assert the compile-once-per-KB contract.
	prog      atomic.Pointer[program]
	compileMu sync.Mutex
	compiles  atomic.Int64
}

// NewKB returns an empty knowledge base.
func NewKB() *KB {
	return &KB{preds: make(map[logic.PredKey]*pred)}
}

func (kb *KB) register(key logic.PredKey, p *pred) {
	s := int(key.Sym)
	for s >= len(kb.bySym) {
		kb.bySym = append(kb.bySym, nil)
	}
	kb.bySym[s] = append(kb.bySym[s], predEntry{arity: int32(key.Arity), p: p})
}

// predFor resolves the clause store for a callable goal, or nil.
func (kb *KB) predFor(goal logic.Term) *pred {
	s := int(goal.Sym)
	if s < len(kb.bySym) {
		for _, e := range kb.bySym[s] {
			if int(e.arity) == len(goal.Args) {
				return e.p
			}
		}
	}
	return nil
}

// program returns the compiled form of the KB, building it on first use.
// The loaded-pointer fast path inlines into the per-query setup; concurrent
// first callers are safe — one compiles under the mutex, the rest load the
// published pointer.
func (kb *KB) program() *program {
	if p := kb.prog.Load(); p != nil {
		return p
	}
	return kb.compileProgram()
}

func (kb *KB) compileProgram() *program {
	kb.compileMu.Lock()
	defer kb.compileMu.Unlock()
	if p := kb.prog.Load(); p != nil {
		return p
	}
	p := compileKB(kb)
	kb.compiles.Add(1)
	kb.prog.Store(p)
	return p
}

// Compilations reports how many times this KB has been compiled to bytecode
// (for tests asserting the compile-once sharing contract).
func (kb *KB) Compilations() int64 { return kb.compiles.Load() }

// Add inserts a clause. Facts (empty body) join the indexed store; rules are
// kept in insertion order and always scanned.
func (kb *KB) Add(c logic.Clause) {
	kb.prog.Store(nil) // mutation invalidates the compiled program
	key := c.Head.Pred()
	p := kb.preds[key]
	if p == nil {
		p = &pred{}
		kb.preds[key] = p
		kb.register(key, p)
	}
	sc := storedClause{clause: c, numVars: c.NumVars()}
	kb.size++
	if !c.IsFact() {
		sc.bodyGround = staticBodyGround(c.Body)
		p.rules = append(p.rules, sc)
		return
	}
	sc.ground = sc.numVars == 0
	pos := int32(len(p.facts))
	p.facts = append(p.facts, sc)
	if len(c.Head.Args) > 0 {
		p.arg1.add(c.Head.Args[0], pos)
	}
	if len(c.Head.Args) > 1 {
		p.arg2.add(c.Head.Args[1], pos)
	}
}

// AddFact inserts head as a fact.
func (kb *KB) AddFact(head logic.Term) { kb.Add(logic.Fact(head)) }

// AddProgram inserts every clause of a parsed program.
func (kb *KB) AddProgram(cs []logic.Clause) {
	for _, c := range cs {
		kb.Add(c)
	}
}

// AddSource parses src and inserts the clauses.
func (kb *KB) AddSource(src string) error {
	cs, err := logic.ParseProgram(src)
	if err != nil {
		return err
	}
	kb.AddProgram(cs)
	return nil
}

// Size reports the number of stored clauses.
func (kb *KB) Size() int { return kb.size }

// NumPredicates reports the number of distinct predicate keys.
func (kb *KB) NumPredicates() int { return len(kb.preds) }

// Predicates returns the predicate keys in a deterministic order.
func (kb *KB) Predicates() []logic.PredKey {
	out := make([]logic.PredKey, 0, len(kb.preds))
	for k := range kb.preds {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sym != out[j].Sym {
			return out[i].Sym < out[j].Sym
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// Clone returns a deep-enough copy of the KB that may be extended
// independently (clause storage is shared copy-on-write style: slices are
// duplicated, clause structures are immutable and shared).
func (kb *KB) Clone() *KB {
	out := &KB{
		preds: make(map[logic.PredKey]*pred, len(kb.preds)),
		bySym: make([][]predEntry, len(kb.bySym)),
		size:  kb.size,
	}
	for k, p := range kb.preds {
		np := &pred{
			facts: append([]storedClause(nil), p.facts...),
			rules: append([]storedClause(nil), p.rules...),
			arg1:  p.arg1.clone(),
			arg2:  p.arg2.clone(),
		}
		out.preds[k] = np
		out.register(k, np)
	}
	return out
}

// lookup visits the candidate clauses for a goal whose variables are shifted
// by off under bs: a subset of facts selected by first- or second-argument
// index when the corresponding goal argument dereferences to a constant
// (whichever bucket is smaller), then all rules. The visit order is
// deterministic: indexed facts merge with the unindexed ones in insertion
// order to keep solution order stable. Each visit carries skipArg, the
// argument position the index already proved equal (or -1): callers can skip
// unifying it.
func (kb *KB) lookup(bs *logic.Bindings, goal logic.Term, off int, visit func(sc *storedClause, skipArg int) bool) {
	p := kb.predFor(goal)
	if p == nil {
		return
	}
	if len(goal.Args) > 0 {
		if idx, un, skip, ok := p.selectIndex(bs, goal, off); ok {
			p.scanMerged(idx, un, skip, visit)
			return
		}
	}
	for i := range p.facts {
		if !visit(&p.facts[i], -1) {
			return
		}
	}
	p.scanRules(visit)
}

// selectIndex picks the cheapest applicable fact index for the goal: the
// first- or second-argument bucket with the fewest candidates (bucket plus
// the unindexed facts that must always be scanned alongside it).
func (p *pred) selectIndex(bs *logic.Bindings, goal logic.Term, off int) (idx, un []int32, skip int, ok bool) {
	skip = -1
	best := 0
	a0, _ := bs.WalkOff(goal.Args[0], off)
	if i1, kok := p.arg1.bucket(a0); kok {
		idx, un, skip, ok = i1, p.arg1.unindexed, 0, true
		best = len(idx) + len(un)
	}
	// A second probe costs a map access; skip it when the first bucket is
	// already down to at most one candidate.
	if len(goal.Args) > 1 && (!ok || best > 1) {
		a1, _ := bs.WalkOff(goal.Args[1], off)
		if i2, kok := p.arg2.bucket(a1); kok {
			if u2 := p.arg2.unindexed; !ok || len(i2)+len(u2) < best {
				idx, un, skip, ok = i2, u2, 1, true
			}
		}
	}
	return idx, un, skip, ok
}

// scanMerged visits the union of an index bucket and the matching unindexed
// positions in insertion order, then every rule. Bucket entries are
// reported with the index's skip argument; unindexed entries and rules must
// unify in full.
func (p *pred) scanMerged(idx, un []int32, skip int, visit func(*storedClause, int) bool) {
	i, j := 0, 0
	for i < len(idx) || j < len(un) {
		var pos int32
		s := skip
		if j >= len(un) || (i < len(idx) && idx[i] < un[j]) {
			pos = idx[i]
			i++
		} else {
			pos = un[j]
			j++
			s = -1
		}
		if !visit(&p.facts[pos], s) {
			return
		}
	}
	p.scanRules(visit)
}

func (p *pred) scanRules(visit func(*storedClause, int) bool) {
	for i := range p.rules {
		if !visit(&p.rules[i], -1) {
			return
		}
	}
}

// AllClauses returns every stored clause grouped by predicate in
// deterministic order (facts before rules within each predicate), for
// dataset export tooling.
func (kb *KB) AllClauses() []logic.Clause {
	var out []logic.Clause
	for _, key := range kb.Predicates() {
		p := kb.preds[key]
		for _, sc := range p.facts {
			out = append(out, sc.clause)
		}
		for _, sc := range p.rules {
			out = append(out, sc.clause)
		}
	}
	return out
}

// FactsFor returns the stored facts of a predicate in insertion order
// (used by dataset tooling and tests).
func (kb *KB) FactsFor(key logic.PredKey) []logic.Clause {
	p := kb.preds[key]
	if p == nil {
		return nil
	}
	out := make([]logic.Clause, len(p.facts))
	for i, sc := range p.facts {
		out[i] = sc.clause
	}
	return out
}

// Footprint returns the number of indexed facts that mention the constant
// anywhere the fact indexes can see it (first or second argument position,
// summed over all predicates). For an ILP example's individual — the
// molecule of active(m12), the train of eastbound(t4) — this is the size
// of its immediate relational neighbourhood, which is what drives the SLD
// cost of saturating or covering the example: a cheap, engine-independent
// per-example cost proxy the elastic scheduler balances partitions by.
func (kb *KB) Footprint(c logic.Term) int {
	if c.Kind != logic.Atom && c.Kind != logic.Int && c.Kind != logic.Float {
		return 0
	}
	n := 0
	for _, p := range kb.preds {
		if b, ok := p.arg1.bucket(c); ok {
			n += len(b)
		}
		if b, ok := p.arg2.bucket(c); ok {
			n += len(b)
		}
	}
	return n
}
