// Package solve implements an indexed knowledge base of definite clauses and
// a depth- and inference-bounded SLD resolution engine over it.
//
// The engine is the theorem prover behind every ILP coverage test: deciding
// whether background knowledge plus a candidate rule entails an example. A
// KB is safe for concurrent readers once populated; each goroutine reasons
// through its own Machine, which owns all mutable state (bindings, trail,
// fresh-variable counter, inference counters).
package solve

import (
	"sort"

	"repro/internal/logic"
)

// argKey identifies a first-argument constant for clause indexing.
type argKey struct {
	kind logic.Kind
	sym  logic.Symbol
	num  float64
}

func keyFor(t logic.Term) (argKey, bool) {
	switch t.Kind {
	case logic.Atom:
		return argKey{kind: logic.Atom, sym: t.Sym}, true
	case logic.Int, logic.Float:
		// Ints and floats unify numerically, so they share index keys.
		return argKey{kind: logic.Int, num: t.Num}, true
	}
	return argKey{}, false
}

// storedClause caches per-clause metadata needed at resolution time.
type storedClause struct {
	clause  logic.Clause
	numVars int
}

// pred holds all clauses for one predicate, facts indexed by first argument.
type pred struct {
	facts      []storedClause
	rules      []storedClause
	byFirstArg map[argKey][]int32 // fact positions, insertion order
	unindexed  []int32            // fact positions whose first arg is not a constant
}

// KB is a knowledge base of definite clauses with first-argument indexing on
// ground facts. Adding clauses is not goroutine-safe; reading (solving) is.
type KB struct {
	preds map[logic.PredKey]*pred
	size  int
}

// NewKB returns an empty knowledge base.
func NewKB() *KB {
	return &KB{preds: make(map[logic.PredKey]*pred)}
}

// Add inserts a clause. Facts (empty body) join the indexed store; rules are
// kept in insertion order and always scanned.
func (kb *KB) Add(c logic.Clause) {
	key := c.Head.Pred()
	p := kb.preds[key]
	if p == nil {
		p = &pred{byFirstArg: make(map[argKey][]int32)}
		kb.preds[key] = p
	}
	sc := storedClause{clause: c, numVars: c.NumVars()}
	kb.size++
	if !c.IsFact() {
		p.rules = append(p.rules, sc)
		return
	}
	pos := int32(len(p.facts))
	p.facts = append(p.facts, sc)
	if len(c.Head.Args) > 0 {
		if k, ok := keyFor(c.Head.Args[0]); ok {
			p.byFirstArg[k] = append(p.byFirstArg[k], pos)
			return
		}
	}
	p.unindexed = append(p.unindexed, pos)
}

// AddFact inserts head as a fact.
func (kb *KB) AddFact(head logic.Term) { kb.Add(logic.Fact(head)) }

// AddProgram inserts every clause of a parsed program.
func (kb *KB) AddProgram(cs []logic.Clause) {
	for _, c := range cs {
		kb.Add(c)
	}
}

// AddSource parses src and inserts the clauses.
func (kb *KB) AddSource(src string) error {
	cs, err := logic.ParseProgram(src)
	if err != nil {
		return err
	}
	kb.AddProgram(cs)
	return nil
}

// Size reports the number of stored clauses.
func (kb *KB) Size() int { return kb.size }

// NumPredicates reports the number of distinct predicate keys.
func (kb *KB) NumPredicates() int { return len(kb.preds) }

// Predicates returns the predicate keys in a deterministic order.
func (kb *KB) Predicates() []logic.PredKey {
	out := make([]logic.PredKey, 0, len(kb.preds))
	for k := range kb.preds {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sym != out[j].Sym {
			return out[i].Sym < out[j].Sym
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// Clone returns a deep-enough copy of the KB that may be extended
// independently (clause storage is shared copy-on-write style: slices are
// duplicated, clause structures are immutable and shared).
func (kb *KB) Clone() *KB {
	out := &KB{preds: make(map[logic.PredKey]*pred, len(kb.preds)), size: kb.size}
	for k, p := range kb.preds {
		np := &pred{
			facts:      append([]storedClause(nil), p.facts...),
			rules:      append([]storedClause(nil), p.rules...),
			unindexed:  append([]int32(nil), p.unindexed...),
			byFirstArg: make(map[argKey][]int32, len(p.byFirstArg)),
		}
		for ak, ps := range p.byFirstArg {
			np.byFirstArg[ak] = append([]int32(nil), ps...)
		}
		out.preds[k] = np
	}
	return out
}

// lookup returns the candidate clauses for a goal whose arguments have been
// dereferenced: a subset of facts selected by first-argument index when
// possible, then all rules. The visit order is deterministic.
func (kb *KB) lookup(goal logic.Term, visit func(storedClause) bool) {
	p := kb.preds[goal.Pred()]
	if p == nil {
		return
	}
	if len(goal.Args) > 0 {
		if k, ok := keyFor(goal.Args[0]); ok {
			// Indexed facts matching the constant, plus unindexed facts,
			// merged in insertion order to keep solution order stable.
			idx, un := p.byFirstArg[k], p.unindexed
			i, j := 0, 0
			for i < len(idx) || j < len(un) {
				var pos int32
				if j >= len(un) || (i < len(idx) && idx[i] < un[j]) {
					pos = idx[i]
					i++
				} else {
					pos = un[j]
					j++
				}
				if !visit(p.facts[pos]) {
					return
				}
			}
			for _, sc := range p.rules {
				if !visit(sc) {
					return
				}
			}
			return
		}
	}
	for _, sc := range p.facts {
		if !visit(sc) {
			return
		}
	}
	for _, sc := range p.rules {
		if !visit(sc) {
			return
		}
	}
}

// AllClauses returns every stored clause grouped by predicate in
// deterministic order (facts before rules within each predicate), for
// dataset export tooling.
func (kb *KB) AllClauses() []logic.Clause {
	var out []logic.Clause
	for _, key := range kb.Predicates() {
		p := kb.preds[key]
		for _, sc := range p.facts {
			out = append(out, sc.clause)
		}
		for _, sc := range p.rules {
			out = append(out, sc.clause)
		}
	}
	return out
}

// FactsFor returns the stored facts of a predicate in insertion order
// (used by dataset tooling and tests).
func (kb *KB) FactsFor(key logic.PredKey) []logic.Clause {
	p := kb.preds[key]
	if p == nil {
		return nil
	}
	out := make([]logic.Clause, len(p.facts))
	for i, sc := range p.facts {
		out[i] = sc.clause
	}
	return out
}
