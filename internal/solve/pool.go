package solve

import "runtime"

// Pool is a fixed-size set of Machines over one shared knowledge base — the
// "one machine per goroutine" concurrency idiom packaged once instead of
// being re-built ad hoc at every call site. A populated KB is safe for
// concurrent readers, so the pool hands out whole machines: each holds all
// mutable prover state (bindings, trail, goal stack, counters) and two
// goroutines must never share one concurrently.
//
// Two access styles are supported, for the two kinds of users:
//
//   - Get/Put checkout, for request-shaped workloads (the serving layer):
//     Get blocks until a machine is free, which doubles as admission
//     control — at most Size requests run proofs at once.
//   - Machines, the fixed shard view, for index-addressed workloads
//     (search.ParallelEvaluator): shard w permanently owns Machines()[w].
//
// The two styles must not be mixed on one pool.
type Pool struct {
	kb       *KB
	budget   Budget
	machines []*Machine
	free     chan *Machine
}

// NewPool builds n machines over kb with the given budget; n ≤ 0 selects
// GOMAXPROCS.
func NewPool(kb *KB, budget Budget, n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	p := &Pool{kb: kb, budget: budget, machines: make([]*Machine, n), free: make(chan *Machine, n)}
	for i := range p.machines {
		p.machines[i] = NewMachine(kb, budget)
		p.free <- p.machines[i]
	}
	return p
}

// Size reports the number of machines.
func (p *Pool) Size() int { return len(p.machines) }

// KB returns the shared knowledge base the machines prove against.
func (p *Pool) KB() *KB { return p.kb }

// Get checks a machine out, blocking until one is free.
func (p *Pool) Get() *Machine { return <-p.free }

// Put returns a machine obtained from Get. The machine is reset to the
// pool's KB (checkout-time SetKB swaps do not leak to the next user);
// per-query prover state needs no reset — every query begins from a clean
// slate — and the cumulative inference counters intentionally survive so the
// pool can account total work.
func (p *Pool) Put(m *Machine) {
	m.SetKB(p.kb)
	p.free <- m
}

// Machines returns the fixed shard view: caller w owns index w exclusively.
// Do not mix with Get/Put.
func (p *Pool) Machines() []*Machine { return p.machines }

// SetNoVM pins every machine in the pool to the interpreter (true) or the
// compiled VM (false). Only quiescent calls (no machine checked out or
// sharded work in flight) are safe.
func (p *Pool) SetNoVM(no bool) {
	for _, m := range p.machines {
		m.SetNoVM(no)
	}
}

// TotalInferences sums the SLD work across all machines. Only quiescent
// calls (no machine checked out or sharded work in flight) are exact.
func (p *Pool) TotalInferences() int64 {
	var n int64
	for _, m := range p.machines {
		n += m.TotalInferences()
	}
	return n
}

// CutoffQueries sums budget-truncated queries across all machines.
func (p *Pool) CutoffQueries() int64 {
	var n int64
	for _, m := range p.machines {
		n += m.CutoffQueries()
	}
	return n
}

// ResetCounters zeroes every machine's accumulated inference statistics.
func (p *Pool) ResetCounters() {
	for _, m := range p.machines {
		m.ResetCounters()
	}
}
