package solve

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// FuzzVMMatchesInterpreter is the bit-identity contract as a fuzz target:
// on a random program and query stream (the differential test's generators,
// driven by the fuzzed seed), the compiled VM and the tree-walking
// interpreter must produce the same solutions in the same order, charge the
// same inference counts and hit the same budget cutoffs. Run with
// `go test -fuzz=FuzzVMMatchesInterpreter ./internal/solve` to explore
// beyond the seed corpus.
func FuzzVMMatchesInterpreter(f *testing.F) {
	// Seed corpus: the deterministic differential suite's seed range plus a
	// few larger values so minimization has somewhere interesting to start.
	for _, seed := range []int64{0, 1, 2, 3, 7, 11, 39, 1 << 20, -1} {
		f.Add(seed)
	}
	budget := Budget{MaxDepth: 12, MaxInferences: 4000}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		kb := genProgram(rng)
		vm := NewMachine(kb, budget)
		interp := NewMachine(kb, budget)
		interp.SetNoVM(true)
		for q := 0; q < 10; q++ {
			goals, nVars := genGoal(rng)
			var got, want []string
			vm.Solve(goals, nVars, func(bs *logic.Bindings) bool {
				got = append(got, solutionString(bs, nVars))
				return len(got) < 200
			})
			interp.Solve(goals, nVars, func(bs *logic.Bindings) bool {
				want = append(want, solutionString(bs, nVars))
				return len(want) < 200
			})
			if len(got) != len(want) {
				t.Fatalf("seed %d query %d: VM %d solutions, interpreter %d\n vm: %v\nint: %v",
					seed, q, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d query %d: solution %d = %q, interpreter %q",
						seed, q, i, got[i], want[i])
				}
			}
			if vm.TotalInferences() != interp.TotalInferences() {
				t.Fatalf("seed %d query %d: VM charged %d inferences, interpreter %d",
					seed, q, vm.TotalInferences(), interp.TotalInferences())
			}
			if vm.CutoffQueries() != interp.CutoffQueries() {
				t.Fatalf("seed %d query %d: VM hit %d cutoffs, interpreter %d",
					seed, q, vm.CutoffQueries(), interp.CutoffQueries())
			}
		}
	})
}
