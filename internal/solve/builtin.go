package solve

import (
	"repro/internal/logic"
)

// builtinFn evaluates a deterministic builtin goal; it may bind variables.
// The caller brackets the call with Mark/Undo, so a builtin does not need to
// clean up after itself on failure.
type builtinFn func(m *Machine, goal logic.Term) bool

var builtins map[logic.PredKey]builtinFn

// builtinBySym dispatches builtins by interned functor symbol without
// hashing: builtin names are interned at init, so their symbols are small
// and the table stays tiny. Each symbol holds a slice so one name may carry
// several arities.
var builtinBySym [][]builtinEntry

type builtinEntry struct {
	arity int32
	fn    builtinFn
}

// builtinFor returns the builtin implementing the goal's predicate, or nil.
func builtinFor(t logic.Term) builtinFn {
	if t.Kind != logic.Atom && t.Kind != logic.Compound {
		return nil
	}
	if s := int(t.Sym); s < len(builtinBySym) {
		for _, e := range builtinBySym[s] {
			if int(e.arity) == len(t.Args) {
				return e.fn
			}
		}
	}
	return nil
}

func init() {
	builtins = make(map[logic.PredKey]builtinFn)
	reg := func(name string, arity int, fn builtinFn) {
		sym := logic.Intern(name)
		builtins[logic.PredKey{Sym: sym, Arity: arity}] = fn
		for int(sym) >= len(builtinBySym) {
			builtinBySym = append(builtinBySym, nil)
		}
		builtinBySym[sym] = append(builtinBySym[sym], builtinEntry{arity: int32(arity), fn: fn})
	}
	reg("true", 0, func(*Machine, logic.Term) bool { return true })
	reg("fail", 0, func(*Machine, logic.Term) bool { return false })
	reg("=", 2, func(m *Machine, g logic.Term) bool {
		return m.bs.Unify(g.Args[0], g.Args[1])
	})
	reg("\\=", 2, func(m *Machine, g logic.Term) bool {
		mark := m.bs.Mark()
		ok := m.bs.Unify(g.Args[0], g.Args[1])
		m.bs.Undo(mark)
		return !ok
	})
	cmp := func(test func(a, b float64) bool) builtinFn {
		return func(m *Machine, g logic.Term) bool {
			a, okA := m.evalArith(g.Args[0])
			b, okB := m.evalArith(g.Args[1])
			return okA && okB && test(a, b)
		}
	}
	reg("<", 2, cmp(func(a, b float64) bool { return a < b }))
	reg("=<", 2, cmp(func(a, b float64) bool { return a <= b }))
	reg(">", 2, cmp(func(a, b float64) bool { return a > b }))
	reg(">=", 2, cmp(func(a, b float64) bool { return a >= b }))
	reg("is", 2, func(m *Machine, g logic.Term) bool {
		v, ok := m.evalArith(g.Args[1])
		if !ok {
			return false
		}
		return m.bs.Unify(g.Args[0], logic.FloatTerm(v))
	})
}

// IsBuiltin reports whether a predicate key is handled by the engine itself
// rather than by KB clauses.
func IsBuiltin(key logic.PredKey) bool {
	_, ok := builtins[key]
	return ok
}

// evalArith evaluates t as an arithmetic expression under current bindings.
// Supported: numeric constants, +, -, *, / (binary), - (unary).
func (m *Machine) evalArith(t logic.Term) (float64, bool) {
	t = m.bs.Walk(t)
	switch t.Kind {
	case logic.Int, logic.Float:
		return t.Num, true
	case logic.Compound:
		name := t.Sym.Name()
		if len(t.Args) == 1 && name == "-" {
			v, ok := m.evalArith(t.Args[0])
			return -v, ok
		}
		if len(t.Args) != 2 {
			return 0, false
		}
		a, okA := m.evalArith(t.Args[0])
		b, okB := m.evalArith(t.Args[1])
		if !okA || !okB {
			return 0, false
		}
		switch name {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b == 0 {
				return 0, false
			}
			return a / b, true
		}
	}
	return 0, false
}
