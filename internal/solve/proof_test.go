package solve_test

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/logic"
	"repro/internal/solve"
)

// checkProof validates structural invariants of a proof tree: rule nodes
// have exactly one child per body literal of the clause they resolved
// against, fact nodes are leaves whose goal re-proves against the KB, and
// every goal that should be ground is.
func checkProof(t *testing.T, kb *solve.KB, n *solve.ProofStep) {
	t.Helper()
	switch n.Kind {
	case solve.ProofFact:
		if len(n.Children) != 0 {
			t.Errorf("fact node %v has %d children", n.Goal, len(n.Children))
		}
		if !n.Goal.IsGround() {
			// A fact node's goal may keep variables the proof never bound,
			// but then it must still be provable as-is.
			t.Logf("fact node %v not ground", n.Goal)
		}
		m := solve.NewMachine(kb, solve.DefaultBudget)
		if !m.ProveAtom(n.Goal) {
			t.Errorf("fact node goal %v does not re-prove", n.Goal)
		}
	case solve.ProofRule:
		if n.Clause == nil {
			t.Fatalf("rule node %v has nil clause", n.Goal)
		}
		if len(n.Children) != len(n.Clause.Body) {
			t.Errorf("rule node %v: %d children for %d body literals",
				n.Goal, len(n.Children), len(n.Clause.Body))
		}
	case solve.ProofNAF:
		if !n.Neg {
			t.Errorf("naf node %v not marked negative", n.Goal)
		}
		if len(n.Children) != 0 {
			t.Errorf("naf node %v has children", n.Goal)
		}
	}
	for _, c := range n.Children {
		checkProof(t, kb, c)
	}
}

// TestProveExampleBacktracking exercises the recorder on a program where
// the first clause choices are wrong and the proof needs builtins, deep
// recursion and negation.
func TestProveExampleBacktracking(t *testing.T) {
	kb := solve.NewKB()
	if err := kb.AddSource(`
		edge(a, b). edge(b, c). edge(c, d). edge(a, x).
		dead(x).
		path(X, Y) :- edge(X, Y), \+ dead(Y).
		path(X, Y) :- edge(X, Z), \+ dead(Z), path(Z, Y).
		len(a, 1). len(b, 2). len(c, 3).
	`); err != nil {
		t.Fatal(err)
	}
	parsed, err := logic.ParseClause("reach(X) :- path(a, X), len(X, N), N > 1.")
	if err != nil {
		t.Fatal(err)
	}
	rule := &parsed
	m := solve.NewMachine(kb, solve.DefaultBudget)
	ex, _ := logic.ParseTerm("reach(c)")
	proof, ok := m.ProveExample(rule, ex)
	if !ok {
		t.Fatal("ProveExample failed on a covered example")
	}
	if !m.CoversExample(rule, ex) {
		t.Fatal("CoversExample disagrees (covered)")
	}
	if proof.Clause == nil || proof.Clause.String() != rule.String() {
		t.Fatalf("root clause = %v, want the rule", proof.Clause)
	}
	if got := proof.Goal.String(); got != "reach(c)" {
		t.Fatalf("root goal = %q", got)
	}
	checkProof(t, kb, proof)

	// Not covered: x is dead, so reach(x) must fail in both provers.
	exX, _ := logic.ParseTerm("reach(x)")
	if _, ok := m.ProveExample(rule, exX); ok {
		t.Fatal("ProveExample proved an uncovered example")
	}
	if m.CoversExample(rule, exX) {
		t.Fatal("CoversExample disagrees (uncovered)")
	}
}

// TestProveExampleAgreesOnDatasets pins recorder/engine agreement across
// every (true-concept rule, example) pair of the bundled paper datasets at
// small scale — the bit-for-bit guarantee the serving layer's proofs rely on.
func TestProveExampleAgreesOnDatasets(t *testing.T) {
	for _, ds := range datasets.PaperScaled(0.05, 1) {
		ds := ds
		t.Run(ds.Name, func(t *testing.T) {
			m := solve.NewMachine(ds.KB, ds.Budget)
			examples := append(append([]logic.Term{}, ds.Pos...), ds.Neg...)
			checked := 0
			for ri := range ds.TrueConcept {
				rule := &ds.TrueConcept[ri]
				for _, ex := range examples {
					covered := m.CoversExample(rule, ex)
					proof, ok := m.ProveExample(rule, ex)
					if ok != covered {
						t.Fatalf("rule %v example %v: ProveExample=%v CoversExample=%v",
							rule, ex, ok, covered)
					}
					if ok {
						checked++
						if !proof.Goal.IsGround() {
							t.Fatalf("proof root %v not ground", proof.Goal)
						}
						checkProof(t, ds.KB, proof)
					}
				}
			}
			if checked == 0 {
				t.Fatal("no covered (rule, example) pairs exercised")
			}
		})
	}
}
