package solve

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

func kbFrom(t *testing.T, src string) *KB {
	t.Helper()
	kb := NewKB()
	if err := kb.AddSource(src); err != nil {
		t.Fatal(err)
	}
	return kb
}

func TestProveFacts(t *testing.T) {
	kb := kbFrom(t, `
		edge(a, b). edge(b, c). edge(c, d).
	`)
	m := NewMachine(kb, DefaultBudget)
	if !m.ProveAtom(logic.MustParseTerm("edge(a, b)")) {
		t.Fatal("known fact not proved")
	}
	if m.ProveAtom(logic.MustParseTerm("edge(a, c)")) {
		t.Fatal("absent fact proved")
	}
	if m.ProveAtom(logic.MustParseTerm("nosuch(a)")) {
		t.Fatal("unknown predicate proved")
	}
}

func TestProveConjunction(t *testing.T) {
	kb := kbFrom(t, `edge(a, b). edge(b, c).`)
	m := NewMachine(kb, DefaultBudget)
	c := logic.MustParseClause("goal :- edge(X, Y), edge(Y, Z).")
	if !m.Prove(c.Body, c.NumVars()) {
		t.Fatal("two-hop conjunction not proved")
	}
	c2 := logic.MustParseClause("goal :- edge(X, Y), edge(Y, X).")
	if m.Prove(c2.Body, c2.NumVars()) {
		t.Fatal("cycle proved in acyclic graph")
	}
}

func TestRulesAndRecursion(t *testing.T) {
	kb := kbFrom(t, `
		edge(a, b). edge(b, c). edge(c, d).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
	`)
	m := NewMachine(kb, DefaultBudget)
	if !m.ProveAtom(logic.MustParseTerm("path(a, d)")) {
		t.Fatal("transitive path not proved")
	}
	if m.ProveAtom(logic.MustParseTerm("path(d, a)")) {
		t.Fatal("reverse path proved")
	}
}

func TestDepthBoundStopsLeftRecursion(t *testing.T) {
	kb := kbFrom(t, `
		p(X) :- p(X).
		p(a).
	`)
	m := NewMachine(kb, Budget{MaxDepth: 16, MaxInferences: 1 << 16})
	// The left-recursive clause is explored first and cut by depth; the
	// fact (added second, scanned after rules? facts come first) proves it.
	if !m.ProveAtom(logic.A("q_unprovable")) == false {
		t.Log("sanity")
	}
	if !m.ProveAtom(logic.MustParseTerm("p(a)")) {
		t.Fatal("p(a) should be provable despite recursive clause")
	}
	if m.ProveAtom(logic.MustParseTerm("p(b)")) {
		t.Fatal("p(b) proved")
	}
	if m.CutoffQueries() == 0 {
		t.Fatal("expected the p(b) query to hit the depth bound")
	}
}

func TestInferenceBudget(t *testing.T) {
	var src string
	for i := 0; i < 200; i++ {
		src += fmt.Sprintf("n(%d). ", i)
	}
	src += "big :- n(X), n(Y), n(Z), X > Y, Y > Z, Z > 198."
	kb := kbFrom(t, src)
	m := NewMachine(kb, Budget{MaxDepth: 16, MaxInferences: 100})
	if m.ProveAtom(logic.A("big")) {
		t.Fatal("goal proved despite tiny budget")
	}
	if m.CutoffQueries() != 1 {
		t.Fatalf("CutoffQueries = %d, want 1", m.CutoffQueries())
	}
	if m.TotalInferences() == 0 {
		t.Fatal("no inferences recorded")
	}
}

func TestNegationAsFailure(t *testing.T) {
	kb := kbFrom(t, `
		bird(tweety). bird(pingu).
		penguin(pingu).
		flies(X) :- bird(X), \+penguin(X).
	`)
	m := NewMachine(kb, DefaultBudget)
	if !m.ProveAtom(logic.MustParseTerm("flies(tweety)")) {
		t.Fatal("tweety should fly")
	}
	if m.ProveAtom(logic.MustParseTerm("flies(pingu)")) {
		t.Fatal("pingu should not fly")
	}
}

func TestBuiltins(t *testing.T) {
	kb := kbFrom(t, `val(x, 3). val(y, 7).`)
	m := NewMachine(kb, DefaultBudget)
	cases := []struct {
		goal string
		want bool
	}{
		{"ok :- val(x, V), V < 5.", true},
		{"ok :- val(x, V), V > 5.", false},
		{"ok :- val(y, V), V >= 7.", true},
		{"ok :- val(y, V), V =< 6.", false},
		{"ok :- val(x, V), val(y, W), V \\= W.", true},
		{"ok :- val(x, V), V = 3.", true},
		{"ok :- val(x, V), V = 4.", false},
		{"ok :- X is 3 + 4, X > 6.", true},
		{"ok :- X is 2 * 5, X = 10.", true},
		{"ok :- X is 7 - 2, Y is X / 5, Y = 1.", true},
		{"ok :- true.", true},
		{"ok :- fail.", false},
	}
	for _, c := range cases {
		cl := logic.MustParseClause(c.goal)
		if got := m.Prove(cl.Body, cl.NumVars()); got != c.want {
			t.Errorf("%s: got %v, want %v", c.goal, got, c.want)
		}
	}
}

func TestSolveEnumerates(t *testing.T) {
	kb := kbFrom(t, `edge(a, b). edge(a, c). edge(a, d).`)
	m := NewMachine(kb, DefaultBudget)
	goal := logic.MustParseTerm("edge(a, X)")
	var got []string
	m.Solve([]logic.Literal{logic.Lit(goal)}, 1, func(bs *logic.Bindings) bool {
		got = append(got, bs.Resolve(logic.V(0)).String())
		return true
	})
	want := []string{"b", "c", "d"}
	if len(got) != 3 {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("solution order: got %v, want %v", got, want)
		}
	}
}

func TestSolveEarlyStop(t *testing.T) {
	kb := kbFrom(t, `edge(a, b). edge(a, c). edge(a, d).`)
	m := NewMachine(kb, DefaultBudget)
	goal := logic.MustParseTerm("edge(a, X)")
	count := 0
	m.Solve([]logic.Literal{logic.Lit(goal)}, 1, func(*logic.Bindings) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("yield called %d times, want 2", count)
	}
}

func TestCoversExample(t *testing.T) {
	kb := kbFrom(t, `
		atm(m1, a1, carbon). atm(m1, a2, oxygen).
		atm(m2, a3, carbon). atm(m2, a4, carbon).
		bondx(m1, a1, a2). bondx(m2, a3, a4).
	`)
	m := NewMachine(kb, DefaultBudget)
	rule := logic.MustParseClause("active(M) :- atm(M, A, carbon), bondx(M, A, B), atm(M, B, oxygen).")
	if !m.CoversExample(&rule, logic.MustParseTerm("active(m1)")) {
		t.Fatal("rule should cover m1")
	}
	if m.CoversExample(&rule, logic.MustParseTerm("active(m2)")) {
		t.Fatal("rule should not cover m2 (no oxygen)")
	}
}

func TestCoversExampleHeadMismatch(t *testing.T) {
	kb := NewKB()
	m := NewMachine(kb, DefaultBudget)
	rule := logic.MustParseClause("active(m9) :- true.")
	if m.CoversExample(&rule, logic.MustParseTerm("active(m1)")) {
		t.Fatal("ground head should only cover its own example")
	}
	if !m.CoversExample(&rule, logic.MustParseTerm("active(m9)")) {
		t.Fatal("ground head should cover its own example")
	}
}

func TestIndexingMatchesLinearScan(t *testing.T) {
	// Build a KB with many constants; compare indexed query results with a
	// brute-force over the facts.
	rng := rand.New(rand.NewSource(7))
	type fact struct{ a, b int }
	var facts []fact
	kb := NewKB()
	for i := 0; i < 300; i++ {
		f := fact{rng.Intn(20), rng.Intn(20)}
		facts = append(facts, f)
		kb.AddFact(logic.Comp("r", logic.A(fmt.Sprintf("c%d", f.a)), logic.IntTerm(int64(f.b))))
	}
	m := NewMachine(kb, DefaultBudget)
	for q := 0; q < 20; q++ {
		want := 0
		for _, f := range facts {
			if f.a == q {
				want++
			}
		}
		got := 0
		goal := logic.Comp("r", logic.A(fmt.Sprintf("c%d", q)), logic.V(0))
		m.Solve([]logic.Literal{logic.Lit(goal)}, 1, func(*logic.Bindings) bool {
			got++
			return true
		})
		if got != want {
			t.Fatalf("first-arg c%d: got %d solutions, want %d", q, got, want)
		}
	}
}

func TestUnindexedFactsStillFound(t *testing.T) {
	kb := NewKB()
	// Fact with a variable first argument is unindexed but must be found.
	kb.Add(logic.MustParseClause("any(X, tagged)."))
	kb.Add(logic.MustParseClause("any(k, direct)."))
	m := NewMachine(kb, DefaultBudget)
	if !m.ProveAtom(logic.MustParseTerm("any(k, tagged)")) {
		t.Fatal("variable-headed fact not found via indexed path")
	}
	if !m.ProveAtom(logic.MustParseTerm("any(zz, tagged)")) {
		t.Fatal("variable-headed fact not found for unknown constant")
	}
	if !m.ProveAtom(logic.MustParseTerm("any(k, direct)")) {
		t.Fatal("indexed fact lost")
	}
}

func TestCloneIndependence(t *testing.T) {
	kb := kbFrom(t, `f(a).`)
	clone := kb.Clone()
	clone.AddFact(logic.MustParseTerm("f(b)"))
	m1 := NewMachine(kb, DefaultBudget)
	m2 := NewMachine(clone, DefaultBudget)
	if m1.ProveAtom(logic.MustParseTerm("f(b)")) {
		t.Fatal("clone mutation leaked into original")
	}
	if !m2.ProveAtom(logic.MustParseTerm("f(b)")) {
		t.Fatal("clone lost its own fact")
	}
	if !m2.ProveAtom(logic.MustParseTerm("f(a)")) {
		t.Fatal("clone lost the original fact")
	}
}

func TestPredicatesDeterministicOrder(t *testing.T) {
	kb := kbFrom(t, `b(1). a(1). c(1, 2). a(1, 2).`)
	p1 := kb.Predicates()
	p2 := kb.Predicates()
	if len(p1) != 4 {
		t.Fatalf("predicates: %v", p1)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("Predicates order not deterministic")
		}
	}
}

func TestNumericCrossKindUnify(t *testing.T) {
	kb := kbFrom(t, `weight(w1, 4.0). weight(w2, 5).`)
	m := NewMachine(kb, DefaultBudget)
	if !m.ProveAtom(logic.MustParseTerm("weight(w1, 4)")) {
		t.Fatal("int query should match float fact")
	}
	if !m.ProveAtom(logic.MustParseTerm("weight(w2, 5.0)")) {
		t.Fatal("float query should match int fact")
	}
}

// Property: every fact added to a KB is provable, and ground atoms differing
// in any argument are not (over a constant universe with unique facts).
func TestQuickFactsProvable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kb := NewKB()
		added := make(map[[2]int]bool)
		for i := 0; i < 30; i++ {
			k := [2]int{rng.Intn(8), rng.Intn(8)}
			added[k] = true
			kb.AddFact(logic.Comp("q", logic.IntTerm(int64(k[0])), logic.IntTerm(int64(k[1]))))
		}
		m := NewMachine(kb, DefaultBudget)
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				goal := logic.Comp("q", logic.IntTerm(int64(a)), logic.IntTerm(int64(b)))
				if m.ProveAtom(goal) != added[[2]int{a, b}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: solution count of an indexed query equals the fact multiplicity.
func TestQuickSolutionCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kb := NewKB()
		counts := make(map[int]int)
		for i := 0; i < 50; i++ {
			a := rng.Intn(6)
			counts[a]++
			kb.AddFact(logic.Comp("s", logic.A(fmt.Sprintf("k%d", a)), logic.IntTerm(int64(i))))
		}
		m := NewMachine(kb, DefaultBudget)
		keys := make([]int, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, a := range keys {
			got := 0
			goal := logic.Comp("s", logic.A(fmt.Sprintf("k%d", a)), logic.V(0))
			m.Solve([]logic.Literal{logic.Lit(goal)}, 1, func(*logic.Bindings) bool {
				got++
				return true
			})
			if got != counts[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
