package solve

import (
	"sync"
	"testing"

	"repro/internal/logic"
)

func poolKB(t *testing.T) *KB {
	t.Helper()
	kb := NewKB()
	if err := kb.AddSource(`
		parent(ann, bob). parent(bob, cat). parent(cat, dee).
		anc(X, Y) :- parent(X, Y).
		anc(X, Y) :- parent(X, Z), anc(Z, Y).
	`); err != nil {
		t.Fatal(err)
	}
	return kb
}

func TestPoolGetPut(t *testing.T) {
	kb := poolKB(t)
	p := NewPool(kb, DefaultBudget, 3)
	if p.Size() != 3 {
		t.Fatalf("Size = %d, want 3", p.Size())
	}
	goal, err := logic.ParseTerm("anc(ann, dee)")
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent checkout: more goroutines than machines, every proof must
	// succeed and every machine must come back.
	var wg sync.WaitGroup
	for range 16 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := p.Get()
			defer p.Put(m)
			if !m.ProveAtom(goal) {
				t.Error("proof failed on pooled machine")
			}
		}()
	}
	wg.Wait()
	for range p.Size() {
		p.Get()
	}
	select {
	case <-p.free:
		t.Fatal("machines left in pool after draining Size() of them")
	default:
	}
}

// TestPoolPutRestoresKB checks the Put-time reset: a checkout that swapped
// the machine's KB must not leak that KB to the next user.
func TestPoolPutRestoresKB(t *testing.T) {
	kb := poolKB(t)
	p := NewPool(kb, DefaultBudget, 1)
	other := NewKB()
	m := p.Get()
	m.SetKB(other)
	p.Put(m)
	if got := p.Get().KB(); got != kb {
		t.Fatalf("Put did not restore the pool KB: got %p, want %p", got, kb)
	}
}

func TestPoolCounters(t *testing.T) {
	kb := poolKB(t)
	p := NewPool(kb, DefaultBudget, 2)
	goal, err := logic.ParseTerm("anc(ann, dee)")
	if err != nil {
		t.Fatal(err)
	}
	for range 4 {
		m := p.Get()
		m.ProveAtom(goal)
		p.Put(m)
	}
	if p.TotalInferences() == 0 {
		t.Fatal("TotalInferences = 0 after proofs")
	}
	p.ResetCounters()
	if p.TotalInferences() != 0 || p.CutoffQueries() != 0 {
		t.Fatal("ResetCounters left nonzero counters")
	}
}
