package solve

import (
	"testing"

	"repro/internal/logic"
)

func proveBody(t *testing.T, kb *KB, src string) bool {
	t.Helper()
	cl := logic.MustParseClause(src)
	m := NewMachine(kb, DefaultBudget)
	return m.Prove(cl.Body, cl.NumVars())
}

func TestArithmeticEdgeCases(t *testing.T) {
	kb := NewKB()
	cases := []struct {
		goal string
		want bool
	}{
		{"ok :- X is 6 / 0.", false},               // division by zero fails, no panic
		{"ok :- X is 2 + 3 * 4, X = 14.", true},    // precedence
		{"ok :- X is (2 + 3) * 4, X = 20.", false}, // parens unsupported: parse error guarded below
		{"ok :- X is -3, X < 0.", true},            // unary minus value
		{"ok :- 1 < 2, 2 =< 2, 3 > 2, 2 >= 2.", true},
		{"ok :- X < 1.", false},      // unbound comparison fails
		{"ok :- X is Y + 1.", false}, // unbound arithmetic fails
	}
	for _, c := range cases {
		cl, err := logic.ParseClause(c.goal)
		if err != nil {
			continue // the parenthesised case: grammar has no grouping parens
		}
		m := NewMachine(kb, DefaultBudget)
		if got := m.Prove(cl.Body, cl.NumVars()); got != c.want {
			t.Errorf("%s: got %v, want %v", c.goal, got, c.want)
		}
	}
}

func TestNegationInteractsWithBindings(t *testing.T) {
	kb := NewKB()
	if err := kb.AddSource(`
		item(a). item(b).
		broken(a).
	`); err != nil {
		t.Fatal(err)
	}
	// Find an item that is not broken: NAF must not leak bindings from the
	// failed sub-proof.
	if !proveBody(t, kb, "ok :- item(X), \\+broken(X), X = b.") {
		t.Fatal("should find the unbroken item b")
	}
	if proveBody(t, kb, "ok :- item(X), \\+broken(X), X = a.") {
		t.Fatal("a is broken")
	}
}

func TestNestedNegation(t *testing.T) {
	kb := NewKB()
	if err := kb.AddSource(`
		p(x).
		q(X) :- \+r(X).
	`); err != nil {
		t.Fatal(err)
	}
	// \+q(x) where q(x) succeeds via \+r(x): double negation.
	if proveBody(t, kb, "ok :- \\+q(x).") {
		t.Fatal("q(x) holds, so \\+q(x) must fail")
	}
	if !proveBody(t, kb, "ok :- q(x).") {
		t.Fatal("q(x) should hold via NAF")
	}
}

func TestIsBuiltinRegistry(t *testing.T) {
	for _, name := range []string{"=", "\\=", "<", "=<", ">", ">=", "is"} {
		if !IsBuiltin(logic.PredKey{Sym: logic.Intern(name), Arity: 2}) {
			t.Errorf("%s/2 not registered", name)
		}
	}
	if !IsBuiltin(logic.PredKey{Sym: logic.Intern("true"), Arity: 0}) {
		t.Error("true/0 not registered")
	}
	if IsBuiltin(logic.PredKey{Sym: logic.Intern("atm"), Arity: 5}) {
		t.Error("user predicate reported as builtin")
	}
}

func TestBuiltinDoesNotShadowUserFacts(t *testing.T) {
	// A user predicate sharing a name but not arity with a builtin.
	kb := NewKB()
	kb.AddFact(logic.MustParseTerm("'='(special)"))
	m := NewMachine(kb, DefaultBudget)
	if !m.ProveAtom(logic.MustParseTerm("'='(special)")) {
		t.Fatal("=/1 user fact should be provable (builtin is =/2)")
	}
}
