package solve

import (
	"repro/internal/logic"
)

// This file adds a *recording* prover next to the hot engine in machine.go:
// the serving layer wants the proof tree behind a positive coverage answer
// (the explanation artifact a classification API returns), but the engine's
// CPS loop deliberately keeps nothing a tree could be built from. Rather
// than thread recording hooks through step() — and tax the path every
// coverage test in learning takes — the recorder is a separate recursive
// SLD prover over the same KB, bindings, builtins and budget. It explores
// goals in the same order as the engine (clause candidates exactly as
// kb.lookup yields them), so it succeeds iff CoversExample succeeds within
// budget, and it records the first proof found — the same proof the engine
// commits to.

// ProofKind classifies how one proof node was discharged.
type ProofKind uint8

const (
	// ProofFact: the goal matched a KB fact.
	ProofFact ProofKind = iota
	// ProofRule: the goal resolved against a KB rule; children prove the body.
	ProofRule
	// ProofBuiltin: the goal was evaluated by the engine (=, is, <, ...).
	ProofBuiltin
	// ProofNAF: a negated goal whose positive form has no proof.
	ProofNAF
)

// String names the kind for rendering ("fact", "rule", "builtin", "naf").
func (k ProofKind) String() string {
	switch k {
	case ProofFact:
		return "fact"
	case ProofRule:
		return "rule"
	case ProofBuiltin:
		return "builtin"
	case ProofNAF:
		return "naf"
	}
	return "?"
}

// ProofStep is one node of a proof tree. Goal is the node's goal atom fully
// resolved under the proof's final bindings (ground wherever the proof bound
// it); Clause is the KB clause the goal resolved against (nil for builtin
// and negation-as-failure nodes); Children prove the clause body in order.
type ProofStep struct {
	Goal     logic.Term
	Neg      bool // negation-as-failure goal (Kind == ProofNAF)
	Kind     ProofKind
	Clause   *logic.Clause
	Children []*ProofStep

	raw logic.Term // goal as posed, before final resolution
	off int32      // renaming offset of raw's variables
}

// proofGoal is one pending goal of the recording prover. out points at the
// Children slice of the proof node the goal's own node belongs under, so the
// flat backtracking recursion builds the right tree shape without a barrier
// between a clause body and the continuation.
type proofGoal struct {
	lit   logic.Literal
	off   int32
	depth int32
	out   *[]*ProofStep
}

// ProveExample is CoversExample with a proof: it reports whether rule covers
// the ground example atom and, when it does, returns the proof tree rooted
// at the example (root Clause is rule, children prove the rule body against
// the KB). The recorder shares the machine's budget; a proof attempt that
// exhausts it fails, exactly like the non-recording engine.
func (m *Machine) ProveExample(rule *logic.Clause, example logic.Term) (*ProofStep, bool) {
	nv := rule.NumVars()
	m.beginQuery(nv)
	defer m.endQuery()
	if !m.bs.Unify(rule.Head, example) {
		return nil, false
	}
	root := &ProofStep{raw: example, Kind: ProofRule, Clause: rule}
	if len(rule.Body) == 0 {
		root.Kind = ProofFact
	}
	goals := make([]proofGoal, len(rule.Body))
	for i, l := range rule.Body {
		goals[i] = proofGoal{lit: l, depth: 1, out: &root.Children}
	}
	if !m.proveTrace(goals) {
		return nil, false
	}
	m.resolveProof(root)
	return root, true
}

// TraceProve proves a single positive goal atom and returns its proof tree.
func (m *Machine) TraceProve(goal logic.Term) (*ProofStep, bool) {
	m.beginQuery(goal.MaxVar() + 1)
	defer m.endQuery()
	var out []*ProofStep
	if !m.proveTrace([]proofGoal{{lit: logic.Lit(goal), out: &out}}) {
		return nil, false
	}
	m.resolveProof(out[0])
	return out[0], true
}

// proveTrace proves the goal list with full SLD backtracking, appending one
// proof node per discharged goal to that goal's out slice (and removing it
// again when the branch fails). It returns on the first complete proof,
// leaving the bindings in place for resolveProof.
func (m *Machine) proveTrace(goals []proofGoal) bool {
	if len(goals) == 0 {
		return true
	}
	if !m.charge() {
		return false
	}
	g := goals[0]
	rest := goals[1:]
	atom := g.lit.Atom
	off := int(g.off)
	if atom.Kind == logic.Var {
		t, _ := m.bs.WalkOff(atom, off)
		if t.Kind == logic.Var {
			return false // unbound goal is not callable
		}
		atom, off = t, 0
	}
	if g.lit.Neg {
		// Negation as failure, same isolation as the engine's subProve.
		if m.subProve(atom, int32(off), g.depth+1, atom.IsGround()) {
			return false
		}
		node := &ProofStep{raw: atom, off: int32(off), Neg: true, Kind: ProofNAF}
		*g.out = append(*g.out, node)
		if m.proveTrace(rest) {
			return true
		}
		*g.out = (*g.out)[:len(*g.out)-1]
		return false
	}
	if fn := builtinFor(atom); fn != nil {
		goal := m.builtinGoal(atom, off)
		mark := m.bs.Mark()
		if fn(m, goal) {
			node := &ProofStep{raw: atom, off: int32(off), Kind: ProofBuiltin}
			*g.out = append(*g.out, node)
			if m.proveTrace(rest) {
				return true
			}
			*g.out = (*g.out)[:len(*g.out)-1]
		}
		m.bs.Undo(mark)
		return false
	}
	if g.depth >= int32(m.budget.MaxDepth) {
		m.budgetHit = true
		return false
	}
	// Collect the candidates first: kb.lookup's visitor must not re-enter
	// the prover, and after indexing candidate sets are small.
	var cands []*storedClause
	m.kb.lookup(m.bs, atom, off, func(sc *storedClause, _ int) bool {
		cands = append(cands, sc)
		return true
	})
	for _, sc := range cands {
		if !m.charge() {
			return false
		}
		base := m.nextVar
		m.nextVar += sc.numVars
		mark := m.bs.Mark()
		if m.unifyHead(atom, off, &sc.clause.Head, base, -1) {
			kind := ProofRule
			if sc.clause.IsFact() {
				kind = ProofFact
			}
			node := &ProofStep{raw: atom, off: int32(off), Kind: kind, Clause: &sc.clause}
			*g.out = append(*g.out, node)
			sub := make([]proofGoal, 0, len(sc.clause.Body)+len(rest))
			for _, bl := range sc.clause.Body {
				sub = append(sub, proofGoal{lit: bl, off: int32(base), depth: g.depth + 1, out: &node.Children})
			}
			sub = append(sub, rest...)
			if m.proveTrace(sub) {
				return true
			}
			*g.out = (*g.out)[:len(*g.out)-1]
		}
		m.bs.Undo(mark)
		m.nextVar = base
	}
	return false
}

// resolveProof rewrites every node's raw goal into its final resolved form
// under the machine's (still live) bindings.
func (m *Machine) resolveProof(n *ProofStep) {
	n.Goal = m.resolveOff(n.raw, int(n.off))
	for _, c := range n.Children {
		m.resolveProof(c)
	}
}

// resolveOff deep-dereferences t whose variables are shifted by off. Unlike
// Bindings.Resolve it threads the renaming offset, so it can materialize
// goals that were posed inside renamed clause instances.
func (m *Machine) resolveOff(t logic.Term, off int) logic.Term {
	t, off = m.bs.WalkOff(t, off)
	if t.Kind != logic.Compound {
		return t
	}
	args := make([]logic.Term, len(t.Args))
	for i := range t.Args {
		args[i] = m.resolveOff(t.Args[i], off)
	}
	return logic.Term{Kind: logic.Compound, Sym: t.Sym, Args: args}
}
