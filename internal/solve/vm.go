package solve

import (
	"os"

	"repro/internal/logic"
)

// This file is the bytecode VM: the dispatch loop that resolves a goal
// against the compiled program from compile.go. It is an exact semantic
// replica of the interpreter's resolveInterp path — same candidate order,
// same charge() sites, same binding and trail traffic, same budget cutoff
// behaviour — with the per-candidate decisions (index merge, head shape
// dispatch, groundness probing) moved to compile time.
//
// Beyond compiled dispatch, the VM's data-movement win over the interpreter
// is the goal-argument walk cache: within one resolution step every
// candidate sees the goal's arguments under the same bindings (each
// candidate's bindings are undone before the next is tried), so arguments
// can be dereferenced once per step instead of once per argument per
// candidate. Because existence queries usually stop at the first matching
// candidate, the cache is filled lazily — the first candidate walks live,
// and the cache is built only when a second candidate is actually visited.

// envNoVM force-disables the VM process-wide (the CI toggle for running the
// whole suite on the interpreter reference path).
var envNoVM = os.Getenv("ILP_NOVM") != ""

// SetNoVM selects the clause-resolution engine for this machine: true pins
// the tree-walking interpreter, false (the default) uses the compiled VM.
// The ILP_NOVM environment variable forces the interpreter regardless.
func (m *Machine) SetNoVM(no bool) { m.novm = no || envNoVM }

// NoVM reports whether this machine is pinned to the interpreter.
func (m *Machine) NoVM() bool { return m.novm }

// walked is one cached goal-argument dereference: the walked term plus the
// renaming offset still pending for its subterms (see Bindings.WalkOff).
type walked struct {
	t   logic.Term
	off int
}

// maxCachedArity bounds the per-step walk cache; goals with more arguments
// (none exist in the bundled datasets) fall back to live walks.
const maxCachedArity = 8

// stepState is the per-resolution-step walk cache. cache points into the
// machine's walk arena (Machine.wbuf): nested resolution steps each carve
// their own window, so the state cannot live as a fixed machine field, and
// the arena avoids zeroing a fixed-size buffer on every step.
type stepState struct {
	cache  []walked
	filled int8  // prefix of cache already walked (by index selection)
	mode   uint8 // 0 = cache not yet attempted, 1 = active, 2 = disabled
}

// fillWalkCache completes the walk cache (arguments [filled, n) — the index
// selection already walked a prefix) and reports whether it may substitute
// for per-candidate walks. It runs between candidates, when the bindings
// are back to their step-entry state, so the entries equal fresh walks. A
// cached entry can go stale mid-candidate only if it is an unbound variable
// that an earlier instruction of the same candidate binds; instructions
// only bind fresh clause variables (≥ the current renaming base, never a
// cached variable), variables inside the arguments they operate on, and
// their own argument's walked variable. So the cache is safe unless some
// variable appears as the walked result of one argument and also occurs in
// another argument's entry — conservatively: two entries walk to the same
// variable, or a variable entry coexists with a non-ground compound entry.
func (m *Machine) fillWalkCache(st *stepState, goal logic.Term, off int) bool {
	cache := st.cache
	n := len(cache)
	for i := int(st.filled); i < n; i++ {
		t, o := m.bs.WalkOff(goal.Args[i], off)
		cache[i] = walked{t: t, off: o}
	}
	st.filled = int8(n)
	nVars := 0
	for i := range cache {
		switch cache[i].t.Kind {
		case logic.Var:
			nVars++
		case logic.Compound:
			if !cache[i].t.IsGround() {
				return false
			}
		}
	}
	if nVars < 2 {
		return true
	}
	for i := range cache {
		if cache[i].t.Kind != logic.Var {
			continue
		}
		for j := i + 1; j < n; j++ {
			if cache[j].t.Kind == logic.Var && cache[j].t.Sym == cache[i].t.Sym {
				return false
			}
		}
	}
	return true
}

// resolveVM resolves goal against its compiled predicate (statically patched
// into the goal frame for compiled body literals, dynamically dispatched via
// program.predFor otherwise), mirroring resolveInterp step for step: select
// the candidate list the interpreter's index selection would scan, then per
// candidate charge the budget, match the head (equality stream for
// ground-fact/ground-goal pairs, head stream otherwise), push the precompiled
// body frames and recurse.
func (m *Machine) resolveVM(cp *compiledPred, atom logic.Term, off int, fr goalFrame, k func() bool) bool {
	var st stepState
	list := cp.all
	n := len(atom.Args)
	if n == 0 {
		st.mode = 2
		return m.runCands(list.cands, atom, off, fr, &st, k)
	}
	// Index selection, replicating pred.selectIndex over the compiled
	// switches: prefer the smaller of the two applicable buckets, probing the
	// second argument only when the first didn't already reduce to at most
	// one candidate; arg1 wins ties. The argument walks are identical to
	// selectIndex's and seed the walk cache.
	var s0, s1 logic.Term
	w0, w0o := m.bs.WalkRef(&atom.Args[0], off, &s0)
	filled := 1
	var w1 *logic.Term
	var w1o int
	var best *candList
	ok := false
	if l, kok := cp.arg1.lookup(w0); kok {
		best, ok = l, true
	}
	if n > 1 && (!ok || best.nFacts > 1) {
		w1, w1o = m.bs.WalkRef(&atom.Args[1], off, &s1)
		filled = 2
		if l2, kok := cp.arg2.lookup(w1); kok {
			if !ok || l2.nFacts < best.nFacts {
				best, ok = l2, true
			}
		}
	}
	if ok {
		list = best
	}
	if n > maxCachedArity {
		st.mode = 2
		return m.runCands(list.cands, atom, off, fr, &st, k)
	}
	wsave := m.wtop
	need := wsave + n
	if cap(m.wbuf) < need {
		m.wbuf = make([]walked, need+4*maxCachedArity)
	}
	cache := m.wbuf[wsave:need:need]
	m.wtop = need
	cache[0] = walked{t: *w0, off: w0o}
	if filled == 2 {
		cache[1] = walked{t: *w1, off: w1o}
	}
	st.cache = cache
	st.filled = int8(filled)
	r := m.runCands(list.cands, atom, off, fr, &st, k)
	m.wtop = wsave
	return r
}

// runCands scans a candidate list (facts in scan order, then rules),
// returning the value the resolution step reports to solve: false only when
// the continuation asked to stop the whole enumeration.
func (m *Machine) runCands(cands []vmCand, atom logic.Term, off int, fr goalFrame, st *stepState, k func() bool) bool {
	restTop := len(m.stack)
	for i := range cands {
		c := &cands[i]
		if !m.charge() {
			return true // budget: abandon this branch
		}
		if fr.ground && c.eq != nil {
			// Ground fact, ground goal: plain equality — no renaming, no
			// trail, nothing to undo.
			if m.runEq(c.eq, atom, off) {
				if !m.solve(k) {
					return false
				}
			}
			continue
		}
		base := m.nextVar
		m.nextVar += c.cc.numVars
		mark := m.bs.Mark()
		var matched bool
		if st.mode == 1 {
			matched = m.runHeadCached(c.head, base, st.cache)
		} else if st.mode == 0 && i > 0 {
			// Second visited candidate: the walk cache will pay for itself
			// now. The bindings are back to their step-entry state here, so
			// the cache fills to exactly the walks the first candidate saw.
			if m.fillWalkCache(st, atom, off) {
				st.mode = 1
				matched = m.runHeadCached(c.head, base, st.cache)
			} else {
				st.mode = 2
				matched = m.runHead(c.head, atom, off, base, nil, 0)
			}
		} else {
			// First candidate of the step (or cache disabled): live walks.
			// The index-selection walks are still untouched for the first
			// candidate, so its first instruction can reuse them.
			var pf int32
			if i == 0 {
				pf = int32(st.filled)
			}
			matched = m.runHead(c.head, atom, off, base, st.cache, pf)
		}
		if matched {
			m.pushFrames(c.cc.frames, int32(base), fr.depth+1)
			if !m.solve(k) {
				m.stack = m.stack[:restTop]
				m.bs.Undo(mark)
				m.nextVar = base
				return false
			}
			m.stack = m.stack[:restTop]
		}
		m.bs.Undo(mark)
		m.nextVar = base
	}
	return true
}

// runHeadCached executes a head-matching stream against the pre-walked goal
// arguments. base is the fresh-variable renaming offset of the clause
// instance.
func (m *Machine) runHeadCached(code []instr, base int, cache []walked) bool {
	bs := m.bs
	for i := range code {
		ins := &code[i]
		w := &cache[ins.arg]
		switch ins.op {
		case opGetAtom:
			switch w.t.Kind {
			case logic.Var:
				bs.Bind(int(w.t.Sym), *ins.term)
			case logic.Atom:
				if w.t.Sym != ins.sym {
					return false
				}
			default:
				return false
			}
		case opGetNum:
			switch {
			case w.t.Kind == logic.Var:
				bs.Bind(int(w.t.Sym), *ins.term)
			case w.t.IsNumber():
				if w.t.Num != ins.num {
					return false
				}
			default:
				return false
			}
		case opGetVar:
			// First executed occurrence: slot v is fresh and unbound, so
			// the clause side needs no walk. Binding direction matches the
			// general unifier: an unbound goal argument binds to the fresh
			// variable; anything else binds the fresh slot to the goal
			// term, materializing the goal-side offset only for non-ground
			// terms.
			v := int(ins.v) + base
			if w.t.Kind == logic.Var {
				if int(w.t.Sym) != v {
					bs.Bind(int(w.t.Sym), logic.V(v))
				}
			} else if w.off == 0 || w.t.IsGround() {
				bs.Bind(v, w.t)
			} else {
				bs.Bind(v, w.t.OffsetVars(w.off))
			}
		default: // opUnify
			if !bs.UnifyOff(w.t, w.off, *ins.term, base) {
				return false
			}
		}
	}
	return true
}

// runHead is runHeadCached's fallback when the cache is cold or unsafe:
// identical dispatch, but every instruction dereferences its goal argument
// live, as the interpreter does. prefix marks how many leading cache entries
// still equal a fresh walk; only the stream's first instruction may consume
// one — before it nothing has been bound since the entries were walked,
// while later instructions must re-walk because an earlier instruction of
// the same candidate may have bound a variable the entry dereferenced.
func (m *Machine) runHead(code []instr, goal logic.Term, off, base int, cache []walked, prefix int32) bool {
	bs := m.bs
	var scratch logic.Term
	for i := range code {
		ins := &code[i]
		var x *logic.Term
		var ox int
		if i == 0 && ins.arg < prefix {
			x, ox = &cache[ins.arg].t, cache[ins.arg].off
		} else {
			x, ox = bs.WalkRef(&goal.Args[ins.arg], off, &scratch)
		}
		switch ins.op {
		case opGetAtom:
			switch x.Kind {
			case logic.Var:
				bs.Bind(int(x.Sym), *ins.term)
			case logic.Atom:
				if x.Sym != ins.sym {
					return false
				}
			default:
				return false
			}
		case opGetNum:
			switch {
			case x.Kind == logic.Var:
				bs.Bind(int(x.Sym), *ins.term)
			case x.IsNumber():
				if x.Num != ins.num {
					return false
				}
			default:
				return false
			}
		case opGetVar:
			v := int(ins.v) + base
			if x.Kind == logic.Var {
				if int(x.Sym) != v {
					bs.Bind(int(x.Sym), logic.V(v))
				}
			} else if ox == 0 || x.IsGround() {
				bs.Bind(v, *x)
			} else {
				bs.Bind(v, x.OffsetVars(ox))
			}
		default: // opUnify
			if !bs.UnifyOff(*x, ox, *ins.term, base) {
				return false
			}
		}
	}
	return true
}

// runEq executes an equality stream: the goal is statically ground, so its
// arguments need no dereferencing and matching cannot bind anything.
func (m *Machine) runEq(code []instr, goal logic.Term, off int) bool {
	for i := range code {
		ins := &code[i]
		g := &goal.Args[ins.arg]
		switch ins.op {
		case opEqAtom:
			if g.Kind != logic.Atom || g.Sym != ins.sym {
				return false
			}
		case opEqNum:
			if !g.IsNumber() || g.Num != ins.num {
				return false
			}
		default: // opEqTerm
			if !m.bs.EqualGroundOff(*g, off, *ins.term) {
				return false
			}
		}
	}
	return true
}

// pushFrames block-copies a clause's precompiled body frames onto the goal
// stack, patching in the renaming offset and depth. The frames are already
// in push (reverse) order with static groundness flags baked in, so this is
// the compiled equivalent of pushGoals.
func (m *Machine) pushFrames(frames []goalFrame, off, depth int32) {
	for i := range frames {
		fr := frames[i]
		fr.off = off
		fr.depth = depth
		m.stack = append(m.stack, fr)
	}
}
