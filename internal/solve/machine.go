package solve

import (
	"repro/internal/logic"
)

// Budget bounds a proof attempt. A proof that exhausts the budget counts as
// a failure (the standard ILP convention for h-bounded deduction: what cannot
// be derived within the resource bound is treated as not entailed).
type Budget struct {
	// MaxDepth bounds the resolution depth (proof tree height). ≤0 means 64.
	MaxDepth int
	// MaxInferences bounds the number of resolution/builtin steps for a
	// single query. ≤0 means 1<<20.
	MaxInferences int64
}

// The default bounds, defined once: withDefaults, DefaultBudget and any
// other defaulting site must agree on these numbers.
const (
	defaultMaxDepth      = 64
	defaultMaxInferences = 1 << 20
)

func (b Budget) withDefaults() Budget {
	if b.MaxDepth <= 0 {
		b.MaxDepth = defaultMaxDepth
	}
	if b.MaxInferences <= 0 {
		b.MaxInferences = defaultMaxInferences
	}
	return b
}

// DefaultBudget is a generous bound suitable for the bundled datasets.
var DefaultBudget = Budget{MaxDepth: defaultMaxDepth, MaxInferences: defaultMaxInferences}

// goalFrame is one pending goal on the machine's reusable goal stack. Each
// frame carries its own resolution depth (clause-body goals deepen while
// siblings do not) and the variable-renaming offset of the clause instance
// the literal came from, so program clauses are never copied to be renamed
// apart: the offset is threaded through unification instead.
type goalFrame struct {
	lit   logic.Literal
	off   int32 // variable-renaming offset for lit's variables
	depth int32
	// ground marks a statically ground goal atom (no variables in the
	// literal as written), enabling the equality-only match against ground
	// facts without any per-candidate groundness probing.
	ground bool
	// cp is the compiled predicate this goal statically resolves to, set
	// only on frames pushed from compiled clause bodies (the VM path): for
	// those the negation/variable/builtin dispatch was decided at compile
	// time. nil means the goal dispatches dynamically.
	cp *compiledPred
}

// Machine is a single-goroutine SLD resolution engine over a shared KB.
// Total inferences accumulate across queries; this counter is the work
// measure that drives the simulated cluster's virtual clocks.
//
// The engine allocates nothing in steady state: pending goals live on a
// machine-owned stack whose backing array is reused across queries, clause
// renaming is an arithmetic offset rather than a term copy, and builtin
// arguments are materialized into a scratch buffer.
type Machine struct {
	kb     *KB
	bs     *logic.Bindings
	budget Budget

	// novm pins the machine to the tree-walking interpreter; by default
	// queries resolve through the compiled bytecode VM (vm.go). prog is the
	// compiled program snapshot for the current query, nil on the
	// interpreter path.
	novm bool
	prog *program

	nextVar    int   // next fresh variable index for clause renaming
	queryInf   int64 // inferences spent in the current query
	totalInf   int64 // inferences spent since construction/reset
	budgetHit  bool  // current query hit its budget
	anyCutoffs int64 // queries that hit a budget since construction

	stack   []goalFrame  // pending goals; the top is the last element
	base    int          // stack bottom of the current (sub)proof
	binArgs []logic.Term // scratch for builtin argument materialization

	// wbuf/wtop form the arena for the VM's per-step goal-argument walk
	// caches: nested resolution steps carve disjoint windows off wbuf so no
	// per-step zeroing or allocation happens.
	wbuf []walked
	wtop int
}

// NewMachine returns a machine over kb with the given budget.
func NewMachine(kb *KB, budget Budget) *Machine {
	return &Machine{kb: kb, bs: logic.NewBindings(64), budget: budget.withDefaults(), novm: envNoVM}
}

// KB returns the machine's knowledge base.
func (m *Machine) KB() *KB { return m.kb }

// SetKB swaps the knowledge base (used when a worker extends its background
// with learned rules between epochs).
func (m *Machine) SetKB(kb *KB) { m.kb = kb }

// TotalInferences reports inferences accumulated over all queries.
func (m *Machine) TotalInferences() int64 { return m.totalInf }

// AddInferences charges extra work units to the machine (used by callers to
// account for non-deductive work, e.g. clause construction, in the same
// currency as proofs).
func (m *Machine) AddInferences(n int64) { m.totalInf += n }

// CutoffQueries reports how many queries were truncated by the budget.
func (m *Machine) CutoffQueries() int64 { return m.anyCutoffs }

// ResetCounters zeroes the accumulated inference statistics.
func (m *Machine) ResetCounters() { m.totalInf = 0; m.anyCutoffs = 0 }

// beginQuery prepares per-query state; vars [0, nVars) are reserved for the
// caller's goal variables.
func (m *Machine) beginQuery(nVars int) {
	if m.novm || m.kb == nil {
		m.prog = nil
	} else {
		m.prog = m.kb.program()
	}
	m.bs.Undo(0)
	m.nextVar = nVars
	m.queryInf = 0
	m.budgetHit = false
	m.stack = m.stack[:0]
	m.base = 0
	m.wtop = 0
}

func (m *Machine) endQuery() {
	m.totalInf += m.queryInf
	if m.budgetHit {
		m.anyCutoffs++
	}
}

// charge counts one inference step; it reports false when the budget is
// exhausted, which aborts the current branch.
func (m *Machine) charge() bool {
	m.queryInf++
	if m.queryInf >= m.budget.MaxInferences {
		m.budgetHit = true
		return false
	}
	return true
}

// pushGoals pushes body in reverse so the leftmost literal is popped first.
// ground carries the per-literal static groundness flags (may be nil).
func (m *Machine) pushGoals(body []logic.Literal, ground []bool, off, depth int32) {
	for i := len(body) - 1; i >= 0; i-- {
		fr := goalFrame{lit: body[i], off: off, depth: depth}
		if ground != nil && ground[i] {
			fr.ground = true
		}
		m.stack = append(m.stack, fr)
	}
}

// pushQueryGoals pushes caller-supplied goals, computing their static
// groundness once per query.
func (m *Machine) pushQueryGoals(goals []logic.Literal) {
	for i := len(goals) - 1; i >= 0; i-- {
		m.stack = append(m.stack, goalFrame{lit: goals[i], ground: goals[i].Atom.IsGround()})
	}
}

// Solve enumerates solutions of the conjunction goals, whose variables are
// numbered below nVars. For each solution it calls yield with the machine's
// bindings (valid only during the call); yield returns false to stop the
// enumeration. Solve reports whether at least one solution was found.
func (m *Machine) Solve(goals []logic.Literal, nVars int, yield func(*logic.Bindings) bool) bool {
	m.beginQuery(nVars)
	defer m.endQuery()
	m.pushQueryGoals(goals)
	found := false
	m.solve(func() bool {
		found = true
		return yield(m.bs)
	})
	return found
}

// Prove reports whether the conjunction goals has at least one solution.
func (m *Machine) Prove(goals []logic.Literal, nVars int) bool {
	m.beginQuery(nVars)
	defer m.endQuery()
	m.pushQueryGoals(goals)
	found := false
	m.solve(func() bool {
		found = true
		return false
	})
	return found
}

// ProveAtom proves a single positive goal.
func (m *Machine) ProveAtom(goal logic.Term) bool {
	return m.Prove([]logic.Literal{logic.Lit(goal)}, goal.MaxVar()+1)
}

// CoversExample reports whether rule covers the ground example atom: the
// rule head must unify with the example and the body must then be provable
// from the KB.
func (m *Machine) CoversExample(rule *logic.Clause, example logic.Term) bool {
	nv := rule.NumVars()
	m.beginQuery(nv)
	defer m.endQuery()
	if !m.bs.Unify(rule.Head, example) {
		return false
	}
	m.pushQueryGoals(rule.Body)
	found := false
	m.solve(func() bool {
		found = true
		return false
	})
	return found
}

// solve runs the SLD search over the pending goal stack. The continuation k
// is invoked at each solution and returns whether to keep searching.
// solve's own return value has the same meaning (false = stop everything).
// solve leaves the stack exactly as it found it.
func (m *Machine) solve(k func() bool) bool {
	top := len(m.stack)
	if top == m.base {
		return k()
	}
	top--
	fr := m.stack[top]
	m.stack = m.stack[:top]
	cont := m.step(fr, k)
	m.stack = append(m.stack[:top], fr)
	return cont
}

// step resolves one popped goal frame against builtins or the KB.
func (m *Machine) step(fr goalFrame, k func() bool) bool {
	if !m.charge() {
		return true // budget: abandon this branch, enumeration "completes"
	}
	if fr.cp != nil {
		// Statically dispatched compiled goal: the compiler proved it is a
		// positive non-variable non-builtin atom, so only the depth check
		// remains before KB resolution.
		if fr.depth >= int32(m.budget.MaxDepth) {
			m.budgetHit = true
			return true
		}
		return m.resolveVM(fr.cp, fr.lit.Atom, int(fr.off), fr, k)
	}
	g := fr.lit
	if g.Neg {
		// Negation as failure: succeed iff the positive goal has no proof.
		if m.subProve(g.Atom, fr.off, fr.depth+1, fr.ground) {
			return true
		}
		return m.solve(k)
	}
	atom := g.Atom
	off := int(fr.off)
	if atom.Kind == logic.Var {
		// A variable goal must be bound to something callable to be provable.
		// WalkOff consumes the offset at the first dereference and slots are
		// stored offset-free, so the walked term needs no further renaming.
		t, _ := m.bs.WalkOff(atom, off)
		if t.Kind == logic.Var {
			return true
		}
		atom, off = t, 0
	}
	if fn := builtinFor(atom); fn != nil {
		goal := m.builtinGoal(atom, off)
		mark := m.bs.Mark()
		if fn(m, goal) {
			if !m.solve(k) {
				return false
			}
		}
		m.bs.Undo(mark)
		return true
	}
	if fr.depth >= int32(m.budget.MaxDepth) {
		m.budgetHit = true
		return true
	}
	if m.prog != nil {
		cp := m.prog.predFor(atom)
		if cp == nil {
			return true
		}
		return m.resolveVM(cp, atom, off, fr, k)
	}
	return m.resolveInterp(atom, off, fr, k)
}

// resolveInterp resolves a goal by tree-walking the KB directly: the
// reference engine the compiled VM (vm.go) must match bit for bit. It stays
// in-tree behind Settings.NoVM / ILP_NOVM both as the differential-testing
// oracle and as the fallback path.
func (m *Machine) resolveInterp(atom logic.Term, off int, fr goalFrame, k func() bool) bool {
	restTop := len(m.stack)
	cont := true
	m.kb.lookup(m.bs, atom, off, func(sc *storedClause, skip int) bool {
		if !m.charge() {
			cont = true
			return false
		}
		if sc.ground && fr.ground {
			// Ground fact, ground goal: matching is plain equality — no
			// renaming, no trail, nothing to undo.
			if m.groundMatch(atom, off, &sc.clause.Head, skip) {
				if !m.solve(k) {
					cont = false
					return false
				}
			}
			return true
		}
		base := m.nextVar
		m.nextVar += sc.numVars
		mark := m.bs.Mark()
		var matched bool
		if sc.numVars == 0 {
			// Var-free clause: head arguments are ground, so they need no
			// walking, no renaming offset, and can only be bound to — the
			// dominant case for ILP background facts.
			matched = m.matchGroundHead(atom, off, &sc.clause.Head, skip)
		} else {
			matched = m.unifyHead(atom, off, &sc.clause.Head, base, skip)
		}
		if matched {
			m.pushGoals(sc.clause.Body, sc.bodyGround, int32(base), fr.depth+1)
			if !m.solve(k) {
				cont = false
				m.stack = m.stack[:restTop]
				m.bs.Undo(mark)
				m.nextVar = base
				return false
			}
			m.stack = m.stack[:restTop]
		}
		m.bs.Undo(mark)
		m.nextVar = base
		return true
	})
	return cont
}

// unifyHead unifies a goal with a clause head of the same predicate,
// skipping the argument position the fact index already proved equal.
func (m *Machine) unifyHead(goal logic.Term, off int, head *logic.Term, hoff, skip int) bool {
	for i := range goal.Args {
		if i == skip {
			continue
		}
		if !m.bs.UnifyOff(goal.Args[i], off, head.Args[i], hoff) {
			return false
		}
	}
	return true
}

// matchGroundHead unifies a goal with the head of a var-free clause: every
// head argument is ground, so per argument the goal side walks once and is
// then either bound (if unbound) or compared.
func (m *Machine) matchGroundHead(goal logic.Term, off int, head *logic.Term, skip int) bool {
	bs := m.bs
	for i := range goal.Args {
		if i == skip {
			continue
		}
		ha := head.Args[i]
		ga, go_ := bs.WalkOff(goal.Args[i], off)
		switch ga.Kind {
		case logic.Var:
			bs.Bind(int(ga.Sym), ha)
		case logic.Atom:
			if ha.Kind != logic.Atom || ga.Sym != ha.Sym {
				return false
			}
		case logic.Int, logic.Float:
			if !ha.IsNumber() || ga.Num != ha.Num {
				return false
			}
		default:
			if !bs.UnifyOff(ga, go_, ha, 0) {
				return false
			}
		}
	}
	return true
}

// groundMatch compares a ground goal with a ground fact head argument-wise,
// skipping the index-proved position.
func (m *Machine) groundMatch(goal logic.Term, off int, head *logic.Term, skip int) bool {
	for i := range goal.Args {
		if i == skip {
			continue
		}
		if !m.bs.EqualGroundOff(goal.Args[i], off, head.Args[i]) {
			return false
		}
	}
	return true
}

// subProve runs an isolated subproof of a single goal (used for negation as
// failure): the goals pending below the current stack top must not be
// touched, so the proof runs above a raised stack base.
func (m *Machine) subProve(atom logic.Term, off, depth int32, ground bool) bool {
	savedBase := m.base
	m.base = len(m.stack)
	m.stack = append(m.stack, goalFrame{lit: logic.Lit(atom), off: off, depth: depth, ground: ground})
	proved := false
	m.solve(func() bool {
		proved = true
		return false
	})
	m.stack = m.stack[:m.base]
	m.base = savedBase
	return proved
}

// builtinGoal materializes a builtin goal's arguments offset-free into the
// machine's scratch buffer. Builtins read their arguments and return before
// any further resolution happens, so one reusable buffer suffices; bindings
// only ever store value copies of its elements, never the buffer itself.
func (m *Machine) builtinGoal(atom logic.Term, off int) logic.Term {
	if atom.Kind != logic.Compound {
		return atom
	}
	n := len(atom.Args)
	if cap(m.binArgs) < n {
		m.binArgs = make([]logic.Term, n, 2*n+4)
	}
	args := m.binArgs[:n]
	for i := range atom.Args {
		t, o := m.bs.WalkOff(atom.Args[i], off)
		if o != 0 && t.Kind == logic.Compound && !t.IsGround() {
			t = t.OffsetVars(o)
		}
		args[i] = t
	}
	return logic.Term{Kind: logic.Compound, Sym: atom.Sym, Args: args}
}
