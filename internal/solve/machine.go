package solve

import (
	"repro/internal/logic"
)

// Budget bounds a proof attempt. A proof that exhausts the budget counts as
// a failure (the standard ILP convention for h-bounded deduction: what cannot
// be derived within the resource bound is treated as not entailed).
type Budget struct {
	// MaxDepth bounds the resolution depth (proof tree height). ≤0 means 64.
	MaxDepth int
	// MaxInferences bounds the number of resolution/builtin steps for a
	// single query. ≤0 means 1<<20.
	MaxInferences int64
}

func (b Budget) withDefaults() Budget {
	if b.MaxDepth <= 0 {
		b.MaxDepth = 64
	}
	if b.MaxInferences <= 0 {
		b.MaxInferences = 1 << 20
	}
	return b
}

// DefaultBudget is a generous bound suitable for the bundled datasets.
var DefaultBudget = Budget{MaxDepth: 64, MaxInferences: 1 << 20}

// goalList is a persistent stack of pending goals; each carries its own
// resolution depth so clause-body goals deepen while siblings do not.
type goalList struct {
	lit   logic.Literal
	depth int
	next  *goalList
}

func pushGoals(body []logic.Literal, depth int, rest *goalList) *goalList {
	for i := len(body) - 1; i >= 0; i-- {
		rest = &goalList{lit: body[i], depth: depth, next: rest}
	}
	return rest
}

// Machine is a single-goroutine SLD resolution engine over a shared KB.
// Total inferences accumulate across queries; this counter is the work
// measure that drives the simulated cluster's virtual clocks.
type Machine struct {
	kb     *KB
	bs     *logic.Bindings
	budget Budget

	nextVar    int   // next fresh variable index for clause renaming
	queryInf   int64 // inferences spent in the current query
	totalInf   int64 // inferences spent since construction/reset
	budgetHit  bool  // current query hit its budget
	anyCutoffs int64 // queries that hit a budget since construction
}

// NewMachine returns a machine over kb with the given budget.
func NewMachine(kb *KB, budget Budget) *Machine {
	return &Machine{kb: kb, bs: logic.NewBindings(64), budget: budget.withDefaults()}
}

// KB returns the machine's knowledge base.
func (m *Machine) KB() *KB { return m.kb }

// SetKB swaps the knowledge base (used when a worker extends its background
// with learned rules between epochs).
func (m *Machine) SetKB(kb *KB) { m.kb = kb }

// TotalInferences reports inferences accumulated over all queries.
func (m *Machine) TotalInferences() int64 { return m.totalInf }

// AddInferences charges extra work units to the machine (used by callers to
// account for non-deductive work, e.g. clause construction, in the same
// currency as proofs).
func (m *Machine) AddInferences(n int64) { m.totalInf += n }

// CutoffQueries reports how many queries were truncated by the budget.
func (m *Machine) CutoffQueries() int64 { return m.anyCutoffs }

// ResetCounters zeroes the accumulated inference statistics.
func (m *Machine) ResetCounters() { m.totalInf = 0; m.anyCutoffs = 0 }

// beginQuery prepares per-query state; vars [0, nVars) are reserved for the
// caller's goal variables.
func (m *Machine) beginQuery(nVars int) {
	m.bs.Undo(0)
	m.nextVar = nVars
	m.queryInf = 0
	m.budgetHit = false
}

func (m *Machine) endQuery() {
	m.totalInf += m.queryInf
	if m.budgetHit {
		m.anyCutoffs++
	}
}

// charge counts one inference step; it reports false when the budget is
// exhausted, which aborts the current branch.
func (m *Machine) charge() bool {
	m.queryInf++
	if m.queryInf >= m.budget.MaxInferences {
		m.budgetHit = true
		return false
	}
	return true
}

// Solve enumerates solutions of the conjunction goals, whose variables are
// numbered below nVars. For each solution it calls yield with the machine's
// bindings (valid only during the call); yield returns false to stop the
// enumeration. Solve reports whether at least one solution was found.
func (m *Machine) Solve(goals []logic.Literal, nVars int, yield func(*logic.Bindings) bool) bool {
	m.beginQuery(nVars)
	defer m.endQuery()
	found := false
	m.solve(pushGoals(goals, 0, nil), func() bool {
		found = true
		return yield(m.bs)
	})
	return found
}

// Prove reports whether the conjunction goals has at least one solution.
func (m *Machine) Prove(goals []logic.Literal, nVars int) bool {
	m.beginQuery(nVars)
	defer m.endQuery()
	found := false
	m.solve(pushGoals(goals, 0, nil), func() bool {
		found = true
		return false
	})
	return found
}

// ProveAtom proves a single positive goal.
func (m *Machine) ProveAtom(goal logic.Term) bool {
	return m.Prove([]logic.Literal{logic.Lit(goal)}, goal.MaxVar()+1)
}

// CoversExample reports whether rule covers the ground example atom: the
// rule head must unify with the example and the body must then be provable
// from the KB.
func (m *Machine) CoversExample(rule *logic.Clause, example logic.Term) bool {
	nv := rule.NumVars()
	m.beginQuery(nv)
	defer m.endQuery()
	if !m.bs.Unify(rule.Head, example) {
		return false
	}
	found := false
	m.solve(pushGoals(rule.Body, 0, nil), func() bool {
		found = true
		return false
	})
	return found
}

// solve runs the SLD search over the pending goal list. The continuation k
// is invoked at each solution and returns whether to keep searching.
// solve's own return value has the same meaning (false = stop everything).
func (m *Machine) solve(goals *goalList, k func() bool) bool {
	if goals == nil {
		return k()
	}
	g := goals.lit
	rest := goals.next
	if !m.charge() {
		return true // budget: abandon this branch, enumeration "completes"
	}
	if g.Neg {
		// Negation as failure: succeed iff the positive goal has no proof.
		proved := false
		m.solve(&goalList{lit: logic.Lit(g.Atom), depth: goals.depth + 1}, func() bool {
			proved = true
			return false
		})
		if proved {
			return true
		}
		return m.solve(rest, k)
	}
	goal := m.resolveShallow(g.Atom)
	if fn, ok := builtins[goal.Pred()]; ok {
		mark := m.bs.Mark()
		ok := fn(m, goal)
		if ok {
			if !m.solve(rest, k) {
				return false
			}
		}
		m.bs.Undo(mark)
		return true
	}
	if goals.depth >= m.budget.MaxDepth {
		m.budgetHit = true
		return true
	}
	cont := true
	m.kb.lookup(goal, func(sc storedClause) bool {
		if !m.charge() {
			cont = true
			return false
		}
		base := m.nextVar
		rc := sc.clause
		if sc.numVars > 0 {
			// Rename the clause apart; ground clauses (the vast majority
			// of ILP background facts) need no copy.
			rc = sc.clause.OffsetVars(base)
		}
		m.nextVar += sc.numVars
		mark := m.bs.Mark()
		if m.bs.Unify(goal, rc.Head) {
			sub := pushGoals(rc.Body, goals.depth+1, rest)
			if !m.solve(sub, k) {
				cont = false
				m.bs.Undo(mark)
				m.nextVar = base
				return false
			}
		}
		m.bs.Undo(mark)
		m.nextVar = base
		return true
	})
	return cont
}

// resolveShallow dereferences the goal's top level and its immediate
// arguments enough for indexing and builtin dispatch, without deep-copying
// nested structure.
func (m *Machine) resolveShallow(t logic.Term) logic.Term {
	t = m.bs.Walk(t)
	if t.Kind != logic.Compound {
		return t
	}
	args := make([]logic.Term, len(t.Args))
	for i := range t.Args {
		args[i] = m.bs.Walk(t.Args[i])
	}
	return logic.Term{Kind: logic.Compound, Sym: t.Sym, Args: args}
}
