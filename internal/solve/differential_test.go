package solve

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/logic"
)

// This file pits the goal-stack engine against a reference prover that
// replicates the pre-rewrite semantics: a persistent linked goal list,
// OffsetVars clause renaming and per-goal shallow resolution. Both engines
// share the KB's candidate selection, so on any program and goal they must
// produce the same solutions in the same order, charge the same number of
// inferences and hit the same budget cutoffs.

// refGoals is the reference engine's persistent goal stack.
type refGoals struct {
	lit   logic.Literal
	depth int
	next  *refGoals
}

func refPush(body []logic.Literal, depth int, rest *refGoals) *refGoals {
	for i := len(body) - 1; i >= 0; i-- {
		rest = &refGoals{lit: body[i], depth: depth, next: rest}
	}
	return rest
}

// refMachine is the reference SLD engine (heap-allocating, copy-renaming).
type refMachine struct {
	kb     *KB
	bs     *logic.Bindings
	budget Budget

	nextVar   int
	queryInf  int64
	totalInf  int64
	budgetHit bool
	cutoffs   int64
}

func newRefMachine(kb *KB, budget Budget) *refMachine {
	return &refMachine{kb: kb, bs: logic.NewBindings(64), budget: budget.withDefaults()}
}

func (m *refMachine) charge() bool {
	m.queryInf++
	if m.queryInf >= m.budget.MaxInferences {
		m.budgetHit = true
		return false
	}
	return true
}

func (m *refMachine) solveQuery(goals []logic.Literal, nVars int, yield func(*logic.Bindings) bool) {
	m.bs.Undo(0)
	m.nextVar = nVars
	m.queryInf = 0
	m.budgetHit = false
	m.solve(refPush(goals, 0, nil), func() bool { return yield(m.bs) })
	m.totalInf += m.queryInf
	if m.budgetHit {
		m.cutoffs++
	}
}

func (m *refMachine) solve(goals *refGoals, k func() bool) bool {
	if goals == nil {
		return k()
	}
	g := goals.lit
	rest := goals.next
	if !m.charge() {
		return true
	}
	if g.Neg {
		proved := false
		m.solve(&refGoals{lit: logic.Lit(g.Atom), depth: goals.depth + 1}, func() bool {
			proved = true
			return false
		})
		if proved {
			return true
		}
		return m.solve(rest, k)
	}
	goal := m.resolveShallow(g.Atom)
	if fn := builtinFor(goal); fn != nil {
		mark := m.bs.Mark()
		ok := fn2ref(fn)(m, goal)
		if ok {
			if !m.solve(rest, k) {
				return false
			}
		}
		m.bs.Undo(mark)
		return true
	}
	if goals.depth >= m.budget.MaxDepth {
		m.budgetHit = true
		return true
	}
	cont := true
	m.kb.lookup(m.bs, goal, 0, func(sc *storedClause, _ int) bool {
		if !m.charge() {
			cont = true
			return false
		}
		base := m.nextVar
		rc := sc.clause
		if sc.numVars > 0 {
			rc = sc.clause.OffsetVars(base)
		}
		m.nextVar += sc.numVars
		mark := m.bs.Mark()
		if m.bs.Unify(goal, rc.Head) {
			sub := refPush(rc.Body, goals.depth+1, rest)
			if !m.solve(sub, k) {
				cont = false
				m.bs.Undo(mark)
				m.nextVar = base
				return false
			}
		}
		m.bs.Undo(mark)
		m.nextVar = base
		return true
	})
	return cont
}

func (m *refMachine) resolveShallow(t logic.Term) logic.Term {
	t = m.bs.Walk(t)
	if t.Kind != logic.Compound {
		return t
	}
	args := make([]logic.Term, len(t.Args))
	for i := range t.Args {
		args[i] = m.bs.Walk(t.Args[i])
	}
	return logic.Term{Kind: logic.Compound, Sym: t.Sym, Args: args}
}

// fn2ref adapts a builtin to the reference machine: builtins only touch the
// bindings store and arithmetic, so a shim Machine around the same store
// evaluates them identically.
func fn2ref(fn builtinFn) func(*refMachine, logic.Term) bool {
	return func(m *refMachine, goal logic.Term) bool {
		shim := &Machine{bs: m.bs, budget: m.budget}
		return fn(shim, goal)
	}
}

// genProgram builds a random definite program with ground facts, var-headed
// facts, chain rules, recursion and negation.
func genProgram(rng *rand.Rand) *KB {
	kb := NewKB()
	consts := []string{"a", "b", "c", "d", "e", "f"}
	randConst := func() logic.Term {
		if rng.Intn(5) == 0 {
			return logic.IntTerm(int64(rng.Intn(4)))
		}
		return logic.A(consts[rng.Intn(len(consts))])
	}
	// Ground facts over p/2, q/2, r/1.
	for i := 0; i < 25+rng.Intn(25); i++ {
		kb.AddFact(logic.Comp("p", randConst(), randConst()))
	}
	for i := 0; i < 15+rng.Intn(15); i++ {
		kb.AddFact(logic.Comp("q", randConst(), randConst()))
	}
	for i := 0; i < 8; i++ {
		kb.AddFact(logic.Comp("r", randConst()))
	}
	// A few facts with variable or compound arguments (unindexed paths).
	if rng.Intn(2) == 0 {
		kb.Add(logic.MustParseClause("p(X, wild)."))
	}
	if rng.Intn(2) == 0 {
		kb.AddFact(logic.Comp("q", logic.Comp("f", randConst()), randConst()))
	}
	// Chain rules: s(X,Y) :- p(X,Z), q(Z,Y).  t(X) :- s(X,Y), r(Y).
	kb.Add(logic.MustParseClause("s(X, Y) :- p(X, Z), q(Z, Y)."))
	kb.Add(logic.MustParseClause("t(X) :- s(X, Y), r(Y)."))
	// Recursion with a base case.
	kb.Add(logic.MustParseClause("reach(X, Y) :- p(X, Y)."))
	kb.Add(logic.MustParseClause("reach(X, Y) :- p(X, Z), reach(Z, Y)."))
	// Negation and builtins.
	kb.Add(logic.MustParseClause("lone(X) :- r(X), \\+p(X, X)."))
	kb.Add(logic.MustParseClause("gt(X, Y) :- p(X, Y), X \\= Y."))
	return kb
}

// genGoal builds a random query (conjunction) over the program's predicates.
func genGoal(rng *rand.Rand) ([]logic.Literal, int) {
	preds := []struct {
		name  string
		arity int
	}{{"p", 2}, {"q", 2}, {"r", 1}, {"s", 2}, {"t", 1}, {"reach", 2}, {"lone", 1}, {"gt", 2}}
	consts := []string{"a", "b", "c", "d", "e", "f", "zz"}
	nVars := 0
	var lits []logic.Literal
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		pd := preds[rng.Intn(len(preds))]
		args := make([]logic.Term, pd.arity)
		for j := range args {
			switch rng.Intn(3) {
			case 0:
				args[j] = logic.V(rng.Intn(3)) // shared variables across literals
				if args[j].VarIndex() >= nVars {
					nVars = args[j].VarIndex() + 1
				}
			case 1:
				args[j] = logic.A(consts[rng.Intn(len(consts))])
			default:
				args[j] = logic.IntTerm(int64(rng.Intn(4)))
			}
		}
		lit := logic.Lit(logic.Comp(pd.name, args...))
		if rng.Intn(8) == 0 && i > 0 {
			lit.Neg = true
		}
		lits = append(lits, lit)
	}
	return lits, nVars
}

func solutionString(bs *logic.Bindings, nVars int) string {
	var b strings.Builder
	for v := 0; v < nVars; v++ {
		if v > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(bs.Resolve(logic.V(v)).String())
	}
	return b.String()
}

func TestDifferentialGoalStackVsReference(t *testing.T) {
	budget := Budget{MaxDepth: 12, MaxInferences: 4000}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		kb := genProgram(rng)
		m := NewMachine(kb, budget)
		ref := newRefMachine(kb, budget)
		for q := 0; q < 25; q++ {
			goals, nVars := genGoal(rng)
			var got, want []string
			m.Solve(goals, nVars, func(bs *logic.Bindings) bool {
				got = append(got, solutionString(bs, nVars))
				return len(got) < 200
			})
			ref.solveQuery(goals, nVars, func(bs *logic.Bindings) bool {
				want = append(want, solutionString(bs, nVars))
				return len(want) < 200
			})
			goalsStr := func() string {
				parts := make([]string, len(goals))
				for i, g := range goals {
					parts[i] = g.String()
				}
				return strings.Join(parts, ", ")
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d query %d (%s): %d solutions, reference %d\n got: %v\nwant: %v",
					seed, q, goalsStr(), len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d query %d (%s): solution %d = %q, reference %q",
						seed, q, goalsStr(), i, got[i], want[i])
				}
			}
			if m.TotalInferences() != ref.totalInf {
				t.Fatalf("seed %d query %d (%s): %d total inferences, reference %d",
					seed, q, goalsStr(), m.TotalInferences(), ref.totalInf)
			}
			if m.CutoffQueries() != ref.cutoffs {
				t.Fatalf("seed %d query %d (%s): %d cutoffs, reference %d",
					seed, q, goalsStr(), m.CutoffQueries(), ref.cutoffs)
			}
		}
	}
}

// TestSecondArgIndexMatchesScan checks that second-argument indexing and
// index selection return exactly the solutions of a full scan.
func TestSecondArgIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type row struct{ a, b, c int }
	var rows []row
	kb := NewKB()
	for i := 0; i < 400; i++ {
		r := row{rng.Intn(10), rng.Intn(10), rng.Intn(5)}
		rows = append(rows, r)
		kb.AddFact(logic.Comp("e",
			logic.A(fmt.Sprintf("x%d", r.a)),
			logic.A(fmt.Sprintf("y%d", r.b)),
			logic.IntTerm(int64(r.c))))
	}
	// A couple of var-argument facts keep the unindexed merge paths honest.
	kb.Add(logic.MustParseClause("e(x0, Y, 99)."))
	kb.Add(logic.MustParseClause("e(X, y0, 98)."))
	m := NewMachine(kb, DefaultBudget)

	count := func(goal logic.Term, nv int) int {
		n := 0
		m.Solve([]logic.Literal{logic.Lit(goal)}, nv, func(*logic.Bindings) bool {
			n++
			return true
		})
		return n
	}
	for b := 0; b < 10; b++ {
		want := 0
		for _, r := range rows {
			if r.b == b {
				want++
			}
		}
		want++ // e(x0, Y, 99) has a variable second arg and matches any y
		if b == 0 {
			want++ // e(X, y0, 98)
		}
		goal := logic.Comp("e", logic.V(0), logic.A(fmt.Sprintf("y%d", b)), logic.V(1))
		if got := count(goal, 2); got != want {
			t.Fatalf("second-arg y%d: got %d solutions, want %d", b, got, want)
		}
	}
	// Both args bound: the engine picks the smaller bucket; results must
	// match a straight count either way.
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			want := 0
			for _, r := range rows {
				if r.a == a && r.b == b {
					want++
				}
			}
			if a == 0 {
				want++ // e(x0, Y, 99)
			}
			if b == 0 {
				want++ // e(X, y0, 98)
			}
			goal := logic.Comp("e",
				logic.A(fmt.Sprintf("x%d", a)),
				logic.A(fmt.Sprintf("y%d", b)),
				logic.V(0))
			if got := count(goal, 1); got != want {
				t.Fatalf("x%d,y%d: got %d solutions, want %d", a, b, got, want)
			}
		}
	}
}
