package solve

import (
	"repro/internal/logic"
)

// This file is the clause compiler: it translates a populated KB into the
// flat bytecode form the VM in vm.go executes. Compilation happens once per
// KB (lazily, on the first query of any machine with the VM enabled) and the
// resulting program is immutable, so it is shared read-only by every machine
// over that KB — all pool checkouts and evaluator shards resolve against the
// same compiled clauses. KB.Add invalidates the cached program; the next
// query recompiles.
//
// The compilation scheme specializes exactly the decisions the tree-walking
// interpreter makes dynamically, so the VM's observable behaviour — solution
// order, binding/trail traffic, inference counts, budget cutoffs — is
// bit-identical to the interpreter's:
//
//   - Each head argument position becomes one instruction chosen by the
//     argument's shape (get-atom, get-number, get-variable, or a general
//     unify for repeated variables and structures).
//   - Ground facts additionally get an equality-only stream (eq-atom,
//     eq-number, eq-term) used when the goal is statically ground — the
//     compiled form of the interpreter's trail-free groundMatch fast path.
//   - The first-/second-argument fact indexes become switch instructions
//     that jump from a goal argument constant straight to a precomputed
//     candidate list: the index bucket merged with the never-indexed facts
//     in insertion order followed by the rules, exactly the sequence the
//     interpreter's scanMerged + scanRules produces at runtime. Symbol keys
//     dispatch through a dense array (symbols are small interned integers)
//     instead of a hash map.
//   - Predicate dispatch likewise compiles to a direct symbol-indexed table
//     for the common case of one arity per functor symbol.
//   - Clause bodies become pre-built goal frames (literal + static
//     groundness) that are block-copied onto the goal stack with only the
//     renaming offset and depth patched in.

// op is a VM instruction opcode.
type op uint8

const (
	// opGetAtom matches a head argument that is a constant symbol: the goal
	// argument is dereferenced, then bound (if a variable) or compared.
	opGetAtom op = iota
	// opGetNum matches a numeric head argument (Int and Float compare
	// numerically, as unification does).
	opGetNum
	// opGetVar matches the first executed occurrence of a head variable.
	// Its fresh slot is guaranteed unbound, so the general unifier's walk of
	// the clause side is skipped: the goal argument is dereferenced and one
	// side is bound to the other.
	opGetVar
	// opUnify is the general case — repeated head variables and compound
	// arguments — and defers to the interpreter's offset unifier.
	opUnify
	// opEqAtom / opEqNum / opEqTerm are the ground-fact equality stream:
	// the goal is statically ground so arguments need no dereferencing, and
	// matching cannot bind anything.
	opEqAtom
	opEqNum
	opEqTerm
)

// instr is one head-matching instruction. arg addresses the goal argument
// position; the remaining fields are the operands the opcode needs. term
// points at the head argument itself inside the stored clause (stable for
// the program's lifetime — KB mutation invalidates the program), so binding
// a goal variable stores the exact term value the interpreter would, and the
// instruction stays at 32 bytes for cache-friendly dispatch.
type instr struct {
	term *logic.Term
	num  float64
	sym  logic.Symbol
	arg  int32
	v    int32 // head variable index (opGetVar)
	op   op
}

// compiledClause is the bytecode form of one stored clause. Head streams are
// compiled per skip variant: skip is the argument position an index lookup
// already proved equal (-1, 0 or 1), and the variant simply omits that
// position's instruction (which also re-derives first-occurrence status for
// head variables under the executed order).
type compiledClause struct {
	numVars int
	// head[skip+1] is the head-matching stream for that skip variant.
	head [3][]instr
	// eq[skip+1] is the equality-only stream; non-nil only for ground facts.
	eq [3][]instr
	// frames holds the body goals as pre-built stack frames in push (reverse)
	// order with static groundness flags baked in; off and depth are patched
	// when the clause is resolved against.
	frames []goalFrame
}

// vmCand is one entry of a precomputed candidate list: a clause plus the
// head/eq streams matching how this entry was selected (indexed entries use
// the skip variant, unindexed entries and rules the full stream).
type vmCand struct {
	cc   *compiledClause
	head []instr
	eq   []instr
}

// candList is a precomputed candidate sequence: selected facts in insertion
// order, then every rule. nFacts counts only the facts — it mirrors the
// candidate count the interpreter's selectIndex compares buckets by (bucket
// length plus the always-scanned unindexed facts).
type candList struct {
	cands  []vmCand
	nFacts int
}

// vmSwitch is the compiled form of an argIndex: constant → merged candidate
// list. Symbol keys resolve through a dense array indexed by the interned
// symbol id; numeric keys keep a map. miss is the list for constants with
// no bucket (the unindexed facts plus rules), matching the interpreter's
// empty-bucket scan.
type vmSwitch struct {
	dense []*candList
	byNum map[float64]*candList
	miss  *candList
}

// lookup mirrors argIndex.bucket: a constant goal argument always selects
// some list (possibly the miss list); anything else reports no index.
func (sw *vmSwitch) lookup(t *logic.Term) (*candList, bool) {
	switch t.Kind {
	case logic.Atom:
		if s := int(t.Sym); s < len(sw.dense) {
			if l := sw.dense[s]; l != nil {
				return l, true
			}
		}
		return sw.miss, true
	case logic.Int, logic.Float:
		if l, ok := sw.byNum[t.Num]; ok {
			return l, true
		}
		return sw.miss, true
	}
	return nil, false
}

// compiledPred holds the compiled clauses of one predicate: the full
// candidate list and the two argument switches.
type compiledPred struct {
	arity int32
	all   *candList
	arg1  vmSwitch
	arg2  vmSwitch
}

// program is an immutable compiled KB. It is built once per KB and shared
// read-only across machines; it holds no mutable state.
type program struct {
	// direct is the fast dispatch path: symbol id → compiled predicate, for
	// symbols used at exactly one arity (the overwhelmingly common case).
	direct []*compiledPred
	// bySym is the fallback for symbols overloaded at several arities.
	bySym [][]progEntry
}

// progEntry pairs an arity with its compiled predicate for the fallback
// dispatch, mirroring KB.predEntry.
type progEntry struct {
	arity int32
	cp    *compiledPred
}

// predFor resolves the compiled predicate for a callable goal, or nil.
func (pr *program) predFor(goal logic.Term) *compiledPred {
	s := int(goal.Sym)
	if s < len(pr.direct) {
		if cp := pr.direct[s]; cp != nil && int(cp.arity) == len(goal.Args) {
			return cp
		}
	}
	if s < len(pr.bySym) {
		for _, e := range pr.bySym[s] {
			if int(e.arity) == len(goal.Args) {
				return e.cp
			}
		}
	}
	return nil
}

// unknownPred is the compiled predicate for body goals that reference no KB
// predicate: empty candidate lists, so resolution exhausts immediately with
// no charges — exactly the interpreter's behaviour for an unknown predicate.
var unknownPred = &compiledPred{
	all:  &candList{},
	arg1: vmSwitch{miss: &candList{}},
	arg2: vmSwitch{miss: &candList{}},
}

// compiler accumulates every compiled clause so the second compilation phase
// can patch cross-predicate references into the body frames.
type compiler struct {
	clauses []*compiledClause
}

// compileKB translates every predicate of kb into compiled form. It runs in
// two phases: first every clause is compiled, then each body literal is
// statically resolved to its compiled predicate (frame.cp), letting the VM's
// step skip the negation/variable/builtin dispatch whose outcome is already
// known at compile time.
func compileKB(kb *KB) *program {
	n := len(kb.bySym)
	pr := &program{direct: make([]*compiledPred, n), bySym: make([][]progEntry, n)}
	var c compiler
	for s, entries := range kb.bySym {
		if len(entries) == 1 {
			pr.direct[s] = compilePred(&c, entries[0].p, entries[0].arity)
			continue
		}
		for _, e := range entries {
			pr.bySym[s] = append(pr.bySym[s], progEntry{arity: e.arity, cp: compilePred(&c, e.p, e.arity)})
		}
	}
	for _, cc := range c.clauses {
		for i := range cc.frames {
			fr := &cc.frames[i]
			a := fr.lit.Atom
			// Only positive, callable, non-builtin goals dispatch statically;
			// everything else keeps the interpreter's dynamic checks.
			if fr.lit.Neg || (a.Kind != logic.Atom && a.Kind != logic.Compound) || builtinFor(a) != nil {
				continue
			}
			if cp := pr.predFor(a); cp != nil {
				fr.cp = cp
			} else {
				fr.cp = unknownPred
			}
		}
	}
	return pr
}

func compilePred(c *compiler, p *pred, arity int32) *compiledPred {
	facts := make([]*compiledClause, len(p.facts))
	for i := range p.facts {
		facts[i] = compileClause(c, &p.facts[i])
	}
	rules := make([]vmCand, len(p.rules))
	for i := range p.rules {
		cc := compileClause(c, &p.rules[i])
		rules[i] = vmCand{cc: cc, head: cc.head[0]}
	}
	cp := &compiledPred{arity: arity}
	var allIdx []int32
	if len(facts) > 0 {
		allIdx = make([]int32, len(facts))
		for i := range allIdx {
			allIdx[i] = int32(i)
		}
	}
	cp.all = mergeList(facts, rules, allIdx, nil, -1)
	cp.arg1 = compileSwitch(facts, rules, &p.arg1, 0)
	cp.arg2 = compileSwitch(facts, rules, &p.arg2, 1)
	return cp
}

// compileSwitch precomputes, for every constant key of ix, the merged
// bucket-plus-unindexed candidate sequence scanMerged would produce
// (followed by the rules). Symbol keys become a dense jump table.
func compileSwitch(facts []*compiledClause, rules []vmCand, ix *argIndex, skip int) vmSwitch {
	sw := vmSwitch{miss: mergeList(facts, rules, nil, ix.unindexed, skip)}
	if len(ix.byAtom) > 0 {
		maxSym := logic.Symbol(0)
		for k := range ix.byAtom {
			if k > maxSym {
				maxSym = k
			}
		}
		sw.dense = make([]*candList, int(maxSym)+1)
		for k, bucket := range ix.byAtom {
			sw.dense[k] = mergeList(facts, rules, bucket, ix.unindexed, skip)
		}
	}
	if len(ix.byNum) > 0 {
		sw.byNum = make(map[float64]*candList, len(ix.byNum))
		for k, bucket := range ix.byNum {
			sw.byNum[k] = mergeList(facts, rules, bucket, ix.unindexed, skip)
		}
	}
	return sw
}

// mergeList interleaves an index bucket with the unindexed facts in
// insertion order, then appends the rules. Bucket entries carry the skip
// variant (the index proved that argument equal); unindexed entries and
// rules must match in full.
func mergeList(facts []*compiledClause, rules []vmCand, idx, un []int32, skip int) *candList {
	l := &candList{nFacts: len(idx) + len(un)}
	if l.nFacts+len(rules) == 0 {
		return l
	}
	l.cands = make([]vmCand, 0, l.nFacts+len(rules))
	i, j := 0, 0
	for i < len(idx) || j < len(un) {
		if j >= len(un) || (i < len(idx) && idx[i] < un[j]) {
			l.cands = append(l.cands, candFor(facts[idx[i]], skip))
			i++
		} else {
			l.cands = append(l.cands, candFor(facts[un[j]], -1))
			j++
		}
	}
	l.cands = append(l.cands, rules...)
	return l
}

func candFor(cc *compiledClause, skip int) vmCand {
	return vmCand{cc: cc, head: cc.head[skip+1], eq: cc.eq[skip+1]}
}

func compileClause(c *compiler, sc *storedClause) *compiledClause {
	cc := &compiledClause{numVars: sc.numVars}
	c.clauses = append(c.clauses, cc)
	body := sc.clause.Body
	if len(body) > 0 {
		cc.frames = make([]goalFrame, 0, len(body))
		for i := len(body) - 1; i >= 0; i-- {
			fr := goalFrame{lit: body[i]}
			if sc.bodyGround != nil && sc.bodyGround[i] {
				fr.ground = true
			}
			cc.frames = append(cc.frames, fr)
		}
	}
	nArgs := len(sc.clause.Head.Args)
	cc.head[0] = compileHead(sc, -1)
	if sc.clause.IsFact() {
		// Only facts are reachable through the argument switches, so only
		// they need the skip variants.
		if nArgs > 0 {
			cc.head[1] = compileHead(sc, 0)
		}
		if nArgs > 1 {
			cc.head[2] = compileHead(sc, 1)
		}
	}
	if sc.ground {
		cc.eq[0] = compileEq(sc, -1)
		if nArgs > 0 {
			cc.eq[1] = compileEq(sc, 0)
		}
		if nArgs > 1 {
			cc.eq[2] = compileEq(sc, 1)
		}
	}
	return cc
}

// compileHead emits one instruction per head argument (minus the skipped
// position). A head variable compiles to opGetVar only at its first executed
// occurrence — counting occurrences inside earlier compound arguments, since
// unifying those may already have bound its slot — and to the general
// unifier afterwards.
func compileHead(sc *storedClause, skip int) []instr {
	head := &sc.clause.Head
	if len(head.Args) == 0 {
		return nil
	}
	out := make([]instr, 0, len(head.Args))
	var seen map[int32]bool
	if sc.numVars > 0 {
		seen = make(map[int32]bool, sc.numVars)
	}
	for i := range head.Args {
		if i == skip {
			continue
		}
		a := &head.Args[i]
		ins := instr{arg: int32(i), term: a}
		switch a.Kind {
		case logic.Atom:
			ins.op, ins.sym = opGetAtom, a.Sym
		case logic.Int, logic.Float:
			ins.op, ins.num = opGetNum, a.Num
		case logic.Var:
			if seen[int32(a.Sym)] {
				ins.op = opUnify
			} else {
				ins.op, ins.v = opGetVar, int32(a.Sym)
			}
		default:
			ins.op = opUnify
		}
		markVars(*a, seen)
		out = append(out, ins)
	}
	return out
}

func markVars(t logic.Term, seen map[int32]bool) {
	switch t.Kind {
	case logic.Var:
		seen[int32(t.Sym)] = true
	case logic.Compound:
		for i := range t.Args {
			markVars(t.Args[i], seen)
		}
	}
}

// compileEq emits the equality-only stream for a ground fact head.
func compileEq(sc *storedClause, skip int) []instr {
	head := &sc.clause.Head
	out := make([]instr, 0, len(head.Args))
	for i := range head.Args {
		if i == skip {
			continue
		}
		a := &head.Args[i]
		ins := instr{arg: int32(i), term: a}
		switch a.Kind {
		case logic.Atom:
			ins.op, ins.sym = opEqAtom, a.Sym
		case logic.Int, logic.Float:
			ins.op, ins.num = opEqNum, a.Num
		default:
			ins.op = opEqTerm
		}
		out = append(out, ins)
	}
	return out
}
