package solve

import (
	"fmt"
	"testing"

	"repro/internal/logic"
)

// benchKB builds a molecule-shaped KB with n facts per predicate.
func benchKB(n int) *KB {
	kb := NewKB()
	for i := 0; i < n; i++ {
		mol := fmt.Sprintf("m%d", i%50)
		kb.AddFact(logic.MustParseTerm(fmt.Sprintf("atm(%s, a%d, carbon, 22, 0.1)", mol, i)))
		kb.AddFact(logic.MustParseTerm(fmt.Sprintf("bond(%s, a%d, a%d, 1)", mol, i, (i+1)%n)))
	}
	return kb
}

func BenchmarkProveIndexedFact(b *testing.B) {
	kb := benchKB(2000)
	m := NewMachine(kb, DefaultBudget)
	goal := logic.MustParseTerm("atm(m7, a7, carbon, 22, 0.1)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.ProveAtom(goal) {
			b.Fatal("fact not proved")
		}
	}
}

func BenchmarkProveFailUnknownConstant(b *testing.B) {
	kb := benchKB(2000)
	m := NewMachine(kb, DefaultBudget)
	goal := logic.MustParseTerm("atm(zz, a7, carbon, 22, 0.1)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.ProveAtom(goal) {
			b.Fatal("unexpected proof")
		}
	}
}

func benchCoversExample(b *testing.B, novm bool) {
	kb := benchKB(2000)
	m := NewMachine(kb, DefaultBudget)
	m.SetNoVM(novm)
	rule := logic.MustParseClause("active(M) :- atm(M, A, carbon, T, C), bond(M, A, B, 1).")
	example := logic.MustParseTerm("active(m7)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.CoversExample(&rule, example) {
			b.Fatal("not covered")
		}
	}
}

// BenchmarkCoversExample is the coverage-check kernel on the default engine
// (the compiled VM); BenchmarkCoversExampleInterp is the same workload
// pinned to the tree-walking interpreter, so one bench run reports the
// interpreter-vs-VM delta.
func BenchmarkCoversExample(b *testing.B)       { benchCoversExample(b, false) }
func BenchmarkCoversExampleInterp(b *testing.B) { benchCoversExample(b, true) }

func BenchmarkSolveEnumerate(b *testing.B) {
	kb := benchKB(2000)
	m := NewMachine(kb, DefaultBudget)
	goal := logic.MustParseTerm("atm(m7, X, carbon, T, C)")
	goals := []logic.Literal{logic.Lit(goal)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		m.Solve(goals, goal.MaxVar()+1, func(*logic.Bindings) bool {
			count++
			return true
		})
		if count == 0 {
			b.Fatal("no solutions")
		}
	}
}

// benchRuleKB mixes ground facts with var-containing rules so the
// clause-renaming path (offset-threaded unification) is exercised.
func benchRuleKB(n int) *KB {
	kb := benchKB(n)
	if err := kb.AddSource(`
		heavy(M) :- atm(M, A, carbon, T, C), T > 20.
		linked(M, A, B) :- bond(M, A, B, K).
		linked(M, A, B) :- bond(M, B, A, K).
		ring3(M) :- linked(M, A, B), linked(M, B, C), linked(M, C, A).
	`); err != nil {
		panic(err)
	}
	// Close one triangle so ring3 is satisfiable: a7 → a8 → az → a7.
	kb.AddFact(logic.MustParseTerm("bond(m7, a8, az, 1)"))
	kb.AddFact(logic.MustParseTerm("bond(m7, az, a7, 1)"))
	return kb
}

func benchCoversExampleRules(b *testing.B, novm bool) {
	kb := benchRuleKB(2000)
	m := NewMachine(kb, DefaultBudget)
	m.SetNoVM(novm)
	rule := logic.MustParseClause("active(M) :- heavy(M), linked(M, A, B).")
	example := logic.MustParseTerm("active(m7)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.CoversExample(&rule, example) {
			b.Fatal("not covered")
		}
	}
}

func BenchmarkCoversExampleRules(b *testing.B)       { benchCoversExampleRules(b, false) }
func BenchmarkCoversExampleRulesInterp(b *testing.B) { benchCoversExampleRules(b, true) }

func BenchmarkProveRecursiveRules(b *testing.B) {
	kb := benchRuleKB(2000)
	m := NewMachine(kb, DefaultBudget)
	goal := logic.MustParseTerm("ring3(m7)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.ProveAtom(goal) {
			b.Fatal("no 3-ring found")
		}
	}
}

func BenchmarkSecondArgIndexedGoal(b *testing.B) {
	kb := benchKB(2000)
	m := NewMachine(kb, DefaultBudget)
	// First argument unbound, second bound: only the second-arg index saves
	// this goal from scanning the whole bond table.
	goal := logic.MustParseTerm("bond(M, a7, B, 1)")
	goals := []logic.Literal{logic.Lit(goal)}
	nv := goal.MaxVar() + 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found := false
		m.Solve(goals, nv, func(*logic.Bindings) bool {
			found = true
			return false
		})
		if !found {
			b.Fatal("no solution")
		}
	}
}
