package solve

import (
	"fmt"
	"testing"

	"repro/internal/logic"
)

// benchKB builds a molecule-shaped KB with n facts per predicate.
func benchKB(n int) *KB {
	kb := NewKB()
	for i := 0; i < n; i++ {
		mol := fmt.Sprintf("m%d", i%50)
		kb.AddFact(logic.MustParseTerm(fmt.Sprintf("atm(%s, a%d, carbon, 22, 0.1)", mol, i)))
		kb.AddFact(logic.MustParseTerm(fmt.Sprintf("bond(%s, a%d, a%d, 1)", mol, i, (i+1)%n)))
	}
	return kb
}

func BenchmarkProveIndexedFact(b *testing.B) {
	kb := benchKB(2000)
	m := NewMachine(kb, DefaultBudget)
	goal := logic.MustParseTerm("atm(m7, a7, carbon, 22, 0.1)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.ProveAtom(goal) {
			b.Fatal("fact not proved")
		}
	}
}

func BenchmarkProveFailUnknownConstant(b *testing.B) {
	kb := benchKB(2000)
	m := NewMachine(kb, DefaultBudget)
	goal := logic.MustParseTerm("atm(zz, a7, carbon, 22, 0.1)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.ProveAtom(goal) {
			b.Fatal("unexpected proof")
		}
	}
}

func BenchmarkCoversExample(b *testing.B) {
	kb := benchKB(2000)
	m := NewMachine(kb, DefaultBudget)
	rule := logic.MustParseClause("active(M) :- atm(M, A, carbon, T, C), bond(M, A, B, 1).")
	example := logic.MustParseTerm("active(m7)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.CoversExample(&rule, example) {
			b.Fatal("not covered")
		}
	}
}

func BenchmarkSolveEnumerate(b *testing.B) {
	kb := benchKB(2000)
	m := NewMachine(kb, DefaultBudget)
	goal := logic.MustParseTerm("atm(m7, X, carbon, T, C)")
	goals := []logic.Literal{logic.Lit(goal)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		m.Solve(goals, goal.MaxVar()+1, func(*logic.Bindings) bool {
			count++
			return true
		})
		if count == 0 {
			b.Fatal("no solutions")
		}
	}
}
