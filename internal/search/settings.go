package search

import "fmt"

// Heuristic selects the rule-scoring function used to order the search.
type Heuristic uint8

const (
	// HeurCoverage scores P − N, the heuristic the paper's April
	// configuration uses ("relies on the number of positive and negative
	// examples", §4.2).
	HeurCoverage Heuristic = iota
	// HeurCompression scores P − N − L (L = body length): Progol-style
	// compression.
	HeurCompression
	// HeurPrecision scores the Laplace-corrected precision (P+1)/(P+N+2).
	HeurPrecision
	// HeurMEstimate scores the m-estimate of precision with M and the
	// positive prior.
	HeurMEstimate
)

func (h Heuristic) String() string {
	switch h {
	case HeurCoverage:
		return "coverage"
	case HeurCompression:
		return "compression"
	case HeurPrecision:
		return "precision"
	case HeurMEstimate:
		return "mestimate"
	}
	return fmt.Sprintf("heuristic(%d)", h)
}

// ParseHeuristic maps a name to a Heuristic.
func ParseHeuristic(name string) (Heuristic, error) {
	switch name {
	case "", "coverage":
		return HeurCoverage, nil
	case "compression":
		return HeurCompression, nil
	case "precision":
		return HeurPrecision, nil
	case "mestimate":
		return HeurMEstimate, nil
	}
	return 0, fmt.Errorf("search: unknown heuristic %q", name)
}

// Strategy selects the search-space traversal order.
type Strategy uint8

const (
	// StrategyBFS explores the refinement lattice breadth-first — the
	// configuration the paper's April runs use (§4.2, "top-down
	// breadth-first search").
	StrategyBFS Strategy = iota
	// StrategyBestFirst expands the highest-scoring open rule first
	// (greedy best-first), an extension useful under tight node limits.
	StrategyBestFirst
)

func (s Strategy) String() string {
	switch s {
	case StrategyBFS:
		return "bfs"
	case StrategyBestFirst:
		return "bestfirst"
	}
	return fmt.Sprintf("strategy(%d)", s)
}

// ParseStrategy maps a name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "bfs":
		return StrategyBFS, nil
	case "bestfirst", "best-first":
		return StrategyBestFirst, nil
	}
	return 0, fmt.Errorf("search: unknown strategy %q", name)
}

// Settings parameterises a rule search. The zero value is usable: defaults
// are applied by WithDefaults.
type Settings struct {
	// MaxClauseLen caps body literals per rule. ≤0 means 4.
	MaxClauseLen int
	// NodesLimit caps generated rules per search — the paper's §5.2
	// "threshold on the number of rules that can be generated on each
	// search". ≤0 means 2000.
	NodesLimit int
	// MinPos is the minimum positive cover for an acceptable rule. ≤0 means 1.
	MinPos int
	// MinPrec is the minimum training precision P/(P+N) for an acceptable
	// rule — the relaxed consistency (noise) condition. ≤0 means 0.7.
	MinPrec float64
	// W is the pipeline width: how many good rules a search emits.
	// ≤0 means unlimited ("nolimit" in the paper's tables).
	W int
	// Heuristic orders the search.
	Heuristic Heuristic
	// Strategy selects the traversal order (default: breadth-first).
	Strategy Strategy
	// MEstimateM is the m parameter for HeurMEstimate. ≤0 means 2.
	MEstimateM float64
	// PosPrior is the positive class prior for HeurMEstimate; set by the
	// caller from the dataset. ≤0 means 0.5.
	PosPrior float64
	// NoBatchEval disables whole-frontier batched candidate evaluation and
	// reverts LearnRule to one Coverage call per candidate (the pre-batch
	// hot path, kept for A/B benchmarking). Search results are identical
	// either way; only synchronisation cost changes.
	NoBatchEval bool
	// NoVM pins clause resolution to the tree-walking interpreter instead of
	// the compiled bytecode VM (see internal/solve). The two engines are
	// bit-identical in solution order, inference counts and budget cutoffs;
	// only speed differs. Kept for A/B benchmarking and as the differential
	// reference path.
	NoVM bool
}

// WithDefaults returns s with zero fields replaced by defaults.
func (s Settings) WithDefaults() Settings {
	if s.MaxClauseLen <= 0 {
		s.MaxClauseLen = 4
	}
	if s.NodesLimit <= 0 {
		s.NodesLimit = 2000
	}
	if s.MinPos <= 0 {
		s.MinPos = 1
	}
	if s.MinPrec <= 0 {
		s.MinPrec = 0.7
	}
	if s.MEstimateM <= 0 {
		s.MEstimateM = 2
	}
	if s.PosPrior <= 0 {
		s.PosPrior = 0.5
	}
	return s
}

// Score computes the heuristic value of a rule with pos/neg coverage and
// body length length.
func (s Settings) Score(pos, neg, length int) float64 {
	switch s.Heuristic {
	case HeurCompression:
		return float64(pos-neg) - float64(length)
	case HeurPrecision:
		return float64(pos+1) / float64(pos+neg+2)
	case HeurMEstimate:
		return (float64(pos) + s.MEstimateM*s.PosPrior) / (float64(pos+neg) + s.MEstimateM)
	default:
		return float64(pos - neg)
	}
}

// IsGood reports whether a rule with the given coverage meets the acceptance
// criteria (is_good in the paper's Figures 2 and 7): enough positives and
// precision at least MinPrec (relaxed consistency).
func (s Settings) IsGood(pos, neg int) bool {
	if pos < s.MinPos {
		return false
	}
	return float64(pos)/float64(pos+neg) >= s.MinPrec
}
