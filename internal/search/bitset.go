package search

import "math/bits"

// Bitset is a fixed-capacity bit vector used to track example coverage.
// Coverage sets are the workhorse of rule evaluation: a refinement's
// coverage is a subset of its parent's, so children only re-test examples
// their parent covered.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits, all clear.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// FullBitset returns a bitset with bits [0, n) all set.
func FullBitset(n int) Bitset {
	b := NewBitset(n)
	for i := 0; i < n/64; i++ {
		b[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 {
		b[n/64] = (uint64(1) << r) - 1
	}
	return b
}

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Clear clears bit i.
func (b Bitset) Clear(i int) { b[i/64] &^= 1 << (i % 64) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// AndWith intersects b with o in place (lengths must match).
func (b Bitset) AndWith(o Bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

// AndNotWith removes o's bits from b in place (lengths must match).
func (b Bitset) AndNotWith(o Bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

// OrWith unions o into b in place (lengths must match).
func (b Bitset) OrWith(o Bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// AndCount returns the population count of a ∧ b without materializing the
// intersection (lengths must match).
func AndCount(a, b Bitset) int {
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

// IntersectInto writes a ∧ b into dst (resizing it if needed) and returns
// the buffer, so callers can reuse a scratch bitset across calls.
func IntersectInto(dst, a, b Bitset) Bitset {
	if len(dst) != len(a) {
		dst = make(Bitset, len(a))
	}
	copy(dst, a)
	dst.AndWith(b)
	return dst
}

// Empty reports whether no bit is set.
func (b Bitset) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn with the index of every set bit, in increasing order,
// stopping early if fn returns false.
func (b Bitset) ForEach(fn func(i int) bool) {
	for wi, w := range b {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}
